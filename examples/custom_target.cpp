// Instrumenting YOUR OWN MPI program for COMPI.
//
// This example shows the full downstream-user workflow on a fresh target —
// a little 1-D heat-diffusion solver — written against the instrumentation
// surface exactly as the bundled mini-HPL/SUSY/IMB targets are:
//   1. declare the branch-site table (the instrumenter's static output),
//   2. mark the inputs (with a cap on the expensive one),
//   3. write branches through ctx.branch / targets::br,
//   4. hand the TargetInfo to a Campaign.
#include <iostream>
#include <vector>

#include "compi/driver.h"
#include "compi/report.h"
#include "targets/target_common.h"

namespace heat {

using namespace compi;
using sym::SymInt;

// 1. Branch sites, grouped by function.
// clang-format off
#define HEAT_SITES(X) \
  X(rd_cells_lo,   "read_inputs") \
  X(rd_cells_hi,   "read_inputs") \
  X(rd_steps_lo,   "read_inputs") \
  X(rd_source_bad, "read_inputs") \
  X(rd_fit_procs,  "read_inputs") \
  X(sv_rank_zero,  "solve") \
  X(sv_step_loop,  "solve") \
  X(sv_halo_left,  "solve") \
  X(sv_halo_right, "solve") \
  X(sv_hot_spot,   "solve") \
  X(rp_converged,  "report")
// clang-format on

COMPI_DEFINE_TARGET_SITES(Site, heat_table, HEAT_SITES)

void heat_program(rt::RuntimeContext& ctx, minimpi::Comm& world) {
  using targets::br;

  // 2. Mark the inputs.  `cells` dominates the cost: cap it.
  const SymInt cells = ctx.input_int_capped("cells", 256);
  const SymInt steps = ctx.input_int_capped("steps", 50);
  const SymInt source = ctx.input_int("source");

  const SymInt rank = world.comm_rank(ctx);
  const SymInt size = world.comm_size(ctx);

  // 3. Sanity checks -> branches the tester can negate.
  if (br(ctx, Site::rd_cells_lo, cells < SymInt(1))) return;
  if (br(ctx, Site::rd_cells_hi, cells > SymInt(256))) return;
  if (br(ctx, Site::rd_steps_lo, steps < SymInt(1))) return;
  if (br(ctx, Site::rd_source_bad, source < SymInt(0))) return;
  if (br(ctx, Site::rd_fit_procs, size > cells)) return;

  const int n = static_cast<int>(cells.value());
  const int nsteps = static_cast<int>(steps.value());
  const int np = world.raw_size();
  const int me = world.raw_rank();
  const int local = std::max(1, n / np);

  std::vector<double> u(static_cast<std::size_t>(local) + 2, 0.0);
  if (br(ctx, Site::sv_rank_zero, rank == SymInt(0))) {
    u[1] = 100.0;  // boundary source on rank 0
  }
  if (br(ctx, Site::sv_hot_spot, source > SymInt(1000))) {
    u[local / 2 + 1] = 500.0;  // an extra-hot interior source
  }

  for (int s = 0;
       br(ctx, Site::sv_step_loop, SymInt(s) < steps) && s < nsteps; ++s) {
    // Halo exchange with neighbours.
    if (br(ctx, Site::sv_halo_left, SymInt(me) > SymInt(0))) {
      double out = u[1], in = 0.0;
      world.sendrecv(std::span<const double>(&out, 1), me - 1, 1,
                     std::span<double>(&in, 1), me - 1, 1);
      u[0] = in;
    }
    if (br(ctx, Site::sv_halo_right, SymInt(me) < SymInt(np - 1))) {
      double out = u[static_cast<std::size_t>(local)], in = 0.0;
      world.sendrecv(std::span<const double>(&out, 1), me + 1, 1,
                     std::span<double>(&in, 1), me + 1, 1);
      u[static_cast<std::size_t>(local) + 1] = in;
    }
    for (int i = 1; i <= local; ++i) {
      u[i] = u[i] + 0.25 * (u[i - 1] - 2 * u[i] + u[i + 1]);
    }
    ctx.ops(local * 4);
  }

  double local_heat = 0.0;
  for (int i = 1; i <= local; ++i) local_heat += u[i];
  double total = 0.0;
  world.allreduce(std::span<const double>(&local_heat, 1),
                  std::span<double>(&total, 1), minimpi::Op::kSum);
  (void)br(ctx, Site::rp_converged, SymInt(total < 150.0 ? 1 : 0) ==
                                        SymInt(1));
  world.barrier();
}

}  // namespace heat

int main() {
  using namespace compi;

  // 4. Package and test.
  TargetInfo target;
  target.name = "heat-1d";
  target.table = &heat::heat_table();
  target.program = heat::heat_program;

  CampaignOptions opts;
  opts.seed = 5;
  opts.iterations = 200;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.dfs_phase_iterations = 40;

  const CampaignResult result = Campaign(target, opts).run();
  std::cout << "heat-1d: covered " << result.covered_branches << " / "
            << result.total_branches << " branches ("
            << TablePrinter::pct(result.coverage_rate) << " of reachable), "
            << result.bugs.size() << " bugs, "
            << TablePrinter::num(result.total_seconds, 2) << "s\n";
  // Rank-dependent halo branches and the size>cells guard need the MPI
  // framework: verify they were all reached.
  return result.covered_branches >= result.total_branches - 2 ? 0 : 1;
}
