// Quickstart: run COMPI on the bundled mini-SUSY-HMC target.
//
//   $ ./quickstart [iterations]
//
// Shows the whole public-API flow: build a target, configure a campaign,
// run it, inspect coverage and the bugs found (with their error-inducing
// inputs, as COMPI logs them for further analysis).
#include <cstdlib>
#include <iostream>

#include "compi/driver.h"
#include "compi/report.h"
#include "targets/targets.h"

int main(int argc, char** argv) {
  using namespace compi;

  const int iterations = argc > 1 ? std::atoi(argv[1]) : 120;

  // 1. The target: mini-SUSY-HMC with the paper-default lattice cap N_C=5.
  const TargetInfo target = targets::make_mini_susy_target();

  // 2. Campaign options (paper §VI experiment setup): start with 8
  //    processes, focus on rank 0, cap the process count at 16, pure DFS
  //    for the first 50 iterations, then BoundedDFS.
  CampaignOptions opts;
  opts.seed = 42;
  opts.iterations = iterations;
  opts.initial_nprocs = 8;
  opts.initial_focus = 0;
  opts.max_procs = 16;
  opts.dfs_phase_iterations = 50;

  // 3. Run.
  Campaign campaign(target, opts);
  const CampaignResult result = campaign.run();

  // 4. Report.
  std::cout << "target           : " << target.name << "\n"
            << "iterations       : " << result.iterations.size() << "\n"
            << "covered branches : " << result.covered_branches << " / "
            << result.reachable_branches << " reachable ("
            << TablePrinter::pct(result.coverage_rate) << ")\n"
            << "max constraints  : " << result.max_constraint_set << "\n"
            << "depth bound used : " << result.depth_bound_used << "\n"
            << "restarts         : " << result.restarts << "\n"
            << "total time       : " << TablePrinter::num(result.total_seconds, 2)
            << "s\n\n";

  if (result.bugs.empty()) {
    std::cout << "no bugs found (try more iterations)\n";
  } else {
    std::cout << "bugs found (" << result.bugs.size() << "):\n";
    for (const BugRecord& bug : result.bugs) {
      std::cout << "  [" << rt::to_string(bug.outcome) << "] " << bug.message
                << "\n    first at iteration " << bug.first_iteration
                << ", nprocs=" << bug.nprocs << ", focus=" << bug.focus
                << ", seen " << bug.occurrences << "x\n";
    }
  }
  return 0;
}
