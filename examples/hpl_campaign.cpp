// Run COMPI on mini-HPL with a chosen search strategy and watch the
// coverage climb through the 28-parameter sanity cascade.
//
//   $ ./hpl_campaign [iterations] [strategy]
//     strategy: bounded-dfs (default) | dfs | random-branch |
//               uniform-random | cfg
//
// Reproduces the qualitative story of paper Fig. 4: only the systematic
// DFS-family strategies march through HPL's deep sanity check; the
// non-systematic ones stall near the entry.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "compi/driver.h"
#include "compi/report.h"
#include "targets/targets.h"

namespace {

compi::SearchKind parse_strategy(const char* s) {
  using compi::SearchKind;
  if (std::strcmp(s, "dfs") == 0) return SearchKind::kDfs;
  if (std::strcmp(s, "random-branch") == 0) return SearchKind::kRandomBranch;
  if (std::strcmp(s, "uniform-random") == 0) {
    return SearchKind::kUniformRandom;
  }
  if (std::strcmp(s, "cfg") == 0) return SearchKind::kCfg;
  return SearchKind::kBoundedDfs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace compi;

  const int iterations = argc > 1 ? std::atoi(argv[1]) : 300;
  const SearchKind strategy =
      argc > 2 ? parse_strategy(argv[2]) : SearchKind::kBoundedDfs;

  const TargetInfo target = targets::make_mini_hpl_target(/*n_cap=*/120);

  CampaignOptions opts;
  opts.seed = 7;
  opts.iterations = iterations;
  opts.search = strategy;
  opts.dfs_phase_iterations = 100;

  Campaign campaign(target, opts);
  const CampaignResult result = campaign.run();

  std::cout << "strategy         : " << to_string(strategy) << "\n"
            << "covered branches : " << result.covered_branches << " / "
            << result.reachable_branches << " reachable ("
            << TablePrinter::pct(result.coverage_rate) << ")\n"
            << "max constraints  : " << result.max_constraint_set << "\n"
            << "total time       : "
            << TablePrinter::num(result.total_seconds, 2) << "s\n\n";

  // Coverage curve: every 10% of the run.
  std::cout << "coverage curve (iteration : covered branches)\n";
  const std::size_t n = result.iterations.size();
  for (std::size_t i = 0; i < n; i += std::max<std::size_t>(n / 10, 1)) {
    std::cout << "  " << result.iterations[i].iteration << " : "
              << result.iterations[i].covered_branches << "\n";
  }
  if (n > 0) {
    std::cout << "  " << result.iterations[n - 1].iteration << " : "
              << result.iterations[n - 1].covered_branches << "\n";
  }
  return 0;
}
