// Run mini-IMB-MPI1 as a plain benchmark application — no concolic
// testing — and print IMB-style timing tables.  Demonstrates that the
// MiniMPI substrate and the target programs are usable standalone.
//
//   $ ./imb_report [nprocs] [benchmark 0..12]
#include <cstdlib>
#include <iostream>

#include "compi/fixed_run.h"
#include "compi/report.h"
#include "targets/targets.h"

namespace {

const char* kBenchNames[] = {
    "PingPong",  "PingPing",  "Sendrecv",       "Exchange", "Bcast",
    "Allreduce", "Reduce",    "Allgather",      "Gather",   "Barrier",
    "Alltoall",  "Reduce_scatter", "Scan",
};

}  // namespace

int main(int argc, char** argv) {
  using namespace compi;
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 8;
  const int only = argc > 2 ? std::atoi(argv[2]) : -1;

  const TargetInfo target = targets::make_mini_imb_target(/*iter_cap=*/1000);
  TablePrinter table({"Benchmark", "np", "msg 4B..64B iters", "outcome",
                      "wall (ms)"});
  for (int bench = 0; bench <= 12; ++bench) {
    if (only >= 0 && bench != only) continue;
    auto in = targets::mini_imb_defaults(bench, /*iters=*/50);
    in["npmin"] = std::min(2, nprocs);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = run_fixed(target, in, {.nprocs = nprocs});
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    table.add_row({kBenchNames[bench], std::to_string(nprocs), "50",
                   rt::to_string(result.job_outcome()),
                   TablePrinter::num(ms, 2)});
  }
  table.print(std::cout);
  std::cout << "\n(mini-IMB sweeps subset sizes npmin..np and message\n"
               "lengths 4B..64B internally; per-sample min/avg/max times\n"
               "are reduced across ranks exactly as IMB reports them)\n";
  return 0;
}
