// Bug-hunting workflow on mini-SUSY-HMC, end to end:
//   1. run COMPI until it has found the known bug count (or budget ends),
//   2. replay each bug's error-inducing inputs to confirm determinism,
//   3. re-test the "fixed" build and show it comes back clean.
//
// This mirrors the paper's §VI-A narrative, including the division-by-zero
// that only manifests with 2 or 4 processes.
#include <cstdlib>
#include <iostream>

#include "compi/driver.h"
#include "compi/fixed_run.h"
#include "compi/report.h"
#include "targets/targets.h"

int main(int argc, char** argv) {
  using namespace compi;
  const int budget = argc > 1 ? std::atoi(argv[1]) : 600;

  const TargetInfo buggy = targets::make_mini_susy_target();
  CampaignOptions opts;
  opts.seed = 2026;
  opts.iterations = budget;
  opts.dfs_phase_iterations = 50;

  std::cout << "hunting bugs in " << buggy.name << " (" << budget
            << " iterations max)...\n";
  const CampaignResult result = Campaign(buggy, opts).run();
  std::cout << "found " << result.bugs.size() << " distinct bugs, coverage "
            << TablePrinter::pct(result.coverage_rate) << "\n\n";

  for (const BugRecord& bug : result.bugs) {
    std::cout << "[" << rt::to_string(bug.outcome) << "] " << bug.message
              << "\n  nprocs=" << bug.nprocs << " focus=" << bug.focus
              << " first seen at iteration " << bug.first_iteration << "\n";
  }

  // The FPE is process-count dependent; demonstrate it explicitly.
  std::cout << "\nreplaying the division-by-zero across process counts:\n";
  for (int np : {1, 2, 3, 4}) {
    auto in = targets::mini_susy_defaults(np);
    in["nt"] = np * 2;  // even time extent, divisible by np
    const auto replay = run_fixed(buggy, in, {.nprocs = np});
    std::cout << "  nprocs=" << np << " -> "
              << rt::to_string(replay.job_outcome()) << "\n";
  }

  // Fix-and-retest: the patched build must survive the same campaign.
  std::cout << "\nre-testing the fixed build...\n";
  const TargetInfo fixed = targets::make_mini_susy_target(5, false);
  const CampaignResult clean = Campaign(fixed, opts).run();
  std::cout << "fixed build: " << clean.bugs.size()
            << " bugs (expected 0), coverage "
            << TablePrinter::pct(clean.coverage_rate) << "\n";
  return clean.bugs.empty() && result.bugs.size() == 4 ? 0 : 1;
}
