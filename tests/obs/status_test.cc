// The shared status heartbeat: JSON render/parse round-trip, legacy-form
// tolerance, the StatusBoard's monotonic merge + timeline thinning, and
// the tmp+rename atomic file writer.
#include "obs/status.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace compi::obs {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_status_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

StatusSnapshot full_snapshot() {
  StatusSnapshot s;
  s.iteration = 41;
  s.covered_branches = 87;
  s.bugs = 3;
  s.elapsed_seconds = 1.5;
  s.nprocs = 8;
  s.focus = 2;
  s.outcome = "ok";
  s.serve_port = 8080;
  s.workers = 4;
  s.iterations_total = 500;
  s.frontier_depth = 12;
  s.interleavings_pending = 2;
  s.solver_cache_hits = 100;
  s.solver_cache_misses = 7;
  s.coverage_timeline = {{0, 5}, {10, 40}, {41, 87}};
  s.worker_status.resize(2);
  s.worker_status[0] = {41, WorkerPhase::kSolve, 1.5, 20};
  s.worker_status[1] = {40, WorkerPhase::kExecute, 1.4, 21};
  return s;
}

TEST(StatusJson, RoundTripsEveryField) {
  const StatusSnapshot s = full_snapshot();
  const std::string json = render_status_json(s);
  const auto parsed = parse_status_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->iteration, 41);
  EXPECT_EQ(parsed->covered_branches, 87u);
  EXPECT_EQ(parsed->bugs, 3u);
  EXPECT_DOUBLE_EQ(parsed->elapsed_seconds, 1.5);
  EXPECT_EQ(parsed->nprocs, 8);
  EXPECT_EQ(parsed->focus, 2);
  EXPECT_EQ(parsed->outcome, "ok");
  EXPECT_EQ(parsed->serve_port, 8080);
  EXPECT_EQ(parsed->workers, 4);
  EXPECT_EQ(parsed->iterations_total, 500);
  EXPECT_EQ(parsed->frontier_depth, 12u);
  EXPECT_EQ(parsed->interleavings_pending, 2u);
  EXPECT_EQ(parsed->solver_cache_hits, 100);
  EXPECT_EQ(parsed->solver_cache_misses, 7);
  EXPECT_EQ(parsed->coverage_timeline, s.coverage_timeline);
  ASSERT_EQ(parsed->worker_status.size(), 2u);
  EXPECT_EQ(parsed->worker_status[0].iteration, 41);
  EXPECT_EQ(parsed->worker_status[0].phase, WorkerPhase::kSolve);
  EXPECT_DOUBLE_EQ(parsed->worker_status[0].last_progress_seconds, 1.5);
  EXPECT_EQ(parsed->worker_status[0].iterations_done, 20);
  EXPECT_EQ(parsed->worker_status[1].phase, WorkerPhase::kExecute);
}

TEST(StatusJson, DiagnosisRoundTripsWhenSetAndIsOmittedWhenEmpty) {
  StatusSnapshot s = full_snapshot();
  s.diagnosis_kind = "solver-thrash";
  s.diagnosis_detail = "budget exhaustion dominates: 90 of 100 queries";
  s.diagnosis_stalled_seconds = 12.5;
  const auto parsed = parse_status_json(render_status_json(s));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->diagnosis_kind, "solver-thrash");
  EXPECT_EQ(parsed->diagnosis_detail,
            "budget exhaustion dominates: 90 of 100 queries");
  EXPECT_DOUBLE_EQ(parsed->diagnosis_stalled_seconds, 12.5);

  // Without a verdict the document carries no diagnosis object at all
  // (old dashboards parse it untouched) and parsing yields empty fields.
  s.diagnosis_kind.clear();
  const std::string json = render_status_json(s);
  EXPECT_EQ(json.find("diagnosis"), std::string::npos);
  EXPECT_TRUE(parse_status_json(json)->diagnosis_kind.empty());
}

TEST(StatusJson, LegacySevenFieldFormKeepsFieldOrderAndParses) {
  // Existing monitors scrape the original heartbeat: the seven legacy
  // fields must come first, in the original order.
  const std::string json = render_status_json(full_snapshot());
  const char* order[] = {"\"iteration\"", "\"covered_branches\"", "\"bugs\"",
                         "\"elapsed_seconds\"", "\"nprocs\"", "\"focus\"",
                         "\"outcome\""};
  std::size_t pos = 0;
  for (const char* key : order) {
    const std::size_t at = json.find(key, pos);
    ASSERT_NE(at, std::string::npos) << key;
    EXPECT_GE(at, pos) << key << " out of order";
    pos = at;
  }

  const auto legacy = parse_status_json(
      "{\"iteration\":5,\"covered_branches\":9,\"bugs\":1,"
      "\"elapsed_seconds\":0.25,\"nprocs\":4,\"focus\":1,\"outcome\":\"ok\"}");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->iteration, 5);
  EXPECT_EQ(legacy->covered_branches, 9u);
  EXPECT_EQ(legacy->serve_port, -1);  // extension defaults survive
  EXPECT_TRUE(legacy->worker_status.empty());
}

TEST(StatusJson, MalformedInputIsRejected) {
  EXPECT_FALSE(parse_status_json("").has_value());
  EXPECT_FALSE(parse_status_json("not json").has_value());
  EXPECT_FALSE(parse_status_json("{\"iteration\":").has_value());
}

TEST(WorkerPhaseNames, RoundTrip) {
  for (const WorkerPhase p : {WorkerPhase::kIdle, WorkerPhase::kExecute,
                              WorkerPhase::kSolve, WorkerPhase::kDone}) {
    const auto back = parse_worker_phase(to_string(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(parse_worker_phase("napping").has_value());
}

TEST(StatusBoardTest, RecordIterationMergesMonotonically) {
  StatusBoard board(2, 100);
  board.set_campaign(8, 0);
  board.record_iteration(5, 10, 0, 0.5, 8, 0, "ok", 0);
  // A slower worker finishing an older ordinal must not roll the headline
  // iteration or coverage backwards.
  board.record_iteration(3, 8, 0, 0.6, 8, 0, "ok", 1);
  const StatusSnapshot s = board.snapshot();
  EXPECT_EQ(s.iteration, 5);
  EXPECT_EQ(s.covered_branches, 10u);
  ASSERT_EQ(s.worker_status.size(), 2u);
  EXPECT_EQ(s.worker_status[0].iteration, 5);
  EXPECT_EQ(s.worker_status[1].iteration, 3);
  EXPECT_EQ(s.worker_status[0].iterations_done, 1);
  EXPECT_EQ(s.worker_status[1].iterations_done, 1);
}

TEST(StatusBoardTest, TimelineRecordsGrowthAndStaysBounded) {
  StatusBoard board(1, 100000);
  std::size_t covered = 0;
  for (int i = 0; i < 1000; ++i) {
    covered += 1;  // every iteration discovers something: worst case
    board.record_iteration(i, covered, 0, 0.001 * i, 4, 0, "ok", 0);
  }
  const StatusSnapshot s = board.snapshot();
  ASSERT_FALSE(s.coverage_timeline.empty());
  EXPECT_LE(s.coverage_timeline.size(), 128u);  // 2 * kTimelineCap
  // The newest point survives thinning and the series stays sorted.
  EXPECT_EQ(s.coverage_timeline.back().first, 999);
  EXPECT_EQ(s.coverage_timeline.back().second, 1000u);
  for (std::size_t i = 1; i < s.coverage_timeline.size(); ++i) {
    EXPECT_LT(s.coverage_timeline[i - 1].first, s.coverage_timeline[i].first);
  }
}

TEST(StatusBoardTest, WorkerPhaseTracksLiveState) {
  StatusBoard board(2, 10);
  board.worker_phase(1, 7, WorkerPhase::kExecute);
  StatusSnapshot s = board.snapshot();
  ASSERT_EQ(s.worker_status.size(), 2u);
  EXPECT_EQ(s.worker_status[1].phase, WorkerPhase::kExecute);
  EXPECT_EQ(s.worker_status[1].iteration, 7);
  EXPECT_EQ(s.worker_status[0].phase, WorkerPhase::kIdle);

  board.worker_phase(1, 7, WorkerPhase::kDone);
  s = board.snapshot();
  EXPECT_EQ(s.worker_status[1].phase, WorkerPhase::kDone);
}

TEST(StatusFile, WritesAtomicallyAndLeavesNoTmpResidue) {
  TempDir dir;
  const fs::path file = dir.path / "status.json";
  ASSERT_TRUE(write_status_file(file.string(), "{\"iteration\":1}\n"));
  EXPECT_EQ(slurp(file), "{\"iteration\":1}\n");
  ASSERT_TRUE(write_status_file(file.string(), "{\"iteration\":2}\n"));
  EXPECT_EQ(slurp(file), "{\"iteration\":2}\n");
  // Only the status file remains — the tmp staging file was renamed away.
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(StatusFile, FailsCleanlyOnUnwritableDirectory) {
  EXPECT_FALSE(write_status_file("/nonexistent_dir_zz/status.json", "{}\n"));
}

}  // namespace
}  // namespace compi::obs
