// Search-stall diagnosis: classification rules on synthetic timelines,
// verdict precedence, and the engine's transition-only journaling.
#include "obs/diagnosis.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "obs/journal.h"

namespace compi::obs {
namespace {

/// A timeline that reached `covered` at `last_gain` and then went flat
/// until `now`.
std::vector<CoveragePoint> flat_since(double last_gain, double now,
                                      std::int64_t covered) {
  return {{0.0, 1}, {last_gain, covered}, {now, covered}};
}

DiagnosisInput stalled_input() {
  DiagnosisInput in;
  in.elapsed_seconds = 60.0;
  in.coverage_timeline = flat_since(10.0, 60.0, 40);
  in.plateau_window_seconds = 20.0;
  in.frontier_depth = 12;
  return in;
}

TEST(Diagnose, ProgressingInsideWindow) {
  DiagnosisInput in;
  in.elapsed_seconds = 30.0;
  in.coverage_timeline = flat_since(25.0, 30.0, 40);
  in.plateau_window_seconds = 20.0;
  const Diagnosis d = diagnose(in);
  EXPECT_EQ(d.kind, StallKind::kProgressing);
  EXPECT_NEAR(d.stalled_seconds, 5.0, 1e-9);
  EXPECT_NE(d.detail.find("progressing"), std::string::npos);
}

TEST(Diagnose, EmptyTimelineIsProgressing) {
  DiagnosisInput in;
  in.elapsed_seconds = 100.0;
  const Diagnosis d = diagnose(in);
  EXPECT_EQ(d.kind, StallKind::kProgressing);
}

TEST(Diagnose, CoveragePlateauIsTheDefaultStall) {
  DiagnosisInput in = stalled_input();
  const Diagnosis d = diagnose(in);
  EXPECT_EQ(d.kind, StallKind::kCoveragePlateau);
  EXPECT_NEAR(d.stalled_seconds, 50.0, 1e-9);
  EXPECT_NE(d.detail.find("coverage-plateau"), std::string::npos);
}

TEST(Diagnose, FrontierStarvedNeedsEmptyFrontierAndQueue) {
  DiagnosisInput in = stalled_input();
  in.frontier_depth = 0;
  in.interleavings_pending = 0;
  EXPECT_EQ(diagnose(in).kind, StallKind::kFrontierStarved);
  in.interleavings_pending = 3;
  EXPECT_NE(diagnose(in).kind, StallKind::kFrontierStarved);
}

TEST(Diagnose, UnknownFrontierNeverStarves) {
  // -1 means "no telemetry yet": a coordinator must not conclude the
  // search ran dry just because nobody has reported a frontier.
  DiagnosisInput in = stalled_input();
  in.frontier_depth = -1;
  in.interleavings_pending = 0;
  EXPECT_EQ(diagnose(in).kind, StallKind::kCoveragePlateau);
}

TEST(Diagnose, SolverThrashWhenBudgetDominates) {
  DiagnosisInput in = stalled_input();
  in.solver_sat = 3;
  in.solver_unsat = 4;
  in.solver_budget = 9;
  const Diagnosis d = diagnose(in);
  EXPECT_EQ(d.kind, StallKind::kSolverThrash);
  EXPECT_NE(d.detail.find("solver-thrash"), std::string::npos);
  in.solver_budget = 6;  // minority: not thrash
  EXPECT_EQ(diagnose(in).kind, StallKind::kCoveragePlateau);
}

TEST(Diagnose, StragglerShardDetected) {
  DiagnosisInput in = stalled_input();
  in.shards = {{"fast", 10.0, true, 0.1}, {"slow", 1.0, true, 0.2}};
  const Diagnosis d = diagnose(in);
  EXPECT_EQ(d.kind, StallKind::kStragglerShard);
  EXPECT_NE(d.detail.find("slow"), std::string::npos);
  // A disconnected shard counts as a straggler regardless of rate.
  in.shards = {{"fast", 10.0, true, 0.1}, {"gone", 9.0, false, 30.0}};
  EXPECT_EQ(diagnose(in).kind, StallKind::kStragglerShard);
  // Two healthy similar shards: no straggler.
  in.shards = {{"a", 10.0, true, 0.1}, {"b", 8.0, true, 0.1}};
  EXPECT_EQ(diagnose(in).kind, StallKind::kCoveragePlateau);
}

TEST(Diagnose, LeaseChurnOutranksEverything) {
  DiagnosisInput in = stalled_input();
  in.frontier_depth = 0;  // would be frontier-starved
  in.shards = {{"fast", 10.0, true, 0.1}, {"slow", 0.1, true, 0.2}};
  in.shards_joined = 2;
  in.leases_reclaimed = 7;
  const Diagnosis d = diagnose(in);
  EXPECT_EQ(d.kind, StallKind::kLeaseChurn);
  EXPECT_NE(d.detail.find("lease-churn"), std::string::npos);
}

TEST(Diagnose, StallNeverFiresBeforeTheWindow) {
  DiagnosisInput in = stalled_input();
  in.frontier_depth = 0;
  in.plateau_window_seconds = 100.0;  // stalled 50s < window
  EXPECT_EQ(diagnose(in).kind, StallKind::kProgressing);
}

TEST(DiagnosisEngine, JournalsTransitionsOnly) {
  const std::filesystem::path file =
      std::filesystem::temp_directory_path() /
      ("compi_diag_test_" + std::to_string(::getpid()) + ".jsonl");
  {
    Journal journal;
    ASSERT_TRUE(journal.open(file));
    DiagnosisEngine engine(&journal);
    DiagnosisInput in;
    in.plateau_window_seconds = 5.0;
    in.frontier_depth = 4;
    // Coverage grows for 3 samples, then flatlines past the window.
    for (int i = 0; i < 3; ++i) {
      in.elapsed_seconds = i;
      engine.update(in, 10 + i, i);
    }
    for (int i = 3; i < 20; ++i) {
      in.elapsed_seconds = i;
      engine.update(in, 12, i);
    }
    EXPECT_EQ(engine.current().kind, StallKind::kCoveragePlateau);
    journal.close();
  }
  std::size_t malformed = 0;
  const std::vector<ParsedEvent> events = read_journal(file, &malformed);
  std::filesystem::remove(file);
  EXPECT_EQ(malformed, 0u);
  // Exactly two verdicts: the initial "progressing" and one transition to
  // "coverage-plateau" — not one event per sample.
  std::vector<std::string> kinds;
  for (const ParsedEvent& ev : events) {
    if (ev.type == "diagnosis") {
      kinds.push_back(ev.str("kind").value_or("?"));
    }
  }
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], "progressing");
  EXPECT_EQ(kinds[1], "coverage-plateau");
}

TEST(DiagnosisEngine, TimelineCapKeepsStallMeasurable) {
  // Bounding the history must keep enough of it that stalled_seconds can
  // still exceed the window after thousands of flat samples.
  DiagnosisEngine engine;
  DiagnosisInput in;
  in.plateau_window_seconds = 20.0;
  in.frontier_depth = 1;
  for (int i = 0; i < 2000; ++i) {
    in.elapsed_seconds = i * 0.1;
    engine.update(in, 50, i);
  }
  EXPECT_EQ(engine.current().kind, StallKind::kCoveragePlateau);
  EXPECT_GE(engine.current().stalled_seconds, 20.0);
}

TEST(DiagnosisEngine, GrowthThenLongFlatTailStillDiagnosesTheStall) {
  // The real-campaign shape: coverage climbs early, then flatlines for
  // thousands of fast iterations.  The engine's last-gain time must stay
  // pinned at the true transition — an earlier thinned-ring version kept
  // dropping the first post-gain sample, so the measured stall chased
  // elapsed time and never crossed the window.
  DiagnosisEngine engine;
  DiagnosisInput in;
  in.plateau_window_seconds = 1.0;
  in.frontier_depth = 3;
  for (int i = 0; i < 90; ++i) {
    in.elapsed_seconds = i * 0.001;
    engine.update(in, i + 1, i);
  }
  for (int i = 90; i < 5000; ++i) {
    in.elapsed_seconds = i * 0.001;
    engine.update(in, 90, i);
  }
  EXPECT_EQ(engine.current().kind, StallKind::kCoveragePlateau);
  EXPECT_NEAR(engine.current().stalled_seconds, 4.999 - 0.089, 0.002);
}

TEST(DiagnosisEngine, MomentaryFrontierZerosDoNotFlapTheVerdict) {
  // The driver's frontier empties and refills every few iterations as the
  // strategy exhausts, restarts, and replans.  The verdict must settle on
  // coverage-plateau, not oscillate starved <-> plateau sample by sample.
  DiagnosisEngine engine;
  DiagnosisInput in;
  in.plateau_window_seconds = 1.0;
  for (int i = 0; i < 400; ++i) {
    in.elapsed_seconds = i * 0.01;
    in.frontier_depth = i % 2 == 0 ? 3 : 0;
    const Diagnosis d = engine.update(in, 90, i);
    if (in.elapsed_seconds >= 1.5) {
      EXPECT_EQ(d.kind, StallKind::kCoveragePlateau) << "sample " << i;
    }
  }

  // A frontier that stays empty for the whole window IS starvation.
  DiagnosisEngine starved;
  in.frontier_depth = 0;
  for (int i = 0; i < 400; ++i) {
    in.elapsed_seconds = i * 0.01;
    starved.update(in, 90, i);
  }
  EXPECT_EQ(starved.current().kind, StallKind::kFrontierStarved);
}

TEST(DiagnosisEngine, StaleLowerCountsDoNotReadAsFreshGains) {
  // Parallel workers report covered counts out of order: a momentarily
  // stale lower value followed by the current maximum must not register
  // as new progress.
  DiagnosisEngine engine;
  DiagnosisInput in;
  in.plateau_window_seconds = 2.0;
  in.frontier_depth = 1;
  engine.update(in, 50, 0);  // elapsed 0: the last true gain
  for (int i = 1; i < 100; ++i) {
    in.elapsed_seconds = i * 0.1;
    engine.update(in, i % 2 == 0 ? 50 : 49, i);
  }
  EXPECT_EQ(engine.current().kind, StallKind::kCoveragePlateau);
  EXPECT_GE(engine.current().stalled_seconds, 9.0);
}

}  // namespace
}  // namespace compi::obs
