// Metrics registry: histogram bucketing, percentile estimation, and the
// Prometheus exposition dump.  Dump-format tests use a local Registry so
// they see exactly the metrics they registered, not whatever the rest of
// the process has bumped into the global one.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace compi::obs {
namespace {

TEST(HistogramBucketing, BucketOfEdgeCases) {
  // Bucket i has inclusive upper bound 2^i; bucket 0 catches everything
  // <= 1 including zero and negatives.
  EXPECT_EQ(Histogram::bucket_of(-5), 0);
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 0);
  EXPECT_EQ(Histogram::bucket_of(2), 1);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 2);
  EXPECT_EQ(Histogram::bucket_of(5), 3);
  EXPECT_EQ(Histogram::bucket_of(Histogram::bound(Histogram::kBuckets - 1)),
            Histogram::kBuckets - 1);
  // Anything past the last finite bound lands in +Inf.
  EXPECT_EQ(Histogram::bucket_of(Histogram::bound(Histogram::kBuckets - 1) + 1),
            Histogram::kBuckets);
}

TEST(HistogramBucketing, BoundsArePowersOfTwo) {
  EXPECT_EQ(Histogram::bound(0), 1);
  EXPECT_EQ(Histogram::bound(1), 2);
  EXPECT_EQ(Histogram::bound(10), 1024);
}

TEST(HistogramBucketing, ObserveAccumulates) {
  Histogram h;
  h.observe(1);
  h.observe(3);
  h.observe(3);
  h.observe(100);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 107);
  EXPECT_EQ(h.max_observed(), 100);
  EXPECT_EQ(h.bucket_count(0), 1);         // the 1
  EXPECT_EQ(h.bucket_count(2), 2);         // the two 3s (le=4)
  EXPECT_EQ(h.bucket_count(7), 1);         // 100 -> le=128
}

TEST(HistogramPercentile, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(HistogramPercentile, CappedByObservedMax) {
  // A single sample of 100 lands in bucket (64, 128].  Interpolation keeps
  // any estimate inside the bucket, and the cap keeps p100 at the exact
  // observed maximum rather than the bucket's upper bound.
  Histogram h;
  h.observe(100);
  EXPECT_GT(h.percentile(0.5), 64.0);
  EXPECT_LE(h.percentile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(HistogramPercentile, OrderedAcrossBuckets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(10);      // bucket le=16
  for (int i = 0; i < 10; ++i) h.observe(10'000);  // bucket le=16384
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  EXPECT_LE(p50, 16.0);
  EXPECT_GT(p95, 16.0);
  EXPECT_LE(p95, 10'000.0);
  EXPECT_LE(p50, p95);
}

TEST(ExactPercentile, InterpolatesRawSamples) {
  const std::vector<double> samples = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 1.0), 5.0);
  // p25 of {1..5} sits halfway between 2 and... exactly on 2: pos = 1.0.
  EXPECT_DOUBLE_EQ(percentile(samples, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(RegistryTest, ReRegisterReturnsSameHandle) {
  Registry reg;
  Counter& a = reg.counter("x_total", "help");
  Counter& b = reg.counter("x_total", "other help ignored");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(RegistryTest, PrometheusDumpFormat) {
  Registry reg;
  reg.counter("compi_test_total", "a counter").inc(7);
  reg.gauge("compi_test_depth", "a gauge").set(-2);
  Histogram& h = reg.histogram("compi_test_us", "a histogram");
  h.observe(1);
  h.observe(3);

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string out = os.str();

  EXPECT_NE(out.find("# HELP compi_test_total a counter\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE compi_test_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("compi_test_total 7\n"), std::string::npos);

  EXPECT_NE(out.find("# TYPE compi_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("compi_test_depth -2\n"), std::string::npos);

  EXPECT_NE(out.find("# TYPE compi_test_us histogram\n"), std::string::npos);
  // Buckets are cumulative: le="1" holds the 1, le="2" still 1, le="4"
  // picks up the 3.
  EXPECT_NE(out.find("compi_test_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("compi_test_us_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("compi_test_us_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("compi_test_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("compi_test_us_sum 4\n"), std::string::npos);
  EXPECT_NE(out.find("compi_test_us_count 2\n"), std::string::npos);
}

TEST(RegistryTest, LabeledSeriesShareOneFamilyHeader) {
  // Per-worker gauges are registered with the labels baked into the name;
  // consecutive same-base series must emit one HELP/TYPE pair (Prometheus
  // rejects duplicated family headers) with each sample on its own line.
  Registry reg;
  reg.gauge("compi_lbl_test{worker=\"0\"}", "per-worker probe").set(1);
  reg.gauge("compi_lbl_test{worker=\"1\"}", "per-worker probe").set(2);

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string out = os.str();

  std::size_t help_count = 0;
  for (std::size_t at = out.find("# HELP compi_lbl_test");
       at != std::string::npos;
       at = out.find("# HELP compi_lbl_test", at + 1)) {
    ++help_count;
  }
  EXPECT_EQ(help_count, 1u);
  // The family header names the base metric, not the labeled series.
  EXPECT_NE(out.find("# TYPE compi_lbl_test gauge\n"), std::string::npos);
  EXPECT_EQ(out.find("# TYPE compi_lbl_test{"), std::string::npos);
  EXPECT_NE(out.find("compi_lbl_test{worker=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("compi_lbl_test{worker=\"1\"} 2\n"), std::string::npos);
}

TEST(RegistryTest, GlobalRegistryIsStable) {
  Counter& c = registry().counter("compi_metrics_test_probe_total", "probe");
  const std::int64_t before = c.value();
  c.inc();
  EXPECT_EQ(registry().counter("compi_metrics_test_probe_total", "probe")
                .value(),
            before + 1);
}

}  // namespace
}  // namespace compi::obs
