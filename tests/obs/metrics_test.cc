// Metrics registry: histogram bucketing, percentile estimation, and the
// Prometheus exposition dump.  Dump-format tests use a local Registry so
// they see exactly the metrics they registered, not whatever the rest of
// the process has bumped into the global one.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace compi::obs {
namespace {

TEST(HistogramBucketing, BucketOfEdgeCases) {
  // Bucket i has inclusive upper bound 2^i; bucket 0 catches everything
  // <= 1 including zero and negatives.
  EXPECT_EQ(Histogram::bucket_of(-5), 0);
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 0);
  EXPECT_EQ(Histogram::bucket_of(2), 1);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 2);
  EXPECT_EQ(Histogram::bucket_of(5), 3);
  EXPECT_EQ(Histogram::bucket_of(Histogram::bound(Histogram::kBuckets - 1)),
            Histogram::kBuckets - 1);
  // Anything past the last finite bound lands in +Inf.
  EXPECT_EQ(Histogram::bucket_of(Histogram::bound(Histogram::kBuckets - 1) + 1),
            Histogram::kBuckets);
}

TEST(HistogramBucketing, BoundsArePowersOfTwo) {
  EXPECT_EQ(Histogram::bound(0), 1);
  EXPECT_EQ(Histogram::bound(1), 2);
  EXPECT_EQ(Histogram::bound(10), 1024);
}

TEST(HistogramBucketing, ObserveAccumulates) {
  Histogram h;
  h.observe(1);
  h.observe(3);
  h.observe(3);
  h.observe(100);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 107);
  EXPECT_EQ(h.max_observed(), 100);
  EXPECT_EQ(h.bucket_count(0), 1);         // the 1
  EXPECT_EQ(h.bucket_count(2), 2);         // the two 3s (le=4)
  EXPECT_EQ(h.bucket_count(7), 1);         // 100 -> le=128
}

TEST(HistogramPercentile, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(HistogramPercentile, CappedByObservedMax) {
  // A single sample of 100 lands in bucket (64, 128].  Interpolation keeps
  // any estimate inside the bucket, and the cap keeps p100 at the exact
  // observed maximum rather than the bucket's upper bound.
  Histogram h;
  h.observe(100);
  EXPECT_GT(h.percentile(0.5), 64.0);
  EXPECT_LE(h.percentile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(HistogramPercentile, OrderedAcrossBuckets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(10);      // bucket le=16
  for (int i = 0; i < 10; ++i) h.observe(10'000);  // bucket le=16384
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  EXPECT_LE(p50, 16.0);
  EXPECT_GT(p95, 16.0);
  EXPECT_LE(p95, 10'000.0);
  EXPECT_LE(p50, p95);
}

TEST(ExactPercentile, InterpolatesRawSamples) {
  const std::vector<double> samples = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 1.0), 5.0);
  // p25 of {1..5} sits halfway between 2 and... exactly on 2: pos = 1.0.
  EXPECT_DOUBLE_EQ(percentile(samples, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(RegistryTest, ReRegisterReturnsSameHandle) {
  Registry reg;
  Counter& a = reg.counter("x_total", "help");
  Counter& b = reg.counter("x_total", "other help ignored");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(RegistryTest, PrometheusDumpFormat) {
  Registry reg;
  reg.counter("compi_test_total", "a counter").inc(7);
  reg.gauge("compi_test_depth", "a gauge").set(-2);
  Histogram& h = reg.histogram("compi_test_us", "a histogram");
  h.observe(1);
  h.observe(3);

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string out = os.str();

  EXPECT_NE(out.find("# HELP compi_test_total a counter\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE compi_test_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("compi_test_total 7\n"), std::string::npos);

  EXPECT_NE(out.find("# TYPE compi_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("compi_test_depth -2\n"), std::string::npos);

  EXPECT_NE(out.find("# TYPE compi_test_us histogram\n"), std::string::npos);
  // Buckets are cumulative: le="1" holds the 1, le="2" still 1, le="4"
  // picks up the 3.
  EXPECT_NE(out.find("compi_test_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("compi_test_us_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("compi_test_us_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("compi_test_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("compi_test_us_sum 4\n"), std::string::npos);
  EXPECT_NE(out.find("compi_test_us_count 2\n"), std::string::npos);
}

TEST(RegistryTest, LabeledSeriesShareOneFamilyHeader) {
  // Per-worker gauges are registered with the labels baked into the name;
  // consecutive same-base series must emit one HELP/TYPE pair (Prometheus
  // rejects duplicated family headers) with each sample on its own line.
  Registry reg;
  reg.gauge("compi_lbl_test{worker=\"0\"}", "per-worker probe").set(1);
  reg.gauge("compi_lbl_test{worker=\"1\"}", "per-worker probe").set(2);

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string out = os.str();

  std::size_t help_count = 0;
  for (std::size_t at = out.find("# HELP compi_lbl_test");
       at != std::string::npos;
       at = out.find("# HELP compi_lbl_test", at + 1)) {
    ++help_count;
  }
  EXPECT_EQ(help_count, 1u);
  // The family header names the base metric, not the labeled series.
  EXPECT_NE(out.find("# TYPE compi_lbl_test gauge\n"), std::string::npos);
  EXPECT_EQ(out.find("# TYPE compi_lbl_test{"), std::string::npos);
  EXPECT_NE(out.find("compi_lbl_test{worker=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("compi_lbl_test{worker=\"1\"} 2\n"), std::string::npos);
}

TEST(LabelEscaping, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("has space"), "has space");
  EXPECT_EQ(escape_label_value("q\"uote"), "q\\\"uote");
  EXPECT_EQ(escape_label_value("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape_label_value("new\nline"), "new\\nline");
  // Backslash first, then quote: escaping must not double-process.
  EXPECT_EQ(escape_label_value("\\\""), "\\\\\\\"");
}

TEST(LabelEscaping, LabeledNameComposes) {
  EXPECT_EQ(labeled_name("compi_shard_iterations", "shard", "node 1"),
            "compi_shard_iterations{shard=\"node 1\"}");
  EXPECT_EQ(labeled_name("m", "shard", "a\"b"), "m{shard=\"a\\\"b\"}");
}

/// Prometheus text exposition lint: empty string when `text` parses under
/// the format's line grammar, else a description of the first bad line.
/// Covers what real scrapers reject — malformed names, unterminated or
/// raw-newline label values, unparsable sample values, duplicate family
/// headers.
std::string exposition_lint(const std::string& text) {
  const auto valid_name = [](std::string_view name) {
    if (name.empty()) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         c == '_' || c == ':';
      if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
    }
    return true;
  };
  std::vector<std::string> seen_headers;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hl(line);
      std::string hash, kind, family;
      hl >> hash >> kind >> family;
      if (kind != "HELP" && kind != "TYPE") return "bad comment: " + line;
      if (!valid_name(family)) return "bad family name: " + line;
      const std::string header = kind + " " + family;
      for (const std::string& h : seen_headers) {
        if (h == header) return "duplicate header: " + line;
      }
      seen_headers.push_back(header);
      continue;
    }
    // Sample line: name[{label="value",...}] value
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    if (!valid_name(line.substr(0, pos))) return "bad metric name: " + line;
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        std::size_t eq = pos;
        while (eq < line.size() && line[eq] != '=') ++eq;
        if (eq >= line.size() || !valid_name(line.substr(pos, eq - pos))) {
          return "bad label name: " + line;
        }
        pos = eq + 1;
        if (pos >= line.size() || line[pos] != '"') {
          return "unquoted label value: " + line;
        }
        ++pos;
        bool closed = false;
        while (pos < line.size()) {
          if (line[pos] == '\\') {
            if (pos + 1 >= line.size() ||
                (line[pos + 1] != '\\' && line[pos + 1] != '"' &&
                 line[pos + 1] != 'n')) {
              return "bad escape in label value: " + line;
            }
            pos += 2;
          } else if (line[pos] == '"') {
            closed = true;
            ++pos;
            break;
          } else {
            ++pos;
          }
        }
        if (!closed) return "unterminated label value: " + line;
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (pos >= line.size() || line[pos] != '}') {
        return "unterminated label block: " + line;
      }
      ++pos;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return "missing value separator: " + line;
    }
    const std::string value = line.substr(pos + 1);
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || value.empty()) {
        return "bad sample value: " + line;
      }
    }
  }
  return "";
}

TEST(RegistryTest, ExpositionLintPassesWithHostileShardNames) {
  // The fleet gauges label series with user-chosen shard names; spaces,
  // quotes, backslashes and newlines must all survive a strict scrape.
  Registry reg;
  const char* names[] = {"node one", "we\"ird", "back\\slash", "nl\nname"};
  for (const char* name : names) {
    reg.gauge(labeled_name("compi_shard_iterations", "shard", name),
              "iterations merged per shard")
        .set(5);
    reg.gauge(labeled_name("compi_shard_last_heartbeat_seconds", "shard",
                           name),
              "since last frame")
        .set(1);
  }
  reg.counter("compi_lint_total", "plain family").inc();
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string verdict = exposition_lint(os.str());
  EXPECT_EQ(verdict, "") << os.str();
  // The space-bearing shard name is present, unmangled, exactly once.
  EXPECT_NE(os.str().find("compi_shard_iterations{shard=\"node one\"} 5"),
            std::string::npos);
}

TEST(RegistryTest, ExpositionLintCatchesRawNewline) {
  // The lint itself must have teeth: an unescaped newline inside a label
  // value splits the sample into two invalid lines.
  EXPECT_NE(exposition_lint("m{shard=\"a\nb\"} 1\n"), "");
  EXPECT_NE(exposition_lint("1bad_name 3\n"), "");
  EXPECT_NE(exposition_lint("m{shard=\"open} 1\n"), "");
  EXPECT_EQ(exposition_lint("m{shard=\"a b\"} 1\n"), "");
}

TEST(RegistryTest, GlobalRegistryIsStable) {
  Counter& c = registry().counter("compi_metrics_test_probe_total", "probe");
  const std::int64_t before = c.value();
  c.inc();
  EXPECT_EQ(registry().counter("compi_metrics_test_probe_total", "probe")
                .value(),
            before + 1);
}

}  // namespace
}  // namespace compi::obs
