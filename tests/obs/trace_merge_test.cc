// `compi trace-merge`: lane assignment, clock alignment, identity
// sidecars, and tolerance of missing inputs.
#include "obs/trace_merge.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace.h"

namespace compi::obs {
namespace {

class TraceMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("compi_trace_merge_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::filesystem::path dir(const std::string& name) {
    const std::filesystem::path d = root_ / name;
    std::filesystem::create_directories(d);
    return d;
  }

  /// Writes a trace.json in the exporter's exact shape: one span at
  /// `ts_us`, plus the per-file process metadata the merge must replace.
  static void write_trace(const std::filesystem::path& d,
                          const std::string& span, std::int64_t ts_us,
                          std::int64_t epoch_wall_us) {
    std::ofstream out(d / "trace.json");
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        << "{\"name\":\"" << span
        << "\",\"cat\":\"driver\",\"ph\":\"X\",\"ts\":" << ts_us
        << ",\"pid\":1,\"tid\":0,\"dur\":5},\n"
        << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"args\":{\"name\":\"compi\"}},\n"
        << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"args\":{\"name\":\"driver\"}}"
        << "],\"otherData\":{\"dropped_events\":0,\"epoch_wall_us\":"
        << epoch_wall_us << "}}\n";
  }

  static void write_file(const std::filesystem::path& path,
                         const std::string& text) {
    std::ofstream out(path);
    out << text;
  }

  std::filesystem::path root_;
};

TEST_F(TraceMergeTest, AssignsOneLanePerSource) {
  const auto coord = dir("coord");
  const auto a = dir("shard-a");
  const auto b = dir("shard-b");
  write_trace(coord, "merge_delta", 100, 1'000'000);
  write_trace(a, "solve", 50, 1'000'000);
  write_trace(b, "solve", 60, 1'000'000);
  write_file(a / "shard.json", "{\"key\":\"alpha#1\",\"name\":\"alpha\"}\n");
  write_file(b / "shard.json", "{\"key\":\"beta#2\",\"name\":\"beta\"}\n");

  TraceMergeOptions opts;
  opts.coordinator_dir = coord.string();
  opts.shard_dirs = {a.string(), b.string()};
  std::ostringstream out;
  std::string error;
  ASSERT_TRUE(merge_traces(opts, out, &error)) << error;
  const std::string merged = out.str();

  // Coordinator lane is pid 1; shards follow in argument order.
  EXPECT_NE(merged.find("\"name\":\"merge_delta\""), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(merged.find("{\"name\":\"coordinator\"}"), std::string::npos);
  EXPECT_NE(merged.find("{\"name\":\"shard alpha\"}"), std::string::npos);
  EXPECT_NE(merged.find("{\"name\":\"shard beta\"}"), std::string::npos);
  // The per-file "compi" process metadata must not leak through.
  EXPECT_EQ(merged.find("{\"name\":\"compi\"}"), std::string::npos);
  // Still a Chrome trace envelope.
  EXPECT_EQ(merged.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
}

TEST_F(TraceMergeTest, AlignsShardClocksToTheCoordinatorEpoch) {
  const auto coord = dir("coord");
  const auto a = dir("shard-a");
  // Coordinator epoch at wall 2'000'000; shard epoch at wall 2'500'000:
  // a shard event at ts=100 lands at 500'100 on the merged clock.
  write_trace(coord, "merge_delta", 100, 2'000'000);
  write_trace(a, "solve", 100, 2'500'000);

  TraceMergeOptions opts;
  opts.coordinator_dir = coord.string();
  opts.shard_dirs = {a.string()};
  std::ostringstream out;
  ASSERT_TRUE(merge_traces(opts, out, nullptr));
  const std::string merged = out.str();
  EXPECT_NE(merged.find("\"ts\":500100"), std::string::npos);
  // The coordinator's own event keeps its timestamp (it is the base).
  EXPECT_NE(merged.find("\"ts\":100,\"pid\":1"), std::string::npos);
}

TEST_F(TraceMergeTest, AppliesJournaledWallClockDrift) {
  const auto coord = dir("coord");
  const auto a = dir("shard-a");
  write_trace(coord, "merge_delta", 0, 5'000'000);
  write_trace(a, "solve", 10, 5'000'000);
  write_file(a / "shard.json", "{\"key\":\"alpha#1\",\"name\":\"alpha\"}\n");
  // The shard's wall clock runs 1s behind the coordinator's: drift
  // (coord - shard) = +1'000'000us must shift its lane forward.
  write_file(coord / "journal.jsonl",
             "{\"type\":\"shard_joined\",\"iter\":0,\"shard\":\"alpha#1\","
             "\"ordinal\":0,\"rejoin\":false,\"shard_wall_us\":4000000,"
             "\"coord_wall_us\":5000000}\n");

  TraceMergeOptions opts;
  opts.coordinator_dir = coord.string();
  opts.shard_dirs = {a.string()};
  std::ostringstream out;
  ASSERT_TRUE(merge_traces(opts, out, nullptr));
  EXPECT_NE(out.str().find("\"ts\":1000010"), std::string::npos);
}

TEST_F(TraceMergeTest, FallsBackToDirBasenameWithoutSidecar) {
  const auto a = dir("nightly-7");
  write_trace(a, "solve", 1, 1'000'000);
  TraceMergeOptions opts;
  opts.shard_dirs = {a.string()};
  std::ostringstream out;
  ASSERT_TRUE(merge_traces(opts, out, nullptr));
  EXPECT_NE(out.str().find("{\"name\":\"shard nightly-7\"}"),
            std::string::npos);
}

TEST_F(TraceMergeTest, SkipsUnreadableDirsButFailsOnNothing) {
  const auto a = dir("shard-a");
  write_trace(a, "solve", 1, 1'000'000);
  TraceMergeOptions opts;
  opts.shard_dirs = {a.string(), (root_ / "missing").string()};
  std::ostringstream out;
  ASSERT_TRUE(merge_traces(opts, out, nullptr));
  EXPECT_NE(out.str().find("\"skipped\":1"), std::string::npos);

  TraceMergeOptions none;
  none.shard_dirs = {(root_ / "missing").string()};
  std::ostringstream empty;
  std::string error;
  EXPECT_FALSE(merge_traces(none, empty, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(TraceMergeTest, MergesARealTracerExport) {
  // End to end against the real exporter: record spans through the global
  // tracer, export, merge the file as a lone shard.
  const auto a = dir("shard-real");
  tracer().configure(64);
  tracer().set_enabled(true);
  { ObsSpan span(Cat::kSolver, "real_span", "n", 3); }
  obs::instant(Cat::kCoord, "real_instant", "x", 1);
  tracer().set_enabled(false);
  std::ofstream out_file(a / "trace.json");
  tracer().write_chrome_json(out_file);
  out_file.close();

  TraceMergeOptions opts;
  opts.shard_dirs = {a.string()};
  std::ostringstream out;
  std::string error;
  ASSERT_TRUE(merge_traces(opts, out, &error)) << error;
#ifndef COMPI_OBS_DISABLED
  EXPECT_NE(out.str().find("\"name\":\"real_span\""), std::string::npos);
#endif
  EXPECT_NE(out.str().find("{\"name\":\"shard shard-real\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace compi::obs
