// Tracer behavior: ring wraparound, span nesting, enable gating, track
// ids, and parse-back validation of the Chrome trace_event JSON export.
//
// gtest_discover_tests runs each TEST in its own process, but these tests
// still re-configure() the global tracer up front (clearing the ring) and
// disable it on exit, so they hold up under any runner.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "tests/obs/json_util.h"

namespace compi::obs {
namespace {

namespace json = compi::testing::json;

std::string dump() {
  std::ostringstream os;
  tracer().write_chrome_json(os);
  return os.str();
}

TEST(TraceExport, EmptyTraceIsValidJson) {
  // Holds in both build modes: with COMPI_OBS_DISABLED the exporter must
  // still write a loadable (empty) trace.
  const json::Value root = json::parse(dump());
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.at("traceEvents").is_array());
  EXPECT_TRUE(root.has("otherData"));
}

#ifndef COMPI_OBS_DISABLED

struct TracerGuard {
  TracerGuard(std::size_t kb) { tracer().configure(kb); tracer().set_enabled(true); }
  ~TracerGuard() { tracer().set_enabled(false); }
};

TEST(TraceRing, WraparoundIsLossyNotFatal) {
  TracerGuard guard(1);  // smallest ring: a handful of slots
  const std::size_t cap = tracer().capacity();
  ASSERT_GT(cap, 0u);
  const std::size_t n = cap + 13;
  for (std::size_t i = 0; i < n; ++i) {
    instant(Cat::kMpi, "wrap_probe", "i", static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(tracer().size(), cap);
  EXPECT_EQ(tracer().dropped(), n - cap);
  // The export survives a wrapped ring and reports the loss.
  const json::Value root = json::parse(dump());
  EXPECT_EQ(root.at("otherData").at("dropped_events").number,
            static_cast<double>(n - cap));
}

TEST(TraceSpans, NestedSpansRecordCompleteEvents) {
  TracerGuard guard(64);
  {
    ObsSpan outer(Cat::kDriver, "outer_span");
    {
      ObsSpan inner(Cat::kSolver, "inner_span", "nodes", 42);
    }
  }
  const json::Value root = json::parse(dump());
  const json::Value* outer = nullptr;
  const json::Value* inner = nullptr;
  for (const json::Value& e : root.at("traceEvents").array) {
    if (!e.has("name")) continue;
    if (e.at("name").string == "outer_span") outer = &e;
    if (e.at("name").string == "inner_span") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->at("ph").string, "X");
  EXPECT_EQ(inner->at("ph").string, "X");
  EXPECT_EQ(inner->at("cat").string, "solver");
  EXPECT_EQ(inner->at("args").at("nodes").number, 42.0);
  // The inner span starts no earlier and ends no later than the outer one.
  const double o_ts = outer->at("ts").number, o_dur = outer->at("dur").number;
  const double i_ts = inner->at("ts").number, i_dur = inner->at("dur").number;
  EXPECT_GE(i_ts, o_ts);
  EXPECT_LE(i_ts + i_dur, o_ts + o_dur);
}

TEST(TraceSpans, FinishIsIdempotentEarlyEnd) {
  TracerGuard guard(64);
  ObsSpan span(Cat::kDriver, "finished_span");
  span.finish();
  span.finish();  // second call must not record again
  std::size_t count = 0;
  const json::Value root = json::parse(dump());
  for (const json::Value& e : root.at("traceEvents").array) {
    if (e.has("name") && e.at("name").string == "finished_span") ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(TraceGating, DisabledRecordsNothing) {
  tracer().configure(64);
  tracer().set_enabled(false);
  {
    ObsSpan span(Cat::kDriver, "ghost_span");
    instant(Cat::kMpi, "ghost_instant");
  }
  EXPECT_EQ(tracer().size(), 0u);
}

TEST(TraceTracks, ScopedTrackTagsEvents) {
  TracerGuard guard(64);
  {
    ScopedTrack track(5);
    instant(Cat::kChaos, "tracked_instant");
  }
  EXPECT_EQ(thread_track(), 0);  // restored on scope exit
  const json::Value root = json::parse(dump());
  bool found = false;
  for (const json::Value& e : root.at("traceEvents").array) {
    if (e.has("name") && e.at("name").string == "tracked_instant") {
      found = true;
      EXPECT_EQ(e.at("tid").number, 5.0);
      EXPECT_EQ(e.at("ph").string, "i");
      EXPECT_EQ(e.at("s").string, "t");
    }
  }
  EXPECT_TRUE(found);
}

TEST(TraceExport, ParseBackStructure) {
  TracerGuard guard(64);
  instant(Cat::kMpi, "evt_a", "dest", 1);
  {
    ScopedTrack track(2);
    ObsSpan span(Cat::kCollective, "evt_b", "rank", 1);
  }
  const json::Value root = json::parse(dump());
  ASSERT_TRUE(root.at("traceEvents").is_array());

  bool saw_driver_name = false, saw_track2_name = false;
  for (const json::Value& e : root.at("traceEvents").array) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.at("ph").string;
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "M") << "bad ph: " << ph;
    if (ph != "M") {
      // Every real event carries the common fields on pid 1.
      EXPECT_TRUE(e.has("name"));
      EXPECT_TRUE(e.has("cat"));
      EXPECT_TRUE(e.has("ts"));
      EXPECT_TRUE(e.has("tid"));
      EXPECT_EQ(e.at("pid").number, 1.0);
      continue;
    }
    if (e.at("name").string == "thread_name") {
      const std::string label = e.at("args").at("name").string;
      if (e.at("tid").number == 0.0) {
        saw_driver_name = true;
        EXPECT_EQ(label, "driver");
      }
      if (e.at("tid").number == 2.0) {
        saw_track2_name = true;
        EXPECT_EQ(label, "rank 1");
      }
    }
  }
  EXPECT_TRUE(saw_driver_name);
  EXPECT_TRUE(saw_track2_name);
}

#endif  // COMPI_OBS_DISABLED

}  // namespace
}  // namespace compi::obs
