// Artifact write-failure surfacing: every best-effort writer (status
// heartbeat, journal, checkpoint) must count its failures in
// compi_artifact_write_errors_total, log once per artifact kind, and keep
// the last complete snapshot intact instead of replacing it with a torn
// one.
#include "obs/artifacts.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "compi/checkpoint.h"
#include "compi/session.h"
#include "obs/journal.h"
#include "obs/status.h"

namespace compi {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("compi_artifacts_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ArtifactErrorsTest, StatusWriteToMissingDirectoryIsCounted) {
  TempDir tmp;
  const std::int64_t before = obs::artifact_write_errors();
  const std::string bad = (tmp.path / "no_such_dir" / "status.json").string();
  EXPECT_FALSE(obs::write_status_file(bad, "{\"iteration\":1}\n"));
  EXPECT_EQ(obs::artifact_write_errors(), before + 1);

  // The happy path stays silent: a writable target adds nothing.
  const std::string good = (tmp.path / "status.json").string();
  EXPECT_TRUE(obs::write_status_file(good, "{\"iteration\":2}\n"));
  EXPECT_EQ(obs::artifact_write_errors(), before + 1);
  EXPECT_EQ(slurp(good), "{\"iteration\":2}\n");
}

TEST(ArtifactErrorsTest, JournalOpenFailureIsCounted) {
  TempDir tmp;
  const std::int64_t before = obs::artifact_write_errors();
  obs::Journal journal;
  EXPECT_FALSE(journal.open(tmp.path / "no_such_dir" / "journal.jsonl"));
  EXPECT_EQ(obs::artifact_write_errors(), before + 1);
  EXPECT_TRUE(journal.open(tmp.path / "journal.jsonl"));
}

TEST(ArtifactErrorsTest, FailedCheckpointWriteKeepsTheLastGoodSnapshot) {
  TempDir tmp;
  SessionWriter writer(tmp.path / "sess");

  ckpt::CampaignCheckpoint first;
  first.seed = 42;
  first.next_iteration = 9;
  writer.write_checkpoint(first);
  ASSERT_TRUE(read_checkpoint(writer.dir()).has_value());

  // A directory squatting on the temp path makes the next tmp open fail —
  // the writer must report it and leave the complete snapshot untouched
  // (chmod tricks don't work here: tests may run as root).
  fs::create_directories(writer.dir() / "checkpoint.txt.tmp");
  const std::int64_t before = obs::artifact_write_errors();
  ckpt::CampaignCheckpoint second;
  second.seed = 42;
  second.next_iteration = 20;
  writer.write_checkpoint(second);
  EXPECT_EQ(obs::artifact_write_errors(), before + 1);
  const auto kept = read_checkpoint(writer.dir());
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->next_iteration, 9);

  // The failed attempt cleans up its debris, so the next write lands.
  writer.write_checkpoint(second);
  EXPECT_EQ(read_checkpoint(writer.dir())->next_iteration, 20);
}

TEST(ArtifactErrorsTest, LogsOncePerArtifactKindButCountsEveryFailure) {
  const std::int64_t before = obs::artifact_write_errors();
  ::testing::internal::CaptureStderr();
  obs::note_artifact_write_error("probe-kind", "/tmp/one");
  obs::note_artifact_write_error("probe-kind", "/tmp/two");
  obs::note_artifact_write_error("probe-kind", "/tmp/three");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(count_occurrences(err, "failed to write probe-kind artifact"), 1u);
  EXPECT_NE(err.find("compi_artifact_write_errors_total"), std::string::npos);
  EXPECT_EQ(obs::artifact_write_errors(), before + 3);
}

}  // namespace
}  // namespace compi
