// End-to-end observability: a campaign run with tracing and metrics on
// must leave behind a loadable Chrome trace with one track per rank plus
// the driver, a Prometheus dump with the campaign counters, a phase
// breakdown whose shares account for the whole wall clock, and (under
// chaos) the injected fault as an event on the victim rank's track.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "compi/driver.h"
#include "compi/report.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "tests/compi/fig2_target.h"
#include "tests/obs/json_util.h"

namespace compi {
namespace {

namespace fs = std::filesystem;
namespace json = compi::testing::json;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_obs_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

CampaignOptions obs_opts(const TempDir& tmp) {
  CampaignOptions opts;
  opts.seed = 7;
  opts.iterations = 6;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.confirm_bugs = false;
  opts.trace = true;
  opts.metrics = true;
  opts.log_dir = tmp.path.string();
  return opts;
}

TEST(CampaignObs, MetricsPromIsWrittenWithCampaignCounters) {
  TempDir tmp;
  const CampaignResult result = Campaign(fig2_target(), obs_opts(tmp)).run();
  ASSERT_EQ(result.iterations.size(), 6u);

  const std::string prom = slurp(tmp.path / "metrics.prom");
  ASSERT_FALSE(prom.empty());
  EXPECT_NE(prom.find("# TYPE compi_iterations_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE compi_exec_us histogram"), std::string::npos);
  EXPECT_NE(prom.find("compi_exec_us_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(prom.find("compi_mpi_collectives_total"), std::string::npos);
  // The run above did 6 iterations in this process.
  EXPECT_NE(prom.find("compi_iterations_total 6\n"), std::string::npos)
      << prom;
}

TEST(CampaignObs, PhaseBreakdownSharesAccountForWallClock) {
  TempDir tmp;
  const CampaignResult result = Campaign(fig2_target(), obs_opts(tmp)).run();
  const PhaseBreakdown breakdown = compute_phase_breakdown(result);
  ASSERT_EQ(breakdown.phases.size(), 3u);
  EXPECT_GT(breakdown.total_seconds, 0.0);
  double share_sum = 0.0;
  for (const PhaseStats& phase : breakdown.phases) {
    EXPECT_GE(phase.share, 0.0);
    share_sum += phase.share;
  }
  EXPECT_NEAR(share_sum, 1.0, 0.02);
  // Execute and solve carry per-iteration percentiles; overhead has no
  // per-iteration samples and reports n/a.
  EXPECT_GE(breakdown.phases[0].p50_us, 0.0);
  EXPECT_GE(breakdown.phases[0].p95_us, breakdown.phases[0].p50_us);
  EXPECT_LT(breakdown.phases[2].p50_us, 0.0);
}

#ifndef COMPI_OBS_DISABLED

TEST(CampaignObs, TraceJsonHasDriverAndRankTracks) {
  TempDir tmp;
  const CampaignResult result = Campaign(fig2_target(), obs_opts(tmp)).run();
  obs::tracer().set_enabled(false);
  ASSERT_FALSE(result.iterations.empty());

  const json::Value root = json::parse(slurp(tmp.path / "trace.json"));
  ASSERT_TRUE(root.at("traceEvents").is_array());

  std::set<int> event_tids;
  std::set<std::string> track_names;
  for (const json::Value& e : root.at("traceEvents").array) {
    const std::string ph = e.at("ph").string;
    if (ph == "M") {
      if (e.at("name").string == "thread_name") {
        track_names.insert(e.at("args").at("name").string);
      }
      continue;
    }
    event_tids.insert(static_cast<int>(e.at("tid").number));
  }
  // Driver track plus at least two rank tracks (the campaign launched >= 4
  // ranks per iteration).
  EXPECT_TRUE(event_tids.count(0) == 1) << "driver track missing";
  int rank_tracks = 0;
  for (const int tid : event_tids) {
    if (tid >= 1) ++rank_tracks;
  }
  EXPECT_GE(rank_tracks, 2);
  EXPECT_TRUE(track_names.count("driver") == 1);
  EXPECT_TRUE(track_names.count("rank 0") == 1);
  EXPECT_TRUE(track_names.count("rank 1") == 1);

  // The driver track carries the campaign envelope and iteration spans.
  bool saw_campaign = false, saw_iteration = false;
  for (const json::Value& e : root.at("traceEvents").array) {
    if (!e.has("name") || e.at("ph").string == "M") continue;
    if (e.at("name").string == "campaign") {
      saw_campaign = true;
      EXPECT_EQ(e.at("tid").number, 0.0);
    }
    if (e.at("name").string == "iteration") saw_iteration = true;
  }
  EXPECT_TRUE(saw_campaign);
  EXPECT_TRUE(saw_iteration);
}

TEST(CampaignObs, InjectedCrashAppearsOnVictimRankTrack) {
  TempDir tmp;
  CampaignOptions opts = obs_opts(tmp);
  opts.iterations = 3;
  opts.chaos.crash_rank = 1;
  opts.chaos.crash_at_call = 1;
  const CampaignResult result = Campaign(fig2_target(), opts).run();
  obs::tracer().set_enabled(false);
  ASSERT_FALSE(result.iterations.empty());

  const json::Value root = json::parse(slurp(tmp.path / "trace.json"));
  bool found = false;
  for (const json::Value& e : root.at("traceEvents").array) {
    if (e.has("name") && e.at("name").string == "chaos_crash") {
      found = true;
      EXPECT_EQ(e.at("cat").string, "chaos");
      // Rank 1's track is tid 2 (tid 0 = driver, tid r+1 = rank r).
      EXPECT_EQ(e.at("tid").number, 2.0);
    }
  }
  EXPECT_TRUE(found) << "injected crash must be visible on the victim track";
}

#endif  // COMPI_OBS_DISABLED

TEST(CampaignObs, BugBudgetStopStillFlushesMetricsTraceAndJournal) {
  // Regression: a campaign that terminates early once --max-bugs is hit
  // must still flush every observability artifact — the stop is graceful,
  // not a simulated kill.
  TempDir tmp;
  CampaignOptions opts = obs_opts(tmp);
  opts.iterations = 300;  // budget large enough to derive y == 77
  opts.max_bugs = 1;
  opts.journal = true;
  const CampaignResult result =
      Campaign(fig2_target(/*with_bug=*/true), opts).run();
#ifndef COMPI_OBS_DISABLED
  obs::tracer().set_enabled(false);
#endif

  ASSERT_FALSE(result.bugs.empty()) << "the seeded bug must be derivable";
  ASSERT_LT(result.iterations.size(), 300u) << "must stop before the budget";

  EXPECT_FALSE(slurp(tmp.path / "metrics.prom").empty())
      << "metrics must be flushed on early termination";
  EXPECT_FALSE(slurp(tmp.path / "trace.json").empty())
      << "trace must be flushed on early termination";

  // The journal records the stop and stays aligned with iterations.csv.
  std::size_t iteration_events = 0;
  bool saw_budget_event = false;
  for (const obs::ParsedEvent& ev :
       obs::read_journal(tmp.path / "journal.jsonl")) {
    if (ev.type == "iteration") ++iteration_events;
    if (ev.type == "bug_budget_exhausted") saw_budget_event = true;
  }
  EXPECT_EQ(iteration_events, result.iterations.size());
  EXPECT_TRUE(saw_budget_event);
  // The summary still ran (graceful stop, not a kill).
  EXPECT_FALSE(slurp(tmp.path / "summary.txt").empty());
  EXPECT_FALSE(slurp(tmp.path / "ledger.csv").empty());
}

TEST(CampaignObs, IterationsCsvHasSolverColumnsAndAllRows) {
  TempDir tmp;
  const CampaignResult result = Campaign(fig2_target(), obs_opts(tmp)).run();
  ASSERT_EQ(result.iterations.size(), 6u);
  const std::string csv = slurp(tmp.path / "iterations.csv");
  ASSERT_FALSE(csv.empty());
  EXPECT_NE(csv.find("solver_nodes,retries"), std::string::npos) << csv;
  // Header + one row per iteration (the writer flushes incrementally, so
  // every completed iteration must already be on disk).
  const auto lines = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, result.iterations.size() + 1);
}

}  // namespace
}  // namespace compi
