// Minimal recursive-descent JSON parser for the obs tests: just enough to
// parse an exported Chrome trace back and assert on its structure.  Not a
// general-purpose parser — throws std::runtime_error on malformed input,
// which is exactly what a validity test wants.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace compi::testing::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  [[nodiscard]] const Value& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing key: " + key);
    return object.at(key);
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  char get() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (get() != c) {
      throw std::runtime_error(std::string("expected '") + c + "'");
    }
  }

  void literal(std::string_view word) {
    for (char c : word) expect(c);
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': {
        literal("true");
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        literal("false");
        Value v;
        v.type = Value::Type::kBool;
        return v;
      }
      case 'n': {
        literal("null");
        return Value{};
      }
      default: return number();
    }
  }

  Value object() {
    Value v;
    v.type = Value::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      get();
      return v;
    }
    for (;;) {
      skip_ws();
      const std::string key = raw_string();
      skip_ws();
      expect(':');
      v.object[key] = value();
      skip_ws();
      const char c = get();
      if (c == '}') return v;
      if (c != ',') throw std::runtime_error("expected ',' or '}'");
    }
  }

  Value array() {
    Value v;
    v.type = Value::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      get();
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      const char c = get();
      if (c == ']') return v;
      if (c != ',') throw std::runtime_error("expected ',' or ']'");
    }
  }

  Value string_value() {
    Value v;
    v.type = Value::Type::kString;
    v.string = raw_string();
    return v;
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = get();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = get();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = get();
            code *= 16;
            if (h >= '0' && h <= '9') code += h - '0';
            else if (h >= 'a' && h <= 'f') code += h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code += h - 'A' + 10;
            else throw std::runtime_error("bad \\u escape");
          }
          // The exporter only emits \u00XX control escapes: one byte.
          out.push_back(static_cast<char>(code));
          break;
        }
        default: throw std::runtime_error("bad escape");
      }
    }
  }

  Value number() {
    Value v;
    v.type = Value::Type::kNumber;
    const std::size_t start = pos_;
    if (peek() == '-') get();
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string tok(text_.substr(start, pos_ - start));
    if (tok.empty()) throw std::runtime_error("bad number");
    v.number = std::stod(tok);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline Value parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace compi::testing::json
