// The event journal: JSON emission, buffered commit, crash-tolerant
// read-back, and the resume truncation contract (events at or past the
// checkpoint boundary are dropped, torn tails are skipped).
#include "obs/journal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace compi::obs {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_journal_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

TEST(JsonWriter, EscapesQuotesBackslashesAndControlCharacters) {
  std::string out;
  JsonWriter::append_escaped(out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
}

TEST(JsonWriter, BuildsAFlatObjectWithTypedFields) {
  std::string out;
  JsonWriter w(out);
  w.field("n", std::int64_t{42});
  w.field("s", std::string_view{"hi"});
  w.field_bool("b", true);
  w.begin_object("inputs");
  w.field("x", std::int64_t{7});
  w.end_object();
  w.finish();
  EXPECT_EQ(out, "{\"n\":42,\"s\":\"hi\",\"b\":true,\"inputs\":{\"x\":7}}\n");
}

TEST(Journal, DisabledJournalMakesEventsNoOps) {
  Journal journal;  // never opened
  EXPECT_FALSE(journal.enabled());
  JournalEvent(journal, "iteration", 0).num("nprocs", 4).str("outcome", "ok");
  journal.flush();
  EXPECT_EQ(journal.events_written(), 0u);
}

TEST(Journal, EventsRoundTripThroughReadJournal) {
  TempDir tmp;
  const fs::path file = tmp.path / "journal.jsonl";
  Journal journal;
  ASSERT_TRUE(journal.open(file));
  {
    JournalEvent ev(journal, "iteration", 3);
    ev.num("nprocs", 8)
        .real("exec_seconds", 0.25)
        .str("outcome", "ok")
        .boolean("restart", false)
        .inputs({{"x", 33}, {"y", 77}});
  }
  JournalEvent(journal, "solve", 3).num("target", 12).boolean("sat", true);
  journal.close();
  EXPECT_EQ(journal.events_written(), 2u);

  std::size_t malformed = 0;
  const std::vector<ParsedEvent> events = read_journal(file, &malformed);
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, "iteration");
  EXPECT_EQ(events[0].iter(), 3);
  EXPECT_EQ(events[0].num("nprocs"), 8);
  EXPECT_EQ(events[0].real("exec_seconds"), 0.25);
  EXPECT_EQ(events[0].str("outcome"), "ok");
  EXPECT_EQ(events[0].boolean("restart"), false);
  EXPECT_EQ(events[0].num("inputs.x"), 33);
  EXPECT_EQ(events[0].num("inputs.y"), 77);
  EXPECT_EQ(events[1].type, "solve");
  EXPECT_EQ(events[1].boolean("sat"), true);
}

TEST(Journal, ParseRejectsMalformedAndTornLines) {
  EXPECT_FALSE(parse_journal_line("").has_value());
  EXPECT_FALSE(parse_journal_line("not json").has_value());
  EXPECT_FALSE(parse_journal_line("{\"type\":\"x\"").has_value());  // torn
  EXPECT_FALSE(parse_journal_line("{\"iter\":1}").has_value());  // no type
  EXPECT_FALSE(
      parse_journal_line("{\"type\":\"x\"}").has_value());  // no iter
  const auto ok = parse_journal_line("{\"type\":\"x\",\"iter\":5}");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->iter(), 5);
}

TEST(Journal, ReadSkipsTornTrailingLine) {
  TempDir tmp;
  const fs::path file = tmp.path / "journal.jsonl";
  {
    std::ofstream out(file);
    out << "{\"type\":\"iteration\",\"iter\":0}\n"
        << "{\"type\":\"iteration\",\"it";  // writer died mid-line
  }
  std::size_t malformed = 0;
  const std::vector<ParsedEvent> events = read_journal(file, &malformed);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(malformed, 1u);
}

TEST(Journal, OpenResumeDropsEventsAtOrPastTheBoundaryAndTornTails) {
  TempDir tmp;
  const fs::path file = tmp.path / "journal.jsonl";
  {
    Journal journal;
    ASSERT_TRUE(journal.open(file));
    for (int i = 0; i < 6; ++i) {
      JournalEvent(journal, "iteration", i).num("nprocs", 4);
      JournalEvent(journal, "solve", i).boolean("sat", true);
    }
    journal.close();
  }
  // Simulate the killed writer's torn tail.
  {
    std::ofstream out(file, std::ios::app);
    out << "{\"type\":\"iteration\",\"iter\":6,\"npro";
  }
  // Checkpoint said the next iteration is 3: events 0..2 survive, the
  // un-checkpointed tail (3..6) and the torn line go.
  Journal journal;
  ASSERT_TRUE(journal.open_resume(file, 3));
  JournalEvent(journal, "iteration", 3).num("nprocs", 4);
  journal.close();

  const std::vector<ParsedEvent> events = read_journal(file);
  ASSERT_EQ(events.size(), 7u);  // (iteration+solve) x 3 retained + 1 new
  int iteration_events = 0;
  for (const ParsedEvent& ev : events) {
    EXPECT_LE(ev.iter(), 3);
    if (ev.type == "iteration") ++iteration_events;
  }
  EXPECT_EQ(iteration_events, 4);
  const std::string text = slurp(file);
  EXPECT_EQ(text.find("\"iter\":4"), std::string::npos);
  EXPECT_EQ(text.find("\"iter\":6"), std::string::npos)
      << "torn tail retained";
}

TEST(Journal, OpenResumeFallsBackToFreshOpenWhenFileMissing) {
  TempDir tmp;
  Journal journal;
  ASSERT_TRUE(journal.open_resume(tmp.path / "journal.jsonl", 10));
  JournalEvent(journal, "iteration", 10);
  journal.close();
  EXPECT_EQ(read_journal(tmp.path / "journal.jsonl").size(), 1u);
}

TEST(Journal, BufferedEventsReachDiskOnFlush) {
  TempDir tmp;
  const fs::path file = tmp.path / "journal.jsonl";
  Journal journal;
  ASSERT_TRUE(journal.open(file));
  JournalEvent(journal, "iteration", 0).num("covered_branches", 5);
  journal.flush();
  // Visible to a reader while the journal is still open.
  EXPECT_EQ(read_journal(file).size(), 1u);
  journal.close();
}

TEST(JournalTap, TapOnlyJournalRetainsLinesWithoutAFile) {
  Journal journal;  // no file: --serve without --journal
  EXPECT_FALSE(journal.tap_enabled());
  journal.enable_tap(8);
  EXPECT_TRUE(journal.tap_enabled());
  EXPECT_TRUE(journal.enabled());  // emit sites turn on for the tap alone

  for (int i = 0; i < 3; ++i) {
    JournalEvent(journal, "iteration", i).num("covered", 10 + i);
  }
  std::vector<std::string> lines;
  const std::uint64_t head = journal.tap_since(0, lines);
  EXPECT_EQ(head, 3u);
  ASSERT_EQ(lines.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const auto ev = parse_journal_line(lines[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->type, "iteration");
    EXPECT_EQ(ev->iter(), i);
    EXPECT_EQ(ev->num("covered"), 10 + i);
  }

  // Resuming from the returned cursor yields nothing new.
  std::vector<std::string> more;
  EXPECT_EQ(journal.tap_since(head, more), head);
  EXPECT_TRUE(more.empty());
}

TEST(JournalTap, RingEvictsOldestAndStaleCursorsSkipAhead) {
  Journal journal;
  journal.enable_tap(2);
  for (int i = 0; i < 5; ++i) {
    JournalEvent(journal, "solve", i);
  }
  // A cursor older than the retained window misses events but still gets
  // everything that survives.
  std::vector<std::string> lines;
  const std::uint64_t head = journal.tap_since(0, lines);
  EXPECT_EQ(head, 5u);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(parse_journal_line(lines[0])->iter(), 3);
  EXPECT_EQ(parse_journal_line(lines[1])->iter(), 4);
}

TEST(JournalTap, TapAndFileSeeTheSameEvents) {
  TempDir dir;
  Journal journal;
  ASSERT_TRUE(journal.open(dir.path / "journal.jsonl"));
  journal.enable_tap(16);
  JournalEvent(journal, "iteration", 0).num("covered", 1);
  JournalEvent(journal, "iteration", 1).num("covered", 2);
  journal.close();

  std::vector<std::string> tapped;
  journal.tap_since(0, tapped);
  ASSERT_EQ(tapped.size(), 2u);  // tap survives close()
  const auto from_disk = read_journal(dir.path / "journal.jsonl");
  ASSERT_EQ(from_disk.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto ev = parse_journal_line(tapped[i]);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->iter(), from_disk[i].iter());
    EXPECT_EQ(ev->num("covered"), from_disk[i].num("covered"));
  }
}

TEST(ParseJsonObject, ParsesBareObjectsWithoutTheJournalEnvelope) {
  const auto obj =
      parse_json_object("{\"a\":1,\"nested\":{\"b\":2},\"s\":\"x\"}");
  ASSERT_TRUE(obj.has_value());
  EXPECT_TRUE(obj->type.empty());
  EXPECT_EQ(obj->num("a"), 1);
  EXPECT_EQ(obj->num("nested.b"), 2);
  EXPECT_EQ(obj->str("s"), "x");
  EXPECT_FALSE(parse_json_object("{\"a\":1").has_value());
}

}  // namespace
}  // namespace compi::obs
