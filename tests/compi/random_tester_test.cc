#include "compi/random_tester.h"

#include <gtest/gtest.h>

#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

using compi::testing::fig2_target;

CampaignOptions opts_with(int iterations) {
  CampaignOptions opts;
  opts.seed = 21;
  opts.iterations = iterations;
  opts.max_procs = 8;
  return opts;
}

TEST(RandomTester, ProducesCoverage) {
  RandomTester tester(fig2_target(), opts_with(50));
  const CampaignResult result = tester.run();
  EXPECT_EQ(result.iterations.size(), 50u);
  EXPECT_GT(result.covered_branches, 0u);
  EXPECT_GT(result.coverage_rate, 0.0);
}

TEST(RandomTester, RespectsProcessCap) {
  CampaignOptions opts = opts_with(40);
  opts.max_procs = 3;
  RandomTester tester(fig2_target(), opts);
  const CampaignResult result = tester.run();
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_GE(rec.nprocs, 1);
    EXPECT_LE(rec.nprocs, 3);
  }
}

TEST(RandomTester, VariesProcessCount) {
  RandomTester tester(fig2_target(), opts_with(60));
  const CampaignResult result = tester.run();
  int distinct = 0;
  std::vector<bool> seen(9, false);
  for (const IterationRecord& rec : result.iterations) {
    if (!seen[rec.nprocs]) {
      seen[rec.nprocs] = true;
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 2);
}

TEST(RandomTester, LosesToConcolicOnFig2) {
  // The paper's core claim (§VI-E): concolic >> random on guarded code.
  CampaignOptions opts = opts_with(80);
  const CampaignResult random = RandomTester(fig2_target(), opts).run();
  const CampaignResult concolic = Campaign(fig2_target(), opts).run();
  EXPECT_GT(concolic.covered_branches, random.covered_branches);
  // Random can essentially never satisfy y == 77 within small budgets.
  EXPECT_LT(random.covered_branches, compi::testing::kFig2Branches);
}

TEST(RandomTester, TimeBudgetStopsEarly) {
  CampaignOptions opts = opts_with(1'000'000);
  opts.time_budget_seconds = 0.2;
  RandomTester tester(fig2_target(), opts);
  const CampaignResult result = tester.run();
  EXPECT_LT(result.iterations.size(), 1'000'000u);
}

TEST(RandomTester, DeterministicForFixedSeed) {
  const CampaignResult a = RandomTester(fig2_target(), opts_with(30)).run();
  const CampaignResult b = RandomTester(fig2_target(), opts_with(30)).run();
  EXPECT_EQ(a.covered_branches, b.covered_branches);
}

}  // namespace
}  // namespace compi
