// Torn-write recovery: a truncated or corrupted trailing checkpoint.txt
// (and a partial final iterations.csv row) must not strand the session —
// resume falls back to the last complete snapshot and repairs the CSV.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "compi/checkpoint.h"
#include "compi/driver.h"
#include "compi/session.h"
#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_recovery_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

CampaignOptions session_opts(const fs::path& dir) {
  CampaignOptions opts;
  opts.seed = 21;
  opts.iterations = 60;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.dfs_phase_iterations = 30;
  opts.checkpoint_interval = 5;
  opts.log_dir = dir.string();
  return opts;
}

/// Runs the campaign to `halt_after` iterations, leaving checkpoint.txt
/// AND checkpoint.txt.bak behind (interval 5, so several snapshots landed).
void run_until_halt(const fs::path& dir, int halt_after) {
  CampaignOptions opts = session_opts(dir);
  opts.halt_after_iterations = halt_after;
  const CampaignResult partial = Campaign(fig2_target(), opts).run();
  ASSERT_EQ(partial.iterations.size(), static_cast<std::size_t>(halt_after));
  ASSERT_TRUE(fs::exists(dir / "checkpoint.txt"));
  ASSERT_TRUE(fs::exists(dir / "checkpoint.txt.bak"))
      << "repeated snapshots must demote the previous one to .bak";
}

void truncate_file(const fs::path& file, double keep_fraction) {
  std::ifstream in(file, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  in.close();
  text.resize(static_cast<std::size_t>(
      static_cast<double>(text.size()) * keep_fraction));
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  out << text;
}

CampaignResult resume_campaign(const fs::path& dir) {
  CampaignOptions opts = session_opts(dir);
  opts.resume = true;
  return Campaign(fig2_target(), opts).run();
}

TEST(CheckpointRecovery, EverySnapshotKeepsAReadableBak) {
  TempDir dir;
  run_until_halt(dir.path, 30);
  std::ifstream txt(dir.path / "checkpoint.txt");
  std::ifstream bak(dir.path / "checkpoint.txt.bak");
  const auto head = ckpt::CampaignCheckpoint::read(txt);
  const auto prev = ckpt::CampaignCheckpoint::read(bak);
  ASSERT_TRUE(head.has_value());
  ASSERT_TRUE(prev.has_value());
  EXPECT_GE(head->next_iteration, prev->next_iteration);
}

TEST(CheckpointRecovery, TruncatedCheckpointFallsBackToBak) {
  TempDir dir;
  run_until_halt(dir.path, 30);
  // Simulate a torn write: the head snapshot is cut mid-file.
  truncate_file(dir.path / "checkpoint.txt", 0.6);
  {
    std::ifstream in(dir.path / "checkpoint.txt");
    ASSERT_FALSE(ckpt::CampaignCheckpoint::read(in).has_value())
        << "the torn head snapshot must not parse";
  }
  const auto recovered = read_checkpoint(dir.path);
  ASSERT_TRUE(recovered.has_value())
      << "read_checkpoint must fall back to checkpoint.txt.bak";

  const CampaignResult got = resume_campaign(dir.path);
  EXPECT_TRUE(got.resumed);
  EXPECT_EQ(got.iterations.size(), 60u);
  // The resumed tail re-runs deterministically, so the final CSV is whole.
  std::ifstream csv(dir.path / "iterations.csv");
  std::string line;
  int rows = 0;
  while (std::getline(csv, line)) ++rows;
  EXPECT_EQ(rows, 61);  // header + 60 complete rows
}

TEST(CheckpointRecovery, CorruptedCheckpointBodyFallsBackToBak) {
  TempDir dir;
  run_until_halt(dir.path, 30);
  // Flip the version header into garbage instead of truncating.
  std::ofstream out(dir.path / "checkpoint.txt",
                    std::ios::binary | std::ios::trunc);
  out << "compi-checkpoint 999\ngarbage that should never parse\n";
  out.close();
  const CampaignResult got = resume_campaign(dir.path);
  EXPECT_TRUE(got.resumed);
  EXPECT_EQ(got.iterations.size(), 60u);
}

TEST(CheckpointRecovery, PartialFinalCsvRowIsRepairedOnResume) {
  TempDir dir;
  run_until_halt(dir.path, 30);
  {
    // A crash mid-append leaves a torn trailing row.
    std::ofstream csv(dir.path / "iterations.csv",
                      std::ios::binary | std::ios::app);
    csv << "31,4,0,seg";  // no newline, half the columns
  }
  const CampaignResult got = resume_campaign(dir.path);
  EXPECT_TRUE(got.resumed);
  EXPECT_EQ(got.iterations.size(), 60u);
  std::ifstream csv(dir.path / "iterations.csv");
  std::string line;
  int rows = 0;
  bool torn_row_survived = false;
  while (std::getline(csv, line)) {
    if (line.find("seg") != std::string::npos &&
        line.find("segfault") == std::string::npos) {
      torn_row_survived = true;
    }
    ++rows;
  }
  EXPECT_EQ(rows, 61);
  EXPECT_FALSE(torn_row_survived)
      << "begin_iterations must rewrite the CSV from the restored records";
}

TEST(CheckpointRecovery, BothSnapshotsUnreadableFallsBackToFreshRun) {
  TempDir dir;
  run_until_halt(dir.path, 30);
  truncate_file(dir.path / "checkpoint.txt", 0.5);
  truncate_file(dir.path / "checkpoint.txt.bak", 0.5);
  EXPECT_FALSE(read_checkpoint(dir.path).has_value());
  const CampaignResult got = resume_campaign(dir.path);
  // No snapshot to continue from: a fresh campaign, run to the full budget.
  EXPECT_FALSE(got.resumed);
  EXPECT_EQ(got.iterations.size(), 60u);
}

}  // namespace
}  // namespace compi
