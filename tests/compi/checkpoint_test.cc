// Checkpoint/resume: serialization round-trips plus the headline property —
// a campaign killed after iteration k and resumed from its checkpoint
// finishes with the same coverage, bug list, and iteration tail as an
// uninterrupted run.
#include "compi/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "compi/session.h"
#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_ckpt_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

TEST(Ckpt, EscapeRoundTripsControlCharacters) {
  const std::string nasty = "line1\nline2\r\\tail\\n";
  EXPECT_EQ(ckpt::unescape(ckpt::escape(nasty)), nasty);
  EXPECT_EQ(ckpt::escape(nasty).find('\n'), std::string::npos);
}

TEST(Ckpt, FormatDoubleIsShortestRoundTrip) {
  for (double v : {0.0, 1.5, 0.1, 3.14159265358979, -2.75e-9, 1e300}) {
    EXPECT_EQ(std::stod(ckpt::format_double(v)), v);
  }
}

TEST(Ckpt, PredicateRoundTrips) {
  solver::LinearExpr expr(7);
  expr.add_term(0, 3);
  expr.add_term(5, -2);
  const solver::Predicate p{expr, solver::CompareOp::kLe};
  std::stringstream ss;
  ckpt::write_predicate(ss, p);
  solver::Predicate back;
  ASSERT_TRUE(ckpt::read_predicate(ss, back));
  EXPECT_EQ(back, p);
}

TEST(Ckpt, PathRoundTrips) {
  sym::Path path;
  path.append(3, true, {solver::LinearExpr(1, 2, -5), solver::CompareOp::kGt});
  path.append(9, false, {solver::LinearExpr(42), solver::CompareOp::kEq});
  std::stringstream ss;
  ckpt::write_path(ss, path);
  sym::Path back;
  ASSERT_TRUE(ckpt::read_path(ss, back));
  ASSERT_EQ(back.size(), path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    EXPECT_EQ(back[i].site, path[i].site);
    EXPECT_EQ(back[i].taken, path[i].taken);
    EXPECT_EQ(back[i].constraint, path[i].constraint);
  }
}

ckpt::CampaignCheckpoint sample_checkpoint() {
  ckpt::CampaignCheckpoint c;
  c.seed = 77;
  c.next_iteration = 12;
  c.plan_inputs = {{0, 5}, {1, -3}};
  c.plan_nprocs = 6;
  c.plan_focus = 2;
  c.next_is_restart = true;
  c.pending_depth = 4;
  c.failures = 3;
  c.consecutive_replans = 1;
  c.bounded_phase = true;
  c.restarts = 2;
  c.max_constraint_set = 9;
  c.depth_bound_used = 20;
  c.transient_retries = 5;
  c.focus_replans = 1;
  c.sandbox_runs = 40;
  c.sandbox_signal_kills = 3;
  c.sandbox_hang_kills = 2;
  c.sandbox_harvest_bytes = 123456;
  IterationRecord rec;
  rec.iteration = 11;
  rec.nprocs = 6;
  rec.focus = 2;
  rec.outcome = rt::Outcome::kSegfault;
  rec.constraint_set_size = 7;
  rec.covered_branches = 13;
  rec.exec_seconds = 0.0321;
  rec.solve_seconds = 1.25e-4;
  rec.restart = true;
  c.iterations.push_back(rec);
  BugRecord bug;
  bug.first_iteration = 3;
  bug.occurrences = 4;
  bug.outcome = rt::Outcome::kAssert;
  bug.message = "multi\nline assertion: a[5] out of bounds";
  bug.inputs = {{0, 77}};
  bug.named_inputs = {{"x", 77}, {"weird key", -1}};
  bug.nprocs = 6;
  bug.focus = 0;
  bug.flaky = true;
  c.bugs.push_back(bug);
  c.covered = {0, 3, 5, 12};
  rt::VarMeta meta;
  meta.key = "x";
  meta.kind = rt::VarKind::kRegular;
  meta.domain = {0, 500};
  meta.cap = 500;
  c.registry.push_back(meta);
  rt::VarMeta rank_meta;
  rank_meta.key = "rc:0";
  rank_meta.kind = rt::VarKind::kRankLocal;
  rank_meta.domain = {0, 15};
  rank_meta.comm_index = 0;
  c.registry.push_back(rank_meta);
  c.known_hang_signatures = {"test wall-clock timeout", "hang\nwith newline"};
  c.strategy_name = "BoundedDFS";
  c.strategy_state = "stats 4 1\nframes 0\n";
  return c;
}

TEST(Ckpt, CampaignCheckpointRoundTrips) {
  const ckpt::CampaignCheckpoint c = sample_checkpoint();
  std::stringstream ss;
  c.write(ss);
  const auto back = ckpt::CampaignCheckpoint::read(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seed, c.seed);
  EXPECT_EQ(back->next_iteration, c.next_iteration);
  EXPECT_EQ(back->plan_inputs, c.plan_inputs);
  EXPECT_EQ(back->plan_nprocs, c.plan_nprocs);
  EXPECT_EQ(back->plan_focus, c.plan_focus);
  EXPECT_EQ(back->next_is_restart, c.next_is_restart);
  EXPECT_EQ(back->pending_depth, c.pending_depth);
  EXPECT_EQ(back->failures, c.failures);
  EXPECT_EQ(back->consecutive_replans, c.consecutive_replans);
  EXPECT_EQ(back->bounded_phase, c.bounded_phase);
  EXPECT_EQ(back->restarts, c.restarts);
  EXPECT_EQ(back->max_constraint_set, c.max_constraint_set);
  EXPECT_EQ(back->depth_bound_used, c.depth_bound_used);
  EXPECT_EQ(back->transient_retries, c.transient_retries);
  EXPECT_EQ(back->focus_replans, c.focus_replans);
  EXPECT_EQ(back->sandbox_runs, c.sandbox_runs);
  EXPECT_EQ(back->sandbox_signal_kills, c.sandbox_signal_kills);
  EXPECT_EQ(back->sandbox_hang_kills, c.sandbox_hang_kills);
  EXPECT_EQ(back->sandbox_harvest_bytes, c.sandbox_harvest_bytes);
  ASSERT_EQ(back->iterations.size(), 1u);
  EXPECT_EQ(back->iterations[0].outcome, rt::Outcome::kSegfault);
  EXPECT_EQ(back->iterations[0].exec_seconds, c.iterations[0].exec_seconds);
  EXPECT_EQ(back->iterations[0].solve_seconds, c.iterations[0].solve_seconds);
  ASSERT_EQ(back->bugs.size(), 1u);
  EXPECT_EQ(back->bugs[0].message, c.bugs[0].message);
  EXPECT_EQ(back->bugs[0].named_inputs, c.bugs[0].named_inputs);
  EXPECT_EQ(back->bugs[0].flaky, true);
  EXPECT_EQ(back->covered, c.covered);
  ASSERT_EQ(back->registry.size(), 2u);
  EXPECT_EQ(back->registry[0].key, "x");
  EXPECT_EQ(back->registry[0].cap, c.registry[0].cap);
  EXPECT_EQ(back->registry[1].kind, rt::VarKind::kRankLocal);
  EXPECT_EQ(back->registry[1].comm_index, 0);
  EXPECT_EQ(back->known_hang_signatures, c.known_hang_signatures);
  EXPECT_EQ(back->strategy_name, c.strategy_name);
  EXPECT_EQ(back->strategy_state, c.strategy_state);
}

TEST(Ckpt, TruncatedOrWrongVersionIsRejected) {
  const ckpt::CampaignCheckpoint c = sample_checkpoint();
  std::stringstream full;
  c.write(full);
  const std::string text = full.str();

  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_FALSE(ckpt::CampaignCheckpoint::read(truncated).has_value());

  std::stringstream wrong_version("compi-checkpoint 999\n" +
                                  text.substr(text.find('\n') + 1));
  EXPECT_FALSE(ckpt::CampaignCheckpoint::read(wrong_version).has_value());

  std::stringstream garbage("not a checkpoint at all\n");
  EXPECT_FALSE(ckpt::CampaignCheckpoint::read(garbage).has_value());
}

// ---------------------------------------------------------------------------
// Resume equivalence.
// ---------------------------------------------------------------------------

CampaignOptions resume_opts(const fs::path& dir) {
  CampaignOptions opts;
  opts.seed = 21;
  opts.iterations = 60;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.dfs_phase_iterations = 30;
  opts.checkpoint_interval = 1;
  opts.log_dir = dir.string();
  return opts;
}

/// iterations.csv with the wall-clock columns (exec/solve seconds) blanked:
/// those are the only fields that legitimately differ across processes.
std::string csv_without_timings(const fs::path& session_dir) {
  std::ifstream in(session_dir / "iterations.csv");
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string field;
    int i = 0;
    while (std::getline(fields, field, ',')) {
      if (i == 6 || i == 7) field = "_";  // exec_seconds, solve_seconds
      out << (i ? "," : "") << field;
      ++i;
    }
    out << '\n';
  }
  return out.str();
}

void expect_resume_equivalence(int kill_after) {
  TempDir full_dir, killed_dir;

  // Uninterrupted reference run.
  Campaign full(fig2_target(/*with_bug=*/true), resume_opts(full_dir.path));
  const CampaignResult want = full.run();

  // Same campaign, killed after `kill_after` iterations...
  CampaignOptions killed = resume_opts(killed_dir.path);
  killed.halt_after_iterations = kill_after;
  const CampaignResult partial =
      Campaign(fig2_target(/*with_bug=*/true), killed).run();
  ASSERT_EQ(partial.iterations.size(), static_cast<std::size_t>(kill_after));
  ASSERT_TRUE(fs::exists(killed_dir.path / "checkpoint.txt"));
  ASSERT_FALSE(fs::exists(killed_dir.path / "summary.txt"))
      << "a killed process cannot have written its summary";

  // ...then resumed from its session directory.
  CampaignOptions resumed = resume_opts(killed_dir.path);
  resumed.resume = true;
  const CampaignResult got =
      Campaign(fig2_target(/*with_bug=*/true), resumed).run();

  EXPECT_TRUE(got.resumed);
  EXPECT_EQ(got.covered_branches, want.covered_branches);
  EXPECT_EQ(got.restarts, want.restarts);
  ASSERT_EQ(got.bugs.size(), want.bugs.size());
  for (std::size_t i = 0; i < want.bugs.size(); ++i) {
    EXPECT_EQ(got.bugs[i].message, want.bugs[i].message);
    EXPECT_EQ(got.bugs[i].first_iteration, want.bugs[i].first_iteration);
    EXPECT_EQ(got.bugs[i].occurrences, want.bugs[i].occurrences);
    EXPECT_EQ(got.bugs[i].named_inputs, want.bugs[i].named_inputs);
  }
  ASSERT_EQ(got.iterations.size(), want.iterations.size());
  for (std::size_t i = 0; i < want.iterations.size(); ++i) {
    EXPECT_EQ(got.iterations[i].iteration, want.iterations[i].iteration) << i;
    EXPECT_EQ(got.iterations[i].nprocs, want.iterations[i].nprocs) << i;
    EXPECT_EQ(got.iterations[i].focus, want.iterations[i].focus) << i;
    EXPECT_EQ(got.iterations[i].outcome, want.iterations[i].outcome) << i;
    EXPECT_EQ(got.iterations[i].constraint_set_size,
              want.iterations[i].constraint_set_size)
        << i;
    EXPECT_EQ(got.iterations[i].covered_branches,
              want.iterations[i].covered_branches)
        << i;
    EXPECT_EQ(got.iterations[i].restart, want.iterations[i].restart) << i;
  }
  // The on-disk CSV (all rows, including the tail the resumed process
  // produced) matches the uninterrupted session byte-for-byte once the
  // wall-clock columns are masked.
  EXPECT_EQ(csv_without_timings(killed_dir.path),
            csv_without_timings(full_dir.path));
}

TEST(Resume, KilledBeforePhaseSwitchMatchesUninterrupted) {
  expect_resume_equivalence(/*kill_after=*/20);
}

TEST(Resume, KilledAfterPhaseSwitchMatchesUninterrupted) {
  expect_resume_equivalence(/*kill_after=*/40);
}

TEST(Resume, MissingCheckpointFallsBackToFreshRun) {
  TempDir tmp;
  CampaignOptions opts = resume_opts(tmp.path);
  opts.iterations = 10;
  opts.resume = true;  // nothing to resume from
  const CampaignResult result = Campaign(fig2_target(), opts).run();
  EXPECT_FALSE(result.resumed);
  EXPECT_EQ(result.iterations.size(), 10u);
  EXPECT_TRUE(fs::exists(tmp.path / "summary.txt"));
}

TEST(Resume, CorruptCheckpointFallsBackToFreshRun) {
  TempDir tmp;
  fs::create_directories(tmp.path);
  std::ofstream(tmp.path / "checkpoint.txt") << "compi-checkpoint 1\njunk\n";
  CampaignOptions opts = resume_opts(tmp.path);
  opts.iterations = 8;
  opts.resume = true;
  const CampaignResult result = Campaign(fig2_target(), opts).run();
  EXPECT_FALSE(result.resumed);
  EXPECT_EQ(result.iterations.size(), 8u);
}

TEST(Resume, SeedMismatchIsNotResumed) {
  TempDir tmp;
  CampaignOptions first = resume_opts(tmp.path);
  first.iterations = 6;
  (void)Campaign(fig2_target(), first).run();
  ASSERT_TRUE(fs::exists(tmp.path / "checkpoint.txt"));

  CampaignOptions other = resume_opts(tmp.path);
  other.iterations = 6;
  other.seed = first.seed + 1;  // different campaign: checkpoint is stale
  other.resume = true;
  const CampaignResult result = Campaign(fig2_target(), other).run();
  EXPECT_FALSE(result.resumed);
}

TEST(Resume, CompletedSessionResumesToNoFurtherWork) {
  TempDir tmp;
  CampaignOptions opts = resume_opts(tmp.path);
  opts.iterations = 12;
  const CampaignResult first = Campaign(fig2_target(), opts).run();

  opts.resume = true;
  const CampaignResult again = Campaign(fig2_target(), opts).run();
  EXPECT_TRUE(again.resumed);
  EXPECT_EQ(again.iterations.size(), first.iterations.size());
  EXPECT_EQ(again.covered_branches, first.covered_branches);
}

}  // namespace
}  // namespace compi
