// Fuzzing the durable-format parsers: random truncation and bit-flips of
// checkpoint.txt, journal.jsonl, iterations.csv, ledger.csv, bugs.txt and
// summary.txt must NEVER crash the readers — every corruption degrades to
// a clean fallback (nullopt / skipped lines / empty vector), and a resumed
// campaign over a corrupted session starts fresh and still completes.
//
// The corpus is real: one serial and one 2-worker fig2 session are run
// once and their artifacts mutated deterministically (mt19937, fixed
// seed), so failures reproduce exactly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "compi/checkpoint.h"
#include "compi/driver.h"
#include "compi/explain.h"
#include "compi/session.h"
#include "obs/journal.h"
#include "sandbox/wire.h"
#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_fuzz_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::string slurp(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const fs::path& file, const std::string& bytes) {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// Pristine artifacts from one real session of each shape, produced once.
struct Corpus {
  std::string serial_checkpoint;
  std::string parallel_checkpoint;
  /// A current-version snapshot with the coordinator section populated
  /// (leases and shard cursors with hostile shard names), as
  /// `compi coordinate` writes.
  std::string coordinator_checkpoint;
  std::string journal;
  std::string iterations_csv;
  std::string ledger_csv;
  std::string bugs_txt;
  std::string summary_txt;
};

const Corpus& corpus() {
  static const Corpus c = [] {
    Corpus out;
    {
      TempDir dir;
      CampaignOptions opts;
      opts.seed = 11;
      opts.iterations = 40;
      opts.initial_nprocs = 4;
      opts.max_procs = 8;
      opts.dfs_phase_iterations = 20;
      opts.checkpoint_interval = 5;
      opts.journal = true;
      opts.log_dir = dir.path.string();
      (void)Campaign(fig2_target(), opts).run();
      out.serial_checkpoint = slurp(dir.path / "checkpoint.txt");
      out.journal = slurp(dir.path / "journal.jsonl");
      out.iterations_csv = slurp(dir.path / "iterations.csv");
      out.ledger_csv = slurp(dir.path / "ledger.csv");
      out.bugs_txt = slurp(dir.path / "bugs.txt");
      out.summary_txt = slurp(dir.path / "summary.txt");
    }
    {
      TempDir dir;
      CampaignOptions opts;
      opts.seed = 11;
      opts.iterations = 40;
      opts.initial_nprocs = 4;
      opts.max_procs = 8;
      opts.dfs_phase_iterations = 20;
      opts.checkpoint_interval = 5;
      opts.workers = 2;
      opts.log_dir = dir.path.string();
      (void)Campaign(fig2_target(), opts).run();
      out.parallel_checkpoint = slurp(dir.path / "checkpoint.txt");
    }
    {
      // Coordinator snapshots are the serial shape plus the coord section;
      // graft one onto the real serial snapshot so every other field stays
      // a genuine campaign state.
      std::istringstream is(out.serial_checkpoint);
      std::optional<ckpt::CampaignCheckpoint> cp =
          ckpt::CampaignCheckpoint::read(is);
      if (cp.has_value()) {
        cp->is_coordinator = true;
        cp->coord_budget = 480;
        cp->coord_completed = 123;
        cp->coord_next_lease_id = 9;
        cp->coord_leases.push_back({7, "rack 7@2a", 16});
        cp->coord_leases.push_back({8, "line\nbreak@ff", 4});
        cp->coord_shards.push_back({"rack 7@2a", 64, 3});
        cp->coord_shards.push_back({"line\nbreak@ff", 59, 0});
        std::ostringstream os;
        cp->write(os);
        out.coordinator_checkpoint = os.str();
      }
    }
    return out;
  }();
  return c;
}

/// One random mutation: truncate at a random offset, flip 1-8 random
/// bits, or splice a short burst of random bytes.
std::string mutate(const std::string& pristine, std::mt19937& rng) {
  std::string bytes = pristine;
  if (bytes.empty()) return bytes;
  switch (std::uniform_int_distribution<int>(0, 2)(rng)) {
    case 0: {  // truncation (torn write)
      bytes.resize(std::uniform_int_distribution<std::size_t>(
          0, bytes.size() - 1)(rng));
      break;
    }
    case 1: {  // bit flips (media corruption)
      const int flips = std::uniform_int_distribution<int>(1, 8)(rng);
      for (int i = 0; i < flips; ++i) {
        const std::size_t pos = std::uniform_int_distribution<std::size_t>(
            0, bytes.size() - 1)(rng);
        bytes[pos] = static_cast<char>(
            bytes[pos] ^ (1 << std::uniform_int_distribution<int>(0, 7)(rng)));
      }
      break;
    }
    default: {  // garbage splice (interleaved writer residue)
      const std::size_t pos = std::uniform_int_distribution<std::size_t>(
          0, bytes.size() - 1)(rng);
      std::string burst;
      const int len = std::uniform_int_distribution<int>(1, 64)(rng);
      for (int i = 0; i < len; ++i) {
        burst.push_back(static_cast<char>(
            std::uniform_int_distribution<int>(0, 255)(rng)));
      }
      bytes.insert(pos, burst);
      break;
    }
  }
  return bytes;
}

constexpr int kMutationsPerArtifact = 120;

TEST(DurableFuzz, CheckpointReadNeverCrashes) {
  std::mt19937 rng(0xC0FFEE);
  for (const std::string* pristine :
       {&corpus().serial_checkpoint, &corpus().parallel_checkpoint,
        &corpus().coordinator_checkpoint}) {
    ASSERT_FALSE(pristine->empty());
    // Sanity: the unmutated snapshot parses.
    {
      std::istringstream is(*pristine);
      EXPECT_TRUE(ckpt::CampaignCheckpoint::read(is).has_value());
    }
    for (int i = 0; i < kMutationsPerArtifact; ++i) {
      std::istringstream is(mutate(*pristine, rng));
      // Either a clean reject or a fully parsed struct — never a crash.
      (void)ckpt::CampaignCheckpoint::read(is);
    }
  }
}

TEST(DurableFuzz, OldVersionCheckpointIsRejectedCleanly) {
  // v7 (pre-fork-server, no sandbox2 line) and any other non-current
  // version must be refused by design: the campaign falls back to a
  // fresh start.
  for (const char* version :
       {"0", "1", "2", "3", "4", "5", "6", "7", "99", "-5"}) {
    std::string bytes = corpus().serial_checkpoint;
    const std::string current =
        "compi-checkpoint " + std::to_string(ckpt::CampaignCheckpoint::kVersion);
    ASSERT_EQ(bytes.rfind(current, 0), 0u);
    bytes.replace(0, current.size(),
                  std::string("compi-checkpoint ") + version);
    std::istringstream is(bytes);
    EXPECT_FALSE(ckpt::CampaignCheckpoint::read(is).has_value()) << version;
  }
}

TEST(DurableFuzz, JournalReadersTolerateAnyCorruption) {
  std::mt19937 rng(0x10BBED);
  TempDir dir;
  const fs::path file = dir.path / "journal.jsonl";
  ASSERT_FALSE(corpus().journal.empty());
  for (int i = 0; i < kMutationsPerArtifact; ++i) {
    spit(file, mutate(corpus().journal, rng));
    std::size_t malformed = 0;
    (void)obs::read_journal(file, &malformed);
    obs::Journal j;
    // Resume-open must truncate/skip, never crash; boundary varies.
    (void)j.open_resume(file, std::uniform_int_distribution<int>(0, 50)(rng));
    j.close();
  }
}

TEST(DurableFuzz, SessionCsvReadersTolerateAnyCorruption) {
  std::mt19937 rng(0x5E55104);
  TempDir dir;
  for (int i = 0; i < kMutationsPerArtifact; ++i) {
    spit(dir.path / "ledger.csv", mutate(corpus().ledger_csv, rng));
    spit(dir.path / "iterations.csv", mutate(corpus().iterations_csv, rng));
    spit(dir.path / "journal.jsonl", mutate(corpus().journal, rng));
    spit(dir.path / "bugs.txt", mutate(corpus().bugs_txt, rng));
    spit(dir.path / "summary.txt", mutate(corpus().summary_txt, rng));
    (void)read_ledger_csv(dir.path / "ledger.csv");
    (void)read_bugs(dir.path / "bugs.txt");
    (void)read_summary(dir.path / "summary.txt");
    // --explain replays the whole directory; it must render or decline.
    std::ostringstream report;
    (void)explain_session(dir.path, report);
  }
}

TEST(DurableFuzz, ForkServerWireFramesTolerateAnyCorruption) {
  // The fork-server control/status dialect rides the same length-prefixed
  // framing as the result pipe.  Truncated, bit-flipped, or spliced frame
  // streams must never crash the supervisor-side parsers — the engine's
  // contract is a clean reject (and a cold-fork fallback), not a fault.
  std::mt19937 rng(0xF0AC5E);

  sandbox::SpawnRequest req;
  req.nprocs = 4;
  req.focus = 2;
  req.inputs[0] = 77;
  req.inputs[1] = 33;
  req.match_schedule = true;
  req.match_plan = {{0, 0, 2}, {1, 1, 0}};
  req.chaos.crash_rank = 1;

  rt::VarRegistry registry;
  registry.intern("x", rt::VarKind::kRegular, solver::int32_domain(), 500);
  registry.intern("y", rt::VarKind::kRegular, solver::int32_domain(), 500);

  std::string ctl_stream;  // what the supervisor sends the server
  sandbox::append_frame(ctl_stream, sandbox::FrameType::kRegistry,
                        sandbox::encode_registry_suffix(registry, 0));
  sandbox::append_frame(ctl_stream, sandbox::FrameType::kSpawn,
                        sandbox::encode_spawn_request(req));

  std::string st_stream;  // what the server answers with
  sandbox::append_frame(st_stream, sandbox::FrameType::kHello,
                        "compi-fork-server 1 12345");
  sandbox::append_frame(st_stream, sandbox::FrameType::kStatus,
                        "spawned 12346");
  sandbox::append_frame(st_stream, sandbox::FrameType::kStatus, "reaped 0");
  sandbox::append_frame(st_stream, sandbox::FrameType::kStatus,
                        "reject malformed spawn request");

  for (const std::string* pristine : {&ctl_stream, &st_stream}) {
    for (int i = 0; i < kMutationsPerArtifact; ++i) {
      const std::string bytes = mutate(*pristine, rng);
      sandbox::FrameReader reader;
      reader.feed(bytes.data(), bytes.size());
      while (std::optional<sandbox::Frame> f = reader.next()) {
        // Decode each surviving frame exactly the way the two endpoints
        // do; success or clean rejection are both acceptable.
        switch (f->type) {
          case sandbox::FrameType::kSpawn: {
            sandbox::SpawnRequest out;
            (void)sandbox::decode_spawn_request(f->payload, out);
            break;
          }
          case sandbox::FrameType::kRegistry: {
            rt::VarRegistry scratch;
            (void)sandbox::apply_registry(f->payload, scratch);
            break;
          }
          case sandbox::FrameType::kResult: {
            minimpi::RunResult out;
            (void)sandbox::decode_run_result(f->payload, out);
            break;
          }
          default:
            break;  // kHello/kStatus/kError/kSignal: free-text payloads
        }
      }
    }
  }
}

TEST(DurableFuzz, ResumeOverCorruptedCheckpointStillCompletes) {
  // End to end: a resume pointed at a corrupted snapshot (and no usable
  // .bak) must fall back to a fresh campaign and run to its budget.
  std::mt19937 rng(0x2E5013);
  for (int i = 0; i < 4; ++i) {
    TempDir dir;
    spit(dir.path / "checkpoint.txt", mutate(corpus().serial_checkpoint, rng));
    CampaignOptions opts;
    opts.seed = 11;
    opts.iterations = 30;
    opts.initial_nprocs = 4;
    opts.max_procs = 8;
    opts.dfs_phase_iterations = 20;
    opts.resume = true;
    opts.log_dir = dir.path.string();
    const CampaignResult result = Campaign(fig2_target(), opts).run();
    EXPECT_EQ(result.iterations.size(), 30u)
        << (result.resumed ? "resumed a corrupt snapshot?" : "fresh");
  }
}

}  // namespace
}  // namespace compi
