// Chaos acceptance for distributed campaigns: a coordinator plus real
// campaign shards (Campaign + ShardLink) on loopback must converge to the
// same covered-branch set and bug list as an uninterrupted run when
//   * one shard is killed mid-campaign (abrupt drop, no Finished frame),
//   * the coordinator itself is restarted mid-campaign (kill + --resume),
//   * a shard starts with no coordinator at all, degrades to standalone,
//     and reconciles when the coordinator appears.
// fig2 saturates its 16 reachable branches well inside these budgets, so
// "same set" is exact; mini-IMB uses the superset discipline from the
// parallel-campaign differential tests (chaos may never LOSE coverage).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compi/coordinator.h"
#include "compi/driver.h"
#include "compi/session.h"
#include "compi/shard_link.h"
#include "serve/net_util.h"
#include "targets/targets.h"
#include "tests/compi/fig2_target.h"

#ifdef COMPI_SERVE_POSIX

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_dist_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

template <typename Pred>
bool eventually(Pred pred, int seconds = 20) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

CampaignOptions shard_campaign_opts(int idx, int iterations) {
  CampaignOptions opts;
  opts.seed = 11 + static_cast<std::uint64_t>(idx);
  opts.iterations = iterations;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.dfs_phase_iterations = 30;
  return opts;
}

ShardLinkOptions link_opts(int port, int idx) {
  ShardLinkOptions so;
  so.connect = "127.0.0.1:" + std::to_string(port);
  so.name = "s" + std::to_string(idx);
  so.seed = 11 + static_cast<std::uint64_t>(idx);
  so.heartbeat_ms = 50;
  so.io_timeout_ms = 2000;
  so.reconnect_initial_ms = 20;
  so.reconnect_max_ms = 100;
  so.standalone_after_failures = 1000000;  // never degrade in chaos tests
  so.report_every = 1;
  so.lease_wait_poll_ms = 10;
  return so;
}

/// Runs one shard campaign to completion.  `finish` distinguishes a clean
/// departure (Finished frame) from a simulated kill (socket just closes
/// when the link is destroyed).
void run_shard(const TargetInfo& target, int port, int idx, int iterations,
               bool finish) {
  ShardLink link(link_opts(port, idx));
  (void)link.start();
  CampaignOptions opts = shard_campaign_opts(idx, iterations);
  opts.work_source = &link;
  (void)Campaign(target, opts).run();
  if (finish) link.finish();
}

std::set<std::string> bug_messages(const std::vector<BugRecord>& bugs) {
  std::set<std::string> out;
  for (const BugRecord& b : bugs) out.insert(b.message);
  return out;
}

/// Serial baseline on fig2-with-bug: saturates all 16 branches and finds
/// the seeded assertion.
const CampaignResult& fig2_serial_baseline() {
  static const CampaignResult result =
      Campaign(fig2_target(true), shard_campaign_opts(0, 200)).run();
  return result;
}

TEST(DistributedCampaign, UninterruptedShardsMatchSerialCoverageAndBugs) {
  const CampaignResult& serial = fig2_serial_baseline();
  ASSERT_EQ(serial.covered_branches, compi::testing::kFig2Branches);
  ASSERT_FALSE(serial.bugs.empty());

  CoordinatorOptions co;
  co.budget = 240;
  co.lease_quota = 8;
  co.lease_ttl_ms = 2000;
  co.tick_ms = 10;
  Coordinator coord(fig2_target(true), co);
  ASSERT_TRUE(coord.start());

  std::vector<std::thread> shards;
  for (int i = 0; i < 3; ++i) {
    shards.emplace_back([&, i] {
      run_shard(fig2_target(true), coord.port(), i, 240, /*finish=*/true);
    });
  }
  for (std::thread& t : shards) t.join();
  EXPECT_TRUE(coord.done());
  EXPECT_GE(coord.completed(), co.budget);
  coord.stop();

  EXPECT_EQ(coord.covered_ids().size(), serial.covered_branches)
      << "the merged fleet must saturate the same reachable set";
  EXPECT_EQ(bug_messages(coord.bugs()), bug_messages(serial.bugs));
  EXPECT_EQ(coord.shards_joined(), 3u);
  EXPECT_EQ(coord.shards_lost(), 0u);
}

TEST(DistributedCampaign, KillingOneShardMidCampaignStillConverges) {
  const CampaignResult& serial = fig2_serial_baseline();

  CoordinatorOptions co;
  co.budget = 240;
  co.lease_quota = 8;
  co.lease_ttl_ms = 500;  // reclaim the victim's leases quickly
  co.tick_ms = 10;
  Coordinator coord(fig2_target(true), co);
  ASSERT_TRUE(coord.start());

  std::vector<std::thread> shards;
  // Shard 0 is the victim: it runs a handful of iterations and then its
  // link is destroyed WITHOUT a Finished frame — from the coordinator's
  // side this is exactly a SIGKILL (connection drop, leases outstanding).
  shards.emplace_back([&] {
    run_shard(fig2_target(true), coord.port(), 0, 12, /*finish=*/false);
  });
  for (int i = 1; i < 3; ++i) {
    shards.emplace_back([&, i] {
      run_shard(fig2_target(true), coord.port(), i, 240, /*finish=*/true);
    });
  }
  for (std::thread& t : shards) t.join();
  EXPECT_TRUE(coord.done());
  EXPECT_TRUE(eventually([&] { return coord.shards_lost() >= 1; }))
      << "the dropped connection must be declared lost";
  coord.stop();

  EXPECT_EQ(coord.covered_ids().size(), serial.covered_branches)
      << "losing a shard may cost time, never coverage";
  EXPECT_EQ(bug_messages(coord.bugs()), bug_messages(serial.bugs));
}

TEST(DistributedCampaign, CoordinatorRestartMidCampaignConverges) {
  const CampaignResult& serial = fig2_serial_baseline();
  TempDir dir;

  CoordinatorOptions co;
  co.budget = 240;
  co.lease_quota = 8;
  co.lease_ttl_ms = 2000;
  co.tick_ms = 10;
  co.log_dir = dir.path.string();
  co.checkpoint_every_deltas = 1;

  auto first = std::make_unique<Coordinator>(fig2_target(true), co);
  ASSERT_TRUE(first->start());
  const int port = first->port();

  std::vector<std::thread> shards;
  for (int i = 0; i < 3; ++i) {
    shards.emplace_back([&, i] {
      run_shard(fig2_target(true), port, i, 240, /*finish=*/true);
    });
  }

  // Let real progress accumulate, then take the coordinator down and bring
  // a resumed one up on the same port.  The shard links ride it out with
  // their reconnect backoff and re-handshake (full resync Welcome).
  ASSERT_TRUE(eventually([&] { return first->completed() >= 20; }));
  first->stop();
  const std::int64_t at_restart = first->completed();
  first.reset();

  CoordinatorOptions resumed = co;
  resumed.port = port;
  resumed.resume = true;
  Coordinator second(fig2_target(true), resumed);
  ASSERT_TRUE(second.start());
  EXPECT_GE(second.completed(), at_restart)
      << "restored progress must not move backwards";

  for (std::thread& t : shards) t.join();
  EXPECT_TRUE(second.done());
  EXPECT_GE(second.completed(), co.budget);
  second.stop();

  EXPECT_EQ(second.covered_ids().size(), serial.covered_branches)
      << "a coordinator restart must not lose confirmed coverage";
  EXPECT_EQ(bug_messages(second.bugs()), bug_messages(serial.bugs));
}

TEST(DistributedCampaign, StandaloneDegradationThenRejoinReconciles) {
  // Reserve a loopback port with no listener behind it.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const int port = ntohs(addr.sin_port);
  ::close(probe);

  ShardLinkOptions so = link_opts(port, 0);
  so.standalone_after_failures = 2;
  so.reconnect_initial_ms = 10;
  so.reconnect_max_ms = 50;
  ShardLink link(so);
  EXPECT_FALSE(link.start()) << "nothing is listening yet";

  // The campaign must not block on the missing coordinator: after the
  // failure threshold the link degrades and the local budget governs.
  CampaignOptions opts = shard_campaign_opts(0, 15);
  opts.work_source = &link;
  const CampaignResult result = Campaign(fig2_target(true), opts).run();
  EXPECT_EQ(result.iterations.size(), 15u);
  EXPECT_TRUE(link.standalone());

  // The coordinator appears late, on the exact address the link retries.
  CoordinatorOptions co;
  co.port = port;
  co.budget = 100;
  co.tick_ms = 10;
  Coordinator coord(fig2_target(true), co);
  ASSERT_TRUE(coord.start());

  // Rejoin reconciliation: the link re-handshakes on its own and uploads
  // the full standalone state — nothing lost, nothing double-counted.
  EXPECT_TRUE(eventually([&] { return link.connected(); }));
  EXPECT_TRUE(eventually([&] { return coord.completed() == 15; }));
  EXPECT_EQ(coord.covered_ids().size(), result.covered_branches);
  EXPECT_EQ(bug_messages(coord.bugs()), bug_messages(result.bugs));
  link.finish();
  coord.stop();
}

TEST(DistributedCampaign, MiniImbChaosNeverLosesSerialCoverage) {
  // Superset discipline on an unsaturated target: the chaos run (2 shards,
  // one killed mid-campaign) must cover at least everything a serial
  // session with the same seed covers on a smaller budget.
  const TargetInfo target = targets::make_mini_imb_target(4);
  TempDir serial_dir;
  CampaignOptions serial = shard_campaign_opts(0, 120);
  serial.initial_nprocs = 2;
  serial.max_procs = 2;
  serial.dfs_phase_iterations = 60;
  serial.log_dir = serial_dir.path.string();
  const CampaignResult serial_result = Campaign(target, serial).run();

  CoordinatorOptions co;
  co.budget = 480;
  co.lease_quota = 16;
  co.lease_ttl_ms = 1000;
  co.tick_ms = 10;
  Coordinator coord(target, co);
  ASSERT_TRUE(coord.start());

  const auto run_imb_shard = [&](int idx, int iterations, bool finish) {
    ShardLink link(link_opts(coord.port(), idx));
    (void)link.start();
    CampaignOptions opts = shard_campaign_opts(idx, iterations);
    opts.initial_nprocs = 2;
    opts.max_procs = 2;
    opts.dfs_phase_iterations = 60;
    opts.work_source = &link;
    (void)Campaign(target, opts).run();
    if (finish) link.finish();
  };
  std::thread victim([&] { run_imb_shard(0, 20, /*finish=*/false); });
  std::thread survivor([&] { run_imb_shard(1, 480, /*finish=*/true); });
  victim.join();
  survivor.join();
  EXPECT_TRUE(coord.done());
  coord.stop();

  const std::vector<sym::BranchId> merged = coord.covered_ids();
  const std::set<sym::BranchId> merged_set(merged.begin(), merged.end());
  // Read the serial covered set from the session ledger.
  std::set<long> lost;
  {
    std::ifstream in(serial_dir.path / "ledger.csv");
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
      std::stringstream ss(line);
      std::string field;
      long branch = -1;
      for (int idx = 0; idx <= 4 && std::getline(ss, field, ','); ++idx) {
        if (idx == 0) branch = std::stol(field);
        if (idx == 4 && field == "1" &&
            merged_set.count(static_cast<sym::BranchId>(branch)) == 0) {
          lost.insert(branch);
        }
      }
    }
  }
  EXPECT_GE(merged_set.size(), serial_result.covered_branches);
  EXPECT_TRUE(lost.empty())
      << lost.size() << " serial branches missing from the chaos run";
  EXPECT_TRUE(serial_result.bugs.empty());
  EXPECT_TRUE(coord.bugs().empty());
}

}  // namespace
}  // namespace compi

#else  // !COMPI_SERVE_POSIX

TEST(DistributedCampaign, SkippedWithoutPosixSockets) {
  GTEST_SKIP() << "serve layer compiled out";
}

#endif
