// End-to-end driver tests on the paper's Fig. 2 example program.
#include "compi/driver.h"

#include <gtest/gtest.h>

#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

using compi::testing::fig2_target;

CampaignOptions base_options() {
  CampaignOptions opts;
  opts.seed = 11;
  opts.iterations = 120;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.dfs_phase_iterations = 30;
  return opts;
}

TEST(Campaign, AchievesFullCoverageOnFig2) {
  const TargetInfo target = fig2_target();
  Campaign campaign(target, base_options());
  const CampaignResult result = campaign.run();
  // 8 sites = 16 branches, all reachable with the framework's help.
  EXPECT_EQ(result.total_branches, compi::testing::kFig2Branches);
  EXPECT_EQ(result.covered_branches, compi::testing::kFig2Branches)
      << "framework-driven testing uncovers 3F, 4T (recorders) and 4F "
         "(focus shift), paper §I-B";
  EXPECT_GT(result.coverage_rate, 0.99);
}

TEST(Campaign, NoFwkMissesMpiSemanticsBranches) {
  const TargetInfo target = fig2_target();
  CampaignOptions opts = base_options();
  opts.framework = false;  // fixed focus 0, focus-only coverage
  Campaign campaign(target, opts);
  const CampaignResult result = campaign.run();
  // Rank 0 can never execute 4F/6T/6F, and its coverage alone is recorded.
  EXPECT_LE(result.covered_branches, compi::testing::kFig2NoFwkBranches);
}

TEST(Campaign, FindsSeededAssertionWithInputs) {
  const TargetInfo target = fig2_target(/*with_bug=*/true);
  CampaignOptions opts = base_options();
  opts.iterations = 300;
  Campaign campaign(target, opts);
  const CampaignResult result = campaign.run();
  ASSERT_FALSE(result.bugs.empty()) << "y == 77 must be derivable";
  const BugRecord& bug = result.bugs.front();
  EXPECT_EQ(bug.outcome, rt::Outcome::kAssert);
  // The error-inducing inputs are logged; y must be 77 in them.
  bool y_is_77 = false;
  for (const auto& [var, value] : bug.inputs) {
    if (value == 77) y_is_77 = true;
  }
  EXPECT_TRUE(y_is_77);
}

TEST(Campaign, TwoPhaseBoundIsDerived) {
  const TargetInfo target = fig2_target();
  CampaignOptions opts = base_options();
  opts.iterations = 60;
  opts.dfs_phase_iterations = 20;
  Campaign campaign(target, opts);
  const CampaignResult result = campaign.run();
  EXPECT_GT(result.depth_bound_used, 0u)
      << "phase 2 must derive a bound from phase 1's observations";
  EXPECT_GE(result.depth_bound_used, result.max_constraint_set / 2);
}

TEST(Campaign, ExplicitDepthBoundIsRespected) {
  const TargetInfo target = fig2_target();
  CampaignOptions opts = base_options();
  opts.depth_bound = 77;
  Campaign campaign(target, opts);
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.depth_bound_used, 77u);
}

TEST(Campaign, IterationRecordsAreComplete) {
  const TargetInfo target = fig2_target();
  CampaignOptions opts = base_options();
  opts.iterations = 25;
  Campaign campaign(target, opts);
  const CampaignResult result = campaign.run();
  ASSERT_EQ(result.iterations.size(), 25u);
  std::size_t prev_cov = 0;
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_GE(rec.covered_branches, prev_cov) << "coverage is monotone";
    prev_cov = rec.covered_branches;
    EXPECT_GE(rec.nprocs, 1);
    EXPECT_LE(rec.nprocs, opts.max_procs);
    EXPECT_GE(rec.focus, 0);
    EXPECT_LT(rec.focus, rec.nprocs);
  }
  EXPECT_TRUE(result.iterations.front().restart);
}

TEST(Campaign, VariesProcessCountAndFocus) {
  const TargetInfo target = fig2_target();
  CampaignOptions opts = base_options();
  opts.iterations = 200;
  Campaign campaign(target, opts);
  const CampaignResult result = campaign.run();
  bool nprocs_varied = false, focus_varied = false;
  for (const IterationRecord& rec : result.iterations) {
    nprocs_varied |= rec.nprocs != opts.initial_nprocs;
    focus_varied |= rec.focus != opts.initial_focus;
  }
  EXPECT_TRUE(nprocs_varied) << "sw derivation must vary the world size";
  EXPECT_TRUE(focus_varied) << "rank negation must move the focus";
}

TEST(Campaign, TimeBudgetStopsEarly) {
  const TargetInfo target = fig2_target();
  CampaignOptions opts = base_options();
  opts.iterations = 1'000'000;
  opts.time_budget_seconds = 0.3;
  Campaign campaign(target, opts);
  const CampaignResult result = campaign.run();
  EXPECT_LT(result.total_seconds, 5.0);
  EXPECT_LT(result.iterations.size(), 1'000'000u);
}

TEST(Campaign, DeterministicForFixedSeed) {
  const TargetInfo target = fig2_target();
  CampaignOptions opts = base_options();
  opts.iterations = 40;
  const CampaignResult a = Campaign(target, opts).run();
  const CampaignResult b = Campaign(target, opts).run();
  EXPECT_EQ(a.covered_branches, b.covered_branches);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].nprocs, b.iterations[i].nprocs) << i;
    EXPECT_EQ(a.iterations[i].focus, b.iterations[i].focus) << i;
  }
}

}  // namespace
}  // namespace compi
