#include "compi/session.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "compi/fixed_run.h"
#include "targets/targets.h"
#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_session_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

CampaignOptions session_opts(const fs::path& dir, int iterations = 30) {
  CampaignOptions opts;
  opts.seed = 9;
  opts.iterations = iterations;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.dfs_phase_iterations = 10;
  opts.log_dir = dir.string();
  return opts;
}

TEST(Session, WritesIterationLogsAndSummary) {
  TempDir tmp;
  Campaign campaign(fig2_target(), session_opts(tmp.path));
  const CampaignResult result = campaign.run();

  EXPECT_TRUE(fs::exists(tmp.path / "iterations.csv"));
  EXPECT_TRUE(fs::exists(tmp.path / "summary.txt"));
  EXPECT_TRUE(fs::exists(tmp.path / "bugs.txt"));
  EXPECT_TRUE(fs::exists(tmp.path / "iter_0" / "rank_0.log"));
  EXPECT_TRUE(fs::exists(tmp.path / "iter_0" / "rank_3.log"));

  // iterations.csv: header + one row per iteration.
  const std::string csv = slurp(tmp.path / "iterations.csv");
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(rows, static_cast<std::ptrdiff_t>(result.iterations.size()) + 1);

  const std::string summary = slurp(tmp.path / "summary.txt");
  EXPECT_NE(summary.find("covered_branches " +
                         std::to_string(result.covered_branches)),
            std::string::npos);
}

TEST(Session, FocusLogHeavyOthersLight) {
  TempDir tmp;
  Campaign campaign(fig2_target(), session_opts(tmp.path, 5));
  (void)campaign.run();
  const std::string focus = slurp(tmp.path / "iter_0" / "rank_0.log");
  const std::string other = slurp(tmp.path / "iter_0" / "rank_1.log");
  EXPECT_NE(focus.find("mode heavy"), std::string::npos);
  EXPECT_NE(other.find("mode light"), std::string::npos);
  EXPECT_GT(focus.size(), other.size());
}

TEST(Session, BugsFileNamesInputs) {
  TempDir tmp;
  CampaignOptions opts = session_opts(tmp.path, 200);
  Campaign campaign(fig2_target(/*with_bug=*/true), opts);
  const CampaignResult result = campaign.run();
  ASSERT_FALSE(result.bugs.empty());
  EXPECT_EQ(result.bugs.front().named_inputs.at("y"), 77);
  const std::string bugs = slurp(tmp.path / "bugs.txt");
  EXPECT_NE(bugs.find("y=77"), std::string::npos)
      << "error-inducing inputs must be replayable by name";
}

TEST(Session, BugsFileRoundTripsAndReplays) {
  // End-to-end replay: hunt bugs in mini-SUSY with a session, read the
  // bugs back from disk, replay each one with run_fixed, and get the same
  // failure kind — the "log error-inducing inputs for further analysis"
  // workflow of paper SV.
  TempDir tmp;
  const TargetInfo target = targets::make_mini_susy_target();
  CampaignOptions opts;
  opts.seed = 42;
  opts.iterations = 250;
  opts.dfs_phase_iterations = 50;
  opts.log_dir = tmp.path.string();
  const CampaignResult live = Campaign(target, opts).run();
  ASSERT_GE(live.bugs.size(), 3u);

  const std::vector<LoggedBug> logged = read_bugs(tmp.path / "bugs.txt");
  ASSERT_EQ(logged.size(), live.bugs.size());
  for (const LoggedBug& bug : logged) {
    std::map<std::string, std::int64_t> inputs;
    for (const auto& [k, v] : bug.inputs) {
      if (k.find('#') == std::string::npos) inputs[k] = v;  // regular only
    }
    const auto replay = run_fixed(target, inputs, {.nprocs = bug.nprocs,
                                                   .focus = bug.focus});
    EXPECT_EQ(replay.job_outcome(), bug.outcome) << bug.message;
  }
}

TEST(Session, SummaryRoundTrips) {
  TempDir tmp;
  Campaign campaign(fig2_target(), session_opts(tmp.path, 20));
  const CampaignResult result = campaign.run();
  const auto summary = read_summary(tmp.path / "summary.txt");
  EXPECT_EQ(summary.at("iterations"),
            std::to_string(result.iterations.size()));
  EXPECT_EQ(summary.at("covered_branches"),
            std::to_string(result.covered_branches));
  EXPECT_EQ(summary.at("bugs"), std::to_string(result.bugs.size()));
}

TEST(Session, BugsFileRoundTripsMultiLineMessagesAndFlaky) {
  // Hand-built result: a flaky bug with an embedded newline in its message
  // and a bug with no inputs at all must both survive the disk round-trip.
  TempDir tmp;
  CampaignResult result;
  BugRecord noisy;
  noisy.first_iteration = 3;
  noisy.occurrences = 2;
  noisy.outcome = rt::Outcome::kSegfault;
  noisy.message = "line one\nline two\twith tab";
  noisy.inputs[solver::Var{0}] = 7;
  noisy.named_inputs["x"] = 7;
  noisy.nprocs = 4;
  noisy.focus = 1;
  noisy.flaky = true;
  result.bugs.push_back(noisy);

  BugRecord bare;  // e.g. a hang before any input was read
  bare.first_iteration = 9;
  bare.occurrences = 1;
  bare.outcome = rt::Outcome::kTimeout;
  bare.message = "deadline exceeded";
  bare.nprocs = 2;
  result.bugs.push_back(bare);

  SessionWriter(tmp.path).write_summary(result);
  const std::vector<LoggedBug> logged = read_bugs(tmp.path / "bugs.txt");
  ASSERT_EQ(logged.size(), 2u);
  EXPECT_EQ(logged[0].outcome, rt::Outcome::kSegfault);
  EXPECT_EQ(logged[0].message, noisy.message);
  EXPECT_TRUE(logged[0].flaky);
  EXPECT_EQ(logged[0].first_iteration, 3);
  EXPECT_EQ(logged[0].occurrences, 2);
  EXPECT_EQ(logged[0].nprocs, 4);
  EXPECT_EQ(logged[0].focus, 1);
  EXPECT_EQ(logged[1].outcome, rt::Outcome::kTimeout);
  EXPECT_FALSE(logged[1].flaky);
  EXPECT_TRUE(logged[1].inputs.empty());
}

TEST(Session, SummaryReportsRobustnessCounters) {
  TempDir tmp;
  CampaignResult result;
  result.transient_retries = 5;
  result.focus_replans = 2;
  result.resumed = true;
  SessionWriter(tmp.path).write_summary(result);
  const auto summary = read_summary(tmp.path / "summary.txt");
  EXPECT_EQ(summary.at("transient_retries"), "5");
  EXPECT_EQ(summary.at("focus_replans"), "2");
  EXPECT_EQ(summary.at("resumed"), "1");
}

TEST(Session, KeepRankLogsLimit) {
  TempDir tmp;
  SessionWriter writer(tmp.path, /*keep_rank_logs=*/2);
  minimpi::RunResult run;
  run.ranks.resize(1);
  run.ranks[0].log.covered = rt::CoverageBitmap(4);
  writer.write_iteration(0, run);
  writer.write_iteration(1, run);
  writer.write_iteration(2, run);
  EXPECT_TRUE(fs::exists(tmp.path / "iter_1" / "rank_0.log"));
  EXPECT_FALSE(fs::exists(tmp.path / "iter_2"));
}

TEST(Session, KeepRankLogsZeroCreatesNoIterationDirs) {
  TempDir tmp;
  SessionWriter writer(tmp.path, /*keep_rank_logs=*/0);
  minimpi::RunResult run;
  run.ranks.resize(2);
  writer.write_iteration(0, run);
  writer.write_iteration(1, run);
  EXPECT_FALSE(fs::exists(tmp.path / "iter_0"));
  EXPECT_FALSE(fs::exists(tmp.path / "iter_1"));
}

TEST(Session, EmptyRunWritesNoIterationDir) {
  TempDir tmp;
  SessionWriter writer(tmp.path);  // keep everything
  minimpi::RunResult run;          // ...but there are no ranks to keep
  writer.write_iteration(0, run);
  EXPECT_FALSE(fs::exists(tmp.path / "iter_0"));
}

TEST(Session, CampaignWritesParsableCheckpoint) {
  TempDir tmp;
  CampaignOptions opts = session_opts(tmp.path, 20);
  opts.checkpoint_interval = 5;
  const CampaignResult result = Campaign(fig2_target(), opts).run();

  const auto checkpoint = read_checkpoint(tmp.path);
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->seed, opts.seed);
  // The end-of-campaign snapshot points one past the final iteration.
  EXPECT_EQ(checkpoint->next_iteration, static_cast<int>(opts.iterations));
  EXPECT_EQ(checkpoint->iterations.size(), result.iterations.size());
  EXPECT_EQ(checkpoint->covered.size(), result.covered_branches);
}

}  // namespace
}  // namespace compi
