// Coordinator lease mechanics, merge idempotency, and crash durability,
// driven by a raw wire-level test shard (no ShardLink) so each frame and
// reply can be asserted exactly.
#include "compi/coordinator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compi/coord_protocol.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "serve/frame.h"
#include "serve/http.h"
#include "serve/net_util.h"
#include "tests/compi/fig2_target.h"

#ifdef COMPI_SERVE_POSIX

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_coord_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::string slurp(const fs::path& file) {
  std::ifstream in(file);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Polls `pred` for up to 5 seconds.
template <typename Pred>
bool eventually(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// A hand-rolled shard client speaking raw coordinator frames, so tests
/// control exactly what goes on the wire (including rude departures).
struct TestShard {
  std::string name = "t";
  std::uint64_t token = 1;
  int fd = -1;
  serve::WireFrameReader reader{coord::kShardAccepts};

  ~TestShard() { drop(); }

  [[nodiscard]] std::string key() const {
    return coord::shard_key(name, token);
  }

  bool connect(int port) {
    drop();
    reader = serve::WireFrameReader(coord::kShardAccepts);
    fd = serve::net::connect_client("127.0.0.1:" + std::to_string(port),
                                    2000);
    return fd >= 0;
  }

  /// Abrupt close: no Finished frame — the coordinator sees a disconnect.
  void drop() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }

  std::optional<serve::WireFrame> transact(char type,
                                           const std::string& payload) {
    std::string out;
    serve::append_wire_frame(out, type, payload);
    if (fd < 0 || !serve::net::send_all(fd, out)) return std::nullopt;
    char buf[4096];
    for (;;) {
      if (auto f = reader.next()) return f;
      if (reader.corrupt()) return std::nullopt;
      const ssize_t n = serve::net::xrecv(fd, buf, sizeof buf);
      if (n <= 0) return std::nullopt;
      reader.feed(buf, static_cast<std::size_t>(n));
    }
  }

  std::optional<coord::WelcomeMsg> hello() {
    coord::HelloMsg m;
    m.name = name;
    m.token = token;
    const auto f = transact(coord::kHello, coord::encode_hello(m));
    coord::WelcomeMsg w;
    if (!f || f->type != coord::kWelcome ||
        !coord::decode_welcome(f->payload, w)) {
      return std::nullopt;
    }
    return w;
  }

  std::optional<coord::LeaseGrantMsg> lease() {
    coord::LeaseRequestMsg m;
    m.shard = key();
    const auto f =
        transact(coord::kLeaseRequest, coord::encode_lease_request(m));
    coord::LeaseGrantMsg g;
    if (!f || f->type != coord::kLeaseGrant ||
        !coord::decode_lease_grant(f->payload, g)) {
      return std::nullopt;
    }
    return g;
  }

  std::optional<coord::AckMsg> delta(const coord::DeltaMsg& base) {
    coord::DeltaMsg m = base;
    m.shard = key();
    const auto f = transact(coord::kDelta, coord::encode_delta(m));
    coord::AckMsg a;
    if (!f || f->type != coord::kAck || !coord::decode_ack(f->payload, a)) {
      return std::nullopt;
    }
    return a;
  }

  std::optional<coord::AckMsg> heartbeat(const coord::ShardTelemetry& t) {
    coord::HeartbeatMsg m;
    m.shard = key();
    m.telemetry = t;
    const auto f = transact(coord::kHeartbeat, coord::encode_heartbeat(m));
    coord::AckMsg a;
    if (!f || f->type != coord::kAck || !coord::decode_ack(f->payload, a)) {
      return std::nullopt;
    }
    return a;
  }
};

/// A plausible telemetry snapshot at `iterations` completed.
coord::ShardTelemetry telemetry_at(std::int64_t iterations,
                                   std::int64_t frontier) {
  coord::ShardTelemetry t;
  t.valid = true;
  t.elapsed_us = iterations * 100'000;
  t.iterations = iterations;
  t.covered = 10 + iterations;
  t.frontier_depth = frontier;
  t.solver_sat = iterations / 2;
  t.solver_unsat = 1;
  t.exec_us = iterations * 60'000;
  t.solve_us = iterations * 20'000;
  return t;
}

CoordinatorOptions fast_opts(std::int64_t budget, int quota) {
  CoordinatorOptions o;
  o.port = 0;
  o.budget = budget;
  o.lease_quota = quota;
  o.lease_ttl_ms = 10000;
  o.tick_ms = 10;
  return o;
}

TEST(Coordinator, LeaseGrantsDrainTheBudgetThenWaitThenStop) {
  Coordinator coord(fig2_target(true), fast_opts(10, 4));
  ASSERT_TRUE(coord.start());

  TestShard shard;
  ASSERT_TRUE(shard.connect(coord.port()));
  const auto welcome = shard.hello();
  ASSERT_TRUE(welcome.has_value());
  EXPECT_EQ(welcome->ordinal, 0);
  EXPECT_EQ(welcome->sync.budget, 10);
  EXPECT_EQ(welcome->sync.completed, 0);

  // 4 + 4 + 2 exhausts the pool; the fourth request gets a wait hint.
  const auto g1 = shard.lease();
  ASSERT_TRUE(g1.has_value());
  EXPECT_EQ(g1->quota, 4);
  EXPECT_FALSE(g1->stop);
  const auto g2 = shard.lease();
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->quota, 4);
  EXPECT_NE(g1->lease_id, g2->lease_id);
  const auto g3 = shard.lease();
  ASSERT_TRUE(g3.has_value());
  EXPECT_EQ(g3->quota, 2);
  const auto g4 = shard.lease();
  ASSERT_TRUE(g4.has_value());
  EXPECT_EQ(g4->quota, 0);
  EXPECT_FALSE(g4->stop);
  EXPECT_GT(g4->wait_ms, 0);

  // Reporting the full budget completes the campaign: the Ack says stop,
  // and so does any further lease request.
  coord::DeltaMsg d;
  d.iterations = 10;
  d.covered = {1, 2};
  const auto ack = shard.delta(d);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->stop);
  EXPECT_TRUE(coord.done());
  EXPECT_EQ(coord.completed(), 10);
  const auto g5 = shard.lease();
  ASSERT_TRUE(g5.has_value());
  EXPECT_TRUE(g5->stop);
  EXPECT_TRUE(coord.wait_until_done(1.0));
  coord.stop();
}

TEST(Coordinator, DeltaReplayIsIdempotent) {
  Coordinator coord(fig2_target(true), fast_opts(100, 8));
  ASSERT_TRUE(coord.start());

  TestShard shard;
  ASSERT_TRUE(shard.connect(coord.port()));
  ASSERT_TRUE(shard.hello().has_value());
  ASSERT_TRUE(shard.lease().has_value());

  coord::DeltaMsg d;
  d.iterations = 5;  // cumulative
  d.covered = {1, 3, 3};
  BugRecord bug;
  bug.outcome = rt::Outcome::kAssert;
  bug.message = "seeded assertion: y == 77 on the master";
  bug.occurrences = 1;
  d.bugs.push_back(bug);

  ASSERT_TRUE(shard.delta(d).has_value());
  // The identical delta again — a reconnect replay — changes nothing.
  ASSERT_TRUE(shard.delta(d).has_value());
  EXPECT_EQ(coord.completed(), 5);
  EXPECT_EQ(coord.covered_ids(), (std::vector<sym::BranchId>{1, 3}));
  ASSERT_EQ(coord.bugs().size(), 1u);

  // Progress replays as cumulative counts: 8 after 5 adds 3, never 13.
  d.iterations = 8;
  d.bugs[0].occurrences = 4;
  ASSERT_TRUE(shard.delta(d).has_value());
  EXPECT_EQ(coord.completed(), 8);
  EXPECT_EQ(coord.bugs()[0].occurrences, 4);
  coord.stop();
}

TEST(Coordinator, CoverageBroadcastReachesOtherShards) {
  Coordinator coord(fig2_target(true), fast_opts(100, 8));
  ASSERT_TRUE(coord.start());

  TestShard a, b;
  a.name = "a";
  b.name = "b";
  b.token = 2;
  ASSERT_TRUE(a.connect(coord.port()));
  ASSERT_TRUE(b.connect(coord.port()));
  ASSERT_TRUE(a.hello().has_value());
  const auto wb = b.hello();
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(wb->ordinal, 1);

  coord::DeltaMsg d;
  d.iterations = 1;
  d.covered = {7, 9};
  ASSERT_TRUE(a.delta(d).has_value());

  // B's next reply carries A's finds exactly once.
  const auto g = b.lease();
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->sync.covered, (std::vector<sym::BranchId>{7, 9}));
  const auto g2 = b.lease();
  ASSERT_TRUE(g2.has_value());
  EXPECT_TRUE(g2->sync.covered.empty());

  // A re-handshake is a FULL resync (what a coordinator restart relies on).
  ASSERT_TRUE(b.connect(coord.port()));
  const auto rejoin = b.hello();
  ASSERT_TRUE(rejoin.has_value());
  EXPECT_EQ(rejoin->ordinal, 1) << "ordinal is stable across rejoins";
  EXPECT_EQ(rejoin->sync.covered, (std::vector<sym::BranchId>{7, 9}));
  coord.stop();
}

TEST(Coordinator, DisconnectReclaimsLeasesAndJournalsTheLoss) {
  TempDir dir;
  CoordinatorOptions o = fast_opts(100, 8);
  o.log_dir = dir.path.string();
  o.journal = true;
  Coordinator coord(fig2_target(true), o);
  ASSERT_TRUE(coord.start());

  TestShard shard;
  ASSERT_TRUE(shard.connect(coord.port()));
  ASSERT_TRUE(shard.hello().has_value());
  ASSERT_TRUE(shard.lease().has_value());
  EXPECT_EQ(coord.shards_joined(), 1u);

  shard.drop();  // rude death, no Finished
  EXPECT_TRUE(eventually([&] { return coord.shards_lost() == 1; }));
  EXPECT_TRUE(eventually([&] { return coord.leases_reclaimed() == 1; }));

  // The reclaimed quota is available again to the next shard.
  TestShard next;
  next.name = "next";
  next.token = 9;
  ASSERT_TRUE(next.connect(coord.port()));
  ASSERT_TRUE(next.hello().has_value());
  const auto g = next.lease();
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->quota, 8);
  coord.stop();

  const std::string journal = slurp(dir.path / "journal.jsonl");
  EXPECT_NE(journal.find("shard_joined"), std::string::npos);
  EXPECT_NE(journal.find("shard_lost"), std::string::npos);
  EXPECT_NE(journal.find("lease_reclaimed"), std::string::npos);
}

TEST(Coordinator, SilentShardExpiresByMissedHeartbeats) {
  CoordinatorOptions o = fast_opts(100, 4);
  o.lease_ttl_ms = 150;
  Coordinator coord(fig2_target(true), o);
  ASSERT_TRUE(coord.start());

  TestShard shard;
  ASSERT_TRUE(shard.connect(coord.port()));
  ASSERT_TRUE(shard.hello().has_value());
  ASSERT_TRUE(shard.lease().has_value());

  // Keep the connection open but say nothing: the lease deadline and the
  // missed-heartbeat cutoff both pass.
  EXPECT_TRUE(eventually([&] {
    return coord.leases_reclaimed() >= 1 && coord.shards_lost() >= 1;
  }));

  // The shard is still known: a lease request after the silence renews it.
  const auto g = shard.lease();
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->quota, 4);
  coord.stop();
}

TEST(Coordinator, UnknownShardFramesAreRejected) {
  Coordinator coord(fig2_target(true), fast_opts(10, 4));
  ASSERT_TRUE(coord.start());

  TestShard shard;
  ASSERT_TRUE(shard.connect(coord.port()));
  // Lease request without a Hello handshake: an Error frame, not a crash.
  coord::LeaseRequestMsg m;
  m.shard = "ghost@1";
  const auto f =
      shard.transact(coord::kLeaseRequest, coord::encode_lease_request(m));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, coord::kError);
  coord.stop();
}

TEST(Coordinator, RestartFromCheckpointKeepsStateAndNeverDoubleCounts) {
  TempDir dir;
  CoordinatorOptions o = fast_opts(20, 4);
  o.log_dir = dir.path.string();
  o.checkpoint_every_deltas = 1;
  std::string shard_key_used;

  {
    Coordinator coord(fig2_target(true), o);
    ASSERT_TRUE(coord.start());
    TestShard shard;
    shard_key_used = shard.key();
    ASSERT_TRUE(shard.connect(coord.port()));
    ASSERT_TRUE(shard.hello().has_value());
    ASSERT_TRUE(shard.lease().has_value());
    coord::DeltaMsg d;
    d.iterations = 3;
    d.covered = {1, 2};
    BugRecord bug;
    bug.outcome = rt::Outcome::kAssert;
    bug.message = "seeded assertion: y == 77 on the master";
    d.bugs.push_back(bug);
    ASSERT_TRUE(shard.delta(d).has_value());
    ASSERT_TRUE(shard.lease().has_value());  // leave a lease outstanding
    // Wait for the periodic checkpoint, then SIMULATE kill -9: freeze the
    // on-disk state mid-run (a clean stop() would write a final snapshot,
    // which is exactly what a SIGKILL never gets to do).
    ASSERT_TRUE(eventually([&] {
      std::ifstream in(dir.path / "checkpoint.txt");
      std::stringstream ss;
      ss << in.rdbuf();
      return ss.str().find("coord 1") != std::string::npos &&
             ss.str().find("coord_counters 20 3 ") != std::string::npos;
    }));
    fs::copy(dir.path / "checkpoint.txt", dir.path / "frozen.txt");
    coord.stop();
  }
  fs::rename(dir.path / "frozen.txt", dir.path / "checkpoint.txt");
  fs::remove(dir.path / "checkpoint.txt.bak");

  CoordinatorOptions r = o;
  r.resume = true;
  Coordinator restarted(fig2_target(true), r);
  ASSERT_TRUE(restarted.start());
  // Confirmed state survived; the restored outstanding lease was reclaimed.
  EXPECT_EQ(restarted.completed(), 3);
  EXPECT_EQ(restarted.covered_ids(), (std::vector<sym::BranchId>{1, 2}));
  ASSERT_EQ(restarted.bugs().size(), 1u);
  EXPECT_GE(restarted.leases_reclaimed(), 1u);

  // The same shard process reconnects and replays its cumulative state:
  // 5 total after 3 already merged adds exactly 2.
  TestShard shard;
  ASSERT_EQ(shard.key(), shard_key_used);
  ASSERT_TRUE(shard.connect(restarted.port()));
  const auto welcome = shard.hello();
  ASSERT_TRUE(welcome.has_value());
  EXPECT_EQ(welcome->sync.covered, (std::vector<sym::BranchId>{1, 2}))
      << "the rejoin Welcome resyncs restored coverage in full";
  coord::DeltaMsg d;
  d.iterations = 5;
  d.covered = {1, 2, 4};
  BugRecord bug;
  bug.outcome = rt::Outcome::kAssert;
  bug.message = "seeded assertion: y == 77 on the master";
  d.bugs.push_back(bug);
  ASSERT_TRUE(shard.delta(d).has_value());
  EXPECT_EQ(restarted.completed(), 5);
  EXPECT_EQ(restarted.covered_ids(), (std::vector<sym::BranchId>{1, 2, 4}));
  EXPECT_EQ(restarted.bugs().size(), 1u) << "bug dedup survives the restart";
  restarted.stop();
}

TEST(Coordinator, FleetJsonReportsPerShardTelemetryAndRates) {
  Coordinator coord(fig2_target(true), fast_opts(1000, 8));
  ASSERT_TRUE(coord.start());

  TestShard a, b;
  a.name = "node one";  // space survives the key and the fleet document
  b.name = "b";
  b.token = 2;
  ASSERT_TRUE(a.connect(coord.port()));
  ASSERT_TRUE(b.connect(coord.port()));
  ASSERT_TRUE(a.hello().has_value());
  ASSERT_TRUE(b.hello().has_value());

  // Telemetry piggybacks on deltas and heartbeats; two samples spaced in
  // coordinator time give each shard a live iters/sec estimate.
  coord::DeltaMsg d;
  d.iterations = 5;
  d.covered = {1, 2};
  d.telemetry = telemetry_at(5, 3);
  ASSERT_TRUE(a.delta(d).has_value());
  ASSERT_TRUE(b.heartbeat(telemetry_at(2, 1)).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ASSERT_TRUE(a.heartbeat(telemetry_at(25, 4)).has_value());
  ASSERT_TRUE(b.heartbeat(telemetry_at(12, 2)).has_value());

  const auto fleet = obs::parse_json_object(coord.fleet_json());
  ASSERT_TRUE(fleet.has_value());
  EXPECT_EQ(fleet->num("budget").value_or(-1), 1000);
  EXPECT_EQ(fleet->num("shards_connected").value_or(-1), 2);
  ASSERT_EQ(fleet->str("shard_0.name").value_or(""), "node one");
  ASSERT_EQ(fleet->str("shard_1.name").value_or(""), "b");
  EXPECT_TRUE(fleet->boolean("shard_0.connected").value_or(false));
  EXPECT_TRUE(fleet->boolean("shard_0.telemetry").value_or(false));
  EXPECT_EQ(fleet->num("shard_0.iterations").value_or(-1), 25);
  EXPECT_EQ(fleet->num("shard_1.iterations").value_or(-1), 12);
  EXPECT_EQ(fleet->num("shard_0.frontier_depth").value_or(-1), 4);
  EXPECT_EQ(fleet->num("shard_0.covered").value_or(-1), 35);
  // Both shards advanced between their two samples: live positive rates.
  EXPECT_GT(fleet->real("shard_0.rate").value_or(0.0), 0.0);
  EXPECT_GT(fleet->real("shard_1.rate").value_or(0.0), 0.0);
  // The sparkline ring carries the same two samples.
  EXPECT_NE(fleet->str("shard_0.timeline").value_or("").find(":25"),
            std::string::npos);

  // The telemetry also lands in the shard-labeled gauges (space intact).
  std::ostringstream prom;
  obs::registry().write_prometheus(prom);
  EXPECT_NE(
      prom.str().find("compi_shard_iterations{shard=\"node one\"} 25"),
      std::string::npos);
  coord.stop();
}

TEST(Coordinator, HealthzFlipsStalledThenRecoversOnNewCoverage) {
  TempDir dir;
  CoordinatorOptions o = fast_opts(1000, 8);
  o.log_dir = dir.path.string();
  o.journal = true;
  o.serve_port = 0;                // ephemeral control plane
  o.stall_window_seconds = 0.05;   // classify a stall almost immediately
  Coordinator coord(fig2_target(true), o);
  ASSERT_TRUE(coord.start());
  ASSERT_GT(coord.http_port(), 0);
  const std::string target =
      "127.0.0.1:" + std::to_string(coord.http_port());

  TestShard shard;
  ASSERT_TRUE(shard.connect(coord.port()));
  ASSERT_TRUE(shard.hello().has_value());

  // An empty frontier report plus a flat coverage curve past the window
  // must classify as frontier-starved and flip /healthz to 503.
  coord::ShardTelemetry starved = telemetry_at(4, /*frontier=*/0);
  ASSERT_TRUE(shard.heartbeat(starved).has_value());
  EXPECT_TRUE(eventually([&] {
    const auto r = serve::http_get(target, "/healthz");
    return r.has_value() && r->status == 503;
  }));
  const auto down = serve::http_get(target, "/healthz");
  ASSERT_TRUE(down.has_value());
  EXPECT_NE(down->body.find("frontier-starved"), std::string::npos);
  EXPECT_EQ(coord.diagnosis().first, "frontier-starved");
  const auto fleet = obs::parse_json_object(coord.fleet_json());
  ASSERT_TRUE(fleet.has_value());
  EXPECT_EQ(fleet->str("diagnosis_kind").value_or(""), "frontier-starved");

  // New merged coverage (and a refilled frontier) is progress: the next
  // diagnosis tick flips /healthz back to 200.
  coord::DeltaMsg d;
  d.iterations = 6;
  d.covered = {1, 2, 3};
  d.telemetry = telemetry_at(6, /*frontier=*/5);
  ASSERT_TRUE(shard.delta(d).has_value());
  EXPECT_TRUE(eventually([&] {
    const auto r = serve::http_get(target, "/healthz");
    return r.has_value() && r->status == 200;
  }));
  EXPECT_EQ(coord.diagnosis().first, "progressing");
  coord.stop();

  // The journal kept the verdict transitions (not one event per tick).
  const std::string journal = slurp(dir.path / "journal.jsonl");
  EXPECT_NE(journal.find("\"type\":\"diagnosis\""), std::string::npos);
  EXPECT_NE(journal.find("frontier-starved"), std::string::npos);
}

}  // namespace
}  // namespace compi

#else  // !COMPI_SERVE_POSIX

TEST(Coordinator, SkippedWithoutPosixSockets) {
  GTEST_SKIP() << "serve layer compiled out";
}

#endif
