#include "compi/search_strategy.h"

#include <gtest/gtest.h>

#include <set>

#include "compi/driver.h"

#include "solver/predicate.h"

namespace compi {
namespace {

using solver::make_ge_const;
using solver::make_le_const;

sym::Path path_of(std::initializer_list<int> sites) {
  sym::Path p;
  int depth = 0;
  for (int s : sites) {
    p.append(s, true, make_ge_const(0, depth++));
  }
  return p;
}

std::unique_ptr<SearchStrategy> make(SearchKind kind, std::size_t bound =
                                         static_cast<std::size_t>(-1)) {
  StrategyConfig cfg;
  cfg.kind = kind;
  cfg.bound = bound;
  cfg.seed = 5;
  return make_strategy(cfg);
}

TEST(BoundedDfs, NegatesDeepestFirst) {
  auto s = make(SearchKind::kBoundedDfs);
  s->observe(path_of({0, 1, 2}), std::nullopt);
  const auto c1 = s->next();
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->depth, 2u);
  EXPECT_EQ(c1->constraints.size(), 3u);
  // Last constraint is the negation of the deepest.
  EXPECT_EQ(c1->constraints.back(), make_ge_const(0, 2).negated());
  const auto c2 = s->next();
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->depth, 1u);
}

TEST(BoundedDfs, ExhaustsThenReturnsNothing) {
  auto s = make(SearchKind::kBoundedDfs);
  s->observe(path_of({0, 1}), std::nullopt);
  EXPECT_TRUE(s->next().has_value());
  EXPECT_TRUE(s->next().has_value());
  EXPECT_FALSE(s->next().has_value());
}

TEST(BoundedDfs, BoundSkipsDeepBranches) {
  auto s = make(SearchKind::kBoundedDfs, /*bound=*/2);
  s->observe(path_of({0, 1, 2, 3, 4}), std::nullopt);
  const auto c = s->next();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->depth, 1u) << "bound=2 allows depths 0 and 1 only";
}

TEST(BoundedDfs, ChildFrameExploresOnlyBeyondFlip) {
  auto s = make(SearchKind::kBoundedDfs);
  s->observe(path_of({0, 1, 2}), std::nullopt);
  const auto c = s->next();  // depth 2
  ASSERT_TRUE(c.has_value());
  s->accepted(*c);
  // Child run: same prefix, flipped at depth 2, new suffix.
  sym::Path child;
  child.append(0, true, make_ge_const(0, 0));
  child.append(1, true, make_ge_const(0, 1));
  child.append(2, false, make_ge_const(0, 2).negated());
  child.append(5, true, make_ge_const(0, 3));
  s->observe(child, c->depth);
  // Deepest pending is now the child's new suffix (depth 3).
  const auto c2 = s->next();
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->depth, 3u);
  // After the child subtree, the parent's remaining depths (1, then 0).
  const auto c3 = s->next();
  ASSERT_TRUE(c3.has_value());
  EXPECT_EQ(c3->depth, 1u);
}

TEST(BoundedDfs, PredictionFailureSkipsSubtree) {
  auto s = make(SearchKind::kBoundedDfs);
  s->observe(path_of({0, 1, 2}), std::nullopt);
  const auto c = s->next();  // depth 2
  ASSERT_TRUE(c.has_value());
  s->accepted(*c);
  // The run diverged somewhere else entirely: prefix mismatch.
  s->observe(path_of({7, 8, 9}), c->depth);
  EXPECT_EQ(s->stats().prediction_failures, 1u);
  // DFS continues with the parent's siblings.
  const auto c2 = s->next();
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->depth, 1u);
}

TEST(BoundedDfs, RestartRootsNewTree) {
  auto s = make(SearchKind::kBoundedDfs);
  s->observe(path_of({0, 1}), std::nullopt);
  (void)s->next();
  s->observe(path_of({3, 4, 5}), std::nullopt);  // restart
  const auto c = s->next();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->depth, 2u) << "fresh root from the restart path";
}

TEST(RandomBranch, ProposesWithinPath) {
  auto s = make(SearchKind::kRandomBranch);
  s->observe(path_of({0, 1, 2, 3}), std::nullopt);
  for (int i = 0; i < 8; ++i) {
    const auto c = s->next();
    ASSERT_TRUE(c.has_value());
    EXPECT_LT(c->depth, 4u);
    EXPECT_EQ(c->constraints.size(), c->depth + 1);
  }
}

TEST(RandomBranch, GivesUpAfterManyRejections) {
  auto s = make(SearchKind::kRandomBranch);
  s->observe(path_of({0}), std::nullopt);
  int proposals = 0;
  while (s->next().has_value()) ++proposals;
  EXPECT_GT(proposals, 0);
  EXPECT_LE(proposals, 3);  // path-length-derived cutoff
}

TEST(RandomBranch, EmptyPathYieldsNothing) {
  auto s = make(SearchKind::kRandomBranch);
  s->observe(sym::Path{}, std::nullopt);
  EXPECT_FALSE(s->next().has_value());
}

TEST(UniformRandom, ProposesWithinPath) {
  auto s = make(SearchKind::kUniformRandom);
  s->observe(path_of({0, 1, 2, 3, 4, 5}), std::nullopt);
  const auto c = s->next();
  ASSERT_TRUE(c.has_value());
  EXPECT_LT(c->depth, 6u);
}

TEST(Cfg, PrefersFlipOntoUncoveredBranch) {
  // Table: 3 sites in one function.
  rt::BranchTable table;
  table.add_site("f", "s0");
  table.add_site("f", "s1");
  table.add_site("f", "s2");
  table.finalize();
  CoverageTracker coverage(table);
  // Mark everything covered except s1's false arm.
  rt::CoverageBitmap bm(6);
  for (int s = 0; s < 3; ++s) {
    bm.mark(sym::branch_id(s, true));
    if (s != 1) bm.mark(sym::branch_id(s, false));
  }
  coverage.merge(bm);

  StrategyConfig cfg;
  cfg.kind = SearchKind::kCfg;
  cfg.seed = 3;
  cfg.table = &table;
  cfg.coverage = &coverage;
  auto s = make_strategy(cfg);
  s->observe(path_of({0, 1, 2}), std::nullopt);
  const auto c = s->next();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->depth, 1u) << "flipping depth 1 reaches the uncovered arm";
}

TEST(Generational, ExpandsEveryFlipOfARun) {
  auto s = make(SearchKind::kGenerational);
  s->observe(path_of({0, 1, 2}), std::nullopt);
  // All three depths are queued; each next() yields a distinct one.
  std::set<std::size_t> depths;
  for (int i = 0; i < 3; ++i) {
    const auto c = s->next();
    ASSERT_TRUE(c.has_value());
    depths.insert(c->depth);
  }
  EXPECT_EQ(depths, (std::set<std::size_t>{0, 1, 2}));
  EXPECT_FALSE(s->next().has_value());
}

TEST(Generational, ChildExpandsOnlyBeyondFlipDepth) {
  auto s = make(SearchKind::kGenerational);
  s->observe(path_of({0, 1}), std::nullopt);
  const auto c = s->next();
  ASSERT_TRUE(c.has_value());
  s->accepted(*c);
  // Child run that flipped at c->depth: only deeper constraints queue.
  s->observe(path_of({0, 1, 2, 3}), c->depth);
  std::size_t queued = 0;
  while (s->next().has_value()) ++queued;
  // Parent had 2 queued (1 consumed), child adds 4 - (depth+1).
  EXPECT_EQ(queued, 1 + (4 - (c->depth + 1)));
}

TEST(Generational, CoversChainInLinearBudget) {
  // On independent branches, generational search covers every arm with a
  // linear budget — the breadth-over-depth trade DFS cannot make.
  rt::BranchTable table;
  for (int i = 0; i < 10; ++i) table.add_site("chain", "b");
  table.finalize();
  TargetInfo info;
  info.name = "chain";
  info.table = &table;
  info.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    for (int i = 0; i < 10; ++i) {
      const sym::SymInt b =
          ctx.input_int_range("b" + std::to_string(i), 0, 100);
      (void)ctx.branch(static_cast<sym::SiteId>(i), b < sym::SymInt(50));
    }
    world.barrier();
  };
  CampaignOptions opts;
  opts.seed = 17;
  opts.iterations = 40;
  opts.initial_nprocs = 1;
  opts.search = SearchKind::kGenerational;
  const CampaignResult result = Campaign(info, opts).run();
  EXPECT_EQ(result.covered_branches, 20u);
}

TEST(StrategyNames, AreStable) {
  EXPECT_STREQ(make(SearchKind::kDfs)->name(), "DFS");
  EXPECT_STREQ(make(SearchKind::kBoundedDfs, 10)->name(), "BoundedDFS");
  EXPECT_STREQ(make(SearchKind::kRandomBranch)->name(), "RandomBranch");
  EXPECT_STREQ(make(SearchKind::kUniformRandom)->name(), "UniformRandom");
  EXPECT_STREQ(make(SearchKind::kGenerational)->name(), "Generational");
}

}  // namespace
}  // namespace compi
