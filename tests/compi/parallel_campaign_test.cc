// Differential testing of the parallel campaign engine (--workers).
//
// The contracts under test, from options.h and DESIGN.md:
//   * workers=1 IS the serial driver: same seed => bit-identical
//     iterations.csv / ledger.csv (timing columns excluded — wall clock is
//     the one permitted nondeterminism).
//   * the solver cache changes cost accounting (solver_nodes) but never
//     results: a cache-on serial session matches cache-off row for row.
//   * workers=4 reaches the SAME coverage set as serial, in some order —
//     parallel negation is a traversal-order change, not a search change.
//   * parallel bookkeeping (worker column, ordinal completeness, dedup /
//     stale / cache counters, metrics.prom) is consistent.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "compi/driver.h"
#include "compi/session.h"
#include "targets/targets.h"
#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_parallel_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

CampaignOptions base_opts(const fs::path& dir) {
  CampaignOptions opts;
  opts.seed = 7;
  opts.iterations = 80;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.dfs_phase_iterations = 40;
  opts.checkpoint_interval = 0;
  opts.log_dir = dir.string();
  return opts;
}

/// iterations.csv with the named column indices blanked (timings are wall /
/// CPU clock readings and legitimately vary run to run).
std::vector<std::string> csv_rows_excluding(const fs::path& file,
                                            const std::set<int>& drop) {
  std::ifstream in(file);
  std::vector<std::string> rows;
  std::string line;
  while (std::getline(in, line)) {
    std::stringstream ss(line);
    std::string field, rebuilt;
    int idx = 0;
    while (std::getline(ss, field, ',')) {
      rebuilt += drop.count(idx) ? std::string("_") : field;
      rebuilt += ',';
      ++idx;
    }
    rows.push_back(rebuilt);
  }
  return rows;
}

constexpr int kExecSecondsCol = 6;
constexpr int kSolveSecondsCol = 7;
constexpr int kSolverNodesCol = 9;

std::string slurp(const fs::path& file) {
  std::ifstream in(file);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Branch ids marked covered in a session's ledger.csv.
std::set<long> covered_set(const fs::path& ledger_csv) {
  std::ifstream in(ledger_csv);
  std::set<long> covered;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    std::stringstream ss(line);
    std::string field;
    long branch = -1;
    for (int idx = 0; idx <= 4 && std::getline(ss, field, ','); ++idx) {
      if (idx == 0) branch = std::stol(field);
      if (idx == 4 && field == "1") covered.insert(branch);
    }
  }
  return covered;
}

TEST(ParallelCampaign, WorkersOneMatchesSerialSessionExactly) {
  TempDir serial_dir, one_worker_dir;
  CampaignOptions serial = base_opts(serial_dir.path);
  const CampaignResult serial_result = Campaign(fig2_target(), serial).run();

  CampaignOptions one = base_opts(one_worker_dir.path);
  one.workers = 1;  // must dispatch to the identical serial loop
  const CampaignResult one_result = Campaign(fig2_target(), one).run();

  EXPECT_EQ(serial_result.covered_branches, one_result.covered_branches);
  EXPECT_EQ(serial_result.restarts, one_result.restarts);
  EXPECT_EQ(one_result.workers_used, 1u);
  EXPECT_EQ(one_result.frontier_dedup_skips, 0u);
  EXPECT_EQ(one_result.stale_candidate_drops, 0u);

  const auto drop = std::set<int>{kExecSecondsCol, kSolveSecondsCol};
  EXPECT_EQ(csv_rows_excluding(serial_dir.path / "iterations.csv", drop),
            csv_rows_excluding(one_worker_dir.path / "iterations.csv", drop));
  EXPECT_EQ(slurp(serial_dir.path / "ledger.csv"),
            slurp(one_worker_dir.path / "ledger.csv"));
}

TEST(ParallelCampaign, SolverCacheDoesNotChangeSerialResults) {
  TempDir off_dir, on_dir;
  CampaignOptions off = base_opts(off_dir.path);
  const CampaignResult off_result = Campaign(fig2_target(), off).run();
  EXPECT_EQ(off_result.solver_cache_hits + off_result.solver_cache_misses, 0u);

  CampaignOptions on = base_opts(on_dir.path);
  on.solver_cache_entries = 4096;
  const CampaignResult on_result = Campaign(fig2_target(), on).run();

  // Identical rows except the cost column: hits report 0 searched nodes.
  const auto drop =
      std::set<int>{kExecSecondsCol, kSolveSecondsCol, kSolverNodesCol};
  EXPECT_EQ(csv_rows_excluding(off_dir.path / "iterations.csv", drop),
            csv_rows_excluding(on_dir.path / "iterations.csv", drop));
  EXPECT_EQ(slurp(off_dir.path / "ledger.csv"),
            slurp(on_dir.path / "ledger.csv"));
  EXPECT_EQ(off_result.covered_branches, on_result.covered_branches);
  EXPECT_GT(on_result.solver_cache_misses, 0u);
}

TEST(ParallelCampaign, FourWorkersLoseNoSerialCoverageOnImb) {
  // Order-independence of the shared frontier: with per-worker search
  // depth matched to the serial run (4 workers x 4x the iteration
  // budget — each DFS line advances only on its own worker's
  // iterations), the parallel campaign must reach every branch the
  // serial one saturates at (serial plateaus at this seed/budget; see
  // the fig2 test below for exact set EQUALITY on a fully saturable
  // target).  Workers explore independently-seeded lines, so the
  // parallel set is allowed to be a superset — dedup and stale-dropping
  // may only ever cost candidates whose arm is already covered, never
  // final coverage.  The iter cap and nprocs are kept small so that the
  // serial plateau set contains no branch gated on a DFS line deeper
  // than one worker's share of the parallel budget.
  const TargetInfo target = targets::make_mini_imb_target(4);
  TempDir serial_dir, parallel_dir;

  CampaignOptions serial = base_opts(serial_dir.path);
  serial.seed = 3;
  serial.iterations = 400;
  serial.initial_nprocs = 2;
  serial.max_procs = 2;
  serial.dfs_phase_iterations = 100;
  const CampaignResult serial_result = Campaign(target, serial).run();

  CampaignOptions par = serial;
  par.log_dir = parallel_dir.path.string();
  par.iterations = 1600;
  par.workers = 4;
  par.solver_cache_entries = 4096;
  const CampaignResult par_result = Campaign(target, par).run();

  EXPECT_EQ(par_result.workers_used, 4u);
  EXPECT_GE(par_result.covered_branches, serial_result.covered_branches);
  const std::set<long> serial_covered =
      covered_set(serial_dir.path / "ledger.csv");
  const std::set<long> par_covered =
      covered_set(parallel_dir.path / "ledger.csv");
  std::set<long> lost;
  std::set_difference(serial_covered.begin(), serial_covered.end(),
                      par_covered.begin(), par_covered.end(),
                      std::inserter(lost, lost.begin()));
  EXPECT_TRUE(lost.empty()) << lost.size() << " serial branches lost";
  EXPECT_TRUE(par_result.bugs.empty());
}

TEST(ParallelCampaign, FourWorkersReachSerialCoverageSetOnFig2) {
  // Exact order-independent set equality, on a target small enough that
  // both engines fully saturate its reachable set within the budget.
  TempDir serial_dir, parallel_dir;
  CampaignOptions serial = base_opts(serial_dir.path);
  serial.iterations = 200;
  const CampaignResult serial_result = Campaign(fig2_target(), serial).run();

  CampaignOptions par = base_opts(parallel_dir.path);
  par.iterations = 800;  // per-worker depth parity with the serial run
  par.workers = 4;
  par.solver_cache_entries = 4096;
  const CampaignResult par_result = Campaign(fig2_target(), par).run();

  EXPECT_EQ(serial_result.covered_branches, par_result.covered_branches);
  EXPECT_EQ(covered_set(serial_dir.path / "ledger.csv"),
            covered_set(parallel_dir.path / "ledger.csv"));
}

TEST(ParallelCampaign, ParallelBookkeepingIsConsistent) {
  TempDir dir;
  CampaignOptions opts = base_opts(dir.path);
  opts.workers = 3;
  opts.solver_cache_entries = 4096;
  opts.metrics = true;
  const CampaignResult result = Campaign(fig2_target(), opts).run();

  EXPECT_EQ(result.workers_used, 3u);
  ASSERT_EQ(result.iterations.size(), 80u);
  // Every ordinal exactly once (sorted at finalize), each row stamped with
  // the worker that ran it.
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    EXPECT_EQ(result.iterations[i].iteration, static_cast<int>(i));
    EXPECT_GE(result.iterations[i].worker, 0);
    EXPECT_LT(result.iterations[i].worker, 3);
  }
  // More than one worker must actually have executed something.
  std::set<int> workers_seen;
  for (const IterationRecord& r : result.iterations) {
    workers_seen.insert(r.worker);
  }
  EXPECT_GT(workers_seen.size(), 1u);
  EXPECT_GT(result.solver_cache_hits + result.solver_cache_misses, 0u);

  const std::string prom = slurp(dir.path / "metrics.prom");
  EXPECT_NE(prom.find("compi_solver_cache_hits_total"), std::string::npos);
  EXPECT_NE(prom.find("compi_solver_cache_misses_total"), std::string::npos);
  EXPECT_NE(prom.find("compi_frontier_dedup_skips_total"), std::string::npos);
  EXPECT_NE(prom.find("compi_stale_candidate_drops_total"), std::string::npos);
}

TEST(ParallelCampaign, ParallelCheckpointResumeCompletesTheBudget) {
  TempDir dir;
  CampaignOptions opts = base_opts(dir.path);
  opts.workers = 2;
  opts.checkpoint_interval = 5;
  opts.halt_after_iterations = 20;
  const CampaignResult partial = Campaign(fig2_target(), opts).run();
  EXPECT_GE(partial.iterations.size(), 20u);
  ASSERT_TRUE(fs::exists(dir.path / "checkpoint.txt"));

  CampaignOptions resume = base_opts(dir.path);
  resume.workers = 2;
  resume.checkpoint_interval = 5;
  resume.resume = true;
  const CampaignResult full = Campaign(fig2_target(), resume).run();
  EXPECT_TRUE(full.resumed);
  ASSERT_EQ(full.iterations.size(), 80u);
  for (std::size_t i = 0; i < full.iterations.size(); ++i) {
    EXPECT_EQ(full.iterations[i].iteration, static_cast<int>(i));
  }
}

TEST(ParallelCampaign, SerialResumeRejectsParallelSnapshot) {
  // A serial (--workers=1) resume of a parallel session must degrade to a
  // clean fresh start, never misread per-worker cursors.
  TempDir dir;
  CampaignOptions opts = base_opts(dir.path);
  opts.workers = 2;
  opts.checkpoint_interval = 5;
  const CampaignResult parallel = Campaign(fig2_target(), opts).run();
  ASSERT_TRUE(fs::exists(dir.path / "checkpoint.txt"));

  CampaignOptions resume = base_opts(dir.path);
  resume.resume = true;  // workers defaults to 1
  const CampaignResult fresh = Campaign(fig2_target(), resume).run();
  EXPECT_FALSE(fresh.resumed);
  EXPECT_EQ(fresh.iterations.size(), 80u);
  EXPECT_GT(fresh.covered_branches, 0u);
  (void)parallel;
}

}  // namespace
}  // namespace compi
