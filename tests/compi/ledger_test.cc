// The coverage attribution ledger: first-hit provenance, per-rank hit
// counts, solver near-misses, checkpoint-v4 persistence, and the CSV
// export `--explain` reads back.
#include "compi/ledger.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "compi/checkpoint.h"
#include "compi/explain.h"
#include "minimpi/launcher.h"
#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::fig2_table;

/// A RunResult with `nranks` ranks, each holding an all-zero bitmap sized
/// to the fig2 table.
minimpi::RunResult make_run(int nranks) {
  minimpi::RunResult run;
  run.ranks.resize(static_cast<std::size_t>(nranks));
  for (auto& rank : run.ranks) {
    rank.log.covered = rt::CoverageBitmap(fig2_table().num_branches());
  }
  return run;
}

CoverageLedger::RunContext ctx_at(int iteration,
                                  const std::map<std::string, std::int64_t>*
                                      inputs = nullptr,
                                  const std::vector<sym::BranchId>*
                                      harvested = nullptr) {
  CoverageLedger::RunContext ctx;
  ctx.iteration = iteration;
  ctx.nprocs = 4;
  ctx.focus = 1;
  ctx.inputs = inputs;
  ctx.harvested = harvested;
  return ctx;
}

TEST(CoverageLedger, FirstHitAttributionIsRecordedOnceAndHitsAccumulate) {
  CoverageLedger ledger(fig2_table());
  const std::map<std::string, std::int64_t> inputs{{"x", 5}, {"y", 77}};

  minimpi::RunResult run = make_run(2);
  run.ranks[1].log.covered.mark(6);
  ledger.record_run(ctx_at(3, &inputs), run);

  ASSERT_EQ(ledger.covered_branches(), 1u);
  const BranchAttribution& a = ledger.attribution(6);
  EXPECT_TRUE(a.covered());
  EXPECT_EQ(a.first_iteration, 3);
  EXPECT_EQ(a.first_focus, 1);
  EXPECT_EQ(a.first_nprocs, 4);
  EXPECT_EQ(a.first_rank, 1);
  EXPECT_FALSE(a.first_harvested);
  EXPECT_EQ(a.first_inputs.at("y"), 77);

  // A later run by another rank bumps hit counts but keeps the first-hit.
  minimpi::RunResult again = make_run(3);
  again.ranks[0].log.covered.mark(6);
  again.ranks[1].log.covered.mark(6);
  ledger.record_run(ctx_at(9), again);
  const BranchAttribution& b = ledger.attribution(6);
  EXPECT_EQ(b.first_iteration, 3);
  EXPECT_EQ(b.total_hits(), 3u);
  ASSERT_GE(b.hits_per_rank.size(), 2u);
  EXPECT_EQ(b.hits_per_rank[0], 1u);
  EXPECT_EQ(b.hits_per_rank[1], 2u);
  const std::vector<std::size_t> per_rank = ledger.branches_per_rank();
  ASSERT_GE(per_rank.size(), 2u);
  EXPECT_EQ(per_rank[0], 1u);
  EXPECT_EQ(per_rank[1], 1u);
}

TEST(CoverageLedger, HarvestedFirstHitsAreFlagged) {
  CoverageLedger ledger(fig2_table());
  const std::vector<sym::BranchId> harvested{4, 10};  // sorted

  minimpi::RunResult run = make_run(2);
  run.ranks[0].log.covered.mark(4);   // from the harvest map
  run.ranks[0].log.covered.mark(2);   // delivered normally
  ledger.record_run(ctx_at(0, nullptr, &harvested), run);

  EXPECT_TRUE(ledger.attribution(4).first_harvested);
  EXPECT_FALSE(ledger.attribution(2).first_harvested);
}

TEST(CoverageLedger, NearMissesTrackAttemptsAndAreSettledByCoverage) {
  CoverageLedger ledger(fig2_table());
  ledger.record_solve_failure(11, 2, "x1 != 0", false);
  ledger.record_solve_failure(11, 5, "x1 != 0", true);
  ledger.record_solve_failure(7, 6, "x2 < 0", false);

  ASSERT_TRUE(ledger.near_miss(11).has_value());
  EXPECT_EQ(ledger.near_miss(11)->attempts, 2);
  EXPECT_EQ(ledger.near_miss(11)->last_iteration, 5);
  EXPECT_TRUE(ledger.near_miss(11)->budget_exhausted);

  // Most-attempted first.
  const std::vector<sym::BranchId> misses = ledger.nearest_misses();
  ASSERT_EQ(misses.size(), 2u);
  EXPECT_EQ(misses[0], 11);
  EXPECT_EQ(misses[1], 7);

  // Coverage settles the near miss: record_solve_failure on a covered
  // branch is ignored and the stale record is dropped.
  minimpi::RunResult run = make_run(1);
  run.ranks[0].log.covered.mark(11);
  ledger.record_run(ctx_at(8), run);
  EXPECT_FALSE(ledger.near_miss(11).has_value());
  ledger.record_solve_failure(11, 9, "x1 != 0", false);
  EXPECT_FALSE(ledger.near_miss(11).has_value());
  EXPECT_EQ(ledger.nearest_misses().size(), 1u);
}

TEST(CoverageLedger, SnapshotRoundTripsThroughWriteAndRead) {
  CoverageLedger ledger(fig2_table());
  const std::map<std::string, std::int64_t> inputs{{"x", 33}};
  minimpi::RunResult run = make_run(2);
  run.ranks[0].log.covered.mark(3);
  run.ranks[1].log.covered.mark(5);
  const std::vector<sym::BranchId> harvested{5};
  ledger.record_run(ctx_at(4, &inputs, &harvested), run);
  ledger.record_solve_failure(9, 6, "with \\ and\nnewline", true);

  std::stringstream snapshot;
  ledger.write(snapshot);

  CoverageLedger restored(fig2_table());
  ASSERT_TRUE(restored.read(snapshot));
  EXPECT_EQ(restored.covered_branches(), 2u);
  EXPECT_EQ(restored.attribution(3).first_iteration, 4);
  EXPECT_EQ(restored.attribution(3).first_inputs.at("x"), 33);
  EXPECT_TRUE(restored.attribution(5).first_harvested);
  EXPECT_EQ(restored.attribution(5).first_rank, 1);
  ASSERT_TRUE(restored.near_miss(9).has_value());
  EXPECT_EQ(restored.near_miss(9)->constraint, "with \\ and\nnewline");
  EXPECT_TRUE(restored.near_miss(9)->budget_exhausted);

  // A snapshot for a different branch table is rejected.
  rt::BranchTable other;
  other.add_site("f", "only_site");
  other.finalize();
  CoverageLedger mismatched(other);
  std::stringstream replay(snapshot.str());
  ledger.write(replay);
  EXPECT_FALSE(mismatched.read(replay));
}

TEST(CoverageLedger, SurvivesACheckpointV4RoundTrip) {
  CoverageLedger ledger(fig2_table());
  minimpi::RunResult run = make_run(1);
  run.ranks[0].log.covered.mark(0);
  ledger.record_run(ctx_at(1), run);
  ledger.record_solve_failure(13, 2, "x1 + -77 != 0", false);

  ckpt::CampaignCheckpoint checkpoint;
  checkpoint.seed = 7;
  checkpoint.strategy_name = "bounded-dfs";
  // Blobs are line-oriented and newline-terminated (as save_state and
  // CoverageLedger::write produce them).
  checkpoint.strategy_state = "opaque\nstrategy\nlines\n";
  std::ostringstream ledger_blob;
  ledger.write(ledger_blob);
  checkpoint.ledger_state = ledger_blob.str();

  std::stringstream file;
  checkpoint.write(file);
  const auto restored = ckpt::CampaignCheckpoint::read(file);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->strategy_state, checkpoint.strategy_state);
  ASSERT_FALSE(restored->ledger_state.empty());

  CoverageLedger recovered(fig2_table());
  std::istringstream blob(restored->ledger_state);
  ASSERT_TRUE(recovered.read(blob));
  EXPECT_EQ(recovered.covered_branches(), 1u);
  EXPECT_EQ(recovered.attribution(0).first_iteration, 1);
  ASSERT_TRUE(recovered.near_miss(13).has_value());
  EXPECT_EQ(recovered.near_miss(13)->constraint, "x1 + -77 != 0");
}

TEST(CoverageLedger, CsvExportRoundTripsThroughTheExplainReader) {
  CoverageLedger ledger(fig2_table());
  const std::map<std::string, std::int64_t> inputs{{"x", 5}, {"y", 77}};
  minimpi::RunResult run = make_run(2);
  run.ranks[0].log.covered.mark(8);
  run.ranks[1].log.covered.mark(8);
  const std::vector<sym::BranchId> harvested{8};
  ledger.record_run(ctx_at(2, &inputs, &harvested), run);
  ledger.record_solve_failure(12, 7, "a, \"quoted\" constraint", true);

  const fs::path file =
      fs::temp_directory_path() /
      ("compi_ledger_csv_" + std::to_string(::getpid()) + ".csv");
  {
    std::ofstream out(file);
    ledger.write_csv(out, fig2_table());
  }
  const std::vector<LedgerCsvRow> rows = read_ledger_csv(file);
  fs::remove(file);
  ASSERT_EQ(rows.size(), fig2_table().num_branches());

  const LedgerCsvRow& hit = rows[8];
  EXPECT_EQ(hit.branch, 8);
  EXPECT_EQ(hit.site, "rank_zero");
  EXPECT_EQ(hit.function, "share_work");
  EXPECT_TRUE(hit.covered);
  EXPECT_EQ(hit.first_iteration, 2);
  EXPECT_TRUE(hit.first_harvested);
  EXPECT_EQ(hit.total_hits, 2u);
  ASSERT_EQ(hit.hits_per_rank.size(), 2u);
  EXPECT_EQ(hit.hits_per_rank[0], 1u);
  EXPECT_EQ(hit.first_inputs, "x=5 y=77");

  const LedgerCsvRow& miss = rows[12];
  EXPECT_FALSE(miss.covered);
  EXPECT_EQ(miss.miss_attempts, 1);
  EXPECT_EQ(miss.miss_last_iteration, 7);
  EXPECT_TRUE(miss.miss_budget_exhausted);
  EXPECT_EQ(miss.miss_constraint, "a, \"quoted\" constraint");
}

TEST(CsvQuote, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

}  // namespace
}  // namespace compi
