#include "compi/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace compi {
namespace {

TEST(TablePrinter, FormatsAlignedTable) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha "), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
  // Every line has the same length (alignment).
  std::istringstream lines(out);
  std::string line, first;
  std::getline(lines, first);
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.size(), first.size());
  }
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| x "), std::string::npos);
}

TEST(TablePrinter, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(3.0, 0), "3");
}

TEST(TablePrinter, PctFormatting) {
  EXPECT_EQ(TablePrinter::pct(0.847), "84.7%");
  EXPECT_EQ(TablePrinter::pct(1.0, 0), "100%");
}

TEST(TablePrinter, BytesFormatting) {
  EXPECT_EQ(TablePrinter::bytes(512), "512B");
  EXPECT_EQ(TablePrinter::bytes(6554), "6.4K");
  EXPECT_EQ(TablePrinter::bytes(104857600), "100.0M");
  EXPECT_EQ(TablePrinter::bytes(2ull << 30), "2.0G");
}

}  // namespace
}  // namespace compi
