// Wire-level tests for the coordinator protocol (coord_protocol.h).
//
// Every message type must round-trip encode -> decode bit-exactly,
// including the awkward payloads: shard names with spaces, bug messages
// with embedded newlines (the checkpoint \-escape dialect), empty and
// large coverage sets, and ledger blobs.  Decoders must reject truncated
// or version-skewed payloads by returning false — never by crashing —
// because a false return is what makes the peer drop a corrupt connection.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "compi/checkpoint.h"
#include "compi/coord_protocol.h"
#include "compi/ledger.h"
#include "minimpi/launcher.h"
#include "tests/compi/fig2_target.h"

namespace compi::coord {
namespace {

/// Records one hit of `branch` by `rank` at `iteration` into the ledger.
void hit(CoverageLedger& ledger, sym::BranchId branch, int rank,
         int iteration) {
  minimpi::RunResult run;
  run.ranks.resize(static_cast<std::size_t>(rank) + 1);
  for (auto& r : run.ranks) {
    r.log.covered = rt::CoverageBitmap(testing::fig2_table().num_branches());
  }
  run.ranks[static_cast<std::size_t>(rank)].log.covered.mark(branch);
  CoverageLedger::RunContext ctx;
  ctx.iteration = iteration;
  ctx.nprocs = static_cast<int>(run.ranks.size());
  ledger.record_run(ctx, run);
}

TEST(CoordProtocol, HelloRoundTripsIdentityFields) {
  HelloMsg m;
  m.name = "rack 7 shard b";  // spaces must survive
  m.token = 0xdeadbeefcafe123ULL;
  m.seed = 42;
  HelloMsg out;
  ASSERT_TRUE(decode_hello(encode_hello(m), out));
  EXPECT_EQ(out.version, kProtocolVersion);
  EXPECT_EQ(out.name, m.name);
  EXPECT_EQ(out.token, m.token);
  EXPECT_EQ(out.seed, m.seed);
}

TEST(CoordProtocol, HelloRejectsFutureVersion) {
  HelloMsg m;
  m.version = kProtocolVersion + 1;
  m.name = "s";
  const std::string payload = encode_hello(m);
  HelloMsg out;
  EXPECT_FALSE(decode_hello(payload, out));
}

TEST(CoordProtocol, WelcomeCarriesFullResync) {
  WelcomeMsg m;
  m.ordinal = 3;
  m.sync.covered = {1, 5, 9, 14};
  m.sync.interleaving_seen = {0ULL, 0xffffffffffffffffULL, 7ULL};
  m.sync.completed = 120;
  m.sync.budget = 500;
  WelcomeMsg out;
  ASSERT_TRUE(decode_welcome(encode_welcome(m), out));
  EXPECT_EQ(out.ordinal, 3);
  EXPECT_EQ(out.sync.covered, m.sync.covered);
  EXPECT_EQ(out.sync.interleaving_seen, m.sync.interleaving_seen);
  EXPECT_EQ(out.sync.completed, 120);
  EXPECT_EQ(out.sync.budget, 500);
}

TEST(CoordProtocol, LeaseRequestRoundTripsShardKey) {
  LeaseRequestMsg m;
  m.shard = shard_key("node a", 99);
  LeaseRequestMsg out;
  ASSERT_TRUE(decode_lease_request(encode_lease_request(m), out));
  EXPECT_EQ(out.shard, m.shard);
}

TEST(CoordProtocol, LeaseGrantRoundTripsAllThreeShapes) {
  // Granted.
  LeaseGrantMsg grant;
  grant.lease_id = 17;
  grant.quota = 16;
  grant.sync.covered = {2};
  LeaseGrantMsg out;
  ASSERT_TRUE(decode_lease_grant(encode_lease_grant(grant), out));
  EXPECT_EQ(out.lease_id, 17u);
  EXPECT_EQ(out.quota, 16);
  EXPECT_FALSE(out.stop);
  EXPECT_EQ(out.sync.covered, grant.sync.covered);

  // Wait hint: other shards hold the remaining budget.
  LeaseGrantMsg wait;
  wait.quota = 0;
  wait.wait_ms = 250;
  ASSERT_TRUE(decode_lease_grant(encode_lease_grant(wait), out));
  EXPECT_EQ(out.quota, 0);
  EXPECT_FALSE(out.stop);
  EXPECT_EQ(out.wait_ms, 250);

  // Stop: global budget done.
  LeaseGrantMsg stop;
  stop.quota = 0;
  stop.stop = true;
  ASSERT_TRUE(decode_lease_grant(encode_lease_grant(stop), out));
  EXPECT_TRUE(out.stop);
}

TEST(CoordProtocol, DeltaRoundTripsBugsWithNewlinesAndLedger) {
  DeltaMsg m;
  m.shard = shard_key("shard", 1);
  m.iterations = 4242;
  m.covered = {0, 3, 8};
  m.interleaving_seen = {11, 12};
  m.final_report = true;

  BugRecord bug;
  bug.first_iteration = 9;
  bug.occurrences = 2;
  bug.outcome = rt::Outcome::kAssert;
  bug.message = "assert failed:\n  y == 77\n  on the master";
  bug.named_inputs["x"] = 3;
  bug.named_inputs["y"] = 77;
  bug.nprocs = 4;
  bug.focus = 1;
  minimpi::MatchDecision d;
  d.rank = 0;
  d.seq = 2;
  d.src = 3;
  bug.decisions.push_back(d);
  m.bugs.push_back(bug);

  CoverageLedger ledger(testing::fig2_table());
  hit(ledger, 1, 0, 5);
  std::ostringstream blob;
  ledger.write(blob);
  m.ledger_blob = blob.str();

  DeltaMsg out;
  ASSERT_TRUE(decode_delta(encode_delta(m), out));
  EXPECT_EQ(out.shard, m.shard);
  EXPECT_EQ(out.iterations, 4242);
  EXPECT_EQ(out.covered, m.covered);
  EXPECT_EQ(out.interleaving_seen, m.interleaving_seen);
  EXPECT_TRUE(out.final_report);
  ASSERT_EQ(out.bugs.size(), 1u);
  EXPECT_EQ(out.bugs[0].message, bug.message);
  EXPECT_EQ(out.bugs[0].named_inputs, bug.named_inputs);
  EXPECT_EQ(out.bugs[0].occurrences, 2);
  ASSERT_EQ(out.bugs[0].decisions.size(), 1u);
  EXPECT_EQ(out.bugs[0].decisions[0].src, 3);
  EXPECT_EQ(out.ledger_blob, m.ledger_blob);
}

TEST(CoordProtocol, DeltaWithEmptySetsRoundTrips) {
  DeltaMsg m;
  m.shard = shard_key("s", 2);
  m.iterations = 0;
  DeltaMsg out;
  ASSERT_TRUE(decode_delta(encode_delta(m), out));
  EXPECT_TRUE(out.covered.empty());
  EXPECT_TRUE(out.bugs.empty());
  EXPECT_TRUE(out.ledger_blob.empty());
  EXPECT_FALSE(out.final_report);
}

TEST(CoordProtocol, HeartbeatAndAckRoundTrip) {
  HeartbeatMsg hb;
  hb.shard = shard_key("shard", 5);
  HeartbeatMsg hb_out;
  ASSERT_TRUE(decode_heartbeat(encode_heartbeat(hb), hb_out));
  EXPECT_EQ(hb_out.shard, hb.shard);

  AckMsg ack;
  ack.stop = true;
  ack.sync.covered = {7};
  ack.sync.completed = 99;
  AckMsg ack_out;
  ASSERT_TRUE(decode_ack(encode_ack(ack), ack_out));
  EXPECT_TRUE(ack_out.stop);
  EXPECT_EQ(ack_out.sync.covered, ack.sync.covered);
  EXPECT_EQ(ack_out.sync.completed, 99);
}

TEST(CoordProtocol, DecodersRejectTruncationsWithoutCrashing) {
  DeltaMsg m;
  m.shard = "s@1";
  m.iterations = 10;
  m.covered = {1, 2, 3};
  BugRecord bug;
  bug.message = "boom";
  m.bugs.push_back(bug);
  const std::string full = encode_delta(m);
  // Every proper prefix must decode false or (for prefixes that happen to
  // end on a record boundary) at least never crash.
  for (std::size_t len = 0; len < full.size(); ++len) {
    DeltaMsg out;
    (void)decode_delta(full.substr(0, len), out);
  }
  // Garbage must be rejected outright.
  DeltaMsg out;
  EXPECT_FALSE(decode_delta("not a delta\n", out));
  HelloMsg h;
  EXPECT_FALSE(decode_hello("", h));
  WelcomeMsg w;
  EXPECT_FALSE(decode_welcome("\x01\x02\x03", w));
  LeaseGrantMsg g;
  EXPECT_FALSE(decode_lease_grant("grant banana\n", g));
}

TEST(CoordProtocol, ShardKeyCombinesNameAndToken) {
  EXPECT_EQ(shard_key("shard", 7), "shard@7");
  // Two processes with the same human name stay distinct identities.
  EXPECT_NE(shard_key("shard", 7), shard_key("shard", 8));
}

TEST(CoordProtocol, LedgerMergeKeepsMaxHitsAndEarlierFirst) {
  CoverageLedger a(testing::fig2_table());
  CoverageLedger b(testing::fig2_table());
  hit(a, 1, 0, 5);   // branch 1: rank 0, iteration 5
  hit(a, 1, 0, 6);   // rank 0 count -> 2
  hit(b, 1, 1, 3);   // same branch from rank 1, EARLIER first hit
  hit(b, 2, 0, 4);   // branch 2 only b covers

  std::ostringstream blob;
  b.write(blob);
  std::istringstream in(blob.str());
  ASSERT_TRUE(a.merge(in));
  EXPECT_EQ(a.covered_branches(), 2u);

  // Merging the SAME blob again must be a no-op (idempotent replays).
  std::istringstream again(blob.str());
  ASSERT_TRUE(a.merge(again));
  EXPECT_EQ(a.covered_branches(), 2u);
  const std::vector<std::size_t> per_rank = a.branches_per_rank();
  ASSERT_GE(per_rank.size(), 2u);
  EXPECT_EQ(per_rank[0], 2u);  // rank 0 covered branches 1 and 2
  EXPECT_EQ(per_rank[1], 1u);  // rank 1 covered branch 1

  // A branch-count mismatch leaves the ledger untouched.
  rt::BranchTable small;
  small.add_site("f", "only");
  small.finalize();
  CoverageLedger tiny(small);
  std::ostringstream tiny_blob;
  tiny.write(tiny_blob);
  std::istringstream bad(tiny_blob.str());
  EXPECT_FALSE(a.merge(bad));
  EXPECT_EQ(a.covered_branches(), 2u);
}

TEST(CoordProtocol, CheckpointV7CoordSectionRoundTrips) {
  ckpt::CampaignCheckpoint c;
  c.seed = 11;
  c.is_coordinator = true;
  c.coord_budget = 1000;
  c.coord_completed = 384;
  c.coord_next_lease_id = 42;
  ckpt::CoordLease lease;
  lease.id = 41;
  lease.shard = "rack 7@123";  // space in the shard name must survive
  lease.remaining = 9;
  c.coord_leases.push_back(lease);
  ckpt::CoordShardCursor cur;
  cur.shard = "rack 7@123";
  cur.iterations_completed = 200;
  cur.covered_cursor = 12;
  c.coord_shards.push_back(cur);
  c.covered = {1, 4};

  std::ostringstream os;
  c.write(os);
  std::istringstream is(os.str());
  const auto restored = ckpt::CampaignCheckpoint::read(is);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->is_coordinator);
  EXPECT_EQ(restored->coord_budget, 1000);
  EXPECT_EQ(restored->coord_completed, 384);
  EXPECT_EQ(restored->coord_next_lease_id, 42u);
  ASSERT_EQ(restored->coord_leases.size(), 1u);
  EXPECT_EQ(restored->coord_leases[0].id, 41u);
  EXPECT_EQ(restored->coord_leases[0].shard, "rack 7@123");
  EXPECT_EQ(restored->coord_leases[0].remaining, 9);
  ASSERT_EQ(restored->coord_shards.size(), 1u);
  EXPECT_EQ(restored->coord_shards[0].iterations_completed, 200);
  EXPECT_EQ(restored->coord_shards[0].covered_cursor, 12u);
  EXPECT_EQ(restored->covered, c.covered);
}

TEST(CoordProtocol, CampaignCheckpointWritesCoordZero) {
  // Engine snapshots must stay shape-compatible: coord 0, no coord fields.
  ckpt::CampaignCheckpoint c;
  c.seed = 3;
  std::ostringstream os;
  c.write(os);
  EXPECT_NE(os.str().find("coord 0"), std::string::npos);
  std::istringstream is(os.str());
  const auto restored = ckpt::CampaignCheckpoint::read(is);
  ASSERT_TRUE(restored.has_value());
  EXPECT_FALSE(restored->is_coordinator);
}

}  // namespace
}  // namespace compi::coord
