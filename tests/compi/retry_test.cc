// Retry/backoff and graceful degradation: transient solver failures are
// retried with a relaxed budget, per-test timeouts are retried before they
// count as hangs, bugs are confirmed (and marked flaky when they don't
// reproduce), and a dead focus rank triggers a focus re-plan.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "compi/session.h"
#include "solver/solver.h"
#include "targets/target_common.h"
#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_retry_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Budget exhaustion is "unknown", not UNSAT.
// ---------------------------------------------------------------------------

TEST(SolverBudget, ExhaustionIsDistinguishedFromProvenUnsat) {
  // x + y == 100 and x - y == 51: the unique solution is x = 75.5, so the
  // system is integer-UNSAT, but neither predicate alone is refutable by
  // interval/GCD propagation — proving UNSAT takes enumeration, and a tiny
  // node budget gives up "unknown" instead.
  solver::LinearExpr sum;
  sum.add_term(0, 1);
  sum.add_term(1, 1);
  sum.add_constant(-100);
  solver::LinearExpr diff;
  diff.add_term(0, 1);
  diff.add_term(1, -1);
  diff.add_constant(-51);
  const std::vector<solver::Predicate> preds{
      {sum, solver::CompareOp::kEq}, {diff, solver::CompareOp::kEq}};
  solver::DomainMap domains{{0, {0, 100}}, {1, {0, 100}}};

  bool exhausted = false;
  solver::Solver tiny({/*max_search_nodes=*/3});
  EXPECT_FALSE(tiny.solve(preds, domains, {}, &exhausted).has_value());
  EXPECT_TRUE(exhausted) << "the tiny budget must be the reason";

  solver::Solver big({/*max_search_nodes=*/1'000'000});
  EXPECT_FALSE(big.solve(preds, domains, {}, &exhausted).has_value());
  EXPECT_FALSE(exhausted) << "with budget to spare this is proven UNSAT";

  // Propagation-detected inconsistency never charges the budget.
  const std::vector<solver::Predicate> contradiction{
      solver::make_ge_const(0, 5), solver::make_le_const(0, 3)};
  EXPECT_FALSE(tiny.solve(contradiction, domains, {}, &exhausted).has_value());
  EXPECT_FALSE(exhausted);

  // And the incremental entry point surfaces the same flag.
  const solver::SolveResult inc = tiny.solve_incremental(preds, domains, {});
  EXPECT_FALSE(inc.sat);
  EXPECT_TRUE(inc.budget_exhausted);
}

TEST(Campaign, SolverBudgetRetriesAreCountedAndBounded) {
  const TargetInfo target = fig2_target();
  CampaignOptions opts;
  opts.seed = 5;
  opts.iterations = 40;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.dfs_phase_iterations = 15;
  opts.solver_node_budget = 2;  // almost every query exhausts this

  CampaignOptions no_retry = opts;
  no_retry.retry_max = 0;
  const CampaignResult without = Campaign(target, no_retry).run();
  EXPECT_EQ(without.transient_retries, 0u);

  CampaignOptions with_retry = opts;
  with_retry.retry_max = 3;
  const CampaignResult with = Campaign(target, with_retry).run();
  EXPECT_GT(with.transient_retries, 0u)
      << "budget-exhausted solves must be retried with a relaxed budget";
}

// ---------------------------------------------------------------------------
// Flaky-bug confirmation.
// ---------------------------------------------------------------------------

TEST(Campaign, InjectedCrashIsConfirmedAsFlaky) {
  // Rank 1 (never the initial focus) is crashed by the environment, not by
  // the target: the confirmation replay without chaos succeeds, so the
  // recorded bug must carry the flaky marker.
  TempDir tmp;
  CampaignOptions opts;
  opts.seed = 3;
  opts.iterations = 4;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.chaos.crash_rank = 1;
  opts.chaos.crash_at_call = 1;
  opts.log_dir = tmp.path.string();

  const CampaignResult result = Campaign(fig2_target(), opts).run();
  ASSERT_FALSE(result.bugs.empty());
  EXPECT_EQ(result.bugs[0].outcome, rt::Outcome::kSegfault);
  EXPECT_TRUE(result.bugs[0].flaky)
      << "an injected fault must not pass for a reproducible target bug";

  const std::string bugs_txt = slurp(tmp.path / "bugs.txt");
  EXPECT_NE(bugs_txt.find("flaky=1"), std::string::npos) << bugs_txt;

  const std::vector<LoggedBug> logged = read_bugs(tmp.path / "bugs.txt");
  ASSERT_FALSE(logged.empty());
  EXPECT_TRUE(logged[0].flaky);
}

TEST(Campaign, GenuineBugIsNotFlaky) {
  const TargetInfo target = fig2_target(/*with_bug=*/true);
  CampaignOptions opts;
  opts.seed = 11;
  opts.iterations = 300;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.dfs_phase_iterations = 30;
  const CampaignResult result = Campaign(target, opts).run();
  ASSERT_FALSE(result.bugs.empty());
  EXPECT_FALSE(result.bugs.front().flaky)
      << "the seeded y == 77 assertion reproduces deterministically";
}

// ---------------------------------------------------------------------------
// Focus re-plan when the planned focus dies before recording anything.
// ---------------------------------------------------------------------------

#define REPLAN_SITES(X) X(x_low, "work")
COMPI_DEFINE_TARGET_SITES(ReplanSite, replan_table, REPLAN_SITES)

/// Barrier FIRST: a rank crashed at its first MPI call dies before any
/// symbolic branch is recorded, so a crashed focus yields an empty path.
TargetInfo replan_target() {
  TargetInfo info;
  info.name = "replan";
  info.table = &replan_table();
  info.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    world.barrier();
    const sym::SymInt x = ctx.input_int_capped("x", 100);
    if (targets::br(ctx, ReplanSite::x_low, x < sym::SymInt(50))) {
      // low half
    }
    world.barrier();
  };
  info.sloc = 8;
  return info;
}

TEST(Campaign, DeadFocusTriggersFocusReplan) {
  CampaignOptions opts;
  opts.seed = 2;
  opts.iterations = 8;
  opts.initial_nprocs = 4;
  opts.initial_focus = 0;
  opts.max_procs = 8;
  opts.confirm_bugs = false;  // keep the wall-clock down
  opts.chaos.crash_rank = 0;  // the planned focus dies at the first barrier
  opts.chaos.crash_at_call = 1;
  opts.test_timeout = std::chrono::milliseconds(2000);

  const CampaignResult result = Campaign(replan_target(), opts).run();
  EXPECT_GT(result.focus_replans, 0u);
  // The first iterations walk the focus away from the dead rank.
  ASSERT_GE(result.iterations.size(), 3u);
  EXPECT_EQ(result.iterations[0].focus, 0);
  EXPECT_EQ(result.iterations[1].focus, 1);
  EXPECT_EQ(result.iterations[2].focus, 2);
}

// ---------------------------------------------------------------------------
// Per-test timeout retry under injected message loss.
// ---------------------------------------------------------------------------

#define PING_SITES(X) X(x_low, "ping")
COMPI_DEFINE_TARGET_SITES(PingSite, ping_table, PING_SITES)

/// One symbolic branch (so the focus path is never empty), then a p2p
/// message rank 1 -> rank 0 that injected drops turn into a hang.
TargetInfo ping_target() {
  TargetInfo info;
  info.name = "ping";
  info.table = &ping_table();
  info.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    const sym::SymInt x = ctx.input_int_capped("x", 10);
    if (targets::br(ctx, PingSite::x_low, x < sym::SymInt(5))) {
      // low half
    }
    if (world.raw_size() < 2) return;  // nothing to exchange solo
    if (world.raw_rank() == 1) {
      const std::vector<int> data{1};
      world.send(std::span<const int>(data), 0, 0);
    } else if (world.raw_rank() == 0) {
      std::vector<int> got(1);
      world.recv(std::span<int>(got), 1, 0);
    }
  };
  info.sloc = 10;
  return info;
}

TEST(Campaign, TimeoutsAreRetriedThenRememberedAsHangs) {
  CampaignOptions opts;
  opts.seed = 4;
  opts.iterations = 3;
  opts.initial_nprocs = 2;
  opts.initial_focus = 0;
  opts.max_procs = 2;
  opts.retry_max = 2;
  opts.confirm_bugs = false;
  opts.chaos.seed = 9;
  opts.chaos.drop_rate = 1.0;  // every retry re-rolls, but all drop
  opts.test_timeout = std::chrono::milliseconds(100);

  const CampaignResult result = Campaign(ping_target(), opts).run();
  // Iteration 0 burns retry_max retries, then the hang signature is known:
  // later iterations hitting the same hang must NOT retry it again.
  EXPECT_EQ(result.transient_retries, 2u);
  ASSERT_EQ(result.iterations.size(), 3u);
  EXPECT_EQ(result.iterations[0].outcome, rt::Outcome::kTimeout);
  ASSERT_FALSE(result.bugs.empty());
  EXPECT_EQ(result.bugs[0].outcome, rt::Outcome::kTimeout);
}

TEST(Campaign, ChaosCampaignTerminatesAndRecordsOutcomes) {
  // Light drop noise over the whole campaign: every iteration still ends
  // within its (possibly retried) timeout and the campaign completes.
  CampaignOptions opts;
  opts.seed = 6;
  opts.iterations = 10;
  opts.initial_nprocs = 2;
  opts.max_procs = 4;
  opts.retry_max = 2;
  opts.confirm_bugs = false;
  opts.chaos.seed = 13;
  opts.chaos.drop_rate = 0.05;
  opts.test_timeout = std::chrono::milliseconds(200);

  const CampaignResult result = Campaign(ping_target(), opts).run();
  EXPECT_EQ(result.iterations.size(), 10u);
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_TRUE(rec.outcome == rt::Outcome::kOk ||
                rec.outcome == rt::Outcome::kTimeout);
  }
}

}  // namespace
}  // namespace compi
