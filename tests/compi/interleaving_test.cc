// Wildcard-matching exploration (--explore-matchings) end to end:
//   * the interleaving frontier (fork / sleep-set dedup / cap) in isolation,
//   * the new Outcome enumerators round-tripping through every serialized
//     surface (outcome strings, checkpoint v6, bugs.txt, the sandbox wire),
//   * the headline acceptance property — a seeded matching-order-dependent
//     deadlock that input-only search can never hit is found by exploration,
//     reported as kDeadlock (never kTimeout) with a replayable decision
//     vector, in-process and under --isolate,
//   * serial campaigns with exploration off stay deterministic.
#include "compi/interleaving.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "compi/checkpoint.h"
#include "compi/driver.h"
#include "compi/explain.h"
#include "compi/session.h"
#include "obs/journal.h"
#include "sandbox/wire.h"
#include "targets/target_common.h"

namespace compi {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_interleaving_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

// ---------------------------------------------------------------------------
// Frontier mechanics.
// ---------------------------------------------------------------------------

std::vector<minimpi::MatchRecord> two_decision_trace() {
  // Decision 0: rank 0, seq 0, chose 1 of {1, 2, 3}.
  // Decision 1: rank 0, seq 1, chose 2 of {2, 3}.
  minimpi::MatchRecord d0;
  d0.rank = 0;
  d0.seq = 0;
  d0.chosen_src = 1;
  d0.feasible = {1, 2, 3};
  minimpi::MatchRecord d1;
  d1.rank = 0;
  d1.seq = 1;
  d1.chosen_src = 2;
  d1.feasible = {2, 3};
  return {d0, d1};
}

TEST(InterleavingFrontier, ForksEveryAlternativeWithPinnedPrefix) {
  InterleavingFrontier frontier;
  const solver::Assignment inputs{{0, 42}};
  const std::size_t added = enqueue_alternatives(
      frontier, two_decision_trace(), inputs, 4, 1, /*max=*/0);
  // Alternatives: d0->2, d0->3, d1->3.
  EXPECT_EQ(added, 3u);
  ASSERT_EQ(frontier.queue.size(), 3u);
  EXPECT_EQ(frontier.enqueued, 3u);
  EXPECT_EQ(frontier.pruned, 0u);
  EXPECT_EQ(frontier.capped, 0u);
  // First fork flips d0 with an empty pinned prefix...
  EXPECT_EQ(frontier.queue[0].plan,
            (minimpi::MatchPlan{{0, 0, 2}}));
  EXPECT_EQ(frontier.queue[1].plan,
            (minimpi::MatchPlan{{0, 0, 3}}));
  // ...the d1 fork pins d0 to its OBSERVED choice first.
  EXPECT_EQ(frontier.queue[2].plan,
            (minimpi::MatchPlan{{0, 0, 1}, {0, 1, 3}}));
  // Replays inherit the parent run's inputs and shape, and distinct ids.
  EXPECT_EQ(frontier.queue[0].inputs, inputs);
  EXPECT_EQ(frontier.queue[0].nprocs, 4);
  EXPECT_EQ(frontier.queue[0].focus, 1);
  EXPECT_EQ(frontier.queue[0].id, 1);
  EXPECT_EQ(frontier.queue[2].id, 3);
}

TEST(InterleavingFrontier, SleepSetPrunesAlreadySeenPrefixes) {
  InterleavingFrontier frontier;
  const solver::Assignment inputs;
  enqueue_alternatives(frontier, two_decision_trace(), inputs, 4, 0, 0);
  // The same trace observed again (another iteration, same matching) must
  // enqueue nothing new.
  const std::size_t added =
      enqueue_alternatives(frontier, two_decision_trace(), inputs, 4, 0, 0);
  EXPECT_EQ(added, 0u);
  EXPECT_EQ(frontier.pruned, 3u);
  EXPECT_EQ(frontier.queue.size(), 3u);
}

TEST(InterleavingFrontier, CapCountsInsteadOfSilentlyDropping) {
  InterleavingFrontier frontier;
  const solver::Assignment inputs;
  enqueue_alternatives(frontier, two_decision_trace(), inputs, 4, 0,
                       /*max=*/2);
  EXPECT_EQ(frontier.enqueued, 2u);
  EXPECT_EQ(frontier.capped, 1u);
  EXPECT_EQ(frontier.queue.size(), 2u);
}

TEST(InterleavingFrontier, PlanHashIsOrderAndValueSensitive) {
  const minimpi::MatchPlan a{{0, 0, 1}, {0, 1, 2}};
  const minimpi::MatchPlan b{{0, 1, 2}, {0, 0, 1}};
  const minimpi::MatchPlan c{{0, 0, 1}, {0, 1, 3}};
  EXPECT_EQ(plan_hash(a), plan_hash(a));
  EXPECT_NE(plan_hash(a), plan_hash(b));
  EXPECT_NE(plan_hash(a), plan_hash(c));
  EXPECT_NE(plan_hash({}), plan_hash(a));
}

// ---------------------------------------------------------------------------
// Outcome round trips across every serialized surface.
// ---------------------------------------------------------------------------

TEST(MatchOutcomes, StringRoundTripIncludingNewEnumerators) {
  for (const rt::Outcome o :
       {rt::Outcome::kOk, rt::Outcome::kSegfault, rt::Outcome::kFpe,
        rt::Outcome::kAssert, rt::Outcome::kTimeout, rt::Outcome::kMpiError,
        rt::Outcome::kAborted, rt::Outcome::kDeadlock,
        rt::Outcome::kOrphanMessage}) {
    const auto back = rt::outcome_from_string(rt::to_string(o));
    ASSERT_TRUE(back.has_value()) << rt::to_string(o);
    EXPECT_EQ(*back, o);
  }
  EXPECT_STREQ(rt::to_string(rt::Outcome::kDeadlock), "deadlock");
  EXPECT_STREQ(rt::to_string(rt::Outcome::kOrphanMessage), "orphan-message");
  // Unknown names (future enumerators, corrupt files) parse to nullopt,
  // never to a wrong verdict.
  EXPECT_FALSE(rt::outcome_from_string("no-such-outcome").has_value());
  EXPECT_FALSE(rt::outcome_from_string("").has_value());
  EXPECT_FALSE(rt::outcome_from_string("Deadlock").has_value());
}

TEST(MatchOutcomes, CheckpointV6RoundTripsInterleavingState) {
  ckpt::CampaignCheckpoint c;
  c.seed = 9;
  c.next_iteration = 4;
  IterationRecord rec;
  rec.iteration = 3;
  rec.nprocs = 3;
  rec.outcome = rt::Outcome::kDeadlock;
  rec.interleaving = 7;
  c.iterations.push_back(rec);
  BugRecord bug;
  bug.outcome = rt::Outcome::kOrphanMessage;
  bug.message = "1 message(s) unreceived at finalize";
  bug.named_inputs = {{"x", 3}};
  bug.decisions = {{0, 0, 2}, {1, 0, 3}};
  c.bugs.push_back(bug);
  PendingInterleaving pend;
  pend.id = 7;
  pend.plan = {{0, 0, 2}};
  pend.inputs = {{0, 42}, {2, -1}};
  pend.nprocs = 3;
  pend.focus = 1;
  c.pending_interleavings.push_back(pend);
  c.interleaving_seen = {11, 42, 99};
  c.next_interleaving_id = 8;
  c.interleavings_enqueued = 7;
  c.interleavings_run = 6;
  c.interleavings_pruned = 5;
  c.interleavings_capped = 2;

  std::stringstream ss;
  c.write(ss);
  const auto back = ckpt::CampaignCheckpoint::read(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->iterations.size(), 1u);
  EXPECT_EQ(back->iterations[0].outcome, rt::Outcome::kDeadlock);
  EXPECT_EQ(back->iterations[0].interleaving, 7);
  ASSERT_EQ(back->bugs.size(), 1u);
  EXPECT_EQ(back->bugs[0].outcome, rt::Outcome::kOrphanMessage);
  EXPECT_EQ(back->bugs[0].decisions, c.bugs[0].decisions);
  ASSERT_EQ(back->pending_interleavings.size(), 1u);
  EXPECT_EQ(back->pending_interleavings[0].id, 7);
  EXPECT_EQ(back->pending_interleavings[0].plan, pend.plan);
  EXPECT_EQ(back->pending_interleavings[0].inputs, pend.inputs);
  EXPECT_EQ(back->pending_interleavings[0].nprocs, 3);
  EXPECT_EQ(back->pending_interleavings[0].focus, 1);
  EXPECT_EQ(back->interleaving_seen, c.interleaving_seen);
  EXPECT_EQ(back->next_interleaving_id, 8);
  EXPECT_EQ(back->interleavings_enqueued, 7u);
  EXPECT_EQ(back->interleavings_run, 6u);
  EXPECT_EQ(back->interleavings_pruned, 5u);
  EXPECT_EQ(back->interleavings_capped, 2u);
}

TEST(MatchOutcomes, SandboxWireRoundTripsMatchTraceAndVerdicts) {
  minimpi::RunResult run;
  run.focus = 1;
  run.wall_seconds = 0.125;
  run.ranks.assign(2, {});
  run.ranks[0].outcome = rt::Outcome::kDeadlock;
  run.ranks[0].message = "deadlock: rank 0 waits recv(src=1, tag=0)";
  run.ranks[1].outcome = rt::Outcome::kAborted;
  run.match_diverged = true;
  minimpi::MatchRecord m;
  m.rank = 0;
  m.seq = 0;
  m.chosen_src = 2;
  m.comm_uid = 0;
  m.tag = 7;
  m.feasible = {1, 2};
  run.match_trace.push_back(m);

  minimpi::RunResult back;
  ASSERT_TRUE(sandbox::decode_run_result(sandbox::encode_run_result(run),
                                         back));
  ASSERT_EQ(back.ranks.size(), 2u);
  EXPECT_EQ(back.ranks[0].outcome, rt::Outcome::kDeadlock);
  EXPECT_EQ(back.ranks[0].message, run.ranks[0].message);
  EXPECT_EQ(back.ranks[1].outcome, rt::Outcome::kAborted);
  EXPECT_TRUE(back.match_diverged);
  ASSERT_EQ(back.match_trace.size(), 1u);
  EXPECT_EQ(back.match_trace[0].rank, 0);
  EXPECT_EQ(back.match_trace[0].seq, 0);
  EXPECT_EQ(back.match_trace[0].chosen_src, 2);
  EXPECT_EQ(back.match_trace[0].tag, 7);
  EXPECT_EQ(back.match_trace[0].feasible, m.feasible);
}

// ---------------------------------------------------------------------------
// The seeded matching-order-dependent deadlock target.
// ---------------------------------------------------------------------------

enum class WcSite : sym::SiteId { kBig, kCount };

const rt::BranchTable& wc_table() {
  static const rt::BranchTable table = [] {
    rt::BranchTable t;
    t.add_site("relay", "x_big");
    t.finalize();
    return t;
  }();
  return table;
}

/// Ranks 1 and 2 each send one message to rank 0, strictly ordered by
/// barriers (1's arrives first).  Rank 0 consumes one via ANY_SOURCE, then
/// one from rank 2 specifically.  Arrival order — and the scheduler's
/// lowest-feasible default — matches the wildcard to rank 1, so every
/// input-driven run succeeds.  Only the flipped interleaving (wildcard
/// takes rank 2's message) leaves recv(src=2) waiting forever: a deadlock
/// reachable through matching order alone, invisible to input search.
TargetInfo wildcard_relay_target() {
  TargetInfo info;
  info.name = "wildcard-relay";
  info.table = &wc_table();
  info.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    using targets::br;
    using sym::SymInt;
    const SymInt x = ctx.input_int_capped("x", 100);
    if (br(ctx, WcSite::kBig, x > SymInt(50))) {
      // concrete work only; the matching bug does not depend on inputs
    }
    if (world.raw_size() < 3) {
      world.barrier();
      return;
    }
    const int me = world.raw_rank();
    const std::vector<int> mine{me};
    if (me == 1) world.send(std::span<const int>(mine), 0, 7);
    world.barrier();
    if (me == 2) world.send(std::span<const int>(mine), 0, 7);
    world.barrier();
    if (me == 0) {
      std::vector<int> first(1, -1), second(1, -1);
      world.recv(std::span<int>(first), minimpi::kAnySource, 7);
      world.recv(std::span<int>(second), 2, 7);
    }
  };
  info.sloc = 20;
  return info;
}

CampaignOptions wc_opts(const fs::path& dir) {
  CampaignOptions opts;
  opts.seed = 3;
  opts.iterations = 12;
  opts.initial_nprocs = 3;
  opts.max_procs = 3;
  opts.dfs_phase_iterations = 6;
  opts.checkpoint_interval = 0;
  opts.log_dir = dir.string();
  return opts;
}

TEST(MatchExploration, FindsSeededWildcardDeadlockWithReplayableDecisions) {
  TempDir dir;
  CampaignOptions opts = wc_opts(dir.path);
  opts.explore_matchings = true;
  opts.journal = true;
  const CampaignResult result =
      Campaign(wildcard_relay_target(), opts).run();

  // Exploration forked and ran at least the flipped wildcard decision.
  EXPECT_GE(result.interleavings_enqueued, 1u);
  EXPECT_GE(result.interleavings_run, 1u);
  EXPECT_GE(result.deadlocks_found, 1u);

  // The deadlock iteration is an interleaving replay, reported exactly —
  // never as a wall-clock timeout.
  bool deadlock_replay = false;
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_NE(rec.outcome, rt::Outcome::kTimeout);
    if (rec.outcome == rt::Outcome::kDeadlock && rec.interleaving >= 0) {
      deadlock_replay = true;
    }
  }
  EXPECT_TRUE(deadlock_replay);

  // The bug carries the replayable decision vector: the wildcard receive
  // (rank 0, seq 0) forced to sender 2.  Confirmation replayed it with the
  // same plan, so the bug is not flaky.
  const BugRecord* deadlock_bug = nullptr;
  for (const BugRecord& bug : result.bugs) {
    if (bug.outcome == rt::Outcome::kDeadlock) deadlock_bug = &bug;
  }
  ASSERT_NE(deadlock_bug, nullptr);
  ASSERT_FALSE(deadlock_bug->decisions.empty());
  EXPECT_EQ(deadlock_bug->decisions[0], (minimpi::MatchDecision{0, 0, 2}));
  EXPECT_FALSE(deadlock_bug->flaky);
  EXPECT_NE(deadlock_bug->message.find("deadlock"), std::string::npos);

  // bugs.txt round-trips the decision vector.
  const std::vector<LoggedBug> logged = read_bugs(dir.path / "bugs.txt");
  const LoggedBug* logged_deadlock = nullptr;
  for (const LoggedBug& b : logged) {
    if (b.outcome == rt::Outcome::kDeadlock) logged_deadlock = &b;
  }
  ASSERT_NE(logged_deadlock, nullptr);
  EXPECT_EQ(logged_deadlock->decisions, deadlock_bug->decisions);

  // The journal attributes the exploration: interleaving dispatches,
  // per-decision match_choice events, and the deadlock with its cycle.
  std::size_t malformed = 0;
  const auto journal =
      obs::read_journal(dir.path / "journal.jsonl", &malformed);
  EXPECT_EQ(malformed, 0u);
  bool saw_interleaving = false, saw_choice = false, saw_deadlock = false;
  for (const obs::ParsedEvent& ev : journal) {
    if (ev.type == "interleaving") saw_interleaving = true;
    if (ev.type == "match_choice") saw_choice = true;
    if (ev.type == "deadlock") saw_deadlock = true;
  }
  EXPECT_TRUE(saw_interleaving);
  EXPECT_TRUE(saw_choice);
  EXPECT_TRUE(saw_deadlock);

  // summary.txt exposes the exploration totals.
  const auto summary = read_summary(dir.path / "summary.txt");
  EXPECT_EQ(summary.at("deadlocks_found"),
            std::to_string(result.deadlocks_found));
  EXPECT_EQ(summary.at("interleavings_run"),
            std::to_string(result.interleavings_run));

  // --explain surfaces the matchings section from the same artifacts.
  std::ostringstream report;
  ASSERT_TRUE(explain_session(dir.path, report));
  EXPECT_NE(report.str().find("Wildcard matchings"), std::string::npos);
  EXPECT_NE(report.str().find("deadlocks: "), std::string::npos);
}

TEST(MatchExploration, InputOnlySearchNeverHitsTheOrderingDeadlock) {
  TempDir dir;
  const CampaignOptions opts = wc_opts(dir.path);  // exploration off
  const CampaignResult result =
      Campaign(wildcard_relay_target(), opts).run();
  EXPECT_EQ(result.deadlocks_found, 0u);
  EXPECT_EQ(result.interleavings_enqueued, 0u);
  EXPECT_TRUE(result.bugs.empty());
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_EQ(rec.outcome, rt::Outcome::kOk);
    EXPECT_EQ(rec.interleaving, -1);
  }
}

TEST(MatchExploration, IsolatedRunsReportDeadlockNotTimeout) {
  TempDir dir;
  CampaignOptions opts = wc_opts(dir.path);
  opts.explore_matchings = true;
  opts.isolate = true;
  const CampaignResult result =
      Campaign(wildcard_relay_target(), opts).run();
  EXPECT_GE(result.deadlocks_found, 1u);
  bool saw_deadlock = false;
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_NE(rec.outcome, rt::Outcome::kTimeout);
    if (rec.outcome == rt::Outcome::kDeadlock) saw_deadlock = true;
  }
  EXPECT_TRUE(saw_deadlock);
  const BugRecord* deadlock_bug = nullptr;
  for (const BugRecord& bug : result.bugs) {
    if (bug.outcome == rt::Outcome::kDeadlock) deadlock_bug = &bug;
  }
  ASSERT_NE(deadlock_bug, nullptr);
  // The decision vector crossed the sandbox wire intact.
  EXPECT_EQ(deadlock_bug->decisions[0], (minimpi::MatchDecision{0, 0, 2}));
}

TEST(MatchExploration, ParallelWorkersShareTheInterleavingFrontier) {
  // Four workers, one shared frontier: forks enqueued by any worker's run
  // are replayed by whichever worker dequeues them next, and the ordering
  // deadlock is still found.  (CI also runs this under ThreadSanitizer.)
  TempDir dir;
  CampaignOptions opts = wc_opts(dir.path);
  opts.explore_matchings = true;
  opts.workers = 4;
  opts.iterations = 16;
  const CampaignResult result =
      Campaign(wildcard_relay_target(), opts).run();
  EXPECT_GE(result.interleavings_run, 1u);
  EXPECT_GE(result.deadlocks_found, 1u);
  bool saw_deadlock = false;
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_NE(rec.outcome, rt::Outcome::kTimeout);
    if (rec.outcome == rt::Outcome::kDeadlock) saw_deadlock = true;
  }
  EXPECT_TRUE(saw_deadlock);
  const BugRecord* deadlock_bug = nullptr;
  for (const BugRecord& bug : result.bugs) {
    if (bug.outcome == rt::Outcome::kDeadlock) deadlock_bug = &bug;
  }
  ASSERT_NE(deadlock_bug, nullptr);
  EXPECT_FALSE(deadlock_bug->decisions.empty());
}

TEST(MatchExploration, ExplorationIsDeterministicAcrossRuns) {
  const auto run_once = [](const fs::path& dir) {
    CampaignOptions opts = wc_opts(dir);
    opts.explore_matchings = true;
    return Campaign(wildcard_relay_target(), opts).run();
  };
  TempDir a, b;
  const CampaignResult ra = run_once(a.path);
  const CampaignResult rb = run_once(b.path);
  ASSERT_EQ(ra.iterations.size(), rb.iterations.size());
  for (std::size_t i = 0; i < ra.iterations.size(); ++i) {
    EXPECT_EQ(ra.iterations[i].outcome, rb.iterations[i].outcome) << i;
    EXPECT_EQ(ra.iterations[i].interleaving, rb.iterations[i].interleaving)
        << i;
  }
  EXPECT_EQ(ra.interleavings_enqueued, rb.interleavings_enqueued);
  EXPECT_EQ(ra.deadlocks_found, rb.deadlocks_found);
  ASSERT_EQ(ra.bugs.size(), rb.bugs.size());
  for (std::size_t i = 0; i < ra.bugs.size(); ++i) {
    EXPECT_EQ(ra.bugs[i].decisions, rb.bugs[i].decisions);
  }
}

TEST(MatchExploration, ExplorationOffKeepsSessionsByteIdentical) {
  const auto slurp = [](const fs::path& file) {
    std::ifstream in(file);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  // Timing columns vary run to run; strip exec/solve seconds (cells 6, 7).
  const auto stable_csv = [&](const fs::path& file) {
    std::ifstream in(file);
    std::string line, out;
    while (std::getline(in, line)) {
      std::stringstream ss(line);
      std::string field;
      int idx = 0;
      while (std::getline(ss, field, ',')) {
        out += (idx == 6 || idx == 7) ? std::string("_") : field;
        out += ',';
        ++idx;
      }
      out += '\n';
    }
    return out;
  };
  TempDir a, b;
  (void)Campaign(wildcard_relay_target(), wc_opts(a.path)).run();
  (void)Campaign(wildcard_relay_target(), wc_opts(b.path)).run();
  EXPECT_EQ(stable_csv(a.path / "iterations.csv"),
            stable_csv(b.path / "iterations.csv"));
  EXPECT_EQ(slurp(a.path / "ledger.csv"), slurp(b.path / "ledger.csv"));
  EXPECT_EQ(slurp(a.path / "bugs.txt"), slurp(b.path / "bugs.txt"));
}

}  // namespace
}  // namespace compi
