#include "compi/coverage.h"

#include <gtest/gtest.h>

namespace compi {
namespace {

const rt::BranchTable& table() {
  static const rt::BranchTable t = [] {
    rt::BranchTable b;
    b.add_site("f", "f0");   // site 0
    b.add_site("f", "f1");   // site 1
    b.add_site("g", "g0");   // site 2
    b.finalize();
    return b;
  }();
  return t;
}

TEST(CoverageTracker, StartsEmpty) {
  CoverageTracker c(table());
  EXPECT_EQ(c.covered_branches(), 0u);
  EXPECT_EQ(c.total_branches(), 6u);
  EXPECT_EQ(c.reachable_branches(), 0u);
  EXPECT_EQ(c.rate(), 0.0);
}

TEST(CoverageTracker, ReachableCountsWholeFunctionOfAnyCoveredSite) {
  CoverageTracker c(table());
  rt::CoverageBitmap bm(6);
  bm.mark(sym::branch_id(0, true));  // one branch in f
  c.merge(bm);
  EXPECT_EQ(c.covered_branches(), 1u);
  // f has 2 sites => 4 reachable branches; g untouched.
  EXPECT_EQ(c.reachable_branches(), 4u);
  EXPECT_DOUBLE_EQ(c.rate(), 0.25);
}

TEST(CoverageTracker, SecondFunctionExtendsReachable) {
  CoverageTracker c(table());
  rt::CoverageBitmap bm(6);
  bm.mark(sym::branch_id(0, true));
  bm.mark(sym::branch_id(2, false));
  c.merge(bm);
  EXPECT_EQ(c.reachable_branches(), 6u);
  EXPECT_EQ(c.covered_branches(), 2u);
}

TEST(CoverageTracker, MergeIsMonotoneUnion) {
  CoverageTracker c(table());
  rt::CoverageBitmap a(6), b(6);
  a.mark(0);
  b.mark(0);
  b.mark(3);
  c.merge(a);
  c.merge(b);
  EXPECT_EQ(c.covered_branches(), 2u);
  EXPECT_TRUE(c.branch_covered(0));
  EXPECT_TRUE(c.branch_covered(3));
  EXPECT_FALSE(c.branch_covered(1));
}

}  // namespace
}  // namespace compi
