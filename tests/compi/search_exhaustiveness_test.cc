// Property tests: systematic search must exhaust small branch spaces.
//
// A synthetic target with D independent symbolic branches spans a full
// binary tree of 2^D paths and 2*D branches; a campaign with a sufficient
// budget must cover every branch (DFS exhausts the tree), and a depth
// bound must cleanly truncate what gets explored.
#include <gtest/gtest.h>

#include "compi/driver.h"
#include "compi/target.h"
#include "targets/target_common.h"

namespace compi {
namespace {

/// Builds a target with `depth` chained symbolic branches b_i < 50, each
/// an independent marked input.  Every (site, direction) pair is reachable.
TargetInfo chain_target(int depth, const rt::BranchTable& table) {
  TargetInfo info;
  info.name = "chain";
  info.table = &table;
  info.program = [depth](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    for (int i = 0; i < depth; ++i) {
      const sym::SymInt b =
          ctx.input_int_range("b" + std::to_string(i), 0, 100);
      (void)ctx.branch(static_cast<sym::SiteId>(i), b < sym::SymInt(50));
    }
    world.barrier();
  };
  return info;
}

const rt::BranchTable& chain_table(int depth) {
  static std::map<int, rt::BranchTable> tables;
  auto [it, inserted] = tables.try_emplace(depth);
  if (inserted) {
    for (int i = 0; i < depth; ++i) {
      it->second.add_site("chain", "b" + std::to_string(i));
    }
    it->second.finalize();
  }
  return it->second;
}

class ChainExhaustivenessTest : public ::testing::TestWithParam<int> {};

TEST_P(ChainExhaustivenessTest, DfsCoversEveryBranchGivenTreeBudget) {
  // DFS explores the execution TREE: with D independent branches that is
  // 2^D paths, and the *last* new branch (flipping b0) is only reached
  // near the end — exactly the path-explosion cost the paper contrasts
  // with branch coverage (§I-A).
  const int depth = GetParam();
  const rt::BranchTable& table = chain_table(depth);
  CampaignOptions opts;
  opts.seed = 13;
  opts.iterations = (1 << depth) + 2 * depth + 10;
  opts.initial_nprocs = 1;
  opts.search = SearchKind::kDfs;
  const CampaignResult result =
      Campaign(chain_target(depth, table), opts).run();
  EXPECT_EQ(result.covered_branches, static_cast<std::size_t>(2 * depth))
      << "every arm of every independent branch must be reached";
}

INSTANTIATE_TEST_SUITE_P(Depths, ChainExhaustivenessTest,
                         ::testing::Values(1, 2, 4, 6, 8));

TEST(ChainCfg, CfgSearchCoversChainsInLinearBudget) {
  // The CFG strategy scores flips by distance-to-uncovered, so on the
  // independent chain it heads straight for uncovered arms and finishes in
  // O(depth) runs — the situation CFG search is designed for.
  const int depth = 10;
  const rt::BranchTable& table = chain_table(depth);
  CampaignOptions opts;
  opts.seed = 13;
  opts.iterations = 3 * depth + 10;
  opts.initial_nprocs = 1;
  opts.search = SearchKind::kCfg;
  const CampaignResult result =
      Campaign(chain_target(depth, table), opts).run();
  EXPECT_EQ(result.covered_branches, static_cast<std::size_t>(2 * depth));
}

TEST(ChainBound, DepthBoundTruncatesExploration) {
  // Budget ends before the bounded subtree is exhausted (which would
  // trigger a fresh-random-input restart that re-rolls the deep branches).
  const int depth = 12;
  const rt::BranchTable& table = chain_table(depth);
  CampaignOptions opts;
  opts.seed = 13;
  opts.iterations = 15;  // < 2^bound leaves
  opts.initial_nprocs = 1;
  opts.search = SearchKind::kBoundedDfs;
  opts.depth_bound = 4;
  opts.dfs_phase_iterations = 1;  // switch to the bounded phase immediately
  const CampaignResult result =
      Campaign(chain_target(depth, table), opts).run();
  // Branches above the bound keep the initial run's direction: only the
  // first `bound` sites can have both arms covered.
  EXPECT_LT(result.covered_branches, static_cast<std::size_t>(2 * depth))
      << "a tight bound must leave deep branches unexplored";
  EXPECT_GE(result.covered_branches, static_cast<std::size_t>(depth + 2))
      << "branches within the bound are explored";
}

// Incremental solving must return assignments satisfying the WHOLE set,
// not just the dependency slice it re-solved.
class IncrementalSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalSoundnessTest, ValuesSatisfyAllConstraints) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> nvars_dist(2, 5);
  std::uniform_int_distribution<std::int64_t> value_dist(-30, 30);
  std::uniform_int_distribution<int> coeff_dist(-2, 2);

  const int nvars = nvars_dist(rng);
  solver::Assignment witness;
  for (solver::Var v = 0; v < nvars; ++v) witness[v] = value_dist(rng);

  // Constraints satisfied by the witness...
  std::vector<solver::Predicate> preds;
  for (int i = 0; i < 6; ++i) {
    solver::LinearExpr e;
    for (solver::Var v = 0; v < nvars; ++v) e.add_term(v, coeff_dist(rng));
    const std::int64_t at = e.evaluate([&](solver::Var v) {
      return witness.at(v);
    });
    e.add_constant(-at);
    preds.push_back({std::move(e), solver::CompareOp::kLe});  // holds: == 0
  }
  // ...plus a negated final constraint the witness VIOLATES.
  solver::LinearExpr last = solver::LinearExpr::variable(0);
  last.add_constant(-witness.at(0));
  preds.push_back({std::move(last), solver::CompareOp::kNeq});  // x0 != w0

  solver::DomainMap domains;
  for (solver::Var v = 0; v < nvars; ++v) domains[v] = {-100, 100};
  solver::Solver s;
  const solver::SolveResult r = s.solve_incremental(preds, domains, witness);
  if (!r.sat) return;  // UNSAT is acceptable; soundness is about SAT results
  for (const solver::Predicate& p : preds) {
    EXPECT_TRUE(p.holds([&](solver::Var v) { return r.values.at(v); }))
        << p.to_string();
  }
  // Stale values must be reported unchanged.
  for (const auto& [v, value] : r.values) {
    const bool changed =
        std::binary_search(r.changed.begin(), r.changed.end(), v);
    if (!changed && witness.count(v)) {
      EXPECT_EQ(value, witness.at(v)) << "unchanged var " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSoundnessTest,
                         ::testing::Range(100, 140));

}  // namespace
}  // namespace compi
