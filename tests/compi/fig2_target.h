// The paper's Fig. 2 example program as a synthetic test target.
//
//   read inputs x, y
//   0: if (x < 1)         -> sanity exit
//   1: if (y < 1)         -> sanity exit
//   2: if (x * y > 10^4)  -> sanity exit          (combination check)
//   3: if (size > x)      -> shrink work          (ties sw to an input)
//   4: if (rank == 0)  { 5: if (y == 77) seeded bug }
//      else             { 6: if (y >= 100) ... }  (only non-focus ranks
//                                                  reach 4F/6T; 6F needs a
//                                                  non-zero focus)
//   7: while (i < x) solver loop
//
// Branches 4F and 6T are *executed* only by processes other than rank 0,
// and 6F can be *driven* only by making a non-zero rank the focus — the
// exact situation COMPI's framework exists for (paper §I-B).
#pragma once

#include "compi/target.h"
#include "targets/target_common.h"

namespace compi::testing {

enum class Fig2Site : sym::SiteId {
  kXLow,      // 0
  kYLow,      // 1
  kCombo,     // 2
  kSizeBig,   // 3
  kRankZero,  // 4
  kMagic,     // 5
  kYBig,      // 6
  kLoop,      // 7
  kCount,
};

inline constexpr std::size_t kFig2Branches = 16;
/// Branches a fixed-focus-0, focus-only-coverage ablation can ever see:
/// everything except 4F, 6T, 6F.
inline constexpr std::size_t kFig2NoFwkBranches = 13;

inline const rt::BranchTable& fig2_table() {
  static const rt::BranchTable table = [] {
    rt::BranchTable t;
    t.add_site("sanity", "x_low");
    t.add_site("sanity", "y_low");
    t.add_site("sanity", "combo");
    t.add_site("share_work", "size_big");
    t.add_site("share_work", "rank_zero");
    t.add_site("share_work", "magic");
    t.add_site("share_work", "y_big");
    t.add_site("solve", "loop");
    t.finalize();
    return t;
  }();
  return table;
}

inline TargetInfo fig2_target(bool with_bug = false) {
  TargetInfo info;
  info.name = "fig2";
  info.table = &fig2_table();
  info.program = [with_bug](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    using targets::br;
    using sym::SymInt;
    const SymInt x = ctx.input_int_capped("x", 500);
    const SymInt y = ctx.input_int_capped("y", 500);
    const SymInt rank = world.comm_rank(ctx);
    const SymInt size = world.comm_size(ctx);

    if (br(ctx, Fig2Site::kXLow, x < SymInt(1))) return;
    if (br(ctx, Fig2Site::kYLow, y < SymInt(1))) return;
    if (br(ctx, Fig2Site::kCombo, x * y > SymInt(10000))) return;

    if (br(ctx, Fig2Site::kSizeBig, size > x)) {
      // more processes than work items: shrink each share
    }

    if (br(ctx, Fig2Site::kRankZero, rank == SymInt(0))) {
      if (br(ctx, Fig2Site::kMagic, y == SymInt(77))) {
        ctx.check(!with_bug, "seeded assertion: y == 77 on the master");
      }
    } else {
      if (br(ctx, Fig2Site::kYBig, y >= SymInt(100))) {
        // worker fast path
      }
    }

    const int bound = static_cast<int>(x.value());
    for (int i = 0; br(ctx, Fig2Site::kLoop, SymInt(i) < x) && i < bound;
         ++i) {
      // solver iteration
    }
    world.barrier();
  };
  info.sloc = 45;
  return info;
}

}  // namespace compi::testing
