#include "compi/framework.h"

#include <gtest/gtest.h>

namespace compi {
namespace {

using rt::VarKind;
using solver::Var;

struct Fixture {
  rt::VarRegistry registry;
  Var n, rw0, rw1, sw0, rc0, rc1;

  Fixture() {
    n = registry.intern("n", VarKind::kRegular, {0, 1000}, 300);
    rw0 = registry.intern("rw#0", VarKind::kRankWorld, {0, 1 << 20});
    rw1 = registry.intern("rw#1", VarKind::kRankWorld, {0, 1 << 20});
    sw0 = registry.intern("sw#0", VarKind::kSizeWorld, {1, 1 << 20});
    rc0 = registry.intern("rc#0", VarKind::kRankLocal, {0, 1 << 20},
                          std::nullopt, 0);
    rc1 = registry.intern("rc#1", VarKind::kRankLocal, {0, 1 << 20},
                          std::nullopt, 1);
  }

  rt::TestLog log_with_mappings() const {
    rt::TestLog log;
    log.comm_sizes = {3, 2};
    // Paper Fig. 5 shape: focus in two local communicators.
    log.rank_mapping = {{0, 4, 2}, {0, 3}};
    return log;
  }
};

bool contains(const std::vector<solver::Predicate>& preds,
              const solver::Predicate& p) {
  return std::find(preds.begin(), preds.end(), p) != preds.end();
}

TEST(Framework, MpiConstraintsMatchPaperSection3B) {
  Fixture f;
  Framework fw(f.registry, /*max_procs=*/16);
  const auto preds = fw.mpi_constraints(f.log_with_mappings());

  EXPECT_TRUE(contains(preds, solver::make_eq(f.rw0, f.rw1)))
      << "all rw equal";
  EXPECT_TRUE(contains(preds, solver::make_lt(f.rw0, f.sw0))) << "rw < sw";
  EXPECT_TRUE(contains(preds, solver::make_lt_const(f.rc0, 3)))
      << "rc0 < s_0 (concrete communicator size)";
  EXPECT_TRUE(contains(preds, solver::make_lt_const(f.rc1, 2)));
  EXPECT_TRUE(contains(preds, solver::make_ge_const(f.rw0, 0)));
  EXPECT_TRUE(contains(preds, solver::make_ge_const(f.rc0, 0)));
  EXPECT_TRUE(contains(preds, solver::make_ge_const(f.sw0, 1)));
  EXPECT_TRUE(contains(preds, solver::make_le_const(f.sw0, 16)))
      << "process-count cap";
}

TEST(Framework, DisabledProducesNoConstraints) {
  Fixture f;
  Framework fw(f.registry, 16, /*enabled=*/false);
  EXPECT_TRUE(fw.mpi_constraints(f.log_with_mappings()).empty());
}

TEST(Framework, DomainsApplyCaps) {
  Fixture f;
  Framework fw(f.registry, 16);
  const auto domains = fw.domains();
  EXPECT_EQ(domains.at(f.n).hi, 300);
  EXPECT_EQ(domains.at(f.sw0).lo, 1);
}

TEST(Framework, PlanDerivesNprocsFromSw) {
  Fixture f;
  Framework fw(f.registry, 16);
  solver::SolveResult solved;
  solved.sat = true;
  solved.values = {{f.sw0, 12}};
  TestPlan prev;
  prev.nprocs = 8;
  prev.focus = 0;
  const TestPlan plan = fw.plan_next_test(solved, f.log_with_mappings(), prev);
  EXPECT_EQ(plan.nprocs, 12);
}

TEST(Framework, PlanClampsNprocsToCap) {
  Fixture f;
  Framework fw(f.registry, 16);
  solver::SolveResult solved;
  solved.sat = true;
  solved.values = {{f.sw0, 5000}};
  const TestPlan plan =
      fw.plan_next_test(solved, f.log_with_mappings(), TestPlan{{}, 8, 0});
  EXPECT_EQ(plan.nprocs, 16)
      << "input capping protects against demanding huge process counts";
}

TEST(Framework, ChangedRwSelectsNewFocus) {
  Fixture f;
  Framework fw(f.registry, 16);
  solver::SolveResult solved;
  solved.sat = true;
  solved.values = {{f.rw0, 3}, {f.sw0, 8}};
  solved.changed = {f.rw0};
  const TestPlan plan =
      fw.plan_next_test(solved, f.log_with_mappings(), TestPlan{{}, 8, 0});
  EXPECT_EQ(plan.focus, 3);
  EXPECT_EQ(plan.inputs.at(f.rw0), 3);
  EXPECT_EQ(plan.inputs.at(f.rw1), 3) << "all rw rewritten consistently";
}

TEST(Framework, ChangedRcTranslatesThroughMapping) {
  // Paper Fig. 5: negating y0 = 0 yields y0 = 1, which maps to global
  // rank mapping[0][1] = 4; all rank variables are then rewritten to 4.
  Fixture f;
  Framework fw(f.registry, 16);
  solver::SolveResult solved;
  solved.sat = true;
  solved.values = {{f.rw0, 0}, {f.rc0, 1}, {f.rc1, 0}, {f.sw0, 8}};
  solved.changed = {f.rc0};
  const TestPlan plan =
      fw.plan_next_test(solved, f.log_with_mappings(), TestPlan{{}, 8, 0});
  EXPECT_EQ(plan.focus, 4);
  EXPECT_EQ(plan.inputs.at(f.rw0), 4);
  EXPECT_EQ(plan.inputs.at(f.rw1), 4);
}

TEST(Framework, ChangedRwWinsOverChangedRc) {
  Fixture f;
  Framework fw(f.registry, 16);
  solver::SolveResult solved;
  solved.sat = true;
  solved.values = {{f.rw0, 2}, {f.rc0, 1}, {f.sw0, 8}};
  solved.changed = {f.rw0, f.rc0};
  std::sort(solved.changed.begin(), solved.changed.end());
  const TestPlan plan =
      fw.plan_next_test(solved, f.log_with_mappings(), TestPlan{{}, 8, 0});
  EXPECT_EQ(plan.focus, 2) << "rw value is directly the global rank";
}

TEST(Framework, NoChangeKeepsFocus) {
  Fixture f;
  Framework fw(f.registry, 16);
  solver::SolveResult solved;
  solved.sat = true;
  solved.values = {{f.n, 50}, {f.sw0, 8}};
  solved.changed = {f.n};
  const TestPlan plan =
      fw.plan_next_test(solved, f.log_with_mappings(), TestPlan{{}, 8, 5});
  EXPECT_EQ(plan.focus, 5);
}

TEST(Framework, FocusClampedToNprocs) {
  Fixture f;
  Framework fw(f.registry, 16);
  solver::SolveResult solved;
  solved.sat = true;
  solved.values = {{f.rw0, 10}, {f.sw0, 4}};
  solved.changed = {f.rw0};
  const TestPlan plan =
      fw.plan_next_test(solved, f.log_with_mappings(), TestPlan{{}, 8, 0});
  EXPECT_EQ(plan.nprocs, 4);
  EXPECT_LT(plan.focus, 4);
}

TEST(Framework, RcRewriteUsesFocusPositionInMapping) {
  Fixture f;
  Framework fw(f.registry, 16);
  solver::SolveResult solved;
  solved.sat = true;
  solved.values = {{f.rw0, 2}, {f.rc0, 0}, {f.rc1, 0}, {f.sw0, 8}};
  solved.changed = {f.rw0};
  const TestPlan plan =
      fw.plan_next_test(solved, f.log_with_mappings(), TestPlan{{}, 8, 0});
  // Focus = global 2; in comm 0 its local rank is 2 (mapping {0,4,2});
  // it is absent from comm 1 ({0,3}) so rc1 keeps its solver value.
  EXPECT_EQ(plan.inputs.at(f.rc0), 2);
  EXPECT_EQ(plan.inputs.at(f.rc1), 0);
}

TEST(Framework, NoMappingAblationMisreadsLocalRanks) {
  // Without conflict resolution, a changed rc is read as a global rank:
  // y0 = 1 targets global rank 1, even though local rank 1 of comm 0 is
  // really global rank 4 (the situation of paper Fig. 5).
  Fixture f;
  Framework fw(f.registry, 16, /*enabled=*/true, /*use_mapping=*/false);
  solver::SolveResult solved;
  solved.sat = true;
  solved.values = {{f.rw0, 0}, {f.rc0, 1}, {f.sw0, 8}};
  solved.changed = {f.rc0};
  const TestPlan plan =
      fw.plan_next_test(solved, f.log_with_mappings(), TestPlan{{}, 8, 0});
  EXPECT_EQ(plan.focus, 1) << "naive reading: local rank taken as global";
}

TEST(Framework, DisabledPlanNeverMoves) {
  Fixture f;
  Framework fw(f.registry, 16, /*enabled=*/false);
  solver::SolveResult solved;
  solved.sat = true;
  solved.values = {{f.rw0, 3}, {f.sw0, 2}};
  solved.changed = {f.rw0, f.sw0};
  const TestPlan plan =
      fw.plan_next_test(solved, f.log_with_mappings(), TestPlan{{}, 8, 0});
  EXPECT_EQ(plan.nprocs, 8);
  EXPECT_EQ(plan.focus, 0);
}

}  // namespace
}  // namespace compi
