// `--explain` end-to-end: a journaled campaign leaves artifacts the
// report can replay, the journal's iteration events stay aligned with
// iterations.csv (including across a kill + --resume), and the CSV
// splitter honors RFC 4180 quoting.
#include "compi/explain.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "compi/driver.h"
#include "obs/journal.h"
#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_explain_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::size_t csv_rows(const fs::path& file) {
  std::ifstream in(file);
  std::string line;
  std::size_t rows = 0;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  return rows;
}

std::size_t journal_iteration_events(const fs::path& dir,
                                     std::size_t* malformed = nullptr) {
  std::size_t n = 0;
  for (const obs::ParsedEvent& ev :
       obs::read_journal(dir / "journal.jsonl", malformed)) {
    if (ev.type == "iteration") ++n;
  }
  return n;
}

CampaignOptions journaled_options(const TempDir& tmp) {
  CampaignOptions opts;
  opts.seed = 7;
  opts.iterations = 30;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.confirm_bugs = false;
  opts.journal = true;
  opts.log_dir = tmp.path.string();
  return opts;
}

TEST(SplitCsvRow, HonorsRfc4180Quoting) {
  const std::vector<std::string> cells =
      split_csv_row("1,\"a,b\",\"say \"\"hi\"\"\",,x");
  ASSERT_EQ(cells.size(), 5u);
  EXPECT_EQ(cells[0], "1");
  EXPECT_EQ(cells[1], "a,b");
  EXPECT_EQ(cells[2], "say \"hi\"");
  EXPECT_EQ(cells[3], "");
  EXPECT_EQ(cells[4], "x");
}

TEST(Explain, ReportsTimelineNearMissesSkewAndSolverBreakdown) {
  TempDir tmp;
  const CampaignResult result =
      Campaign(fig2_target(), journaled_options(tmp)).run();
  ASSERT_EQ(result.iterations.size(), 30u);

  // Journal/CSV alignment: one iteration event per CSV row, all valid JSON.
  std::size_t malformed = 0;
  EXPECT_EQ(journal_iteration_events(tmp.path, &malformed),
            csv_rows(tmp.path / "iterations.csv"));
  EXPECT_EQ(malformed, 0u);

  std::ostringstream report;
  ASSERT_TRUE(explain_session(tmp.path, report));
  const std::string text = report.str();
  EXPECT_NE(text.find("Coverage timeline"), std::string::npos) << text;
  EXPECT_NE(text.find("Never-taken branches"), std::string::npos);
  EXPECT_NE(text.find("Per-rank coverage"), std::string::npos);
  EXPECT_NE(text.find("solve attempts"), std::string::npos);
  EXPECT_NE(text.find("journal events"), std::string::npos);
}

TEST(Explain, LedgerCsvAttributesTheCoverageTheCampaignFound) {
  TempDir tmp;
  const CampaignResult result =
      Campaign(fig2_target(), journaled_options(tmp)).run();
  const std::vector<LedgerCsvRow> rows =
      read_ledger_csv(tmp.path / "ledger.csv");
  ASSERT_EQ(rows.size(), compi::testing::kFig2Branches);

  std::size_t covered = 0;
  for (const LedgerCsvRow& row : rows) {
    if (!row.covered) continue;
    ++covered;
    EXPECT_GE(row.first_iteration, 0);
    EXPECT_LT(row.first_iteration, 30);
    EXPECT_GT(row.first_nprocs, 0);
    EXPECT_GE(row.first_rank, 0);
    EXPECT_GT(row.total_hits, 0u);
  }
  EXPECT_EQ(covered, result.covered_branches);
}

TEST(Explain, JournalAndLedgerSurviveKillAndResume) {
  TempDir tmp;
  CampaignOptions opts = journaled_options(tmp);
  opts.checkpoint_interval = 5;
  {
    CampaignOptions halted = opts;
    halted.halt_after_iterations = 12;
    const CampaignResult partial = Campaign(fig2_target(), halted).run();
    ASSERT_EQ(partial.iterations.size(), 12u);
  }
  CampaignOptions resumed = opts;
  resumed.resume = true;
  const CampaignResult result = Campaign(fig2_target(), resumed).run();
  ASSERT_TRUE(result.resumed);
  ASSERT_EQ(result.iterations.size(), 30u);

  // The resumed journal truncated the un-checkpointed tail and re-appended
  // it: exactly one iteration event per CSV row, each ordinal once.
  std::size_t malformed = 0;
  const std::vector<obs::ParsedEvent> events =
      obs::read_journal(tmp.path / "journal.jsonl", &malformed);
  EXPECT_EQ(malformed, 0u);
  std::set<int> ordinals;
  for (const obs::ParsedEvent& ev : events) {
    if (ev.type == "iteration") {
      EXPECT_TRUE(ordinals.insert(ev.iter()).second)
          << "duplicate iteration event " << ev.iter();
    }
  }
  EXPECT_EQ(ordinals.size(), 30u);
  EXPECT_EQ(csv_rows(tmp.path / "iterations.csv"), 30u);

  // The restored ledger still holds pre-kill attribution: every covered
  // row's first-hit iteration is valid and the report renders.
  const std::vector<LedgerCsvRow> rows =
      read_ledger_csv(tmp.path / "ledger.csv");
  std::size_t covered = 0;
  for (const LedgerCsvRow& row : rows) {
    if (row.covered) {
      ++covered;
      EXPECT_GE(row.first_iteration, 0);
    }
  }
  EXPECT_EQ(covered, result.covered_branches);
  std::ostringstream report;
  EXPECT_TRUE(explain_session(tmp.path, report));
}

TEST(Explain, FailsCleanlyOnAnEmptyDirectory) {
  TempDir tmp;
  fs::create_directories(tmp.path);
  std::ostringstream report;
  EXPECT_FALSE(explain_session(tmp.path, report));
  EXPECT_NE(report.str().find("no ledger.csv"), std::string::npos);
}

TEST(Explain, StatusFileHeartbeatTracksTheLastIteration) {
  TempDir tmp;
  CampaignOptions opts = journaled_options(tmp);
  opts.iterations = 5;
  opts.status_file = (tmp.path / "status.json").string();
  const CampaignResult result = Campaign(fig2_target(), opts).run();
  ASSERT_EQ(result.iterations.size(), 5u);

  std::ifstream in(tmp.path / "status.json");
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"iteration\":4"), std::string::npos) << line;
  EXPECT_NE(line.find("\"covered_branches\""), std::string::npos);
  EXPECT_NE(line.find("\"outcome\""), std::string::npos);
  // No torn temp file left behind.
  EXPECT_FALSE(fs::exists(tmp.path / "status.json.tmp"));
}

}  // namespace
}  // namespace compi
