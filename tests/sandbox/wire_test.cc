// Wire-format round-trips for the sandbox supervisor pipe protocol.
#include "sandbox/wire.h"

#include <gtest/gtest.h>

#include <chrono>

#include "minimpi/launcher.h"
#include "tests/compi/fig2_target.h"

namespace compi::sandbox {
namespace {

/// One real in-process run of the Fig. 2 target: the richest TestLog the
/// codebase produces (path, trace, inputs, comm sizes, rank mappings).
minimpi::RunResult run_fig2(int nprocs, int focus) {
  const TargetInfo target = compi::testing::fig2_target();
  rt::VarRegistry registry;
  const solver::Assignment inputs;
  minimpi::LaunchSpec spec;
  spec.program = target.program;
  spec.nprocs = nprocs;
  spec.focus = focus;
  spec.registry = &registry;
  spec.inputs = &inputs;
  spec.rng_seed = 42;
  spec.timeout = std::chrono::milliseconds(5000);
  return minimpi::launch(spec, *target.table);
}

void expect_same_run(const minimpi::RunResult& a,
                     const minimpi::RunResult& b) {
  EXPECT_EQ(a.focus, b.focus);
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].outcome, b.ranks[r].outcome) << "rank " << r;
    EXPECT_EQ(a.ranks[r].message, b.ranks[r].message) << "rank " << r;
    // serialize() covers every TestLog field a rank writes to its log
    // file, so string equality is full-log equality.
    EXPECT_EQ(a.ranks[r].log.serialize(), b.ranks[r].log.serialize())
        << "rank " << r;
  }
}

TEST(SandboxWire, RunResultRoundTripsLosslessly) {
  const minimpi::RunResult run = run_fig2(3, 0);
  ASSERT_EQ(run.job_outcome(), rt::Outcome::kOk) << run.job_message();
  minimpi::RunResult decoded;
  ASSERT_TRUE(decode_run_result(encode_run_result(run), decoded));
  expect_same_run(run, decoded);
}

TEST(SandboxWire, NonZeroFocusRoundTrips) {
  const minimpi::RunResult run = run_fig2(4, 2);
  minimpi::RunResult decoded;
  ASSERT_TRUE(decode_run_result(encode_run_result(run), decoded));
  expect_same_run(run, decoded);
}

TEST(SandboxWire, MultiLineFaultMessagesRoundTrip) {
  rt::VarRegistry registry;
  const solver::Assignment inputs;
  minimpi::LaunchSpec spec;
  spec.nprocs = 2;
  spec.focus = 0;
  spec.registry = &registry;
  spec.inputs = &inputs;
  spec.timeout = std::chrono::milliseconds(5000);
  spec.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    if (world.raw_rank() == 1) {
      ctx.check(false, "line one\nline two\nline three");
    }
    world.barrier();
  };
  const minimpi::RunResult run =
      minimpi::launch(spec, compi::testing::fig2_table());
  ASSERT_EQ(run.job_outcome(), rt::Outcome::kAssert);
  minimpi::RunResult decoded;
  ASSERT_TRUE(decode_run_result(encode_run_result(run), decoded));
  expect_same_run(run, decoded);
  EXPECT_NE(decoded.job_message().find('\n'), std::string::npos);
}

TEST(SandboxWire, FrameReaderReassemblesBytewiseFeeds) {
  std::string stream;
  append_frame(stream, FrameType::kError, "boom");
  append_frame(stream, FrameType::kSignal, "11");
  FrameReader reader;
  std::vector<Frame> frames;
  for (char c : stream) {
    reader.feed(&c, 1);
    while (auto f = reader.next()) frames.push_back(std::move(*f));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kError);
  EXPECT_EQ(frames[0].payload, "boom");
  EXPECT_EQ(frames[1].type, FrameType::kSignal);
  EXPECT_EQ(frames[1].payload, "11");
  EXPECT_EQ(reader.bytes_fed(), stream.size());
  EXPECT_FALSE(reader.corrupt());
}

TEST(SandboxWire, TornTailIsHeldBackNotMisparsed) {
  std::string stream;
  append_frame(stream, FrameType::kResult, "partial payload");
  FrameReader reader;
  reader.feed(stream.data(), stream.size() - 4);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.corrupt());
  reader.feed(stream.data() + stream.size() - 4, 4);
  const std::optional<Frame> f = reader.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload, "partial payload");
}

TEST(SandboxWire, CorruptHeaderPoisonsTheStream) {
  // "XXXX" little-endian is ~1.5 GB — far over the payload ceiling.
  const std::string garbage(16, 'X');
  FrameReader reader;
  reader.feed(garbage.data(), garbage.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.corrupt());
}

TEST(SandboxWire, UnknownFrameTypeIsCorrupt) {
  std::string stream;
  append_frame(stream, FrameType::kError, "ok");
  stream[4] = 'Z';  // clobber the type tag, keep the length valid
  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.corrupt());
}

TEST(SandboxWire, RegistryRoundTripsThroughTheWire) {
  rt::VarRegistry source;
  source.intern("x", rt::VarKind::kRegular, solver::int32_domain(), 500);
  source.intern("rank_w", rt::VarKind::kRankWorld);
  source.intern("split rank", rt::VarKind::kRankLocal, solver::int32_domain(),
                std::nullopt, 3);

  rt::VarRegistry dest;
  ASSERT_TRUE(apply_registry(encode_registry(source), dest));
  const std::vector<rt::VarMeta> want = source.all();
  const std::vector<rt::VarMeta> got = dest.all();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key) << i;
    EXPECT_EQ(got[i].kind, want[i].kind) << i;
    EXPECT_EQ(got[i].domain.lo, want[i].domain.lo) << i;
    EXPECT_EQ(got[i].domain.hi, want[i].domain.hi) << i;
    EXPECT_EQ(got[i].cap, want[i].cap) << i;
    EXPECT_EQ(got[i].comm_index, want[i].comm_index) << i;
  }
  // Replaying again is a no-op: intern is first-marking-wins, so ids and
  // metadata stay stable across repeated syncs.
  ASSERT_TRUE(apply_registry(encode_registry(source), dest));
  EXPECT_EQ(dest.size(), source.size());
}

TEST(SandboxWire, ApplyRegistryRejectsGarbage) {
  rt::VarRegistry dest;
  EXPECT_FALSE(apply_registry("registry banana", dest));
  EXPECT_FALSE(apply_registry("registry 2\nvar 0 0 10 none -1 x\n", dest));
}

TEST(SandboxWire, DecodeRejectsTruncatedPayload) {
  const minimpi::RunResult run = run_fig2(2, 0);
  std::string payload = encode_run_result(run);
  payload.resize(payload.size() / 2);
  minimpi::RunResult decoded;
  EXPECT_FALSE(decode_run_result(payload, decoded));
}

TEST(SandboxWire, RegistrySuffixShipsOnlyUnsyncedVariables) {
  rt::VarRegistry source;
  source.intern("a", rt::VarKind::kRegular, solver::int32_domain(), 500);
  source.intern("b", rt::VarKind::kRankWorld);

  rt::VarRegistry dest;
  ASSERT_TRUE(apply_registry(encode_registry_suffix(source, 0), dest));
  ASSERT_EQ(dest.size(), 2u);

  // Two more interns on the source; the suffix from the sync point carries
  // exactly those, and replaying it reconstructs identical dense ids.
  source.intern("c", rt::VarKind::kRegular, solver::int32_domain(), 100);
  source.intern("split d", rt::VarKind::kRankLocal, solver::int32_domain(),
                std::nullopt, 7);
  const std::string suffix = encode_registry_suffix(source, 2);
  EXPECT_EQ(suffix.substr(0, 11), "registry 2\n");
  EXPECT_EQ(suffix.find(" a\n"), std::string::npos)
      << "already-synced variables must not be re-shipped";
  ASSERT_TRUE(apply_registry(suffix, dest));

  const std::vector<rt::VarMeta> want = source.all();
  const std::vector<rt::VarMeta> got = dest.all();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key) << i;
    EXPECT_EQ(got[i].kind, want[i].kind) << i;
    EXPECT_EQ(got[i].comm_index, want[i].comm_index) << i;
  }
}

TEST(SandboxWire, RegistrySuffixPastTheEndIsAnEmptyNoOp) {
  rt::VarRegistry source;
  source.intern("x", rt::VarKind::kRegular, solver::int32_domain(), 500);
  rt::VarRegistry dest;
  ASSERT_TRUE(apply_registry(encode_registry_suffix(source, 1), dest));
  EXPECT_EQ(dest.size(), 0u);
  ASSERT_TRUE(apply_registry(encode_registry_suffix(source, 99), dest));
  EXPECT_EQ(dest.size(), 0u);
}

/// A SpawnRequest with every field off its default: the round-trip must be
/// exact, including the chaos plan and prescribed wildcard decisions.
SpawnRequest full_spawn_request() {
  SpawnRequest req;
  req.nprocs = 6;
  req.focus = 3;
  req.one_way = true;
  req.inputs[0] = 77;
  req.inputs[1] = -12;
  req.inputs[5] = 1'000'000;
  req.rng_seed = 0xDEADBEEFCAFEull;
  req.step_budget = 123'456;
  req.reduction = false;
  req.mark_mpi_vars = false;
  req.timeout_ms = 1'500;
  req.hang_ms = 5'000;
  req.track_base = 42;
  req.match_schedule = true;
  req.match_plan = {{0, 0, 2}, {1, 3, 0}};
  req.chaos.seed = 9;
  req.chaos.drop_rate = 0.25;
  req.chaos.delay_rate = 0.125;
  req.chaos.delay = std::chrono::milliseconds(17);
  req.chaos.crash_rank = 2;
  req.chaos.crash_at_call = 4;
  req.chaos.crash_outcome = rt::Outcome::kAssert;
  req.chaos.stall_rank = 1;
  req.chaos.stall_at_collective = 3;
  return req;
}

TEST(SandboxWire, SpawnRequestRoundTripsLosslessly) {
  const SpawnRequest req = full_spawn_request();
  SpawnRequest got;
  ASSERT_TRUE(decode_spawn_request(encode_spawn_request(req), got));
  EXPECT_EQ(got.nprocs, req.nprocs);
  EXPECT_EQ(got.focus, req.focus);
  EXPECT_EQ(got.one_way, req.one_way);
  EXPECT_EQ(got.inputs, req.inputs);
  EXPECT_EQ(got.rng_seed, req.rng_seed);
  EXPECT_EQ(got.step_budget, req.step_budget);
  EXPECT_EQ(got.reduction, req.reduction);
  EXPECT_EQ(got.mark_mpi_vars, req.mark_mpi_vars);
  EXPECT_EQ(got.timeout_ms, req.timeout_ms);
  EXPECT_EQ(got.hang_ms, req.hang_ms);
  EXPECT_EQ(got.track_base, req.track_base);
  EXPECT_EQ(got.match_schedule, req.match_schedule);
  EXPECT_EQ(got.match_plan, req.match_plan);
  EXPECT_EQ(got.chaos.seed, req.chaos.seed);
  EXPECT_DOUBLE_EQ(got.chaos.drop_rate, req.chaos.drop_rate);
  EXPECT_DOUBLE_EQ(got.chaos.delay_rate, req.chaos.delay_rate);
  EXPECT_EQ(got.chaos.delay, req.chaos.delay);
  EXPECT_EQ(got.chaos.crash_rank, req.chaos.crash_rank);
  EXPECT_EQ(got.chaos.crash_at_call, req.chaos.crash_at_call);
  EXPECT_EQ(got.chaos.crash_outcome, req.chaos.crash_outcome);
  EXPECT_EQ(got.chaos.stall_rank, req.chaos.stall_rank);
  EXPECT_EQ(got.chaos.stall_at_collective, req.chaos.stall_at_collective);
}

TEST(SandboxWire, DefaultSpawnRequestRoundTrips) {
  SpawnRequest got;
  got.nprocs = 99;  // must be overwritten back to the default
  ASSERT_TRUE(decode_spawn_request(encode_spawn_request(SpawnRequest{}), got));
  EXPECT_EQ(got.nprocs, 1);
  EXPECT_TRUE(got.inputs.empty());
  EXPECT_TRUE(got.match_plan.empty());
  EXPECT_EQ(got.chaos.crash_rank, -1);
}

TEST(SandboxWire, DecodeSpawnRejectsTruncationAndGarbage) {
  const std::string payload = encode_spawn_request(full_spawn_request());
  SpawnRequest out;
  EXPECT_FALSE(decode_spawn_request("", out));
  EXPECT_FALSE(decode_spawn_request("spawn banana", out));
  EXPECT_FALSE(decode_spawn_request("launch 1 0 0 1 1 1 1 1 1 0 0", out));
  // Prefixes that tear into the end_spawn sentinel (or earlier) must be
  // rejected: the sentinel is what distinguishes a complete request from a
  // torn one.
  for (std::size_t cut : {payload.size() - 2, payload.size() / 2,
                          std::size_t{10}}) {
    EXPECT_FALSE(decode_spawn_request(payload.substr(0, cut), out))
        << "cut at " << cut;
  }
}

TEST(SandboxWire, ForkServerFrameTagsAreKnownToTheReader) {
  std::string stream;
  append_frame(stream, FrameType::kHello, "compi-fork-server 1 1234");
  append_frame(stream, FrameType::kSpawn, encode_spawn_request(SpawnRequest{}));
  append_frame(stream, FrameType::kStatus, "spawned 4321");
  append_frame(stream, FrameType::kStatus, "reaped 0");
  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  std::vector<Frame> frames;
  while (auto f = reader.next()) frames.push_back(std::move(*f));
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[1].type, FrameType::kSpawn);
  EXPECT_EQ(frames[2].type, FrameType::kStatus);
  EXPECT_EQ(frames[3].payload, "reaped 0");
  EXPECT_FALSE(reader.corrupt());
}

}  // namespace
}  // namespace compi::sandbox
