// Supervisor tests: real crashes and hangs are contained in a forked
// child, mapped onto the Outcome taxonomy, and their flushed coverage is
// harvested.
#include "sandbox/supervisor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <vector>

#include "minimpi/launcher.h"
#include "runtime/faults.h"
#include "tests/compi/fig2_target.h"

#if defined(__SANITIZE_ADDRESS__)
#define COMPI_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define COMPI_TEST_ASAN 1
#endif
#endif

namespace compi::sandbox {
namespace {

using compi::testing::Fig2Site;
using compi::testing::fig2_table;
using compi::testing::fig2_target;

minimpi::LaunchSpec base_spec(rt::VarRegistry& registry,
                              const solver::Assignment& inputs, int nprocs) {
  minimpi::LaunchSpec spec;
  spec.nprocs = nprocs;
  spec.focus = 0;
  spec.registry = &registry;
  spec.inputs = &inputs;
  spec.rng_seed = 42;
  spec.timeout = std::chrono::milliseconds(5000);
  return spec;
}

TEST(OutcomeForSignal, MapsOntoTheExistingTaxonomy) {
  EXPECT_EQ(outcome_for_signal(SIGSEGV), rt::Outcome::kSegfault);
  EXPECT_EQ(outcome_for_signal(SIGILL), rt::Outcome::kSegfault);
  EXPECT_EQ(outcome_for_signal(SIGFPE), rt::Outcome::kFpe);
  EXPECT_EQ(outcome_for_signal(SIGABRT), rt::Outcome::kAssert);
#ifdef SIGBUS
  EXPECT_EQ(outcome_for_signal(SIGBUS), rt::Outcome::kSegfault);
#endif
#ifdef SIGKILL
  EXPECT_EQ(outcome_for_signal(SIGKILL), rt::Outcome::kTimeout);
#endif
#ifdef SIGXCPU
  EXPECT_EQ(outcome_for_signal(SIGXCPU), rt::Outcome::kTimeout);
#endif
  EXPECT_EQ(outcome_for_signal(1234), rt::Outcome::kMpiError);
}

TEST(OutcomeForSignal, MappedOutcomesRoundTripThroughStrings) {
  // Sandboxed outcomes must survive bugs.txt / checkpoint serialization:
  // to_string -> outcome_from_string is the round trip every session file
  // uses.
  const std::vector<int> signals = {SIGSEGV, SIGILL, SIGFPE, SIGABRT,
#ifdef SIGBUS
                                    SIGBUS,
#endif
#ifdef SIGKILL
                                    SIGKILL,
#endif
#ifdef SIGXCPU
                                    SIGXCPU,
#endif
                                    9999};
  for (int sig : signals) {
    const rt::Outcome outcome = outcome_for_signal(sig);
    const auto parsed = rt::outcome_from_string(rt::to_string(outcome));
    ASSERT_TRUE(parsed.has_value()) << rt::to_string(outcome);
    EXPECT_EQ(*parsed, outcome) << "signal " << sig;
    EXPECT_TRUE(rt::is_fault(outcome)) << "signal " << sig;
  }
}

TEST(Supervisor, CleanRunMatchesInProcessLaunch) {
  if (!sandbox_supported()) GTEST_SKIP() << "no fork() on this platform";
  const TargetInfo target = fig2_target();
  rt::VarRegistry in_proc_registry;
  rt::VarRegistry sandbox_registry;
  const solver::Assignment inputs;

  minimpi::LaunchSpec spec = base_spec(in_proc_registry, inputs, 3);
  spec.program = target.program;
  const minimpi::RunResult in_proc = minimpi::launch(spec, *target.table);

  spec.registry = &sandbox_registry;
  SandboxStats stats;
  const minimpi::RunResult sandboxed =
      run_sandboxed(spec, *target.table, SandboxOptions{}, &stats);

  EXPECT_TRUE(stats.forked);
  EXPECT_FALSE(stats.signal_kill);
  EXPECT_FALSE(stats.hang_kill);
  EXPECT_GT(stats.harvest_bytes, 0u);  // the result frame itself
  EXPECT_EQ(sandboxed.job_outcome(), in_proc.job_outcome());
  EXPECT_EQ(sandboxed.merged_coverage().covered_ids(),
            in_proc.merged_coverage().covered_ids());
  EXPECT_EQ(sandboxed.focus_log().serialize(), in_proc.focus_log().serialize());
  // The variables the child interned came back over the registry frame:
  // without this the driver's planner dereferences unknown var ids.
  EXPECT_EQ(sandbox_registry.size(), in_proc_registry.size());
  EXPECT_GT(sandbox_registry.size(), 0u);
}

TEST(Supervisor, RealSegfaultIsContainedAndCoverageHarvested) {
  if (!sandbox_supported()) GTEST_SKIP() << "no fork() on this platform";
  rt::VarRegistry registry;
  const solver::Assignment inputs;
  minimpi::LaunchSpec spec = base_spec(registry, inputs, 2);
  spec.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    using targets::br;
    // Flush one branch into the shared coverage map, then die for real.
    br(ctx, Fig2Site::kXLow, sym::SymInt(0) < sym::SymInt(1));
    if (world.raw_rank() == 0) (void)std::raise(SIGSEGV);
    world.barrier();
  };

  SandboxStats stats;
  const minimpi::RunResult run =
      run_sandboxed(spec, fig2_table(), SandboxOptions{}, &stats);

  EXPECT_TRUE(stats.forked);
  EXPECT_TRUE(stats.signal_kill);
  EXPECT_EQ(stats.term_signal, SIGSEGV);
  EXPECT_FALSE(stats.hang_kill);
  EXPECT_EQ(run.job_outcome(), rt::Outcome::kSegfault);
  EXPECT_NE(run.job_message().find("SIGSEGV"), std::string::npos)
      << run.job_message();
  ASSERT_EQ(run.ranks.size(), 2u);
  // The branch flushed before the crash survives the child's death.
  const rt::CoverageBitmap merged = run.merged_coverage();
  EXPECT_TRUE(merged.covered(
      sym::branch_id(static_cast<sym::SiteId>(Fig2Site::kXLow), true)));
  EXPECT_GT(stats.harvest_bytes, 0u);
}

TEST(Supervisor, RealFpeAndAbortMapToTheirOutcomes) {
  if (!sandbox_supported()) GTEST_SKIP() << "no fork() on this platform";
  struct Case {
    int sig;
    rt::Outcome expected;
  };
  for (const auto& [sig, expected] :
       {Case{SIGFPE, rt::Outcome::kFpe}, Case{SIGABRT, rt::Outcome::kAssert}}) {
    rt::VarRegistry registry;
    const solver::Assignment inputs;
    minimpi::LaunchSpec spec = base_spec(registry, inputs, 1);
    const int raise_sig = sig;
    spec.program = [raise_sig](rt::RuntimeContext&, minimpi::Comm&) {
      (void)std::raise(raise_sig);
    };
    SandboxStats stats;
    const minimpi::RunResult run =
        run_sandboxed(spec, fig2_table(), SandboxOptions{}, &stats);
    EXPECT_TRUE(stats.signal_kill) << "signal " << sig;
    EXPECT_EQ(run.job_outcome(), expected) << "signal " << sig;
  }
}

TEST(Supervisor, UninstrumentedInfiniteLoopIsHangKilled) {
  if (!sandbox_supported()) GTEST_SKIP() << "no fork() on this platform";
  rt::VarRegistry registry;
  const solver::Assignment inputs;
  minimpi::LaunchSpec spec = base_spec(registry, inputs, 2);
  spec.timeout = std::chrono::milliseconds(200);
  spec.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    using targets::br;
    br(ctx, Fig2Site::kYLow, sym::SymInt(1) < sym::SymInt(2));
    if (world.raw_rank() == 0) {
      // No branch events, no MPI calls: evades the step budget AND the
      // cooperative world deadline.  In-process this would wedge the
      // launcher's join forever.
      volatile bool spin = true;
      while (spin) {
      }
    }
    world.barrier();
  };

  SandboxOptions options;
  options.hang_timeout = std::chrono::milliseconds(1000);
  SandboxStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  const minimpi::RunResult run =
      run_sandboxed(spec, fig2_table(), options, &stats);
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_TRUE(stats.forked);
  EXPECT_TRUE(stats.hang_kill);
  EXPECT_EQ(run.job_outcome(), rt::Outcome::kTimeout);
  EXPECT_NE(run.job_message().find("hang timeout"), std::string::npos)
      << run.job_message();
  // The watchdog fired, not some 30 s default.
  EXPECT_LT(elapsed, std::chrono::seconds(20));
  // Coverage flushed before the wedge is harvested.
  EXPECT_TRUE(run.merged_coverage().covered(
      sym::branch_id(static_cast<sym::SiteId>(Fig2Site::kYLow), true)));
}

#ifndef COMPI_TEST_ASAN
TEST(Supervisor, ChildMemoryLimitContainsRunawayAllocation) {
  if (!sandbox_supported()) GTEST_SKIP() << "no fork() on this platform";
  rt::VarRegistry registry;
  const solver::Assignment inputs;
  minimpi::LaunchSpec spec = base_spec(registry, inputs, 1);
  spec.program = [](rt::RuntimeContext&, minimpi::Comm&) {
    // Way past the 64 MiB RLIMIT_AS below; must fail inside the child.
    std::vector<char> hog(512u << 20, 1);
    (void)hog.size();
  };
  SandboxOptions options;
  options.child_mem_mb = 64;
  SandboxStats stats;
  const minimpi::RunResult run =
      run_sandboxed(spec, fig2_table(), options, &stats);
  EXPECT_TRUE(stats.forked);
  EXPECT_TRUE(rt::is_fault(run.job_outcome())) << run.job_message();
}
#endif  // !COMPI_TEST_ASAN

TEST(Supervisor, ChaosRankCrashMatchesInProcessRun) {
  if (!sandbox_supported()) GTEST_SKIP() << "no fork() on this platform";
  // Every rank flushes its branch BEFORE its first MPI call and the
  // injected crash lands deterministically at that call, so outcome AND
  // coverage must be identical in-process vs. sandboxed.
  const auto program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    using targets::br;
    const sym::SymInt x = ctx.input_int_capped("x", 100);
    br(ctx, Fig2Site::kXLow, x < sym::SymInt(1));
    world.barrier();
  };
  minimpi::FaultPlan chaos;
  chaos.seed = 7;
  chaos.crash_rank = 1;
  chaos.crash_at_call = 1;

  rt::VarRegistry in_proc_registry;
  const solver::Assignment inputs;
  minimpi::LaunchSpec spec = base_spec(in_proc_registry, inputs, 3);
  spec.program = program;
  spec.chaos = chaos;
  const minimpi::RunResult in_proc = minimpi::launch(spec, fig2_table());
  ASSERT_TRUE(rt::is_fault(in_proc.job_outcome()));

  rt::VarRegistry sandbox_registry;
  spec.registry = &sandbox_registry;
  SandboxStats stats;
  const minimpi::RunResult sandboxed =
      run_sandboxed(spec, fig2_table(), SandboxOptions{}, &stats);

  EXPECT_TRUE(stats.forked);
  // The injected fault is caught IN the child and reported over the pipe —
  // no real signal, no synthesized result.
  EXPECT_FALSE(stats.signal_kill);
  EXPECT_FALSE(stats.hang_kill);
  EXPECT_EQ(sandboxed.job_outcome(), in_proc.job_outcome());
  EXPECT_EQ(sandboxed.job_message(), in_proc.job_message());
  EXPECT_EQ(sandboxed.merged_coverage().covered_ids(),
            in_proc.merged_coverage().covered_ids());
}

}  // namespace
}  // namespace compi::sandbox
