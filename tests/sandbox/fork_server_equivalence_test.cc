// Differential equivalence for the fork-server execution engine.
//
// The contract locking the engine down: the fork server is an execution
// MECHANISM, never a search change.  A campaign run with --fork-server=on
// must be row-for-row identical to the same campaign with the engine off —
// same iterations.csv (timing columns excluded), same covered set, same
// bugs.txt — on both the fig2 target and the message-heavy mini-IMB
// suite.  The --batch-reset fast path must likewise be bit-identical to a
// plain non-isolated serial session, and checkpoint v8 must carry the
// engine counters across a resume.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "compi/driver.h"
#include "compi/session.h"
#include "sandbox/supervisor.h"
#include "targets/targets.h"
#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_forksrv_eq_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

/// iterations.csv with the named column indices blanked (timings are wall /
/// CPU clock readings and legitimately vary run to run).
std::vector<std::string> csv_rows_excluding(const fs::path& file,
                                            const std::set<int>& drop) {
  std::ifstream in(file);
  std::vector<std::string> rows;
  std::string line;
  while (std::getline(in, line)) {
    std::stringstream ss(line);
    std::string field, rebuilt;
    int idx = 0;
    while (std::getline(ss, field, ',')) {
      rebuilt += drop.count(idx) ? std::string("_") : field;
      rebuilt += ',';
      ++idx;
    }
    rows.push_back(rebuilt);
  }
  return rows;
}

constexpr int kExecSecondsCol = 6;
constexpr int kSolveSecondsCol = 7;

std::string slurp(const fs::path& file) {
  std::ifstream in(file);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Branch ids marked covered in a session's ledger.csv.
std::set<long> covered_set(const fs::path& ledger_csv) {
  std::ifstream in(ledger_csv);
  std::set<long> covered;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    std::stringstream ss(line);
    std::string field;
    long branch = -1;
    for (int idx = 0; idx <= 4 && std::getline(ss, field, ','); ++idx) {
      if (idx == 0) branch = std::stol(field);
      if (idx == 4 && field == "1") covered.insert(branch);
    }
  }
  return covered;
}

CampaignOptions isolated_opts(const fs::path& dir) {
  CampaignOptions opts;
  opts.seed = 11;
  opts.iterations = 120;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.dfs_phase_iterations = 30;
  opts.checkpoint_interval = 0;
  opts.isolate = true;
  opts.log_dir = dir.string();
  return opts;
}

void expect_identical_sessions(const fs::path& a, const fs::path& b) {
  const auto drop = std::set<int>{kExecSecondsCol, kSolveSecondsCol};
  const auto rows_a = csv_rows_excluding(a / "iterations.csv", drop);
  EXPECT_FALSE(rows_a.empty());
  EXPECT_EQ(rows_a, csv_rows_excluding(b / "iterations.csv", drop));
  EXPECT_EQ(covered_set(a / "ledger.csv"), covered_set(b / "ledger.csv"));
  EXPECT_EQ(slurp(a / "bugs.txt"), slurp(b / "bugs.txt"));
}

TEST(ForkServerEquivalence, OnMatchesOffOnFig2) {
  if (!sandbox::sandbox_supported()) GTEST_SKIP() << "no fork()";
  TempDir off_dir, on_dir;

  CampaignOptions off = isolated_opts(off_dir.path);
  off.fork_server = false;
  const CampaignResult off_result = Campaign(fig2_target(), off).run();
  EXPECT_EQ(off_result.warm_spawns, 0u);
  EXPECT_EQ(off_result.cold_forks, 0u);

  CampaignOptions on = isolated_opts(on_dir.path);
  on.fork_server = true;
  const CampaignResult on_result = Campaign(fig2_target(), on).run();
  EXPECT_GT(on_result.warm_spawns, 0u)
      << "the engine must actually be exercised, not silently degraded";
  EXPECT_EQ(on_result.fork_server_restarts, 0u);

  EXPECT_EQ(off_result.covered_branches, on_result.covered_branches);
  EXPECT_EQ(off_result.bugs.size(), on_result.bugs.size());
  EXPECT_EQ(off_result.sandbox_runs, on_result.sandbox_runs)
      << "warm spawns are still sandboxed runs; accounting must not drift";
  expect_identical_sessions(off_dir.path, on_dir.path);
}

TEST(ForkServerEquivalence, OnMatchesOffOnMiniImb) {
  if (!sandbox::sandbox_supported()) GTEST_SKIP() << "no fork()";
  const TargetInfo target = targets::make_mini_imb_target(4);
  TempDir off_dir, on_dir;

  CampaignOptions off = isolated_opts(off_dir.path);
  off.seed = 3;
  off.iterations = 60;
  off.initial_nprocs = 2;
  off.max_procs = 2;
  off.fork_server = false;
  const CampaignResult off_result = Campaign(target, off).run();

  CampaignOptions on = off;
  on.log_dir = on_dir.path.string();
  on.fork_server = true;
  const CampaignResult on_result = Campaign(target, on).run();
  EXPECT_GT(on_result.warm_spawns, 0u);

  EXPECT_EQ(off_result.covered_branches, on_result.covered_branches);
  expect_identical_sessions(off_dir.path, on_dir.path);
}

TEST(ForkServerEquivalence, BatchResetMatchesPlainSerialNonIsolated) {
  if (!sandbox::sandbox_supported()) GTEST_SKIP() << "no fork()";
  TempDir serial_dir, batch_dir;

  // The reference: a plain in-process serial session, no sandbox at all.
  CampaignOptions serial = isolated_opts(serial_dir.path);
  serial.isolate = false;
  const CampaignResult serial_result = Campaign(fig2_target(), serial).run();

  // Batch reset: sandboxed until the warmup streak, in-process afterwards.
  // The results must be bit-identical either way — the sandbox and the
  // batch path are both execution mechanisms over the same search.
  CampaignOptions batch = isolated_opts(batch_dir.path);
  batch.batch_reset = true;
  batch.batch_warmup = 3;
  const CampaignResult batch_result = Campaign(fig2_target(), batch).run();
  EXPECT_GT(batch_result.batch_runs, 0u)
      << "a crash-free target must earn the in-process fast path";
  EXPECT_LT(batch_result.sandbox_runs, batch_result.iterations.size())
      << "batch runs must not be double-counted as sandboxed runs";

  EXPECT_EQ(serial_result.covered_branches, batch_result.covered_branches);
  EXPECT_EQ(serial_result.bugs.size(), batch_result.bugs.size());
  expect_identical_sessions(serial_dir.path, batch_dir.path);
}

// The tsan leg of CI runs this whole binary; this test is the one that
// drives the batched in-process fast path concurrently from four workers.
TEST(ForkServerEquivalence, BatchResetUnderFourWorkersStaysCoherent) {
  if (!sandbox::sandbox_supported()) GTEST_SKIP() << "no fork()";
  TempDir dir;
  CampaignOptions opts = isolated_opts(dir.path);
  opts.workers = 4;
  opts.iterations = 120;
  opts.batch_reset = true;
  opts.batch_warmup = 2;
  const CampaignResult result = Campaign(fig2_target(), opts).run();

  EXPECT_EQ(result.iterations.size(), 120u);
  EXPECT_GT(result.batch_runs, 0u)
      << "every worker's gate should open on a crash-free target";
  EXPECT_GT(result.covered_branches, 0u);
  EXPECT_EQ(result.batch_runs + result.sandbox_runs, 120u)
      << "each iteration is exactly one batch run or one sandboxed run";
}

TEST(ForkServerEquivalence, CheckpointResumeCarriesEngineCounters) {
  if (!sandbox::sandbox_supported()) GTEST_SKIP() << "no fork()";
  TempDir dir;
  CampaignOptions opts = isolated_opts(dir.path);
  opts.iterations = 60;
  opts.checkpoint_interval = 10;

  std::size_t partial_warm = 0;
  {
    CampaignOptions halted = opts;
    halted.halt_after_iterations = 30;
    const CampaignResult partial = Campaign(fig2_target(), halted).run();
    ASSERT_EQ(partial.iterations.size(), 30u);
    ASSERT_GT(partial.warm_spawns, 0u);
    partial_warm = partial.warm_spawns;
  }
  const auto snapshot = read_checkpoint(dir.path);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->warm_spawns, partial_warm)
      << "checkpoint v8 must persist the engine accounting";
  EXPECT_EQ(snapshot->batch_runs, 0u);

  CampaignOptions resumed = opts;
  resumed.resume = true;
  const CampaignResult got = Campaign(fig2_target(), resumed).run();
  EXPECT_TRUE(got.resumed);
  EXPECT_EQ(got.iterations.size(), 60u);
  EXPECT_GE(got.warm_spawns, partial_warm)
      << "restored counters plus the resumed tail's own warm spawns";
}

}  // namespace
}  // namespace compi
