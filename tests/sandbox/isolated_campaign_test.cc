// End-to-end --isolate campaigns: a target that REALLY segfaults or spins
// in an uninstrumented loop must be contained per-iteration, recorded as a
// bug, and the campaign must run to its budget — including across
// checkpoint/resume.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "compi/driver.h"
#include "compi/explain.h"
#include "compi/session.h"
#include "obs/journal.h"
#include "sandbox/supervisor.h"
#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::Fig2Site;
using compi::testing::fig2_table;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_isolated_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

/// Fig. 2 with the seeded bug swapped for a REAL segfault: rank 0 raises
/// SIGSEGV when the solver derives y == 77 AND x == 33.  In-process this
/// would kill the whole campaign (and the test binary).  Two nested
/// conditions so a non-focus rank's random draw (~1/500 per input) can't
/// plausibly stumble into the crash and claim the bug record first.
TargetInfo segfaulting_target() {
  TargetInfo info = fig2_target();
  info.name = "fig2_segv";
  info.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    using targets::br;
    using sym::SymInt;
    const SymInt x = ctx.input_int_capped("x", 500);
    const SymInt y = ctx.input_int_capped("y", 500);
    const SymInt rank = world.comm_rank(ctx);
    if (br(ctx, Fig2Site::kXLow, x < SymInt(1))) return;
    if (br(ctx, Fig2Site::kYLow, y < SymInt(1))) return;
    if (br(ctx, Fig2Site::kRankZero, rank == SymInt(0))) {
      if (br(ctx, Fig2Site::kMagic, y == SymInt(77))) {
        if (br(ctx, Fig2Site::kYBig, x == SymInt(33))) {
          (void)std::raise(SIGSEGV);  // the real thing, not ctx.check
        }
      }
    }
    world.barrier();
  };
  return info;
}

/// Rank 0 wedges in an uninstrumented spin (no branch events, no MPI
/// calls) once the solver derives y >= 250.  Evades the step budget and
/// the cooperative deadline; only the supervisor's SIGKILL ends it.
TargetInfo hanging_target() {
  TargetInfo info = fig2_target();
  info.name = "fig2_hang";
  info.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    using targets::br;
    using sym::SymInt;
    const SymInt y = ctx.input_int_capped("y", 500);
    const SymInt rank = world.comm_rank(ctx);
    if (br(ctx, Fig2Site::kRankZero, rank == SymInt(0))) {
      if (br(ctx, Fig2Site::kMagic, y >= SymInt(250))) {
        volatile bool spin = true;
        while (spin) {
        }
      }
    }
    world.barrier();
  };
  return info;
}

CampaignOptions isolated_options() {
  CampaignOptions opts;
  opts.seed = 11;
  opts.iterations = 120;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.dfs_phase_iterations = 30;
  opts.isolate = true;
  return opts;
}

TEST(IsolatedCampaign, RealSegfaultIsContainedAndTheCampaignCompletes) {
  if (!sandbox::sandbox_supported()) GTEST_SKIP() << "no fork()";
  CampaignOptions opts = isolated_options();
  opts.iterations = 300;  // same budget that derives y == 77 in driver_test
  const CampaignResult result = Campaign(segfaulting_target(), opts).run();

  EXPECT_EQ(result.iterations.size(), 300u)
      << "the campaign must survive the crash and run to its budget";
  EXPECT_GT(result.sandbox_runs, 0u);
  EXPECT_GE(result.sandbox_signal_kills, 1u);
  EXPECT_GT(result.sandbox_harvest_bytes, 0u);

  ASSERT_FALSE(result.bugs.empty()) << "y == 77 must be derivable";
  bool found = false;
  for (const BugRecord& bug : result.bugs) {
    if (bug.outcome != rt::Outcome::kSegfault) continue;
    found = true;
    EXPECT_NE(bug.message.find("SIGSEGV"), std::string::npos) << bug.message;
    // Confirmation replays the crash through the sandbox too; it must
    // reproduce, so the bug is NOT flaky.
    EXPECT_FALSE(bug.flaky);
    // The child died before flushing its log, so the error-inducing
    // inputs come from the planned assignment.
    bool y_is_77 = false;
    bool x_is_33 = false;
    for (const auto& [var, value] : bug.named_inputs) {
      if (value == 77) y_is_77 = true;
      if (value == 33) x_is_33 = true;
    }
    EXPECT_TRUE(y_is_77 && x_is_33) << "error-inducing inputs must be logged";
  }
  EXPECT_TRUE(found) << "a kSegfault bug must be recorded";
  // Coverage flushed by doomed children is harvested, not lost: the crash
  // branch itself (kMagic taken) is only ever executed by a dying child.
  EXPECT_GT(result.covered_branches, 0u);
}

TEST(IsolatedCampaign, UninstrumentedHangIsKilledAndTheCampaignCompletes) {
  if (!sandbox::sandbox_supported()) GTEST_SKIP() << "no fork()";
  CampaignOptions opts = isolated_options();
  opts.iterations = 15;
  opts.initial_nprocs = 2;
  opts.max_procs = 2;
  opts.test_timeout = std::chrono::milliseconds(100);
  opts.hang_timeout_ms = 400;  // the watchdog, not the cooperative deadline
  opts.retry_max = 0;          // don't burn retries re-running a real hang
  opts.confirm_bugs = false;   // don't pay the hang twice to confirm it

  const CampaignResult result = Campaign(hanging_target(), opts).run();

  EXPECT_EQ(result.iterations.size(), 15u)
      << "a wedged child must never wedge the campaign";
  EXPECT_GE(result.sandbox_hang_kills, 1u)
      << "y >= 250 is one DFS negation away from any non-hanging path";
  ASSERT_FALSE(result.bugs.empty());
  bool timeout_bug = false;
  for (const BugRecord& bug : result.bugs) {
    if (bug.outcome == rt::Outcome::kTimeout) timeout_bug = true;
  }
  EXPECT_TRUE(timeout_bug) << "the hang kill must surface as kTimeout";
}

/// Strips the volatile columns (hits can differ while a doomed child's
/// harvest races its siblings) down to the attribution identity: branch,
/// covered flag, and first-hit iteration/focus/nprocs/rank.
std::string attribution_fingerprint(const fs::path& dir) {
  std::ostringstream os;
  for (const LedgerCsvRow& row : read_ledger_csv(dir / "ledger.csv")) {
    os << row.branch << ':' << row.covered << ':' << row.first_iteration
       << ':' << row.first_focus << ':' << row.first_nprocs << ':'
       << row.first_rank << '\n';
  }
  return os.str();
}

TEST(IsolatedCampaign, LedgerAttributionMatchesTheInProcessRun) {
  if (!sandbox::sandbox_supported()) GTEST_SKIP() << "no fork()";
  // The same deterministic campaign executed in-process and sandboxed must
  // attribute every branch identically — the sandbox only changes the
  // execution mechanism, and the harvest path must not skew provenance.
  CampaignOptions opts = isolated_options();
  opts.iterations = 40;
  opts.journal = true;

  TempDir in_process_dir;
  CampaignOptions in_process = opts;
  in_process.isolate = false;
  in_process.log_dir = in_process_dir.path.string();
  const CampaignResult a = Campaign(fig2_target(), in_process).run();

  TempDir sandboxed_dir;
  CampaignOptions sandboxed = opts;
  sandboxed.log_dir = sandboxed_dir.path.string();
  const CampaignResult b = Campaign(fig2_target(), sandboxed).run();

  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  EXPECT_EQ(a.covered_branches, b.covered_branches);
  EXPECT_EQ(attribution_fingerprint(in_process_dir.path),
            attribution_fingerprint(sandboxed_dir.path));
}

TEST(IsolatedCampaign, CrashingChildrenKeepJournalAlignedAndAttributed) {
  if (!sandbox::sandbox_supported()) GTEST_SKIP() << "no fork()";
  TempDir dir;
  CampaignOptions opts = isolated_options();
  opts.iterations = 300;
  opts.journal = true;
  opts.log_dir = dir.path.string();
  const CampaignResult result = Campaign(segfaulting_target(), opts).run();

  ASSERT_EQ(result.iterations.size(), 300u);
  ASSERT_GE(result.sandbox_signal_kills, 1u);

  // Every journal line parses; iteration events match iterations.csv rows
  // even though children were dying mid-campaign.
  std::size_t malformed = 0;
  const std::vector<obs::ParsedEvent> events =
      obs::read_journal(dir.path / "journal.jsonl", &malformed);
  EXPECT_EQ(malformed, 0u);
  std::size_t iteration_events = 0, kill_events = 0;
  for (const obs::ParsedEvent& ev : events) {
    if (ev.type == "iteration") ++iteration_events;
    if (ev.type == "sandbox_kill") ++kill_events;
  }
  std::ifstream csv(dir.path / "iterations.csv");
  std::string line;
  std::size_t csv_rows = 0;
  std::getline(csv, line);
  while (std::getline(csv, line)) {
    if (!line.empty()) ++csv_rows;
  }
  EXPECT_EQ(iteration_events, 300u);
  EXPECT_EQ(csv_rows, 300u);
  EXPECT_GE(kill_events, result.sandbox_signal_kills);

  // The crash branch (x == 33 nested under y == 77, site y_big taken) is
  // only ever executed by a child that raises SIGSEGV on the next line:
  // its attribution must come from the MAP_SHARED harvest, flagged as
  // such, and credited to rank 0 (the rank whose stamp is in the map).
  const std::vector<LedgerCsvRow> rows = read_ledger_csv(dir.path /
                                                         "ledger.csv");
  bool found_harvested_crash_arm = false;
  for (const LedgerCsvRow& row : rows) {
    if (row.site == "y_big" && row.arm == 'T' && row.covered) {
      found_harvested_crash_arm = true;
      EXPECT_TRUE(row.first_harvested)
          << "the doomed child's coverage must be credited to the harvest";
      EXPECT_EQ(row.first_rank, 0);
    }
  }
  EXPECT_TRUE(found_harvested_crash_arm)
      << "x == 33 under y == 77 must be derived, covered, and attributed";
}

TEST(IsolatedCampaign, CheckpointResumeCarriesSandboxCounters) {
  if (!sandbox::sandbox_supported()) GTEST_SKIP() << "no fork()";
  TempDir dir;
  CampaignOptions opts = isolated_options();
  opts.iterations = 60;
  opts.checkpoint_interval = 10;
  opts.log_dir = dir.path.string();

  {
    CampaignOptions halted = opts;
    halted.halt_after_iterations = 30;
    const CampaignResult partial = Campaign(fig2_target(), halted).run();
    ASSERT_EQ(partial.iterations.size(), 30u);
    ASSERT_GE(partial.sandbox_runs, 30u);
  }
  const auto snapshot = read_checkpoint(dir.path);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_GE(snapshot->sandbox_runs, 30u)
      << "checkpoint v3 must persist the sandbox accounting";

  CampaignOptions resumed = opts;
  resumed.resume = true;
  const CampaignResult got = Campaign(fig2_target(), resumed).run();
  EXPECT_TRUE(got.resumed);
  EXPECT_EQ(got.iterations.size(), 60u);
  EXPECT_GE(got.sandbox_runs, 60u)
      << "restored counters plus the resumed tail's own runs";
  EXPECT_EQ(got.sandbox_signal_kills, 0u);
  EXPECT_EQ(got.sandbox_hang_kills, 0u);
}

}  // namespace
}  // namespace compi
