// Crash-path regression tests for the fork-server execution engine: a
// grandchild that REALLY segfaults or wedges must map onto the same
// Outcome/harvest the cold sandbox produces — and must leave the server
// alive for the next warm spawn.  Killing the server itself mid-stream
// must cold-fork the in-flight iteration (never lose it), then restart.
#include "sandbox/fork_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>

#include "minimpi/launcher.h"
#include "sandbox/supervisor.h"
#include "tests/compi/fig2_target.h"

namespace compi::sandbox {
namespace {

using compi::testing::Fig2Site;
using compi::testing::fig2_table;
using compi::testing::fig2_target;

minimpi::LaunchSpec make_spec(const TargetInfo& target,
                              rt::VarRegistry& registry,
                              const solver::Assignment& inputs, int nprocs) {
  minimpi::LaunchSpec spec;
  spec.program = target.program;
  spec.nprocs = nprocs;
  spec.focus = 0;
  spec.registry = &registry;
  spec.inputs = &inputs;
  spec.rng_seed = 42;
  spec.timeout = std::chrono::milliseconds(5000);
  return spec;
}

void expect_same_logs(const minimpi::RunResult& a,
                      const minimpi::RunResult& b) {
  EXPECT_EQ(a.job_outcome(), b.job_outcome());
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].outcome, b.ranks[r].outcome) << "rank " << r;
    EXPECT_EQ(a.ranks[r].log.serialize(), b.ranks[r].log.serialize())
        << "rank " << r;
  }
}

/// Rank 0 raises a REAL SIGSEGV when the supplied inputs set x == 33.
/// Input-dependent so the same warm server can run both the crashing and
/// the clean iteration — the snapshot captures the program once.
TargetInfo segv_on_33_target() {
  TargetInfo info = fig2_target();
  info.name = "fig2_segv33";
  info.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    using targets::br;
    using sym::SymInt;
    const SymInt x = ctx.input_int_capped("x", 500);
    const SymInt rank = world.comm_rank(ctx);
    if (br(ctx, Fig2Site::kRankZero, rank == SymInt(0))) {
      if (br(ctx, Fig2Site::kMagic, x == SymInt(33))) {
        (void)std::raise(SIGSEGV);
      }
    }
    world.barrier();
  };
  return info;
}

/// Rank 0 wedges in an uninstrumented spin when x == 250: no branch
/// events, no MPI calls — only the supervisor's SIGKILL ends it.
TargetInfo hang_on_250_target() {
  TargetInfo info = fig2_target();
  info.name = "fig2_hang250";
  info.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    using targets::br;
    using sym::SymInt;
    const SymInt x = ctx.input_int_capped("x", 500);
    const SymInt rank = world.comm_rank(ctx);
    if (br(ctx, Fig2Site::kRankZero, rank == SymInt(0))) {
      if (br(ctx, Fig2Site::kMagic, x == SymInt(250))) {
        volatile bool spin = true;
        while (spin) {
        }
      }
    }
    world.barrier();
  };
  return info;
}

TEST(ForkServer, WarmSpawnReproducesTheInProcessRun) {
  if (!sandbox_supported()) GTEST_SKIP() << "no fork()";
  const TargetInfo target = fig2_target();

  rt::VarRegistry in_proc_registry;
  const solver::Assignment inputs;
  const minimpi::RunResult in_proc = minimpi::launch(
      make_spec(target, in_proc_registry, inputs, 3), *target.table);
  ASSERT_EQ(in_proc.job_outcome(), rt::Outcome::kOk) << in_proc.job_message();

  ForkServer server(*target.table, ForkServerOptions{});
  rt::VarRegistry registry;
  SandboxStats st;
  bool warm = false;
  const minimpi::RunResult got =
      server.run(make_spec(target, registry, inputs, 3), &st, &warm);
  EXPECT_TRUE(warm) << "the very first run already spawns from the snapshot";
  EXPECT_TRUE(st.forked);
  expect_same_logs(in_proc, got);
  EXPECT_EQ(server.stats().warm_spawns, 1u);
  EXPECT_EQ(server.stats().cold_forks, 0u);
  EXPECT_GT(server.stats().last_spawn_seconds, 0.0);

  // Per-iteration parameters must reach the grandchild through the spawn
  // frame, not the stale snapshot: a different seed changes the run.
  rt::VarRegistry reseeded_registry;
  minimpi::LaunchSpec reseeded =
      make_spec(target, reseeded_registry, inputs, 3);
  reseeded.rng_seed = 777;
  const minimpi::RunResult in_proc_777 =
      minimpi::launch(reseeded, *target.table);
  minimpi::LaunchSpec warm_777 = make_spec(target, registry, inputs, 3);
  warm_777.rng_seed = 777;
  const minimpi::RunResult got_777 = server.run(warm_777, nullptr, &warm);
  EXPECT_TRUE(warm);
  expect_same_logs(in_proc_777, got_777);
  EXPECT_EQ(server.stats().warm_spawns, 2u);
}

TEST(ForkServer, GrandchildSegfaultMapsOutcomeAndServerSurvives) {
  if (!sandbox_supported()) GTEST_SKIP() << "no fork()";
  const TargetInfo target = segv_on_33_target();
  ForkServer server(*target.table, ForkServerOptions{});
  rt::VarRegistry registry;

  solver::Assignment crash_inputs;
  crash_inputs[0] = 33;  // "x" is the program's first intern => var id 0
  SandboxStats st;
  bool warm = false;
  const minimpi::RunResult crashed =
      server.run(make_spec(target, registry, crash_inputs, 2), &st, &warm);
  EXPECT_TRUE(warm);
  EXPECT_TRUE(st.signal_kill);
  EXPECT_EQ(st.term_signal, SIGSEGV);
  EXPECT_FALSE(st.hang_kill);
  EXPECT_EQ(crashed.job_outcome(), rt::Outcome::kSegfault)
      << crashed.job_message();
  EXPECT_NE(crashed.job_message().find("SIGSEGV"), std::string::npos)
      << crashed.job_message();
  // The branches rank 0 executed on its way to the crash were flushed to
  // the MAP_SHARED mirror and harvested from the dead grandchild.
  EXPECT_FALSE(st.harvested.empty());
  EXPECT_GT(st.harvest_bytes, 0u);

  // The server must still be live: the next iteration is warm and clean.
  solver::Assignment clean_inputs;
  clean_inputs[0] = 1;
  SandboxStats st2;
  const minimpi::RunResult clean =
      server.run(make_spec(target, registry, clean_inputs, 2), &st2, &warm);
  EXPECT_TRUE(warm) << "a grandchild crash must not take the server down";
  EXPECT_FALSE(st2.signal_kill);
  EXPECT_EQ(clean.job_outcome(), rt::Outcome::kOk) << clean.job_message();
  EXPECT_EQ(server.stats().restarts, 0u);
  EXPECT_EQ(server.stats().warm_spawns, 2u);
}

TEST(ForkServer, GrandchildAbortMapsToAssert) {
  if (!sandbox_supported()) GTEST_SKIP() << "no fork()";
  TargetInfo target = fig2_target();
  target.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    using targets::br;
    using sym::SymInt;
    const SymInt x = ctx.input_int_capped("x", 500);
    const SymInt rank = world.comm_rank(ctx);
    if (br(ctx, Fig2Site::kRankZero, rank == SymInt(0))) {
      if (br(ctx, Fig2Site::kMagic, x == SymInt(33))) {
        (void)std::raise(SIGABRT);
      }
    }
    world.barrier();
  };
  ForkServer server(*target.table, ForkServerOptions{});
  rt::VarRegistry registry;
  solver::Assignment inputs;
  inputs[0] = 33;
  SandboxStats st;
  bool warm = false;
  const minimpi::RunResult got =
      server.run(make_spec(target, registry, inputs, 2), &st, &warm);
  EXPECT_TRUE(warm);
  EXPECT_TRUE(st.signal_kill);
  EXPECT_EQ(st.term_signal, SIGABRT);
  EXPECT_EQ(got.job_outcome(), outcome_for_signal(SIGABRT));
}

TEST(ForkServer, GrandchildHangIsKilledAndServerSurvives) {
  if (!sandbox_supported()) GTEST_SKIP() << "no fork()";
  const TargetInfo target = hang_on_250_target();
  ForkServerOptions options;
  options.sandbox.hang_timeout = std::chrono::milliseconds(400);
  ForkServer server(*target.table, options);
  rt::VarRegistry registry;

  solver::Assignment hang_inputs;
  hang_inputs[0] = 250;
  SandboxStats st;
  bool warm = false;
  minimpi::LaunchSpec spec = make_spec(target, registry, hang_inputs, 2);
  spec.timeout = std::chrono::milliseconds(100);
  const minimpi::RunResult hung = server.run(spec, &st, &warm);
  EXPECT_TRUE(warm);
  EXPECT_TRUE(st.hang_kill) << "the watchdog must SIGKILL the grandchild";
  EXPECT_FALSE(st.signal_kill);
  EXPECT_EQ(hung.job_outcome(), rt::Outcome::kTimeout) << hung.job_message();

  solver::Assignment clean_inputs;
  clean_inputs[0] = 1;
  SandboxStats st2;
  minimpi::LaunchSpec clean_spec =
      make_spec(target, registry, clean_inputs, 2);
  const minimpi::RunResult clean = server.run(clean_spec, &st2, &warm);
  EXPECT_TRUE(warm) << "a hang kill must not take the server down";
  EXPECT_EQ(clean.job_outcome(), rt::Outcome::kOk) << clean.job_message();
  EXPECT_EQ(server.stats().restarts, 0u);
}

TEST(ForkServer, ServerDeathColdForksTheIterationThenRestarts) {
  if (!sandbox_supported()) GTEST_SKIP() << "no fork()";
  const TargetInfo target = fig2_target();
  ForkServer server(*target.table, ForkServerOptions{});
  rt::VarRegistry registry;
  const solver::Assignment inputs;

  bool warm = false;
  const minimpi::RunResult first =
      server.run(make_spec(target, registry, inputs, 3), nullptr, &warm);
  ASSERT_TRUE(warm);
  ASSERT_EQ(first.job_outcome(), rt::Outcome::kOk);

  // Murder the server out from under the supervisor, mid-campaign.
  const long pid = server.server_pid();
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(pid), SIGKILL), 0);

  // The in-flight iteration is never lost: it falls back to a cold fork
  // and still produces the deterministic result.
  SandboxStats st;
  const minimpi::RunResult fallback =
      server.run(make_spec(target, registry, inputs, 3), &st, &warm);
  EXPECT_FALSE(warm) << "a dead server cannot have spawned this run";
  EXPECT_TRUE(st.forked) << "the fallback is a cold fork, not in-process";
  expect_same_logs(first, fallback);
  EXPECT_EQ(server.stats().restarts, 1u);
  EXPECT_EQ(server.stats().cold_forks, 1u);
  EXPECT_FALSE(server.degraded());

  // The next run restarts the server and is warm again.
  const minimpi::RunResult revived =
      server.run(make_spec(target, registry, inputs, 3), nullptr, &warm);
  EXPECT_TRUE(warm) << "within budget, a death is followed by a restart";
  expect_same_logs(first, revived);
  EXPECT_EQ(server.stats().warm_spawns, 2u);
}

TEST(ForkServer, DegradesToColdForksOnceRestartBudgetIsSpent) {
  if (!sandbox_supported()) GTEST_SKIP() << "no fork()";
  const TargetInfo target = fig2_target();
  ForkServerOptions options;
  options.max_restarts = 0;  // the first death already exhausts the budget
  ForkServer server(*target.table, options);
  rt::VarRegistry registry;
  const solver::Assignment inputs;

  bool warm = false;
  (void)server.run(make_spec(target, registry, inputs, 2), nullptr, &warm);
  ASSERT_TRUE(warm);
  ASSERT_EQ(::kill(static_cast<pid_t>(server.server_pid()), SIGKILL), 0);

  const minimpi::RunResult fallback =
      server.run(make_spec(target, registry, inputs, 2), nullptr, &warm);
  EXPECT_FALSE(warm);
  EXPECT_EQ(fallback.job_outcome(), rt::Outcome::kOk);
  EXPECT_TRUE(server.degraded());
  EXPECT_EQ(server.server_pid(), -1);

  // Degraded means cold forever: no new server, every run still correct.
  SandboxStats st;
  const minimpi::RunResult cold =
      server.run(make_spec(target, registry, inputs, 2), &st, &warm);
  EXPECT_FALSE(warm);
  EXPECT_TRUE(st.forked);
  EXPECT_EQ(cold.job_outcome(), rt::Outcome::kOk);
  EXPECT_EQ(server.stats().warm_spawns, 1u);
  EXPECT_EQ(server.stats().cold_forks, 2u);
  EXPECT_EQ(server.stats().restarts, 1u);
}

TEST(ForkServer, BatchGateEarnsInProcessAfterWarmupAndDemotesOnFault) {
  BatchGate gate(3);
  EXPECT_FALSE(gate.ready());
  gate.record_clean();
  gate.record_clean();
  EXPECT_FALSE(gate.ready()) << "two of three clean runs is not a streak";
  gate.record_clean();
  EXPECT_TRUE(gate.ready());
  gate.record_clean();  // saturates, never overflows
  EXPECT_TRUE(gate.ready());
  gate.record_fault();
  EXPECT_FALSE(gate.ready()) << "any fault demotes back to the sandbox";
  gate.record_clean();
  gate.record_clean();
  gate.record_clean();
  EXPECT_TRUE(gate.ready()) << "the streak can be re-earned";
}

TEST(ForkServer, RunBatchResetMatchesTheInProcessLauncher) {
  const TargetInfo target = fig2_target();
  rt::VarRegistry registry_a;
  const solver::Assignment inputs;
  const minimpi::RunResult in_proc = minimpi::launch(
      make_spec(target, registry_a, inputs, 4), *target.table);

  rt::VarRegistry registry_b;
  const minimpi::RunResult batched = run_batch_reset(
      make_spec(target, registry_b, inputs, 4), *target.table);
  expect_same_logs(in_proc, batched);
  EXPECT_GT(batched.wall_seconds, 0.0);
}

}  // namespace
}  // namespace compi::sandbox
