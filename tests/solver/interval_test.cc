#include "solver/interval.h"

#include <gtest/gtest.h>

#include <limits>

namespace compi::solver {
namespace {

constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
constexpr auto kMin = std::numeric_limits<std::int64_t>::min();

TEST(SatArithmetic, AddWithinRange) {
  EXPECT_EQ(sat_add(2, 3), 5);
  EXPECT_EQ(sat_add(-2, 3), 1);
  EXPECT_EQ(sat_add(0, 0), 0);
}

TEST(SatArithmetic, AddSaturatesHigh) {
  EXPECT_EQ(sat_add(kMax, 1), kMax);
  EXPECT_EQ(sat_add(kMax - 1, 5), kMax);
}

TEST(SatArithmetic, AddSaturatesLow) {
  EXPECT_EQ(sat_add(kMin, -1), kMin);
  EXPECT_EQ(sat_add(kMin + 2, -10), kMin);
}

TEST(SatArithmetic, MulWithinRange) {
  EXPECT_EQ(sat_mul(7, 6), 42);
  EXPECT_EQ(sat_mul(-7, 6), -42);
  EXPECT_EQ(sat_mul(0, kMax), 0);
}

TEST(SatArithmetic, MulSaturates) {
  EXPECT_EQ(sat_mul(kMax, 2), kMax);
  EXPECT_EQ(sat_mul(kMax, -2), kMin);
  EXPECT_EQ(sat_mul(kMin, 2), kMin);
  EXPECT_EQ(sat_mul(kMin, -1), kMax);
  EXPECT_EQ(sat_mul(-1, kMin), kMax);
}

TEST(FloorCeilDiv, RoundsTowardCorrectInfinity) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(7, -2), -3);
  EXPECT_EQ(ceil_div(-7, -2), 4);
}

TEST(FloorCeilDiv, ExactDivision) {
  EXPECT_EQ(floor_div(8, 2), 4);
  EXPECT_EQ(ceil_div(8, 2), 4);
  EXPECT_EQ(floor_div(-8, 2), -4);
  EXPECT_EQ(ceil_div(-8, 2), -4);
}

TEST(Interval, EmptinessAndWidth) {
  EXPECT_TRUE(Interval::empty().is_empty());
  EXPECT_FALSE(Interval::all().is_empty());
  EXPECT_EQ(Interval::point(5).width(), 1u);
  EXPECT_EQ((Interval{1, 10}).width(), 10u);
  EXPECT_EQ(Interval::empty().width(), 0u);
}

TEST(Interval, Contains) {
  const Interval iv{-3, 7};
  EXPECT_TRUE(iv.contains(-3));
  EXPECT_TRUE(iv.contains(0));
  EXPECT_TRUE(iv.contains(7));
  EXPECT_FALSE(iv.contains(-4));
  EXPECT_FALSE(iv.contains(8));
}

TEST(Interval, Intersect) {
  const Interval a{0, 10};
  const Interval b{5, 20};
  EXPECT_EQ(a.intersect(b), (Interval{5, 10}));
  EXPECT_TRUE(a.intersect(Interval{11, 20}).is_empty());
}

TEST(Interval, Sum) {
  const Interval a{1, 2};
  const Interval b{10, 20};
  EXPECT_EQ(a + b, (Interval{11, 22}));
  EXPECT_TRUE((Interval::empty() + a).is_empty());
}

TEST(Interval, ScaledPositiveNegativeZero) {
  const Interval iv{-2, 3};
  EXPECT_EQ(iv.scaled(2), (Interval{-4, 6}));
  EXPECT_EQ(iv.scaled(-2), (Interval{-6, 4}));
  EXPECT_EQ(iv.scaled(0), (Interval{0, 0}));
}

TEST(Interval, ScaledSaturates) {
  const Interval iv{kMin / 2, kMax / 2};
  const Interval s = iv.scaled(4);
  EXPECT_EQ(s.lo, kMin);
  EXPECT_EQ(s.hi, kMax);
}

TEST(Interval, Int32Domain) {
  const Interval d = int32_domain();
  EXPECT_EQ(d.lo, std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(d.hi, std::numeric_limits<std::int32_t>::max());
}

}  // namespace
}  // namespace compi::solver
