#include "solver/predicate.h"

#include <gtest/gtest.h>

namespace compi::solver {
namespace {

TEST(CompareOp, NegationIsInvolution) {
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNeq, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_EQ(negate(negate(op)), op);
  }
}

TEST(CompareOp, NegationPairs) {
  EXPECT_EQ(negate(CompareOp::kEq), CompareOp::kNeq);
  EXPECT_EQ(negate(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(negate(CompareOp::kLe), CompareOp::kGt);
}

TEST(Predicate, HoldsEvaluation) {
  // x0 - 5 <= 0
  const Predicate p{LinearExpr(0, 1, -5), CompareOp::kLe};
  EXPECT_TRUE(p.holds([](Var) { return 5; }));
  EXPECT_TRUE(p.holds([](Var) { return -100; }));
  EXPECT_FALSE(p.holds([](Var) { return 6; }));
}

TEST(Predicate, NegatedFlipsSatisfaction) {
  const Predicate p{LinearExpr(0, 1, -5), CompareOp::kLt};
  const Predicate n = p.negated();
  for (std::int64_t v : {-10, 0, 4, 5, 6, 100}) {
    EXPECT_NE(p.holds([v](Var) { return v; }), n.holds([v](Var) { return v; }))
        << "value " << v;
  }
}

TEST(Predicate, BuildersEncodeCorrectRelations) {
  auto value = [](Var v) { return v == 0 ? 3 : 7; };  // x0=3, x1=7
  EXPECT_FALSE(make_eq(0, 1).holds(value));
  EXPECT_TRUE(make_lt(0, 1).holds(value));
  EXPECT_TRUE(make_ge_const(0, 3).holds(value));
  EXPECT_FALSE(make_ge_const(0, 4).holds(value));
  EXPECT_TRUE(make_le_const(0, 3).holds(value));
  EXPECT_FALSE(make_le_const(0, 2).holds(value));
  EXPECT_TRUE(make_lt_const(1, 8).holds(value));
  EXPECT_FALSE(make_lt_const(1, 7).holds(value));
  EXPECT_TRUE(make_eq_const(0, 3).holds(value));
}

TEST(Predicate, EveryOpHoldsMatrix) {
  // expr = x0 (so "x0 op 0")
  const LinearExpr x = LinearExpr::variable(0);
  struct Case {
    CompareOp op;
    bool at_neg, at_zero, at_pos;
  };
  const Case cases[] = {
      {CompareOp::kEq, false, true, false},
      {CompareOp::kNeq, true, false, true},
      {CompareOp::kLt, true, false, false},
      {CompareOp::kLe, true, true, false},
      {CompareOp::kGt, false, false, true},
      {CompareOp::kGe, false, true, true},
  };
  for (const Case& c : cases) {
    const Predicate p{x, c.op};
    EXPECT_EQ(p.holds([](Var) { return -1; }), c.at_neg) << to_string(c.op);
    EXPECT_EQ(p.holds([](Var) { return 0; }), c.at_zero) << to_string(c.op);
    EXPECT_EQ(p.holds([](Var) { return 1; }), c.at_pos) << to_string(c.op);
  }
}

TEST(Predicate, ToString) {
  const Predicate p{LinearExpr(0, 1, -5), CompareOp::kLt};
  EXPECT_EQ(p.to_string(), "x0 - 5 < 0");
}

}  // namespace
}  // namespace compi::solver
