// Edge cases for the solver: overflow-adjacent arithmetic, budget
// exhaustion, degenerate systems, and large-coefficient propagation.
#include <gtest/gtest.h>

#include "solver/solver.h"

namespace compi::solver {
namespace {

TEST(SolverEdge, EmptyConstraintSetIsTriviallySat) {
  Solver s;
  const auto a = s.solve({}, {});
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->empty());
}

TEST(SolverEdge, EmptyIncrementalKeepsPrevious) {
  Solver s;
  const SolveResult r = s.solve_incremental({}, {}, {{0, 42}});
  EXPECT_TRUE(r.sat);
  EXPECT_EQ(r.values.at(0), 42);
  EXPECT_TRUE(r.changed.empty());
}

TEST(SolverEdge, ContradictoryEqualitiesUnsat) {
  Solver s;
  std::vector<Predicate> preds{make_eq_const(0, 3), make_eq_const(0, 4)};
  EXPECT_FALSE(s.solve(preds, {}).has_value());
}

TEST(SolverEdge, ChainOfEqualitiesPropagates) {
  Solver s;
  std::vector<Predicate> preds;
  constexpr int kChain = 30;
  for (Var v = 0; v + 1 < kChain; ++v) preds.push_back(make_eq(v, v + 1));
  preds.push_back(make_eq_const(kChain - 1, 7));
  const auto a = s.solve(preds, {});
  ASSERT_TRUE(a.has_value());
  for (Var v = 0; v < kChain; ++v) EXPECT_EQ(a->at(v), 7) << v;
}

TEST(SolverEdge, LargeCoefficientsDoNotOverflow) {
  Solver s;
  // 1000000 * x0 <= 5  with x0 in int32 domain: x0 <= 0.
  std::vector<Predicate> preds{
      {LinearExpr(0, 1'000'000, -5), CompareOp::kLe},
      make_ge_const(0, -3)};
  const auto a = s.solve(preds, {});
  ASSERT_TRUE(a.has_value());
  EXPECT_LE(a->at(0), 0);
  EXPECT_GE(a->at(0), -3);
}

TEST(SolverEdge, SearchBudgetExhaustionReportsUnsolved) {
  // A system propagation cannot crack and the budget cannot search:
  // x0 + x1 == huge odd combos over a big domain with a tiny node budget.
  Solver s(SolverOptions{.max_search_nodes = 1, .exhaustive_width = 2});
  LinearExpr e = LinearExpr::variable(0);
  e.add_term(1, 7);
  e.add_constant(-123457);
  LinearExpr e2 = LinearExpr::variable(0);
  e2.add_term(1, -13);
  e2.add_constant(-17);
  std::vector<Predicate> preds{{e, CompareOp::kEq}, {e2, CompareOp::kGe},
                               {LinearExpr(0, 3, -1), CompareOp::kNeq}};
  // Whatever it returns must be honest: either nullopt or a real model.
  const auto a = s.solve(preds, {});
  if (a) {
    for (const Predicate& p : preds) {
      EXPECT_TRUE(p.holds([&](Var v) { return a->at(v); }));
    }
  }
}

TEST(SolverEdge, StrictInequalityOverIntegersIsTight) {
  Solver s;
  std::vector<Predicate> preds{make_lt_const(0, 5), make_ge_const(0, 4)};
  const auto a = s.solve(preds, {});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->at(0), 4);
}

TEST(SolverEdge, NeqAgainstWholeSmallDomainUnsat) {
  Solver s;
  std::vector<Predicate> preds{
      {LinearExpr(0, 1, 0), CompareOp::kNeq},   // x != 0
      {LinearExpr(0, 1, -1), CompareOp::kNeq},  // x != 1
  };
  DomainMap domains{{0, {0, 1}}};
  EXPECT_FALSE(s.solve(preds, domains).has_value());
}

TEST(SolverEdge, PreferOutsideDomainIsIgnored) {
  Solver s;
  std::vector<Predicate> preds{make_ge_const(0, 0)};
  DomainMap domains{{0, {5, 9}}};
  const auto a = s.solve(preds, domains, {{0, 100}});
  ASSERT_TRUE(a.has_value());
  EXPECT_GE(a->at(0), 5);
  EXPECT_LE(a->at(0), 9);
}

TEST(SolverEdge, ManyIndependentVariablesScale) {
  Solver s;
  std::vector<Predicate> preds;
  constexpr int kN = 300;
  for (Var v = 0; v < kN; ++v) {
    preds.push_back(make_ge_const(v, v));
    preds.push_back(make_le_const(v, v + 2));
  }
  const auto a = s.solve(preds, {});
  ASSERT_TRUE(a.has_value());
  for (Var v = 0; v < kN; ++v) {
    EXPECT_GE(a->at(v), v);
    EXPECT_LE(a->at(v), v + 2);
  }
}

TEST(SolverEdge, IncrementalSliceStaysSmallOnIndependentSystem) {
  // Sanity on the dependency partition itself: with 1000 independent
  // constraints, the slice of the last one has exactly one element.
  std::vector<Predicate> preds;
  for (Var v = 0; v < 1000; ++v) preds.push_back(make_le_const(v, 10));
  const auto slice = Solver::dependency_slice(preds, 999);
  EXPECT_EQ(slice.size(), 1u);
  EXPECT_EQ(slice[0], 999u);
}

}  // namespace
}  // namespace compi::solver
