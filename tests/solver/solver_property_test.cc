// Property-based solver validation (randomized, brute-force cross-checked).
//
// ~1000 random linear-predicate systems over small bounded domains, each
// checked against exhaustive enumeration: the solver must agree on
// SAT/UNSAT, and every SAT model must actually satisfy the system inside
// its domains.  The same harness then asserts the memoization-cache
// equivalence contract from solver/cache.h: cache-off, cold-cache, and
// warm-cache (hit) calls must return bit-identical SolveResults — the hit
// merely skips the search (nodes_searched == 0, cache_hit == true).
//
// Reproducibility: the base seed comes from COMPI_PROPERTY_SEED when set.
// Every failing case appends its per-case seed to property_seeds.txt in
// the working directory (uploaded as a CI artifact on failure), and re-run
// with COMPI_PROPERTY_SEED=<that value> generates exactly that case first.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <random>
#include <vector>

#include "solver/cache.h"
#include "solver/solver.h"

namespace compi::solver {
namespace {

std::uint64_t base_seed() {
  if (const char* env = std::getenv("COMPI_PROPERTY_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5eedf00dULL;
}

void log_failing_seed(std::uint64_t case_seed) {
  std::ofstream out("property_seeds.txt", std::ios::app);
  out << case_seed << '\n';
}

struct RandomSystem {
  std::vector<Predicate> preds;
  DomainMap domains;
  std::vector<Var> vars;
};

/// A small random conjunction: 2-4 variables with domains of width <= 8,
/// 1-5 predicates of 1-3 terms each.  The search space stays enumerable
/// (<= 9^4 points) so brute force is exact and fast.
RandomSystem make_system(std::mt19937_64& rng) {
  RandomSystem sys;
  std::uniform_int_distribution<int> nvars_dist(2, 4);
  std::uniform_int_distribution<int> npreds_dist(1, 5);
  std::uniform_int_distribution<std::int64_t> lo_dist(-5, 5);
  std::uniform_int_distribution<std::int64_t> width_dist(0, 8);
  std::uniform_int_distribution<std::int64_t> coeff_dist(-3, 3);
  std::uniform_int_distribution<std::int64_t> const_dist(-10, 10);
  std::uniform_int_distribution<int> op_dist(0, 5);

  const int nvars = nvars_dist(rng);
  for (Var v = 0; v < nvars; ++v) {
    const std::int64_t lo = lo_dist(rng);
    sys.domains[v] = Interval{lo, lo + width_dist(rng)};
    sys.vars.push_back(v);
  }
  const int npreds = npreds_dist(rng);
  for (int i = 0; i < npreds; ++i) {
    Predicate p;
    p.op = static_cast<CompareOp>(op_dist(rng));
    std::uniform_int_distribution<int> nterms_dist(1, nvars > 3 ? 3 : nvars);
    const int nterms = nterms_dist(rng);
    for (int t = 0; t < nterms; ++t) {
      std::int64_t coeff = coeff_dist(rng);
      if (coeff == 0) coeff = 1;
      p.expr.add_term(static_cast<Var>(
                          std::uniform_int_distribution<int>(
                              0, nvars - 1)(rng)),
                      coeff);
    }
    p.expr.add_constant(const_dist(rng));
    // Term cancellation can empty the expression; keep it as a ground
    // predicate anyway (the solver must handle those too).
    sys.preds.push_back(std::move(p));
  }
  return sys;
}

/// Exhaustive enumeration over the (small) domain product.
bool brute_force_sat(const RandomSystem& sys) {
  std::vector<std::int64_t> point(sys.vars.size());
  const auto holds_all = [&] {
    for (const Predicate& p : sys.preds) {
      if (!p.holds([&](Var v) { return point[static_cast<size_t>(v)]; })) {
        return false;
      }
    }
    return true;
  };
  // Odometer over the domains.
  for (std::size_t i = 0; i < sys.vars.size(); ++i) {
    point[i] = sys.domains.at(sys.vars[i]).lo;
  }
  for (;;) {
    if (holds_all()) return true;
    std::size_t i = 0;
    for (; i < sys.vars.size(); ++i) {
      const Interval dom = sys.domains.at(sys.vars[i]);
      if (point[i] < dom.hi) {
        ++point[i];
        break;
      }
      point[i] = dom.lo;
    }
    if (i == sys.vars.size()) return false;
  }
}

constexpr int kCases = 1000;

TEST(SolverProperty, AgreesWithBruteForceEnumeration) {
  const std::uint64_t seed = base_seed();
  Solver the_solver;
  for (int i = 0; i < kCases; ++i) {
    const std::uint64_t case_seed = seed + static_cast<std::uint64_t>(i);
    std::mt19937_64 rng(case_seed);
    const RandomSystem sys = make_system(rng);

    const bool expected = brute_force_sat(sys);
    bool exhausted = false;
    const std::optional<Assignment> got =
        the_solver.solve(sys.preds, sys.domains, {}, &exhausted);
    ASSERT_FALSE(exhausted) << "tiny system tripped the node budget, "
                               "case_seed=" << case_seed;
    if (got.has_value() != expected) {
      log_failing_seed(case_seed);
      FAIL() << "solver says " << (got ? "SAT" : "UNSAT")
             << ", brute force says " << (expected ? "SAT" : "UNSAT")
             << ", case_seed=" << case_seed;
    }
    if (got) {
      // The model must satisfy every predicate inside its domain.
      for (const auto& [v, value] : *got) {
        const Interval dom = domain_of(sys.domains, v);
        if (value < dom.lo || value > dom.hi) {
          log_failing_seed(case_seed);
          FAIL() << "model value " << value << " outside domain of var "
                 << v << ", case_seed=" << case_seed;
        }
      }
      for (const Predicate& p : sys.preds) {
        if (!p.holds([&](Var v) { return got->at(v); })) {
          log_failing_seed(case_seed);
          FAIL() << "model violates " << p.to_string()
                 << ", case_seed=" << case_seed;
        }
      }
    }
  }
}

/// A random "previous" assignment inside the domains: exercises the
/// prefer-value search order, which the cache key must capture.
Assignment random_previous(const RandomSystem& sys, std::mt19937_64& rng) {
  Assignment prev;
  for (Var v : sys.vars) {
    if (std::uniform_int_distribution<int>(0, 2)(rng) == 0) continue;
    const Interval dom = sys.domains.at(v);
    prev[v] = std::uniform_int_distribution<std::int64_t>(dom.lo,
                                                          dom.hi)(rng);
  }
  return prev;
}

void expect_same_result(const SolveResult& a, const SolveResult& b,
                        std::uint64_t case_seed, const char* what) {
  EXPECT_EQ(a.sat, b.sat) << what << ", case_seed=" << case_seed;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted)
      << what << ", case_seed=" << case_seed;
  EXPECT_EQ(a.changed, b.changed) << what << ", case_seed=" << case_seed;
  EXPECT_EQ(a.values.size(), b.values.size())
      << what << ", case_seed=" << case_seed;
  for (const auto& [v, value] : a.values) {
    auto it = b.values.find(v);
    ASSERT_NE(it, b.values.end())
        << what << " missing var " << v << ", case_seed=" << case_seed;
    EXPECT_EQ(value, it->second)
        << what << " var " << v << ", case_seed=" << case_seed;
  }
}

TEST(SolverProperty, CacheOnAndOffReturnIdenticalResults) {
  const std::uint64_t seed = base_seed() ^ 0xcac4e000ULL;
  Solver the_solver;
  SolveCache cache(256);
  for (int i = 0; i < kCases; ++i) {
    const std::uint64_t case_seed = seed + static_cast<std::uint64_t>(i);
    std::mt19937_64 rng(case_seed);
    const RandomSystem sys = make_system(rng);
    const Assignment prev = random_previous(sys, rng);

    const SolveResult plain =
        the_solver.solve_incremental(sys.preds, sys.domains, prev, nullptr);
    const SolveResult cold =
        the_solver.solve_incremental(sys.preds, sys.domains, prev, &cache);
    const SolveResult warm =
        the_solver.solve_incremental(sys.preds, sys.domains, prev, &cache);

    if (testing::Test::HasFailure()) break;
    expect_same_result(plain, cold, case_seed, "cache-off vs cold");
    expect_same_result(plain, warm, case_seed, "cache-off vs warm");
    // Definitive answers must come back as hits that skipped the search.
    // (No cold-call miss assertion: two cases can normalize to the same
    // key, in which case the "cold" call hitting is correct behaviour.)
    if (!plain.budget_exhausted) {
      EXPECT_TRUE(warm.cache_hit) << "case_seed=" << case_seed;
      EXPECT_EQ(warm.nodes_searched, 0) << "case_seed=" << case_seed;
    }
    if (testing::Test::HasFailure()) {
      log_failing_seed(case_seed);
      break;
    }
  }
  EXPECT_GT(cache.hits(), 0);
  EXPECT_GT(cache.misses(), 0);
}

TEST(SolverProperty, CacheEvictsPastCapacityAndStaysCorrect) {
  const std::uint64_t seed = base_seed() ^ 0xbeefULL;
  Solver the_solver;
  SolveCache cache(8);  // tiny: force constant eviction
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t case_seed = seed + static_cast<std::uint64_t>(i);
    std::mt19937_64 rng(case_seed);
    const RandomSystem sys = make_system(rng);
    const Assignment prev = random_previous(sys, rng);
    const SolveResult plain =
        the_solver.solve_incremental(sys.preds, sys.domains, prev, nullptr);
    const SolveResult cached =
        the_solver.solve_incremental(sys.preds, sys.domains, prev, &cache);
    expect_same_result(plain, cached, case_seed, "evicting cache");
    if (testing::Test::HasFailure()) {
      log_failing_seed(case_seed);
      break;
    }
  }
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.evictions(), 0);
}

}  // namespace
}  // namespace compi::solver
