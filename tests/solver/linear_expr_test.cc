#include "solver/linear_expr.h"

#include <gtest/gtest.h>

namespace compi::solver {
namespace {

std::int64_t val(Var v) { return v * 10; }  // x0=0, x1=10, x2=20, ...

TEST(LinearExpr, ConstantOnly) {
  const LinearExpr e(42);
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.constant_part(), 42);
  EXPECT_EQ(e.evaluate(val), 42);
}

TEST(LinearExpr, SingleVariable) {
  const LinearExpr e = LinearExpr::variable(2);
  EXPECT_FALSE(e.is_constant());
  EXPECT_EQ(e.coeff_of(2), 1);
  EXPECT_EQ(e.coeff_of(1), 0);
  EXPECT_EQ(e.evaluate(val), 20);
}

TEST(LinearExpr, AddTermMergesAndCancels) {
  LinearExpr e;
  e.add_term(3, 5);
  e.add_term(3, -2);
  EXPECT_EQ(e.coeff_of(3), 3);
  e.add_term(3, -3);
  EXPECT_TRUE(e.is_constant());  // cancelled term dropped
}

TEST(LinearExpr, TermsStaySorted) {
  LinearExpr e;
  e.add_term(5, 1);
  e.add_term(1, 1);
  e.add_term(3, 1);
  ASSERT_EQ(e.num_terms(), 3u);
  EXPECT_EQ(e.terms()[0].var, 1);
  EXPECT_EQ(e.terms()[1].var, 3);
  EXPECT_EQ(e.terms()[2].var, 5);
}

TEST(LinearExpr, Addition) {
  LinearExpr a(1, 2, 5);   // 2*x1 + 5
  LinearExpr b(2, 3, -1);  // 3*x2 - 1
  const LinearExpr s = a + b;
  EXPECT_EQ(s.coeff_of(1), 2);
  EXPECT_EQ(s.coeff_of(2), 3);
  EXPECT_EQ(s.constant_part(), 4);
  EXPECT_EQ(s.evaluate(val), 2 * 10 + 3 * 20 + 4);
}

TEST(LinearExpr, Subtraction) {
  LinearExpr a(1, 2, 5);
  LinearExpr b(1, 2, 1);
  const LinearExpr d = a - b;
  EXPECT_TRUE(d.is_constant());
  EXPECT_EQ(d.constant_part(), 4);
}

TEST(LinearExpr, ScalarMultiply) {
  LinearExpr e(1, 2, 5);
  e *= 3;
  EXPECT_EQ(e.coeff_of(1), 6);
  EXPECT_EQ(e.constant_part(), 15);
  e *= 0;
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.constant_part(), 0);
}

TEST(LinearExpr, Negated) {
  const LinearExpr e(1, 2, 5);
  const LinearExpr n = e.negated();
  EXPECT_EQ(n.coeff_of(1), -2);
  EXPECT_EQ(n.constant_part(), -5);
}

TEST(LinearExpr, CollectVarsSortedUnique) {
  LinearExpr a(4, 1);
  a.add_term(1, 2);
  LinearExpr b(1, 7);
  std::vector<Var> vars;
  a.collect_vars(vars);
  b.collect_vars(vars);
  EXPECT_EQ(vars, (std::vector<Var>{1, 4}));
}

TEST(LinearExpr, ToStringReadable) {
  LinearExpr e(0, 2, -3);
  e.add_term(1, -1);
  EXPECT_EQ(e.to_string(), "2*x0 - x1 - 3");
  EXPECT_EQ(LinearExpr(7).to_string(), "7");
}

}  // namespace
}  // namespace compi::solver
