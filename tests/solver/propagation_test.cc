#include "solver/propagation.h"

#include <gtest/gtest.h>

namespace compi::solver {
namespace {

TEST(Propagation, SingleVarUpperBound) {
  // x0 - 5 <= 0  =>  x0 <= 5
  std::vector<Predicate> preds{{LinearExpr(0, 1, -5), CompareOp::kLe}};
  DomainMap domains;
  EXPECT_TRUE(propagate(preds, domains).consistent);
  EXPECT_EQ(domains[0].hi, 5);
}

TEST(Propagation, SingleVarStrictLower) {
  // x0 - 2 > 0  =>  x0 >= 3 over integers
  std::vector<Predicate> preds{{LinearExpr(0, 1, -2), CompareOp::kGt}};
  DomainMap domains;
  EXPECT_TRUE(propagate(preds, domains).consistent);
  EXPECT_EQ(domains[0].lo, 3);
}

TEST(Propagation, NegativeCoefficientFlipsBound) {
  // -2*x0 + 6 >= 0  =>  x0 <= 3
  std::vector<Predicate> preds{{LinearExpr(0, -2, 6), CompareOp::kGe}};
  DomainMap domains;
  EXPECT_TRUE(propagate(preds, domains).consistent);
  EXPECT_EQ(domains[0].hi, 3);
}

TEST(Propagation, EqualityPinsValue) {
  std::vector<Predicate> preds{{LinearExpr(0, 1, -7), CompareOp::kEq}};
  DomainMap domains;
  EXPECT_TRUE(propagate(preds, domains).consistent);
  EXPECT_EQ(domains[0], Interval::point(7));
}

TEST(Propagation, TwoVarChainTightensBoth) {
  // x0 - x1 < 0 and x1 - 10 <= 0 and x0 >= 0
  std::vector<Predicate> preds{
      make_lt(0, 1), make_le_const(1, 10), make_ge_const(0, 0)};
  DomainMap domains;
  EXPECT_TRUE(propagate(preds, domains).consistent);
  EXPECT_EQ(domains[0].lo, 0);
  EXPECT_EQ(domains[0].hi, 9);   // x0 < x1 <= 10
  EXPECT_EQ(domains[1].lo, 1);   // x1 > x0 >= 0
  EXPECT_EQ(domains[1].hi, 10);
}

TEST(Propagation, DetectsEmptyDomain) {
  std::vector<Predicate> preds{make_ge_const(0, 10), make_le_const(0, 5)};
  DomainMap domains;
  EXPECT_FALSE(propagate(preds, domains).consistent);
}

TEST(Propagation, GroundFalsePredicateIsInconsistent) {
  std::vector<Predicate> preds{{LinearExpr(5), CompareOp::kLt}};  // 5 < 0
  DomainMap domains;
  EXPECT_FALSE(propagate(preds, domains).consistent);
}

TEST(Propagation, NeqShavesBoundaryValue) {
  std::vector<Predicate> preds{
      make_ge_const(0, 0), make_le_const(0, 5),
      {LinearExpr(0, 1, 0), CompareOp::kNeq}};  // x0 != 0
  DomainMap domains;
  EXPECT_TRUE(propagate(preds, domains).consistent);
  EXPECT_EQ(domains[0].lo, 1);
}

TEST(Propagation, NeqInteriorValueNoPruning) {
  std::vector<Predicate> preds{
      make_ge_const(0, 0), make_le_const(0, 5),
      {LinearExpr(0, 1, -3), CompareOp::kNeq}};  // x0 != 3
  DomainMap domains;
  EXPECT_TRUE(propagate(preds, domains).consistent);
  EXPECT_EQ(domains[0], (Interval{0, 5}));  // interval can't express holes
}

TEST(Propagation, RespectsInitialDomains) {
  std::vector<Predicate> preds{make_ge_const(0, -100)};
  DomainMap domains{{0, {5, 8}}};
  EXPECT_TRUE(propagate(preds, domains).consistent);
  EXPECT_EQ(domains[0], (Interval{5, 8}));
}

TEST(Propagation, GcdTestRefutesInfeasibleEqualities) {
  // 2*x0 + 4*x1 - 3 == 0 has no integer solutions (gcd 2 does not
  // divide 3); interval reasoning alone cannot see this.
  LinearExpr e(0, 2, -3);
  e.add_term(1, 4);
  std::vector<Predicate> preds{{e, CompareOp::kEq}};
  DomainMap domains;
  EXPECT_FALSE(propagate(preds, domains).consistent);
}

TEST(Propagation, GcdTestAcceptsFeasibleEqualities) {
  // 2*x0 + 4*x1 - 6 == 0 is fine (x0 = 1, x1 = 1).
  LinearExpr e(0, 2, -6);
  e.add_term(1, 4);
  std::vector<Predicate> preds{{e, CompareOp::kEq}};
  DomainMap domains;
  EXPECT_TRUE(propagate(preds, domains).consistent);
}

TEST(Propagation, GcdTestIgnoresInequalities) {
  LinearExpr e(0, 2, -3);
  e.add_term(1, 4);
  std::vector<Predicate> preds{{e, CompareOp::kLe}};
  DomainMap domains;
  EXPECT_TRUE(propagate(preds, domains).consistent);
}

TEST(GroundPredicates, ChecksOnlyFullyPinnedOnes) {
  std::vector<Predicate> preds{
      {LinearExpr(0, 1, -3), CompareOp::kNeq},  // x0 != 3
      make_lt(1, 2),                            // x1 < x2 (x2 unpinned)
  };
  DomainMap domains{{0, Interval::point(3)}, {1, Interval::point(0)}};
  EXPECT_FALSE(ground_predicates_hold(preds, domains));
  domains[0] = Interval::point(4);
  EXPECT_TRUE(ground_predicates_hold(preds, domains));
}

}  // namespace
}  // namespace compi::solver
