// Property: interval propagation is SOUND — it may fail to tighten, but it
// must never remove an actual solution from the domains.
#include <gtest/gtest.h>

#include <random>

#include "solver/propagation.h"
#include "solver/solver.h"

namespace compi::solver {
namespace {

class PropagationSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(PropagationSoundnessTest, WitnessSurvivesPropagation) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> nvars_dist(1, 5);
  std::uniform_int_distribution<int> npreds_dist(1, 10);
  std::uniform_int_distribution<std::int64_t> value_dist(-40, 40);
  std::uniform_int_distribution<int> coeff_dist(-3, 3);
  std::uniform_int_distribution<int> op_dist(0, 5);

  const int nvars = nvars_dist(rng);
  Assignment witness;
  for (Var v = 0; v < nvars; ++v) witness[v] = value_dist(rng);

  std::vector<Predicate> preds;
  const int npreds = npreds_dist(rng);
  for (int i = 0; i < npreds; ++i) {
    LinearExpr e;
    for (Var v = 0; v < nvars; ++v) e.add_term(v, coeff_dist(rng));
    const std::int64_t at =
        e.evaluate([&](Var v) { return witness.at(v); });
    CompareOp op;
    switch (op_dist(rng)) {
      case 0: op = CompareOp::kLe; e.add_constant(-at); break;
      case 1: op = CompareOp::kGe; e.add_constant(-at); break;
      case 2: op = CompareOp::kEq; e.add_constant(-at); break;
      case 3: op = CompareOp::kLt; e.add_constant(-at - 1); break;
      case 4: op = CompareOp::kGt; e.add_constant(-at + 1); break;
      default: op = CompareOp::kNeq; e.add_constant(-at - 1); break;
    }
    preds.push_back({std::move(e), op});
  }

  DomainMap domains;
  for (Var v = 0; v < nvars; ++v) domains[v] = {-100, 100};
  const PropagationResult r = propagate(preds, domains);
  ASSERT_TRUE(r.consistent)
      << "a system with a witness must not be refuted";
  for (Var v = 0; v < nvars; ++v) {
    EXPECT_TRUE(domains[v].contains(witness.at(v)))
        << "x" << v << " = " << witness.at(v) << " pruned from "
        << domains[v].lo << ".." << domains[v].hi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationSoundnessTest,
                         ::testing::Range(1000, 1080));

TEST(PropagationMonotone, SecondPassIsNoWorse) {
  // Propagation to fixpoint: running it twice must change nothing.
  std::vector<Predicate> preds{make_lt(0, 1), make_le_const(1, 10),
                               make_ge_const(0, 0)};
  DomainMap first;
  ASSERT_TRUE(propagate(preds, first).consistent);
  DomainMap second = first;
  ASSERT_TRUE(propagate(preds, second).consistent);
  EXPECT_EQ(first.at(0), second.at(0));
  EXPECT_EQ(first.at(1), second.at(1));
}

}  // namespace
}  // namespace compi::solver
