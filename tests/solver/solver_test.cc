#include "solver/solver.h"

#include <gtest/gtest.h>

#include <random>

namespace compi::solver {
namespace {

bool all_hold(std::span<const Predicate> preds, const Assignment& a) {
  for (const Predicate& p : preds) {
    if (!p.holds([&](Var v) { return a.at(v); })) return false;
  }
  return true;
}

TEST(Solver, SolvesSimpleConjunction) {
  Solver s;
  std::vector<Predicate> preds{make_ge_const(0, 3), make_le_const(0, 3)};
  const auto a = s.solve(preds, {});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->at(0), 3);
}

TEST(Solver, ReportsUnsat) {
  Solver s;
  std::vector<Predicate> preds{make_ge_const(0, 10), make_le_const(0, 5)};
  EXPECT_FALSE(s.solve(preds, {}).has_value());
}

TEST(Solver, PrefersPreviousValues) {
  Solver s;
  std::vector<Predicate> preds{make_ge_const(0, 0), make_le_const(0, 100)};
  const auto a = s.solve(preds, {}, {{0, 37}});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->at(0), 37);
}

TEST(Solver, MultiVariableCoupled) {
  Solver s;
  // x0 == x1, x1 < x2, x2 <= 4, all >= 0
  std::vector<Predicate> preds{make_eq(0, 1), make_lt(1, 2),
                               make_le_const(2, 4), make_ge_const(0, 0),
                               make_ge_const(1, 0), make_ge_const(2, 0)};
  const auto a = s.solve(preds, {});
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(all_hold(preds, *a));
}

TEST(Solver, NeqWithPreferredConflict) {
  Solver s;
  std::vector<Predicate> preds{
      make_ge_const(0, 0), make_le_const(0, 10),
      Predicate{LinearExpr(0, 1, -5), CompareOp::kNeq}};  // x0 != 5
  const auto a = s.solve(preds, {}, {{0, 5}});
  ASSERT_TRUE(a.has_value());
  EXPECT_NE(a->at(0), 5);
  EXPECT_TRUE(all_hold(preds, *a));
}

TEST(Solver, HonorsDomains) {
  Solver s;
  std::vector<Predicate> preds{make_ge_const(0, 0)};
  DomainMap domains{{0, {2, 4}}};
  const auto a = s.solve(preds, domains);
  ASSERT_TRUE(a.has_value());
  EXPECT_GE(a->at(0), 2);
  EXPECT_LE(a->at(0), 4);
}

TEST(DependencySlice, IsolatesIndependentConstraints) {
  // c0: x0 <= 5; c1: x1 <= 5; c2: x1 >= 2  — seed c2 touches only x1.
  std::vector<Predicate> preds{make_le_const(0, 5), make_le_const(1, 5),
                               make_ge_const(1, 2)};
  const auto slice = Solver::dependency_slice(preds, 2);
  EXPECT_EQ(slice, (std::vector<std::size_t>{1, 2}));
}

TEST(DependencySlice, FollowsTransitiveSharing) {
  // c0: x0 - x1 = 0; c1: x1 - x2 = 0; c2: x3 <= 1; seed c3: x2 >= 0.
  std::vector<Predicate> preds{make_eq(0, 1), make_eq(1, 2),
                               make_le_const(3, 1), make_ge_const(2, 0)};
  const auto slice = Solver::dependency_slice(preds, 3);
  EXPECT_EQ(slice, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(SolveIncremental, KeepsStaleValuesAndReportsChanged) {
  Solver s;
  // Previous inputs satisfied {x0 <= 5, x1 <= 5}; now negate to x1 > 5.
  std::vector<Predicate> preds{make_le_const(0, 5),
                               make_le_const(1, 5).negated()};
  const Assignment prev{{0, 3}, {1, 4}};
  const SolveResult r = s.solve_incremental(preds, {}, prev);
  ASSERT_TRUE(r.sat);
  EXPECT_EQ(r.values.at(0), 3) << "untouched variable keeps stale value";
  EXPECT_GT(r.values.at(1), 5);
  EXPECT_EQ(r.changed, (std::vector<Var>{1}));
}

TEST(SolveIncremental, UnsatLeavesNoResult) {
  Solver s;
  std::vector<Predicate> preds{make_ge_const(0, 3), make_le_const(0, 3),
                               make_eq_const(0, 4)};  // negated seed: x0 == 4
  const SolveResult r = s.solve_incremental(preds, {}, {{0, 3}});
  EXPECT_FALSE(r.sat);
}

TEST(SolveIncremental, ChangedIsSortedAndMinimal) {
  Solver s;
  std::vector<Predicate> preds{make_eq(0, 1),          // x0 == x1
                               make_ge_const(2, 0),    // independent
                               make_eq_const(1, 9)};   // seed: x1 == 9
  const Assignment prev{{0, 2}, {1, 2}, {2, 7}};
  const SolveResult r = s.solve_incremental(preds, {}, prev);
  ASSERT_TRUE(r.sat);
  EXPECT_EQ(r.values.at(0), 9);
  EXPECT_EQ(r.values.at(1), 9);
  EXPECT_EQ(r.values.at(2), 7);
  EXPECT_EQ(r.changed, (std::vector<Var>{0, 1}));
}

// ---------------------------------------------------------------------------
// Property test: on randomly generated *satisfiable* systems (built around a
// known witness), the solver must find some satisfying assignment; on
// random systems, whatever it returns must satisfy every predicate.
// ---------------------------------------------------------------------------
class SolverPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverPropertyTest, SoundOnRandomSatisfiableSystems) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> nvars_dist(1, 4);
  std::uniform_int_distribution<int> npreds_dist(1, 8);
  std::uniform_int_distribution<std::int64_t> value_dist(-50, 50);
  std::uniform_int_distribution<int> coeff_dist(-3, 3);
  std::uniform_int_distribution<int> op_dist(0, 5);

  Solver s;
  const int nvars = nvars_dist(rng);
  // Known witness.
  Assignment witness;
  for (Var v = 0; v < nvars; ++v) witness[v] = value_dist(rng);

  std::vector<Predicate> preds;
  const int npreds = npreds_dist(rng);
  for (int i = 0; i < npreds; ++i) {
    LinearExpr e;
    for (Var v = 0; v < nvars; ++v) e.add_term(v, coeff_dist(rng));
    const std::int64_t at_witness =
        e.evaluate([&](Var v) { return witness.at(v); });
    // Choose an op consistent with the witness so the system stays SAT.
    CompareOp op;
    switch (op_dist(rng)) {
      case 0: op = CompareOp::kLe; e.add_constant(-at_witness); break;
      case 1: op = CompareOp::kGe; e.add_constant(-at_witness); break;
      case 2: op = CompareOp::kEq; e.add_constant(-at_witness); break;
      case 3: op = CompareOp::kLt; e.add_constant(-at_witness - 1); break;
      case 4: op = CompareOp::kGt; e.add_constant(-at_witness + 1); break;
      default:
        op = CompareOp::kNeq;
        e.add_constant(-at_witness - 1);
        break;
    }
    preds.push_back({std::move(e), op});
  }

  DomainMap domains;
  for (Var v = 0; v < nvars; ++v) domains[v] = {-200, 200};
  const auto a = s.solve(preds, domains);
  ASSERT_TRUE(a.has_value()) << "known-satisfiable system reported UNSAT";
  EXPECT_TRUE(all_hold(preds, *a));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SolverPropertyTest,
                         ::testing::Range(1, 60));

}  // namespace
}  // namespace compi::solver
