#include "runtime/test_log.h"

#include <gtest/gtest.h>

#include "solver/predicate.h"

namespace compi::rt {
namespace {

TEST(CoverageBitmap, MarkAndCount) {
  CoverageBitmap bm(10);
  EXPECT_EQ(bm.count(), 0u);
  bm.mark(3);
  bm.mark(3);
  bm.mark(7);
  EXPECT_EQ(bm.count(), 2u);
  EXPECT_TRUE(bm.covered(3));
  EXPECT_FALSE(bm.covered(4));
}

TEST(CoverageBitmap, OutOfRangeMarkIgnored) {
  CoverageBitmap bm(4);
  bm.mark(100);
  EXPECT_EQ(bm.count(), 0u);
  EXPECT_FALSE(bm.covered(100));
}

TEST(CoverageBitmap, MergeUnionsAndResizes) {
  CoverageBitmap a(4);
  a.mark(1);
  CoverageBitmap b(8);
  b.mark(6);
  a.merge(b);
  EXPECT_TRUE(a.covered(1));
  EXPECT_TRUE(a.covered(6));
  EXPECT_EQ(a.count(), 2u);
}

TEST(CoverageBitmap, CoveredIdsSorted) {
  CoverageBitmap bm(10);
  bm.mark(9);
  bm.mark(0);
  bm.mark(5);
  EXPECT_EQ(bm.covered_ids(), (std::vector<sym::BranchId>{0, 5, 9}));
}

TEST(TestLog, LightSerializationIsSmall) {
  TestLog log;
  log.heavy = false;
  log.rank = 3;
  log.nprocs = 8;
  log.covered = CoverageBitmap(1000);
  for (int i = 0; i < 50; ++i) log.covered.mark(i * 7 % 1000);
  const std::string bytes = log.serialize();
  EXPECT_LT(bytes.size(), 4096u) << "non-focus logs must stay a few KB";
  EXPECT_NE(bytes.find("mode light"), std::string::npos);
  EXPECT_EQ(bytes.find("path"), std::string::npos)
      << "light logs carry no symbolic state";
}

TestLog heavy_log(std::size_t path_len) {
  TestLog log;
  log.heavy = true;
  log.covered = CoverageBitmap(100);
  log.inputs_used = {{0, 42}};
  for (std::size_t i = 0; i < path_len; ++i) {
    log.path.append(static_cast<sym::SiteId>(i % 10), true,
                    solver::make_le_const(0, static_cast<std::int64_t>(i)));
  }
  return log;
}

TEST(TestLog, HeavySerializationContainsEverything) {
  TestLog log = heavy_log(3);
  log.comm_sizes = {4, 2};
  log.rank_mapping = {{0, 4, 2}, {0, 3}};
  const std::string bytes = log.serialize();
  EXPECT_NE(bytes.find("mode heavy"), std::string::npos);
  EXPECT_NE(bytes.find("path 3"), std::string::npos);
  EXPECT_NE(bytes.find("inputs 0=42"), std::string::npos);
  EXPECT_NE(bytes.find("mapping 0: 0 4 2"), std::string::npos);
}

TEST(TestLog, HeavyLogGrowsWithConstraintSet) {
  // The I/O asymmetry behind two-way instrumentation (Table IV).
  const std::size_t small = heavy_log(10).serialize().size();
  const std::size_t big = heavy_log(10000).serialize().size();
  EXPECT_GT(big, small * 100);
}

TEST(TestLog, OutcomeSerialized) {
  TestLog log;
  log.covered = CoverageBitmap(4);
  log.outcome = Outcome::kSegfault;
  EXPECT_NE(log.serialize().find("segfault"), std::string::npos);
}

}  // namespace
}  // namespace compi::rt
