#include "runtime/checked_alloc.h"

#include <gtest/gtest.h>

namespace compi::rt {
namespace {

TEST(CheckedArena, InBoundsAccessSucceeds) {
  CheckedArena arena;
  const auto h = arena.alloc(10 * 8, "buf");
  EXPECT_NO_THROW(arena.check_access(h, 0, 8));
  EXPECT_NO_THROW(arena.check_access(h, 9, 8));
}

TEST(CheckedArena, OutOfBoundsIndexThrows) {
  CheckedArena arena;
  const auto h = arena.alloc(10 * 8, "buf");
  EXPECT_THROW(arena.check_access(h, 10, 8), SimulatedSegfault);
}

TEST(CheckedArena, WrongSizeofBugSignature) {
  // The SUSY-HMC bug shape: allocated N * sizeof(pointer), accessed as
  // N elements of sizeof(struct).
  CheckedArena arena;
  const auto h = arena.alloc(4 * 8, "src");
  EXPECT_THROW(arena.check_access(h, 0, 96), SimulatedSegfault);
}

TEST(CheckedArena, UseAfterFreeThrows) {
  CheckedArena arena;
  const auto h = arena.alloc(64, "buf");
  arena.free(h);
  EXPECT_THROW(arena.check_access(h, 0, 8), SimulatedSegfault);
}

TEST(CheckedArena, DoubleFreeThrows) {
  CheckedArena arena;
  const auto h = arena.alloc(64);
  arena.free(h);
  EXPECT_THROW(arena.free(h), SimulatedSegfault);
}

TEST(CheckedArena, UnknownHandleThrows) {
  CheckedArena arena;
  EXPECT_THROW(arena.check_access(42, 0, 1), SimulatedSegfault);
  EXPECT_THROW(arena.free(42), SimulatedSegfault);
}

TEST(CheckedArena, LiveBlockAccounting) {
  CheckedArena arena;
  const auto a = arena.alloc(8);
  const auto b = arena.alloc(16);
  EXPECT_EQ(arena.live_blocks(), 2u);
  EXPECT_EQ(arena.bytes_of(a), 8u);
  EXPECT_EQ(arena.bytes_of(b), 16u);
  arena.free(a);
  EXPECT_EQ(arena.live_blocks(), 1u);
}

TEST(CheckedArena, SegfaultMessageNamesTheBlock) {
  CheckedArena arena;
  const auto h = arena.alloc(8, "psim");
  try {
    arena.check_access(h, 1, 8);
    FAIL() << "expected SimulatedSegfault";
  } catch (const SimulatedSegfault& e) {
    EXPECT_NE(std::string(e.what()).find("psim"), std::string::npos);
    EXPECT_EQ(e.outcome(), Outcome::kSegfault);
  }
}

TEST(Outcome, FaultClassification) {
  EXPECT_FALSE(is_fault(Outcome::kOk));
  EXPECT_FALSE(is_fault(Outcome::kAborted));
  EXPECT_TRUE(is_fault(Outcome::kSegfault));
  EXPECT_TRUE(is_fault(Outcome::kFpe));
  EXPECT_TRUE(is_fault(Outcome::kAssert));
  EXPECT_TRUE(is_fault(Outcome::kTimeout));
  EXPECT_TRUE(is_fault(Outcome::kMpiError));
}

}  // namespace
}  // namespace compi::rt
