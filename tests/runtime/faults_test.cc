// Outcome serialization round-trips (bugs.txt / checkpoint parsing).
#include "runtime/faults.h"

#include <gtest/gtest.h>

namespace compi::rt {
namespace {

TEST(Outcome, ToStringFromStringRoundTripsAllValues) {
  for (Outcome o : {Outcome::kOk, Outcome::kSegfault, Outcome::kFpe,
                    Outcome::kAssert, Outcome::kTimeout, Outcome::kMpiError,
                    Outcome::kAborted}) {
    const auto parsed = outcome_from_string(to_string(o));
    ASSERT_TRUE(parsed.has_value()) << to_string(o);
    EXPECT_EQ(*parsed, o);
  }
}

TEST(Outcome, FromStringRejectsUnknownNames) {
  EXPECT_FALSE(outcome_from_string("").has_value());
  EXPECT_FALSE(outcome_from_string("bogus").has_value());
  EXPECT_FALSE(outcome_from_string("OK ").has_value());
  EXPECT_FALSE(outcome_from_string("kOk").has_value());
}

TEST(Outcome, NamesAreDistinct) {
  EXPECT_STRNE(to_string(Outcome::kOk), to_string(Outcome::kAborted));
  EXPECT_STRNE(to_string(Outcome::kSegfault), to_string(Outcome::kFpe));
}

}  // namespace
}  // namespace compi::rt
