// Property test for constraint-set reduction (paper §IV-C).
//
// Oracle: for an arbitrary sequence of (site, outcome) branch events, the
// reduced recording keeps an event iff it is the site's first encounter or
// its outcome differs from the site's previous encounter.  The reduction
// must also be loss-free for negation purposes: the reduced set retains,
// for every site, its FINAL flip (the property §IV-C's heuristic rests on:
// all but the last same-direction repeats are subsumed).
#include <gtest/gtest.h>

#include <random>

#include "runtime/context.h"

namespace compi::rt {
namespace {

constexpr int kSites = 6;

const BranchTable& table() {
  static const BranchTable t = [] {
    BranchTable b;
    for (int i = 0; i < kSites; ++i) b.add_site("f", "s");
    b.finalize();
    return b;
  }();
  return t;
}

class ReductionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReductionPropertyTest, MatchesFirstOrFlipOracle) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> site_dist(0, kSites - 1);
  std::uniform_int_distribution<int> len_dist(1, 120);
  std::bernoulli_distribution coin(0.5);

  VarRegistry registry;
  solver::Assignment inputs;
  ContextParams params;
  params.mode = Mode::kHeavy;
  params.table = &table();
  params.registry = &registry;
  params.inputs = &inputs;
  params.reduction = true;
  RuntimeContext ctx(params);
  const sym::SymInt x = ctx.input_int("x");  // value in [-1000, 1000]

  // Drive a random event sequence; cond(site, outcome) is built so the
  // concrete outcome equals `outcome` and the predicate is symbolic.
  const auto cond = [&](bool outcome) {
    return outcome ? x <= sym::SymInt(1'000'000)
                   : x > sym::SymInt(1'000'000);
  };

  struct Event {
    int site;
    bool outcome;
  };
  std::vector<Event> events;
  const int len = len_dist(rng);
  for (int i = 0; i < len; ++i) {
    events.push_back({site_dist(rng), coin(rng)});
  }
  for (const Event& e : events) {
    (void)ctx.branch(static_cast<sym::SiteId>(e.site), cond(e.outcome));
  }

  // Oracle replay.
  std::vector<Event> expected;
  std::array<int, kSites> last;
  last.fill(-1);
  for (const Event& e : events) {
    if (last[e.site] == -1 || last[e.site] != (e.outcome ? 1 : 0)) {
      expected.push_back(e);
    }
    last[e.site] = e.outcome ? 1 : 0;
  }

  const TestLog log = ctx.take_log();
  ASSERT_EQ(log.path.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(log.path[i].site, expected[i].site) << i;
    EXPECT_EQ(log.path[i].taken, expected[i].outcome) << i;
  }

  // Loss-free-ness: the final recorded entry for each site carries that
  // site's final outcome of the run.
  std::array<int, kSites> final_recorded;
  final_recorded.fill(-1);
  for (const sym::PathEntry& e : log.path.entries()) {
    final_recorded[e.site] = e.taken ? 1 : 0;
  }
  for (int s = 0; s < kSites; ++s) {
    EXPECT_EQ(final_recorded[s], last[s]) << "site " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionPropertyTest,
                         ::testing::Range(2000, 2040));

}  // namespace
}  // namespace compi::rt
