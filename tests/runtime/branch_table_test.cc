#include "runtime/branch_table.h"

#include <gtest/gtest.h>

namespace compi::rt {
namespace {

BranchTable make_table() {
  BranchTable t;
  t.add_site("alpha", "a0");
  t.add_site("alpha", "a1");
  t.add_site("beta", "b0");
  t.add_site("alpha", "a2");  // non-contiguous same-function site
  t.finalize();
  return t;
}

TEST(BranchTable, CountsSitesAndBranches) {
  const BranchTable t = make_table();
  EXPECT_EQ(t.num_sites(), 4u);
  EXPECT_EQ(t.num_branches(), 8u);
}

TEST(BranchTable, SiteMetadata) {
  const BranchTable t = make_table();
  EXPECT_EQ(t.site(0).name, "a0");
  EXPECT_EQ(t.site(2).function, "beta");
}

TEST(BranchTable, FunctionsInFirstAppearanceOrder) {
  const BranchTable t = make_table();
  ASSERT_EQ(t.functions().size(), 2u);
  EXPECT_EQ(t.functions()[0], "alpha");
  EXPECT_EQ(t.functions()[1], "beta");
  EXPECT_EQ(t.function_index(0), 0u);
  EXPECT_EQ(t.function_index(2), 1u);
  EXPECT_EQ(t.function_index(3), 0u);
}

TEST(BranchTable, SitesInFunction) {
  const BranchTable t = make_table();
  EXPECT_EQ(t.sites_in_function("alpha"), 3u);
  EXPECT_EQ(t.sites_in_function("beta"), 1u);
  EXPECT_EQ(t.sites_in_function("gamma"), 0u);
}

TEST(BranchTable, FallthroughEdgesOnlyWithinFunction) {
  const BranchTable t = make_table();
  // 0 -> 1 (same function, consecutive); 1 -> 2 crosses functions: no edge.
  EXPECT_EQ(t.successors(0), (std::vector<sym::SiteId>{1}));
  EXPECT_TRUE(t.successors(1).empty());
  // 2 -> 3 crosses back: no edge.
  EXPECT_TRUE(t.successors(2).empty());
}

TEST(BranchTable, ExplicitEdgesDeduplicated) {
  BranchTable t;
  t.add_site("f", "s0");
  t.add_site("f", "s1");
  t.add_edge(1, 0);
  t.add_edge(1, 0);
  t.finalize();
  EXPECT_EQ(t.successors(1), (std::vector<sym::SiteId>{0}));
}

TEST(BranchTable, FinalizeIsIdempotent) {
  BranchTable t;
  t.add_site("f", "s0");
  t.add_site("f", "s1");
  t.finalize();
  t.finalize();
  EXPECT_EQ(t.successors(0).size(), 1u);
}

}  // namespace
}  // namespace compi::rt
