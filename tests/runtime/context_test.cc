#include "runtime/context.h"

#include <gtest/gtest.h>

namespace compi::rt {
namespace {

const BranchTable& tiny_table() {
  static const BranchTable table = [] {
    BranchTable t;
    t.add_site("f", "s0");
    t.add_site("f", "s1");
    t.add_site("g", "s2");
    t.finalize();
    return t;
  }();
  return table;
}

struct Fixture {
  VarRegistry registry;
  solver::Assignment inputs;

  RuntimeContext make(Mode mode, bool reduction = true,
                      std::int64_t step_budget = 0,
                      bool mark_mpi = true) {
    ContextParams p;
    p.mode = mode;
    p.table = &tiny_table();
    p.registry = &registry;
    p.inputs = &inputs;
    p.rng_seed = 99;
    p.step_budget = step_budget;
    p.reduction = reduction;
    p.mark_mpi_vars = mark_mpi;
    return RuntimeContext(p);
  }
};

TEST(Context, HeavyInputIsSymbolicWithPlannedValue) {
  Fixture f;
  f.inputs[f.registry.intern("n", VarKind::kRegular)] = 17;
  RuntimeContext ctx = f.make(Mode::kHeavy);
  const sym::SymInt n = ctx.input_int("n");
  EXPECT_EQ(n.value(), 17);
  EXPECT_TRUE(n.is_symbolic());
}

TEST(Context, LightInputIsConcreteSameValue) {
  Fixture f;
  f.inputs[f.registry.intern("n", VarKind::kRegular)] = 17;
  RuntimeContext ctx = f.make(Mode::kLight);
  const sym::SymInt n = ctx.input_int("n");
  EXPECT_EQ(n.value(), 17);
  EXPECT_FALSE(n.is_symbolic());
}

TEST(Context, MissingInputGetsDeterministicValue) {
  Fixture f;
  RuntimeContext heavy = f.make(Mode::kHeavy);
  const auto v1 = heavy.input_int("fresh").value();
  RuntimeContext light = f.make(Mode::kLight);
  const auto v2 = light.input_int("fresh").value();
  EXPECT_EQ(v1, v2) << "all SPMD ranks must see the same initial value";
}

TEST(Context, CappedInputRegistersCap) {
  Fixture f;
  RuntimeContext ctx = f.make(Mode::kHeavy);
  (void)ctx.input_int_capped("n", 300);
  const VarMeta m = f.registry.meta(0);
  ASSERT_TRUE(m.cap.has_value());
  EXPECT_EQ(*m.cap, 300);
}

TEST(Context, RangedInputHonorsDomain) {
  Fixture f;
  RuntimeContext ctx = f.make(Mode::kHeavy);
  const sym::SymInt v = ctx.input_int_range("flag", 0, 1);
  EXPECT_GE(v.value(), 0);
  EXPECT_LE(v.value(), 1);
}

TEST(Context, BranchRecordsCoverageBothModes) {
  for (Mode mode : {Mode::kHeavy, Mode::kLight}) {
    Fixture f;
    RuntimeContext ctx = f.make(mode);
    (void)ctx.branch(0, sym::SymBool(true));
    (void)ctx.branch(1, sym::SymBool(false));
    const TestLog log = ctx.take_log();
    EXPECT_TRUE(log.covered.covered(sym::branch_id(0, true)));
    EXPECT_FALSE(log.covered.covered(sym::branch_id(0, false)));
    EXPECT_TRUE(log.covered.covered(sym::branch_id(1, false)));
  }
}

TEST(Context, HeavyRecordsSymbolicConstraints) {
  Fixture f;
  RuntimeContext ctx = f.make(Mode::kHeavy);
  const sym::SymInt n = ctx.input_int("n");
  (void)ctx.branch(0, n < sym::SymInt(1000000));
  const TestLog log = ctx.take_log();
  ASSERT_EQ(log.path.size(), 1u);
  EXPECT_EQ(log.path[0].site, 0);
}

TEST(Context, LightRecordsNoConstraints) {
  Fixture f;
  RuntimeContext ctx = f.make(Mode::kLight);
  const sym::SymInt n = ctx.input_int("n");
  (void)ctx.branch(0, n < sym::SymInt(1000000));
  const TestLog log = ctx.take_log();
  EXPECT_EQ(log.path.size(), 0u);
}

TEST(Context, ConcreteConditionsNeverRecorded) {
  Fixture f;
  RuntimeContext ctx = f.make(Mode::kHeavy);
  (void)ctx.branch(0, sym::SymInt(1) < sym::SymInt(2));
  EXPECT_EQ(ctx.constraint_count(), 0u);
}

TEST(Context, ReductionDropsRepeatedSameOutcome) {
  Fixture f;
  f.inputs[f.registry.intern("n", VarKind::kRegular)] = 100;
  RuntimeContext ctx = f.make(Mode::kHeavy, /*reduction=*/true);
  const sym::SymInt n = ctx.input_int("n");
  // Loop shape: same site, same outcome 100x, then a flip.
  for (int i = 0; i < 100; ++i) {
    (void)ctx.branch(0, sym::SymInt(i) < n);
  }
  (void)ctx.branch(0, sym::SymInt(100) < n);  // false: flip
  // First encounter + final flip only.
  EXPECT_EQ(ctx.constraint_count(), 2u);
}

TEST(Context, NoReductionKeepsEverything) {
  Fixture f;
  f.inputs[f.registry.intern("n", VarKind::kRegular)] = 100;
  RuntimeContext ctx = f.make(Mode::kHeavy, /*reduction=*/false);
  const sym::SymInt n = ctx.input_int("n");
  for (int i = 0; i < 100; ++i) {
    (void)ctx.branch(0, sym::SymInt(i) < n);
  }
  EXPECT_EQ(ctx.constraint_count(), 100u);
}

TEST(Context, ReductionReRecordsAfterEachFlip) {
  Fixture f;
  f.inputs[f.registry.intern("n", VarKind::kRegular)] = 1;
  RuntimeContext ctx = f.make(Mode::kHeavy, /*reduction=*/true);
  const sym::SymInt n = ctx.input_int("n");
  (void)ctx.branch(0, sym::SymInt(0) < n);  // T (recorded: first)
  (void)ctx.branch(0, sym::SymInt(1) < n);  // F (recorded: flip)
  (void)ctx.branch(0, sym::SymInt(2) < n);  // F (dropped)
  (void)ctx.branch(0, sym::SymInt(0) < n);  // T (recorded: flip)
  EXPECT_EQ(ctx.constraint_count(), 3u);
}

TEST(Context, StepBudgetRaisesTimeout) {
  Fixture f;
  RuntimeContext ctx = f.make(Mode::kHeavy, true, /*step_budget=*/10);
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) {
          (void)ctx.branch(0, sym::SymBool(true));
        }
      },
      StepBudgetExceeded);
}

TEST(Context, CheckedDivByZeroRaisesFpe) {
  Fixture f;
  RuntimeContext ctx = f.make(Mode::kHeavy);
  EXPECT_THROW((void)ctx.div(sym::SymInt(1), sym::SymInt(0)), SimulatedFpe);
  EXPECT_THROW((void)ctx.mod(sym::SymInt(1), sym::SymInt(0)), SimulatedFpe);
  EXPECT_EQ(ctx.div(sym::SymInt(7), sym::SymInt(2)).value(), 3);
}

TEST(Context, CheckRaisesAssertionViolation) {
  Fixture f;
  RuntimeContext ctx = f.make(Mode::kHeavy);
  EXPECT_NO_THROW(ctx.check(true, "fine"));
  EXPECT_THROW(ctx.check(false, "boom"), AssertionViolation);
}

TEST(Context, MpiMarksCreateTypedVars) {
  Fixture f;
  RuntimeContext ctx = f.make(Mode::kHeavy);
  const sym::SymInt r = ctx.mark_world_rank(3);
  const sym::SymInt s = ctx.mark_world_size(8);
  const sym::SymInt lr = ctx.mark_local_rank(0, 1, 4);
  EXPECT_EQ(r.value(), 3);
  EXPECT_EQ(s.value(), 8);
  EXPECT_EQ(lr.value(), 1);
  EXPECT_TRUE(r.is_symbolic());
  EXPECT_EQ(f.registry.of_kind(VarKind::kRankWorld).size(), 1u);
  EXPECT_EQ(f.registry.of_kind(VarKind::kSizeWorld).size(), 1u);
  EXPECT_EQ(f.registry.of_kind(VarKind::kRankLocal).size(), 1u);
  const TestLog log = ctx.take_log();
  ASSERT_EQ(log.comm_sizes.size(), 1u);
  EXPECT_EQ(log.comm_sizes[0], 4);
}

TEST(Context, MpiMarksDisabledForNoFwk) {
  Fixture f;
  RuntimeContext ctx =
      f.make(Mode::kHeavy, true, 0, /*mark_mpi=*/false);
  const sym::SymInt r = ctx.mark_world_rank(3);
  EXPECT_EQ(r.value(), 3);
  EXPECT_FALSE(r.is_symbolic());
  EXPECT_EQ(f.registry.size(), 0u);
}

TEST(Context, MpiMarksConcreteInLightMode) {
  Fixture f;
  RuntimeContext ctx = f.make(Mode::kLight);
  EXPECT_FALSE(ctx.mark_world_rank(2).is_symbolic());
  EXPECT_FALSE(ctx.mark_world_size(4).is_symbolic());
}

TEST(Context, RegisterCommRecordsMappingRow) {
  Fixture f;
  RuntimeContext ctx = f.make(Mode::kHeavy);
  const int c0 = ctx.register_comm({0, 4, 2});
  const int c1 = ctx.register_comm({0, 3});
  EXPECT_EQ(c0, 0);
  EXPECT_EQ(c1, 1);
  const TestLog log = ctx.take_log();
  ASSERT_EQ(log.rank_mapping.size(), 2u);
  EXPECT_EQ(log.rank_mapping[0], (std::vector<int>{0, 4, 2}));
  EXPECT_EQ(log.rank_mapping[1], (std::vector<int>{0, 3}));
}

TEST(Context, InputsUsedRecordedForSolver) {
  Fixture f;
  RuntimeContext ctx = f.make(Mode::kHeavy);
  (void)ctx.input_int("a");
  (void)ctx.mark_world_rank(5);
  const TestLog log = ctx.take_log();
  EXPECT_EQ(log.inputs_used.size(), 2u);
  EXPECT_EQ(log.inputs_used.at(1), 5) << "MPI var uses runtime value";
}

}  // namespace
}  // namespace compi::rt
