#include "runtime/var_registry.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace compi::rt {
namespace {

TEST(VarRegistry, InternAssignsDenseIds) {
  VarRegistry reg;
  EXPECT_EQ(reg.intern("a", VarKind::kRegular), 0);
  EXPECT_EQ(reg.intern("b", VarKind::kRegular), 1);
  EXPECT_EQ(reg.intern("a", VarKind::kRegular), 0) << "idempotent";
  EXPECT_EQ(reg.size(), 2u);
}

TEST(VarRegistry, FirstMarkingWins) {
  VarRegistry reg;
  reg.intern("x", VarKind::kRegular, {0, 10}, 5);
  reg.intern("x", VarKind::kRankWorld, {0, 99}, std::nullopt);
  const VarMeta m = reg.meta(0);
  EXPECT_EQ(m.kind, VarKind::kRegular);
  EXPECT_EQ(m.domain, (solver::Interval{0, 10}));
  ASSERT_TRUE(m.cap.has_value());
  EXPECT_EQ(*m.cap, 5);
}

TEST(VarRegistry, EffectiveDomainAppliesCap) {
  VarRegistry reg;
  reg.intern("x", VarKind::kRegular, {0, 1000}, 300);
  reg.intern("y", VarKind::kRegular, {0, 1000});
  EXPECT_EQ(reg.effective_domain(0), (solver::Interval{0, 300}));
  EXPECT_EQ(reg.effective_domain(1), (solver::Interval{0, 1000}));
}

TEST(VarRegistry, CapAboveDomainIsNoop) {
  VarRegistry reg;
  reg.intern("x", VarKind::kRegular, {0, 100}, 500);
  EXPECT_EQ(reg.effective_domain(0).hi, 100);
}

TEST(VarRegistry, OfKindFilters) {
  VarRegistry reg;
  reg.intern("n", VarKind::kRegular);
  reg.intern("rw#0", VarKind::kRankWorld);
  reg.intern("sw#0", VarKind::kSizeWorld);
  reg.intern("rc#0", VarKind::kRankLocal, solver::int32_domain(),
             std::nullopt, 0);
  reg.intern("rw#1", VarKind::kRankWorld);
  EXPECT_EQ(reg.of_kind(VarKind::kRankWorld), (std::vector<Var>{1, 4}));
  EXPECT_EQ(reg.of_kind(VarKind::kSizeWorld), (std::vector<Var>{2}));
  EXPECT_EQ(reg.of_kind(VarKind::kRankLocal), (std::vector<Var>{3}));
  EXPECT_EQ(reg.meta(3).comm_index, 0);
}

TEST(VarRegistry, ConcurrentInternIsConsistent) {
  // SPMD ranks intern the same key sequence concurrently; all must agree.
  VarRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kKeys = 50;
  std::vector<std::vector<Var>> seen(kThreads, std::vector<Var>(kKeys));
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int k = 0; k < kKeys; ++k) {
          seen[t][k] = reg.intern("key" + std::to_string(k),
                                  VarKind::kRegular);
        }
      });
    }
  }
  EXPECT_EQ(reg.size(), static_cast<std::size_t>(kKeys));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]) << "thread " << t << " saw different ids";
  }
}

TEST(VarKindNames, Stringification) {
  EXPECT_STREQ(to_string(VarKind::kRegular), "regular");
  EXPECT_STREQ(to_string(VarKind::kRankWorld), "rw");
  EXPECT_STREQ(to_string(VarKind::kRankLocal), "rc");
  EXPECT_STREQ(to_string(VarKind::kSizeWorld), "sw");
}

}  // namespace
}  // namespace compi::rt
