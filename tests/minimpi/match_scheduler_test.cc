// Tests for wildcard-receive matching through the MatchScheduler:
// record/replay of ANY_SOURCE decisions, posting-order ordinals for irecv,
// exact deadlock detection (wait-for cycle, no wall-clock kill), orphan
// message detection at finalize, and replay divergence fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <span>
#include <vector>

#include "minimpi/launcher.h"

namespace compi::minimpi {
namespace {

const rt::BranchTable& dummy_table() {
  static const rt::BranchTable table = [] {
    rt::BranchTable t;
    t.add_site("main", "s0");
    t.finalize();
    return t;
  }();
  return table;
}

RunResult run_scheduled(int nprocs, Program program, MatchPlan plan = {},
                        std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(10'000)) {
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.program = std::move(program);
  spec.nprocs = nprocs;
  spec.focus = 0;
  spec.registry = &registry;
  spec.timeout = timeout;
  spec.match_schedule = true;
  spec.match_plan = std::move(plan);
  return launch(spec, dummy_table());
}

/// Fan-in: ranks 1..n-1 send their rank to 0; a barrier guarantees every
/// message is already delivered before rank 0's wildcard receives, so the
/// feasible set at each decision is deterministic.
Program fan_in_program(std::vector<int>* received) {
  return [received](rt::RuntimeContext&, Comm& world) {
    const int me = world.raw_rank();
    if (me != 0) {
      const std::vector<int> mine{me};
      world.send(std::span<const int>(mine), 0, 9);
    }
    world.barrier();
    if (me == 0) {
      for (int i = 0; i < world.raw_size() - 1; ++i) {
        std::vector<int> got(1, -1);
        const Status st = world.recv(std::span<int>(got), kAnySource, 9);
        received->push_back(st.source);
        EXPECT_EQ(got[0], st.source);
      }
    }
  };
}

TEST(MatchScheduler, RecordsWildcardDecisionsWithFeasibleSets) {
  std::vector<int> received;
  const RunResult run = run_scheduled(3, fan_in_program(&received));
  ASSERT_EQ(run.job_outcome(), rt::Outcome::kOk) << run.job_message();
  EXPECT_FALSE(run.match_diverged);
  // Default choice is the lowest feasible source, deterministically.
  EXPECT_EQ(received, (std::vector<int>{1, 2}));
  ASSERT_EQ(run.match_trace.size(), 2u);
  EXPECT_EQ(run.match_trace[0].rank, 0);
  EXPECT_EQ(run.match_trace[0].seq, 0);
  EXPECT_EQ(run.match_trace[0].chosen_src, 1);
  EXPECT_EQ(run.match_trace[0].feasible, (std::vector<int>{1, 2}));
  EXPECT_EQ(run.match_trace[1].seq, 1);
  EXPECT_EQ(run.match_trace[1].chosen_src, 2);
  // The alternative matched already: only rank 1's message is left.
  EXPECT_EQ(run.match_trace[1].feasible, (std::vector<int>{2}));
}

TEST(MatchScheduler, ReplaysPrescribedChoices) {
  std::vector<int> received;
  MatchPlan plan;
  plan.push_back({0, 0, 2});  // flip the first decision to sender 2
  const RunResult run = run_scheduled(3, fan_in_program(&received), plan);
  ASSERT_EQ(run.job_outcome(), rt::Outcome::kOk) << run.job_message();
  EXPECT_FALSE(run.match_diverged);
  EXPECT_EQ(received, (std::vector<int>{2, 1}));
  ASSERT_EQ(run.match_trace.size(), 2u);
  EXPECT_EQ(run.match_trace[0].chosen_src, 2);
  EXPECT_EQ(run.match_trace[1].chosen_src, 1);
}

TEST(MatchScheduler, SerialRunsAreDeterministic) {
  // Same program, no plan: the decision vector must be identical across
  // runs (the scheduler default is a function of state, not timing).
  std::vector<int> first;
  const RunResult a = run_scheduled(4, fan_in_program(&first));
  ASSERT_EQ(a.job_outcome(), rt::Outcome::kOk);
  for (int i = 0; i < 3; ++i) {
    std::vector<int> again;
    const RunResult b = run_scheduled(4, fan_in_program(&again));
    ASSERT_EQ(b.job_outcome(), rt::Outcome::kOk);
    EXPECT_EQ(again, first);
    ASSERT_EQ(b.match_trace.size(), a.match_trace.size());
    for (std::size_t d = 0; d < a.match_trace.size(); ++d) {
      EXPECT_EQ(b.match_trace[d].chosen_src, a.match_trace[d].chosen_src);
      EXPECT_EQ(b.match_trace[d].feasible, a.match_trace[d].feasible);
    }
  }
}

TEST(MatchScheduler, IrecvReservesDecisionOrdinalsInPostingOrder) {
  std::vector<int> order;
  const RunResult run = run_scheduled(
      3, [&order](rt::RuntimeContext&, Comm& world) {
        const int me = world.raw_rank();
        if (me != 0) {
          const std::vector<int> mine{me};
          world.send(std::span<const int>(mine), 0, 2);
        }
        world.barrier();
        if (me == 0) {
          std::vector<int> a(1, -1), b(1, -1);
          Request ra = world.irecv(std::span<int>(a), kAnySource, 2);
          Request rb = world.irecv(std::span<int>(b), kAnySource, 2);
          rb.wait();  // waiting out of order must not reorder the matching
          ra.wait();
          order = {a[0], b[0]};
        }
      });
  ASSERT_EQ(run.job_outcome(), rt::Outcome::kOk) << run.job_message();
  // Posting order decides: the first-posted receive took the default
  // (lowest) sender even though it was waited on second.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  ASSERT_EQ(run.match_trace.size(), 2u);
  EXPECT_EQ(run.match_trace[0].seq, 0);
  EXPECT_EQ(run.match_trace[0].chosen_src, 1);
  EXPECT_EQ(run.match_trace[1].seq, 1);
  EXPECT_EQ(run.match_trace[1].chosen_src, 2);
}

TEST(MatchScheduler, CircularWaitIsExactDeadlockNotTimeout) {
  // Two ranks, each receiving from the other before sending: the classic
  // circular wait.  The scheduler must prove it instantly — with a
  // generous wall-clock budget the watchdog never fires, so a kTimeout
  // here would mean the detector failed.
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult run = run_scheduled(
      2,
      [](rt::RuntimeContext&, Comm& world) {
        const int me = world.raw_rank();
        const int peer = 1 - me;
        std::vector<int> got(1, -1);
        const std::vector<int> mine{me};
        world.recv(std::span<int>(got), peer, 0);
        world.send(std::span<const int>(mine), peer, 0);
      },
      {}, std::chrono::milliseconds(60'000));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(run.job_outcome(), rt::Outcome::kDeadlock) << run.job_message();
  EXPECT_NE(run.job_outcome(), rt::Outcome::kTimeout);
  EXPECT_LT(elapsed, 30.0) << "deadlock must not ride the watchdog";
  // The message names the wait-for cycle over the specific-source edges.
  EXPECT_NE(run.job_message().find("cycle:"), std::string::npos)
      << run.job_message();
  // The victim reports kDeadlock; its peer is unwound as collateral.
  int deadlocked = 0;
  for (const RankResult& r : run.ranks) {
    if (r.outcome == rt::Outcome::kDeadlock) ++deadlocked;
  }
  EXPECT_EQ(deadlocked, 1);
}

TEST(MatchScheduler, RecvFromFinishedRankIsDeadlock) {
  const RunResult run = run_scheduled(
      2, [](rt::RuntimeContext&, Comm& world) {
        if (world.raw_rank() == 0) {
          std::vector<int> got(1, -1);
          world.recv(std::span<int>(got), 1, 7);  // rank 1 never sends
        }
      });
  EXPECT_EQ(run.job_outcome(), rt::Outcome::kDeadlock) << run.job_message();
}

TEST(MatchScheduler, RecvAgainstCollectiveIsDeadlock) {
  // Rank 0 blocks in a receive while rank 1 enters a barrier rank 0 will
  // never reach: mixed recv/collective deadlock, confirmed across the
  // scheduler's collective confirmation window.
  const RunResult run = run_scheduled(
      2, [](rt::RuntimeContext&, Comm& world) {
        if (world.raw_rank() == 0) {
          std::vector<int> got(1, -1);
          world.recv(std::span<int>(got), 1, 1);
        } else {
          world.barrier();
        }
      });
  EXPECT_EQ(run.job_outcome(), rt::Outcome::kDeadlock) << run.job_message();
}

TEST(MatchScheduler, CollectiveLoopsDoNotFalseDeadlock) {
  // Ranks cycling through collectives are momentarily "all blocked" at
  // every rendezvous; the confirmation window must keep the detector
  // quiet for the entire run.
  const RunResult run = run_scheduled(
      4, [](rt::RuntimeContext&, Comm& world) {
        std::vector<long> acc(1, world.raw_rank());
        for (int round = 0; round < 25; ++round) {
          world.barrier();
          std::vector<long> out(1, 0);
          world.allreduce(std::span<const long>(acc), std::span<long>(out),
                          Op::kSum);
          acc = out;
        }
      });
  EXPECT_EQ(run.job_outcome(), rt::Outcome::kOk) << run.job_message();
}

TEST(MatchScheduler, UnreceivedMessageIsOrphanAtFinalize) {
  const RunResult run = run_scheduled(
      2, [](rt::RuntimeContext&, Comm& world) {
        if (world.raw_rank() == 1) {
          const std::vector<int> mine{41};
          world.send(std::span<const int>(mine), 0, 5);
        }
        world.barrier();
      });
  EXPECT_EQ(run.job_outcome(), rt::Outcome::kOrphanMessage)
      << run.job_message();
  EXPECT_EQ(run.ranks[0].outcome, rt::Outcome::kOrphanMessage);
  EXPECT_EQ(run.ranks[1].outcome, rt::Outcome::kOk);
  EXPECT_NE(run.ranks[0].message.find("unreceived"), std::string::npos);
}

TEST(MatchScheduler, FaultedJobsSkipTheOrphanCheck) {
  // A peer fault unwinds ranks mid-conversation; their leftover messages
  // are collateral, not a matching bug.
  const RunResult run = run_scheduled(
      2, [](rt::RuntimeContext& ctx, Comm& world) {
        if (world.raw_rank() == 1) {
          const std::vector<int> mine{1};
          world.send(std::span<const int>(mine), 0, 5);
          ctx.check(false, "seeded fault after send");
        }
      });
  EXPECT_EQ(run.job_outcome(), rt::Outcome::kAssert);
  for (const RankResult& r : run.ranks) {
    EXPECT_NE(r.outcome, rt::Outcome::kOrphanMessage);
  }
}

TEST(MatchScheduler, DeadPrescriptionFallsBackInsteadOfDeadlocking) {
  // The plan forces rank 0's wildcard receive to take rank 2's message,
  // but rank 2 exits without sending.  Replay has diverged: the scheduler
  // must drop the prescription and match rank 1's message, not declare a
  // deadlock that only exists under the stale plan.
  MatchPlan plan;
  plan.push_back({0, 0, 2});
  std::vector<int> got(1, -1);
  const RunResult run = run_scheduled(
      3,
      [&got](rt::RuntimeContext&, Comm& world) {
        const int me = world.raw_rank();
        if (me == 1) {
          const std::vector<int> mine{1};
          world.send(std::span<const int>(mine), 0, 3);
        } else if (me == 0) {
          world.recv(std::span<int>(got), kAnySource, 3);
        }
      },
      plan);
  EXPECT_EQ(run.job_outcome(), rt::Outcome::kOk) << run.job_message();
  EXPECT_TRUE(run.match_diverged);
  EXPECT_EQ(got[0], 1);
}

TEST(MatchScheduler, DisabledSchedulerKeepsPlainSemantics) {
  // match_schedule off: no trace, no orphan promotion — the default
  // pipeline's behavior is untouched.
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.nprocs = 2;
  spec.focus = 0;
  spec.registry = &registry;
  spec.timeout = std::chrono::milliseconds(5'000);
  spec.program = [](rt::RuntimeContext&, Comm& world) {
    if (world.raw_rank() == 1) {
      const std::vector<int> mine{1};
      world.send(std::span<const int>(mine), 0, 5);
    }
    world.barrier();
  };
  const RunResult run = launch(spec, dummy_table());
  EXPECT_EQ(run.job_outcome(), rt::Outcome::kOk) << run.job_message();
  EXPECT_TRUE(run.match_trace.empty());
}

}  // namespace
}  // namespace compi::minimpi
