// Fault-injection (chaos) tests: every injection kind must end within the
// job timeout with the correct per-rank outcomes — the injected outcome on
// the victim, kAborted (or kTimeout) on the peers — and never deadlock.
#include <gtest/gtest.h>

#include <chrono>

#include "minimpi/fault_plan.h"
#include "minimpi/launcher.h"

namespace compi::minimpi {
namespace {

using namespace std::chrono_literals;

const rt::BranchTable& dummy_table() {
  static const rt::BranchTable table = [] {
    rt::BranchTable t;
    t.add_site("main", "s0");
    t.finalize();
    return t;
  }();
  return table;
}

/// Launches `program` on `nprocs` ranks under `chaos`, asserting the job
/// finishes within `timeout` plus scheduling slack (no deadlock).
RunResult run_chaos(int nprocs, Program program, const FaultPlan& chaos,
                    std::chrono::milliseconds timeout = 500ms) {
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.program = std::move(program);
  spec.nprocs = nprocs;
  spec.focus = 0;
  spec.registry = &registry;
  spec.timeout = timeout;
  spec.chaos = chaos;
  const auto t0 = std::chrono::steady_clock::now();
  RunResult result = launch(spec, dummy_table());
  const auto took = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(took, timeout + 5s) << "injected faults must never deadlock";
  return result;
}

Program barrier_program() {
  return [](rt::RuntimeContext&, Comm& world) { world.barrier(); };
}

TEST(Chaos, DisabledPlanIsANoop) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  const RunResult result = run_chaos(4, barrier_program(), plan);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

class ChaosCrashTest : public ::testing::TestWithParam<rt::Outcome> {};

TEST_P(ChaosCrashTest, VictimGetsInjectedOutcomePeersUnwind) {
  FaultPlan plan;
  plan.crash_rank = 2;
  plan.crash_at_call = 1;
  plan.crash_outcome = GetParam();
  const RunResult result = run_chaos(4, barrier_program(), plan);

  EXPECT_EQ(result.ranks[2].outcome, GetParam());
  EXPECT_NE(result.ranks[2].message.find("injected"), std::string::npos)
      << result.ranks[2].message;
  for (int rank : {0, 1, 3}) {
    EXPECT_EQ(result.ranks[rank].outcome, rt::Outcome::kAborted)
        << "rank " << rank << " was blocked in the barrier and must be "
        << "unwound when the victim dies";
  }
  EXPECT_EQ(result.job_outcome(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllFaultKinds, ChaosCrashTest,
                         ::testing::Values(rt::Outcome::kSegfault,
                                           rt::Outcome::kFpe,
                                           rt::Outcome::kAssert,
                                           rt::Outcome::kTimeout,
                                           rt::Outcome::kMpiError),
                         [](const auto& info) {
                           std::string name(rt::to_string(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Chaos, CrashAtLaterCallFiresAtThatCall) {
  FaultPlan plan;
  plan.crash_rank = 1;
  plan.crash_at_call = 3;
  const RunResult result = run_chaos(
      2,
      [](rt::RuntimeContext&, Comm& world) {
        world.barrier();  // call 1: survives
        world.barrier();  // call 2: survives
        world.barrier();  // call 3: victim crashes here
      },
      plan);
  EXPECT_EQ(result.ranks[1].outcome, rt::Outcome::kSegfault);
  EXPECT_EQ(result.ranks[0].outcome, rt::Outcome::kAborted);
}

TEST(Chaos, DroppedMessageTripsTheWatchdog) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_rate = 1.0;  // every outgoing message silently lost
  const RunResult result = run_chaos(
      2,
      [](rt::RuntimeContext&, Comm& world) {
        if (world.raw_rank() == 0) {
          const std::vector<int> data{42};
          world.send(std::span<const int>(data), 1, 0);
        } else {
          std::vector<int> got(1);
          world.recv(std::span<int>(got), 0, 0);  // blocks forever
        }
      },
      plan, /*timeout=*/300ms);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kTimeout);
  EXPECT_EQ(result.ranks[1].outcome, rt::Outcome::kTimeout);
}

TEST(Chaos, DelayedMessagesStillDeliver) {
  FaultPlan plan;
  plan.seed = 3;
  plan.delay_rate = 1.0;
  plan.delay = std::chrono::milliseconds(10);
  const RunResult result = run_chaos(
      2,
      [](rt::RuntimeContext&, Comm& world) {
        if (world.raw_rank() == 0) {
          const std::vector<int> data{7};
          world.send(std::span<const int>(data), 1, 0);
        } else {
          std::vector<int> got(1);
          world.recv(std::span<int>(got), 0, 0);
          EXPECT_EQ(got[0], 7);
        }
      },
      plan, /*timeout=*/2000ms);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

TEST(Chaos, StalledCollectiveTimesOutWholeJob) {
  FaultPlan plan;
  plan.stall_rank = 1;
  plan.stall_at_collective = 1;
  const RunResult result =
      run_chaos(3, barrier_program(), plan, /*timeout=*/300ms);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kTimeout);
  // The stalling rank and every peer stuck in the barrier are unwound by
  // the deadline watchdog — nobody reports success.
  for (const RankResult& r : result.ranks) {
    EXPECT_NE(r.outcome, rt::Outcome::kOk);
  }
}

TEST(Chaos, SecondCollectiveStallAllowsTheFirst) {
  FaultPlan plan;
  plan.stall_rank = 0;
  plan.stall_at_collective = 2;
  int first_barrier_done = 0;
  const RunResult result = run_chaos(
      2,
      [&](rt::RuntimeContext&, Comm& world) {
        world.barrier();  // collective 1: completes
        if (world.raw_rank() == 0) ++first_barrier_done;
        world.barrier();  // collective 2: rank 0 stalls
      },
      plan, /*timeout=*/300ms);
  EXPECT_EQ(first_barrier_done, 1);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kTimeout);
}

TEST(Chaos, EngineDecisionsAreDeterministic) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop_rate = 0.3;
  plan.delay_rate = 0.2;
  ChaosEngine a(plan, 4);
  ChaosEngine b(plan, 4);
  for (int rank = 0; rank < 4; ++rank) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(a.should_drop(rank), b.should_drop(rank))
          << "rank " << rank << " decision " << i;
      EXPECT_EQ(a.next_delay(rank), b.next_delay(rank));
    }
  }
}

TEST(Chaos, DropRateIsRoughlyHonored) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_rate = 0.25;
  ChaosEngine engine(plan, 1);
  int dropped = 0;
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) dropped += engine.should_drop(0) ? 1 : 0;
  EXPECT_GT(dropped, kTrials / 8);
  EXPECT_LT(dropped, kTrials / 2);
}

TEST(Chaos, DifferentSeedsGiveDifferentNoise) {
  FaultPlan a_plan;
  a_plan.seed = 1;
  a_plan.drop_rate = 0.5;
  FaultPlan b_plan = a_plan;
  b_plan.seed = 2;
  ChaosEngine a(a_plan, 1);
  ChaosEngine b(b_plan, 1);
  int differing = 0;
  for (int i = 0; i < 256; ++i) {
    differing += a.should_drop(0) != b.should_drop(0) ? 1 : 0;
  }
  EXPECT_GT(differing, 0);
}

}  // namespace
}  // namespace compi::minimpi
