// MPMD launch-layout tests: the focus can sit at ANY global rank (the
// paper's `mpiexec -n i ex2 : -n 1 ex1 : -n s-i-1 ex2` layouts), and the
// heavy/light cost asymmetry is real.
#include <gtest/gtest.h>

#include "minimpi/launcher.h"

namespace compi::minimpi {
namespace {

const rt::BranchTable& table() {
  static const rt::BranchTable t = [] {
    rt::BranchTable b;
    b.add_site("m", "s");
    b.finalize();
    return b;
  }();
  return t;
}

class FocusPlacementTest : public ::testing::TestWithParam<int> {};

TEST_P(FocusPlacementTest, ExactlyTheFocusRunsHeavy) {
  const int focus = GetParam();
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.nprocs = 6;
  spec.focus = focus;
  spec.registry = &registry;
  spec.program = [](rt::RuntimeContext& ctx, Comm& world) {
    const sym::SymInt n = ctx.input_int("n");
    (void)ctx.branch(0, n < sym::SymInt(1 << 30));
    world.barrier();
  };
  const RunResult result = launch(spec, table());
  ASSERT_EQ(result.job_outcome(), rt::Outcome::kOk);
  for (int rank = 0; rank < 6; ++rank) {
    EXPECT_EQ(result.ranks[rank].log.heavy, rank == focus) << rank;
    // Light ranks record coverage but never constraints.
    if (rank != focus) {
      EXPECT_EQ(result.ranks[rank].log.path.size(), 0u);
      EXPECT_GT(result.ranks[rank].log.covered.count(), 0u);
    }
  }
  EXPECT_EQ(result.focus_log().path.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllRanks, FocusPlacementTest,
                         ::testing::Values(0, 1, 3, 5));

TEST(LauncherAsymmetry, HeavyLogsStrictlyLargerThanLight) {
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.nprocs = 4;
  spec.focus = 2;
  spec.registry = &registry;
  spec.program = [](rt::RuntimeContext& ctx, Comm& world) {
    const sym::SymInt n = ctx.input_int("n");
    for (int i = 0; i < 200; ++i) {
      (void)ctx.branch(0, sym::SymInt(i % 7) < n);
    }
    ctx.ops(10'000);
    world.barrier();
  };
  const RunResult result = launch(spec, table());
  ASSERT_EQ(result.job_outcome(), rt::Outcome::kOk);
  const std::size_t heavy = result.ranks[2].log.serialize().size();
  const std::size_t light = result.ranks[0].log.serialize().size();
  EXPECT_GT(heavy, light * 5)
      << "the execution trace makes heavy logs much larger";
  EXPECT_GT(result.ranks[2].log.op_count, 0);
  EXPECT_EQ(result.ranks[0].log.op_count, 0)
      << "light ranks skip the per-operation stubs";
}

TEST(LauncherIdentity, RanksKnowThemselves) {
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.nprocs = 5;
  spec.focus = 0;
  spec.registry = &registry;
  spec.program = [](rt::RuntimeContext&, Comm& world) {
    EXPECT_EQ(world.raw_size(), 5);
    EXPECT_EQ(world.global_rank_of(world.raw_rank()), world.raw_rank());
  };
  const RunResult result = launch(spec, table());
  ASSERT_EQ(result.job_outcome(), rt::Outcome::kOk);
  for (int rank = 0; rank < 5; ++rank) {
    EXPECT_EQ(result.ranks[rank].log.rank, rank);
    EXPECT_EQ(result.ranks[rank].log.nprocs, 5);
  }
}

TEST(TypedMarking, DomainsMatchTheCType) {
  rt::VarRegistry registry;
  solver::Assignment inputs;
  rt::ContextParams params;
  params.mode = rt::Mode::kHeavy;
  params.table = &table();
  params.registry = &registry;
  params.inputs = &inputs;
  rt::RuntimeContext ctx(params);
  (void)ctx.input_uint("u");
  (void)ctx.input_short("s");
  (void)ctx.input_char("c");
  (void)ctx.input_bool("b");
  EXPECT_EQ(registry.effective_domain(0), (solver::Interval{0, 4294967295LL}));
  EXPECT_EQ(registry.effective_domain(1), (solver::Interval{-32768, 32767}));
  EXPECT_EQ(registry.effective_domain(2), (solver::Interval{-128, 127}));
  EXPECT_EQ(registry.effective_domain(3), (solver::Interval{0, 1}));
}

}  // namespace
}  // namespace compi::minimpi
