// World / Mailbox unit tests (below the launcher): matching, ordering,
// abort semantics.
#include <gtest/gtest.h>

#include <thread>

#include "minimpi/world.h"

namespace compi::minimpi {
namespace {

Message msg(int src, std::int64_t comm, int tag, std::int64_t payload) {
  Message m;
  m.src = src;
  m.comm_uid = comm;
  m.tag = tag;
  m.payload = to_bytes(std::span<const std::int64_t>(&payload, 1));
  return m;
}

std::int64_t payload_of(const Message& m) {
  std::int64_t v = 0;
  from_bytes<std::int64_t>(m.payload, std::span<std::int64_t>(&v, 1));
  return v;
}

TEST(Mailbox, FifoPerMatchingKey) {
  World world(1, std::chrono::seconds(2));
  Mailbox& mb = world.mailbox(0);
  mb.push(msg(0, 0, 1, 10));
  mb.push(msg(0, 0, 1, 20));
  EXPECT_EQ(payload_of(mb.pop_matching(world, 0, 0, 1)), 10);
  EXPECT_EQ(payload_of(mb.pop_matching(world, 0, 0, 1)), 20);
}

TEST(Mailbox, TagMismatchIsSkippedNotDropped) {
  World world(1, std::chrono::seconds(2));
  Mailbox& mb = world.mailbox(0);
  mb.push(msg(0, 0, 7, 70));
  mb.push(msg(0, 0, 8, 80));
  EXPECT_EQ(payload_of(mb.pop_matching(world, 0, 0, 8)), 80);
  EXPECT_EQ(payload_of(mb.pop_matching(world, 0, 0, 7)), 70);
}

TEST(Mailbox, CommUidSegregatesTagSpaces) {
  World world(1, std::chrono::seconds(2));
  Mailbox& mb = world.mailbox(0);
  mb.push(msg(0, /*comm=*/1, 5, 100));
  mb.push(msg(0, /*comm=*/2, 5, 200));
  EXPECT_EQ(payload_of(mb.pop_matching(world, 0, 2, 5)), 200);
  EXPECT_EQ(payload_of(mb.pop_matching(world, 0, 1, 5)), 100);
}

TEST(Mailbox, WildcardsMatchAnything) {
  World world(1, std::chrono::seconds(2));
  Mailbox& mb = world.mailbox(0);
  mb.push(msg(3, 0, 9, 42));
  const Message m = mb.pop_matching(world, kAnySource, 0, kAnyTag);
  EXPECT_EQ(m.src, 3);
  EXPECT_EQ(m.tag, 9);
  EXPECT_EQ(payload_of(m), 42);
}

TEST(Mailbox, AbortWakesBlockedReceiver) {
  World world(2, std::chrono::seconds(30));
  std::atomic<bool> unwound{false};
  std::jthread receiver([&] {
    try {
      (void)world.mailbox(0).pop_matching(world, 1, 0, 1);
    } catch (const JobAborted&) {
      unwound = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  world.abort();
  receiver.join();
  EXPECT_TRUE(unwound);
}

TEST(World, DeadlineTriggersJobAborted) {
  World world(1, std::chrono::milliseconds(100));
  EXPECT_THROW((void)world.mailbox(0).pop_matching(world, 0, 0, 1),
               JobAborted);
}

TEST(World, CheckAliveThrowsOnlyWhenDead) {
  World world(1, std::chrono::seconds(10));
  EXPECT_NO_THROW(world.check_alive());
  world.abort();
  EXPECT_THROW(world.check_alive(), JobAborted);
}

TEST(World, CommUidsAreUnique) {
  World world(1, std::chrono::seconds(2));
  const auto a = world.next_comm_uid();
  const auto b = world.next_comm_uid();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace compi::minimpi
