// MiniMPI semantics tests: point-to-point, collectives, Comm_split, and
// launcher fault handling — checked against sequential oracles.
#include <gtest/gtest.h>

#include <numeric>

#include "minimpi/launcher.h"

namespace compi::minimpi {
namespace {

const rt::BranchTable& dummy_table() {
  static const rt::BranchTable table = [] {
    rt::BranchTable t;
    t.add_site("main", "s0");
    t.finalize();
    return t;
  }();
  return table;
}

/// Runs `program` on `nprocs` ranks and returns the result, failing the
/// test if the job did not finish cleanly (unless `expect_fault`).
RunResult run(int nprocs, Program program, bool expect_fault = false) {
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.program = std::move(program);
  spec.nprocs = nprocs;
  spec.focus = 0;
  spec.registry = &registry;
  spec.timeout = std::chrono::milliseconds(5000);
  RunResult result = launch(spec, dummy_table());
  if (!expect_fault) {
    EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk)
        << result.job_message();
  }
  return result;
}

TEST(MiniMpiP2p, SendRecvDeliversPayload) {
  run(2, [](rt::RuntimeContext&, Comm& world) {
    if (world.raw_rank() == 0) {
      const std::vector<std::int64_t> data{1, 2, 3};
      world.send(std::span<const std::int64_t>(data), 1, 5);
    } else {
      std::vector<std::int64_t> got(3);
      const Status st = world.recv(std::span<std::int64_t>(got), 0, 5);
      EXPECT_EQ(got, (std::vector<std::int64_t>{1, 2, 3}));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 5);
    }
  });
}

TEST(MiniMpiP2p, TagMatchingSkipsNonMatching) {
  run(2, [](rt::RuntimeContext&, Comm& world) {
    if (world.raw_rank() == 0) {
      const std::vector<int> a{10};
      const std::vector<int> b{20};
      world.send(std::span<const int>(a), 1, /*tag=*/1);
      world.send(std::span<const int>(b), 1, /*tag=*/2);
    } else {
      std::vector<int> got(1);
      world.recv(std::span<int>(got), 0, 2);  // tag 2 first
      EXPECT_EQ(got[0], 20);
      world.recv(std::span<int>(got), 0, 1);
      EXPECT_EQ(got[0], 10);
    }
  });
}

TEST(MiniMpiP2p, AnySourceReceives) {
  run(3, [](rt::RuntimeContext&, Comm& world) {
    if (world.raw_rank() != 0) {
      const std::vector<int> data{world.raw_rank()};
      world.send(std::span<const int>(data), 0, 9);
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        std::vector<int> got(1);
        world.recv(std::span<int>(got), kAnySource, 9);
        sum += got[0];
      }
      EXPECT_EQ(sum, 3);  // ranks 1 + 2
    }
  });
}

TEST(MiniMpiP2p, SendrecvExchanges) {
  run(2, [](rt::RuntimeContext&, Comm& world) {
    const int me = world.raw_rank();
    const std::vector<int> mine{me + 100};
    std::vector<int> theirs(1);
    world.sendrecv(std::span<const int>(mine), 1 - me, 4,
                   std::span<int>(theirs), 1 - me, 4);
    EXPECT_EQ(theirs[0], (1 - me) + 100);
  });
}

TEST(MiniMpiCollectives, BarrierCompletes) {
  run(8, [](rt::RuntimeContext&, Comm& world) {
    for (int i = 0; i < 10; ++i) world.barrier();
  });
}

TEST(MiniMpiCollectives, BcastFromEveryRoot) {
  run(4, [](rt::RuntimeContext&, Comm& world) {
    for (int root = 0; root < 4; ++root) {
      std::vector<double> data(3, world.raw_rank() == root ? 7.5 : 0.0);
      world.bcast(std::span<double>(data), root);
      EXPECT_EQ(data, (std::vector<double>(3, 7.5))) << "root " << root;
    }
  });
}

TEST(MiniMpiCollectives, AllreduceSumMatchesOracle) {
  constexpr int kN = 5;
  run(kN, [](rt::RuntimeContext&, Comm& world) {
    const std::vector<std::int64_t> in{world.raw_rank() + 1, 10};
    std::vector<std::int64_t> out(2);
    world.allreduce(std::span<const std::int64_t>(in),
                    std::span<std::int64_t>(out), Op::kSum);
    EXPECT_EQ(out[0], kN * (kN + 1) / 2);  // 1+2+...+N
    EXPECT_EQ(out[1], 10 * kN);
  });
}

TEST(MiniMpiCollectives, AllreduceMinMaxProd) {
  run(3, [](rt::RuntimeContext&, Comm& world) {
    const std::vector<std::int64_t> in{world.raw_rank() + 1};
    std::vector<std::int64_t> out(1);
    world.allreduce(std::span<const std::int64_t>(in),
                    std::span<std::int64_t>(out), Op::kMin);
    EXPECT_EQ(out[0], 1);
    world.allreduce(std::span<const std::int64_t>(in),
                    std::span<std::int64_t>(out), Op::kMax);
    EXPECT_EQ(out[0], 3);
    world.allreduce(std::span<const std::int64_t>(in),
                    std::span<std::int64_t>(out), Op::kProd);
    EXPECT_EQ(out[0], 6);
  });
}

TEST(MiniMpiCollectives, ReduceOnlyRootHasResult) {
  run(4, [](rt::RuntimeContext&, Comm& world) {
    const std::vector<std::int64_t> in{1};
    std::vector<std::int64_t> out{-1};
    world.reduce(std::span<const std::int64_t>(in),
                 std::span<std::int64_t>(out), Op::kSum, 2);
    if (world.raw_rank() == 2) {
      EXPECT_EQ(out[0], 4);
    } else {
      EXPECT_EQ(out[0], -1);
    }
  });
}

TEST(MiniMpiCollectives, AllgatherConcatenatesByRank) {
  run(3, [](rt::RuntimeContext&, Comm& world) {
    const std::vector<int> in{world.raw_rank() * 10, world.raw_rank() * 10 + 1};
    std::vector<int> out(6);
    world.allgather(std::span<const int>(in), std::span<int>(out));
    EXPECT_EQ(out, (std::vector<int>{0, 1, 10, 11, 20, 21}));
  });
}

TEST(MiniMpiCollectives, ScatterSlicesRootBuffer) {
  run(3, [](rt::RuntimeContext&, Comm& world) {
    std::vector<int> in;
    if (world.raw_rank() == 0) in = {100, 101, 110, 111, 120, 121};
    else in.resize(6);
    std::vector<int> out(2);
    world.scatter(std::span<const int>(in), std::span<int>(out), 0);
    EXPECT_EQ(out[0], 100 + world.raw_rank() * 10);
    EXPECT_EQ(out[1], 101 + world.raw_rank() * 10);
  });
}

TEST(MiniMpiCollectives, GatherCollectsAtRoot) {
  run(3, [](rt::RuntimeContext&, Comm& world) {
    const std::vector<int> in{world.raw_rank()};
    std::vector<int> out(3, -1);
    world.gather(std::span<const int>(in), std::span<int>(out), 1);
    if (world.raw_rank() == 1) {
      EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
    }
  });
}

TEST(MiniMpiSplit, GroupsByColorOrdersByKey) {
  run(4, [](rt::RuntimeContext& ctx, Comm& world) {
    const int me = world.raw_rank();
    // Colors: {0,1} even/odd; key reverses rank order inside the group.
    Comm sub = world.split(ctx, me % 2, -me);
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.raw_size(), 2);
    // Group members sorted by key: higher rank gets local rank 0.
    const int expected_local = me < 2 ? 1 : 0;
    EXPECT_EQ(sub.raw_rank(), expected_local);
  });
}

TEST(MiniMpiSplit, UndefinedColorGetsInvalidComm) {
  run(3, [](rt::RuntimeContext& ctx, Comm& world) {
    const int me = world.raw_rank();
    Comm sub = world.split(ctx, me == 0 ? -1 : 0, me);
    if (me == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.raw_size(), 2);
    }
  });
}

TEST(MiniMpiSplit, SubCommunicatorCollectivesWork) {
  run(4, [](rt::RuntimeContext& ctx, Comm& world) {
    Comm sub = world.split(ctx, world.raw_rank() % 2, world.raw_rank());
    std::vector<std::int64_t> out(1);
    const std::vector<std::int64_t> in{world.raw_rank()};
    sub.allreduce(std::span<const std::int64_t>(in),
                  std::span<std::int64_t>(out), Op::kSum);
    // evens: 0+2, odds: 1+3
    EXPECT_EQ(out[0], world.raw_rank() % 2 == 0 ? 2 : 4);
  });
}

TEST(MiniMpiSplit, SubCommP2pIsIsolatedFromWorld) {
  run(4, [](rt::RuntimeContext& ctx, Comm& world) {
    Comm sub = world.split(ctx, world.raw_rank() / 2, world.raw_rank());
    // Local ranks 0 and 1 in each half exchange within the sub-comm.
    const std::vector<int> mine{world.raw_rank()};
    std::vector<int> theirs(1);
    sub.sendrecv(std::span<const int>(mine), 1 - sub.raw_rank(), 2,
                 std::span<int>(theirs), 1 - sub.raw_rank(), 2);
    const int expected =
        world.raw_rank() % 2 == 0 ? world.raw_rank() + 1 : world.raw_rank() - 1;
    EXPECT_EQ(theirs[0], expected);
  });
}

TEST(MiniMpiSplit, MappingRowRecordedForFocus) {
  const RunResult result =
      run(4, [](rt::RuntimeContext& ctx, Comm& world) {
        (void)world.split(ctx, world.raw_rank() % 2, world.raw_rank());
      });
  const rt::TestLog& log = result.focus_log();
  ASSERT_EQ(log.rank_mapping.size(), 1u);
  EXPECT_EQ(log.rank_mapping[0], (std::vector<int>{0, 2}))
      << "focus (rank 0, even) sees its group's global ranks by local order";
}

TEST(MiniMpiLauncher, FocusRunsHeavyOthersLight) {
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.nprocs = 4;
  spec.focus = 2;
  spec.registry = &registry;
  spec.program = [](rt::RuntimeContext& ctx, Comm& world) {
    const sym::SymInt r = world.comm_rank(ctx);
    EXPECT_EQ(r.is_symbolic(), world.raw_rank() == 2);
  };
  const RunResult result = launch(spec, dummy_table());
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk);
  EXPECT_TRUE(result.focus_log().heavy);
  EXPECT_FALSE(result.ranks[0].log.heavy);
}

TEST(MiniMpiLauncher, OneWayRunsEveryRankHeavy) {
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.nprocs = 3;
  spec.focus = 0;
  spec.one_way = true;
  spec.registry = &registry;
  spec.program = [](rt::RuntimeContext& ctx, Comm&) {
    EXPECT_TRUE(ctx.heavy());
  };
  const RunResult result = launch(spec, dummy_table());
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk);
  for (const RankResult& r : result.ranks) EXPECT_TRUE(r.log.heavy);
}

TEST(MiniMpiLauncher, FaultAbortsPeersAndIsReported) {
  const RunResult result = run(
      4,
      [](rt::RuntimeContext& ctx, Comm& world) {
        if (world.raw_rank() == 1) {
          throw rt::SimulatedSegfault("boom on rank 1");
        }
        // Peers block in a collective and must be unwound, not hung.
        world.barrier();
        world.barrier();
      },
      /*expect_fault=*/true);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kSegfault);
  EXPECT_EQ(result.ranks[1].outcome, rt::Outcome::kSegfault);
  int aborted = 0;
  for (const RankResult& r : result.ranks) {
    aborted += r.outcome == rt::Outcome::kAborted ? 1 : 0;
  }
  EXPECT_GE(aborted, 1) << "blocked peers report kAborted";
}

TEST(MiniMpiLauncher, DeadlockHitsWallClockTimeout) {
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.nprocs = 2;
  spec.focus = 0;
  spec.registry = &registry;
  spec.timeout = std::chrono::milliseconds(300);
  spec.program = [](rt::RuntimeContext&, Comm& world) {
    if (world.raw_rank() == 0) {
      std::vector<int> buf(1);
      world.recv(std::span<int>(buf), 1, 99);  // never sent: deadlock
    } else {
      world.barrier();  // mismatched collective
    }
  };
  const RunResult result = launch(spec, dummy_table());
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kTimeout);
}

TEST(MiniMpiLauncher, StepBudgetIsTimeoutOutcome) {
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.nprocs = 1;
  spec.focus = 0;
  spec.registry = &registry;
  spec.step_budget = 100;
  spec.program = [](rt::RuntimeContext& ctx, Comm&) {
    for (;;) {
      (void)ctx.branch(0, sym::SymBool(true));  // infinite loop
    }
  };
  const RunResult result = launch(spec, dummy_table());
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kTimeout);
}

TEST(MiniMpiLauncher, MergedCoverageUnionsAllRanks) {
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.nprocs = 2;
  spec.focus = 0;
  spec.registry = &registry;
  spec.program = [](rt::RuntimeContext& ctx, Comm& world) {
    // Rank 0 covers the true arm; rank 1 the false arm.
    (void)ctx.branch(0, sym::SymBool(world.raw_rank() == 0));
  };
  const RunResult result = launch(spec, dummy_table());
  const rt::CoverageBitmap merged = result.merged_coverage();
  EXPECT_TRUE(merged.covered(sym::branch_id(0, true)));
  EXPECT_TRUE(merged.covered(sym::branch_id(0, false)));
}

}  // namespace
}  // namespace compi::minimpi
