// Tests for the extended MiniMPI surface: non-blocking point-to-point and
// the Alltoall / Reduce_scatter / Scan collectives, against oracles.
#include <gtest/gtest.h>

#include "minimpi/launcher.h"

namespace compi::minimpi {
namespace {

const rt::BranchTable& dummy_table() {
  static const rt::BranchTable table = [] {
    rt::BranchTable t;
    t.add_site("main", "s0");
    t.finalize();
    return t;
  }();
  return table;
}

void run(int nprocs, Program program) {
  rt::VarRegistry registry;
  LaunchSpec spec;
  spec.program = std::move(program);
  spec.nprocs = nprocs;
  spec.focus = 0;
  spec.registry = &registry;
  spec.timeout = std::chrono::milliseconds(5000);
  const RunResult result = launch(spec, dummy_table());
  ASSERT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

TEST(MiniMpiNonBlocking, IsendIrecvRoundTrip) {
  run(2, [](rt::RuntimeContext&, Comm& world) {
    const int me = world.raw_rank();
    const std::vector<int> mine{me + 500};
    std::vector<int> theirs(1, -1);
    Request r = world.irecv(std::span<int>(theirs), 1 - me, 3);
    Request s = world.isend(std::span<const int>(mine), 1 - me, 3);
    EXPECT_TRUE(s.done()) << "eager isend completes immediately";
    // r.done() is timing-dependent: the receive is posted at call time, so
    // it completes immediately iff the peer's eager send already landed.
    r.wait();
    s.wait();
    EXPECT_EQ(theirs[0], (1 - me) + 500);
  });
}

TEST(MiniMpiNonBlocking, WaitallDrainsAllRequests) {
  run(4, [](rt::RuntimeContext&, Comm& world) {
    const int me = world.raw_rank();
    const int np = world.raw_size();
    const std::vector<int> mine{me};
    std::vector<std::vector<int>> in(np, std::vector<int>(1, -1));
    std::vector<Request> reqs;
    for (int peer = 0; peer < np; ++peer) {
      if (peer == me) continue;
      reqs.push_back(world.irecv(std::span<int>(in[peer]), peer, 4));
    }
    for (int peer = 0; peer < np; ++peer) {
      if (peer == me) continue;
      reqs.push_back(world.isend(std::span<const int>(mine), peer, 4));
    }
    wait_all(reqs);
    for (int peer = 0; peer < np; ++peer) {
      if (peer != me) EXPECT_EQ(in[peer][0], peer);
    }
  });
}

TEST(MiniMpiNonBlocking, WaitIsIdempotent) {
  run(2, [](rt::RuntimeContext&, Comm& world) {
    const int me = world.raw_rank();
    const std::vector<int> mine{7};
    std::vector<int> theirs(1);
    Request r = world.irecv(std::span<int>(theirs), 1 - me, 5);
    (void)world.isend(std::span<const int>(mine), 1 - me, 5);
    r.wait();
    r.wait();  // second wait must be a no-op
    EXPECT_EQ(theirs[0], 7);
  });
}

TEST(MiniMpiAlltoall, TransposesChunks) {
  constexpr int kN = 4;
  run(kN, [](rt::RuntimeContext&, Comm& world) {
    const int me = world.raw_rank();
    // Chunk for destination d is {100*me + d}.
    std::vector<int> in(kN);
    for (int d = 0; d < kN; ++d) in[d] = 100 * me + d;
    std::vector<int> out(kN, -1);
    world.alltoall(std::span<const int>(in), std::span<int>(out));
    // From source s we must receive {100*s + me}.
    for (int s = 0; s < kN; ++s) EXPECT_EQ(out[s], 100 * s + me);
  });
}

TEST(MiniMpiAlltoall, MultiElementChunks) {
  run(2, [](rt::RuntimeContext&, Comm& world) {
    const int me = world.raw_rank();
    const std::vector<double> in{me * 10.0, me * 10.0 + 1,   // to rank 0
                                 me * 10.0 + 2, me * 10.0 + 3};  // to rank 1
    std::vector<double> out(4);
    world.alltoall(std::span<const double>(in), std::span<double>(out));
    EXPECT_EQ(out[0], 0 * 10.0 + 2.0 * me);
    EXPECT_EQ(out[2], 1 * 10.0 + 2.0 * me);
  });
}

TEST(MiniMpiReduceScatter, ReducesThenScatters) {
  constexpr int kN = 3;
  run(kN, [](rt::RuntimeContext&, Comm& world) {
    // Everyone contributes [1, 2, 3] (one element per destination).
    const std::vector<std::int64_t> in{1, 2, 3};
    std::vector<std::int64_t> out(1, -1);
    world.reduce_scatter(std::span<const std::int64_t>(in),
                         std::span<std::int64_t>(out), Op::kSum);
    EXPECT_EQ(out[0], kN * (world.raw_rank() + 1));
  });
}

TEST(MiniMpiScan, InclusivePrefixSum) {
  constexpr int kN = 5;
  run(kN, [](rt::RuntimeContext&, Comm& world) {
    const int me = world.raw_rank();
    const std::vector<std::int64_t> in{me + 1};
    std::vector<std::int64_t> out(1);
    world.scan(std::span<const std::int64_t>(in),
               std::span<std::int64_t>(out), Op::kSum);
    EXPECT_EQ(out[0], (me + 1) * (me + 2) / 2);  // 1+2+...+(me+1)
  });
}

TEST(MiniMpiScan, MaxOperator) {
  run(4, [](rt::RuntimeContext&, Comm& world) {
    const int me = world.raw_rank();
    // Values 3, 1, 4, 1 -> inclusive max prefix 3, 3, 4, 4.
    const std::int64_t vals[] = {3, 1, 4, 1};
    const std::vector<std::int64_t> in{vals[me]};
    std::vector<std::int64_t> out(1);
    world.scan(std::span<const std::int64_t>(in),
               std::span<std::int64_t>(out), Op::kMax);
    const std::int64_t expected[] = {3, 3, 4, 4};
    EXPECT_EQ(out[0], expected[me]);
  });
}

TEST(MiniMpiScan, OnSplitCommunicator) {
  run(4, [](rt::RuntimeContext& ctx, Comm& world) {
    Comm sub = world.split(ctx, world.raw_rank() % 2, world.raw_rank());
    const std::vector<std::int64_t> in{10};
    std::vector<std::int64_t> out(1);
    sub.scan(std::span<const std::int64_t>(in),
             std::span<std::int64_t>(out), Op::kSum);
    EXPECT_EQ(out[0], 10 * (sub.raw_rank() + 1));
  });
}

}  // namespace
}  // namespace compi::minimpi
