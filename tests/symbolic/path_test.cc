#include "symbolic/path.h"

#include <gtest/gtest.h>

#include "solver/predicate.h"

namespace compi::sym {
namespace {

using solver::make_ge_const;
using solver::make_le_const;

TEST(BranchId, RoundTrip) {
  for (SiteId s : {0, 1, 7, 100}) {
    for (bool taken : {false, true}) {
      const BranchId b = branch_id(s, taken);
      EXPECT_EQ(site_of(b), s);
      EXPECT_EQ(direction_of(b), taken);
    }
  }
}

Path make_path() {
  Path p;
  p.append(0, true, make_ge_const(0, 1));   // x0 >= 1
  p.append(1, false, make_le_const(0, 9));  // x0 <= 9
  p.append(2, true, make_ge_const(1, 5));   // x1 >= 5
  return p;
}

TEST(Path, AppendAndAccess) {
  const Path p = make_path();
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1].site, 1);
  EXPECT_FALSE(p[1].taken);
}

TEST(Path, ConstraintsNegatingKeepsPrefixNegatesLast) {
  const Path p = make_path();
  const auto preds = p.constraints_negating(1);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], make_ge_const(0, 1));
  EXPECT_EQ(preds[1], make_le_const(0, 9).negated());
}

TEST(Path, ConstraintsNegatingDepthZero) {
  const Path p = make_path();
  const auto preds = p.constraints_negating(0);
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0], make_ge_const(0, 1).negated());
}

TEST(Path, AllConstraints) {
  const Path p = make_path();
  EXPECT_EQ(p.all_constraints().size(), 3u);
}

TEST(Path, DivergesAsPredictedTrueCase) {
  const Path parent = make_path();
  Path child;
  child.append(0, true, make_ge_const(0, 1));
  child.append(1, true, make_le_const(0, 9).negated());  // flipped at 1
  EXPECT_TRUE(parent.diverges_as_predicted(child, 1));
}

TEST(Path, DivergesAsPredictedFailsOnPrefixMismatch) {
  const Path parent = make_path();
  Path child;
  child.append(0, false, make_ge_const(0, 1).negated());  // prefix differs
  child.append(1, true, make_le_const(0, 9).negated());
  EXPECT_FALSE(parent.diverges_as_predicted(child, 1));
}

TEST(Path, DivergesAsPredictedFailsWithoutFlip) {
  const Path parent = make_path();
  const Path same = make_path();  // same direction at depth 1
  EXPECT_FALSE(parent.diverges_as_predicted(same, 1));
}

TEST(Path, DivergesAsPredictedFailsOnShortPath) {
  const Path parent = make_path();
  Path child;
  child.append(0, true, make_ge_const(0, 1));
  EXPECT_FALSE(parent.diverges_as_predicted(child, 2));
}

TEST(Path, ClearEmptiesEverything) {
  Path p = make_path();
  p.clear();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
}

}  // namespace
}  // namespace compi::sym
