#include "symbolic/sym_value.h"

#include <gtest/gtest.h>

namespace compi::sym {
namespace {

TEST(SymInt, ConcreteOnlyStaysConcrete) {
  const SymInt a(4), b(6);
  EXPECT_FALSE((a + b).is_symbolic());
  EXPECT_EQ((a + b).value(), 10);
  EXPECT_EQ((a - b).value(), -2);
  EXPECT_EQ((a * b).value(), 24);
}

TEST(SymInt, SymbolicAdditionBuildsExpr) {
  const SymInt x(10, Var{0});
  const SymInt y(20, Var{1});
  const SymInt s = x + y;
  EXPECT_TRUE(s.is_symbolic());
  EXPECT_EQ(s.value(), 30);
  EXPECT_EQ(s.expr().coeff_of(0), 1);
  EXPECT_EQ(s.expr().coeff_of(1), 1);
}

TEST(SymInt, MixedAdditionKeepsSymbolicSide) {
  const SymInt x(10, Var{0});
  const SymInt s = x + SymInt(5);
  EXPECT_TRUE(s.is_symbolic());
  EXPECT_EQ(s.value(), 15);
  EXPECT_EQ(s.expr().constant_part(), 5);
}

TEST(SymInt, SubtractionCancellation) {
  const SymInt x(10, Var{0});
  const SymInt d = x - x;
  EXPECT_EQ(d.value(), 0);
  // x - x leaves a constant-zero expression; comparisons on it collapse.
  const SymBool c = d == SymInt(0);
  EXPECT_TRUE(c.value());
  EXPECT_FALSE(c.is_symbolic()) << "cancelled expression must be concrete";
}

TEST(SymInt, MultiplyByConstantScales) {
  const SymInt x(10, Var{0});
  const SymInt m = x * SymInt(3);
  EXPECT_TRUE(m.is_symbolic());
  EXPECT_EQ(m.value(), 30);
  EXPECT_EQ(m.expr().coeff_of(0), 3);
}

TEST(SymInt, SymbolicTimesSymbolicLinearizes) {
  // CREST semantics: the right operand is concretized.
  const SymInt x(10, Var{0});
  const SymInt y(4, Var{1});
  const SymInt m = x * y;
  EXPECT_TRUE(m.is_symbolic());
  EXPECT_EQ(m.value(), 40);
  EXPECT_EQ(m.expr().coeff_of(0), 4);   // x scaled by concrete y
  EXPECT_EQ(m.expr().coeff_of(1), 0);   // y dropped
}

TEST(SymInt, MultiplyByZeroConcretizes) {
  const SymInt x(10, Var{0});
  const SymInt m = x * SymInt(0);
  EXPECT_EQ(m.value(), 0);
  EXPECT_FALSE(m.is_symbolic());
}

TEST(SymInt, DivisionIsConcrete) {
  const SymInt x(10, Var{0});
  const SymInt d = x / SymInt(3);
  EXPECT_EQ(d.value(), 3);
  EXPECT_FALSE(d.is_symbolic());
  const SymInt r = x % SymInt(3);
  EXPECT_EQ(r.value(), 1);
  EXPECT_FALSE(r.is_symbolic());
}

TEST(SymInt, UnaryNegation) {
  const SymInt x(10, Var{0});
  const SymInt n = -x;
  EXPECT_EQ(n.value(), -10);
  EXPECT_EQ(n.expr().coeff_of(0), -1);
}

TEST(SymBool, ConcreteComparison) {
  const SymBool c = SymInt(3) < SymInt(5);
  EXPECT_TRUE(c.value());
  EXPECT_FALSE(c.is_symbolic());
}

TEST(SymBool, SymbolicComparisonCarriesPredicate) {
  const SymInt x(10, Var{0});
  const SymBool c = x < SymInt(20);  // true, predicate x0 - 20 < 0
  EXPECT_TRUE(c.value());
  ASSERT_TRUE(c.is_symbolic());
  EXPECT_TRUE(c.predicate().holds([](Var) { return 10; }));
  EXPECT_FALSE(c.predicate().holds([](Var) { return 25; }));
}

TEST(SymBool, TakenPredicateMatchesOutcome) {
  const SymInt x(30, Var{0});
  const SymBool c = x < SymInt(20);  // false
  EXPECT_FALSE(c.value());
  // The taken (false) direction satisfies the negated predicate.
  EXPECT_TRUE(c.taken_predicate().holds([](Var) { return 30; }));
  EXPECT_FALSE(c.taken_predicate().holds([](Var) { return 10; }));
}

TEST(SymBool, NotFlipsBothParts) {
  const SymInt x(10, Var{0});
  const SymBool c = !(x < SymInt(20));
  EXPECT_FALSE(c.value());
  ASSERT_TRUE(c.is_symbolic());
  EXPECT_FALSE(c.predicate().holds([](Var) { return 10; }));
}

TEST(SymBool, AllComparisonOperators) {
  const SymInt x(5, Var{0});
  EXPECT_TRUE((x == SymInt(5)).value());
  EXPECT_TRUE((x != SymInt(6)).value());
  EXPECT_TRUE((x < SymInt(6)).value());
  EXPECT_TRUE((x <= SymInt(5)).value());
  EXPECT_TRUE((x > SymInt(4)).value());
  EXPECT_TRUE((x >= SymInt(5)).value());
  EXPECT_FALSE((x == SymInt(6)).value());
  EXPECT_FALSE((x > SymInt(5)).value());
}

}  // namespace
}  // namespace compi::sym
