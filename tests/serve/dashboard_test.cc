// `compi top` internals: the Prometheus text parser, the sparkline, the
// pure frame renderer, and run_top's two data paths (status file and
// HTTP).  Rendering is string-in/string-out, so none of this needs a tty.
#include "serve/dashboard.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/status.h"
#include "serve/control_plane.h"
#include "serve/http.h"

namespace compi::serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_dashboard_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

obs::StatusSnapshot sample_snapshot() {
  obs::StatusSnapshot s;
  s.iteration = 42;
  s.covered_branches = 90;
  s.bugs = 2;
  s.elapsed_seconds = 75.0;
  s.nprocs = 8;
  s.focus = 0;
  s.outcome = "ok";
  s.serve_port = 9001;
  s.workers = 2;
  s.iterations_total = 100;
  s.frontier_depth = 5;
  s.interleavings_pending = 1;
  s.solver_cache_hits = 30;
  s.solver_cache_misses = 10;
  s.coverage_timeline = {{0, 10}, {20, 50}, {42, 90}};
  s.worker_status.resize(2);
  s.worker_status[0] = {42, obs::WorkerPhase::kExecute, 74.5, 21};
  s.worker_status[1] = {41, obs::WorkerPhase::kSolve, 74.0, 21};
  return s;
}

TEST(PrometheusText, ParsesSamplesAndSkipsComments) {
  const auto metrics = parse_prometheus_text(
      "# HELP compi_x_total help text\n"
      "# TYPE compi_x_total counter\n"
      "compi_x_total 12\n"
      "compi_y{worker=\"1\"} 3.5\n"
      "compi_neg -2\n"
      "garbage line without value x\n"
      "\n");
  EXPECT_EQ(metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(metrics.at("compi_x_total"), 12.0);
  EXPECT_DOUBLE_EQ(metrics.at("compi_y{worker=\"1\"}"), 3.5);
  EXPECT_DOUBLE_EQ(metrics.at("compi_neg"), -2.0);
}

TEST(Sparkline, ScalesToTheBlockRangeAndCapsWidth) {
  EXPECT_EQ(sparkline({}, 10), "");
  EXPECT_EQ(sparkline({{0, 5}}, 0), "");
  // A flat series renders at full height; a rising one ends on the top
  // block and starts on the bottom one.
  EXPECT_EQ(sparkline({{0, 7}, {1, 7}}, 10), "██");
  const std::string rising = sparkline({{0, 0}, {1, 50}, {2, 100}}, 10);
  EXPECT_EQ(rising, "▁▄█");
  // Width capping keeps the newest points.
  const std::string capped =
      sparkline({{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 2);
  EXPECT_EQ(capped, "▁█");
}

TEST(RenderDashboard, ShowsCampaignWorkersAndGauges) {
  const std::string frame =
      render_dashboard(sample_snapshot(),
                       {{"compi_iterations_total", 43.0},
                        {"compi_solver_queries_total", 17.0}},
                       /*ansi=*/false);
  EXPECT_EQ(frame.find("\x1b"), std::string::npos);  // ansi off
  EXPECT_NE(frame.find("127.0.0.1:9001"), std::string::npos);
  EXPECT_NE(frame.find("elapsed 1:15"), std::string::npos);
  EXPECT_NE(frame.find("iteration 42/100"), std::string::npos);
  EXPECT_NE(frame.find("covered 90"), std::string::npos);
  EXPECT_NE(frame.find("bugs 2"), std::string::npos);
  EXPECT_NE(frame.find("(10 -> 90)"), std::string::npos);
  EXPECT_NE(frame.find("frontier 5"), std::string::npos);
  EXPECT_NE(frame.find("interleavings 1"), std::string::npos);
  EXPECT_NE(frame.find("75% hit (30/40)"), std::string::npos);
  EXPECT_NE(frame.find("iterations 43"), std::string::npos);
  EXPECT_NE(frame.find("solver-queries 17"), std::string::npos);
  EXPECT_NE(frame.find("execute"), std::string::npos);
  EXPECT_NE(frame.find("solve"), std::string::npos);
  EXPECT_EQ(frame.find("(stalled?)"), std::string::npos);

  const std::string ansi_frame =
      render_dashboard(sample_snapshot(), {}, /*ansi=*/true);
  EXPECT_EQ(ansi_frame.rfind("\x1b[H\x1b[2J", 0), 0u);
}

TEST(PrometheusText, KeepsLabelValuesWithSpaces) {
  // Shard-labeled samples carry human-chosen names; "node one" must not
  // shear the line apart at its first space.
  const auto metrics = parse_prometheus_text(
      "compi_shard_iterations{shard=\"node one\"} 25\n"
      "compi_shard_iterations{shard=\"b\"} 12\n");
  EXPECT_EQ(metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(
      metrics.at("compi_shard_iterations{shard=\"node one\"}"), 25.0);
  EXPECT_DOUBLE_EQ(metrics.at("compi_shard_iterations{shard=\"b\"}"),
                   12.0);
}

TEST(RenderDashboard, ShowsTheStallDiagnosisBanner) {
  obs::StatusSnapshot s = sample_snapshot();
  s.diagnosis_kind = "frontier-starved";
  s.diagnosis_detail = "frontier and interleaving queues are both empty";
  s.diagnosis_stalled_seconds = 33.0;
  const std::string frame = render_dashboard(s, {}, /*ansi=*/false);
  EXPECT_NE(frame.find("!! frontier-starved"), std::string::npos);
  EXPECT_NE(frame.find("0:33 without new coverage"), std::string::npos);
  EXPECT_NE(frame.find("queues are both empty"), std::string::npos);

  // A progressing (or absent) verdict renders no banner at all.
  s.diagnosis_kind = "progressing";
  EXPECT_EQ(render_dashboard(s, {}, false).find("!!"), std::string::npos);
  s.diagnosis_kind.clear();
  EXPECT_EQ(render_dashboard(s, {}, false).find("!!"), std::string::npos);
}

/// The /fleet document a 2-shard coordinator serves, in the flat JSON
/// dialect (nested shard_N objects, no arrays).
const char* kFleetJson =
    "{\"budget\":1000,\"completed\":37,\"elapsed_seconds\":75.0,"
    "\"shards_connected\":1,\"shards_joined\":2,\"shards_lost\":1,"
    "\"leases_reclaimed\":1,\"covered_branches\":90,\"bugs\":2,"
    "\"diagnosis_kind\":\"straggler-shard\","
    "\"diagnosis_detail\":\"straggler-shard: 'node two' is behind\","
    "\"shard_0\":{\"name\":\"node one\",\"ordinal\":0,\"connected\":true,"
    "\"since_last_seen\":0.2,\"iterations\":25,\"rate\":3.5,\"leases\":1,"
    "\"lease_remaining\":4,\"telemetry\":true,\"covered\":35,"
    "\"frontier_depth\":4,\"interleavings_pending\":0,\"solver_sat\":12,"
    "\"solver_unsat\":1,\"solver_budget\":0,\"exec_us\":1500000,"
    "\"solve_us\":500000,\"timeline\":\"0:5 1:15 2:25\"},"
    "\"shard_1\":{\"name\":\"node two\",\"ordinal\":1,\"connected\":false,"
    "\"since_last_seen\":31.0,\"iterations\":12,\"rate\":0.0,\"leases\":0,"
    "\"lease_remaining\":0,\"telemetry\":false,\"timeline\":\"\"}}";

TEST(RenderFleet, RendersOneRowPerShardWithTelemetryAndTrend) {
  const auto parsed = obs::parse_json_object(kFleetJson);
  ASSERT_TRUE(parsed.has_value());
  const std::string frame = render_fleet(*parsed, /*ansi=*/false);
  EXPECT_NE(frame.find("compi fleet  elapsed 1:15  completed 37/1000"),
            std::string::npos);
  EXPECT_NE(frame.find("covered 90  bugs 2"), std::string::npos);
  EXPECT_NE(frame.find("shards 1 connected / 2 joined (lost 1"),
            std::string::npos);
  EXPECT_NE(frame.find("!! straggler-shard:"), std::string::npos);
  // Shard rows: the live shard shows telemetry columns, the lost one
  // shows placeholders and its "lost" state.
  EXPECT_NE(frame.find("node one"), std::string::npos);
  EXPECT_NE(frame.find("up"), std::string::npos);
  EXPECT_NE(frame.find("12/1/0"), std::string::npos);
  EXPECT_NE(frame.find("node two"), std::string::npos);
  EXPECT_NE(frame.find("lost"), std::string::npos);
  EXPECT_NE(frame.find("-/-/-"), std::string::npos);
  // The trend sparkline plots per-interval deltas (5->15->25 = two
  // equal increments = two full blocks), not absolute counts.
  EXPECT_NE(frame.find("██"), std::string::npos);
  // No "(quiet ...)" for the lost shard (it is lost, not quiet), and the
  // fresh shard is not quiet either.
  EXPECT_EQ(frame.find("(quiet"), std::string::npos);

  const auto ansi = render_fleet(*parsed, /*ansi=*/true);
  EXPECT_EQ(ansi.rfind("\x1b[H\x1b[2J", 0), 0u);
}

TEST(RenderFleet, FlagsConnectedButSilentShards) {
  std::string json = kFleetJson;
  const std::string from = "\"since_last_seen\":0.2";
  json.replace(json.find(from), from.size(), "\"since_last_seen\":72.0");
  const auto parsed = obs::parse_json_object(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NE(render_fleet(*parsed, false).find("(quiet 1:12)"),
            std::string::npos);
}

TEST(RenderDashboard, FlagsWorkersWithStaleProgress) {
  obs::StatusSnapshot s = sample_snapshot();
  s.elapsed_seconds = 120.0;
  s.worker_status[1].last_progress_seconds = 10.0;  // 110 s behind
  const std::string frame = render_dashboard(s, {}, false);
  EXPECT_NE(frame.find("(stalled?)"), std::string::npos);

  // A worker that is done is finished, not stalled.
  s.worker_status[1].phase = obs::WorkerPhase::kDone;
  s.worker_status[0].last_progress_seconds = 119.0;
  EXPECT_EQ(render_dashboard(s, {}, false).find("(stalled?)"),
            std::string::npos);
}

TEST(RunTop, RendersFromAStatusFile) {
  TempDir dir;
  const fs::path file = dir.path / "status.json";
  ASSERT_TRUE(obs::write_status_file(
      file.string(), obs::render_status_json(sample_snapshot())));

  TopOptions opts;
  opts.target = file.string();
  opts.frames = 2;
  opts.interval_ms = 1;
  opts.ansi = false;
  std::ostringstream os;
  EXPECT_EQ(run_top(opts, os), 0);
  EXPECT_NE(os.str().find("iteration 42/100"), std::string::npos);
}

TEST(RunTop, MissingTargetsAreAnErrorOnlyBeforeTheFirstFrame) {
  TopOptions opts;
  opts.target = "/nonexistent_zz/status.json";
  opts.frames = 1;
  std::ostringstream os;
  EXPECT_EQ(run_top(opts, os), 1);
  EXPECT_NE(os.str().find("cannot read"), std::string::npos);

  // Host:port mode against a dead port: never answered -> exit 1.
  TopOptions remote;
  remote.target = "127.0.0.1:1";
  remote.frames = 1;
  std::ostringstream ros;
  EXPECT_EQ(run_top(remote, ros), 1);
}

TEST(RunTop, PollsALiveControlPlane) {
  obs::Registry registry;
  obs::Journal journal;
  registry.counter("compi_iterations_total", "iterations").inc(43);

  ControlPlane plane;
  ControlPlaneConfig config;
  config.port = 0;
  config.registry = &registry;
  config.journal = &journal;
  config.status = [] { return sample_snapshot(); };
  config.explain = [] { return std::string{}; };
  if (!plane.start(config)) {
    GTEST_SKIP() << "control plane compiled out on this platform";
  }

  TopOptions opts;
  opts.target = "127.0.0.1:" + std::to_string(plane.port());
  opts.frames = 1;
  opts.ansi = false;
  std::ostringstream os;
  EXPECT_EQ(run_top(opts, os), 0);
  EXPECT_NE(os.str().find("iteration 42/100"), std::string::npos);
  EXPECT_NE(os.str().find("iterations 43"), std::string::npos);

  // The campaign going away mid-watch is a clean ending: frames=0 loops
  // until the target stops answering, which must exit 0 once at least one
  // frame rendered.
  opts.frames = 0;
  opts.interval_ms = 20;
  std::thread stopper([&plane] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    plane.stop();
  });
  std::ostringstream gone;
  EXPECT_EQ(run_top(opts, gone), 0);
  stopper.join();
  EXPECT_NE(gone.str().find("campaign ended"), std::string::npos);
}

TEST(RunTop, FleetModePollsTheFleetEndpoint) {
  obs::Registry registry;
  obs::Journal journal;
  ControlPlane plane;
  ControlPlaneConfig config;
  config.port = 0;
  config.registry = &registry;
  config.journal = &journal;
  config.status = [] { return sample_snapshot(); };
  config.fleet = [] { return std::string(kFleetJson) + "\n"; };
  if (!plane.start(config)) {
    GTEST_SKIP() << "control plane compiled out on this platform";
  }

  TopOptions opts;
  opts.target = "127.0.0.1:" + std::to_string(plane.port());
  opts.fleet = true;
  opts.frames = 1;
  opts.ansi = false;
  std::ostringstream os;
  EXPECT_EQ(run_top(opts, os), 0);
  EXPECT_NE(os.str().find("compi fleet"), std::string::npos);
  EXPECT_NE(os.str().find("node one"), std::string::npos);
  plane.stop();

  // --fleet is a coordinator view: a file target is a usage error.
  TopOptions file;
  file.target = "/tmp/status.json";
  file.fleet = true;
  std::ostringstream err;
  EXPECT_EQ(run_top(file, err), 1);
  EXPECT_NE(err.str().find("needs a coordinator"), std::string::npos);
}

}  // namespace
}  // namespace compi::serve
