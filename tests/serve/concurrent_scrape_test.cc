// The control plane under campaign load (the tsan suite):
//   * a serving serial campaign produces byte-identical session artifacts
//     to a non-serving one — the server only ever reads;
//   * client threads hammering /metrics, /status, and /explain during a
//     --workers=4 campaign always get well-formed responses, with the
//     campaign's own results unharmed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compi/driver.h"
#include "obs/status.h"
#include "serve/http.h"
#include "targets/targets.h"
#include "tests/compi/fig2_target.h"

namespace compi {
namespace {

namespace fs = std::filesystem;
using compi::testing::fig2_target;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("compi_scrape_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::string slurp(const fs::path& file) {
  std::ifstream in(file);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// iterations.csv with the named column indices blanked (timings are wall
/// clock readings and legitimately vary run to run).
std::vector<std::string> csv_rows_excluding(const fs::path& file,
                                            const std::set<int>& drop) {
  std::ifstream in(file);
  std::vector<std::string> rows;
  std::string line;
  while (std::getline(in, line)) {
    std::stringstream ss(line);
    std::string field, rebuilt;
    int idx = 0;
    while (std::getline(ss, field, ',')) {
      rebuilt += drop.count(idx) ? std::string("_") : field;
      rebuilt += ',';
      ++idx;
    }
    rows.push_back(rebuilt);
  }
  return rows;
}

constexpr int kExecSecondsCol = 6;
constexpr int kSolveSecondsCol = 7;

CampaignOptions base_opts(const fs::path& dir) {
  CampaignOptions opts;
  opts.seed = 7;
  opts.iterations = 80;
  opts.initial_nprocs = 4;
  opts.max_procs = 8;
  opts.dfs_phase_iterations = 40;
  opts.checkpoint_interval = 0;
  opts.log_dir = dir.string();
  return opts;
}

/// Polls `status_file` until it advertises a bound serve port (or gives
/// up after ~10 s).  -1 when the campaign never served.
int wait_for_port(const fs::path& status_file) {
  for (int tries = 0; tries < 1000; ++tries) {
    const auto snapshot = obs::parse_status_json(slurp(status_file));
    if (snapshot && snapshot->serve_port > 0) return snapshot->serve_port;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

TEST(ConcurrentScrape, ServingChangesNoSessionArtifacts) {
  // Serial campaigns are bit-deterministic, so the serve-on session must
  // reproduce the serve-off CSVs exactly (timing columns excluded): the
  // control plane observes, it never steers.
  TempDir off_dir, on_dir;
  const CampaignOptions off = base_opts(off_dir.path);
  const CampaignResult off_result = Campaign(fig2_target(), off).run();

  CampaignOptions on = base_opts(on_dir.path);
  on.serve_port = 0;
  const CampaignResult on_result = Campaign(fig2_target(), on).run();

  EXPECT_EQ(off_result.covered_branches, on_result.covered_branches);
  EXPECT_EQ(off_result.restarts, on_result.restarts);
  EXPECT_EQ(off_result.bugs.size(), on_result.bugs.size());
  const auto drop = std::set<int>{kExecSecondsCol, kSolveSecondsCol};
  EXPECT_EQ(csv_rows_excluding(off_dir.path / "iterations.csv", drop),
            csv_rows_excluding(on_dir.path / "iterations.csv", drop));
  EXPECT_EQ(slurp(off_dir.path / "ledger.csv"),
            slurp(on_dir.path / "ledger.csv"));
  // The serve-off session must not even gain a status heartbeat.
  EXPECT_FALSE(fs::exists(off_dir.path / "status.json"));
}

TEST(ConcurrentScrape, ClientThreadsHammerAFourWorkerCampaign) {
  TempDir dir;
  const fs::path status_file = dir.path / "hammer_status.json";
  CampaignOptions opts = base_opts(dir.path / "session");
  opts.seed = 3;
  opts.iterations = 1200;
  opts.workers = 4;
  opts.solver_cache_entries = 4096;
  opts.serve_port = 0;
  opts.status_file = status_file.string();

  CampaignResult result;
  std::thread campaign([&] {
    result = Campaign(targets::make_mini_imb_target(4), opts).run();
  });

  const int port = wait_for_port(status_file);
  std::atomic<bool> campaign_done{false};
  std::atomic<int> scrapes{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  if (port > 0) {
    const std::string target = "127.0.0.1:" + std::to_string(port);
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&, target, c] {
        while (!campaign_done.load(std::memory_order_relaxed)) {
          const auto metrics = serve::http_get(target, "/metrics");
          const auto status = serve::http_get(target, "/status");
          if (!metrics && !status) continue;  // server already shut down
          if (metrics) {
            if (metrics->status != 200 ||
                metrics->body.find("compi_iterations_total") ==
                    std::string::npos) {
              ++failures;
            }
          }
          if (status) {
            if (status->status != 200 ||
                !obs::parse_status_json(status->body)) {
              ++failures;
            }
          }
          // One client also pulls the expensive live report.
          if (c == 0) {
            if (const auto explain = serve::http_get(target, "/explain")) {
              if (explain->status != 200 ||
                  explain->body.find("live campaign") == std::string::npos) {
                ++failures;
              }
            }
          }
          ++scrapes;
        }
      });
    }
  }

  campaign.join();
  campaign_done.store(true);
  for (std::thread& t : clients) t.join();

  if (port <= 0) {
    // The stub build (obs-off / non-POSIX) never binds: the campaign must
    // still complete untroubled.
    EXPECT_EQ(result.iterations.size(), 1200u);
    GTEST_SKIP() << "control plane compiled out; campaign ran serve-less";
  }
  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(result.iterations.size(), 1200u);
  EXPECT_EQ(result.workers_used, 4u);
  EXPECT_GT(result.covered_branches, 0u);
  // The final heartbeat records the campaign's end state.
  const auto last = obs::parse_status_json(slurp(status_file));
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->iteration, 1199);
  EXPECT_EQ(last->workers, 4);
}

}  // namespace
}  // namespace compi
