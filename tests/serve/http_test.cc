// The embedded HTTP server: request/response handlers, SSE stream
// sources, error statuses for malformed input, and lifecycle (ephemeral
// bind, idempotent stop).  Skipped wholesale where the server is
// compiled to stubs (non-POSIX or the obs-off preset).
#include "serve/http.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#ifdef __unix__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace compi::serve {
namespace {

#ifdef __unix__
/// Sends raw bytes to 127.0.0.1:`port` and returns the status line — for
/// exercising requests the GET-only client cannot produce.
std::string raw_roundtrip(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  timeval tv{2, 0};
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::send(fd, request.data(), request.size(), 0) < 0) {
    ::close(fd);
    return "";
  }
  std::string out;
  char buf[512];
  for (ssize_t n; (n = ::recv(fd, buf, sizeof(buf), 0)) > 0;) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t eol = out.find("\r\n");
  return eol == std::string::npos ? out : out.substr(0, eol);
}
#endif

/// Starts `server` on an ephemeral port, skipping the test on stub builds.
#define START_OR_SKIP(server)                                       \
  do {                                                              \
    if (!(server).start(0)) {                                       \
      GTEST_SKIP() << "http server compiled out on this platform";  \
    }                                                               \
  } while (0)

TEST(HttpServerTest, ServesHandlerBodiesOverLoopback) {
  HttpServer server;
  server.handle("/hello", [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = "method=" + req.method + " path=" + req.path +
                " query=" + req.query;
    return resp;
  });
  START_OR_SKIP(server);
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);

  const std::string target = "127.0.0.1:" + std::to_string(server.port());
  const auto resp = http_get(target, "/hello?x=1");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "method=GET path=/hello query=x=1");

  const auto missing = http_get(target, "/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  EXPECT_GE(server.requests_served(), 2u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(HttpServerTest, HandlerStatusAndContentTypePassThrough) {
  HttpServer server;
  server.handle("/teapot", [](const HttpRequest&) {
    HttpResponse resp;
    resp.status = 404;
    resp.body = "gone";
    return resp;
  });
  START_OR_SKIP(server);
  const auto resp =
      http_get("127.0.0.1:" + std::to_string(server.port()), "/teapot");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
  EXPECT_EQ(resp->body, "gone");
}

TEST(HttpServerTest, StreamSourceIsPolledUntilClientLimit) {
  // The source hands out one numbered frame per poll; the streaming
  // client reads until its byte budget is met.
  HttpServer server;
  std::atomic<int> polls{0};
  server.handle_stream("/events",
                       [&](std::uint64_t& cursor, std::string& out) {
                         out += "data: frame-" + std::to_string(cursor) +
                                "\n\n";
                         ++cursor;
                         ++polls;
                       });
  START_OR_SKIP(server);
  const auto body = http_get_stream(
      "127.0.0.1:" + std::to_string(server.port()), "/events", 64, 2000);
  ASSERT_TRUE(body.has_value());
  EXPECT_NE(body->find(": stream open"), std::string::npos);
  EXPECT_NE(body->find("data: frame-0"), std::string::npos);
  EXPECT_GE(polls.load(), 1);
}

TEST(HttpServerTest, EphemeralPortsAreDistinctAcrossServers) {
  HttpServer a, b;
  a.handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  b.handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  START_OR_SKIP(a);
  START_OR_SKIP(b);
  EXPECT_NE(a.port(), b.port());
}

TEST(HttpServerTest, RejectsOutOfRangePortsWithoutStarting) {
  HttpServer server;
  EXPECT_FALSE(server.start(-5));
  EXPECT_FALSE(server.start(70000));
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, NonGetAndMalformedRequestsGetErrorStatuses) {
#ifndef __unix__
  GTEST_SKIP() << "raw socket helper is POSIX-only";
#else
  HttpServer server;
  server.handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  START_OR_SKIP(server);
  EXPECT_NE(
      raw_roundtrip(server.port(), "POST /x HTTP/1.1\r\n\r\n").find("405"),
      std::string::npos);
  EXPECT_NE(raw_roundtrip(server.port(), "complete garbage\r\n\r\n")
                .find("400"),
            std::string::npos);
#endif
}

TEST(HttpClientTest, FailsCleanlyAgainstNothingListening) {
  HttpServer probe;
  probe.handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  START_OR_SKIP(probe);
  const int dead_port = probe.port();
  probe.stop();  // the port is now free: connects must fail fast

  EXPECT_FALSE(
      http_get("127.0.0.1:" + std::to_string(dead_port), "/", 500)
          .has_value());
  EXPECT_FALSE(http_get("not a host", "/").has_value());
  EXPECT_FALSE(http_get("127.0.0.1:notaport", "/").has_value());
  EXPECT_FALSE(http_get("127.0.0.1", "/").has_value());  // no port at all
}

}  // namespace
}  // namespace compi::serve
