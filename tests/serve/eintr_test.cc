// Regression test for the EINTR hardening of the serve syscall loops.
//
// A SIGALRM handler installed WITHOUT SA_RESTART turns every blocking
// syscall in the process — poll, accept, recv, send, connect — into a
// potential EINTR, and an interval timer fires it every couple of
// milliseconds while a client hammers the control plane.  Before the
// xpoll/xaccept/xrecv/xsend wrappers, any of those interruptions could
// surface as a dropped request or a dead server thread; now every probe
// must come back whole.
#include <gtest/gtest.h>

#include "serve/net_util.h"

#ifdef COMPI_SERVE_POSIX

#include <sys/time.h>

#include <atomic>
#include <csignal>
#include <string>
#include <utility>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/status.h"
#include "serve/control_plane.h"
#include "serve/http.h"

namespace compi::serve {
namespace {

std::atomic<int> g_alarms{0};

void on_alarm(int) { g_alarms.fetch_add(1, std::memory_order_relaxed); }

/// Arms a ~2ms SIGALRM storm with SA_RESTART deliberately off; restores
/// the previous handler and timer on destruction so later tests in the
/// binary run undisturbed.
struct SignalStorm {
  struct sigaction old_action = {};
  struct itimerval old_timer = {};
  bool armed = false;

  bool arm() {
    struct sigaction sa = {};
    sa.sa_handler = &on_alarm;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: syscalls really fail with EINTR
    if (::sigaction(SIGALRM, &sa, &old_action) != 0) return false;
    struct itimerval tv = {};
    tv.it_interval.tv_usec = 2000;
    tv.it_value.tv_usec = 2000;
    if (::setitimer(ITIMER_REAL, &tv, &old_timer) != 0) {
      ::sigaction(SIGALRM, &old_action, nullptr);
      return false;
    }
    armed = true;
    return true;
  }

  ~SignalStorm() {
    if (!armed) return;
    struct itimerval off = {};
    ::setitimer(ITIMER_REAL, &off, nullptr);
    ::sigaction(SIGALRM, &old_action, nullptr);
  }
};

TEST(EintrTest, ControlPlaneSurvivesASignalStorm) {
  obs::Registry registry;
  obs::Journal journal;
  registry.counter("compi_eintr_probe_total", "probe counter").inc(1);

  ControlPlane plane;
  ControlPlaneConfig config;
  config.port = 0;
  config.registry = &registry;
  config.journal = &journal;
  config.healthy = []() -> std::pair<bool, std::string> {
    return {true, "progressing"};
  };
  if (!plane.start(config)) {
    GTEST_SKIP() << "control plane compiled out on this platform";
  }
  const std::string target = "127.0.0.1:" + std::to_string(plane.port());
  obs::JournalEvent(journal, "iteration", 1).num("covered", 2);

  SignalStorm storm;
  ASSERT_TRUE(storm.arm());

  // Both the server thread (poll/accept/recv/send) and this client thread
  // (connect/send/recv in http_get) take the interruptions.
  int ok = 0;
  constexpr int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    const char* path = (i % 2 == 0) ? "/metrics" : "/healthz";
    const auto resp = http_get(target, path, 5000);
    ASSERT_TRUE(resp.has_value()) << "request " << i << " to " << path
                                  << " after " << g_alarms.load()
                                  << " alarms";
    EXPECT_EQ(resp->status, 200) << path;
    ++ok;
  }
  EXPECT_EQ(ok, kRequests);

  // The streaming path (persistent connection, repeated short reads) must
  // survive the same treatment.
  const auto body = http_get_stream(target, "/events", 256, 1500);
  ASSERT_TRUE(body.has_value());
  EXPECT_NE(body->find("data: {\"type\":\"iteration\",\"iter\":1"),
            std::string::npos);

  // The storm must have actually fired, or this test proves nothing.
  EXPECT_GT(g_alarms.load(), 10);
  plane.stop();
}

}  // namespace
}  // namespace compi::serve

#else  // !COMPI_SERVE_POSIX

TEST(EintrTest, SkippedWithoutPosixSockets) {
  GTEST_SKIP() << "serve layer compiled out on this platform";
}

#endif  // COMPI_SERVE_POSIX
