// The control plane glued together from its real parts: a live Registry,
// a tap-enabled Journal, and status/explain closures — everything but the
// campaign loop.  (concurrent_scrape_test.cc covers the full campaign.)
#include "serve/control_plane.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/status.h"
#include "serve/http.h"

namespace compi::serve {
namespace {

struct Fixture {
  obs::Registry registry;
  obs::Journal journal;
  obs::StatusBoard board{2, 100};
  ControlPlane plane;

  // Optional liveness closure wired into /healthz when set before start().
  std::function<std::pair<bool, std::string>()> healthy;
  // Optional fleet closure wired into /fleet when set before start().
  std::function<std::string()> fleet;
  int stream_keepalive_ms = 15000;

  std::string target;  // "127.0.0.1:<port>" once started

  bool start() {
    registry.counter("compi_cp_test_total", "probe counter").inc(5);
    board.set_campaign(4, 0);
    board.record_iteration(7, 12, 1, 0.5, 4, 0, "ok", 0);

    ControlPlaneConfig config;
    config.port = 0;
    config.registry = &registry;
    config.journal = &journal;
    config.status = [this] { return board.snapshot(); };
    config.explain = [] { return std::string("live explain report\n"); };
    config.stream_keepalive_ms = stream_keepalive_ms;
    if (healthy) config.healthy = healthy;
    if (fleet) config.fleet = fleet;
    if (!plane.start(config)) return false;
    target = "127.0.0.1:" + std::to_string(plane.port());
    return true;
  }
};

#define START_OR_SKIP(fixture)                                       \
  do {                                                               \
    if (!(fixture).start()) {                                        \
      GTEST_SKIP() << "control plane compiled out on this platform"; \
    }                                                                \
  } while (0)

TEST(ControlPlaneTest, MetricsEndpointServesThePassedRegistry) {
  Fixture f;
  START_OR_SKIP(f);
  const auto resp = http_get(f.target, "/metrics");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("# TYPE compi_cp_test_total counter"),
            std::string::npos);
  EXPECT_NE(resp->body.find("compi_cp_test_total 5"), std::string::npos);
}

TEST(ControlPlaneTest, StatusEndpointServesAParseableSnapshot) {
  Fixture f;
  START_OR_SKIP(f);
  const auto resp = http_get(f.target, "/status");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  const auto snapshot = obs::parse_status_json(resp->body);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->iteration, 7);
  EXPECT_EQ(snapshot->covered_branches, 12u);
  EXPECT_EQ(snapshot->bugs, 1u);
  EXPECT_EQ(snapshot->workers, 2);

  // The endpoint reads the live board: later updates are visible to the
  // next scrape without restarting anything.
  f.board.record_iteration(8, 13, 1, 0.6, 4, 0, "ok", 1);
  const auto again = http_get(f.target, "/status");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(obs::parse_status_json(again->body)->iteration, 8);
}

TEST(ControlPlaneTest, ExplainEndpointRunsTheClosure) {
  Fixture f;
  START_OR_SKIP(f);
  const auto resp = http_get(f.target, "/explain");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "live explain report\n");
}

TEST(ControlPlaneTest, EventsEndpointStreamsTheJournalTap) {
  Fixture f;
  START_OR_SKIP(f);
  // start() enabled the tap, so a diskless journal records events now.
  ASSERT_TRUE(f.journal.tap_enabled());
  obs::JournalEvent(f.journal, "iteration", 3).num("covered", 9);

  const auto body = http_get_stream(f.target, "/events", 512, 1500);
  ASSERT_TRUE(body.has_value());
  EXPECT_NE(body->find("data: {\"type\":\"iteration\",\"iter\":3"),
            std::string::npos);
}

TEST(ControlPlaneTest, EventsStreamEmitsKeepaliveCommentsWhenIdle) {
  Fixture f;
  f.stream_keepalive_ms = 100;  // aggressive so the test stays fast
  START_OR_SKIP(f);
  // No journal activity at all: the only stream traffic a proxy sees is
  // the SSE comment frame, which must arrive well inside its idle window.
  const auto body = http_get_stream(f.target, "/events", 64, 1500);
  ASSERT_TRUE(body.has_value());
  EXPECT_NE(body->find(": keepalive\n\n"), std::string::npos);
}

TEST(ControlPlaneTest, FleetEndpointServesTheClosure) {
  Fixture f;
  f.fleet = [] {
    return std::string("{\"shards_connected\":2,\"budget\":100}\n");
  };
  START_OR_SKIP(f);
  const auto resp = http_get(f.target, "/fleet");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"shards_connected\":2"), std::string::npos);
  // Advertised on the index once wired.
  const auto index = http_get(f.target, "/");
  ASSERT_TRUE(index.has_value());
  EXPECT_NE(index->body.find("/fleet"), std::string::npos);
}

TEST(ControlPlaneTest, FleetIs404WithoutAClosure) {
  Fixture f;
  START_OR_SKIP(f);
  const auto resp = http_get(f.target, "/fleet");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
}

TEST(ControlPlaneTest, IndexListsEndpointsAndUnknownPathsAre404) {
  Fixture f;
  START_OR_SKIP(f);
  const auto index = http_get(f.target, "/");
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(index->status, 200);
  for (const char* endpoint : {"/metrics", "/status", "/events", "/explain"}) {
    EXPECT_NE(index->body.find(endpoint), std::string::npos) << endpoint;
  }
  const auto missing = http_get(f.target, "/bogus");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);
}

TEST(ControlPlaneTest, HealthzWithoutClosureIsABareLivenessProbe) {
  Fixture f;
  START_OR_SKIP(f);
  const auto resp = http_get(f.target, "/healthz");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "{\"ok\":true,\"detail\":\"serving\"}\n");

  // And the index advertises it next to the other endpoints.
  const auto index = http_get(f.target, "/");
  ASSERT_TRUE(index.has_value());
  EXPECT_NE(index->body.find("/healthz"), std::string::npos);
}

TEST(ControlPlaneTest, HealthzFollowsTheLivenessClosure) {
  std::atomic<bool> progressing{true};
  Fixture f;
  f.healthy = [&progressing]() -> std::pair<bool, std::string> {
    if (progressing.load()) return {true, "progressing"};
    return {false, "stalled: no iteration for 12s"};
  };
  START_OR_SKIP(f);

  const auto up = http_get(f.target, "/healthz");
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->status, 200);
  EXPECT_NE(up->body.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(up->body.find("progressing"), std::string::npos);

  // The closure is consulted on every probe: a stall flips the very next
  // scrape to 503 without restarting the server.
  progressing.store(false);
  const auto down = http_get(f.target, "/healthz");
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->status, 503);
  EXPECT_NE(down->body.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(down->body.find("stalled: no iteration for 12s"),
            std::string::npos);
}

TEST(ControlPlaneTest, HealthzEscapesDetailIntoValidJson) {
  Fixture f;
  f.healthy = []() -> std::pair<bool, std::string> {
    return {false, "bad \"state\" back\\slash\nmultiline"};
  };
  START_OR_SKIP(f);
  const auto resp = http_get(f.target, "/healthz");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 503);
  // Quotes and backslashes are escaped, control characters dropped, so
  // the body stays one well-formed JSON object.
  EXPECT_NE(resp->body.find("bad \\\"state\\\" back\\\\slash"),
            std::string::npos);
  EXPECT_EQ(resp->body.find("multiline"),
            resp->body.find("back\\\\slash") + std::string("back\\\\slash").size());
}

TEST(ControlPlaneTest, NegativePortMeansOff) {
  ControlPlane plane;
  ControlPlaneConfig config;  // port = -1
  obs::Registry registry;
  obs::Journal journal;
  config.registry = &registry;
  config.journal = &journal;
  config.status = [] { return obs::StatusSnapshot{}; };
  config.explain = [] { return std::string{}; };
  EXPECT_FALSE(plane.start(config));
  EXPECT_FALSE(plane.running());
  plane.stop();  // harmless when never started
}

}  // namespace
}  // namespace compi::serve
