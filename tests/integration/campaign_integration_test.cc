// Whole-system integration: COMPI campaigns on the three paper targets.
//
// These are scaled-down versions of the §VI experiments, asserting the
// paper's *qualitative* claims: sanity checks get passed, bugs get found,
// the framework beats its ablation, and concolic beats random.
#include <gtest/gtest.h>

#include "compi/driver.h"
#include "compi/random_tester.h"
#include "targets/targets.h"

namespace compi {
namespace {

CampaignOptions paper_options(int iterations, int dfs_phase) {
  CampaignOptions opts;
  opts.seed = 3;
  opts.iterations = iterations;
  opts.initial_nprocs = 8;
  opts.initial_focus = 0;
  opts.max_procs = 16;
  opts.dfs_phase_iterations = dfs_phase;
  return opts;
}

TEST(Integration, SusyCampaignFindsAllFourBugs) {
  const TargetInfo target = targets::make_mini_susy_target();
  Campaign campaign(target, paper_options(500, 50));
  const CampaignResult result = campaign.run();
  // Paper §VI-A: three wrong-malloc segfaults + one process-count FPE.
  int segv = 0, fpe = 0;
  for (const BugRecord& bug : result.bugs) {
    segv += bug.outcome == rt::Outcome::kSegfault ? 1 : 0;
    fpe += bug.outcome == rt::Outcome::kFpe ? 1 : 0;
  }
  EXPECT_EQ(segv, 3) << "src / psim / dest wrong-sizeof mallocs";
  EXPECT_EQ(fpe, 1) << "paired-layout division by zero";
  // The FPE must have been found with 2 or 4 processes.
  for (const BugRecord& bug : result.bugs) {
    if (bug.outcome == rt::Outcome::kFpe) {
      EXPECT_TRUE(bug.nprocs == 2 || bug.nprocs == 4)
          << "found with nprocs=" << bug.nprocs;
    }
  }
}

TEST(Integration, SusyCoverageInPaperBand) {
  const TargetInfo target = targets::make_mini_susy_target();
  Campaign campaign(target, paper_options(400, 50));
  const CampaignResult result = campaign.run();
  // Paper Table VI: 84.7% avg / 86.1% max.  Allow a generous band.
  EXPECT_GT(result.coverage_rate, 0.70);
}

TEST(Integration, FixedSusyRunsCleanAfterwards) {
  // Paper: "developers should fix such known bugs and then continue
  // testing" — the fixed build must produce zero bug reports.
  const TargetInfo target =
      targets::make_mini_susy_target(5, /*with_bugs=*/false);
  Campaign campaign(target, paper_options(300, 50));
  const CampaignResult result = campaign.run();
  EXPECT_TRUE(result.bugs.empty());
  EXPECT_GT(result.coverage_rate, 0.70);
}

TEST(Integration, HplCampaignPassesSanityAndSolves) {
  const TargetInfo target = targets::make_mini_hpl_target(/*n_cap=*/64);
  Campaign campaign(target, paper_options(1200, 150));
  const CampaignResult result = campaign.run();
  EXPECT_TRUE(result.bugs.empty()) << result.bugs.front().message;
  // Reaching the factorization needs the whole 28-parameter cascade
  // satisfied; coverage far above the cascade-only plateau proves it.
  EXPECT_GT(result.coverage_rate, 0.55);
  EXPECT_GT(result.reachable_branches, 120u)
      << "solve-phase functions must be encountered";
}

TEST(Integration, ImbCampaignCoversBenchmarks) {
  const TargetInfo target = targets::make_mini_imb_target();
  Campaign campaign(target, paper_options(600, 100));
  const CampaignResult result = campaign.run();
  EXPECT_TRUE(result.bugs.empty());
  EXPECT_GT(result.coverage_rate, 0.55);
}

TEST(Integration, ConcolicBeatsRandomOnEveryTarget) {
  // Paper Table VI: COMPI's coverage is 2x-30x random's.
  for (const TargetInfo& target : targets::default_targets()) {
    CampaignOptions opts = paper_options(250, 50);
    const CampaignResult concolic = Campaign(target, opts).run();
    const CampaignResult random = RandomTester(target, opts).run();
    EXPECT_GT(concolic.covered_branches, random.covered_branches)
        << target.name;
  }
}

TEST(Integration, FrameworkBeatsNoFwkOnSusy) {
  // Paper Table VI: SUSY-HMC 84.7% vs 3.4% — with 8 fixed processes the
  // nt-divisibility check is unsatisfiable (nt <= 5 < 8).
  const TargetInfo target = targets::make_mini_susy_target();
  CampaignOptions opts = paper_options(250, 50);
  const CampaignResult fwk = Campaign(target, opts).run();
  opts.framework = false;
  const CampaignResult no_fwk = Campaign(target, opts).run();
  EXPECT_GT(fwk.covered_branches, no_fwk.covered_branches * 2)
      << "No_Fwk must stall at the sanity check";
}

TEST(Integration, OneWayInstrumentationReachesSameCoverage) {
  // §IV-B: one-way instrumentation is *correct* (same coverage), just
  // wasteful — every rank pays symbolic execution and trace logging.
  const TargetInfo target = targets::make_mini_susy_target(5, false);
  CampaignOptions opts = paper_options(150, 30);
  const CampaignResult two_way = Campaign(target, opts).run();
  opts.one_way = true;
  const CampaignResult one_way = Campaign(target, opts).run();
  EXPECT_EQ(one_way.covered_branches, two_way.covered_branches);
}

TEST(Integration, ConflictResolutionOffStillRuns) {
  // The mapping-table ablation must stay functional end to end (it only
  // changes which process the focus lands on after an rc negation).
  const TargetInfo target = targets::make_mini_imb_target();
  CampaignOptions opts = paper_options(200, 40);
  opts.conflict_resolution = false;
  const CampaignResult result = Campaign(target, opts).run();
  EXPECT_TRUE(result.bugs.empty());
  EXPECT_GT(result.coverage_rate, 0.5);
}

TEST(Integration, ReductionKeepsConstraintSetsSmall) {
  // Paper Fig. 9: with reduction the sets stay bounded; without, loop
  // iterations pile up constraint after constraint.
  const TargetInfo target = targets::make_mini_susy_target();
  CampaignOptions opts = paper_options(150, 30);
  const CampaignResult with = Campaign(target, opts).run();
  opts.reduction = false;
  const CampaignResult without = Campaign(target, opts).run();
  EXPECT_LT(with.max_constraint_set, without.max_constraint_set);
}

}  // namespace
}  // namespace compi
