#include "cli/cli_options.h"

#include <gtest/gtest.h>

namespace compi::cli {
namespace {

ParseResult parse(std::initializer_list<std::string> args) {
  return parse_cli(std::vector<std::string>(args));
}

TEST(CliOptions, DefaultsMatchPaperSetup) {
  const ParseResult r = parse({});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_EQ(r.config.target, "susy");
  EXPECT_EQ(r.config.campaign.iterations, 500);
  EXPECT_EQ(r.config.campaign.initial_nprocs, 8);
  EXPECT_EQ(r.config.campaign.initial_focus, 0);
  EXPECT_EQ(r.config.campaign.max_procs, 16);
  EXPECT_TRUE(r.config.campaign.reduction);
  EXPECT_TRUE(r.config.campaign.framework);
  EXPECT_FALSE(r.config.random_baseline);
}

TEST(CliOptions, ParsesEveryTarget) {
  for (const std::string t : {"susy", "susy-fixed", "hpl", "imb"}) {
    const ParseResult r = parse({"--target=" + t});
    ASSERT_FALSE(r.error.has_value()) << t;
    EXPECT_EQ(r.config.target, t);
  }
  EXPECT_TRUE(parse({"--target=nope"}).error.has_value());
}

TEST(CliOptions, ParsesNumericFlags) {
  const ParseResult r = parse({"--iterations=1234", "--cap=600",
                               "--nprocs=4", "--focus=2", "--max-procs=12",
                               "--dfs-phase=77", "--depth-bound=300",
                               "--seed=99", "--time-budget=30"});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_EQ(r.config.campaign.iterations, 1234);
  EXPECT_EQ(r.config.cap, 600);
  EXPECT_EQ(r.config.campaign.initial_nprocs, 4);
  EXPECT_EQ(r.config.campaign.initial_focus, 2);
  EXPECT_EQ(r.config.campaign.max_procs, 12);
  EXPECT_EQ(r.config.campaign.dfs_phase_iterations, 77);
  EXPECT_EQ(r.config.campaign.depth_bound, 300);
  EXPECT_EQ(r.config.campaign.seed, 99u);
  EXPECT_DOUBLE_EQ(r.config.campaign.time_budget_seconds, 30.0);
}

TEST(CliOptions, ParsesStrategies) {
  struct Case {
    std::string name;
    SearchKind kind;
  };
  for (const auto& [name, kind] :
       {Case{"bounded-dfs", SearchKind::kBoundedDfs},
        Case{"dfs", SearchKind::kDfs},
        Case{"random-branch", SearchKind::kRandomBranch},
        Case{"uniform-random", SearchKind::kUniformRandom},
        Case{"cfg", SearchKind::kCfg}}) {
    const ParseResult r = parse({"--strategy=" + name});
    ASSERT_FALSE(r.error.has_value()) << name;
    EXPECT_EQ(r.config.campaign.search, kind) << name;
  }
  EXPECT_TRUE(parse({"--strategy=bfs"}).error.has_value());
}

TEST(CliOptions, AblationFlags) {
  const ParseResult r =
      parse({"--no-reduction", "--no-framework", "--one-way", "--random"});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_FALSE(r.config.campaign.reduction);
  EXPECT_FALSE(r.config.campaign.framework);
  EXPECT_TRUE(r.config.campaign.one_way);
  EXPECT_TRUE(r.config.random_baseline);
}

TEST(CliOptions, RejectsMalformedNumbers) {
  EXPECT_TRUE(parse({"--iterations=abc"}).error.has_value());
  EXPECT_TRUE(parse({"--iterations=0"}).error.has_value());
  EXPECT_TRUE(parse({"--nprocs=-3"}).error.has_value());
  EXPECT_TRUE(parse({"--cap="}).error.has_value());
}

TEST(CliOptions, RejectsUnknownFlags) {
  const ParseResult r = parse({"--does-not-exist"});
  ASSERT_TRUE(r.error.has_value());
  EXPECT_NE(r.error->find("does-not-exist"), std::string::npos);
}

TEST(CliOptions, FocusMustFitNprocs) {
  EXPECT_TRUE(parse({"--nprocs=4", "--focus=4"}).error.has_value());
  EXPECT_FALSE(parse({"--nprocs=4", "--focus=3"}).error.has_value());
}

TEST(CliOptions, LogDirAndMetaFlags) {
  const ParseResult r =
      parse({"--log-dir=/tmp/x", "--curve", "--list-targets", "--help"});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_EQ(r.config.campaign.log_dir, "/tmp/x");
  EXPECT_TRUE(r.config.print_curve);
  EXPECT_TRUE(r.config.list_targets);
  EXPECT_TRUE(r.config.show_help);
}

TEST(CliOptions, ParsesRobustnessFlags) {
  const ParseResult r = parse(
      {"--retry-max=5", "--retry-backoff-ms=40", "--checkpoint-interval=10",
       "--chaos-seed=77", "--chaos-drop-rate=0.25", "--chaos-crash-rank=3",
       "--chaos-crash-at=9", "--no-confirm-bugs"});
  ASSERT_FALSE(r.error.has_value()) << *r.error;
  EXPECT_EQ(r.config.campaign.retry_max, 5);
  EXPECT_EQ(r.config.campaign.retry_backoff_ms, 40);
  EXPECT_EQ(r.config.campaign.checkpoint_interval, 10);
  EXPECT_EQ(r.config.campaign.chaos.seed, 77u);
  EXPECT_DOUBLE_EQ(r.config.campaign.chaos.drop_rate, 0.25);
  EXPECT_EQ(r.config.campaign.chaos.crash_rank, 3);
  EXPECT_EQ(r.config.campaign.chaos.crash_at_call, 9);
  EXPECT_FALSE(r.config.campaign.confirm_bugs);
  EXPECT_TRUE(r.config.campaign.chaos.enabled());
}

TEST(CliOptions, ParsesSandboxFlags) {
  const ParseResult r =
      parse({"--isolate", "--hang-timeout-ms=2500", "--child-mem-mb=512"});
  ASSERT_FALSE(r.error.has_value()) << *r.error;
  EXPECT_TRUE(r.config.campaign.isolate);
  EXPECT_EQ(r.config.campaign.hang_timeout_ms, 2500);
  EXPECT_EQ(r.config.campaign.child_mem_mb, 512);

  const ParseResult defaults = parse({});
  ASSERT_FALSE(defaults.error.has_value());
  EXPECT_FALSE(defaults.config.campaign.isolate)
      << "in-process launch must stay the default";
  EXPECT_EQ(defaults.config.campaign.hang_timeout_ms, 0);
  EXPECT_EQ(defaults.config.campaign.child_mem_mb, 0);
}

TEST(CliOptions, RejectsBadSandboxValues) {
  EXPECT_TRUE(parse({"--hang-timeout-ms=abc"}).error.has_value());
  EXPECT_TRUE(parse({"--hang-timeout-ms=-1"}).error.has_value());
  EXPECT_TRUE(parse({"--hang-timeout-ms=86400001"}).error.has_value());
  EXPECT_TRUE(parse({"--child-mem-mb=-5"}).error.has_value());
  EXPECT_TRUE(parse({"--child-mem-mb=1048577"}).error.has_value());
}

TEST(CliOptions, ParsesForkServerFlags) {
  const ParseResult r = parse({"--isolate", "--fork-server=off",
                               "--fork-server-restarts=7", "--batch-reset",
                               "--batch-warmup=5"});
  ASSERT_FALSE(r.error.has_value()) << *r.error;
  EXPECT_FALSE(r.config.campaign.fork_server);
  EXPECT_EQ(r.config.campaign.fork_server_restarts, 7);
  EXPECT_TRUE(r.config.campaign.batch_reset);
  EXPECT_EQ(r.config.campaign.batch_warmup, 5);

  const ParseResult on = parse({"--isolate", "--fork-server=on"});
  ASSERT_FALSE(on.error.has_value()) << *on.error;
  EXPECT_TRUE(on.config.campaign.fork_server);

  const ParseResult defaults = parse({});
  ASSERT_FALSE(defaults.error.has_value());
  EXPECT_TRUE(defaults.config.campaign.fork_server)
      << "the warm-spawn engine is the default under --isolate";
  EXPECT_EQ(defaults.config.campaign.fork_server_restarts, 3);
  EXPECT_FALSE(defaults.config.campaign.batch_reset)
      << "batch reset trades isolation for speed; it must be opt-in";
  EXPECT_EQ(defaults.config.campaign.batch_warmup, 3);
}

TEST(CliOptions, RejectsBadForkServerValues) {
  EXPECT_TRUE(parse({"--fork-server=yes"}).error.has_value());
  EXPECT_TRUE(parse({"--fork-server="}).error.has_value());
  EXPECT_TRUE(parse({"--fork-server-restarts=-1"}).error.has_value());
  EXPECT_TRUE(parse({"--fork-server-restarts=1001"}).error.has_value());
  EXPECT_TRUE(parse({"--fork-server-restarts=abc"}).error.has_value());
  EXPECT_TRUE(parse({"--batch-warmup=0"}).error.has_value());
  EXPECT_TRUE(parse({"--batch-warmup=-3"}).error.has_value());
}

TEST(CliOptions, RejectsBadRobustnessValues) {
  EXPECT_TRUE(parse({"--chaos-drop-rate=1.5"}).error.has_value());
  EXPECT_TRUE(parse({"--chaos-drop-rate=-0.1"}).error.has_value());
  EXPECT_TRUE(parse({"--chaos-drop-rate=abc"}).error.has_value());
  EXPECT_TRUE(parse({"--retry-max=11"}).error.has_value());
  EXPECT_TRUE(parse({"--retry-max=-1"}).error.has_value());
  EXPECT_TRUE(parse({"--retry-backoff-ms=70000"}).error.has_value());
  EXPECT_TRUE(parse({"--chaos-crash-at=0"}).error.has_value());
  EXPECT_TRUE(parse({"--resume="}).error.has_value());
}

TEST(CliOptions, ResumeNamesTheSessionDirectory) {
  const ParseResult r = parse({"--resume=/tmp/session"});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_TRUE(r.config.campaign.resume);
  EXPECT_EQ(r.config.resume_dir, "/tmp/session");
  EXPECT_EQ(r.config.campaign.log_dir, "/tmp/session");

  // A matching --log-dir is redundant but harmless; a conflicting one is
  // an error, not a silent pick-one.
  EXPECT_FALSE(parse({"--resume=/tmp/s", "--log-dir=/tmp/s"}).error);
  EXPECT_TRUE(parse({"--resume=/tmp/s", "--log-dir=/tmp/other"}).error);
}

TEST(CliOptions, CoordinateSubcommandParsesItsFlags) {
  const ParseResult r =
      parse({"coordinate", "--port=7700", "--budget=480", "--lease-quota=32",
             "--lease-ttl-ms=5000", "--target=imb", "--log-dir=/tmp/coord",
             "--journal", "--serve=0"});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_TRUE(r.config.coordinate);
  EXPECT_EQ(r.config.coord_port, 7700);
  EXPECT_EQ(r.config.coord_budget, 480);
  EXPECT_EQ(r.config.coord_lease_quota, 32);
  EXPECT_EQ(r.config.coord_lease_ttl_ms, 5000);
  EXPECT_EQ(r.config.target, "imb");
  EXPECT_EQ(r.config.campaign.log_dir, "/tmp/coord");
  EXPECT_TRUE(r.config.campaign.journal);
  EXPECT_EQ(r.config.campaign.serve_port, 0);

  const ParseResult defaults = parse({"coordinate"});
  ASSERT_FALSE(defaults.error.has_value());
  EXPECT_TRUE(defaults.config.coordinate);
  EXPECT_EQ(defaults.config.coord_port, 0);
  EXPECT_EQ(defaults.config.coord_budget, 1000);
}

TEST(CliOptions, CoordinateRejectsBadValuesAndForeignFlags) {
  EXPECT_TRUE(parse({"coordinate", "--port=65536"}).error.has_value());
  EXPECT_TRUE(parse({"coordinate", "--budget=0"}).error.has_value());
  EXPECT_TRUE(parse({"coordinate", "--lease-quota=0"}).error.has_value());
  EXPECT_TRUE(parse({"coordinate", "--lease-ttl-ms=50"}).error.has_value());
  // Campaign-only flags don't leak into the subcommand.
  EXPECT_TRUE(parse({"coordinate", "--iterations=10"}).error.has_value());
  EXPECT_TRUE(parse({"coordinate", "--connect=h:1"}).error.has_value());
  // --resume names the session, same rule as campaign mode.
  EXPECT_TRUE(parse({"coordinate", "--resume=/tmp/a", "--log-dir=/tmp/b"})
                  .error.has_value());
  const ParseResult resumed = parse({"coordinate", "--resume=/tmp/a"});
  ASSERT_FALSE(resumed.error.has_value());
  EXPECT_TRUE(resumed.config.campaign.resume);
  EXPECT_EQ(resumed.config.campaign.log_dir, "/tmp/a");
}

TEST(CliOptions, ShardFlagsAttachTheCampaignToACoordinator) {
  const ParseResult r = parse(
      {"--connect=127.0.0.1:7700", "--shard-name=rack7",
       "--shard-heartbeat-ms=250"});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_EQ(r.config.connect, "127.0.0.1:7700");
  EXPECT_EQ(r.config.shard_name, "rack7");
  EXPECT_EQ(r.config.shard_heartbeat_ms, 250);

  const ParseResult defaults = parse({});
  ASSERT_FALSE(defaults.error.has_value());
  EXPECT_TRUE(defaults.config.connect.empty())
      << "coordinator-off must stay the default";
  EXPECT_EQ(defaults.config.shard_name, "shard");
  EXPECT_EQ(defaults.config.shard_heartbeat_ms, 1000);
}

TEST(CliOptions, RejectsBadShardValues) {
  EXPECT_TRUE(parse({"--connect="}).error.has_value());
  EXPECT_TRUE(parse({"--shard-name="}).error.has_value());
  EXPECT_TRUE(parse({"--shard-heartbeat-ms=10"}).error.has_value());
  EXPECT_TRUE(parse({"--shard-heartbeat-ms=abc"}).error.has_value());
}

TEST(CliOptions, TopFleetAndStallWindowFlags) {
  const ParseResult r = parse({"top", "127.0.0.1:7700", "--fleet",
                               "--frames=2"});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_TRUE(r.config.top);
  EXPECT_TRUE(r.config.top_fleet);
  EXPECT_EQ(r.config.top_target, "127.0.0.1:7700");

  const ParseResult plain = parse({"top", "127.0.0.1:7700"});
  ASSERT_FALSE(plain.error.has_value());
  EXPECT_FALSE(plain.config.top_fleet);

  // --stall-window tunes the diagnosis engine in campaign and
  // coordinator mode alike; out-of-range values are rejected.
  const ParseResult campaign = parse({"--stall-window=45"});
  ASSERT_FALSE(campaign.error.has_value());
  EXPECT_DOUBLE_EQ(campaign.config.campaign.stall_window_seconds, 45.0);
  const ParseResult coord = parse({"coordinate", "--stall-window=90"});
  ASSERT_FALSE(coord.error.has_value());
  EXPECT_DOUBLE_EQ(coord.config.campaign.stall_window_seconds, 90.0);
  EXPECT_TRUE(parse({"--stall-window=0"}).error.has_value());
  EXPECT_TRUE(parse({"--stall-window=abc"}).error.has_value());
}

TEST(CliOptions, TraceMergeSubcommandParsesItsInputs) {
  const ParseResult r =
      parse({"trace-merge", "--coordinator=/tmp/coord", "--out=/tmp/m.json",
             "/tmp/shard-a", "/tmp/shard-b"});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_TRUE(r.config.trace_merge);
  EXPECT_EQ(r.config.trace_merge_coordinator, "/tmp/coord");
  EXPECT_EQ(r.config.trace_merge_out, "/tmp/m.json");
  ASSERT_EQ(r.config.trace_merge_shards.size(), 2u);
  EXPECT_EQ(r.config.trace_merge_shards[0], "/tmp/shard-a");
  EXPECT_EQ(r.config.trace_merge_shards[1], "/tmp/shard-b");

  // Shards-only merges are fine; no inputs at all is an error.
  ASSERT_FALSE(parse({"trace-merge", "/tmp/a"}).error.has_value());
  EXPECT_TRUE(parse({"trace-merge"}).error.has_value());
  EXPECT_TRUE(parse({"trace-merge", "--bogus=1"}).error.has_value());
}

TEST(CliOptions, UsageMentionsEveryFlag) {
  const std::string u = usage();
  for (const std::string flag :
       {"--iterations", "--strategy", "--cap", "--nprocs", "--max-procs",
        "--seed", "--log-dir", "--no-reduction", "--no-framework",
        "--one-way", "--random", "--list-targets", "--resume",
        "--checkpoint-interval", "--retry-max", "--retry-backoff-ms",
        "--chaos-seed", "--chaos-drop-rate", "--chaos-crash-rank",
        "--chaos-crash-at", "--no-confirm-bugs", "--isolate",
        "--hang-timeout-ms", "--child-mem-mb", "--connect", "--shard-name",
        "--shard-heartbeat-ms", "--lease-quota", "--lease-ttl-ms",
        "--stall-window", "--fleet", "trace-merge"}) {
    EXPECT_NE(u.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
}  // namespace compi::cli
