// Wilson-loop measurement tests.
#include <gtest/gtest.h>

#include <cmath>

#include "targets/mini_susy/susy_lattice.h"

namespace compi::targets::susy {
namespace {

GaugeField field(int nx, int ny, std::uint64_t seed) {
  LatticeGeom g;
  g.nx = nx;
  g.ny = ny;
  g.nz = 2;
  g.nt = 2;
  g.nt_local = 2;
  g.t0 = 0;
  return GaugeField(g, seed);
}

TEST(WilsonLoop, TrivialFieldGivesUnity) {
  GaugeField u = field(3, 3, 1);
  for (int s = 0; s < u.geom().local_volume(); ++s) {
    for (int mu = 0; mu < 4; ++mu) u.link(s, mu) = 0.0;
  }
  EXPECT_DOUBLE_EQ(u.wilson_loop(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(u.wilson_loop(2, 2), 1.0);
}

TEST(WilsonLoop, PureGaugeBackgroundStaysNearUnity) {
  // A constant shift of all x-links is NOT gauge trivial for loops that
  // wrap, but a 1x1 loop cancels the constant exactly:
  // theta = c + U_y(x+1) - c - U_y(x) with U_y = 0 everywhere -> 0.
  GaugeField u = field(4, 4, 1);
  for (int s = 0; s < u.geom().local_volume(); ++s) {
    u.link(s, 0) = 0.3;
    u.link(s, 1) = 0.0;
    u.link(s, 2) = 0.0;
    u.link(s, 3) = 0.0;
  }
  EXPECT_NEAR(u.wilson_loop(1, 1), 1.0, 1e-12);
}

TEST(WilsonLoop, SmallAnglesStayNearOne) {
  GaugeField u = field(3, 3, 5);  // cold start: |theta| <= 0.1
  const double w11 = u.wilson_loop(1, 1);
  const double w22 = u.wilson_loop(2, 2);
  EXPECT_GT(w11, 0.9);
  EXPECT_GT(w22, 0.7);
  EXPECT_LE(w11, 1.0);
  // Larger loops accumulate more phase: expectation decays with area.
  EXPECT_LE(w22, w11 + 1e-9);
}

TEST(WilsonLoop, DetectsRoughField) {
  GaugeField u = field(4, 4, 5);
  // x-links alternate with the y coordinate, so the two x-legs of a 1x1
  // loop differ by 3.0 radians: cos(~3) is strongly negative.
  for (int s = 0; s < u.geom().local_volume(); ++s) {
    const int y = (s / 4) % 4;
    u.link(s, 0) = (y % 2 == 0) ? 1.5 : -1.5;
    u.link(s, 1) = 0.0;
  }
  EXPECT_LT(u.wilson_loop(1, 1), 0.0);
}

}  // namespace
}  // namespace compi::targets::susy
