// mini-IMB-MPI1 behaviour tests: every benchmark kind completes cleanly on
// realistic process counts and the argument validation rejects bad input.
#include <gtest/gtest.h>

#include "targets/mini_imb/mini_imb.h"
#include "tests/targets/target_test_util.h"

namespace compi::targets {
namespace {

using compi::testing::run_fixed;

std::map<std::string, std::int64_t> valid_args(int benchmark) {
  return {
      {"benchmark", benchmark},
      {"msglog_min", 2},
      {"msglog_max", 6},
      {"iters", 4},
      {"warmups", 1},
      {"npmin", 2},
      {"root", 0},
      {"off_cache", 0},
      {"multi", 0},
      {"sync", 1},
      {"msg_pow", 2},
      {"vol_log", 14},
      {"time_scale", 10},
  };
}

class MiniImbBenchmarkTest : public ::testing::TestWithParam<int> {};

TEST_P(MiniImbBenchmarkTest, RunsCleanlyOnSeveralWorldSizes) {
  const TargetInfo t = make_mini_imb_target();
  for (int np : {2, 3, 5, 8}) {
    const auto result = run_fixed(t, valid_args(GetParam()), np);
    EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk)
        << "benchmark=" << GetParam() << " np=" << np << ": "
        << result.job_message();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, MiniImbBenchmarkTest,
                         ::testing::Range(0, 13));

TEST(MiniImb, NpminSweepCreatesSubsets) {
  const TargetInfo t = make_mini_imb_target();
  auto in = valid_args(5);  // Allreduce
  in["npmin"] = 2;
  rt::VarRegistry registry;
  const auto result = run_fixed(t, in, 8, 0, 1, &registry);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
  // np = 2, 4, 8: three subset communicators; the focus is rank 0, a
  // member of each, so each split registers a mapping row.
  EXPECT_EQ(result.focus_log().rank_mapping.size(), 3u);
  EXPECT_FALSE(registry.of_kind(rt::VarKind::kRankLocal).empty());
}

TEST(MiniImb, MultiModeRunsConcurrentGroups) {
  // -multi: with npmin=2 on 7 ranks, three groups of 2 run the benchmark
  // simultaneously and rank 6 sits out the np=2 round.
  const TargetInfo t = make_mini_imb_target();
  for (int bench : {0, 5, 9}) {
    auto in = valid_args(bench);
    in["multi"] = 1;
    const auto result = run_fixed(t, in, 7);
    EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk)
        << "bench=" << bench << ": " << result.job_message();
  }
}

TEST(MiniImb, RootOutOfRangeRejected) {
  const TargetInfo t = make_mini_imb_target();
  auto in = valid_args(4);
  in["root"] = 10;  // >= size (8)
  const auto result = run_fixed(t, in, 8);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk);
  EXPECT_LT(result.merged_coverage().count(), 40u);
}

TEST(MiniImb, NpminAboveWorldRejected) {
  const TargetInfo t = make_mini_imb_target();
  auto in = valid_args(0);
  in["npmin"] = 9;
  const auto result = run_fixed(t, in, 4);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk);
  EXPECT_LT(result.merged_coverage().count(), 40u);
}

TEST(MiniImb, BadMessageRangeRejected) {
  const TargetInfo t = make_mini_imb_target();
  auto in = valid_args(0);
  in["msglog_max"] = 1;  // < msglog_min (2)
  const auto result = run_fixed(t, in, 2);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk);
  EXPECT_LT(result.merged_coverage().count(), 40u);
}

TEST(MiniImb, OverallVolumeTrimsIterations) {
  const TargetInfo t = make_mini_imb_target(/*iter_cap=*/1000);
  auto in = valid_args(5);
  in["iters"] = 1000;
  in["msglog_min"] = 10;
  in["msglog_max"] = 12;
  in["vol_log"] = 12;  // 4 KiB total: forces the iteration trim path
  const auto result = run_fixed(t, in, 2);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

TEST(MiniImb, RootedCollectivesHonorNonzeroRoot) {
  const TargetInfo t = make_mini_imb_target();
  for (int bench : {4, 6, 8}) {  // Bcast, Reduce, Gather
    auto in = valid_args(bench);
    in["root"] = 1;
    const auto result = run_fixed(t, in, 4);
    EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk)
        << "bench=" << bench << ": " << result.job_message();
  }
}

TEST(MiniImb, TableMetadataIsConsistent) {
  const TargetInfo t = make_mini_imb_target();
  EXPECT_EQ(t.name, "mini-IMB-MPI1");
  EXPECT_GT(t.table->num_sites(), 40u);
  EXPECT_EQ(t.paper_sloc, 7092);
  EXPECT_EQ(t.default_cap, 100);
}

}  // namespace
}  // namespace compi::targets
