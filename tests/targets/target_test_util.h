// Helpers for driving a target once with chosen input values.
#pragma once

#include <map>
#include <string>

#include "compi/target.h"
#include "minimpi/launcher.h"

namespace compi::testing {

/// Runs `target` once with the given named input values (missing inputs
/// get the runtime's deterministic defaults).  Returns the job result.
inline minimpi::RunResult run_fixed(
    const TargetInfo& target, const std::map<std::string, std::int64_t>& in,
    int nprocs, int focus = 0, std::uint64_t seed = 1,
    rt::VarRegistry* registry_out = nullptr) {
  rt::VarRegistry local;
  rt::VarRegistry& registry = registry_out != nullptr ? *registry_out : local;

  solver::Assignment inputs;
  for (const auto& [key, value] : in) {
    inputs[registry.intern(key, rt::VarKind::kRegular)] = value;
  }
  minimpi::LaunchSpec spec;
  spec.program = target.program;
  spec.nprocs = nprocs;
  spec.focus = focus;
  spec.registry = &registry;
  spec.inputs = &inputs;
  spec.rng_seed = seed;
  spec.timeout = std::chrono::milliseconds(20'000);
  return minimpi::launch(spec, *target.table);
}

}  // namespace compi::testing
