#include "targets/mini_imb/imb_stats.h"

#include <gtest/gtest.h>

#include "minimpi/launcher.h"

namespace compi::targets::imb {
namespace {

TEST(ImbStats, ReducesMinMaxAvgAcrossRanks) {
  rt::BranchTable table;
  table.add_site("m", "s");
  table.finalize();
  rt::VarRegistry registry;
  minimpi::LaunchSpec spec;
  spec.nprocs = 4;
  spec.focus = 0;
  spec.registry = &registry;
  spec.program = [](rt::RuntimeContext&, minimpi::Comm& world) {
    // Rank r reports (r+1) * 0.1 seconds.
    const double mine = (world.raw_rank() + 1) * 0.1;
    const TimingStats stats = reduce_timings(world, mine);
    EXPECT_NEAR(stats.t_min, 0.1, 1e-12);
    EXPECT_NEAR(stats.t_max, 0.4, 1e-12);
    EXPECT_NEAR(stats.t_avg, 0.25, 1e-12);
  };
  const auto result = minimpi::launch(spec, table);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

TEST(BufferRing, SingleCopyAlwaysSameBuffer) {
  BufferRing ring(16, 1);
  EXPECT_EQ(ring.at(0).data(), ring.at(1).data());
  EXPECT_EQ(ring.at(0).size(), 16u);
}

TEST(BufferRing, MultiCopyRotates) {
  BufferRing ring(8, 3);
  EXPECT_NE(ring.at(0).data(), ring.at(1).data());
  EXPECT_NE(ring.at(1).data(), ring.at(2).data());
  EXPECT_EQ(ring.at(0).data(), ring.at(3).data()) << "period = copies";
}

TEST(BufferRing, ZeroElemsClamped) {
  BufferRing ring(0, 2);
  EXPECT_EQ(ring.at(0).size(), 1u);
}

}  // namespace
}  // namespace compi::targets::imb
