// mini-HPL behaviour tests: the sanity cascade, the process grid, and the
// numerical correctness of the distributed LU (residual check passes).
#include <gtest/gtest.h>

#include "targets/mini_hpl/mini_hpl.h"
#include "tests/targets/target_test_util.h"

namespace compi::targets {
namespace {

using compi::testing::run_fixed;

std::map<std::string, std::int64_t> valid_inputs(int n, int nb, int p, int q) {
  return {
      {"ns_count", 1},   {"n", n},
      {"nb_count", 1},   {"nb", nb},
      {"pmap", 0},       {"grid_count", 1},
      {"p", p},          {"q", q},
      {"pfact_count", 1},{"pfact", 2},
      {"nbmin", 2},      {"ndiv", 2},
      {"rfact", 1},      {"bcast", 0},
      {"depth", 0},      {"swap_alg", 2},
      {"swap_threshold", 64},
      {"l1_form", 0},    {"u_form", 0},
      {"equil", 1},      {"align", 8},
      {"threshold_scale", 16},
      {"pfact_list_len", 1},
      {"nbmin_list_len", 1},
  };
}

TEST(MiniHpl, SolvesAndPassesResidualSingleProcess) {
  const TargetInfo t = make_mini_hpl_target(64);
  const auto result = run_fixed(t, valid_inputs(24, 4, 1, 1), 1);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
  // Residual-pass branch (vr_resid_ok TRUE) must be covered.
  // Site ids follow the X-macro order; probe via coverage of the verify fn.
  EXPECT_GT(result.merged_coverage().count(), 40u);
}

struct GridCase {
  int n, nb, p, q, nprocs;
};

class MiniHplGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(MiniHplGridTest, DistributedSolveIsClean) {
  const GridCase c = GetParam();
  const TargetInfo t = make_mini_hpl_target(128);
  const auto result =
      run_fixed(t, valid_inputs(c.n, c.nb, c.p, c.q), c.nprocs);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, MiniHplGridTest,
    ::testing::Values(GridCase{16, 4, 1, 2, 2}, GridCase{24, 4, 2, 2, 4},
                      GridCase{32, 8, 2, 3, 6}, GridCase{24, 4, 2, 2, 8},
                      GridCase{40, 8, 1, 4, 4}, GridCase{17, 5, 2, 2, 4},
                      GridCase{8, 8, 2, 2, 4}, GridCase{9, 2, 3, 2, 8}));

class MiniHplVariantTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MiniHplVariantTest, AlgorithmVariantsStayCorrect) {
  const auto [bcast, pfact, swap_alg] = GetParam();
  const TargetInfo t = make_mini_hpl_target(64);
  auto in = valid_inputs(20, 4, 2, 2);
  in["bcast"] = bcast;
  in["pfact"] = pfact;
  in["swap_alg"] = swap_alg;
  const auto result = run_fixed(t, in, 4);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk)
      << "bcast=" << bcast << " pfact=" << pfact << " swap=" << swap_alg
      << ": " << result.job_message();
}

INSTANTIATE_TEST_SUITE_P(
    Variants, MiniHplVariantTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),  // bcast algs
                       ::testing::Values(0, 1, 2),           // pfact
                       ::testing::Values(0, 1, 2)));         // swap

TEST(MiniHpl, InvalidParameterStopsAtSanity) {
  const TargetInfo t = make_mini_hpl_target(64);
  auto in = valid_inputs(16, 4, 1, 1);
  in["bcast"] = 9;  // out of range
  const auto result = run_fixed(t, in, 2);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk);
  EXPECT_LT(result.merged_coverage().count(), 70u)
      << "no grid/solve coverage after a failed check";
}

TEST(MiniHpl, GridLargerThanWorldRejected) {
  const TargetInfo t = make_mini_hpl_target(64);
  const auto result = run_fixed(t, valid_inputs(16, 4, 4, 4), 4);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk);
  EXPECT_LT(result.merged_coverage().count(), 70u)
      << "p*q=16 > 4 processes must fail HPL_pdinfo";
}

TEST(MiniHpl, InactiveRanksIdleOutsideTheGrid) {
  const TargetInfo t = make_mini_hpl_target(64);
  // 2x2 grid on 8 processes: ranks 4..7 are outside the grid.
  const auto result = run_fixed(t, valid_inputs(16, 4, 2, 2), 8);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

TEST(MiniHpl, ColumnMajorMappingWorks) {
  const TargetInfo t = make_mini_hpl_target(64);
  auto in = valid_inputs(16, 4, 2, 2);
  in["pmap"] = 1;
  const auto result = run_fixed(t, in, 4);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

TEST(MiniHpl, LookaheadDepthOneStaysCorrect) {
  // depth=1 reorders the panel factorization (lookahead) but must produce
  // the same factorization: the residual check still passes.
  const TargetInfo t = make_mini_hpl_target(64);
  for (int np : {1, 2, 4, 6}) {
    auto in = valid_inputs(24, 4, 1, np);
    in["depth"] = 1;
    const auto result = run_fixed(t, in, np);
    EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk)
        << "np=" << np << ": " << result.job_message();
  }
}

TEST(MiniHpl, MultipleProblemSizesPerRun) {
  // ns_count > 1 exercises the shrinking Ns list, including an N that
  // reaches zero (the trivial-solve path).
  const TargetInfo t = make_mini_hpl_target(64);
  auto in = valid_inputs(12, 4, 2, 2);
  in["ns_count"] = 4;
  const auto result = run_fixed(t, in, 4);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

TEST(MiniHpl, TrivialNIsValid) {
  const TargetInfo t = make_mini_hpl_target(64);
  const auto result = run_fixed(t, valid_inputs(0, 4, 1, 1), 1);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

TEST(MiniHpl, NbLargerThanNIsValid) {
  const TargetInfo t = make_mini_hpl_target(64);
  const auto result = run_fixed(t, valid_inputs(6, 16, 2, 2), 4);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

TEST(MiniHpl, TableMetadataIsConsistent) {
  const TargetInfo t = make_mini_hpl_target();
  EXPECT_EQ(t.name, "mini-HPL");
  EXPECT_GT(t.table->num_sites(), 80u);
  EXPECT_EQ(t.paper_sloc, 15699);
  EXPECT_EQ(t.default_cap, 300);
}

}  // namespace
}  // namespace compi::targets
