// Boundary-value matrices for every sanity check of the three targets.
//
// For each validated parameter: the value just inside the legal range must
// let the run proceed past the check (high coverage), and the value just
// outside must stop it at the sanity exit (low coverage, clean outcome).
// This pins down the exact guard semantics DFS negates its way through.
#include <gtest/gtest.h>

#include "targets/targets.h"
#include "tests/targets/target_test_util.h"

namespace compi::targets {
namespace {

using compi::testing::run_fixed;

struct BoundaryCase {
  const char* param;
  std::int64_t good;  // passes this check
  std::int64_t bad;   // fails this check
};

void PrintTo(const BoundaryCase& c, std::ostream* os) {
  *os << c.param << " good=" << c.good << " bad=" << c.bad;
}

// ---------------------------------------------------------------------------
// mini-HPL: HPL_pdinfo validates all 24 marked parameters.
// ---------------------------------------------------------------------------
class HplBoundaryTest : public ::testing::TestWithParam<BoundaryCase> {};

TEST_P(HplBoundaryTest, GoodPassesBadStopsAtSanity) {
  const BoundaryCase c = GetParam();
  const TargetInfo t = make_mini_hpl_target(64);

  auto good = mini_hpl_defaults(16, 4, 2, 2);
  good[c.param] = c.good;
  const auto ok = run_fixed(t, good, 4);
  EXPECT_EQ(ok.job_outcome(), rt::Outcome::kOk) << ok.job_message();
  const std::size_t good_cov = ok.merged_coverage().count();

  auto bad = mini_hpl_defaults(16, 4, 2, 2);
  bad[c.param] = c.bad;
  const auto rejected = run_fixed(t, bad, 4);
  EXPECT_EQ(rejected.job_outcome(), rt::Outcome::kOk)
      << "sanity rejection is a clean exit";
  EXPECT_LT(rejected.merged_coverage().count(), good_cov)
      << "the bad value must stop before the solve phase";
}

INSTANTIATE_TEST_SUITE_P(
    Params, HplBoundaryTest,
    ::testing::Values(
        BoundaryCase{"ns_count", 1, 0}, BoundaryCase{"ns_count", 20, 21},
        BoundaryCase{"n", 0, -1}, BoundaryCase{"nb_count", 1, 0},
        BoundaryCase{"nb_count", 16, 17}, BoundaryCase{"nb", 1, 0},
        BoundaryCase{"nb", 128, 129}, BoundaryCase{"pmap", 1, 2},
        BoundaryCase{"pmap", 0, -1}, BoundaryCase{"grid_count", 20, 21},
        BoundaryCase{"p", 1, 0}, BoundaryCase{"q", 1, 0},
        BoundaryCase{"pfact_count", 3, 4}, BoundaryCase{"pfact", 2, 3},
        BoundaryCase{"pfact", 0, -1}, BoundaryCase{"nbmin", 1, 0},
        BoundaryCase{"nbmin", 64, 65}, BoundaryCase{"ndiv", 2, 1},
        BoundaryCase{"ndiv", 8, 9}, BoundaryCase{"rfact", 2, 3},
        BoundaryCase{"bcast", 5, 6}, BoundaryCase{"bcast", 0, -1},
        BoundaryCase{"depth", 1, 2}, BoundaryCase{"swap_alg", 2, 3},
        BoundaryCase{"swap_threshold", 0, -1},
        BoundaryCase{"l1_form", 1, 2}, BoundaryCase{"u_form", 0, -1},
        BoundaryCase{"equil", 1, 2}, BoundaryCase{"align", 4, 3},
        BoundaryCase{"align", 64, 65}, BoundaryCase{"align", 8, 12},
        BoundaryCase{"threshold_scale", 1, 0},
        BoundaryCase{"threshold_scale", 1000, 1001},
        BoundaryCase{"pfact_list_len", 1, 0},
        BoundaryCase{"nbmin_list_len", 1, 0}));

TEST(HplBoundary, GridFitDependsOnProcessCount) {
  // p*q = 8 fits 8 processes but not 4 — the sw-coupled check.
  const TargetInfo t = make_mini_hpl_target(64);
  auto in = mini_hpl_defaults(16, 4, 2, 4);
  const auto fits = run_fixed(t, in, 8);
  const auto too_big = run_fixed(t, in, 4);
  EXPECT_GT(fits.merged_coverage().count(),
            too_big.merged_coverage().count());
}

// ---------------------------------------------------------------------------
// mini-SUSY-HMC: the setup checks of the 13 marked inputs.
// ---------------------------------------------------------------------------
class SusyBoundaryTest : public ::testing::TestWithParam<BoundaryCase> {};

TEST_P(SusyBoundaryTest, GoodPassesBadStopsAtSanity) {
  const BoundaryCase c = GetParam();
  const TargetInfo t = make_mini_susy_target(/*dim_cap=*/5,
                                             /*with_bugs=*/false);
  auto good = mini_susy_defaults(/*nprocs=*/1);
  good[c.param] = c.good;
  const auto ok = run_fixed(t, good, 1);
  EXPECT_EQ(ok.job_outcome(), rt::Outcome::kOk) << ok.job_message();
  const std::size_t good_cov = ok.merged_coverage().count();

  auto bad = mini_susy_defaults(1);
  bad[c.param] = c.bad;
  const auto rejected = run_fixed(t, bad, 1);
  EXPECT_EQ(rejected.job_outcome(), rt::Outcome::kOk);
  EXPECT_LT(rejected.merged_coverage().count(), good_cov) << c.param;
}

INSTANTIATE_TEST_SUITE_P(
    Params, SusyBoundaryTest,
    ::testing::Values(
        BoundaryCase{"nx", 1, 0}, BoundaryCase{"ny", 1, -1},
        BoundaryCase{"nz", 1, 0}, BoundaryCase{"warms", 0, -1},
        BoundaryCase{"trajecs", 1000, 1001},
        BoundaryCase{"nsteps", 1, 0}, BoundaryCase{"nsteps", 100, 101},
        BoundaryCase{"nroot", 1, 0}, BoundaryCase{"nroot", 16, 17},
        BoundaryCase{"norder", 1, 0}, BoundaryCase{"norder", 20, 21},
        BoundaryCase{"seed", 7, 0}, BoundaryCase{"max_cg", 1, 0},
        BoundaryCase{"max_cg", 500, 501}, BoundaryCase{"npbp", 0, -1},
        BoundaryCase{"ckpt_freq", 0, -1}));

TEST(SusyBoundary, WarmsMayNotExceedTrajectories) {
  const TargetInfo t = make_mini_susy_target(5, false);
  auto in = mini_susy_defaults(1);
  in["trajecs"] = 3;
  in["warms"] = 3;  // equal: fine
  const auto ok = run_fixed(t, in, 1);
  in["warms"] = 4;  // more warmups than trajectories: rejected
  const auto rejected = run_fixed(t, in, 1);
  EXPECT_LT(rejected.merged_coverage().count(),
            ok.merged_coverage().count());
}

// ---------------------------------------------------------------------------
// mini-IMB-MPI1: parse_args validates the 13 command-line inputs.
// ---------------------------------------------------------------------------
class ImbBoundaryTest : public ::testing::TestWithParam<BoundaryCase> {};

TEST_P(ImbBoundaryTest, GoodPassesBadStopsAtSanity) {
  const BoundaryCase c = GetParam();
  const TargetInfo t = make_mini_imb_target();
  auto good = mini_imb_defaults(/*benchmark=*/9, /*iters=*/2);
  good[c.param] = c.good;
  const auto ok = run_fixed(t, good, 4);
  EXPECT_EQ(ok.job_outcome(), rt::Outcome::kOk) << ok.job_message();
  const std::size_t good_cov = ok.merged_coverage().count();

  auto bad = mini_imb_defaults(9, 2);
  bad[c.param] = c.bad;
  const auto rejected = run_fixed(t, bad, 4);
  EXPECT_EQ(rejected.job_outcome(), rt::Outcome::kOk);
  EXPECT_LT(rejected.merged_coverage().count(), good_cov) << c.param;
}

INSTANTIATE_TEST_SUITE_P(
    Params, ImbBoundaryTest,
    ::testing::Values(
        BoundaryCase{"benchmark", 12, 13}, BoundaryCase{"benchmark", 0, -1},
        BoundaryCase{"msglog_min", 0, -1},
        BoundaryCase{"msglog_min", 4, 17}, BoundaryCase{"iters", 1, 0},
        BoundaryCase{"warmups", 0, -1}, BoundaryCase{"npmin", 2, 1},
        BoundaryCase{"root", 0, -1}, BoundaryCase{"root", 3, 4},
        BoundaryCase{"off_cache", 1, 2}, BoundaryCase{"multi", 0, -1},
        BoundaryCase{"sync", 1, 5}, BoundaryCase{"msg_pow", 4, 3},
        BoundaryCase{"vol_log", 10, 9}, BoundaryCase{"vol_log", 22, 23},
        BoundaryCase{"time_scale", 100, 101},
        BoundaryCase{"time_scale", 1, 0}));

}  // namespace
}  // namespace compi::targets
