// mini-SUSY-HMC behaviour tests: the four seeded bugs trigger exactly under
// the paper's conditions and the "fixed" build is clean.
#include <gtest/gtest.h>

#include "targets/mini_susy/mini_susy.h"
#include "tests/targets/target_test_util.h"

namespace compi::targets {
namespace {

using compi::testing::run_fixed;

/// A parameter set that passes the sanity check with `nprocs` processes
/// (nt must be a multiple of the process count) and triggers no bug.
std::map<std::string, std::int64_t> valid_inputs(int nprocs) {
  return {
      {"nx", 2},     {"ny", 2},      {"nz", 2},     {"nt", nprocs},
      {"warms", 0},  {"trajecs", 1}, {"nsteps", 1}, {"nroot", 2},
      {"norder", 2}, {"seed", 7},    {"max_cg", 5}, {"npbp", 0},
      {"ckpt_freq", 0},
  };
}

TEST(MiniSusy, ValidInputsRunCleanly) {
  // Process counts 2 and 4 are excluded here: sanity requires nt to be a
  // multiple of the process count, so nt is then necessarily even and the
  // seeded paired-layout FPE always fires (see Bug4 test below).
  const TargetInfo t = make_mini_susy_target();
  for (int np : {1, 3, 5}) {
    const auto result = run_fixed(t, valid_inputs(np), np);
    EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk)
        << "np=" << np << ": " << result.job_message();
  }
}

TEST(MiniSusy, InvalidDimensionRejectedBySanity) {
  const TargetInfo t = make_mini_susy_target();
  auto in = valid_inputs(1);
  in["nx"] = 0;
  const auto result = run_fixed(t, in, 1);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << "sanity exit is clean";
  // The run never reaches the layout function.
  EXPECT_LT(result.merged_coverage().count(), 20u);
}

TEST(MiniSusy, IndivisibleTimeExtentRejected) {
  const TargetInfo t = make_mini_susy_target();
  auto in = valid_inputs(3);
  in["nt"] = 4;  // 3 processes cannot slice nt=4 evenly
  const auto result = run_fixed(t, in, 3);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk);
  EXPECT_LT(result.merged_coverage().count(), 30u);
}

TEST(MiniSusy, Bug1SrcMallocTriggersOnHighOrder) {
  const TargetInfo t = make_mini_susy_target();
  auto in = valid_inputs(1);
  in["norder"] = 5;  // > 4 enters the high-order RHMC buffer path
  const auto result = run_fixed(t, in, 1);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kSegfault);
  EXPECT_NE(result.job_message().find("src"), std::string::npos);
}

TEST(MiniSusy, Bug2PsimMallocTriggersOnPbpMeasurement) {
  const TargetInfo t = make_mini_susy_target();
  auto in = valid_inputs(1);
  in["npbp"] = 1;
  const auto result = run_fixed(t, in, 1);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kSegfault);
  EXPECT_NE(result.job_message().find("psim"), std::string::npos);
}

TEST(MiniSusy, Bug3DestMallocTriggersOnMultiStep) {
  const TargetInfo t = make_mini_susy_target();
  auto in = valid_inputs(1);
  in["nsteps"] = 2;
  in["trajecs"] = 1;
  const auto result = run_fixed(t, in, 1);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kSegfault);
  EXPECT_NE(result.job_message().find("dest"), std::string::npos);
}

TEST(MiniSusy, Bug4FpeNeedsTwoOrFourProcessesAndEvenNt) {
  const TargetInfo t = make_mini_susy_target();
  // Paper §VI-A: "it manifests with 2 or 4 processes but it does not occur
  // with 1 or 3 processes" — plus the even time extent.
  for (int np : {2, 4}) {
    auto in = valid_inputs(np);
    in["nt"] = np * 2;  // even, divisible
    const auto result = run_fixed(t, in, np);
    EXPECT_EQ(result.job_outcome(), rt::Outcome::kFpe) << "np=" << np;
  }
  for (int np : {1, 3}) {
    auto in = valid_inputs(np);
    in["nt"] = np * 2;  // same even extent, non-paired process counts
    const auto result = run_fixed(t, in, np);
    EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << "np=" << np;
  }
}

TEST(MiniSusy, FpeDoesNotTriggerWithOddNt) {
  const TargetInfo t = make_mini_susy_target(/*dim_cap=*/9);
  auto in = valid_inputs(2);
  in["nt"] = 6;  // even: faults
  EXPECT_EQ(run_fixed(t, in, 2).job_outcome(), rt::Outcome::kFpe);
  // nt must stay divisible by 2 to pass sanity, so an odd nt cannot be
  // tested at np=2; np=1 never takes the paired path at all.
  in["nt"] = 3;
  EXPECT_EQ(run_fixed(t, in, 1).job_outcome(), rt::Outcome::kOk);
}

TEST(MiniSusy, FixedBuildIsCleanOnAllBugTriggers) {
  const TargetInfo t = make_mini_susy_target(5, /*with_bugs=*/false);
  struct Case {
    std::string key;
    std::int64_t value;
    int np;
  };
  for (const auto& c : std::initializer_list<Case>{
           {"norder", 5, 1}, {"npbp", 1, 1}, {"nsteps", 2, 1}}) {
    auto in = valid_inputs(c.np);
    in[c.key] = c.value;
    const auto result = run_fixed(t, in, c.np);
    EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk)
        << c.key << "=" << c.value << ": " << result.job_message();
  }
  auto in = valid_inputs(2);
  in["nt"] = 4;
  EXPECT_EQ(run_fixed(t, in, 2).job_outcome(), rt::Outcome::kOk)
      << "the developer's fix guards the paired-layout division";
}

TEST(MiniSusy, TableMetadataIsConsistent) {
  const TargetInfo t = make_mini_susy_target();
  EXPECT_EQ(t.name, "mini-SUSY-HMC");
  EXPECT_GT(t.table->num_sites(), 40u);
  EXPECT_EQ(t.paper_sloc, 19201);
  EXPECT_EQ(t.default_cap, 5);
}

}  // namespace
}  // namespace compi::targets
