// Unit tests for the RHMC machinery: rational approximation tables, the
// stand-in Dirac-squared operator, and the multi-shift CG solver.
#include "targets/mini_susy/susy_rhmc.h"

#include <gtest/gtest.h>

#include <cmath>

namespace compi::targets::susy {
namespace {

GaugeField small_field() {
  LatticeGeom g;
  g.nx = 2;
  g.ny = 2;
  g.nz = 2;
  g.nt = 2;
  g.nt_local = 2;
  g.t0 = 0;
  return GaugeField(g, 5);
}

std::vector<double> test_rhs(std::size_t n) {
  std::vector<double> rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = ((i * 2654435761u) % 1000) / 1000.0 - 0.5;
  }
  return rhs;
}

TEST(RationalApprox, TableHasRequestedOrder) {
  for (int order : {1, 4, 9}) {
    const RationalApprox r = make_rational_approx(order);
    EXPECT_EQ(r.residues.size(), static_cast<std::size_t>(order));
    EXPECT_EQ(r.poles.size(), static_cast<std::size_t>(order));
  }
}

TEST(RationalApprox, PolesPositiveAndIncreasing) {
  const RationalApprox r = make_rational_approx(6);
  double prev = 0.0;
  for (double b : r.poles) {
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(ApplyOperator, IsPositiveDefiniteOnTestVectors) {
  const GaugeField u = small_field();
  const std::size_t n = static_cast<std::size_t>(u.geom().local_volume());
  std::vector<double> y(n);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = std::sin(0.7 * static_cast<double>(i + trial));
    }
    apply_operator(u, 0.3, x, y);
    double xax = 0.0;
    for (std::size_t i = 0; i < n; ++i) xax += x[i] * y[i];
    EXPECT_GT(xax, 0.0) << "trial " << trial;
  }
}

TEST(ApplyOperator, DiagonalDominance) {
  // A zero-link field gives exactly (4 + m^2) I - (1/2) * hopping with
  // |row sum of off-diagonals| <= 4 * 1/2 = 2 < 4 + m^2.
  const GaugeField u = small_field();
  const std::size_t n = static_cast<std::size_t>(u.geom().local_volume());
  std::vector<double> e(n, 0.0), y(n);
  e[3] = 1.0;
  apply_operator(u, 0.3, e, y);
  EXPECT_NEAR(y[3], 4.0 + 0.09, 1e-12);
}

TEST(MultiShiftCg, SolvesEveryShiftedSystem) {
  const GaugeField u = small_field();
  const std::size_t n = static_cast<std::size_t>(u.geom().local_volume());
  const std::vector<double> rhs = test_rhs(n);
  const RationalApprox approx = make_rational_approx(4);

  const MultiShiftResult r =
      multishift_cg(u, 0.3, approx, rhs, 1e-10, 500);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.solutions.size(), approx.poles.size());

  std::vector<double> ax(n);
  for (std::size_t sft = 0; sft < approx.poles.size(); ++sft) {
    apply_operator(u, 0.3, r.solutions[sft], ax);
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double resid =
          ax[i] + approx.poles[sft] * r.solutions[sft][i] - rhs[i];
      err += resid * resid;
    }
    EXPECT_LT(std::sqrt(err), 1e-6) << "shift " << sft;
  }
}

TEST(MultiShiftCg, LargerShiftsFreezeNoLater) {
  const GaugeField u = small_field();
  const std::vector<double> rhs =
      test_rhs(static_cast<std::size_t>(u.geom().local_volume()));
  const RationalApprox approx = make_rational_approx(5);
  const MultiShiftResult r =
      multishift_cg(u, 0.3, approx, rhs, 1e-10, 500);
  // Poles increase with index; a larger pole makes the shifted system
  // better conditioned, so it must not freeze later than a smaller one.
  for (std::size_t i = 0; i + 1 < approx.poles.size(); ++i) {
    const int a = r.shift_frozen_at[i] < 0 ? 1 << 20 : r.shift_frozen_at[i];
    const int b = r.shift_frozen_at[i + 1] < 0 ? 1 << 20
                                               : r.shift_frozen_at[i + 1];
    EXPECT_GE(a, b) << "shift " << i;
  }
}

TEST(MultiShiftCg, IterationBudgetRespected) {
  const GaugeField u = small_field();
  const std::vector<double> rhs =
      test_rhs(static_cast<std::size_t>(u.geom().local_volume()));
  const RationalApprox approx = make_rational_approx(3);
  const MultiShiftResult r = multishift_cg(u, 0.3, approx, rhs, 1e-14, 3);
  EXPECT_LE(r.iterations, 3);
}

TEST(ApplyRational, MatchesManualPartialFractionSum) {
  const GaugeField u = small_field();
  const std::size_t n = static_cast<std::size_t>(u.geom().local_volume());
  const std::vector<double> rhs = test_rhs(n);
  const RationalApprox approx = make_rational_approx(3);
  const MultiShiftResult shifts =
      multishift_cg(u, 0.3, approx, rhs, 1e-10, 500);
  const std::vector<double> out = apply_rational(approx, shifts, rhs);
  for (std::size_t i = 0; i < n; i += 7) {
    double expect = approx.a0 * rhs[i];
    for (std::size_t s = 0; s < approx.residues.size(); ++s) {
      expect += approx.residues[s] * shifts.solutions[s][i];
    }
    EXPECT_DOUBLE_EQ(out[i], expect);
  }
}

}  // namespace
}  // namespace compi::targets::susy
