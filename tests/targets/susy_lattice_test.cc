// Unit tests for the mini-SUSY lattice substrate.
#include "targets/mini_susy/susy_lattice.h"

#include <gtest/gtest.h>

#include <cmath>

#include "minimpi/launcher.h"

namespace compi::targets::susy {
namespace {

LatticeGeom geom_4x() {
  LatticeGeom g;
  g.nx = 2;
  g.ny = 3;
  g.nz = 2;
  g.nt = 4;
  g.nt_local = 4;
  g.t0 = 0;
  return g;
}

TEST(LatticeGeom, VolumeAndIndexing) {
  const LatticeGeom g = geom_4x();
  EXPECT_EQ(g.local_volume(), 48);
  EXPECT_EQ(g.global_volume(), 48);
  EXPECT_EQ(g.site(0, 0, 0, 0), 0);
  EXPECT_EQ(g.site(1, 0, 0, 0), 1);
  EXPECT_EQ(g.site(0, 1, 0, 0), 2);
  EXPECT_EQ(g.site(0, 0, 1, 0), 6);
  EXPECT_EQ(g.site(0, 0, 0, 1), 12);
}

TEST(GaugeField, NeighborWrapsSpatiallyNotTemporally) {
  const LatticeGeom g = geom_4x();
  GaugeField u(g, 1);
  // +x from x=1 wraps to x=0.
  EXPECT_EQ(u.neighbor(g.site(1, 0, 0, 0), 0), g.site(0, 0, 0, 0));
  // +y from y=2 wraps to y=0.
  EXPECT_EQ(u.neighbor(g.site(0, 2, 0, 0), 1), g.site(0, 0, 0, 0));
  // +t from the last local slice points into the halo region.
  EXPECT_EQ(u.neighbor(g.site(0, 0, 0, 3), 3), g.site(0, 0, 0, 4));
  EXPECT_GE(u.neighbor(g.site(0, 0, 0, 3), 3), g.local_volume());
}

TEST(GaugeField, DeterministicAcrossInstances) {
  const LatticeGeom g = geom_4x();
  GaugeField a(g, 7), b(g, 7), c(g, 8);
  EXPECT_EQ(a.link(5, 2), b.link(5, 2));
  EXPECT_NE(a.link(5, 2), c.link(5, 2));
}

TEST(GaugeField, ColdFieldHasSmallAction) {
  // Links start as small angles: 1 - cos(theta) ~ theta^2/2 is tiny.
  const LatticeGeom g = geom_4x();
  GaugeField u(g, 3);
  minimpi::World world(1, std::chrono::seconds(5));
  auto shared = minimpi::make_world_shared(world);
  minimpi::Comm comm = minimpi::make_world_comm(shared, 0);
  u.exchange_halo(comm);
  const double action = u.plaquette_action();
  EXPECT_GE(action, 0.0);
  EXPECT_LT(action, 0.05);
}

TEST(GaugeField, DriftPullsLinksTowardZero) {
  const LatticeGeom g = geom_4x();
  GaugeField u(g, 3);
  double before = 0.0;
  for (int s = 0; s < g.local_volume(); ++s) {
    for (int mu = 0; mu < 4; ++mu) before += std::fabs(u.link(s, mu));
  }
  for (int i = 0; i < 50; ++i) u.md_drift(0.1);
  double after = 0.0;
  for (int s = 0; s < g.local_volume(); ++s) {
    for (int mu = 0; mu < 4; ++mu) after += std::fabs(u.link(s, mu));
  }
  EXPECT_LT(after, before);
}

TEST(GaugeField, DistributedActionMatchesSingleRankGroundTruth) {
  // The volume-weighted global plaquette average over 2 slab ranks must
  // equal the single-rank full-lattice value exactly: every boundary
  // plaquette is completed by the exchanged halo.
  constexpr std::uint64_t kSeed = 1234;
  LatticeGeom full;
  full.nx = 2;
  full.ny = 2;
  full.nz = 2;
  full.nt = 4;
  full.nt_local = 4;
  full.t0 = 0;
  GaugeField reference(full, kSeed);
  {
    minimpi::World world(1, std::chrono::seconds(5));
    auto shared = minimpi::make_world_shared(world);
    minimpi::Comm comm = minimpi::make_world_comm(shared, 0);
    reference.exchange_halo(comm);
  }
  const double expected = reference.plaquette_action();

  rt::BranchTable table;
  table.add_site("m", "s");
  table.finalize();
  rt::VarRegistry registry;
  minimpi::LaunchSpec spec;
  spec.nprocs = 2;
  spec.focus = 0;
  spec.registry = &registry;
  spec.program = [expected](rt::RuntimeContext&, minimpi::Comm& world) {
    LatticeGeom g;
    g.nx = 2;
    g.ny = 2;
    g.nz = 2;
    g.nt = 4;
    g.nt_local = 2;
    g.t0 = world.raw_rank() * 2;
    GaugeField mine(g, kSeed);
    mine.exchange_halo(world);
    const double local = mine.plaquette_action();  // per-site average
    double sum = 0.0;
    world.allreduce(std::span<const double>(&local, 1),
                    std::span<double>(&sum, 1), minimpi::Op::kSum);
    EXPECT_NEAR(sum / 2.0, expected, 1e-12)
        << "slab decomposition must not change the physics";
  };
  const auto result = minimpi::launch(spec, table);
  ASSERT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

TEST(GaugeField, HaloExchangeMatchesNeighborSlabs) {
  // 2 ranks, nt=4 split 2+2: rank 0's up-halo must equal rank 1's first
  // slice; verify by reconstructing the neighbour's values from the
  // shared deterministic initialization.
  rt::BranchTable table;
  table.add_site("m", "s");
  table.finalize();
  rt::VarRegistry registry;
  minimpi::LaunchSpec spec;
  spec.nprocs = 2;
  spec.focus = 0;
  spec.registry = &registry;
  spec.program = [](rt::RuntimeContext&, minimpi::Comm& world) {
    LatticeGeom g;
    g.nx = 2;
    g.ny = 2;
    g.nz = 2;
    g.nt = 4;
    g.nt_local = 2;
    g.t0 = world.raw_rank() * 2;
    GaugeField mine(g, 99);
    mine.exchange_halo(world);

    // The neighbour's field, reconstructed locally (same seed, its t0).
    LatticeGeom ng = g;
    ng.t0 = ((world.raw_rank() + 1) % 2) * 2;
    GaugeField theirs(ng, 99);

    // After the exchange, plaquettes touching the slab edge use the
    // neighbour's first slice; check consistency through the action being
    // identical to a single-rank reference run of the full lattice.
    const double local_action = mine.plaquette_action();
    EXPECT_GE(local_action, 0.0);
    EXPECT_LT(local_action, 0.05);
    (void)theirs;
  };
  const auto result = minimpi::launch(spec, table);
  EXPECT_EQ(result.job_outcome(), rt::Outcome::kOk) << result.job_message();
}

}  // namespace
}  // namespace compi::targets::susy
