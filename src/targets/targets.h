// Convenience umbrella: all three evaluation subjects of the paper.
#pragma once

#include "targets/mini_hpl/mini_hpl.h"
#include "targets/mini_imb/mini_imb.h"
#include "targets/mini_susy/mini_susy.h"

namespace compi::targets {

/// All three targets with their paper-default input caps (§VI):
/// SUSY-HMC N_C=5, HPL N_C=300, IMB-MPI1 N_C=100.
[[nodiscard]] inline std::vector<TargetInfo> default_targets() {
  std::vector<TargetInfo> out;
  out.push_back(make_mini_susy_target());
  out.push_back(make_mini_hpl_target());
  out.push_back(make_mini_imb_target());
  return out;
}

}  // namespace compi::targets
