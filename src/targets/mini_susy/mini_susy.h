// mini-SUSY-HMC: the physics-simulation evaluation subject (paper §VI-A).
//
// A skeleton of SUSY_LATTICE's susy_hmc — 4-D lattice setup with the
// characteristic divisibility sanity checks, rank-dependent layout, RHMC
// buffer setup, trajectory / MD-step / CG loops with boundary exchange —
// carrying the four bugs COMPI found in the real program:
//   * three wrong-sizeof malloc bugs (SimulatedSegfault on access), in
//     setup_rhmc (gated on norder > 4), congrad (gated on npbp >= 1) and
//     update_gauge (gated on nsteps >= 2 && trajecs >= 1);
//   * one division-by-zero (SimulatedFpe) that only manifests with 2 or 4
//     processes (and an even time extent), not with 1 or 3.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "compi/target.h"

namespace compi::targets {

/// Builds the mini-SUSY-HMC target.  `dim_cap` is the input cap N_C on the
/// four lattice extents (paper default 5; Fig. 8 also uses 10).
/// `with_bugs=false` builds the fixed version (used by tests and by the
/// post-fix retesting workflow the paper describes).
[[nodiscard]] TargetInfo make_mini_susy_target(int dim_cap = 5,
                                               bool with_bugs = true);

/// Default lattice inputs that pass the sanity check with `nprocs`
/// processes (nt = nprocs so the time extent divides evenly) without
/// triggering any seeded bug on non-paired process counts.
[[nodiscard]] std::map<std::string, std::int64_t> mini_susy_defaults(
    int nprocs = 1, int dim = 2);

}  // namespace compi::targets
