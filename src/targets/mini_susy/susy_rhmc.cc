#include "targets/mini_susy/susy_rhmc.h"

#include <cmath>

namespace compi::targets::susy {

RationalApprox make_rational_approx(int norder) {
  RationalApprox r;
  r.a0 = 1.0;
  r.residues.reserve(norder);
  r.poles.reserve(norder);
  // Geometric pole ladder with alternating-magnitude residues — the shape
  // a Remez fit of x^{-1/4} over [mu^2, lambda_max] produces.
  double pole = 0.05;
  double residue = 0.4;
  for (int i = 0; i < norder; ++i) {
    r.poles.push_back(pole);
    r.residues.push_back(residue);
    pole *= 3.0;
    residue *= 0.55;
  }
  return r;
}

void apply_operator(const GaugeField& u, double mass,
                    const std::vector<double>& x, std::vector<double>& y) {
  const int volume = u.geom().local_volume();
  const double diag = 4.0 + mass * mass;
  for (int s = 0; s < volume; ++s) y[s] = diag * x[s];
  // Edge-wise accumulation keeps A exactly symmetric (one weight per link,
  // applied in both directions); halo edges are treated as Dirichlet,
  // keeping the per-slab operator positive definite: each site touches at
  // most 8 edges of weight 1/2, so the diagonal 4 + m^2 dominates.
  for (int s = 0; s < volume; ++s) {
    for (int mu = 0; mu < 4; ++mu) {
      const int n = u.neighbor(s, mu);
      if (n >= volume) continue;
      const double w = 0.5 * std::cos(u.link(s, mu));
      y[s] -= w * x[n];
      y[n] -= w * x[s];
    }
  }
}

MultiShiftResult multishift_cg(const GaugeField& u, double mass,
                               const RationalApprox& approx,
                               const std::vector<double>& rhs, double tol,
                               int max_it) {
  const std::size_t n = rhs.size();
  const std::size_t nshift = approx.poles.size();
  MultiShiftResult out;
  out.solutions.assign(nshift, std::vector<double>(n, 0.0));
  out.shift_frozen_at.assign(nshift, -1);

  // Single-shift CG run per pole would re-build the same Krylov space
  // nshift times; the multi-shift recurrence shares it.  For clarity (and
  // because our operator is cheap) this implementation runs the shared
  // base recurrence and applies the standard shifted-coefficient updates.
  std::vector<double> r = rhs;
  std::vector<double> p = rhs;
  std::vector<double> ap(n);
  std::vector<std::vector<double>> ps(nshift, rhs);
  std::vector<double> zeta(nshift, 1.0), zeta_prev(nshift, 1.0);
  std::vector<double> beta_s(nshift, 0.0);
  std::vector<bool> frozen(nshift, false);

  auto dot = [](const std::vector<double>& a, const std::vector<double>& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
  };

  double rr = dot(r, r);
  const double target = tol * tol * std::max(rr, 1e-30);
  double alpha_prev = 1.0, beta_prev = 0.0;

  for (int it = 0; it < max_it; ++it) {
    if (rr <= target) {
      out.converged = true;
      break;
    }
    apply_operator(u, mass, p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // loss of positive-definiteness: bail out
    const double alpha = rr / pap;

    for (std::size_t i = 0; i < n; ++i) r[i] -= alpha * ap[i];
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;

    for (std::size_t sft = 0; sft < nshift; ++sft) {
      if (frozen[sft]) continue;
      // Shifted coefficient recurrences (Jegerlehner's multi-shift CG).
      const double b = approx.poles[sft];
      const double zeta_next =
          (zeta[sft] * zeta_prev[sft] * alpha_prev) /
          (alpha * beta_prev * (zeta_prev[sft] - zeta[sft]) +
           zeta_prev[sft] * alpha_prev * (1.0 + b * alpha));
      const double alpha_s = alpha * zeta_next / zeta[sft];
      for (std::size_t i = 0; i < n; ++i) {
        out.solutions[sft][i] += alpha_s * ps[sft][i];
      }
      const double beta_sft =
          beta * (zeta_next / zeta[sft]) * (zeta_next / zeta[sft]);
      for (std::size_t i = 0; i < n; ++i) {
        ps[sft][i] = zeta_next * r[i] + beta_sft * ps[sft][i];
      }
      zeta_prev[sft] = zeta[sft];
      zeta[sft] = zeta_next;
      beta_s[sft] = beta_sft;
      // Large shifts converge early: freeze once their effective residual
      // is below target.
      if (zeta_next * zeta_next * rr_new <= target) {
        frozen[sft] = true;
        out.shift_frozen_at[sft] = it;
      }
    }

    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    alpha_prev = alpha;
    beta_prev = beta;
    rr = rr_new;
    out.iterations = it + 1;
  }
  if (rr <= target) out.converged = true;
  return out;
}

std::vector<double> apply_rational(const RationalApprox& approx,
                                   const MultiShiftResult& shifts,
                                   const std::vector<double>& rhs) {
  std::vector<double> out(rhs.size());
  for (std::size_t i = 0; i < rhs.size(); ++i) out[i] = approx.a0 * rhs[i];
  for (std::size_t sft = 0; sft < approx.residues.size(); ++sft) {
    const double a = approx.residues[sft];
    for (std::size_t i = 0; i < rhs.size(); ++i) {
      out[i] += a * shifts.solutions[sft][i];
    }
  }
  return out;
}

}  // namespace compi::targets::susy
