// 4-D lattice substrate for mini-SUSY-HMC.
//
// A compact-U(1) stand-in for SUSY_LATTICE's gauge sector: each site
// carries four link angles; the gauge action is the sum of cos(plaquette)
// over the six planes.  The lattice is decomposed across ranks along the
// time direction (nt must divide evenly — the sanity requirement), with
// halo exchange of the time-boundary slices through MiniMPI.
#pragma once

#include <cstdint>
#include <vector>

#include "minimpi/comm.h"
#include "runtime/context.h"

namespace compi::targets::susy {

struct LatticeGeom {
  int nx = 1, ny = 1, nz = 1, nt = 1;  // global extents
  int nt_local = 1;                    // this rank's time slab
  int t0 = 0;                          // slab's global time offset

  [[nodiscard]] int local_volume() const { return nx * ny * nz * nt_local; }
  [[nodiscard]] int global_volume() const { return nx * ny * nz * nt; }

  /// Local site index from local coordinates.
  [[nodiscard]] int site(int x, int y, int z, int t) const {
    return ((t * nz + z) * ny + y) * nx + x;
  }
};

/// Gauge field: four link angles per local site (plus the halo slabs for
/// t-1 and t+nt_local used by plaquettes that straddle the slab edges).
class GaugeField {
 public:
  GaugeField(const LatticeGeom& geom, std::uint64_t seed);

  [[nodiscard]] const LatticeGeom& geom() const { return geom_; }

  /// Link angle at local site s in direction mu (0=x,1=y,2=z,3=t).
  [[nodiscard]] double link(int s, int mu) const {
    return links_[static_cast<std::size_t>(s) * 4 + mu];
  }
  double& link(int s, int mu) {
    return links_[static_cast<std::size_t>(s) * 4 + mu];
  }

  /// Neighbour site in +mu, staying inside the local slab; time wraps
  /// into the halo representation (see plaquette_action).
  [[nodiscard]] int neighbor(int s, int mu) const;

  /// Exchanges the time-boundary link slices with the neighbouring ranks
  /// (periodic in t across the whole machine).  Collective over `world`.
  void exchange_halo(minimpi::Comm& world);

  /// Average plaquette over the six planes of the local slab; uses the
  /// halo for plaquettes that reach into the next rank's first slice.
  [[nodiscard]] double plaquette_action() const;

  /// Average spatial Wilson loop of extent r x t in the (x, y) plane:
  /// cos of the summed link angles around the rectangle, averaged over
  /// all local sites.  W(1,1) equals the average (x,y)-plaquette cosine.
  [[nodiscard]] double wilson_loop(int r, int t) const;

  /// Leapfrog update: theta += eps * momentum, with a deterministic
  /// pseudo-momentum derived from the gauge force.
  void md_drift(double eps);

  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

 private:
  LatticeGeom geom_;
  std::vector<double> links_;       // nt_local slab, 4 per site
  std::vector<double> halo_up_;     // t = nt_local slice (next rank)
  std::vector<double> halo_down_;   // t = -1 slice (previous rank)
};

}  // namespace compi::targets::susy
