#include "targets/mini_susy/mini_susy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "targets/mini_susy/susy_lattice.h"
#include "targets/mini_susy/susy_rhmc.h"
#include "targets/mini_susy/susy_sites.h"

namespace compi::targets {
namespace {

using susy::GaugeField;
using susy::LatticeGeom;
using susy::MultiShiftResult;
using susy::RationalApprox;
using susy::Site;
using susy::apply_rational;
using susy::make_rational_approx;
using susy::multishift_cg;
using sym::SymInt;

/// The simulated Twist_Fermion struct of SUSY_LATTICE: a large per-site
/// object whose sizeof the buggy malloc() calls confuse with a pointer's.
constexpr std::size_t kSizeofTwistFermion = 96;
constexpr std::size_t kSizeofPointer = 8;

struct Inputs {
  SymInt nx, ny, nz, nt;
  SymInt warms, trajecs, nsteps;
  SymInt nroot, norder, seed;
  SymInt max_cg, npbp, ckpt_freq;
};

Inputs read_inputs(rt::RuntimeContext& ctx, int dim_cap) {
  Inputs in;
  in.nx = ctx.input_int_capped("nx", dim_cap);
  in.ny = ctx.input_int_capped("ny", dim_cap);
  in.nz = ctx.input_int_capped("nz", dim_cap);
  in.nt = ctx.input_int_capped("nt", dim_cap);
  in.warms = ctx.input_int("warms");
  in.trajecs = ctx.input_int("trajecs");
  in.nsteps = ctx.input_int("nsteps");
  in.nroot = ctx.input_int_capped("nroot", 16);
  in.norder = ctx.input_int("norder");
  in.seed = ctx.input_int("seed");
  in.max_cg = ctx.input_int_capped("max_cg", 500);
  in.npbp = ctx.input_int("npbp");
  in.ckpt_freq = ctx.input_int("ckpt_freq");
  return in;
}

bool fail(rt::RuntimeContext& ctx, const SymInt& rank) {
  if (br(ctx, Site::st_err_rank0, rank == SymInt(0))) {
    // rank 0: "setup: invalid parameter" (output elided)
  }
  return false;
}

/// Sanity checks, including the characteristic lattice-layout requirement
/// that the time extent divides evenly across processes.  The divisibility
/// probe is a factor-search loop, so every probe is a *linear* constraint
/// (i * size == nt) the solver can satisfy — this is what lets COMPI steer
/// the process count, and what condemns the fixed-8-process No_Fwk
/// ablation (nt <= cap < 8 means 8 | nt is unsatisfiable, §VI-E).
bool sanity_check(rt::RuntimeContext& ctx, const Inputs& in,
                  const SymInt& rank, const SymInt& size) {
  using S = Site;
  const SymInt zero(0), one(1);
  if (br(ctx, S::st_nx_lo, in.nx < one)) return fail(ctx, rank);
  if (br(ctx, S::st_ny_lo, in.ny < one)) return fail(ctx, rank);
  if (br(ctx, S::st_nz_lo, in.nz < one)) return fail(ctx, rank);
  if (br(ctx, S::st_nt_lo, in.nt < one)) return fail(ctx, rank);

  const SymInt vol = in.nx * in.ny * in.nz * in.nt;  // linearized product
  if (br(ctx, S::st_vol_hi, vol > SymInt(1 << 16))) return fail(ctx, rank);
  if (br(ctx, S::st_nt_even_dim, in.nx > in.nt * SymInt(4))) {
    // Strongly anisotropic lattice: allowed, but noted.
  }

  // nt must be a multiple of the process count (time-sliced layout).
  bool divides = false;
  for (int i = 1; i <= 16; ++i) {
    if (br(ctx, S::st_div_probe, size * i == in.nt)) {
      divides = true;
      break;
    }
  }
  if (br(ctx, S::st_div_fail, SymInt(divides ? 1 : 0) == SymInt(0))) {
    return fail(ctx, rank);
  }

  if (br(ctx, S::st_warms_neg, in.warms < zero)) return fail(ctx, rank);
  if (br(ctx, S::st_trajecs_neg, in.trajecs < zero)) return fail(ctx, rank);
  if (br(ctx, S::st_trajecs_hi, in.trajecs > SymInt(1000))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::st_warms_gt_traj, in.warms > in.trajecs)) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::st_nsteps_lo, in.nsteps < one)) return fail(ctx, rank);
  if (br(ctx, S::st_nsteps_hi, in.nsteps > SymInt(100))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::st_nroot_lo, in.nroot < one)) return fail(ctx, rank);
  if (br(ctx, S::st_nroot_hi, in.nroot > SymInt(16))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::st_norder_lo, in.norder < one)) return fail(ctx, rank);
  if (br(ctx, S::st_norder_hi, in.norder > SymInt(20))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::st_seed_zero, in.seed == zero)) return fail(ctx, rank);
  if (br(ctx, S::st_cg_lo, in.max_cg < one)) return fail(ctx, rank);
  if (br(ctx, S::st_cg_hi, in.max_cg > SymInt(500))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::st_npbp_neg, in.npbp < zero)) return fail(ctx, rank);
  if (br(ctx, S::st_ckpt_neg, in.ckpt_freq < zero)) return fail(ctx, rank);
  return true;
}

/// Parallel layout.  Carries the division-by-zero bug of paper §VI-A: with
/// 2 or 4 processes the "paired time-slice" path divides by (nt mod 2),
/// which is zero for even time extents; 1 or 3 processes never take the
/// paired path.  The fixed version guards the remainder.
LatticeGeom layout(rt::RuntimeContext& ctx, const Inputs& in,
                   const SymInt& rank, const SymInt& size, bool with_bugs) {
  using S = Site;
  const SymInt vol = in.nx * in.ny * in.nz * in.nt;

  LatticeGeom geom;
  geom.nx = std::max<int>(1, static_cast<int>(in.nx.value()));
  geom.ny = std::max<int>(1, static_cast<int>(in.ny.value()));
  geom.nz = std::max<int>(1, static_cast<int>(in.nz.value()));
  geom.nt = std::max<int>(1, static_cast<int>(in.nt.value()));
  const int np = std::max(1, static_cast<int>(size.value()));
  geom.nt_local = std::max(1, geom.nt / np);
  geom.t0 = static_cast<int>(rank.value()) * geom.nt_local;

  if (br(ctx, S::lay_serial, size == SymInt(1))) {
    geom.nt_local = geom.nt;
    geom.t0 = 0;
    return geom;
  }
  bool paired = false;
  if (br(ctx, S::lay_two_procs, size == SymInt(2))) {
    paired = true;
  } else if (br(ctx, S::lay_four_procs, size == SymInt(4))) {
    paired = true;
  }
  if (br(ctx, S::lay_paired_slices, SymInt(paired ? 1 : 0) == SymInt(1))) {
    // Pair up time slices: slices_per_pair = vol / (nt mod 2) — the bug.
    SymInt rem = in.nt - (in.nt / SymInt(2)) * SymInt(2);  // nt % 2
    if (!with_bugs && rem.value() == 0) {
      rem = SymInt(1);  // the developer's fix: guard the degenerate case
    }
    const SymInt slices = ctx.div(vol, rem);  // FPE when nt is even
    (void)slices;
  }

  (void)br(ctx, S::lay_rank_zero, rank == SymInt(0));
  (void)br(ctx, S::lay_low_half, rank * SymInt(2) < size);

  for (int s = 0;
       br(ctx, Site::lay_slice_loop, SymInt(s) * size < in.nt) &&
       s < geom.nt_local;
       ++s) {
    // assign time slice s to this rank's slab
  }
  (void)br(ctx, S::lay_remainder,
           in.nt != size * SymInt(geom.nt_local));
  (void)br(ctx, S::lay_slab_edge,
           SymInt(geom.t0 + geom.nt_local) == in.nt);
  return geom;
}

/// Bug #1 (setup_rhmc):  Twist_Fermion **src = malloc(Nroot*sizeof(**src));
/// — the allocation is sized for the wrong type, so walking the Nroot
/// entries runs off the end (SimulatedSegfault).  Gated on norder > 4, the
/// high-order rational approximation that needs the extra buffers.
void setup_rhmc(rt::RuntimeContext& ctx, const Inputs& in, bool with_bugs) {
  using S = Site;
  const int nroot = std::max<int>(1, static_cast<int>(in.nroot.value()));
  if (br(ctx, S::rh_high_order, in.norder > SymInt(4))) {
    const std::size_t elem = with_bugs ? kSizeofPointer : kSizeofTwistFermion;
    const auto src = ctx.arena().alloc(
        static_cast<std::size_t>(nroot) * elem, "src");
    for (int n = 0;
         br(ctx, S::rh_root_loop, SymInt(n) < in.nroot) && n < nroot; ++n) {
      ctx.arena().check_access(src, static_cast<std::size_t>(n),
                               kSizeofTwistFermion);
    }
    ctx.arena().free(src);
  }
  (void)br(ctx, S::rh_shift_small, in.nroot * SymInt(4) < in.norder);
}

/// One rational-approximation solve via multi-shift CG.  Bug #2
/// (congrad): the `psim` solution array suffers the wrong-sizeof malloc;
/// gated on the pbp measurement path (npbp >= 1).
int congrad(rt::RuntimeContext& ctx, const Inputs& in, const GaugeField& u,
            bool measure_pbp, bool with_bugs) {
  using S = Site;
  const int max_cg = std::max<int>(1, static_cast<int>(in.max_cg.value()));
  const int norder =
      std::clamp<int>(static_cast<int>(in.norder.value()), 1, 20);

  if (br(ctx, S::cg_measure_pbp, SymInt(measure_pbp ? 1 : 0) == SymInt(1))) {
    const int nroot = std::max<int>(1, static_cast<int>(in.nroot.value()));
    const std::size_t elem = with_bugs ? kSizeofPointer : kSizeofTwistFermion;
    const auto psim = ctx.arena().alloc(
        static_cast<std::size_t>(nroot) * elem, "psim");
    for (int n = 0; n < nroot; ++n) {
      ctx.arena().check_access(psim, static_cast<std::size_t>(n),
                               kSizeofTwistFermion);
    }
    ctx.arena().free(psim);
  }

  // Gaussian-ish deterministic source.
  std::vector<double> rhs(static_cast<std::size_t>(u.geom().local_volume()));
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    rhs[i] = ((i * 2654435761u) % 1000) / 1000.0 - 0.5;
  }
  const RationalApprox approx = make_rational_approx(norder);

  // The CG loop: instrument the iteration bound symbolically by running
  // the solver in bounded chunks.
  MultiShiftResult shifts;
  int iters_done = 0;
  constexpr int kChunk = 8;
  while (br(ctx, S::cg_iter_loop, SymInt(iters_done) < in.max_cg) &&
         iters_done < max_cg) {
    shifts = multishift_cg(u, /*mass=*/0.3, approx, rhs, /*tol=*/1e-8,
                           std::min(iters_done + kChunk, max_cg));
    ctx.ops(static_cast<std::int64_t>(rhs.size()) *
            (shifts.iterations - iters_done + 1) * 10);
    iters_done = std::max(shifts.iterations, iters_done + 1);
    if (br(ctx, S::cg_converged,
           SymInt(shifts.converged ? 1 : 0) == SymInt(1))) {
      break;
    }
    if (iters_done == max_cg / 2 &&
        br(ctx, S::cg_restart, in.max_cg > SymInt(100))) {
      // Long solves restart the Krylov space.
    }
  }
  int frozen = 0;
  for (int at : shifts.shift_frozen_at) frozen += at >= 0 ? 1 : 0;
  (void)br(ctx, S::cg_shift_frozen,
           SymInt(frozen) == SymInt(static_cast<int>(approx.poles.size())));
  (void)apply_rational(approx, shifts, rhs);
  return iters_done;
}

/// MD trajectories on the gauge field.  Bug #3 (update_gauge): the force
/// accumulation array `dest` has the wrong-sizeof malloc; gated on
/// nsteps >= 2 && trajecs >= 1 (multi-step trajectories).
void update_gauge(rt::RuntimeContext& ctx, const Inputs& in,
                  minimpi::Comm& world, GaugeField& u, bool with_bugs) {
  using S = Site;
  const int trajecs =
      std::clamp<int>(static_cast<int>(in.trajecs.value()), 0, 1000);
  const int nsteps =
      std::clamp<int>(static_cast<int>(in.nsteps.value()), 1, 100);
  const int warms =
      std::clamp<int>(static_cast<int>(in.warms.value()), 0, trajecs);
  const int size = world.raw_size();

  double prev_action = u.plaquette_action();
  for (int traj = 0;
       br(ctx, S::ug_traj_loop, SymInt(traj) < in.trajecs) && traj < trajecs;
       ++traj) {
    const bool warmup = br(ctx, S::ug_warmup, SymInt(traj) < in.warms);
    for (int step = 0;
         br(ctx, S::ug_step_loop, SymInt(step) < in.nsteps) && step < nsteps;
         ++step) {
      if (step == 1 && traj == 0 &&
          br(ctx, S::ug_multi_step, in.nsteps >= SymInt(2))) {
        // Bug #3: the force-accumulation array of multi-step trajectories —
        // Twist_Fermion **dest = malloc(Nroot * sizeof(**dest)); — has the
        // wrong element size, so walking the Nroot entries segfaults.
        const int nroot =
            std::max<int>(1, static_cast<int>(in.nroot.value()));
        const std::size_t elem =
            with_bugs ? kSizeofPointer : kSizeofTwistFermion;
        const auto dest = ctx.arena().alloc(
            static_cast<std::size_t>(nroot) * elem, "dest");
        for (int n = 0; n < nroot; ++n) {
          ctx.arena().check_access(dest, static_cast<std::size_t>(n),
                                   kSizeofTwistFermion);
        }
        ctx.arena().free(dest);
      }
      // Leapfrog drift, then refresh the time-boundary halos.
      u.md_drift(0.05);
      ctx.ops(static_cast<std::int64_t>(u.link_count()) * 2);
      if (br(ctx, S::ug_boundary_send, SymInt(size) > SymInt(1))) {
        u.exchange_halo(world);
      } else {
        u.exchange_halo(world);  // periodic wrap within the single rank
      }
    }
    // Metropolis accept/reject on the plaquette-action delta.
    const double action = u.plaquette_action();
    ctx.ops(static_cast<std::int64_t>(u.link_count()) * 6);
    const bool accept =
        warmup || action <= prev_action ||
        static_cast<std::int64_t>(action * 1e6) % 7 != 0;  // pseudo-random
    if (br(ctx, S::ug_accept, SymInt(accept ? 1 : 0) == SymInt(1))) {
      prev_action = action;
    }

    if (br(ctx, S::ug_ckpt_on, in.ckpt_freq > SymInt(0))) {
      const int freq =
          std::max<int>(1, static_cast<int>(in.ckpt_freq.value()));
      if (br(ctx, S::ug_ckpt_probe,
             SymInt(traj % freq) == SymInt(0))) {
        // Write a checkpoint (elided).
      }
    }
  }
}

void mini_susy_program(rt::RuntimeContext& ctx, minimpi::Comm& world,
                       int dim_cap, bool with_bugs) {
  using S = Site;
  Inputs in = read_inputs(ctx, dim_cap);
  const SymInt rank = world.comm_rank(ctx);
  const SymInt size = world.comm_size(ctx);

  if (br(ctx, S::st_rank0_banner, rank == SymInt(0))) {
    // rank 0 prints the run header
  }
  if (!sanity_check(ctx, in, rank, size)) {
    world.barrier();
    return;
  }

  const LatticeGeom geom = layout(ctx, in, rank, size, with_bugs);
  GaugeField u(geom, 0x5757ULL ^ static_cast<std::uint64_t>(
                                     in.seed.value()));
  u.exchange_halo(world);

  setup_rhmc(ctx, in, with_bugs);
  update_gauge(ctx, in, world, u, with_bugs);

  // Fermionic measurements: npbp stochastic estimates, each one
  // rational-approximation solve.
  const int npbp = std::clamp<int>(static_cast<int>(in.npbp.value()), 0, 50);
  for (int m = 0;
       br(ctx, S::ms_pbp_loop, SymInt(m) < in.npbp) && m < npbp; ++m) {
    (void)congrad(ctx, in, u, /*measure_pbp=*/m == 0, with_bugs);
  }

  // Wilson-loop measurement: confinement diagnostic (only meaningful on
  // lattices wide enough for a 2x2 loop).
  if (br(ctx, S::ms_wilson_small, in.nx >= SymInt(2))) {
    const double w11 = u.wilson_loop(1, 1);
    const double w22 = u.wilson_loop(
        std::min(2, static_cast<int>(in.nx.value())),
        std::min(2, static_cast<int>(in.ny.value())));
    ctx.ops(static_cast<std::int64_t>(u.geom().local_volume()) * 12);
    (void)w11;
    (void)w22;
  }

  // Global plaquette average closes the run.
  const double local_plaq = u.plaquette_action();
  (void)br(ctx, S::ms_plaq_positive,
           SymInt(local_plaq >= 0.0 ? 1 : 0) == SymInt(1));
  double global_plaq = 0.0;
  world.allreduce(std::span<const double>(&local_plaq, 1),
                  std::span<double>(&global_plaq, 1), minimpi::Op::kSum);
  if (br(ctx, S::ms_rank0_report, rank == SymInt(0))) {
    // rank 0 prints the summary line
  }
  world.barrier();
}

}  // namespace

std::map<std::string, std::int64_t> mini_susy_defaults(int nprocs, int dim) {
  return {
      {"nx", dim},   {"ny", dim},    {"nz", dim},   {"nt", nprocs},
      {"warms", 0},  {"trajecs", 1}, {"nsteps", 1}, {"nroot", 2},
      {"norder", 2}, {"seed", 7},    {"max_cg", 5}, {"npbp", 0},
      {"ckpt_freq", 0},
  };
}

TargetInfo make_mini_susy_target(int dim_cap, bool with_bugs) {
  TargetInfo info;
  info.name = "mini-SUSY-HMC";
  info.table = &susy::branch_table();
  info.program = [dim_cap, with_bugs](rt::RuntimeContext& ctx,
                                      minimpi::Comm& world) {
    mini_susy_program(ctx, world, dim_cap, with_bugs);
  };
  info.sloc = 441;          // measured non-blank lines of this module
  info.paper_sloc = 19201;  // SUSY-HMC per SLOCCount (paper Table III)
  info.default_cap = dim_cap;
  return info;
}

}  // namespace compi::targets
