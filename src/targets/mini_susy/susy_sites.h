// Static branch sites of mini-SUSY-HMC.
//
// Mirrors the phase structure of SUSY_LATTICE's susy_hmc (paper [39]):
// setup/sanity over the 4-D lattice inputs, the parallel layout, RHMC
// setup, and the trajectory/MD/CG loops.  The four seeded bugs of §VI-A
// live behind the marked branches of setup_rhmc / congrad / update_gauge /
// layout.
#pragma once

#include "targets/target_common.h"

namespace compi::targets::susy {

// clang-format off
#define MINI_SUSY_SITES(X) \
  /* ---- setup: read + sanity-check inputs ---- */ \
  X(st_rank0_banner,   "setup") \
  X(st_nx_lo,          "setup") \
  X(st_ny_lo,          "setup") \
  X(st_nz_lo,          "setup") \
  X(st_nt_lo,          "setup") \
  X(st_vol_hi,         "setup") \
  X(st_nt_even_dim,    "setup") \
  X(st_div_probe,      "setup") \
  X(st_div_fail,       "setup") \
  X(st_warms_neg,      "setup") \
  X(st_trajecs_neg,    "setup") \
  X(st_trajecs_hi,     "setup") \
  X(st_warms_gt_traj,  "setup") \
  X(st_nsteps_lo,      "setup") \
  X(st_nsteps_hi,      "setup") \
  X(st_nroot_lo,       "setup") \
  X(st_nroot_hi,       "setup") \
  X(st_norder_lo,      "setup") \
  X(st_norder_hi,      "setup") \
  X(st_seed_zero,      "setup") \
  X(st_cg_lo,          "setup") \
  X(st_cg_hi,          "setup") \
  X(st_npbp_neg,       "setup") \
  X(st_ckpt_neg,       "setup") \
  X(st_err_rank0,      "setup") \
  /* ---- layout: distribute the lattice across ranks ---- */ \
  X(lay_serial,        "layout") \
  X(lay_two_procs,     "layout") \
  X(lay_four_procs,    "layout") \
  X(lay_paired_slices, "layout") \
  X(lay_rank_zero,     "layout") \
  X(lay_low_half,      "layout") \
  X(lay_slice_loop,    "layout") \
  X(lay_remainder,     "layout") \
  X(lay_slab_edge,     "layout") \
  /* ---- setup_rhmc: rational approximation buffers (bug #1 here) ---- */ \
  X(rh_high_order,     "setup_rhmc") \
  X(rh_root_loop,      "setup_rhmc") \
  X(rh_shift_small,    "setup_rhmc") \
  /* ---- update_gauge: MD evolution (bug #3 here) ---- */ \
  X(ug_traj_loop,      "update_gauge") \
  X(ug_warmup,         "update_gauge") \
  X(ug_step_loop,      "update_gauge") \
  X(ug_multi_step,     "update_gauge") \
  X(ug_accept,         "update_gauge") \
  X(ug_boundary_send,  "update_gauge") \
  X(ug_ckpt_on,        "update_gauge") \
  X(ug_ckpt_probe,     "update_gauge") \
  /* ---- congrad: CG solver (bug #2 here) ---- */ \
  X(cg_iter_loop,      "congrad") \
  X(cg_converged,      "congrad") \
  X(cg_restart,        "congrad") \
  X(cg_measure_pbp,    "congrad") \
  X(cg_shift_frozen,   "congrad") \
  /* ---- measurements / output ---- */ \
  X(ms_pbp_loop,       "measure") \
  X(ms_plaq_positive,  "measure") \
  X(ms_wilson_small,   "measure") \
  X(ms_rank0_report,   "measure")
// clang-format on

COMPI_DEFINE_TARGET_SITES(Site, branch_table, MINI_SUSY_SITES)

}  // namespace compi::targets::susy
