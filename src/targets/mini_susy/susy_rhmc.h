// RHMC machinery for mini-SUSY-HMC: the rational approximation and the
// multi-shift conjugate-gradient solver.
//
// SUSY_LATTICE evaluates (D^dag D)^{-1/4} through a rational approximation
//   R(A) = a_0 + sum_i a_i / (A + b_i)
// whose partial fractions are solved simultaneously by a multi-shift CG.
// The stand-in operator here is a gauge-phase-weighted lattice Laplacian
// plus mass term — positive definite, so CG genuinely converges and the
// shift structure (larger shifts converge first) is exercised for real.
#pragma once

#include <cstdint>
#include <vector>

#include "targets/mini_susy/susy_lattice.h"

namespace compi::targets::susy {

/// Partial-fraction coefficients of the order-`norder` rational
/// approximation (a Zolotarev-flavoured synthetic table: alternating
/// residues over geometrically spaced poles).
struct RationalApprox {
  double a0 = 0.0;
  std::vector<double> residues;  // a_i
  std::vector<double> poles;     // b_i > 0
};

[[nodiscard]] RationalApprox make_rational_approx(int norder);

/// y = A x with A = (4 + m^2) I - hopping over the four directions,
/// phase-weighted by the gauge links (cos of the link angle).
void apply_operator(const GaugeField& u, double mass,
                    const std::vector<double>& x, std::vector<double>& y);

struct MultiShiftResult {
  /// One solution vector per shift (pole): x_i = (A + b_i)^-1 b.
  std::vector<std::vector<double>> solutions;
  int iterations = 0;
  bool converged = false;
  /// Per-shift iteration at which that shift froze (larger shifts first).
  std::vector<int> shift_frozen_at;
};

/// Multi-shift CG: solves (A + b_i) x_i = rhs for every pole of `approx`
/// in a single Krylov space.  `tol` is the residual-norm target; `max_it`
/// bounds the iteration count.
[[nodiscard]] MultiShiftResult multishift_cg(const GaugeField& u, double mass,
                                             const RationalApprox& approx,
                                             const std::vector<double>& rhs,
                                             double tol, int max_it);

/// R(A) applied to rhs via the multi-shift solutions.
[[nodiscard]] std::vector<double> apply_rational(
    const RationalApprox& approx, const MultiShiftResult& shifts,
    const std::vector<double>& rhs);

}  // namespace compi::targets::susy
