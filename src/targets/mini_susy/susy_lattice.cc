#include "targets/mini_susy/susy_lattice.h"

#include <cmath>

namespace compi::targets::susy {
namespace {

double hash_angle(std::uint64_t seed, int global_site, int mu) {
  std::uint64_t x = seed ^ (static_cast<std::uint64_t>(global_site) << 3) ^
                    static_cast<std::uint64_t>(mu);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return (static_cast<double>(x >> 11) / 9007199254740992.0 - 0.5) * 0.2;
}

}  // namespace

GaugeField::GaugeField(const LatticeGeom& geom, std::uint64_t seed)
    : geom_(geom),
      links_(static_cast<std::size_t>(geom.local_volume()) * 4),
      halo_up_(static_cast<std::size_t>(geom.nx * geom.ny * geom.nz) * 4),
      halo_down_(halo_up_.size()) {
  // Cold-ish start: small deterministic angles, identical across ranks for
  // the same global site (SPMD determinism).
  const int slice = geom.nx * geom.ny * geom.nz;
  for (int t = 0; t < geom.nt_local; ++t) {
    for (int s = 0; s < slice; ++s) {
      const int global_site = (geom.t0 + t) * slice + s;
      for (int mu = 0; mu < 4; ++mu) {
        link(t * slice + s, mu) = hash_angle(seed, global_site, mu);
      }
    }
  }
}

int GaugeField::neighbor(int s, int mu) const {
  const int nx = geom_.nx, ny = geom_.ny, nz = geom_.nz;
  int x = s % nx;
  int rest = s / nx;
  int y = rest % ny;
  rest /= ny;
  int z = rest % nz;
  int t = rest / nz;
  switch (mu) {
    case 0: x = (x + 1) % nx; break;
    case 1: y = (y + 1) % ny; break;
    case 2: z = (z + 1) % nz; break;
    default: ++t; break;  // may land on nt_local: the halo slice
  }
  return geom_.site(x, y, z, t);
}

void GaugeField::exchange_halo(minimpi::Comm& world) {
  const int np = world.raw_size();
  const int me = world.raw_rank();
  const std::size_t slice_links = halo_up_.size();
  if (np == 1) {
    // Periodic wrap within one rank: the halo is our own boundary.
    const std::size_t last =
        static_cast<std::size_t>(geom_.local_volume() - geom_.nx * geom_.ny *
                                 geom_.nz) * 4;
    std::copy_n(links_.begin(), slice_links, halo_up_.begin());
    std::copy_n(links_.begin() + static_cast<std::ptrdiff_t>(last),
                slice_links, halo_down_.begin());
    return;
  }
  const int up = (me + 1) % np;
  const int down = (me - 1 + np) % np;
  // Send the first slice down, receive the neighbour's first slice as our
  // up-halo; send the last slice up, receive the previous rank's last
  // slice as our down-halo.
  std::span<const double> first(links_.data(), slice_links);
  std::span<const double> last(
      links_.data() + links_.size() - slice_links, slice_links);
  world.sendrecv(first, down, 21, std::span<double>(halo_up_), up, 21);
  world.sendrecv(last, up, 22, std::span<double>(halo_down_), down, 22);
}

double GaugeField::plaquette_action() const {
  const int slice = geom_.nx * geom_.ny * geom_.nz;
  double action = 0.0;
  const auto link_or_halo = [&](int s, int mu) -> double {
    if (s < geom_.local_volume()) return link(s, mu);
    // Halo access: site in the up-halo slice.
    const int hs = s - geom_.local_volume();
    return halo_up_[static_cast<std::size_t>(hs) * 4 + mu];
  };
  for (int s = 0; s < geom_.local_volume(); ++s) {
    for (int mu = 0; mu < 4; ++mu) {
      for (int nu = mu + 1; nu < 4; ++nu) {
        const int smu = neighbor(s, mu);
        const int snu = neighbor(s, nu);
        const double theta = link(s, mu) + link_or_halo(smu, nu) -
                             link_or_halo(snu, mu) - link(s, nu);
        action += 1.0 - std::cos(theta);
      }
    }
  }
  return action / (6.0 * geom_.local_volume());
}

double GaugeField::wilson_loop(int r, int t) const {
  // Rectangle in the (x, y) plane: up r links in +x, t links in +y, then
  // back.  Spatial directions are fully local (periodic wrap), so no halo
  // is needed.
  const int nx = geom_.nx, ny = geom_.ny;
  double acc = 0.0;
  int count = 0;
  for (int s = 0; s < geom_.local_volume(); ++s) {
    int x = s % nx;
    int rest = s / nx;
    int y = rest % ny;
    rest /= ny;
    const int z = rest % geom_.nz;
    const int tt = rest / geom_.nz;

    double theta = 0.0;
    int cx = x, cy = y;
    for (int i = 0; i < r; ++i) {
      theta += link(geom_.site(cx, cy, z, tt), 0);
      cx = (cx + 1) % nx;
    }
    for (int i = 0; i < t; ++i) {
      theta += link(geom_.site(cx, cy, z, tt), 1);
      cy = (cy + 1) % ny;
    }
    for (int i = 0; i < r; ++i) {
      cx = (cx - 1 + nx) % nx;
      theta -= link(geom_.site(cx, cy, z, tt), 0);
    }
    for (int i = 0; i < t; ++i) {
      cy = (cy - 1 + ny) % ny;
      theta -= link(geom_.site(cx, cy, z, tt), 1);
    }
    acc += std::cos(theta);
    ++count;
  }
  return count > 0 ? acc / count : 1.0;
}

void GaugeField::md_drift(double eps) {
  // Deterministic pseudo-force: the drift nudges every link towards zero
  // (the action minimum) plus a small per-link dither.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    links_[i] += eps * (-0.5 * links_[i] + 1e-4);
  }
}

}  // namespace compi::targets::susy
