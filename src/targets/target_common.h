// Shared helpers for defining instrumented target programs.
//
// Each target declares its conditional sites in a single X-macro list —
// the single source of truth from which both the site enum and the static
// BranchTable (the "instrumenter output") are generated:
//
//   #define MY_SITES(X)            \
//     X(rp_n_range,   "read_params") \
//     X(san_p_pos,    "sanity")
//
//   COMPI_DEFINE_TARGET_SITES(MySite, my_branch_table, MY_SITES)
//
// Target code then writes branches as
//   if (br(ctx, MySite::san_p_pos, p > 0)) { ... }
#pragma once

#include "runtime/branch_table.h"
#include "runtime/context.h"
#include "symbolic/sym_value.h"

namespace compi::targets {

/// Typed wrapper over RuntimeContext::branch for a target's site enum.
template <typename SiteEnum>
inline bool br(rt::RuntimeContext& ctx, SiteEnum site,
               const sym::SymBool& cond) {
  return ctx.branch(static_cast<sym::SiteId>(site), cond);
}

}  // namespace compi::targets

#define COMPI_SITE_ENUM_ENTRY(name, fn) name,
#define COMPI_SITE_TABLE_ENTRY(name, fn) t.add_site(fn, #name);

/// Generates `enum class EnumName` and `const rt::BranchTable& fn_name()`
/// from an X-macro SITES list.
#define COMPI_DEFINE_TARGET_SITES(EnumName, fn_name, SITES)            \
  enum class EnumName : ::compi::sym::SiteId {                         \
    SITES(COMPI_SITE_ENUM_ENTRY) kCount                                \
  };                                                                   \
  inline const ::compi::rt::BranchTable& fn_name() {                   \
    static const ::compi::rt::BranchTable table = [] {                 \
      ::compi::rt::BranchTable t;                                      \
      SITES(COMPI_SITE_TABLE_ENTRY)                                    \
      t.finalize();                                                    \
      return t;                                                        \
    }();                                                               \
    return table;                                                      \
  }
