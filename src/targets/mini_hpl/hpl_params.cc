#include "targets/mini_hpl/hpl_params.h"

namespace compi::targets::hpl {

Params read_params(rt::RuntimeContext& ctx, int n_cap) {
  Params prm;
  prm.ns_count = ctx.input_int("ns_count");
  prm.n = ctx.input_int_capped("n", n_cap);
  prm.nb_count = ctx.input_int("nb_count");
  prm.nb = ctx.input_int_capped("nb", 128);
  prm.pmap = ctx.input_int("pmap");
  prm.grid_count = ctx.input_int("grid_count");
  prm.p = ctx.input_int_capped("p", 64);
  prm.q = ctx.input_int_capped("q", 64);
  prm.pfact_count = ctx.input_int("pfact_count");
  prm.pfact = ctx.input_int("pfact");
  prm.nbmin = ctx.input_int_capped("nbmin", 64);
  prm.ndiv = ctx.input_int("ndiv");
  prm.rfact = ctx.input_int("rfact");
  prm.bcast = ctx.input_int("bcast");
  prm.depth = ctx.input_int("depth");
  prm.swap_alg = ctx.input_int("swap_alg");
  prm.swap_threshold = ctx.input_int_capped("swap_threshold", 512);
  prm.l1_form = ctx.input_int("l1_form");
  prm.u_form = ctx.input_int("u_form");
  prm.equil = ctx.input_int("equil");
  prm.align = ctx.input_int("align");
  prm.threshold_scale = ctx.input_int("threshold_scale");
  prm.pfact_list_len = ctx.input_int("pfact_list_len");
  prm.nbmin_list_len = ctx.input_int("nbmin_list_len");
  return prm;
}

namespace {

/// One failed check: rank 0 would print the HPL_pdinfo error line.  The
/// rank guard is itself a conditional on a marked MPI variable — the same
/// shape as branch 2T/2F in the paper's Fig. 2 skeleton.
bool fail(rt::RuntimeContext& ctx, const sym::SymInt& rank) {
  if (br(ctx, Site::san_err_rank0, rank == sym::SymInt(0))) {
    // rank 0: "HPL ERROR in HPL_pdinfo" (output elided)
  }
  return false;
}

}  // namespace

bool sanity_check(rt::RuntimeContext& ctx, const Params& prm,
                  const sym::SymInt& rank, const sym::SymInt& size) {
  using S = Site;
  const sym::SymInt zero(0);

  // --- problem sizes ---
  if (br(ctx, S::san_ns_count_lo, prm.ns_count < sym::SymInt(1))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_ns_count_hi, prm.ns_count > sym::SymInt(20))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_n_neg, prm.n < zero)) return fail(ctx, rank);
  if (br(ctx, S::san_n_zero, prm.n == zero)) {
    // Valid but trivial: HPL treats N=0 as "nothing to do".
  }

  // --- block sizes ---
  if (br(ctx, S::san_nb_count_lo, prm.nb_count < sym::SymInt(1))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_nb_count_hi, prm.nb_count > sym::SymInt(16))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_nb_lo, prm.nb < sym::SymInt(1))) return fail(ctx, rank);
  if (br(ctx, S::san_nb_hi, prm.nb > sym::SymInt(128))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_nb_gt_n, prm.nb > prm.n + sym::SymInt(1))) {
    // NB far beyond N wastes the panel logic; HPL warns but continues.
  }

  // --- process map & grids ---
  if (br(ctx, S::san_pmap_lo, prm.pmap < zero)) return fail(ctx, rank);
  if (br(ctx, S::san_pmap_hi, prm.pmap > sym::SymInt(1))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_grid_count_lo, prm.grid_count < sym::SymInt(1))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_grid_count_hi, prm.grid_count > sym::SymInt(20))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_p_lo, prm.p < sym::SymInt(1))) return fail(ctx, rank);
  if (br(ctx, S::san_q_lo, prm.q < sym::SymInt(1))) return fail(ctx, rank);
  // Grid must fit in MPI_COMM_WORLD: ties marked inputs to sw (§III-B).
  if (br(ctx, S::san_grid_fit, prm.p * prm.q > size)) {
    return fail(ctx, rank);
  }

  // --- panel factorization ---
  if (br(ctx, S::san_pfact_count_lo, prm.pfact_count < sym::SymInt(1))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_pfact_count_hi, prm.pfact_count > sym::SymInt(3))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_pfact_lo, prm.pfact < zero)) return fail(ctx, rank);
  if (br(ctx, S::san_pfact_hi, prm.pfact > sym::SymInt(2))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_nbmin_lo, prm.nbmin < sym::SymInt(1))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_nbmin_hi, prm.nbmin > sym::SymInt(64))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_ndiv_lo, prm.ndiv < sym::SymInt(2))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_ndiv_hi, prm.ndiv > sym::SymInt(8))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_rfact_lo, prm.rfact < zero)) return fail(ctx, rank);
  if (br(ctx, S::san_rfact_hi, prm.rfact > sym::SymInt(2))) {
    return fail(ctx, rank);
  }

  // --- broadcast & lookahead ---
  if (br(ctx, S::san_bcast_lo, prm.bcast < zero)) return fail(ctx, rank);
  if (br(ctx, S::san_bcast_hi, prm.bcast > sym::SymInt(5))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_depth_lo, prm.depth < zero)) return fail(ctx, rank);
  if (br(ctx, S::san_depth_hi, prm.depth > sym::SymInt(1))) {
    return fail(ctx, rank);
  }

  // --- row swapping ---
  if (br(ctx, S::san_swap_lo, prm.swap_alg < zero)) return fail(ctx, rank);
  if (br(ctx, S::san_swap_hi, prm.swap_alg > sym::SymInt(2))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_swap_thr_neg, prm.swap_threshold < zero)) {
    return fail(ctx, rank);
  }

  // --- storage forms ---
  if (br(ctx, S::san_l1_form, prm.l1_form * (prm.l1_form - sym::SymInt(1)) !=
                                  zero)) {
    return fail(ctx, rank);  // must be 0 or 1
  }
  if (br(ctx, S::san_u_form,
         prm.u_form * (prm.u_form - sym::SymInt(1)) != zero)) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_equil,
         prm.equil * (prm.equil - sym::SymInt(1)) != zero)) {
    return fail(ctx, rank);
  }

  // --- alignment: must be a power of two in [4, 64] ---
  if (br(ctx, S::san_align_lo, prm.align < sym::SymInt(4))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_align_hi, prm.align > sym::SymInt(64))) {
    return fail(ctx, rank);
  }
  bool pow2 = false;
  for (int a = 4; a <= 64; a *= 2) {
    if (br(ctx, S::san_align_pow2, prm.align == sym::SymInt(a))) {
      pow2 = true;
      break;
    }
  }
  if (!pow2) return fail(ctx, rank);

  // --- residual threshold scale ---
  if (br(ctx, S::san_thr_scale_lo, prm.threshold_scale < sym::SymInt(1))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_thr_scale_hi,
         prm.threshold_scale > sym::SymInt(1000))) {
    return fail(ctx, rank);
  }
  // --- list lengths of the pfact / nbmin sweeps ---
  if (br(ctx, S::san_pfl_len, prm.pfact_list_len < sym::SymInt(1))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::san_nbl_len, prm.nbmin_list_len < sym::SymInt(1))) {
    return fail(ctx, rank);
  }
  return true;
}

}  // namespace compi::targets::hpl
