// Static branch sites of mini-HPL (the instrumenter's `branches` output).
//
// Grouped by function, in program order; this ordering drives both the
// fallthrough CFG edges and the depth structure DFS traverses: the deep
// HPL_pdinfo sanity cascade comes first, exactly the property (paper §II-B)
// that makes BoundedDFS the only strategy that reaches the solve phase.
#pragma once

#include "targets/target_common.h"

namespace compi::targets::hpl {

// clang-format off
#define MINI_HPL_SITES(X) \
  /* ---- HPL_pdinfo: the 28-parameter sanity cascade ---- */ \
  X(san_err_rank0,      "HPL_pdinfo") \
  X(san_ns_count_lo,    "HPL_pdinfo") \
  X(san_ns_count_hi,    "HPL_pdinfo") \
  X(san_n_neg,          "HPL_pdinfo") \
  X(san_n_zero,         "HPL_pdinfo") \
  X(san_nb_count_lo,    "HPL_pdinfo") \
  X(san_nb_count_hi,    "HPL_pdinfo") \
  X(san_nb_lo,          "HPL_pdinfo") \
  X(san_nb_hi,          "HPL_pdinfo") \
  X(san_nb_gt_n,        "HPL_pdinfo") \
  X(san_pmap_lo,        "HPL_pdinfo") \
  X(san_pmap_hi,        "HPL_pdinfo") \
  X(san_grid_count_lo,  "HPL_pdinfo") \
  X(san_grid_count_hi,  "HPL_pdinfo") \
  X(san_p_lo,           "HPL_pdinfo") \
  X(san_q_lo,           "HPL_pdinfo") \
  X(san_grid_fit,       "HPL_pdinfo") \
  X(san_pfact_count_lo, "HPL_pdinfo") \
  X(san_pfact_count_hi, "HPL_pdinfo") \
  X(san_pfact_lo,       "HPL_pdinfo") \
  X(san_pfact_hi,       "HPL_pdinfo") \
  X(san_nbmin_lo,       "HPL_pdinfo") \
  X(san_nbmin_hi,       "HPL_pdinfo") \
  X(san_ndiv_lo,        "HPL_pdinfo") \
  X(san_ndiv_hi,        "HPL_pdinfo") \
  X(san_rfact_lo,       "HPL_pdinfo") \
  X(san_rfact_hi,       "HPL_pdinfo") \
  X(san_bcast_lo,       "HPL_pdinfo") \
  X(san_bcast_hi,       "HPL_pdinfo") \
  X(san_depth_lo,       "HPL_pdinfo") \
  X(san_depth_hi,       "HPL_pdinfo") \
  X(san_swap_lo,        "HPL_pdinfo") \
  X(san_swap_hi,        "HPL_pdinfo") \
  X(san_swap_thr_neg,   "HPL_pdinfo") \
  X(san_l1_form,        "HPL_pdinfo") \
  X(san_u_form,         "HPL_pdinfo") \
  X(san_equil,          "HPL_pdinfo") \
  X(san_align_lo,       "HPL_pdinfo") \
  X(san_align_hi,       "HPL_pdinfo") \
  X(san_align_pow2,     "HPL_pdinfo") \
  X(san_thr_scale_lo,   "HPL_pdinfo") \
  X(san_thr_scale_hi,   "HPL_pdinfo") \
  X(san_pfl_len,        "HPL_pdinfo") \
  X(san_nbl_len,        "HPL_pdinfo") \
  /* ---- HPL_grid_init: P x Q process grid over the world ---- */ \
  X(grd_active,         "HPL_grid_init") \
  X(grd_rowmajor,       "HPL_grid_init") \
  X(grd_row_zero,       "HPL_grid_init") \
  X(grd_col_zero,       "HPL_grid_init") \
  X(grd_single_col,     "HPL_grid_init") \
  /* ---- HPL_pdmatgen: matrix generation ---- */ \
  X(gen_col_loop,       "HPL_pdmatgen") \
  X(gen_diag_boost,     "HPL_pdmatgen") \
  /* ---- HPL_pdpanel_fact: panel factorization variants ---- */ \
  X(pf_width_min,       "HPL_pdpanel_fact") \
  X(pf_left,            "HPL_pdpanel_fact") \
  X(pf_crout,           "HPL_pdpanel_fact") \
  X(pf_right,           "HPL_pdpanel_fact") \
  X(pf_ndiv_two,        "HPL_pdpanel_fact") \
  X(pf_pivot_zero,      "HPL_pdpanel_fact") \
  X(pf_pivot_move,      "HPL_pdpanel_fact") \
  /* ---- HPL_bcast: the six panel-broadcast algorithms ---- */ \
  X(bc_1ring,           "HPL_bcast") \
  X(bc_1ring_m,         "HPL_bcast") \
  X(bc_2ring,           "HPL_bcast") \
  X(bc_2ring_m,         "HPL_bcast") \
  X(bc_blong,           "HPL_bcast") \
  X(bc_blong_m,         "HPL_bcast") \
  X(bc_ring_root,       "HPL_bcast") \
  X(bc_ring_last,       "HPL_bcast") \
  X(bc_modified_leaf,   "HPL_bcast") \
  /* ---- HPL_pdlaswp: row-swap variants ---- */ \
  X(sw_bin_exch,        "HPL_pdlaswp") \
  X(sw_long,            "HPL_pdlaswp") \
  X(sw_mix_thr,         "HPL_pdlaswp") \
  X(sw_row_loop,        "HPL_pdlaswp") \
  X(sw_noop,            "HPL_pdlaswp") \
  /* ---- HPL_pdupdate: trailing-submatrix update ---- */ \
  X(up_lookahead,       "HPL_pdupdate") \
  X(up_l1_transpose,    "HPL_pdupdate") \
  X(up_u_transpose,     "HPL_pdupdate") \
  X(up_equilibrate,     "HPL_pdupdate") \
  X(up_col_loop,        "HPL_pdupdate") \
  /* ---- HPL_pdgesv: the outer solve ---- */ \
  X(sv_panel_loop,      "HPL_pdgesv") \
  X(sv_own_panel,       "HPL_pdgesv") \
  X(sv_tail_panel,      "HPL_pdgesv") \
  X(sv_lookahead_hit,   "HPL_pdgesv") \
  X(sv_backsub_loop,    "HPL_pdgesv") \
  X(sv_backsub_own,     "HPL_pdgesv") \
  /* ---- HPL_pdverify: residual check ---- */ \
  X(vr_resid_ok,        "HPL_pdverify") \
  X(vr_resid_print,     "HPL_pdverify") \
  X(vr_trivial_n,       "HPL_pdverify") \
  /* ---- main driver ---- */ \
  X(dr_rank0_banner,    "main") \
  X(dr_ns_loop,         "main") \
  X(dr_nb_loop,         "main") \
  X(dr_grid_loop,       "main") \
  X(dr_combo_shrink,    "main") \
  X(dr_gflops_report,   "main") \
  X(dr_inactive_wait,   "main")
// clang-format on

COMPI_DEFINE_TARGET_SITES(Site, branch_table, MINI_HPL_SITES)

}  // namespace compi::targets::hpl
