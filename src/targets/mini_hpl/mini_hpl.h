// mini-HPL: the High-Performance Linpack evaluation subject (paper §VI).
//
// A faithful small-scale analog of HPL 2.x: 24 marked input parameters, the
// deep HPL_pdinfo sanity cascade, a P x Q process grid with row/column/grid
// communicators, a real distributed block-LU factorization with partial
// pivoting and six panel-broadcast variants, and the scaled residual check.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "compi/target.h"

namespace compi::targets {

/// Builds the mini-HPL target.  `n_cap` is the input cap N_C on the matrix
/// size (paper default 300; Fig. 8 sweeps 300/600/1200).
[[nodiscard]] TargetInfo make_mini_hpl_target(int n_cap = 300);

/// HPL.dat-style default inputs that pass HPL_pdinfo: one (n, nb) problem
/// on a p x q grid, right-looking panels, 1-ring broadcast.
[[nodiscard]] std::map<std::string, std::int64_t> mini_hpl_defaults(
    int n = 300, int nb = 32, int p = 2, int q = 4);

}  // namespace compi::targets
