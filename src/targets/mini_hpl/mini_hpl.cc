#include "targets/mini_hpl/mini_hpl.h"

#include <algorithm>

#include "targets/mini_hpl/hpl_compute.h"
#include "targets/mini_hpl/hpl_params.h"
#include "targets/mini_hpl/hpl_sites.h"

namespace compi::targets {
namespace {

using hpl::Site;
using sym::SymInt;

/// HPL runs every (N, NB, grid) combination from HPL.dat; mini-HPL bounds
/// the number of actually-executed solves per test to keep a single test
/// execution affordable (the loop branches are still exercised for every
/// combination).
constexpr int kMaxSolvesPerRun = 4;

void mini_hpl_program(rt::RuntimeContext& ctx, minimpi::Comm& world,
                      int n_cap) {
  hpl::Params prm = hpl::read_params(ctx, n_cap);
  const SymInt rank = world.comm_rank(ctx);
  const SymInt size = world.comm_size(ctx);

  if (br(ctx, Site::dr_rank0_banner, rank == SymInt(0))) {
    // rank 0 prints the HPL banner
  }
  if (!hpl::sanity_check(ctx, prm, rank, size)) {
    world.barrier();
    return;
  }

  hpl::Grid grid = hpl::grid_init(ctx, world, prm);
  if (!grid.active) {
    (void)br(ctx, Site::dr_inactive_wait, rank >= prm.p * prm.q);
    world.barrier();
    return;
  }

  const int n = std::clamp<int>(static_cast<int>(prm.n.value()), 0, n_cap);
  const int nb = std::clamp<int>(static_cast<int>(prm.nb.value()), 1, 128);
  const int ns_count = std::clamp<int>(
      static_cast<int>(prm.ns_count.value()), 1, 20);
  const int nb_count = std::clamp<int>(
      static_cast<int>(prm.nb_count.value()), 1, 16);
  const int grid_count = std::clamp<int>(
      static_cast<int>(prm.grid_count.value()), 1, 20);

  int solves = 0;
  double best_gflops = 0.0;
  for (int i = 0;
       br(ctx, Site::dr_ns_loop, SymInt(i) < prm.ns_count) && i < ns_count;
       ++i) {
    // HPL runs each listed problem size; the list entries here shrink from
    // the marked N (arrays are treated as one marked variable, §VI).
    const int n_i = std::max(0, n - i * nb);
    if (br(ctx, Site::dr_combo_shrink, SymInt(n_i) < prm.n)) {
      // A later, smaller entry of the Ns list.
    }
    for (int j = 0;
         br(ctx, Site::dr_nb_loop, SymInt(j) < prm.nb_count) && j < nb_count;
         ++j) {
      for (int k = 0; br(ctx, Site::dr_grid_loop,
                         SymInt(k) < prm.grid_count) &&
                      k < grid_count;
           ++k) {
        if (solves < kMaxSolvesPerRun) {
          ++solves;
          const hpl::SolveResult sr = hpl::pdgesv(ctx, grid, prm, n_i, nb);
          best_gflops = std::max(best_gflops, sr.gflops(n_i));
        }
      }
    }
  }
  if (br(ctx, Site::dr_gflops_report, rank == SymInt(0))) {
    // rank 0 prints the WR00... summary line with the best Gflop/s.
  }
  world.barrier();
}

}  // namespace

std::map<std::string, std::int64_t> mini_hpl_defaults(int n, int nb, int p,
                                                      int q) {
  return {
      {"ns_count", 1},    {"n", n},
      {"nb_count", 1},    {"nb", nb},
      {"pmap", 0},        {"grid_count", 1},
      {"p", p},           {"q", q},
      {"pfact_count", 1}, {"pfact", 2},
      {"nbmin", 4},       {"ndiv", 2},
      {"rfact", 1},       {"bcast", 0},
      {"depth", 0},       {"swap_alg", 2},
      {"swap_threshold", 64},
      {"l1_form", 0},     {"u_form", 0},
      {"equil", 1},       {"align", 8},
      {"threshold_scale", 16},
      {"pfact_list_len", 1},
      {"nbmin_list_len", 1},
  };
}

TargetInfo make_mini_hpl_target(int n_cap) {
  TargetInfo info;
  info.name = "mini-HPL";
  info.table = &hpl::branch_table();
  info.program = [n_cap](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    mini_hpl_program(ctx, world, n_cap);
  };
  info.sloc = 883;         // measured non-blank lines of this module
  info.paper_sloc = 15699; // HPL 2.x per SLOCCount (paper Table III)
  info.default_cap = n_cap;
  return info;
}

}  // namespace compi::targets
