#include "targets/mini_hpl/hpl_compute.h"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

namespace compi::targets::hpl {
namespace {

using S = Site;
using sym::SymInt;

/// Deterministic matrix entries (same on every rank), diagonally boosted so
/// the system is well-conditioned and pivoting stays non-degenerate.
double gen_entry(int i, int j, int n) {
  std::uint64_t x = (static_cast<std::uint64_t>(i) << 32) ^
                    static_cast<std::uint64_t>(j) ^ 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  const double r =
      static_cast<double>(x >> 11) / 9007199254740992.0 - 0.5;  // [-0.5, 0.5)
  return i == j ? r + static_cast<double>(n) : r;
}

/// Column-major n x w block of global columns [j0, j0+w).
struct Panel {
  int j0 = 0, w = 0, n = 0;
  std::vector<double> a;  // n * w
  double& at(int i, int jj) { return a[static_cast<std::size_t>(jj) * n + i]; }
  double at(int i, int jj) const {
    return a[static_cast<std::size_t>(jj) * n + i];
  }
};

/// One rank's share: the panels it owns (block-cyclic by panel index).
struct LocalMatrix {
  int n = 0, nb = 0, npanels = 0;
  std::vector<Panel> panels;   // local panels, in global panel order
  std::vector<int> panel_idx;  // global panel index of each local panel
};

LocalMatrix distribute(rt::RuntimeContext& ctx, const Grid& g,
                       const SymInt& n_sym, int n, int nb) {
  LocalMatrix m;
  m.n = n;
  m.nb = nb;
  m.npanels = (n + nb - 1) / nb;
  for (int k = 0; k < m.npanels; ++k) {
    if (k % g.ngrid != g.grid_id) continue;
    Panel p;
    p.j0 = k * nb;
    p.w = std::min(nb, n - p.j0);
    p.n = n;
    p.a.resize(static_cast<std::size_t>(p.n) * p.w);
    // Symbolic loop condition: the column sweep is bounded by the marked
    // matrix size, a classic reducible-constraint source (§IV-C).
    for (int jj = 0;
         br(ctx, S::gen_col_loop, SymInt(p.j0 + jj) < n_sym) && jj < p.w;
         ++jj) {
      for (int i = 0; i < n; ++i) p.at(i, jj) = gen_entry(i, p.j0 + jj, n);
      ctx.ops(n);  // per-element instrumentation stubs (heavy binary)
    }
    m.panels.push_back(std::move(p));
    m.panel_idx.push_back(k);
  }
  if (br(ctx, S::gen_diag_boost, n_sym > SymInt(0))) {
    // Diagonal dominance already baked into gen_entry; branch records the
    // non-empty-matrix case.
  }
  return m;
}

/// Unblocked panel factorization over global columns [j, j+w) of `p`,
/// eagerly updating the rest of the panel (columns up to p.j0+p.w).
/// Records pivots in ipiv (global row indices).
void fact_base(rt::RuntimeContext& ctx, Panel& p, int j, int w,
               std::vector<int>& ipiv) {
  for (int jj = j; jj < j + w; ++jj) {
    const int c = jj - p.j0;
    // Partial pivoting: find the largest magnitude at/below the diagonal.
    int piv = jj;
    double best = std::fabs(p.at(jj, c));
    for (int r = jj + 1; r < p.n; ++r) {
      if (std::fabs(p.at(r, c)) > best) {
        best = std::fabs(p.at(r, c));
        piv = r;
      }
    }
    if (br(ctx, S::pf_pivot_zero, SymInt(best > 0.0 ? 1 : 0) == SymInt(0))) {
      // Exactly singular: HPL reports failure; diagonal boost avoids it.
      ipiv[jj] = jj;
      continue;
    }
    if (br(ctx, S::pf_pivot_move, SymInt(piv) != SymInt(jj))) {
      for (int cc = 0; cc < p.w; ++cc) std::swap(p.at(jj, cc), p.at(piv, cc));
    }
    ipiv[jj] = piv;
    const double d = p.at(jj, c);
    for (int r = jj + 1; r < p.n; ++r) p.at(r, c) /= d;
    // Eager update of the remaining panel columns.
    for (int cc = c + 1; cc < p.w; ++cc) {
      const double u = p.at(jj, cc);
      for (int r = jj + 1; r < p.n; ++r) p.at(r, cc) -= p.at(r, c) * u;
    }
    ctx.ops(static_cast<std::int64_t>(p.n - jj) * (p.w - c + 1) * 2);
  }
}

/// Recursive panel factorization: splits the width into `ndiv` chunks until
/// at most `nbmin` columns remain (HPL's PFACTs/RFACTs recursion).  The
/// left/Crout/right variants share the eager base kernel; their sites keep
/// the algorithm-selection branches of HPL observable.
void fact_recursive(rt::RuntimeContext& ctx, const Params& prm, Panel& p,
                    int j, int w, std::vector<int>& ipiv) {
  const int nbmin = std::max<int>(1, static_cast<int>(prm.nbmin.value()));
  const int ndiv = std::max<int>(2, static_cast<int>(prm.ndiv.value()));
  if (br(ctx, S::pf_width_min, SymInt(w) <= prm.nbmin)) {
    if (br(ctx, S::pf_left, prm.pfact == SymInt(0))) {
      fact_base(ctx, p, j, w, ipiv);
    } else if (br(ctx, S::pf_crout, prm.pfact == SymInt(1))) {
      fact_base(ctx, p, j, w, ipiv);
    } else {
      (void)br(ctx, S::pf_right, prm.pfact == SymInt(2));
      fact_base(ctx, p, j, w, ipiv);
    }
    return;
  }
  if (w <= nbmin) {  // concrete guard in case the symbolic branch mispaired
    fact_base(ctx, p, j, w, ipiv);
    return;
  }
  (void)br(ctx, S::pf_ndiv_two, prm.ndiv == SymInt(2));
  const int w1 = std::max(1, w / ndiv);
  fact_recursive(ctx, prm, p, j, w1, ipiv);
  fact_recursive(ctx, prm, p, j + w1, w - w1, ipiv);
}

// Broadcast payload: the factored panel columns followed by the pivot rows
// (as doubles, one buffer so a single ring pass moves everything).
std::vector<double> pack(const Panel& p, const std::vector<int>& ipiv) {
  std::vector<double> buf;
  buf.reserve(p.a.size() + p.w);
  buf.insert(buf.end(), p.a.begin(), p.a.end());
  for (int jj = 0; jj < p.w; ++jj) {
    buf.push_back(static_cast<double>(ipiv[p.j0 + jj]));
  }
  return buf;
}

void unpack(const std::vector<double>& buf, Panel& p, std::vector<int>& ipiv) {
  p.a.assign(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(p.n) * p.w);
  for (int jj = 0; jj < p.w; ++jj) {
    ipiv[p.j0 + jj] =
        static_cast<int>(buf[static_cast<std::size_t>(p.n) * p.w + jj]);
  }
}

/// HPL_bcast: six panel-broadcast variants over the grid communicator.
/// 1ring/2ring/etc. run over explicit send/recv rings; the *_m variants
/// hand the leaf role to the last rank first (the "modified" topologies).
void bcast_panel(rt::RuntimeContext& ctx, const Grid& g, const Params& prm,
                 std::vector<double>& buf, int root) {
  const int me = g.grid_comm.raw_rank();
  const int np = g.grid_comm.raw_size();
  if (np == 1) return;
  std::span<double> data(buf);
  std::span<const double> cdata(buf);

  auto ring_forward = [&] {
    // Relative ring position; the root is position 0, the last position
    // does not forward.
    const int pos = (me - root + np) % np;
    if (br(ctx, S::bc_ring_root, SymInt(pos) == SymInt(0))) {
      g.grid_comm.send(cdata, (me + 1) % np, 7);
    } else {
      g.grid_comm.recv(data, minimpi::kAnySource, 7);
      if (!br(ctx, S::bc_ring_last, SymInt(pos) == SymInt(np - 1))) {
        g.grid_comm.send(cdata, (me + 1) % np, 7);
      }
    }
  };

  // Two half-rings: the root feeds position 1 clockwise and position
  // np-1 counter-clockwise; each half forwards towards the middle.
  auto two_ring = [&] {
    const int pos = (me - root + np) % np;
    const int half = np / 2;
    if (pos == 0) {
      g.grid_comm.send(cdata, (root + 1) % np, 8);
      if (np > 2) g.grid_comm.send(cdata, (root + np - 1) % np, 8);
    } else if (pos <= half) {
      g.grid_comm.recv(data, minimpi::kAnySource, 8);
      if (pos < half) g.grid_comm.send(cdata, (me + 1) % np, 8);
    } else {
      g.grid_comm.recv(data, minimpi::kAnySource, 8);
      if (pos > half + 1) {
        g.grid_comm.send(cdata, (me - 1 + np) % np, 8);
      }
    }
  };

  // Long-message algorithm: scatter the panel into np chunks from the
  // root, then allgather the chunks back (bandwidth-optimal for large
  // panels — HPL's BLONG topology).
  auto blong = [&] {
    const std::size_t chunk = (buf.size() + np - 1) / np;
    std::vector<double> padded(chunk * np, 0.0);
    if (me == root) std::copy(buf.begin(), buf.end(), padded.begin());
    std::vector<double> mine(chunk);
    g.grid_comm.scatter(std::span<const double>(padded),
                        std::span<double>(mine), root);
    std::vector<double> gathered(chunk * np);
    g.grid_comm.allgather(std::span<const double>(mine),
                          std::span<double>(gathered));
    std::copy_n(gathered.begin(), buf.size(), buf.begin());
  };

  if (br(ctx, S::bc_1ring, prm.bcast == SymInt(0))) {
    ring_forward();
  } else if (br(ctx, S::bc_1ring_m, prm.bcast == SymInt(1))) {
    if (br(ctx, S::bc_modified_leaf,
           SymInt(me) == SymInt((root + np - 1) % np))) {
      // Modified ring: the leaf receives straight from the root.
    }
    ring_forward();
  } else if (br(ctx, S::bc_2ring, prm.bcast == SymInt(2))) {
    two_ring();
  } else if (br(ctx, S::bc_2ring_m, prm.bcast == SymInt(3))) {
    // Modified two-ring: same half-ring pattern, leaf-first wiring.
    two_ring();
  } else if (br(ctx, S::bc_blong, prm.bcast == SymInt(4))) {
    blong();
  } else {
    (void)br(ctx, S::bc_blong_m, prm.bcast == SymInt(5));
    blong();
  }
  (void)data;
}

/// HPL_pdlaswp: apply this panel's row swaps to one local panel.
void apply_swaps(rt::RuntimeContext& ctx, const Params& prm, Panel& p, int j0,
                 int w, const std::vector<int>& ipiv, int n_sym_hint) {
  if (br(ctx, S::sw_bin_exch, prm.swap_alg == SymInt(0))) {
    // binary-exchange
  } else if (br(ctx, S::sw_long, prm.swap_alg == SymInt(1))) {
    // long (spread-roll)
  } else {
    // mix: long above the threshold, binary-exchange below (symbolic!).
    (void)br(ctx, S::sw_mix_thr, SymInt(n_sym_hint) > prm.swap_threshold);
  }
  for (int jj = j0;
       br(ctx, S::sw_row_loop, SymInt(jj) < prm.n) && jj < j0 + w; ++jj) {
    const int piv = ipiv[jj];
    if (piv == jj) {
      (void)br(ctx, S::sw_noop, SymInt(1) == SymInt(1));
      continue;
    }
    for (int cc = 0; cc < p.w; ++cc) std::swap(p.at(jj, cc), p.at(piv, cc));
  }
}

/// Trailing update of one local panel right of the factored panel.
void update_panel(rt::RuntimeContext& ctx, const Params& prm, Panel& mine,
                  const Panel& lpanel) {
  if (br(ctx, S::up_l1_transpose, prm.l1_form == SymInt(1))) {
    // L1 stored transposed: no numerical difference for the update.
  }
  if (br(ctx, S::up_u_transpose, prm.u_form == SymInt(1))) {
    // U stored transposed.
  }
  for (int cc = 0;
       br(ctx, S::up_col_loop, SymInt(mine.j0 + cc) < prm.n) && cc < mine.w;
       ++cc) {
    for (int jj = lpanel.j0; jj < lpanel.j0 + lpanel.w; ++jj) {
      const double u = mine.at(jj, cc);
      if (u == 0.0) continue;
      const int lc = jj - lpanel.j0;
      for (int r = jj + 1; r < mine.n; ++r) {
        mine.at(r, cc) -= lpanel.at(r, lc) * u;
      }
    }
    ctx.ops(static_cast<std::int64_t>(mine.n - lpanel.j0) * lpanel.w * 2);
  }
}

}  // namespace

Grid grid_init(rt::RuntimeContext& ctx, minimpi::Comm& world,
               const Params& prm) {
  Grid g;
  g.p = std::max<int>(1, static_cast<int>(prm.p.value()));
  g.q = std::max<int>(1, static_cast<int>(prm.q.value()));
  g.ngrid = g.p * g.q;

  const sym::SymInt rank = world.comm_rank(ctx);
  const int me = world.raw_rank();
  g.active = br(ctx, S::grd_active, rank < prm.p * prm.q);
  if (!g.active) {
    // Outside the grid: still participate in the collective splits with
    // MPI_UNDEFINED so the job stays collective-consistent.
    (void)world.split(ctx, -1, me);
    (void)world.split(ctx, -1, me);
    (void)world.split(ctx, -1, me);
    return g;
  }

  g.grid_id = me;  // grid ranks are world ranks 0..pq-1
  if (br(ctx, S::grd_rowmajor, prm.pmap == SymInt(0))) {
    g.myrow = g.grid_id / g.q;
    g.mycol = g.grid_id % g.q;
  } else {
    g.myrow = g.grid_id % g.p;
    g.mycol = g.grid_id / g.p;
  }
  g.row_comm = world.split(ctx, g.myrow, g.mycol);
  g.col_comm = world.split(ctx, g.mycol + 1024, g.myrow);
  g.grid_comm = world.split(ctx, 2048, g.grid_id);

  // Mark the local ranks (rc variables) of the sub-communicators.
  (void)g.row_comm.comm_rank(ctx);
  (void)g.col_comm.comm_rank(ctx);
  (void)g.grid_comm.comm_rank(ctx);

  (void)br(ctx, S::grd_row_zero, SymInt(g.myrow) == SymInt(0));
  (void)br(ctx, S::grd_col_zero, SymInt(g.mycol) == SymInt(0));
  (void)br(ctx, S::grd_single_col, prm.q == SymInt(1));
  return g;
}

SolveResult pdgesv(rt::RuntimeContext& ctx, const Grid& g, const Params& prm,
                   int n, int nb) {
  SolveResult result;
  result.ran = true;
  if (br(ctx, S::vr_trivial_n, prm.n == SymInt(0))) {
    result.passed = true;  // N = 0: nothing to factor
    return result;
  }

  LocalMatrix m = distribute(ctx, g, prm.n, n, nb);
  std::vector<int> ipiv(n, 0);
  std::vector<double> b(n);
  for (int i = 0; i < n; ++i) b[i] = gen_entry(i, n + 7, n);

  const bool lookahead =
      br(ctx, S::up_lookahead, prm.depth == SymInt(1));
  (void)lookahead;  // depth-1 lookahead reorders comm/compute only

  // ---- factorization over column panels ----
  using Clock = std::chrono::steady_clock;
  const auto secs_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  const int npanels = m.npanels;
  std::size_t local = 0;
  std::optional<int> prefactored;  // depth-1 lookahead (HPL's DEPTHs)
  for (int k = 0;
       br(ctx, S::sv_panel_loop, SymInt(k * nb) < prm.n) && k < npanels;
       ++k) {
    const int owner = k % g.ngrid;
    const int j0 = k * nb;
    const int w = std::min(nb, n - j0);

    Panel lpanel;
    lpanel.j0 = j0;
    lpanel.w = w;
    lpanel.n = n;

    if (br(ctx, S::sv_own_panel, SymInt(g.grid_id) == SymInt(owner))) {
      Panel& p = m.panels[local];
      if (br(ctx, S::sv_lookahead_hit,
             SymInt(prefactored && *prefactored == k ? 1 : 0) == SymInt(1))) {
        // Already factorized ahead of the previous update (lookahead).
      } else {
        const auto t0 = Clock::now();
        fact_recursive(ctx, prm, p, j0, w, ipiv);
        result.fact_seconds += secs_since(t0);
      }
      const auto tb = Clock::now();
      std::vector<double> buf = pack(p, ipiv);
      bcast_panel(ctx, g, prm, buf, owner);
      result.bcast_seconds += secs_since(tb);
      lpanel.a.assign(buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(n) * w);
      ++local;
    } else {
      lpanel.a.resize(static_cast<std::size_t>(n) * w);
      std::vector<double> buf(static_cast<std::size_t>(n) * w + w);
      const auto tb = Clock::now();
      bcast_panel(ctx, g, prm, buf, owner);
      result.bcast_seconds += secs_since(tb);
      unpack(buf, lpanel, ipiv);
    }

    if (br(ctx, S::sv_tail_panel, SymInt(j0 + w) >= prm.n)) {
      // Last panel: no trailing update remains.
    }
    // Swaps + update on every local panel right of k.
    const auto tu = Clock::now();
    for (std::size_t li = 0; li < m.panels.size(); ++li) {
      if (m.panel_idx[li] <= k) continue;
      apply_swaps(ctx, prm, m.panels[li], j0, w, ipiv,
                  static_cast<int>(prm.n.value()));
      update_panel(ctx, prm, m.panels[li], lpanel);
    }
    result.update_seconds += secs_since(tu);
    if (br(ctx, S::up_equilibrate, prm.equil == SymInt(1))) {
      // Equilibration rescales swap buffers; numerically a no-op here.
    }
    // Depth-1 lookahead: if this rank owns the NEXT panel, its columns are
    // now fully updated through panel k — factorize it before the next
    // iteration's broadcast so communication overlaps computation.
    if (lookahead && k + 1 < npanels && (k + 1) % g.ngrid == g.grid_id) {
      Panel& nxt = m.panels[local];
      const int nj0 = (k + 1) * nb;
      const int nw = std::min(nb, n - nj0);
      const auto t0 = Clock::now();
      fact_recursive(ctx, prm, nxt, nj0, nw, ipiv);
      result.fact_seconds += secs_since(t0);
      prefactored = k + 1;
    }
  }

  // ---- forward substitution: replay swaps + elimination panel by panel,
  // the same interleaving order the factorization applied them in ----
  local = 0;
  for (int k = 0; k < npanels; ++k) {
    const int owner = k % g.ngrid;
    const int j0 = k * nb;
    const int w = std::min(nb, n - j0);
    if (g.grid_id == owner) {
      Panel& p = m.panels[local];
      for (int jj = j0; jj < j0 + w; ++jj) {
        const int piv = ipiv[jj];
        if (piv != jj) std::swap(b[jj], b[piv]);
        const int c = jj - j0;
        for (int r = jj + 1; r < n; ++r) b[r] -= p.at(r, c) * b[jj];
        ctx.ops(2 * (n - jj));
      }
      ++local;
    }
    g.grid_comm.bcast(std::span<double>(b), owner);
  }

  // ---- backward substitution (Ux = y) ----
  std::vector<double> x = b;
  local = m.panels.size();
  for (int k = npanels - 1;
       k >= 0 && br(ctx, S::sv_backsub_loop, SymInt(k * nb) < prm.n); --k) {
    const int owner = k % g.ngrid;
    const int j0 = k * nb;
    const int w = std::min(nb, n - j0);
    if (br(ctx, S::sv_backsub_own, SymInt(g.grid_id) == SymInt(owner))) {
      Panel& p = m.panels[local - 1];
      for (int jj = j0 + w - 1; jj >= j0; --jj) {
        const int c = jj - j0;
        x[jj] /= p.at(jj, c);
        for (int r = 0; r < jj; ++r) x[r] -= p.at(r, c) * x[jj];
        ctx.ops(2 * jj + 1);
      }
      --local;
    }
    g.grid_comm.bcast(std::span<double>(x), owner);
  }

  // ---- HPL_pdverify: scaled residual ----
  std::vector<double> ax_partial(n, 0.0);
  for (const Panel& p : m.panels) {
    for (int cc = 0; cc < p.w; ++cc) {
      const int j = p.j0 + cc;
      const double xv = x[j];
      for (int i = 0; i < n; ++i) {
        ax_partial[i] += gen_entry(i, j, n) * xv;
      }
      ctx.ops(2 * n);
    }
  }
  std::vector<double> ax(n, 0.0);
  g.grid_comm.allreduce(std::span<const double>(ax_partial),
                        std::span<double>(ax), minimpi::Op::kSum);
  // HPL's scaled residual: ||Ax - b||_inf / (eps * (||A||_inf ||x||_inf +
  // ||b||_inf) * n).  ||A||_inf needs full row sums: each rank owns whole
  // columns, so partial row sums are allreduced like Ax was.
  double resid = 0.0, bnorm = 0.0, xnorm = 0.0;
  for (int i = 0; i < n; ++i) {
    resid = std::max(resid, std::fabs(ax[i] - gen_entry(i, n + 7, n)));
    bnorm = std::max(bnorm, std::fabs(gen_entry(i, n + 7, n)));
    xnorm = std::max(xnorm, std::fabs(x[i]));
  }
  std::vector<double> rowsum_partial(n, 0.0);
  for (const Panel& p : m.panels) {
    for (int cc = 0; cc < p.w; ++cc) {
      for (int i = 0; i < n; ++i) {
        rowsum_partial[i] += std::fabs(gen_entry(i, p.j0 + cc, n));
      }
    }
  }
  std::vector<double> rowsum(n, 0.0);
  g.grid_comm.allreduce(std::span<const double>(rowsum_partial),
                        std::span<double>(rowsum), minimpi::Op::kSum);
  double anorm = 0.0;
  for (int i = 0; i < n; ++i) anorm = std::max(anorm, rowsum[i]);
  const double eps = 2.2e-16;
  result.scaled_residual =
      resid / (eps * (anorm * xnorm + bnorm) * static_cast<double>(n));

  const auto resid_int = static_cast<std::int64_t>(
      std::min(result.scaled_residual, 1.0e9));
  result.passed = br(ctx, S::vr_resid_ok,
                     SymInt(resid_int) <= prm.threshold_scale * 100);
  if (br(ctx, S::vr_resid_print, SymInt(g.grid_id) == SymInt(0))) {
    // rank 0 prints the PASSED/FAILED line
  }
  return result;
}

}  // namespace compi::targets::hpl
