// mini-HPL input parameters and the HPL_pdinfo sanity cascade.
//
// HPL.dat has 28 tunables; the paper marks 24 non-floating-point inputs
// (arrays treated as one variable each, §VI "Marking input variables").
// The same 24 are marked here; the matrix size `n` carries the input cap
// N_C (default 300, §VI experiment setup).
#pragma once

#include "minimpi/comm.h"
#include "runtime/context.h"
#include "targets/mini_hpl/hpl_sites.h"

namespace compi::targets::hpl {

struct Params {
  // problem
  sym::SymInt ns_count, n;
  sym::SymInt nb_count, nb;
  // process grid
  sym::SymInt pmap, grid_count, p, q;
  // panel factorization
  sym::SymInt pfact_count, pfact, nbmin, ndiv, rfact;
  // broadcast / lookahead
  sym::SymInt bcast, depth;
  // row swapping
  sym::SymInt swap_alg, swap_threshold;
  // storage forms
  sym::SymInt l1_form, u_form, equil, align;
  // residual threshold scale (the "16.0" of HPL.dat, as an int scale)
  sym::SymInt threshold_scale;
  // extra marked counts (HPL checks each list length)
  sym::SymInt pfact_list_len, nbmin_list_len;
};

/// Reads (marks) all 24 input variables.  `n_cap` is the input cap N_C on
/// the matrix size (COMPI_int_with_limit, §IV-A).
[[nodiscard]] Params read_params(rt::RuntimeContext& ctx, int n_cap);

/// HPL_pdinfo: validates every parameter and their combinations; on any
/// violation rank 0 reports and all return false (the program exits before
/// the solve phase).  `rank` / `size` are the marked MPI variables so the
/// grid-fit check `p*q <= size` ties inputs to the process count.
[[nodiscard]] bool sanity_check(rt::RuntimeContext& ctx, const Params& prm,
                                const sym::SymInt& rank,
                                const sym::SymInt& size);

}  // namespace compi::targets::hpl
