// mini-HPL compute phase: process grid, distributed block LU, residual.
//
// A real (small-scale) distributed LU factorization with partial pivoting:
// column panels are block-cyclic over the P*Q grid processes, the panel
// owner factorizes and broadcasts (six broadcast variants, as HPL's
// HPL_bcast), everyone applies row swaps (three swap variants) and updates
// its own columns, then forward/backward substitution and the HPL-style
// scaled residual check close the run.
#pragma once

#include "minimpi/comm.h"
#include "runtime/context.h"
#include "targets/mini_hpl/hpl_params.h"

namespace compi::targets::hpl {

/// One rank's view of the P x Q process grid.
struct Grid {
  bool active = false;  // rank < p*q
  int p = 1, q = 1;
  int grid_id = -1;  // linear id in the grid == world rank (ranks 0..pq-1)
  int ngrid = 1;     // p*q
  int myrow = 0, mycol = 0;
  minimpi::Comm row_comm, col_comm, grid_comm;
};

/// HPL_grid_init: builds the grid (row-/column-major per pmap) and the
/// row / column / all-grid communicators via MPI_Comm_split — each split's
/// comm_rank marks an rc variable, reproducing the multi-communicator
/// situation of the paper's Fig. 5.
[[nodiscard]] Grid grid_init(rt::RuntimeContext& ctx, minimpi::Comm& world,
                             const Params& prm);

struct SolveResult {
  bool ran = false;
  bool passed = false;
  double scaled_residual = 0.0;
  /// Phase timings (HPL_timer): factorization, broadcast, swap+update,
  /// substitution+verify — printed per solve by rank 0 in real HPL.
  double fact_seconds = 0.0;
  double bcast_seconds = 0.0;
  double update_seconds = 0.0;
  double solve_seconds = 0.0;
  /// 2/3 n^3 + 2 n^2 flop estimate over the factorization wall time.
  [[nodiscard]] double gflops(int n) const {
    const double flops = (2.0 / 3.0) * n * n * n + 2.0 * n * n;
    const double secs =
        fact_seconds + bcast_seconds + update_seconds + solve_seconds;
    return secs > 0 ? flops / secs * 1e-9 : 0.0;
  }
};

/// HPL_pdgesv + HPL_pdverify for one (n, nb) configuration.  Collective
/// over the grid ranks; inactive ranks must not call it.
[[nodiscard]] SolveResult pdgesv(rt::RuntimeContext& ctx, const Grid& grid,
                                 const Params& prm, int n, int nb);

}  // namespace compi::targets::hpl
