#include "targets/mini_imb/mini_imb.h"

#include <algorithm>
#include <vector>

#include <chrono>

#include "targets/mini_imb/imb_sites.h"
#include "targets/mini_imb/imb_stats.h"

namespace compi::targets {
namespace {

using imb::BufferRing;
using imb::Site;
using imb::TimingStats;
using imb::reduce_timings;
using sym::SymInt;

struct Args {
  SymInt benchmark;
  SymInt msglog_min, msglog_max;
  SymInt iters, warmups;
  SymInt npmin, root;
  SymInt off_cache, multi, sync;
  SymInt msg_pow, vol_log, time_scale;
};

Args read_args(rt::RuntimeContext& ctx, int iter_cap) {
  Args a;
  a.benchmark = ctx.input_int("benchmark");
  a.msglog_min = ctx.input_int("msglog_min");
  a.msglog_max = ctx.input_int("msglog_max");
  a.iters = ctx.input_int_capped("iters", iter_cap);
  a.warmups = ctx.input_int("warmups");
  a.npmin = ctx.input_int("npmin");
  a.root = ctx.input_int("root");
  a.off_cache = ctx.input_int("off_cache");
  a.multi = ctx.input_int("multi");
  a.sync = ctx.input_int("sync");
  a.msg_pow = ctx.input_int("msg_pow");
  a.vol_log = ctx.input_int("vol_log");
  a.time_scale = ctx.input_int("time_scale");
  return a;
}

bool fail(rt::RuntimeContext& ctx, const SymInt& rank) {
  if (br(ctx, Site::pa_err_rank0, rank == SymInt(0))) {
    // rank 0: usage message (elided)
  }
  return false;
}

bool parse_args(rt::RuntimeContext& ctx, const Args& a, const SymInt& rank,
                const SymInt& size) {
  using S = Site;
  const SymInt zero(0), one(1);
  if (br(ctx, S::pa_bench_lo, a.benchmark < zero)) return fail(ctx, rank);
  if (br(ctx, S::pa_bench_hi, a.benchmark > SymInt(12))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::pa_msglog_min_lo, a.msglog_min < zero)) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::pa_msglog_min_hi, a.msglog_min > SymInt(16))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::pa_msglog_max_lt, a.msglog_max < a.msglog_min)) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::pa_msglog_max_hi, a.msglog_max > SymInt(16))) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::pa_iters_lo, a.iters < one)) return fail(ctx, rank);
  if (br(ctx, S::pa_warmup_neg, a.warmups < zero)) return fail(ctx, rank);
  if (br(ctx, S::pa_warmup_gt, a.warmups > a.iters)) return fail(ctx, rank);
  if (br(ctx, S::pa_npmin_lo, a.npmin < SymInt(2))) return fail(ctx, rank);
  // Subset sizes must fit the world — ties an input to sw (§III-B).
  if (br(ctx, S::pa_npmin_gt_size, a.npmin > size)) return fail(ctx, rank);
  if (br(ctx, S::pa_root_neg, a.root < zero)) return fail(ctx, rank);
  if (br(ctx, S::pa_root_ge_size, a.root >= size)) return fail(ctx, rank);
  if (br(ctx, S::pa_off_cache,
         a.off_cache * (a.off_cache - one) != zero)) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::pa_multi, a.multi * (a.multi - one) != zero)) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::pa_sync, a.sync * (a.sync - one) != zero)) {
    return fail(ctx, rank);
  }
  bool pow_ok = false;
  for (int p = 1; p <= 4; p *= 2) {
    if (br(ctx, S::pa_msg_pow, a.msg_pow == SymInt(p))) {
      pow_ok = true;
      break;
    }
  }
  if (!pow_ok) return fail(ctx, rank);
  if (br(ctx, S::pa_vol_lo, a.vol_log < SymInt(10))) return fail(ctx, rank);
  if (br(ctx, S::pa_vol_hi, a.vol_log > SymInt(22))) return fail(ctx, rank);
  if (br(ctx, S::pa_time_scale_lo, a.time_scale < one)) {
    return fail(ctx, rank);
  }
  if (br(ctx, S::pa_time_scale_hi, a.time_scale > SymInt(100))) {
    return fail(ctx, rank);
  }
  return true;
}

/// One benchmark execution on the active subset communicator; returns
/// this rank's wall time for the iteration batch.
double run_benchmark(rt::RuntimeContext& ctx, const Args& a,
                     minimpi::Comm& comm, int bench, std::size_t len,
                     int iters) {
  using S = Site;
  const int me = comm.raw_rank();
  const int np = comm.raw_size();
  const int root =
      std::clamp<int>(static_cast<int>(a.root.value()), 0, np - 1);
  // Off-cache mode rotates the send buffer through a ring so iterations
  // do not replay from a warm cache (IMB's -off_cache).
  const int ring_copies = a.off_cache.value() == 1 ? 4 : 1;
  BufferRing ring(std::max<std::size_t>(len / 8, 1), ring_copies);
  std::vector<double> sendbuf(std::max<std::size_t>(len / 8, 1), 1.0);
  std::vector<double> recvbuf(sendbuf.size());
  // Per-message instrumentation stubs on the pack/unpack path.
  const auto msg_ops = static_cast<std::int64_t>(sendbuf.size()) * 2;
  (void)ring;
  const auto bench_start = std::chrono::steady_clock::now();

  switch (bench) {
    case 0: {  // PingPong: subset ranks 0 and 1
      if (br(ctx, S::pp_participant, SymInt(me) < SymInt(2)) && np >= 2) {
        for (int it = 0;
             br(ctx, S::pp_iter_loop, SymInt(it) < a.iters) && it < iters;
             ++it) {
          ctx.ops(msg_ops);
          const std::span<double> sb = ring.at(it);
          if (br(ctx, S::pp_initiator, SymInt(me) == SymInt(0))) {
            comm.send(std::span<const double>(sb.data(), sb.size()), 1, 11);
            comm.recv(std::span<double>(recvbuf), 1, 12);
          } else {
            comm.recv(std::span<double>(recvbuf), 0, 11);
            comm.send(std::span<const double>(sendbuf), 0, 12);
          }
        }
      }
      break;
    }
    case 1: {  // PingPing: both directions in flight
      if (br(ctx, S::pi_participant, SymInt(me) < SymInt(2)) && np >= 2) {
        for (int it = 0;
             br(ctx, S::pi_iter_loop, SymInt(it) < a.iters) && it < iters;
             ++it) {
          ctx.ops(msg_ops);
          const int peer = 1 - me;
          comm.send(std::span<const double>(sendbuf), peer, 13);
          comm.recv(std::span<double>(recvbuf), peer, 13);
        }
      }
      break;
    }
    case 2: {  // Sendrecv ring
      for (int it = 0;
           br(ctx, S::sr_iter_loop, SymInt(it) < a.iters) && it < iters;
           ++it) {
        ctx.ops(msg_ops);
        const int up = (me + 1) % np;
        const int down = (me - 1 + np) % np;
        (void)br(ctx, S::sr_ring_wrap, SymInt(me) == SymInt(np - 1));
        comm.sendrecv(std::span<const double>(sendbuf), up, 14,
                      std::span<double>(recvbuf), down, 14);
      }
      break;
    }
    case 3: {  // Exchange: both neighbours, non-blocking (as IMB does)
      std::vector<double> recv_up(sendbuf.size());
      for (int it = 0;
           br(ctx, S::ex_iter_loop, SymInt(it) < a.iters) && it < iters;
           ++it) {
        ctx.ops(msg_ops);
        const int up = (me + 1) % np;
        const int down = (me - 1 + np) % np;
        if (br(ctx, S::ex_two_neighbors, SymInt(np) > SymInt(2))) {
          // Distinct neighbours on both sides.
        }
        std::vector<minimpi::Request> reqs;
        reqs.push_back(comm.irecv(std::span<double>(recvbuf), down, 15));
        reqs.push_back(comm.irecv(std::span<double>(recv_up), up, 16));
        reqs.push_back(
            comm.isend(std::span<const double>(sendbuf), up, 15));
        reqs.push_back(
            comm.isend(std::span<const double>(sendbuf), down, 16));
        minimpi::wait_all(reqs);
      }
      break;
    }
    case 4: {  // Bcast
      for (int it = 0;
           br(ctx, S::bc_iter_loop, SymInt(it) < a.iters) && it < iters;
           ++it) {
        ctx.ops(msg_ops);
        (void)br(ctx, S::bc_is_root, SymInt(me) == a.root);
        comm.bcast(std::span<double>(sendbuf), root);
      }
      break;
    }
    case 5: {  // Allreduce
      for (int it = 0;
           br(ctx, S::ar_iter_loop, SymInt(it) < a.iters) && it < iters;
           ++it) {
        ctx.ops(msg_ops);
        comm.allreduce(std::span<const double>(sendbuf),
                       std::span<double>(recvbuf), minimpi::Op::kSum);
      }
      break;
    }
    case 6: {  // Reduce
      for (int it = 0;
           br(ctx, S::rd_iter_loop, SymInt(it) < a.iters) && it < iters;
           ++it) {
        ctx.ops(msg_ops);
        (void)br(ctx, S::rd_is_root, SymInt(me) == a.root);
        comm.reduce(std::span<const double>(sendbuf),
                    std::span<double>(recvbuf), minimpi::Op::kMax, root);
      }
      break;
    }
    case 7: {  // Allgather
      std::vector<double> gathered(sendbuf.size() * np);
      for (int it = 0;
           br(ctx, S::ag_iter_loop, SymInt(it) < a.iters) && it < iters;
           ++it) {
        ctx.ops(msg_ops);
        comm.allgather(std::span<const double>(sendbuf),
                       std::span<double>(gathered));
      }
      break;
    }
    case 8: {  // Gather
      std::vector<double> gathered(sendbuf.size() * np);
      for (int it = 0;
           br(ctx, S::ga_iter_loop, SymInt(it) < a.iters) && it < iters;
           ++it) {
        ctx.ops(msg_ops);
        (void)br(ctx, S::ga_is_root, SymInt(me) == a.root);
        comm.gather(std::span<const double>(sendbuf),
                    std::span<double>(gathered), root);
      }
      break;
    }
    case 10: {  // Alltoall
      std::vector<double> atall_in(sendbuf.size() * np, 1.0);
      std::vector<double> atall_out(sendbuf.size() * np);
      for (int it = 0;
           br(ctx, S::aa_iter_loop, SymInt(it) < a.iters) && it < iters;
           ++it) {
        ctx.ops(msg_ops * np);
        if (br(ctx, S::aa_large_np, SymInt(np) > SymInt(4))) {
          // Large communicators: IMB halves the default repetitions.
        }
        comm.alltoall(std::span<const double>(atall_in),
                      std::span<double>(atall_out));
      }
      break;
    }
    case 11: {  // Reduce_scatter
      std::vector<double> rsc_in(sendbuf.size() * np, 1.0);
      for (int it = 0;
           br(ctx, S::rs_iter_loop, SymInt(it) < a.iters) && it < iters;
           ++it) {
        ctx.ops(msg_ops);
        comm.reduce_scatter(std::span<const double>(rsc_in),
                            std::span<double>(recvbuf), minimpi::Op::kSum);
      }
      break;
    }
    case 12: {  // Scan (inclusive prefix sum)
      for (int it = 0;
           br(ctx, S::sc_iter_loop, SymInt(it) < a.iters) && it < iters;
           ++it) {
        ctx.ops(msg_ops);
        (void)br(ctx, S::sc_last_rank, SymInt(me) == SymInt(np - 1));
        comm.scan(std::span<const double>(sendbuf),
                  std::span<double>(recvbuf), minimpi::Op::kSum);
      }
      break;
    }
    default: {  // 9: Barrier
      for (int it = 0;
           br(ctx, S::ba_iter_loop, SymInt(it) < a.iters) && it < iters;
           ++it) {
        ctx.ops(msg_ops);
        if (br(ctx, S::ba_sync_mode, a.sync == SymInt(1))) {
          comm.barrier();
        }
        comm.barrier();
      }
      break;
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       bench_start)
      .count();
}

void mini_imb_program(rt::RuntimeContext& ctx, minimpi::Comm& world,
                      int iter_cap) {
  using S = Site;
  Args a = read_args(ctx, iter_cap);
  const SymInt rank = world.comm_rank(ctx);
  const SymInt size = world.comm_size(ctx);

  if (br(ctx, S::pa_rank0_banner, rank == SymInt(0))) {
    // rank 0 prints the IMB banner
  }
  if (!parse_args(ctx, a, rank, size)) {
    world.barrier();
    return;
  }

  const int me = world.raw_rank();
  const int np_world = world.raw_size();
  const int bench =
      std::clamp<int>(static_cast<int>(a.benchmark.value()), 0, 12);
  const int npmin =
      std::clamp<int>(static_cast<int>(a.npmin.value()), 2, np_world);
  const int log_min =
      std::clamp<int>(static_cast<int>(a.msglog_min.value()), 0, 16);
  const int log_max = std::clamp<int>(
      static_cast<int>(a.msglog_max.value()), log_min, 16);
  const int iters =
      std::clamp<int>(static_cast<int>(a.iters.value()), 1, iter_cap);
  const std::int64_t overall_vol =
      std::int64_t{1} << std::clamp<int>(
          static_cast<int>(a.vol_log.value()), 10, 22);

  // Process-subset sweep: np = npmin, 2*npmin, ..., world size (IMB's
  // default schedule).  Each subset is an MPI_Comm_split (rc variables).
  // In -multi mode every group of np ranks runs the benchmark
  // concurrently (colors 0, 1, ...); otherwise only ranks < np are active.
  const bool multi = a.multi.value() == 1;
  for (int np = npmin;; np = std::min(np * 2, np_world)) {
    (void)br(ctx, S::ss_np_loop, SymInt(np) <= size);
    bool active;
    int color;
    if (multi) {
      color = me / np;
      // Trailing ranks that do not fill a whole group sit out, as in IMB.
      active = br(ctx, S::ss_active,
                  rank < SymInt((np_world / np) * np));
      if (!active) color = -1;
    } else {
      active = br(ctx, S::ss_active, rank < SymInt(np));
      color = active ? 0 : -1;
    }
    minimpi::Comm sub = world.split(ctx, color, me);
    if (active) {
      (void)sub.comm_rank(ctx);  // marks the rc variable for this subset
      for (int lg = log_min;
           br(ctx, S::ss_len_loop, SymInt(lg) <= a.msglog_max) &&
           lg <= log_max;
           ++lg) {
        const std::size_t len = std::size_t{1} << lg;
        int len_iters = iters;
        if (br(ctx, S::ss_iter_trim,
               a.iters * SymInt(static_cast<std::int64_t>(len)) >
                   SymInt(overall_vol))) {
          len_iters = std::max<int>(
              1, static_cast<int>(overall_vol /
                                  static_cast<std::int64_t>(len)));
        }
        (void)br(ctx, S::ss_off_cache, a.off_cache == SymInt(1));
        const double secs =
            run_benchmark(ctx, a, sub, bench, len, len_iters);
        // IMB's per-sample statistics: min/max/avg across the subset.
        const TimingStats stats = reduce_timings(sub, secs);
        // The -time limit: stop the length sweep once a sample exceeds
        // time_scale deciseconds (all ranks see the same reduced t_max,
        // so the break is collective-consistent).
        if (br(ctx, S::ss_time_limit,
               SymInt(static_cast<std::int64_t>(stats.t_max * 10.0)) >
                   a.time_scale)) {
          break;
        }
      }
    }
    world.barrier();
    if (br(ctx, S::ss_last_np, SymInt(np) >= size)) break;
  }

  if (br(ctx, S::rp_rank0_report, rank == SymInt(0))) {
    // rank 0 prints the timing table
  }
  (void)br(ctx, S::rp_multi_mode, a.multi == SymInt(1));
  world.barrier();
}

}  // namespace

std::map<std::string, std::int64_t> mini_imb_defaults(int benchmark,
                                                      int iters) {
  return {
      {"benchmark", benchmark},
      {"msglog_min", 2},
      {"msglog_max", 6},
      {"iters", iters},
      {"warmups", 1},
      {"npmin", 2},
      {"root", 0},
      {"off_cache", 0},
      {"multi", 0},
      {"sync", 1},
      {"msg_pow", 2},
      {"vol_log", 14},
      {"time_scale", 10},
  };
}

TargetInfo make_mini_imb_target(int iter_cap) {
  TargetInfo info;
  info.name = "mini-IMB-MPI1";
  info.table = &imb::branch_table();
  info.program = [iter_cap](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    mini_imb_program(ctx, world, iter_cap);
  };
  info.sloc = 466;         // measured non-blank lines of this module
  info.paper_sloc = 7092;  // IMB-MPI1 per SLOCCount (paper Table III)
  info.default_cap = iter_cap;
  return info;
}

}  // namespace compi::targets
