#include "targets/mini_imb/imb_stats.h"

namespace compi::targets::imb {

TimingStats reduce_timings(minimpi::Comm& comm, double local_seconds) {
  TimingStats stats;
  const std::span<const double> in(&local_seconds, 1);
  comm.allreduce(in, std::span<double>(&stats.t_min, 1), minimpi::Op::kMin);
  comm.allreduce(in, std::span<double>(&stats.t_max, 1), minimpi::Op::kMax);
  double sum = 0.0;
  comm.allreduce(in, std::span<double>(&sum, 1), minimpi::Op::kSum);
  stats.t_avg = sum / comm.raw_size();
  return stats;
}

BufferRing::BufferRing(std::size_t elems, int copies)
    : elems_(std::max<std::size_t>(elems, 1)),
      copies_(std::max(copies, 1)),
      storage_(elems_ * static_cast<std::size_t>(copies_), 1.0) {}

std::span<double> BufferRing::at(int it) {
  const std::size_t slot =
      static_cast<std::size_t>(it % copies_) * elems_;
  return {storage_.data() + slot, elems_};
}

}  // namespace compi::targets::imb
