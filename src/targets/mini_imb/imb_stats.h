// IMB-style timing statistics.
//
// IMB reports, per (benchmark, #processes, message length), the minimum,
// maximum and average time per iteration across the participating ranks —
// three reductions over the subset communicator.  The off-cache mode
// rotates through a ring of send buffers so repeated iterations do not
// replay from a warm cache.
#pragma once

#include <cstddef>
#include <vector>

#include "minimpi/comm.h"

namespace compi::targets::imb {

struct TimingStats {
  double t_min = 0.0;
  double t_max = 0.0;
  double t_avg = 0.0;
};

/// Reduces one rank's per-iteration time over the communicator.
[[nodiscard]] TimingStats reduce_timings(minimpi::Comm& comm,
                                         double local_seconds);

/// Ring of send buffers for off-cache mode (IMB's -off_cache flag).
class BufferRing {
 public:
  /// `copies` = 1 models cache-warm runs; more copies defeat reuse.
  BufferRing(std::size_t elems, int copies);

  /// The buffer for iteration `it` (rotates through the ring).
  [[nodiscard]] std::span<double> at(int it);

  [[nodiscard]] int copies() const { return copies_; }

 private:
  std::size_t elems_;
  int copies_;
  std::vector<double> storage_;
};

}  // namespace compi::targets::imb
