// Static branch sites of mini-IMB-MPI1.
//
// Mirrors IMB's phase structure: argument parsing/validation, the
// process-subset sweep (np = npmin, 2*npmin, ..., P), the message-length
// sweep, and one function per MPI-1 benchmark.
#pragma once

#include "targets/target_common.h"

namespace compi::targets::imb {

// clang-format off
#define MINI_IMB_SITES(X) \
  /* ---- parse_args: validation of the command line ---- */ \
  X(pa_rank0_banner,   "parse_args") \
  X(pa_bench_lo,       "parse_args") \
  X(pa_bench_hi,       "parse_args") \
  X(pa_msglog_min_lo,  "parse_args") \
  X(pa_msglog_min_hi,  "parse_args") \
  X(pa_msglog_max_lt,  "parse_args") \
  X(pa_msglog_max_hi,  "parse_args") \
  X(pa_iters_lo,       "parse_args") \
  X(pa_warmup_neg,     "parse_args") \
  X(pa_warmup_gt,      "parse_args") \
  X(pa_npmin_lo,       "parse_args") \
  X(pa_npmin_gt_size,  "parse_args") \
  X(pa_root_neg,       "parse_args") \
  X(pa_root_ge_size,   "parse_args") \
  X(pa_off_cache,      "parse_args") \
  X(pa_multi,          "parse_args") \
  X(pa_sync,           "parse_args") \
  X(pa_msg_pow,        "parse_args") \
  X(pa_vol_lo,         "parse_args") \
  X(pa_vol_hi,         "parse_args") \
  X(pa_time_scale_lo,  "parse_args") \
  X(pa_time_scale_hi,  "parse_args") \
  X(pa_err_rank0,      "parse_args") \
  /* ---- subset sweep ---- */ \
  X(ss_np_loop,        "subset_sweep") \
  X(ss_active,         "subset_sweep") \
  X(ss_last_np,        "subset_sweep") \
  X(ss_len_loop,       "subset_sweep") \
  X(ss_iter_trim,      "subset_sweep") \
  X(ss_off_cache,      "subset_sweep") \
  X(ss_time_limit,     "subset_sweep") \
  /* ---- benchmarks ---- */ \
  X(pp_participant,    "pingpong") \
  X(pp_initiator,      "pingpong") \
  X(pp_iter_loop,      "pingpong") \
  X(pi_participant,    "pingping") \
  X(pi_iter_loop,      "pingping") \
  X(sr_iter_loop,      "sendrecv") \
  X(sr_ring_wrap,      "sendrecv") \
  X(ex_iter_loop,      "exchange") \
  X(ex_two_neighbors,  "exchange") \
  X(bc_iter_loop,      "bcast_bench") \
  X(bc_is_root,        "bcast_bench") \
  X(ar_iter_loop,      "allreduce_bench") \
  X(rd_iter_loop,      "reduce_bench") \
  X(rd_is_root,        "reduce_bench") \
  X(ag_iter_loop,      "allgather_bench") \
  X(ga_iter_loop,      "gather_bench") \
  X(ga_is_root,        "gather_bench") \
  X(ba_iter_loop,      "barrier_bench") \
  X(ba_sync_mode,      "barrier_bench") \
  X(aa_iter_loop,      "alltoall_bench") \
  X(aa_large_np,       "alltoall_bench") \
  X(rs_iter_loop,      "reduce_scatter_bench") \
  X(sc_iter_loop,      "scan_bench") \
  X(sc_last_rank,      "scan_bench") \
  /* ---- reporting ---- */ \
  X(rp_rank0_report,   "report") \
  X(rp_multi_mode,     "report")
// clang-format on

COMPI_DEFINE_TARGET_SITES(Site, branch_table, MINI_IMB_SITES)

}  // namespace compi::targets::imb
