// mini-IMB-MPI1: the MPI-1 benchmark evaluation subject (paper §VI).
//
// A small-scale analog of the Intel MPI Benchmarks' IMB-MPI1 component:
// command-line parsing with validation, a process-subset sweep
// (np = npmin, 2*npmin, ..., P via MPI_Comm_split), a message-length sweep,
// and thirteen MPI-1 benchmarks (PingPong, PingPing, Sendrecv, Exchange
// with non-blocking Isend/Irecv, Bcast, Allreduce, Reduce, Allgather,
// Gather, Barrier, Alltoall, Reduce_scatter, Scan).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "compi/target.h"

namespace compi::targets {

/// Builds the mini-IMB target.  `iter_cap` is the input cap N_C on the
/// per-length iteration count (paper default 100; Fig. 8 sweeps 50-1600).
[[nodiscard]] TargetInfo make_mini_imb_target(int iter_cap = 100);

/// Default arguments that pass validation: run `benchmark` (0 = PingPong
/// ... 9 = Barrier, 10 = Alltoall, 11 = Reduce_scatter, 12 = Scan) for
/// `iters` iterations over 4 B..64 B messages.
[[nodiscard]] std::map<std::string, std::int64_t> mini_imb_defaults(
    int benchmark = 0, int iters = 4);

}  // namespace compi::targets
