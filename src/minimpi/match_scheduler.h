// Central scheduler for message-matching nondeterminism.
//
// MPI_ANY_SOURCE makes receive matching a scheduling decision: which of the
// feasible senders' messages the receive consumes depends on arrival order,
// and real MPI heisenbugs hide in the orders a single run never takes.  When
// enabled, every receive in the job consults this scheduler instead of
// blocking on its mailbox directly.  For each wildcard receive it records
// the feasible sender set and the choice taken — the run's *decision
// vector* — and it can replay a prescribed choice at any decision point, so
// any interleaving the driver wants to explore is a deterministic,
// replayable plan (MPISE-style on-the-fly matching; see PAPERS.md).
//
// Because the scheduler sees every rank's blocking state, it also detects
// deadlock *exactly*: when all non-finished ranks are blocked and no blocked
// receive has a feasible message, the job can never progress, and one rank
// throws DeadlockDetected with the wait-for cycle — instantly, instead of
// burning the wall-clock watchdog (`--hang-timeout-ms`), which remains as
// the fallback for uninstrumented infinite loops that never block in MPI.
// At finalize the launcher asks for unreceived messages (orphans), the other
// silent matching bug.
//
// Memory-ordering note for the no-false-deadlock argument: a sender posts
// its message under the destination mailbox mutex *before* it can block
// under the scheduler mutex, so a checker that (holding the scheduler
// mutex) observes every rank blocked will also observe every message those
// ranks posted when it scans the mailboxes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "minimpi/types.h"
#include "minimpi/world.h"

namespace compi::minimpi {

// MatchDecision / MatchPlan / MatchRecord live in types.h (World accepts a
// plan without depending on this header).

class MatchScheduler {
 public:
  MatchScheduler(World& world, MatchPlan plan);

  /// Blocking receive through the scheduler.  `src_local` may be
  /// kAnySource; `src_global` is the world rank of the sender (or
  /// kAnySource) — used for wait-for-graph edges.  `reserved_seq` >= 0
  /// replays a decision ordinal reserved by post_irecv (posting order);
  /// otherwise ANY_SOURCE receives draw the next ordinal here.  Throws
  /// DeadlockDetected on this rank when it is the chosen deadlock victim.
  Message recv(int dest_global, int src_local, int src_global,
               std::int64_t comm_uid, int tag, int reserved_seq = -1);

  /// Non-blocking posting step of MPI_Irecv: matches immediately when a
  /// message is already feasible (recording the decision), otherwise
  /// reserves this receive's decision ordinal in `reserved_seq` so the
  /// eventual wait() matches in posting order.
  std::optional<Message> post_irecv(int dest_global, int src_local,
                                    std::int64_t comm_uid, int tag,
                                    int& reserved_seq);

  /// Blocked-state bracketing for collective waits (CollectiveSlot).  May
  /// run the deadlock check; block_collective throws on the calling rank
  /// when blocking it completes a deadlock.
  void block_collective(int global_rank);
  void unblock_collective(int global_rank);

  /// Throws DeadlockDetected when `global_rank` was chosen as the victim by
  /// a check run on another rank's transition.  Cheap; called from wait
  /// loops that sleep on foreign condition variables.
  void poll(int global_rank);

  /// Rank finished (cleanly or not).  A finishing rank can complete a
  /// deadlock for the ranks still blocked on it.
  void mark_done(int global_rank);

  /// A message was delivered somewhere: wake blocked receivers to rescan.
  void on_message();
  /// The job is aborting: wake everything parked on the scheduler.
  void notify_abort();

  /// The run's decision vector, in global match order.
  [[nodiscard]] std::vector<MatchRecord> take_trace();
  /// True when a prescribed choice had to be abandoned because its message
  /// could no longer arrive (the replayed prefix diverged).
  [[nodiscard]] bool diverged() const;

 private:
  enum class State : std::uint8_t {
    kRunning,
    kBlockedRecv,
    kBlockedCollective,
    kDone,
  };

  struct RankState {
    State state = State::kRunning;
    // Criteria of the receive this rank is blocked in (kBlockedRecv only).
    int src_local = kAnySource;
    int src_global = kAnySource;
    std::int64_t comm_uid = 0;
    int tag = kAnyTag;
    std::optional<int> forced;  // prescribed wildcard source, if replaying
  };

  /// Looks up a prescribed choice for (rank, seq).
  [[nodiscard]] std::optional<int> planned_choice(int rank, int seq) const;
  /// True when the blocked receive described by `rs` has a feasible message
  /// (honoring a prescription when `honor_forced`).
  [[nodiscard]] bool recv_feasible(int rank, const RankState& rs,
                                   bool honor_forced);
  /// The all-blocked/no-feasible check.  Runs under mu_; resolves replay
  /// divergence by dropping a dead prescription, else declares deadlock by
  /// choosing a victim and waking everyone.  When collective-blocked ranks
  /// are involved the declaration is deferred (see pending_confirm_at_): a
  /// rank woken out of a finished collective round can be marked blocked
  /// for one wake latency after its wait predicate turned true, so the
  /// condition must hold across a confirmation window to be sound.
  void check_deadlock_locked();
  void declare_deadlock_locked();
  [[nodiscard]] std::string describe_deadlock_locked();
  /// Common wait-loop step for blocked receives: victim check, pending
  /// re-check, liveness check, timed sleep.
  void wait_step(std::unique_lock<std::mutex>& lock, int global_rank);

  World& world_;
  MatchPlan plan_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<RankState> ranks_;
  std::vector<int> next_seq_;  // per-rank ANY_SOURCE ordinal source
  std::vector<MatchRecord> trace_;
  int victim_ = -1;            // rank elected to throw DeadlockDetected
  std::string deadlock_msg_;
  bool diverged_ = false;
  /// Bumped on every rank state transition; a pending (deferred) deadlock
  /// is confirmed only if no transition happened across the window.
  std::uint64_t epoch_ = 0;
  std::uint64_t pending_epoch_ = 0;
  std::chrono::steady_clock::time_point pending_confirm_at_{};
  bool pending_ = false;
};

}  // namespace compi::minimpi
