// The shared state of one MiniMPI job: mailboxes, abort flag, deadline,
// and the (optional) chaos layer injecting environment-level faults.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "minimpi/fault_plan.h"
#include "minimpi/types.h"

namespace compi::minimpi {

/// One in-flight point-to-point message.  `src` is the sender's rank local
/// to the communicator identified by `comm_uid` (communicators form
/// disjoint tag spaces, as MPI contexts do).
struct Message {
  int src = 0;
  std::int64_t comm_uid = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

class World;
class MatchScheduler;

/// Per-rank incoming message queue with (source, tag) matching.
class Mailbox {
 public:
  void push(Message msg);
  /// Blocks until a matching message arrives (src/tag may be kAnySource /
  /// kAnyTag; comm_uid always matches exactly).  Raises JobAborted when the
  /// job aborts or its wall-clock deadline passes.
  Message pop_matching(World& world, int src, std::int64_t comm_uid, int tag);

  // ---- non-blocking views (the match scheduler's matching primitives) ----
  /// Removes and returns the first matching message, if any.
  [[nodiscard]] std::optional<Message> try_pop(int src, std::int64_t comm_uid,
                                               int tag);
  /// True when a matching message is queued.
  [[nodiscard]] bool has_matching(int src, std::int64_t comm_uid, int tag);
  /// Sorted distinct communicator-local sources with a queued message
  /// matching (comm_uid, tag).
  [[nodiscard]] std::vector<int> feasible_sources(std::int64_t comm_uid,
                                                  int tag);
  /// Removes and returns everything still queued (the launcher's finalize
  /// orphan-message check).
  [[nodiscard]] std::deque<Message> drain();

 private:
  friend class World;
  [[nodiscard]] static bool matches(const Message& m, int src,
                                    std::int64_t comm_uid, int tag) {
    const bool src_ok = src == kAnySource || m.src == src;
    const bool tag_ok = tag == kAnyTag || m.tag == tag;
    return m.comm_uid == comm_uid && src_ok && tag_ok;
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

/// Job-wide shared state.  One World per launched test.
class World {
 public:
  explicit World(int size,
                 std::chrono::steady_clock::duration deadline =
                     std::chrono::seconds(30),
                 const FaultPlan& chaos = {});
  ~World();  // out of line: MatchScheduler is forward-declared here

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }

  /// Installs the match scheduler (wildcard decision recording / replay,
  /// exact deadlock detection).  Launcher-only: call before any rank runs.
  void enable_match_scheduler(MatchPlan plan);
  [[nodiscard]] MatchScheduler* match_scheduler() { return scheduler_.get(); }

  /// Receive dispatch: through the scheduler when installed, else a direct
  /// blocking mailbox match.  `src_local`/`src_global` may be kAnySource;
  /// `reserved_seq` is a decision ordinal reserved by post_irecv (or -1).
  Message recv_message(int dest_global, int src_local, int src_global,
                       std::int64_t comm_uid, int tag, int reserved_seq = -1);

  /// Non-blocking posting step of MPI_Irecv: consumes an already-delivered
  /// matching message, else (under the scheduler) reserves the receive's
  /// decision ordinal in `reserved_seq` so wait() matches in posting order.
  std::optional<Message> post_irecv(int dest_global, int src_local,
                                    std::int64_t comm_uid, int tag,
                                    int& reserved_seq);

  /// Chaos hook for every MPI entry point: may crash this rank (throws
  /// InjectedFault) or stall it in a collective.  No-op without a plan.
  void chaos_call(int global_rank, bool collective) {
    if (chaos_) chaos_->on_mpi_call(*this, global_rank, collective);
  }

  /// Delivers a point-to-point message, applying the chaos layer's drop /
  /// delay decisions (drops are silent — the watchdog catches the blocked
  /// receiver, as a real lost message would surface).
  void post(int src_global, int dest_global, Message msg);

  /// Called when a rank faults: wakes every blocked rank so the job
  /// unwinds, as mpiexec kills sibling processes of a crashed rank.
  void abort();
  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }
  /// True once the wall-clock deadline passed (simulated hang detection).
  [[nodiscard]] bool past_deadline() const {
    return std::chrono::steady_clock::now() > deadline_;
  }
  [[nodiscard]] std::chrono::steady_clock::time_point deadline() const {
    return deadline_;
  }
  /// Raises JobAborted when the job is aborted or past its deadline.
  void check_alive() const;

  /// Monotonic id source for communicators (tag-space qualification).
  [[nodiscard]] std::int64_t next_comm_uid() { return ++comm_uid_; }

 private:
  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};
  std::atomic<std::int64_t> comm_uid_{0};
  std::chrono::steady_clock::time_point deadline_;
  std::unique_ptr<ChaosEngine> chaos_;
  std::unique_ptr<MatchScheduler> scheduler_;
};

}  // namespace compi::minimpi
