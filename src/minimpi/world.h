// The shared state of one MiniMPI job: mailboxes, abort flag, deadline,
// and the (optional) chaos layer injecting environment-level faults.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "minimpi/fault_plan.h"
#include "minimpi/types.h"

namespace compi::minimpi {

/// One in-flight point-to-point message.  `src` is the sender's rank local
/// to the communicator identified by `comm_uid` (communicators form
/// disjoint tag spaces, as MPI contexts do).
struct Message {
  int src = 0;
  std::int64_t comm_uid = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

class World;

/// Per-rank incoming message queue with (source, tag) matching.
class Mailbox {
 public:
  void push(Message msg);
  /// Blocks until a matching message arrives (src/tag may be kAnySource /
  /// kAnyTag; comm_uid always matches exactly).  Raises JobAborted when the
  /// job aborts or its wall-clock deadline passes.
  Message pop_matching(World& world, int src, std::int64_t comm_uid, int tag);

 private:
  friend class World;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

/// Job-wide shared state.  One World per launched test.
class World {
 public:
  explicit World(int size,
                 std::chrono::steady_clock::duration deadline =
                     std::chrono::seconds(30),
                 const FaultPlan& chaos = {});

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }

  /// Chaos hook for every MPI entry point: may crash this rank (throws
  /// InjectedFault) or stall it in a collective.  No-op without a plan.
  void chaos_call(int global_rank, bool collective) {
    if (chaos_) chaos_->on_mpi_call(*this, global_rank, collective);
  }

  /// Delivers a point-to-point message, applying the chaos layer's drop /
  /// delay decisions (drops are silent — the watchdog catches the blocked
  /// receiver, as a real lost message would surface).
  void post(int src_global, int dest_global, Message msg);

  /// Called when a rank faults: wakes every blocked rank so the job
  /// unwinds, as mpiexec kills sibling processes of a crashed rank.
  void abort();
  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }
  /// True once the wall-clock deadline passed (simulated hang detection).
  [[nodiscard]] bool past_deadline() const {
    return std::chrono::steady_clock::now() > deadline_;
  }
  [[nodiscard]] std::chrono::steady_clock::time_point deadline() const {
    return deadline_;
  }
  /// Raises JobAborted when the job is aborted or past its deadline.
  void check_alive() const;

  /// Monotonic id source for communicators (tag-space qualification).
  [[nodiscard]] std::int64_t next_comm_uid() { return ++comm_uid_; }

 private:
  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};
  std::atomic<std::int64_t> comm_uid_{0};
  std::chrono::steady_clock::time_point deadline_;
  std::unique_ptr<ChaosEngine> chaos_;
};

}  // namespace compi::minimpi
