// Communicators: the MPI-1 call surface the targets program against.
//
// A Comm is one rank's view of a communicator (shared state + local rank).
// Point-to-point uses per-rank mailboxes; collectives use the
// communicator's rendezvous slot.  `comm_rank` / `comm_size` are the
// *instrumented* MPI_Comm_rank / MPI_Comm_size of the paper (§III-A, §V):
// on the world communicator they mark rw / sw variables in the heavy
// context; on split communicators `comm_rank` marks an rc variable and
// records the communicator's concrete size for the `rc < s_i` constraint.
#pragma once

#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "minimpi/collective_slot.h"
#include "minimpi/request.h"
#include "minimpi/types.h"
#include "minimpi/world.h"
#include "obs/trace.h"
#include "runtime/context.h"

namespace compi::minimpi {

namespace detail {
/// Observability taps for the templated p2p entry points: bump the global
/// message counters (always; one relaxed atomic) and, when tracing is on,
/// drop an instant/span event on the calling rank's track.
void note_send(int dest_local, std::size_t bytes);
void note_recv_done(std::size_t bytes);
}  // namespace detail

/// Receive status (MPI_Status subset).
struct Status {
  int source = kAnySource;  // local rank of the sender
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// State shared by all member ranks of one communicator.
struct CommShared {
  World* world = nullptr;
  std::int64_t uid = 0;
  bool is_world = false;
  /// Global (world) ranks indexed by local rank — a row of the paper's
  /// Table II local->global mapping.
  std::vector<int> members;
  std::unique_ptr<CollectiveSlot> slot;
};

class Comm {
 public:
  Comm() = default;
  Comm(std::shared_ptr<CommShared> shared, int local_rank, int ctx_comm_index)
      : shared_(std::move(shared)),
        local_rank_(local_rank),
        ctx_comm_index_(ctx_comm_index) {}

  /// A communicator handle is valid unless this rank passed a negative
  /// color to split() (MPI_UNDEFINED).
  [[nodiscard]] bool valid() const { return shared_ != nullptr; }

  // ---- raw (concrete) identity ----
  [[nodiscard]] int raw_rank() const { return local_rank_; }
  [[nodiscard]] int raw_size() const {
    return static_cast<int>(shared_->members.size());
  }
  [[nodiscard]] bool is_world() const { return shared_->is_world; }
  [[nodiscard]] int global_rank_of(int local) const {
    return shared_->members[local];
  }

  // ---- instrumented identity (automatic marking, paper §III-A) ----
  /// MPI_Comm_rank: marks rw (world) or rc (other) in the heavy context.
  [[nodiscard]] sym::SymInt comm_rank(rt::RuntimeContext& ctx) const;
  /// MPI_Comm_size: marks sw on the world communicator; other
  /// communicators' sizes are not marked (paper §III-A), so the value is
  /// concrete.
  [[nodiscard]] sym::SymInt comm_size(rt::RuntimeContext& ctx) const;

  // ---- point-to-point (dest/src are local ranks of this communicator) ----
  template <typename T>
  void send(std::span<const T> data, int dest, int tag) const {
    shared_->world->check_alive();
    shared_->world->chaos_call(global_rank(), /*collective=*/false);
    detail::note_send(dest, data.size_bytes());
    Message msg{local_rank_, shared_->uid, tag, to_bytes(data)};
    shared_->world->post(global_rank(), shared_->members[dest],
                         std::move(msg));
  }

  template <typename T>
  Status recv(std::span<T> out, int src, int tag) const {
    return recv_impl(out, src, tag, /*reserved_seq=*/-1);
  }

  template <typename T>
  Status sendrecv(std::span<const T> send_data, int dest, int send_tag,
                  std::span<T> recv_data, int src, int recv_tag) const {
    send(send_data, dest, send_tag);  // sends are eager/buffered: no deadlock
    return recv(recv_data, src, recv_tag);
  }

  // ---- non-blocking point-to-point ----

  /// MPI_Isend: eager/buffered, completes immediately.
  template <typename T>
  [[nodiscard]] Request isend(std::span<const T> data, int dest,
                              int tag) const {
    send(data, dest, tag);
    return Request::completed();
  }

  /// MPI_Irecv: posted at call time — an already-delivered message is
  /// consumed immediately, and under the match scheduler the receive's
  /// wildcard decision ordinal is reserved here, so matching honors
  /// posting order (MPI semantics) rather than wait() order.  The caller
  /// must keep `out` alive until the request completes.
  template <typename T>
  [[nodiscard]] Request irecv(std::span<T> out, int src, int tag) const {
    shared_->world->check_alive();
    int reserved_seq = -1;
    if (auto msg = shared_->world->post_irecv(global_rank(), src,
                                              shared_->uid, tag,
                                              reserved_seq)) {
      detail::note_recv_done(msg->payload.size());
      from_bytes<T>(msg->payload, out);
      return Request::completed();
    }
    return Request([this, out, src, tag, reserved_seq] {
      (void)recv_impl(out, src, tag, reserved_seq);
    });
  }

  // ---- collectives ----
  void barrier() const;

  template <typename T>
  void bcast(std::span<T> data, int root) const {
    auto result = run_collective(
        "bcast",
        local_rank_ == root ? to_bytes(std::span<const T>(data))
                            : std::vector<std::byte>{},
        [root](std::vector<std::any>& contribs) {
          return std::any_cast<std::vector<std::byte>&>(contribs[root]);
        });
    from_bytes<T>(result, data);
  }

  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out, Op op) const {
    auto result = run_collective(
        "allreduce", to_bytes(in),
        [op, n = in.size()](std::vector<std::any>& contribs) {
          std::vector<T> acc(n);
          from_bytes<T>(std::any_cast<std::vector<std::byte>&>(contribs[0]),
                        std::span<T>(acc));
          std::vector<T> tmp(n);
          for (std::size_t r = 1; r < contribs.size(); ++r) {
            from_bytes<T>(std::any_cast<std::vector<std::byte>&>(contribs[r]),
                          std::span<T>(tmp));
            for (std::size_t i = 0; i < n; ++i) {
              acc[i] = combine_one(acc[i], tmp[i], op);
            }
          }
          return to_bytes(std::span<const T>(acc));
        });
    from_bytes<T>(result, out);
  }

  /// Reduce: result defined only at root (implemented as an allreduce whose
  /// result non-roots discard — semantically identical, deterministic).
  template <typename T>
  void reduce(std::span<const T> in, std::span<T> out, Op op, int root) const {
    std::vector<T> tmp(in.size());
    allreduce(in, std::span<T>(tmp), op);
    if (local_rank_ == root) {
      std::copy(tmp.begin(), tmp.end(), out.begin());
    }
  }

  template <typename T>
  void allgather(std::span<const T> in, std::span<T> out) const {
    auto result = run_collective(
        "allgather", to_bytes(in), [](std::vector<std::any>& contribs) {
          std::vector<std::byte> acc;
          for (std::any& c : contribs) {
            auto& bytes = std::any_cast<std::vector<std::byte>&>(c);
            acc.insert(acc.end(), bytes.begin(), bytes.end());
          }
          return acc;
        });
    from_bytes<T>(result, out);
  }

  /// Gather to root (out used only at root; size = nranks * in.size()).
  template <typename T>
  void gather(std::span<const T> in, std::span<T> out, int root) const {
    std::vector<T> tmp(in.size() * raw_size());
    allgather(in, std::span<T>(tmp));
    if (local_rank_ == root) {
      std::copy(tmp.begin(), tmp.end(), out.begin());
    }
  }

  /// Scatter from root: `in` read at root (nranks * chunk), each rank
  /// receives its chunk into `out`.
  template <typename T>
  void scatter(std::span<const T> in, std::span<T> out, int root) const {
    const std::size_t chunk = out.size();
    auto result = run_collective(
        "scatter", local_rank_ == root ? to_bytes(in) : std::vector<std::byte>{},
        [root](std::vector<std::any>& contribs) {
          return std::any_cast<std::vector<std::byte>&>(contribs[root]);
        });
    std::span<const std::byte> mine(
        result.data() + local_rank_ * chunk * sizeof(T), chunk * sizeof(T));
    from_bytes<T>(mine, out);
  }

  /// MPI_Alltoall: `in` holds one chunk per destination rank; `out`
  /// receives one chunk per source rank (chunk = out.size() / nranks).
  template <typename T>
  void alltoall(std::span<const T> in, std::span<T> out) const {
    const std::size_t chunk = in.size() / raw_size();
    auto result = run_collective(
        "alltoall", to_bytes(in),
        [chunk, me = local_rank_](std::vector<std::any>& contribs) {
          // Column `me` of the contribution matrix... computed per rank, so
          // the combine assembles the full matrix and each rank slices it.
          std::vector<std::byte> acc;
          for (std::any& c : contribs) {
            auto& bytes = std::any_cast<std::vector<std::byte>&>(c);
            acc.insert(acc.end(), bytes.begin(), bytes.end());
          }
          return acc;
        });
    // result = all contributions concatenated; pick chunk `local_rank_`
    // out of each source's contribution.
    const std::size_t chunk_bytes = chunk * sizeof(T);
    const std::size_t row_bytes = in.size_bytes();
    for (int src = 0; src < raw_size(); ++src) {
      std::span<const std::byte> piece(
          result.data() + src * row_bytes + local_rank_ * chunk_bytes,
          chunk_bytes);
      from_bytes<T>(piece, out.subspan(src * chunk, chunk));
    }
  }

  /// MPI_Reduce_scatter (equal block sizes): element-wise reduce, then
  /// scatter block r to rank r.  `in` has nranks * out.size() elements.
  template <typename T>
  void reduce_scatter(std::span<const T> in, std::span<T> out, Op op) const {
    std::vector<T> reduced(in.size());
    allreduce(in, std::span<T>(reduced), op);
    const std::size_t chunk = out.size();
    std::copy_n(reduced.begin() + local_rank_ * chunk, chunk, out.begin());
  }

  /// MPI_Scan: inclusive prefix reduction over ranks 0..me.
  template <typename T>
  void scan(std::span<const T> in, std::span<T> out, Op op) const {
    std::vector<T> all(in.size() * raw_size());
    allgather(in, std::span<T>(all));
    std::copy_n(all.begin(), in.size(), out.begin());
    for (int r = 1; r <= local_rank_; ++r) {
      for (std::size_t i = 0; i < in.size(); ++i) {
        out[i] = combine_one(out[i], all[r * in.size() + i], op);
      }
    }
  }

  /// MPI_Comm_split.  Collective; ranks passing color < 0 (MPI_UNDEFINED)
  /// receive an invalid Comm.  The new communicator's local->global mapping
  /// row is registered with the context (paper Table II) so the framework
  /// can translate solver-proposed rc values back to global ranks.
  [[nodiscard]] Comm split(rt::RuntimeContext& ctx, int color, int key) const;

 private:
  /// Global (world) rank of this member — the identity the chaos layer and
  /// mailboxes are keyed by.
  [[nodiscard]] int global_rank() const {
    return shared_->members[local_rank_];
  }

  /// The blocking receive body; `reserved_seq` >= 0 replays a wildcard
  /// decision ordinal reserved at irecv posting time.
  template <typename T>
  Status recv_impl(std::span<T> out, int src, int tag,
                   int reserved_seq) const {
    // A span, not an instant: a recv can block (and a blocked recv next to
    // a chaos_drop on the sender's track is the story the trace tells).
    obs::ObsSpan span(obs::Cat::kMpi, "recv", "src", src);
    shared_->world->chaos_call(global_rank(), /*collective=*/false);
    Message msg = shared_->world->recv_message(
        global_rank(), src,
        src == kAnySource ? kAnySource : shared_->members[src], shared_->uid,
        tag, reserved_seq);
    detail::note_recv_done(msg.payload.size());
    from_bytes<T>(msg.payload, out);
    return {msg.src, msg.tag, msg.payload.size()};
  }

  template <typename T>
  static T combine_one(T a, T b, Op op) {
    switch (op) {
      case Op::kSum: return a + b;
      case Op::kProd: return a * b;
      case Op::kMin: return a < b ? a : b;
      case Op::kMax: return a > b ? a : b;
    }
    return a;
  }

  /// `what` is the MPI collective's name, recorded as the enter-exit trace
  /// span on this rank's track (must be a string literal).
  std::vector<std::byte> run_collective(const char* what,
                                        std::vector<std::byte> contribution,
                                        const CollectiveSlot::Combine&) const;

  std::shared_ptr<CommShared> shared_;
  int local_rank_ = -1;
  /// Index of this communicator in the context's per-run creation order
  /// (-1 for the world communicator).
  int ctx_comm_index_ = -1;
};

/// Builds the world communicator view for `rank` over `world`.
[[nodiscard]] Comm make_world_comm(std::shared_ptr<CommShared> shared,
                                   int rank);
/// Builds the shared world-communicator state for a job of `world`.
[[nodiscard]] std::shared_ptr<CommShared> make_world_shared(World& world);

}  // namespace compi::minimpi
