#include "minimpi/comm.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>

#include "obs/metrics.h"

namespace compi::minimpi {

namespace detail {

void note_send(int dest_local, std::size_t bytes) {
  static obs::Counter& sends = obs::registry().counter(
      "compi_mpi_sends_total", "Point-to-point messages sent");
  static obs::Counter& send_bytes = obs::registry().counter(
      "compi_mpi_send_bytes_total", "Point-to-point payload bytes sent");
  sends.inc();
  send_bytes.inc(static_cast<std::int64_t>(bytes));
  obs::instant(obs::Cat::kMpi, "send", "dest", dest_local);
}

void note_recv_done(std::size_t bytes) {
  static obs::Counter& recvs = obs::registry().counter(
      "compi_mpi_recvs_total", "Point-to-point messages received");
  static obs::Counter& recv_bytes = obs::registry().counter(
      "compi_mpi_recv_bytes_total", "Point-to-point payload bytes received");
  recvs.inc();
  recv_bytes.inc(static_cast<std::int64_t>(bytes));
}

}  // namespace detail

sym::SymInt Comm::comm_rank(rt::RuntimeContext& ctx) const {
  if (shared_->is_world) return ctx.mark_world_rank(local_rank_);
  return ctx.mark_local_rank(ctx_comm_index_, local_rank_, raw_size());
}

sym::SymInt Comm::comm_size(rt::RuntimeContext& ctx) const {
  if (shared_->is_world) return ctx.mark_world_size(raw_size());
  return sym::SymInt(raw_size());
}

void Comm::barrier() const {
  run_collective("barrier", {},
                 [](std::vector<std::any>&) { return std::any{}; });
}

std::vector<std::byte> Comm::run_collective(
    const char* what, std::vector<std::byte> contribution,
    const CollectiveSlot::Combine& combine) const {
  // Enter-to-exit span: a rank stuck waiting for a straggler shows up as a
  // long collective bar on its track, lined up against the others'.
  obs::ObsSpan span(obs::Cat::kCollective, what, "rank", local_rank_);
  shared_->world->chaos_call(global_rank(), /*collective=*/true);
  std::any result =
      shared_->slot->run(*shared_->world, local_rank_, global_rank(),
                         std::move(contribution), combine);
  if (auto* bytes = std::any_cast<std::vector<std::byte>>(&result)) {
    return std::move(*bytes);
  }
  return {};
}

namespace {
struct SplitContribution {
  int color = 0;
  int key = 0;
};
/// One new communicator per color group; shared pointers indexed by the
/// contributing local rank (null for MPI_UNDEFINED colors).
using SplitResult = std::vector<std::shared_ptr<CommShared>>;
}  // namespace

Comm Comm::split(rt::RuntimeContext& ctx, int color, int key) const {
  obs::ObsSpan span(obs::Cat::kCollective, "split", "color", color);
  World& world = *shared_->world;
  world.chaos_call(global_rank(), /*collective=*/true);
  std::any result = shared_->slot->run(
      world, local_rank_, global_rank(), SplitContribution{color, key},
      [this, &world](std::vector<std::any>& contribs) {
        // Group members by color, ordered within a group by (key, rank) —
        // the MPI_Comm_split ordering rule.
        std::map<int, std::vector<std::pair<int, int>>> groups;  // color -> (key, local)
        for (std::size_t local = 0; local < contribs.size(); ++local) {
          const auto& c = std::any_cast<SplitContribution&>(contribs[local]);
          if (c.color < 0) continue;  // MPI_UNDEFINED
          groups[c.color].emplace_back(c.key, static_cast<int>(local));
        }
        SplitResult out(contribs.size());
        for (auto& [col, entries] : groups) {
          std::sort(entries.begin(), entries.end());
          auto sh = std::make_shared<CommShared>();
          sh->world = &world;
          sh->uid = world.next_comm_uid();
          sh->is_world = false;
          sh->members.reserve(entries.size());
          for (const auto& [k, local] : entries) {
            sh->members.push_back(shared_->members[local]);
          }
          sh->slot = std::make_unique<CollectiveSlot>(
              static_cast<int>(entries.size()));
          for (const auto& [k, local] : entries) out[local] = sh;
        }
        return std::any(std::move(out));
      });

  auto& shares = std::any_cast<SplitResult&>(result);
  std::shared_ptr<CommShared> mine = shares[local_rank_];
  if (!mine) return Comm{};  // this rank passed MPI_UNDEFINED

  const auto it =
      std::find(mine->members.begin(), mine->members.end(),
                shared_->members[local_rank_]);
  const int new_local = static_cast<int>(it - mine->members.begin());
  // Register the local->global mapping row (paper Table II) under this
  // run's communicator-creation order.
  const int comm_index = ctx.register_comm(mine->members);
  return Comm{std::move(mine), new_local, comm_index};
}

std::shared_ptr<CommShared> make_world_shared(World& world) {
  auto sh = std::make_shared<CommShared>();
  sh->world = &world;
  sh->uid = 0;
  sh->is_world = true;
  sh->members.resize(world.size());
  for (int i = 0; i < world.size(); ++i) sh->members[i] = i;
  sh->slot = std::make_unique<CollectiveSlot>(world.size());
  return sh;
}

Comm make_world_comm(std::shared_ptr<CommShared> shared, int rank) {
  return Comm{std::move(shared), rank, -1};
}

}  // namespace compi::minimpi
