#include "minimpi/fault_plan.h"

#include <string>
#include <thread>

#include "minimpi/world.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace compi::minimpi {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ChaosEngine::ChaosEngine(const FaultPlan& plan, int nprocs)
    : plan_(plan),
      calls_(static_cast<std::size_t>(nprocs)),
      collectives_(static_cast<std::size_t>(nprocs)),
      sends_(static_cast<std::size_t>(nprocs)) {}

double ChaosEngine::hash01(std::uint64_t stream, std::uint64_t n) const {
  const std::uint64_t h =
      splitmix64(plan_.seed ^ splitmix64(stream) ^ splitmix64(n * 0x51ed2701ULL));
  // 53 high bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool ChaosEngine::should_drop(int src_global) {
  if (plan_.drop_rate <= 0.0) return false;
  const std::int64_t n =
      sends_[static_cast<std::size_t>(src_global)].fetch_add(
          1, std::memory_order_relaxed);
  return hash01(0xd309 + static_cast<std::uint64_t>(src_global),
                static_cast<std::uint64_t>(n)) < plan_.drop_rate;
}

std::chrono::milliseconds ChaosEngine::next_delay(int src_global) {
  if (plan_.delay_rate <= 0.0) return std::chrono::milliseconds{0};
  // Note: shares the send counter stream logically but must not consume
  // should_drop's sequence — use the call counter snapshot instead.
  const std::int64_t n =
      sends_[static_cast<std::size_t>(src_global)].load(
          std::memory_order_relaxed);
  const bool hit = hash01(0xde1a + static_cast<std::uint64_t>(src_global),
                          static_cast<std::uint64_t>(n)) < plan_.delay_rate;
  return hit ? plan_.delay : std::chrono::milliseconds{0};
}

void ChaosEngine::on_mpi_call(World& world, int global_rank, bool collective) {
  const auto rank = static_cast<std::size_t>(global_rank);
  const std::int64_t call =
      calls_[rank].fetch_add(1, std::memory_order_relaxed) + 1;
  if (global_rank == plan_.crash_rank && call == plan_.crash_at_call) {
    static obs::Counter& crashes = obs::registry().counter(
        "compi_chaos_crashes_total", "Crash faults injected by chaos plans");
    crashes.inc();
    // Lands on the victim rank's track: this is the event the trace-level
    // fault-injection integration test looks for.
    obs::instant(obs::Cat::kChaos, "chaos_crash", "call", call);
    throw InjectedFault(
        plan_.crash_outcome,
        "injected " + std::string(rt::to_string(plan_.crash_outcome)) +
            " on rank " + std::to_string(global_rank) + " at MPI call " +
            std::to_string(call));
  }
  if (collective && global_rank == plan_.stall_rank) {
    const std::int64_t coll =
        collectives_[rank].fetch_add(1, std::memory_order_relaxed) + 1;
    if (coll == plan_.stall_at_collective) {
      static obs::Counter& stalls = obs::registry().counter(
          "compi_chaos_stalls_total", "Stall faults injected by chaos plans");
      stalls.inc();
      obs::instant(obs::Cat::kChaos, "chaos_stall", "collective", coll);
      // Never arrive: hold the rank here until the deadline watchdog (or a
      // peer's fault) unwinds the job.  check_alive raises JobAborted.
      for (;;) {
        world.check_alive();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  }
}

}  // namespace compi::minimpi
