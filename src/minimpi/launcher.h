// MPMD job launcher: the in-process `mpiexec` (paper §III-D).
//
// The paper launches `mpiexec -n i ex2 : -n 1 ex1 : -n s-i-1 ex2` so that
// exactly one process — the focus, at a chosen global rank — runs the
// heavily instrumented binary while the rest run the lightly instrumented
// one.  Here the two binaries are the two RuntimeContext modes, and the
// launch spec's (nprocs, focus) plays the (s, i) role.  Each rank is a
// thread; target faults become per-rank outcomes; a faulting rank aborts
// the job, unwinding peers blocked in MPI calls (as mpiexec kills them).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "minimpi/comm.h"
#include "minimpi/fault_plan.h"
#include "runtime/context.h"
#include "runtime/test_log.h"

namespace compi::minimpi {

/// The SPMD target entry point: every rank runs this with its own context
/// and world-communicator view.
using Program = std::function<void(rt::RuntimeContext&, Comm&)>;

struct LaunchSpec {
  Program program;
  int nprocs = 1;
  /// Global rank of the focus process (runs heavy instrumentation).
  /// -1 launches every rank light (pure coverage runs, e.g. random testing).
  int focus = 0;
  /// One-way instrumentation ablation (§IV-B): every rank runs heavy.
  bool one_way = false;
  rt::VarRegistry* registry = nullptr;
  const solver::Assignment* inputs = nullptr;
  std::uint64_t rng_seed = 1;
  std::int64_t step_budget = 2'000'000;
  bool reduction = true;
  bool mark_mpi_vars = true;
  /// Per-test wall-clock timeout (paper §V allows a user-specified timeout).
  std::chrono::milliseconds timeout{30'000};
  /// Environment-level fault injection (disabled by default).
  FaultPlan chaos;
  /// Trace-track offset: rank r records on track `track_base + r + 1`
  /// (track_base itself is the owning driver/worker's track).  Parallel
  /// campaign workers use disjoint bases so concurrent jobs don't
  /// interleave on the same trace rows.
  int track_base = 0;
  /// Routes every receive through the match scheduler: wildcard decisions
  /// are recorded (RunResult::match_trace), `match_plan` choices are
  /// replayed, and deadlock / orphan-message detection become exact.  Off
  /// by default so the default pipeline's behavior is byte-identical.
  bool match_schedule = false;
  /// Prescribed wildcard choices to replay (used when match_schedule).
  MatchPlan match_plan;
};

struct RankResult {
  rt::Outcome outcome = rt::Outcome::kOk;
  std::string message;
  rt::TestLog log;
};

struct RunResult {
  std::vector<RankResult> ranks;
  int focus = 0;
  double wall_seconds = 0.0;
  /// Wildcard decisions taken this run, in global match order (only when
  /// the spec enabled match_schedule).
  std::vector<MatchRecord> match_trace;
  /// True when a prescribed match choice had to be abandoned mid-replay
  /// (the observed prefix diverged from the plan's source run).
  bool match_diverged = false;

  /// The job-level outcome: the first real fault across ranks, else kOk.
  [[nodiscard]] rt::Outcome job_outcome() const;
  [[nodiscard]] std::string job_message() const;
  /// Log of the focus rank (valid when the spec had focus >= 0).
  [[nodiscard]] const rt::TestLog& focus_log() const;
  /// Branch coverage across ALL ranks (the "all recorders" half of the
  /// framework, §III).
  [[nodiscard]] rt::CoverageBitmap merged_coverage() const;
};

/// Runs one test: nprocs rank-threads executing spec.program to completion
/// (or fault / abort / timeout).  Never throws target faults — they are
/// captured per rank.
[[nodiscard]] RunResult launch(const LaunchSpec& spec,
                               const rt::BranchTable& table);

}  // namespace compi::minimpi
