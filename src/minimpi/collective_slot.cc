#include "minimpi/collective_slot.h"

#include "minimpi/match_scheduler.h"
#include "obs/metrics.h"

namespace compi::minimpi {

void CollectiveSlot::wait(World& world, int global_rank,
                          std::unique_lock<std::mutex>& lock,
                          const std::function<bool()>& pred) {
  MatchScheduler* sched = world.match_scheduler();
  bool blocked = false;
  while (!pred()) {
    world.check_alive();
    if (sched != nullptr) {
      // Mark blocked only once the predicate is known false; a member that
      // sails through never registers with the deadlock detector.
      if (!blocked) {
        blocked = true;
        sched->block_collective(global_rank);  // throws on the victim
      } else {
        sched->poll(global_rank);
      }
    }
    // Bounded quantum: a job abort() only notifies mailbox waiters, so slot
    // waiters poll the abort flag at a short interval instead of sleeping
    // all the way to the job deadline.
    const auto quantum =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
    cv_.wait_until(lock, std::min(quantum, world.deadline()));
    world.check_alive();
  }
  if (sched != nullptr && blocked) sched->unblock_collective(global_rank);
}

std::any CollectiveSlot::run(World& world, int local_rank, int global_rank,
                             std::any contribution, const Combine& combine) {
  static obs::Counter& collectives = obs::registry().counter(
      "compi_mpi_collectives_total", "Collective operations entered (per rank)");
  collectives.inc();
  std::unique_lock lock(mu_);
  // Wait for the previous round to fully drain before joining a new one.
  wait(world, global_rank, lock, [&] { return !draining_; });

  contributions_[local_rank] = std::move(contribution);
  if (++arrived_ == size_) {
    result_ = combine(contributions_);
    for (std::any& c : contributions_) c.reset();
    arrived_ = 0;
    departed_ = 0;
    draining_ = true;
    ++generation_;
    cv_.notify_all();
  } else {
    const std::uint64_t my_gen = generation_;
    wait(world, global_rank, lock, [&] { return generation_ != my_gen; });
  }

  std::any out = result_;
  if (++departed_ == size_) {
    result_.reset();
    draining_ = false;
    cv_.notify_all();
  }
  return out;
}

}  // namespace compi::minimpi
