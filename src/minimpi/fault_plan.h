// Deterministic fault injection for MiniMPI jobs (the "chaos layer").
//
// Real mpiexec jobs absorb environment-level failures the target never
// commits: killed ranks, lost or delayed messages, collectives that never
// complete because one member stalled.  A FaultPlan injects exactly those
// events into one MiniMPI job, seeded and deterministic, so the launcher's
// watchdog, peer-unwind (kAborted) and job-outcome aggregation can be
// exercised — and campaigns can be measured under noise (bench_bugs).
//
// Injection points are the MPI entry calls of each rank: the ChaosEngine
// counts them per rank and decides, from a stateless hash of (seed, rank,
// counter), whether to crash the rank, drop or delay an outgoing message,
// or stall a collective.  Per-rank counters make every decision independent
// of thread interleaving: the same plan over the same program always
// injects the same faults.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "runtime/faults.h"

namespace compi::minimpi {

class World;

/// What to inject into one launched job.  Default-constructed = no chaos.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Probability that an outgoing point-to-point message is silently lost
  /// (the receiver blocks; the job's wall-clock watchdog must catch it).
  double drop_rate = 0.0;

  /// Probability that an outgoing message is delayed by `delay` first.
  double delay_rate = 0.0;
  std::chrono::milliseconds delay{5};

  /// Crash this global rank at its `crash_at_call`-th MPI call (1-based),
  /// raising `crash_outcome` as if the target itself had faulted there.
  /// -1 = no crash.
  int crash_rank = -1;
  std::int64_t crash_at_call = 1;
  rt::Outcome crash_outcome = rt::Outcome::kSegfault;

  /// Stall this global rank at its `stall_at_collective`-th collective
  /// (1-based): the rank never deposits its contribution, so the whole job
  /// must be unwound by the deadline watchdog.  -1 = no stall.
  int stall_rank = -1;
  std::int64_t stall_at_collective = 1;

  [[nodiscard]] bool enabled() const {
    return drop_rate > 0.0 || delay_rate > 0.0 || crash_rank >= 0 ||
           stall_rank >= 0;
  }
};

/// Thrown on the victim rank when a crash fires.  A SimulatedFault, so the
/// launcher handles it exactly like a target fault: the victim reports the
/// injected outcome and the job aborts, unwinding peers to kAborted.
class InjectedFault : public rt::SimulatedFault {
 public:
  InjectedFault(rt::Outcome outcome, const std::string& what)
      : rt::SimulatedFault(outcome, what) {}
};

/// Per-job chaos state: one engine per World, created from the launch
/// spec's FaultPlan.  All decision functions are thread-safe and
/// deterministic per rank.
class ChaosEngine {
 public:
  ChaosEngine(const FaultPlan& plan, int nprocs);

  /// Called at every MPI entry point of `global_rank`.  May throw
  /// InjectedFault (crash) or block until the job dies (collective stall —
  /// exits via JobAborted from World::check_alive).
  void on_mpi_call(World& world, int global_rank, bool collective);

  /// Whether the next outgoing message of `src_global` is dropped.
  [[nodiscard]] bool should_drop(int src_global);

  /// Delay to apply to the next outgoing message of `src_global`
  /// (zero = deliver immediately).
  [[nodiscard]] std::chrono::milliseconds next_delay(int src_global);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] double hash01(std::uint64_t stream, std::uint64_t n) const;

  FaultPlan plan_;
  std::vector<std::atomic<std::int64_t>> calls_;
  std::vector<std::atomic<std::int64_t>> collectives_;
  std::vector<std::atomic<std::int64_t>> sends_;
};

}  // namespace compi::minimpi
