// A reusable rendezvous for collective operations on one communicator.
//
// Every collective in MiniMPI follows the same shape: all members deposit a
// contribution, the last arriver combines them, everyone retrieves the
// result.  Because MPI requires all members to call collectives in the same
// order, a single count-based slot per communicator is sufficient; it is
// reusable (phase/drain bookkeeping) and abort-aware.
#pragma once

#include <any>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "minimpi/world.h"

namespace compi::minimpi {

class CollectiveSlot {
 public:
  explicit CollectiveSlot(int size) : size_(size), contributions_(size) {}

  using Combine = std::function<std::any(std::vector<std::any>&)>;

  /// Deposits `contribution` for `local_rank`; the last arriving member
  /// runs `combine` over all contributions (indexed by local rank); every
  /// member receives a copy of the combined std::any.  Raises JobAborted on
  /// job abort / deadline.  `global_rank` identifies the caller to the
  /// match scheduler (blocked-state bookkeeping for exact deadlock
  /// detection); a waiter elected deadlock victim raises DeadlockDetected.
  std::any run(World& world, int local_rank, int global_rank,
               std::any contribution, const Combine& combine);

 private:
  void wait(World& world, int global_rank,
            std::unique_lock<std::mutex>& lock,
            const std::function<bool()>& pred);

  int size_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::any> contributions_;
  std::any result_;
  int arrived_ = 0;
  int departed_ = 0;
  bool draining_ = false;
  std::uint64_t generation_ = 0;
};

}  // namespace compi::minimpi
