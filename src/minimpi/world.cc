#include "minimpi/world.h"

namespace compi::minimpi {

World::World(int size, std::chrono::steady_clock::duration deadline)
    : size_(size), deadline_(std::chrono::steady_clock::now() + deadline) {
  mailboxes_.reserve(size);
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void World::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) {
    std::scoped_lock lock(mb->mu_);
    mb->cv_.notify_all();
  }
}

void World::check_alive() const {
  if (aborted() || past_deadline()) throw JobAborted{};
}

void Mailbox::push(Message msg) {
  {
    std::scoped_lock lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop_matching(World& world, int src, std::int64_t comm_uid,
                              int tag) {
  std::unique_lock lock(mu_);
  for (;;) {
    world.check_alive();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      const bool src_ok = src == kAnySource || it->src == src;
      const bool tag_ok = tag == kAnyTag || it->tag == tag;
      if (it->comm_uid == comm_uid && src_ok && tag_ok) {
        Message out = std::move(*it);
        queue_.erase(it);
        return out;
      }
    }
    cv_.wait_until(lock, world.deadline());
  }
}

}  // namespace compi::minimpi
