#include "minimpi/world.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "minimpi/match_scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace compi::minimpi {

namespace {
obs::Counter& drops_counter() {
  static obs::Counter& c = obs::registry().counter(
      "compi_chaos_drops_total", "Messages dropped by chaos injection");
  return c;
}
obs::Counter& delays_counter() {
  static obs::Counter& c = obs::registry().counter(
      "compi_chaos_delays_total", "Messages delayed by chaos injection");
  return c;
}
}  // namespace

World::World(int size, std::chrono::steady_clock::duration deadline,
             const FaultPlan& chaos)
    : size_(size), deadline_(std::chrono::steady_clock::now() + deadline) {
  mailboxes_.reserve(size);
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  if (chaos.enabled()) chaos_ = std::make_unique<ChaosEngine>(chaos, size);
}

World::~World() = default;

void World::enable_match_scheduler(MatchPlan plan) {
  scheduler_ = std::make_unique<MatchScheduler>(*this, std::move(plan));
}

Message World::recv_message(int dest_global, int src_local, int src_global,
                            std::int64_t comm_uid, int tag,
                            int reserved_seq) {
  if (scheduler_) {
    return scheduler_->recv(dest_global, src_local, src_global, comm_uid,
                            tag, reserved_seq);
  }
  return mailbox(dest_global).pop_matching(*this, src_local, comm_uid, tag);
}

std::optional<Message> World::post_irecv(int dest_global, int src_local,
                                         std::int64_t comm_uid, int tag,
                                         int& reserved_seq) {
  reserved_seq = -1;
  if (scheduler_) {
    return scheduler_->post_irecv(dest_global, src_local, comm_uid, tag,
                                  reserved_seq);
  }
  return mailbox(dest_global).try_pop(src_local, comm_uid, tag);
}

void World::post(int src_global, int dest_global, Message msg) {
  if (chaos_) {
    if (chaos_->should_drop(src_global)) {
      drops_counter().inc();
      obs::instant(obs::Cat::kChaos, "chaos_drop", "dest", dest_global);
      return;
    }
    const auto delay = chaos_->next_delay(src_global);
    if (delay.count() > 0) {
      delays_counter().inc();
      obs::ObsSpan span(obs::Cat::kChaos, "chaos_delay", "ms",
                        delay.count());
      // Bounded by the job deadline so a delayed sender can never outlive
      // the watchdog.
      const auto wake = std::min(std::chrono::steady_clock::now() + delay,
                                 deadline_);
      std::this_thread::sleep_until(wake);
      check_alive();
    }
  }
  mailbox(dest_global).push(std::move(msg));
  // The sender posted under the mailbox mutex *before* this notification,
  // so a scheduler checker that saw every rank blocked also sees this
  // message when it scans (the no-false-deadlock argument).
  if (scheduler_) scheduler_->on_message();
}

void World::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) {
    std::scoped_lock lock(mb->mu_);
    mb->cv_.notify_all();
  }
  if (scheduler_) scheduler_->notify_abort();
}

void World::check_alive() const {
  if (aborted() || past_deadline()) throw JobAborted{};
}

void Mailbox::push(Message msg) {
  {
    std::scoped_lock lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop_matching(World& world, int src, std::int64_t comm_uid,
                              int tag) {
  std::unique_lock lock(mu_);
  for (;;) {
    world.check_alive();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, src, comm_uid, tag)) {
        Message out = std::move(*it);
        queue_.erase(it);
        return out;
      }
    }
    cv_.wait_until(lock, world.deadline());
  }
}

std::optional<Message> Mailbox::try_pop(int src, std::int64_t comm_uid,
                                        int tag) {
  std::scoped_lock lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, src, comm_uid, tag)) {
      Message out = std::move(*it);
      queue_.erase(it);
      return out;
    }
  }
  return std::nullopt;
}

bool Mailbox::has_matching(int src, std::int64_t comm_uid, int tag) {
  std::scoped_lock lock(mu_);
  for (const Message& m : queue_) {
    if (matches(m, src, comm_uid, tag)) return true;
  }
  return false;
}

std::vector<int> Mailbox::feasible_sources(std::int64_t comm_uid, int tag) {
  std::vector<int> out;
  {
    std::scoped_lock lock(mu_);
    for (const Message& m : queue_) {
      if (matches(m, kAnySource, comm_uid, tag)) out.push_back(m.src);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::deque<Message> Mailbox::drain() {
  std::scoped_lock lock(mu_);
  return std::exchange(queue_, {});
}

}  // namespace compi::minimpi
