#include "minimpi/world.h"

#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace compi::minimpi {

namespace {
obs::Counter& drops_counter() {
  static obs::Counter& c = obs::registry().counter(
      "compi_chaos_drops_total", "Messages dropped by chaos injection");
  return c;
}
obs::Counter& delays_counter() {
  static obs::Counter& c = obs::registry().counter(
      "compi_chaos_delays_total", "Messages delayed by chaos injection");
  return c;
}
}  // namespace

World::World(int size, std::chrono::steady_clock::duration deadline,
             const FaultPlan& chaos)
    : size_(size), deadline_(std::chrono::steady_clock::now() + deadline) {
  mailboxes_.reserve(size);
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  if (chaos.enabled()) chaos_ = std::make_unique<ChaosEngine>(chaos, size);
}

void World::post(int src_global, int dest_global, Message msg) {
  if (chaos_) {
    if (chaos_->should_drop(src_global)) {
      drops_counter().inc();
      obs::instant(obs::Cat::kChaos, "chaos_drop", "dest", dest_global);
      return;
    }
    const auto delay = chaos_->next_delay(src_global);
    if (delay.count() > 0) {
      delays_counter().inc();
      obs::ObsSpan span(obs::Cat::kChaos, "chaos_delay", "ms",
                        delay.count());
      // Bounded by the job deadline so a delayed sender can never outlive
      // the watchdog.
      const auto wake = std::min(std::chrono::steady_clock::now() + delay,
                                 deadline_);
      std::this_thread::sleep_until(wake);
      check_alive();
    }
  }
  mailbox(dest_global).push(std::move(msg));
}

void World::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) {
    std::scoped_lock lock(mb->mu_);
    mb->cv_.notify_all();
  }
}

void World::check_alive() const {
  if (aborted() || past_deadline()) throw JobAborted{};
}

void Mailbox::push(Message msg) {
  {
    std::scoped_lock lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop_matching(World& world, int src, std::int64_t comm_uid,
                              int tag) {
  std::unique_lock lock(mu_);
  for (;;) {
    world.check_alive();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      const bool src_ok = src == kAnySource || it->src == src;
      const bool tag_ok = tag == kAnyTag || it->tag == tag;
      if (it->comm_uid == comm_uid && src_ok && tag_ok) {
        Message out = std::move(*it);
        queue_.erase(it);
        return out;
      }
    }
    cv_.wait_until(lock, world.deadline());
  }
}

}  // namespace compi::minimpi
