#include "minimpi/match_scheduler.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/faults.h"

namespace compi::minimpi {

namespace {

/// How long the wait loops sleep between liveness checks (the same quantum
/// CollectiveSlot uses: abort() notifications can race a waiter going to
/// sleep, so nothing parks for longer than this).
constexpr std::chrono::milliseconds kWaitQuantum{20};

/// How long an all-blocked condition involving collective waiters must hold
/// before it is declared a deadlock.  Receive-blocked ranks are exact (the
/// checker re-scans their mailboxes), but a rank woken out of a finished
/// collective round stays marked blocked for up to one wake latency, so the
/// condition is confirmed across a window instead of declared instantly.
constexpr std::chrono::milliseconds kCollectiveConfirmWindow{60};

obs::Counter& match_counter() {
  static obs::Counter& c = obs::registry().counter(
      "compi_match_choices_total", "Wildcard-receive match decisions taken");
  return c;
}

obs::Counter& deadlock_counter() {
  static obs::Counter& c = obs::registry().counter(
      "compi_deadlocks_total", "Exact deadlocks proven by the match scheduler");
  return c;
}

obs::Counter& divergence_counter() {
  static obs::Counter& c = obs::registry().counter(
      "compi_match_divergences_total",
      "Replay prescriptions abandoned because the prefix diverged");
  return c;
}

}  // namespace

MatchScheduler::MatchScheduler(World& world, MatchPlan plan)
    : world_(world),
      plan_(std::move(plan)),
      ranks_(static_cast<std::size_t>(world.size())),
      next_seq_(static_cast<std::size_t>(world.size()), 0) {}

std::optional<int> MatchScheduler::planned_choice(int rank, int seq) const {
  for (const MatchDecision& d : plan_) {
    if (d.rank == rank && d.seq == seq) return d.src;
  }
  return std::nullopt;
}

Message MatchScheduler::recv(int dest_global, int src_local, int src_global,
                             std::int64_t comm_uid, int tag,
                             int reserved_seq) {
  std::unique_lock lock(mu_);
  RankState& rs = ranks_[dest_global];
  rs.src_local = src_local;
  rs.src_global = src_global;
  rs.comm_uid = comm_uid;
  rs.tag = tag;
  rs.forced.reset();
  int seq = reserved_seq;
  if (src_local == kAnySource) {
    if (seq < 0) seq = next_seq_[dest_global]++;
    rs.forced = planned_choice(dest_global, seq);
  }
  bool blocked = false;
  for (;;) {
    Mailbox& mb = world_.mailbox(dest_global);
    if (src_local != kAnySource) {
      if (auto msg = mb.try_pop(src_local, comm_uid, tag)) {
        rs.state = State::kRunning;
        ++epoch_;
        return std::move(*msg);
      }
    } else {
      // One thread per rank and every receive funnels through mu_, so this
      // scan-then-pop over the rank's own mailbox cannot lose a race.
      const std::vector<int> feasible = mb.feasible_sources(comm_uid, tag);
      int choice = -1;
      if (rs.forced) {
        if (std::binary_search(feasible.begin(), feasible.end(),
                               *rs.forced)) {
          choice = *rs.forced;
        }
      } else if (!feasible.empty()) {
        choice = feasible.front();
      }
      if (choice >= 0) {
        auto msg = mb.try_pop(choice, comm_uid, tag);
        trace_.push_back({dest_global, seq, choice, comm_uid, tag, feasible});
        match_counter().inc();
        obs::instant(obs::Cat::kMatch, "match_choice", "src", choice);
        rs.state = State::kRunning;
        ++epoch_;
        return std::move(*msg);
      }
    }
    if (!blocked) {
      rs.state = State::kBlockedRecv;
      ++epoch_;
      blocked = true;
      check_deadlock_locked();
    }
    wait_step(lock, dest_global);
  }
}

std::optional<Message> MatchScheduler::post_irecv(int dest_global,
                                                  int src_local,
                                                  std::int64_t comm_uid,
                                                  int tag, int& reserved_seq) {
  std::unique_lock lock(mu_);
  reserved_seq = -1;
  Mailbox& mb = world_.mailbox(dest_global);
  if (src_local != kAnySource) {
    return mb.try_pop(src_local, comm_uid, tag);
  }
  // The decision ordinal is drawn at posting time, so wildcard matching
  // order follows irecv posting order even when wait() comes much later.
  const int seq = next_seq_[dest_global]++;
  const std::optional<int> forced = planned_choice(dest_global, seq);
  const std::vector<int> feasible = mb.feasible_sources(comm_uid, tag);
  int choice = -1;
  if (forced) {
    if (std::binary_search(feasible.begin(), feasible.end(), *forced)) {
      choice = *forced;
    }
  } else if (!feasible.empty()) {
    choice = feasible.front();
  }
  if (choice < 0) {
    reserved_seq = seq;
    return std::nullopt;
  }
  auto msg = mb.try_pop(choice, comm_uid, tag);
  trace_.push_back({dest_global, seq, choice, comm_uid, tag, feasible});
  match_counter().inc();
  obs::instant(obs::Cat::kMatch, "match_choice", "src", choice);
  return msg;
}

void MatchScheduler::block_collective(int global_rank) {
  std::unique_lock lock(mu_);
  ranks_[global_rank].state = State::kBlockedCollective;
  ++epoch_;
  check_deadlock_locked();
  if (victim_ == global_rank) throw rt::DeadlockDetected(deadlock_msg_);
}

void MatchScheduler::unblock_collective(int global_rank) {
  std::scoped_lock lock(mu_);
  if (ranks_[global_rank].state == State::kBlockedCollective) {
    ranks_[global_rank].state = State::kRunning;
    ++epoch_;
  }
}

void MatchScheduler::poll(int global_rank) {
  std::unique_lock lock(mu_);
  if (pending_) check_deadlock_locked();
  if (victim_ == global_rank) throw rt::DeadlockDetected(deadlock_msg_);
}

void MatchScheduler::mark_done(int global_rank) {
  std::scoped_lock lock(mu_);
  ranks_[global_rank].state = State::kDone;
  ++epoch_;
  check_deadlock_locked();
  cv_.notify_all();
}

void MatchScheduler::on_message() {
  std::scoped_lock lock(mu_);
  cv_.notify_all();
}

void MatchScheduler::notify_abort() {
  std::scoped_lock lock(mu_);
  cv_.notify_all();
}

std::vector<MatchRecord> MatchScheduler::take_trace() {
  std::scoped_lock lock(mu_);
  return std::move(trace_);
}

bool MatchScheduler::diverged() const {
  std::scoped_lock lock(mu_);
  return diverged_;
}

bool MatchScheduler::recv_feasible(int rank, const RankState& rs,
                                   bool honor_forced) {
  Mailbox& mb = world_.mailbox(rank);
  if (rs.src_local != kAnySource) {
    return mb.has_matching(rs.src_local, rs.comm_uid, rs.tag);
  }
  if (honor_forced && rs.forced) {
    return mb.has_matching(*rs.forced, rs.comm_uid, rs.tag);
  }
  return mb.has_matching(kAnySource, rs.comm_uid, rs.tag);
}

void MatchScheduler::check_deadlock_locked() {
  if (victim_ >= 0 || world_.aborted()) return;
  const int n = static_cast<int>(ranks_.size());
  bool any_blocked = false;
  bool any_collective = false;
  for (const RankState& rs : ranks_) {
    if (rs.state == State::kRunning) {
      pending_ = false;
      return;
    }
    if (rs.state == State::kBlockedCollective) any_collective = true;
    if (rs.state != State::kDone) any_blocked = true;
  }
  if (!any_blocked) {
    pending_ = false;
    return;
  }
  for (int r = 0; r < n; ++r) {
    if (ranks_[r].state == State::kBlockedRecv &&
        recv_feasible(r, ranks_[r], /*honor_forced=*/true)) {
      pending_ = false;
      return;  // that rank will match on its next rescan
    }
  }
  // Replay divergence: a prescribed source can no longer arrive (everyone
  // is blocked), but other messages are feasible — drop the prescription
  // and let the receive take the default instead of false-deadlocking.
  for (int r = 0; r < n; ++r) {
    RankState& rs = ranks_[r];
    if (rs.state == State::kBlockedRecv && rs.forced &&
        recv_feasible(r, rs, /*honor_forced=*/false)) {
      rs.forced.reset();
      diverged_ = true;
      divergence_counter().inc();
      pending_ = false;
      cv_.notify_all();
      return;
    }
  }
  if (!any_collective) {
    declare_deadlock_locked();
    return;
  }
  // Collective waiters involved: confirm across a window (see header).
  const auto now = std::chrono::steady_clock::now();
  if (pending_ && pending_epoch_ == epoch_ && now >= pending_confirm_at_) {
    declare_deadlock_locked();
    return;
  }
  if (!pending_ || pending_epoch_ != epoch_) {
    pending_ = true;
    pending_epoch_ = epoch_;
    pending_confirm_at_ = now + kCollectiveConfirmWindow;
    cv_.notify_all();  // keep at least the recv waiters re-checking
  }
}

void MatchScheduler::declare_deadlock_locked() {
  deadlock_msg_ = describe_deadlock_locked();
  victim_ = -1;
  for (int r = 0; r < static_cast<int>(ranks_.size()); ++r) {
    if (ranks_[r].state == State::kBlockedRecv) {
      victim_ = r;
      break;
    }
  }
  if (victim_ < 0) {
    for (int r = 0; r < static_cast<int>(ranks_.size()); ++r) {
      if (ranks_[r].state == State::kBlockedCollective) {
        victim_ = r;
        break;
      }
    }
  }
  pending_ = false;
  deadlock_counter().inc();
  obs::instant(obs::Cat::kMatch, "deadlock", "victim", victim_);
  cv_.notify_all();
}

std::string MatchScheduler::describe_deadlock_locked() {
  const int n = static_cast<int>(ranks_.size());
  std::ostringstream os;
  os << "deadlock:";
  bool first = true;
  for (int r = 0; r < n; ++r) {
    const RankState& rs = ranks_[r];
    if (rs.state == State::kDone) continue;
    if (!first) os << ',';
    first = false;
    if (rs.state == State::kBlockedCollective) {
      os << " rank " << r << " waits collective";
      continue;
    }
    os << " rank " << r << " waits recv(src=";
    if (rs.forced) {
      os << *rs.forced;
    } else if (rs.src_local == kAnySource) {
      os << "ANY";
    } else {
      os << rs.src_global;
    }
    os << ", tag=";
    if (rs.tag == kAnyTag) {
      os << '*';
    } else {
      os << rs.tag;
    }
    os << ')';
  }
  // Best-effort wait-for cycle over the specific-source edges.
  std::vector<int> succ(static_cast<std::size_t>(n), -1);
  for (int r = 0; r < n; ++r) {
    const RankState& rs = ranks_[r];
    if (rs.state == State::kBlockedRecv && rs.src_local != kAnySource &&
        rs.src_global >= 0) {
      succ[r] = rs.src_global;
    }
  }
  for (int start = 0; start < n; ++start) {
    if (succ[start] < 0) continue;
    std::vector<int> pos(static_cast<std::size_t>(n), -1);
    std::vector<int> path;
    int cur = start;
    while (cur >= 0 && cur < n && pos[cur] < 0) {
      pos[cur] = static_cast<int>(path.size());
      path.push_back(cur);
      cur = succ[cur];
    }
    if (cur >= 0 && cur < n && pos[cur] >= 0) {
      os << "; cycle:";
      for (std::size_t i = static_cast<std::size_t>(pos[cur]);
           i < path.size(); ++i) {
        os << ' ' << path[i] << "->";
      }
      os << cur;
      break;
    }
  }
  return os.str();
}

void MatchScheduler::wait_step(std::unique_lock<std::mutex>& lock,
                               int global_rank) {
  if (victim_ == global_rank) throw rt::DeadlockDetected(deadlock_msg_);
  if (pending_) check_deadlock_locked();
  if (victim_ == global_rank) throw rt::DeadlockDetected(deadlock_msg_);
  world_.check_alive();
  const auto quantum = std::chrono::steady_clock::now() + kWaitQuantum;
  cv_.wait_until(lock, std::min(quantum, world_.deadline()));
  world_.check_alive();
}

}  // namespace compi::minimpi
