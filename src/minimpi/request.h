// Non-blocking point-to-point: MPI_Isend / MPI_Irecv / MPI_Wait(all).
//
// MiniMPI sends are eager (buffered), so an Isend completes immediately;
// an Irecv defers the matching to wait().  As in MPI, the caller must keep
// the receive buffer alive until the request is waited on.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "minimpi/world.h"

namespace compi::minimpi {

/// Receive status (shared with the blocking API; see comm.h).
struct Status;

class Request {
 public:
  Request() = default;
  /// An already-complete request (Isend).
  static Request completed() {
    Request r;
    r.done_ = true;
    return r;
  }
  /// A deferred completion (Irecv): `complete` performs the blocking match.
  explicit Request(std::function<void()> complete)
      : complete_(std::move(complete)) {}

  [[nodiscard]] bool done() const { return done_; }

  /// Blocks until the operation completes (MPI_Wait).
  void wait() {
    if (!done_) {
      if (complete_) complete_();
      done_ = true;
    }
  }

 private:
  std::function<void()> complete_;
  bool done_ = false;
};

/// MPI_Waitall.
inline void wait_all(std::vector<Request>& requests) {
  for (Request& r : requests) r.wait();
}

}  // namespace compi::minimpi
