// Common MiniMPI types.
//
// MiniMPI is the MPI substrate of this reproduction: a deterministic,
// in-process MPI-1 subset where every rank is a thread.  It provides what
// COMPI consumes from a real MPI — ranks, communicator sizes, Comm_split
// with local->global rank mappings, point-to-point and the MPI-1
// collectives — plus job-abort semantics: when one rank faults, blocked
// peers are woken and unwound, as mpiexec would kill the job.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace compi::minimpi {

/// Reduction operators (MPI_Op subset used by the targets).
enum class Op : std::uint8_t { kSum, kProd, kMin, kMax };

/// Wildcard source / tag.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Thrown inside ranks blocked in MPI calls when the job aborts (a peer
/// faulted or the wall-clock deadline passed).  Not a target fault: the
/// launcher maps it to the "aborted with the job" rank status.
struct JobAborted {};

// ---- wildcard-receive decision vectors (match_scheduler.h) ----
// Defined here, next to kAnySource, so World can accept a plan without
// depending on the scheduler header.

/// One prescribed wildcard choice: the `seq`-th ANY_SOURCE receive posted
/// by (global) `rank` must consume a message from communicator-local
/// sender `src`.  A vector of these is a replayable interleaving.
struct MatchDecision {
  int rank = 0;
  int seq = 0;
  int src = 0;

  friend bool operator==(const MatchDecision&, const MatchDecision&) = default;
};

using MatchPlan = std::vector<MatchDecision>;

/// One wildcard decision as it was actually taken: the feasible sender set
/// observed at match time and the source chosen from it.  The trace of
/// these (in global match order) is what the driver enumerates alternative
/// interleavings from.
struct MatchRecord {
  int rank = 0;        // receiving rank (global)
  int seq = 0;         // per-rank ANY_SOURCE ordinal (posting order)
  int chosen_src = 0;  // communicator-local source consumed
  std::int64_t comm_uid = 0;
  int tag = kAnyTag;          // the receive's tag criterion
  std::vector<int> feasible;  // sorted communicator-local feasible sources
};

/// Serializes a span of trivially copyable values to bytes.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<std::byte> to_bytes(std::span<const T> data) {
  std::vector<std::byte> out(data.size_bytes());
  if (!data.empty()) std::memcpy(out.data(), data.data(), data.size_bytes());
  return out;
}

/// Deserializes bytes into a span of trivially copyable values.
template <typename T>
  requires std::is_trivially_copyable_v<T>
void from_bytes(std::span<const std::byte> bytes, std::span<T> out) {
  if (!out.empty()) std::memcpy(out.data(), bytes.data(), out.size_bytes());
}

}  // namespace compi::minimpi
