#include "minimpi/launcher.h"

#include <sstream>
#include <thread>

#include "minimpi/match_scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace compi::minimpi {

rt::Outcome RunResult::job_outcome() const {
  for (const RankResult& r : ranks) {
    if (rt::is_fault(r.outcome)) return r.outcome;
  }
  return rt::Outcome::kOk;
}

std::string RunResult::job_message() const {
  for (const RankResult& r : ranks) {
    if (rt::is_fault(r.outcome)) return r.message;
  }
  return {};
}

const rt::TestLog& RunResult::focus_log() const { return ranks[focus].log; }

rt::CoverageBitmap RunResult::merged_coverage() const {
  rt::CoverageBitmap merged;
  for (const RankResult& r : ranks) merged.merge(r.log.covered);
  return merged;
}

RunResult launch(const LaunchSpec& spec, const rt::BranchTable& table) {
  obs::ObsSpan launch_span(obs::Cat::kLaunch, "launch", "nprocs",
                           spec.nprocs);
  const auto t0 = std::chrono::steady_clock::now();
  World world(spec.nprocs, spec.timeout, spec.chaos);
  if (spec.match_schedule) world.enable_match_scheduler(spec.match_plan);
  auto world_shared = make_world_shared(world);

  RunResult result;
  result.focus = spec.focus;
  result.ranks.resize(spec.nprocs);

  const solver::Assignment empty_inputs;
  auto rank_body = [&](int rank) {
    // Track `track_base` is the owning driver/worker; rank r gets the
    // track_base-relative track r + 1 (base 0: the classic serial layout).
    obs::ScopedTrack track(spec.track_base + rank + 1);
    obs::ObsSpan rank_span(obs::Cat::kExecute, "rank_body", "rank", rank);
    const bool heavy = spec.one_way || rank == spec.focus;
    rt::ContextParams params;
    params.mode = heavy ? rt::Mode::kHeavy : rt::Mode::kLight;
    params.table = &table;
    params.registry = spec.registry;
    params.inputs = spec.inputs != nullptr ? spec.inputs : &empty_inputs;
    params.rng_seed = spec.rng_seed;
    params.step_budget = spec.step_budget;
    params.reduction = spec.reduction;
    params.mark_mpi_vars = spec.mark_mpi_vars;

    rt::RuntimeContext ctx(params);
    ctx.set_identity(rank, spec.nprocs);
    Comm comm = make_world_comm(world_shared, rank);

    RankResult& out = result.ranks[rank];
    try {
      spec.program(ctx, comm);
      ctx.finish(rt::Outcome::kOk);
    } catch (const rt::SimulatedFault& f) {
      ctx.finish(f.outcome(), f.what());
      world.abort();
    } catch (const JobAborted&) {
      // Distinguish "a peer faulted" from "the whole job hit the deadline".
      if (world.aborted()) {
        ctx.finish(rt::Outcome::kAborted, "job aborted by a faulting peer");
      } else {
        ctx.finish(rt::Outcome::kTimeout, "test wall-clock timeout");
        world.abort();
      }
    } catch (const std::exception& e) {
      ctx.finish(rt::Outcome::kMpiError, e.what());
      world.abort();
    }
    // A finishing rank can complete a deadlock for the ranks still blocked
    // on it, so the scheduler re-checks on every transition to done.
    if (MatchScheduler* sched = world.match_scheduler()) {
      sched->mark_done(rank);
    }
    out.log = ctx.take_log();
    out.outcome = out.log.outcome;
    out.message = out.log.outcome_message;
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(spec.nprocs);
    for (int rank = 0; rank < spec.nprocs; ++rank) {
      threads.emplace_back(rank_body, rank);
    }
  }  // join

  if (MatchScheduler* sched = world.match_scheduler()) {
    result.match_trace = sched->take_trace();
    result.match_diverged = sched->diverged();
    // Orphan-message check: a job that finished without faulting but left
    // sent messages unreceived has the other silent matching bug.  Faulted
    // jobs are skipped — their leftovers are unwind collateral.
    bool any_fault = false;
    for (const RankResult& r : result.ranks) {
      if (rt::is_fault(r.outcome)) any_fault = true;
    }
    if (!any_fault && !world.aborted()) {
      static obs::Counter& orphans = obs::registry().counter(
          "compi_orphans_total",
          "Jobs finalized with unreceived (orphan) messages");
      for (int r = 0; r < spec.nprocs; ++r) {
        const std::deque<Message> leftover = world.mailbox(r).drain();
        if (leftover.empty()) continue;
        orphans.inc();
        std::ostringstream os;
        os << leftover.size() << " message(s) unreceived at finalize (first:"
           << " src=" << leftover.front().src
           << " tag=" << leftover.front().tag << ")";
        result.ranks[r].outcome = rt::Outcome::kOrphanMessage;
        result.ranks[r].message = os.str();
      }
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace compi::minimpi
