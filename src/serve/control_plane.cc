#include "serve/control_plane.h"

#include <sstream>
#include <utility>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "serve/http.h"

namespace compi::serve {

namespace {

/// Journal lines the SSE tap retains for late-joining clients.
constexpr std::size_t kTapCapacity = 1024;

}  // namespace

struct ControlPlane::Impl {
  HttpServer server;
  ControlPlaneConfig config;
};

ControlPlane::ControlPlane() : impl_(std::make_unique<Impl>()) {}

ControlPlane::~ControlPlane() { stop(); }

bool ControlPlane::start(ControlPlaneConfig config) {
  if (config.port < 0 || impl_->server.running()) return false;
  impl_->config = std::move(config);
  ControlPlaneConfig& cfg = impl_->config;

  if (cfg.journal != nullptr) cfg.journal->enable_tap(kTapCapacity);

  impl_->server.handle("/", [](const HttpRequest&) {
    HttpResponse r;
    r.body =
        "compi control plane\n"
        "  /metrics  Prometheus scrape (live registry)\n"
        "  /status   heartbeat JSON with per-worker state\n"
        "  /events   SSE tail of the campaign journal\n"
        "  /explain  live campaign summary\n"
        "  /fleet    per-shard fleet telemetry (coordinator only)\n"
        "  /healthz  liveness probe (200 while progressing, else 503)\n";
    return r;
  });

  // /healthz always exists: without a liveness closure it degrades to a
  // bare "the serve thread is answering" probe, which is still what a
  // load balancer needs to know.
  {
    const auto& healthy = cfg.healthy;
    impl_->server.handle("/healthz", [&healthy](const HttpRequest&) {
      HttpResponse r;
      r.content_type = "application/json";
      bool ok = true;
      std::string detail = "serving";
      if (healthy) {
        const auto verdict = healthy();
        ok = verdict.first;
        detail = verdict.second;
      }
      r.status = ok ? 200 : 503;
      std::string body = "{\"ok\":";
      body += ok ? "true" : "false";
      body += ",\"detail\":\"";
      for (const char ch : detail) {
        if (ch == '"' || ch == '\\') body += '\\';
        if (static_cast<unsigned char>(ch) >= 0x20) body += ch;
      }
      body += "\"}\n";
      r.body = std::move(body);
      return r;
    });
  }

  if (cfg.registry != nullptr) {
    obs::Registry* registry = cfg.registry;
    impl_->server.handle("/metrics", [registry](const HttpRequest&) {
      std::ostringstream os;
      registry->write_prometheus(os);
      HttpResponse r;
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      r.body = os.str();
      return r;
    });
  }

  if (cfg.status) {
    const auto& status = cfg.status;
    impl_->server.handle("/status", [&status](const HttpRequest&) {
      HttpResponse r;
      r.content_type = "application/json";
      r.body = obs::render_status_json(status());
      return r;
    });
  }

  if (cfg.explain) {
    const auto& explain = cfg.explain;
    impl_->server.handle("/explain", [&explain](const HttpRequest&) {
      HttpResponse r;
      r.body = explain();
      return r;
    });
  }

  if (cfg.fleet) {
    const auto& fleet = cfg.fleet;
    impl_->server.handle("/fleet", [&fleet](const HttpRequest&) {
      HttpResponse r;
      r.content_type = "application/json";
      r.body = fleet();
      return r;
    });
  }

  if (cfg.journal != nullptr) {
    obs::Journal* journal = cfg.journal;
    impl_->server.handle_stream(
        "/events", [journal](std::uint64_t& cursor, std::string& out) {
          std::vector<std::string> lines;
          cursor = journal->tap_since(cursor, lines);
          for (const std::string& line : lines) {
            out += "data: ";
            out += line;
            out += "\n\n";
          }
        });
  }

  impl_->server.set_stream_keepalive(cfg.stream_keepalive_ms);
  return impl_->server.start(cfg.port);
}

void ControlPlane::stop() { impl_->server.stop(); }

bool ControlPlane::running() const { return impl_->server.running(); }

int ControlPlane::port() const { return impl_->server.port(); }

}  // namespace compi::serve
