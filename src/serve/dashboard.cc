#include "serve/dashboard.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "serve/http.h"

namespace compi::serve {

namespace {

constexpr const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};

bool looks_like_host_port(const std::string& target) {
  if (target.empty()) return false;
  // A path separator or an existing-file-style name means status-file mode;
  // everything made of digits, dots and at most one colon is an address.
  return target.find('/') == std::string::npos &&
         target.find_first_not_of("0123456789.:") == std::string::npos;
}

std::string format_seconds(double s) {
  char buf[32];
  if (s >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%d:%02d:%02d", static_cast<int>(s) / 3600,
                  (static_cast<int>(s) / 60) % 60, static_cast<int>(s) % 60);
  } else {
    std::snprintf(buf, sizeof(buf), "%d:%02d", static_cast<int>(s) / 60,
                  static_cast<int>(s) % 60);
  }
  return buf;
}

double metric_or(const std::map<std::string, double>& metrics,
                 const std::string& name, double fallback) {
  const auto it = metrics.find(name);
  return it == metrics.end() ? fallback : it->second;
}

}  // namespace

std::map<std::string, double> parse_prometheus_text(std::string_view text) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line.front() == '#') continue;
    // Name runs to the last space (labels may not contain spaces in our
    // writer); the remainder is the value.
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string_view::npos || sp == 0) continue;
    const std::string name(line.substr(0, sp));
    char* end = nullptr;
    const std::string value_str(line.substr(sp + 1));
    const double v = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str()) continue;
    out[name] = v;
  }
  return out;
}

std::string sparkline(
    const std::vector<std::pair<int, std::size_t>>& timeline,
    std::size_t width) {
  if (timeline.empty() || width == 0) return "";
  std::vector<std::size_t> points;
  points.reserve(timeline.size());
  for (const auto& [iter, cov] : timeline) points.push_back(cov);
  if (points.size() > width) {
    points.erase(points.begin(),
                 points.begin() + static_cast<std::ptrdiff_t>(points.size() - width));
  }
  const std::size_t lo = *std::min_element(points.begin(), points.end());
  const std::size_t hi = *std::max_element(points.begin(), points.end());
  std::string out;
  for (const std::size_t p : points) {
    const std::size_t level =
        hi == lo ? 7 : (p - lo) * 7 / (hi - lo);
    out += kBlocks[level];
  }
  return out;
}

std::string render_dashboard(const obs::StatusSnapshot& s,
                             const std::map<std::string, double>& metrics,
                             bool ansi) {
  std::ostringstream os;
  if (ansi) os << "\x1b[H\x1b[2J";

  os << "compi top";
  if (s.serve_port > 0) os << "  127.0.0.1:" << s.serve_port;
  os << "  elapsed " << format_seconds(s.elapsed_seconds) << '\n';

  os << "iteration " << s.iteration;
  if (s.iterations_total > 0) os << '/' << s.iterations_total;
  os << "  covered " << s.covered_branches << "  bugs " << s.bugs
     << "  nprocs " << s.nprocs;
  if (!s.outcome.empty()) os << "  last " << s.outcome;
  os << '\n';

  // Stall banner: the diagnosis engine's verdict, surfaced before the
  // numbers so a stuck campaign reads as stuck at a glance.
  if (!s.diagnosis_kind.empty() && s.diagnosis_kind != "progressing") {
    os << "!! " << s.diagnosis_kind << " ("
       << format_seconds(s.diagnosis_stalled_seconds)
       << " without new coverage): " << s.diagnosis_detail << '\n';
  }

  os << "coverage  " << sparkline(s.coverage_timeline, 48);
  if (!s.coverage_timeline.empty()) {
    os << "  (" << s.coverage_timeline.front().second << " -> "
       << s.coverage_timeline.back().second << ")";
  }
  os << '\n';

  const std::int64_t hits = s.solver_cache_hits;
  const std::int64_t misses = s.solver_cache_misses;
  const std::int64_t lookups = hits + misses;
  os << "frontier " << s.frontier_depth << "  interleavings "
     << s.interleavings_pending << "  solver-cache ";
  if (lookups > 0) {
    os << (100 * hits / lookups) << "% hit (" << hits << '/' << lookups
       << ")\n";
  } else {
    os << "-\n";
  }

  const double solves =
      metric_or(metrics, "compi_solver_queries_total", -1.0);
  const double iters = metric_or(metrics, "compi_iterations_total", -1.0);
  if (iters >= 0.0 || solves >= 0.0) {
    os << "metrics  ";
    if (iters >= 0.0) os << "iterations " << static_cast<std::int64_t>(iters);
    if (solves >= 0.0) {
      os << "  solver-queries " << static_cast<std::int64_t>(solves);
    }
    os << '\n';
  }

  os << '\n'
     << "worker  phase    iter   done   last-progress\n";
  for (std::size_t i = 0; i < s.worker_status.size(); ++i) {
    const obs::WorkerStatus& w = s.worker_status[i];
    char row[96];
    std::snprintf(row, sizeof(row), "%5zu   %-8s %5d  %5lld   %s", i,
                  obs::to_string(w.phase), w.iteration,
                  static_cast<long long>(w.iterations_done),
                  format_seconds(w.last_progress_seconds).c_str());
    os << row;
    // Flag a worker whose last progress lags the campaign clock badly.
    if (w.phase != obs::WorkerPhase::kDone &&
        s.elapsed_seconds - w.last_progress_seconds > 30.0) {
      os << "  (stalled?)";
    }
    os << '\n';
  }
  return os.str();
}

std::string render_fleet(const obs::ParsedEvent& fleet, bool ansi) {
  std::ostringstream os;
  if (ansi) os << "\x1b[H\x1b[2J";

  const auto num = [&fleet](const std::string& key) {
    return fleet.num(key).value_or(0);
  };
  os << "compi fleet  elapsed "
     << format_seconds(fleet.real("elapsed_seconds").value_or(0.0))
     << "  completed " << num("completed") << '/' << num("budget")
     << "  covered " << num("covered_branches") << "  bugs " << num("bugs")
     << '\n';
  os << "shards " << num("shards_connected") << " connected / "
     << num("shards_joined") << " joined (lost " << num("shards_lost")
     << ", leases reclaimed " << num("leases_reclaimed") << ")\n";
  const std::string kind = fleet.str("diagnosis_kind").value_or("");
  if (!kind.empty() && kind != "progressing") {
    os << "!! " << kind << ": "
       << fleet.str("diagnosis_detail").value_or("") << '\n';
  }

  os << '\n'
     << "shard             state  iters    /sec  leases(rem)  frontier"
        "  sat/unsat/bgt  trend\n";
  for (int i = 0;; ++i) {
    const std::string p = "shard_" + std::to_string(i) + '.';
    const auto name = fleet.str(p + "name");
    if (!name) break;
    const bool connected = fleet.boolean(p + "connected").value_or(false);
    char head[128];
    std::snprintf(head, sizeof(head), "%-17s %-6s %6lld  %6.1f  %4lld(%lld)",
                  name->substr(0, 17).c_str(), connected ? "up" : "lost",
                  static_cast<long long>(
                      fleet.num(p + "iterations").value_or(0)),
                  fleet.real(p + "rate").value_or(0.0),
                  static_cast<long long>(fleet.num(p + "leases").value_or(0)),
                  static_cast<long long>(
                      fleet.num(p + "lease_remaining").value_or(0)));
    os << head;
    if (fleet.boolean(p + "telemetry").value_or(false)) {
      char tele[64];
      std::snprintf(tele, sizeof(tele), "  %8lld  %4lld/%lld/%lld",
                    static_cast<long long>(
                        fleet.num(p + "frontier_depth").value_or(-1)),
                    static_cast<long long>(
                        fleet.num(p + "solver_sat").value_or(0)),
                    static_cast<long long>(
                        fleet.num(p + "solver_unsat").value_or(0)),
                    static_cast<long long>(
                        fleet.num(p + "solver_budget").value_or(0)));
      os << tele;
    } else {
      os << "         -      -/-/-";
    }
    // Lag sparkline: per-interval iteration deltas from the coordinator's
    // sample ring ("elapsed:iterations" pairs) — flat means stalled.
    std::vector<std::pair<int, std::size_t>> deltas;
    std::istringstream spark(fleet.str(p + "timeline").value_or(""));
    std::string pair;
    std::int64_t prev = -1;
    while (spark >> pair) {
      const auto colon = pair.find(':');
      if (colon == std::string::npos) continue;
      const std::int64_t at = std::strtoll(pair.c_str(), nullptr, 10);
      const std::int64_t iters =
          std::strtoll(pair.c_str() + colon + 1, nullptr, 10);
      if (prev >= 0) {
        deltas.emplace_back(static_cast<int>(at),
                            static_cast<std::size_t>(
                                std::max<std::int64_t>(0, iters - prev)));
      }
      prev = iters;
    }
    os << "  " << sparkline(deltas, 24);
    if (connected) {
      const double idle = fleet.real(p + "since_last_seen").value_or(0.0);
      if (idle > 5.0) os << "  (quiet " << format_seconds(idle) << ")";
    }
    os << '\n';
  }
  return os.str();
}

int run_top(const TopOptions& opts, std::ostream& os) {
  const bool remote = looks_like_host_port(opts.target);
  if (opts.fleet && !remote) {
    os << "compi top: --fleet needs a coordinator host:port, not a file\n";
    return 1;
  }
  int rendered = 0;
  for (int frame = 0; opts.frames == 0 || frame < opts.frames; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opts.interval_ms));
    }
    if (opts.fleet) {
      const auto fleet = http_get(opts.target, "/fleet");
      if (!fleet || fleet->status != 200) {
        if (rendered > 0) {
          os << "campaign ended (" << opts.target << " stopped answering)\n";
          return 0;
        }
        os << "compi top: no /fleet from " << opts.target
           << " (is it a coordinator with --serve?)\n";
        return 1;
      }
      const auto parsed = obs::parse_json_object(fleet->body);
      if (!parsed) {
        os << "compi top: malformed /fleet from " << opts.target << '\n';
        return rendered > 0 ? 0 : 1;
      }
      os << render_fleet(*parsed, opts.ansi);
      os.flush();
      ++rendered;
      continue;
    }
    std::string status_json;
    std::map<std::string, double> metrics;
    if (remote) {
      const auto status = http_get(opts.target, "/status");
      if (!status || status->status != 200) {
        if (rendered > 0) {
          os << "campaign ended (" << opts.target << " stopped answering)\n";
          return 0;
        }
        os << "compi top: no response from " << opts.target << '\n';
        return 1;
      }
      status_json = status->body;
      if (const auto m = http_get(opts.target, "/metrics");
          m && m->status == 200) {
        metrics = parse_prometheus_text(m->body);
      }
    } else {
      std::ifstream in(opts.target);
      if (!in) {
        if (rendered > 0) {
          os << "campaign ended (" << opts.target << " removed)\n";
          return 0;
        }
        os << "compi top: cannot read " << opts.target << '\n';
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      status_json = buf.str();
    }
    const auto snapshot = obs::parse_status_json(status_json);
    if (!snapshot) {
      // A torn read should be impossible (tmp+rename / Content-Length),
      // so treat malformed JSON as a real error.
      os << "compi top: malformed status from " << opts.target << '\n';
      return rendered > 0 ? 0 : 1;
    }
    os << render_dashboard(*snapshot, metrics, opts.ansi);
    os.flush();
    ++rendered;
  }
  return 0;
}

}  // namespace compi::serve
