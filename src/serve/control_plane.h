// Campaign control plane: wires the embedded HTTP server to the live
// observability state.  Endpoints:
//   GET /metrics — Prometheus scrape of the process-wide registry (live,
//                  not the at-exit dump).
//   GET /status  — the heartbeat JSON, rendered on demand from the
//                  StatusBoard snapshot closure.
//   GET /events  — SSE tail of the journal via its in-memory tap; works
//                  with or without --journal writing to disk.
//   GET /explain — the --explain summary rendered from the live ledger.
//   GET /fleet   — coordinator only: per-shard telemetry JSON (rates,
//                  coverage, lease state, solver mix) for `compi top
//                  --fleet`.  Same flat JSON dialect as /status.
//   GET /healthz — liveness probe: 200 {"ok":true} while the campaign is
//                  making progress, 503 {"ok":false} once a worker has
//                  stalled past the liveness threshold.  Orchestrators and
//                  the campaign coordinator probe shards through this.
//   GET /        — plain-text index of the above.
//
// Lock discipline: every closure passed in here runs on the SERVER thread.
// The status closure takes only the StatusBoard's leaf mutex; the explain
// closure may take the campaign mutex (briefly — it renders a bounded
// summary).  The journal tap locks the journal's own mutex.  None of these
// are ever held while calling into each other, so no ordering is imposed.
//
// Shutdown: ControlPlane is an RAII guard.  Campaign loops declare it
// AFTER their export guard so reverse destruction stops the server (and
// its thread) before the journal closes and metrics export — no endpoint
// can observe torn-down state on any exit path.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "obs/status.h"

namespace compi::obs {
class Journal;
class Registry;
}  // namespace compi::obs

namespace compi::serve {

struct ControlPlaneConfig {
  int port = -1;  ///< -1 = disabled, 0 = ephemeral, else fixed port.
  obs::Registry* registry = nullptr;
  obs::Journal* journal = nullptr;  ///< may be null: /events then idles
  std::function<obs::StatusSnapshot()> status;
  std::function<std::string()> explain;
  /// Liveness verdict for /healthz: second = human-readable detail.  When
  /// unset, /healthz falls back to "server is answering" (always ok).
  std::function<std::pair<bool, std::string>()> healthy;
  /// Fleet telemetry JSON for /fleet (the coordinator's per-shard view).
  /// Unset = endpoint not registered (single-process campaigns).
  std::function<std::string()> fleet;
  /// SSE comment-frame keepalive cadence for /events; 0 disables.
  int stream_keepalive_ms = 15000;
};

class ControlPlane {
 public:
  ControlPlane();
  ~ControlPlane();  ///< stops the server
  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Registers the endpoints, enables the journal tap, binds and starts
  /// the server.  Returns false (leaving nothing running) if the config
  /// has no port, the bind fails, or serving is compiled out.
  bool start(ControlPlaneConfig config);

  void stop();
  [[nodiscard]] bool running() const;
  /// Bound port after a successful start() (resolves port 0).
  [[nodiscard]] int port() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace compi::serve
