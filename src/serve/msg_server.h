// A poll()-driven TCP message server speaking the length-prefixed frame
// format in serve/frame.h — the transport under the campaign coordinator.
//
// Same engineering style as the control-plane HTTP server (one thread,
// loopback-only, non-blocking sockets, self-pipe stop wake), but the unit
// of exchange is a typed frame instead of an HTTP request, and the
// protocol is strict request/response: every frame a client sends gets
// exactly one reply frame.  Callbacks run ON the server thread:
//   * on_frame(conn, frame) — must return the reply frame.
//   * on_disconnect(conn)   — the connection closed (peer hangup, corrupt
//                             stream, or server stop).  Fired at most once
//                             per connection id.
//   * on_tick()             — every poll tick (~tick_ms), whether or not
//                             any traffic arrived; the coordinator runs
//                             lease-expiry scans and checkpoints here.
// Connection ids are monotonically increasing and never reused, so a
// callback holding state keyed by id can't confuse two incarnations of
// the same shard.
//
// Compiled to inert stubs (start() returns false) on non-POSIX builds and
// under COMPI_OBS_DISABLED, like the HTTP server.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "serve/frame.h"

namespace compi::serve {

class MsgServer {
 public:
  struct Callbacks {
    std::function<WireFrame(std::uint64_t conn, const WireFrame&)> on_frame;
    std::function<void(std::uint64_t conn)> on_disconnect;
    std::function<void()> on_tick;
  };

  MsgServer();
  ~MsgServer();
  MsgServer(const MsgServer&) = delete;
  MsgServer& operator=(const MsgServer&) = delete;

  /// Must be called before start() (the callbacks are not locked).
  void set_callbacks(Callbacks cb);

  /// Binds 127.0.0.1:`port` (0 = ephemeral), accepting only frames whose
  /// tag appears in `valid_types`, and spawns the server thread.  Returns
  /// false when the bind fails or server support is compiled out.
  bool start(int port, const std::string& valid_types, int tick_ms = 50);

  /// Stops and joins the server thread, closing every connection (each
  /// open connection gets a final on_disconnect).  Idempotent.
  void stop();

  [[nodiscard]] int port() const;
  [[nodiscard]] bool running() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace compi::serve
