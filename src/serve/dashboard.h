// `compi top` — a refreshing single-screen terminal dashboard for a live
// campaign.  Polls GET /status and GET /metrics from a control plane (or
// re-reads a --status-file when given a path instead of host:port) and
// renders a workers table, a coverage sparkline from the status timeline,
// and solver / frontier gauges.
//
// Rendering is pure (snapshot + metrics map in, string out) so tests can
// assert on frames without a terminal or a server.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/journal.h"
#include "obs/status.h"

namespace compi::serve {

struct TopOptions {
  /// "host:port", ":port", "port" — or a filesystem path to a status file.
  std::string target;
  int interval_ms = 1000;
  /// 0 = refresh until the campaign ends; N = render N frames and exit
  /// (tests and CI use frames=1).
  int frames = 0;
  /// Emit ANSI clear/home escapes between frames (off when not a tty).
  bool ansi = true;
  /// Poll GET /fleet instead of /status and render the per-shard fleet
  /// table (coordinator targets only; needs host:port, not a file).
  bool fleet = false;
};

/// Parses Prometheus text exposition into {metric-name-with-labels: value}.
/// Comment lines are skipped; unparsable sample lines are ignored.
[[nodiscard]] std::map<std::string, double> parse_prometheus_text(
    std::string_view text);

/// Unicode block-element sparkline of the coverage timeline, at most
/// `width` cells wide (the newest points win when thinning).
[[nodiscard]] std::string sparkline(
    const std::vector<std::pair<int, std::size_t>>& timeline,
    std::size_t width);

/// One dashboard frame.  `metrics` may be empty (status-file mode).
[[nodiscard]] std::string render_dashboard(
    const obs::StatusSnapshot& s, const std::map<std::string, double>& metrics,
    bool ansi);

/// One fleet-dashboard frame from a parsed /fleet document (the flat JSON
/// dialect: coordinator totals at the top level, per-shard fields under
/// dotted "shard_N." keys).  Pure like render_dashboard so tests assert on
/// frames directly.
[[nodiscard]] std::string render_fleet(const obs::ParsedEvent& fleet,
                                       bool ansi);

/// Runs the dashboard loop; returns a process exit code.  A target that
/// never answers is an error (1); a campaign that answered at least once
/// and then went away is a normal ending (0).
int run_top(const TopOptions& opts, std::ostream& os);

}  // namespace compi::serve
