// A dependency-free embedded HTTP/1.1 server for the campaign control
// plane: one poll()-driven thread, loopback-only, GET-only.
//
// Same engineering style as the sandbox pipe supervisor: non-blocking
// sockets multiplexed by poll(), a self-pipe to wake the loop for stop(),
// and no third-party networking.  Two endpoint shapes are supported:
//   * handle(path, fn)        — request/response: fn renders the whole
//                               body, the loop frames and flushes it.
//   * handle_stream(path, fn) — Server-Sent-Events: the connection stays
//                               open and fn is polled every loop tick with
//                               the connection's cursor, appending any
//                               newly available `data:` frames.
// Handlers run ON the server thread, so they must only touch state that
// is safe to read from a foreign thread (the control plane passes
// mutex-guarded snapshot closures).  A stalled client can never wedge the
// loop: writes are buffered per connection and drained under POLLOUT, and
// a stream whose buffer backs up past the cap is dropped.
//
// Compiled to inert stubs (start() returns false) on non-POSIX builds and
// under COMPI_OBS_DISABLED — the obs-off preset ships without a server.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace compi::serve {

struct HttpRequest {
  std::string method;
  std::string path;   // before '?'
  std::string query;  // after '?', possibly empty
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Pull-model stream source: called with the connection's cursor; appends
/// ready-to-send bytes (already SSE-framed) to `out` and advances the
/// cursor past everything appended.
using StreamSource = std::function<void(std::uint64_t& cursor,
                                        std::string& out)>;

class HttpServer {
 public:
  HttpServer();
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registration must happen before start() (the maps are not locked).
  void handle(const std::string& path, HttpHandler h);
  void handle_stream(const std::string& path, StreamSource s);

  /// Emit an SSE comment frame (": keepalive\n\n") on any stream that has
  /// produced no output for `ms` milliseconds, so proxies and client read
  /// timeouts don't sever quiet /events connections.  0 disables.  Must be
  /// called before start() (read by the server thread without locking).
  void set_stream_keepalive(int ms);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and spawns the server thread.
  /// Returns false when the bind fails or server support is compiled out.
  bool start(int port);

  /// Stops and joins the server thread, closing every connection.
  /// Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] int port() const;
  [[nodiscard]] bool running() const;
  /// Requests dispatched since start() (streams count once, at open).
  [[nodiscard]] std::uint64_t requests_served() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---- minimal blocking client (compi top, tests, CI smoke) ----

struct HttpClientResponse {
  int status = 0;
  std::string body;
};

/// Blocking GET against "host:port" (host must be an IPv4 literal; bare
/// ":port" or "port" default to 127.0.0.1).  nullopt on connect/timeout
/// failure or a malformed response.  Compiled-out builds always fail.
[[nodiscard]] std::optional<HttpClientResponse> http_get(
    const std::string& host_port, const std::string& path,
    int timeout_ms = 2000);

/// Streaming GET: reads up to `max_bytes` of body (headers stripped) or
/// until `timeout_ms` elapses / the peer closes, whichever comes first.
[[nodiscard]] std::optional<std::string> http_get_stream(
    const std::string& host_port, const std::string& path,
    std::size_t max_bytes, int timeout_ms);

}  // namespace compi::serve
