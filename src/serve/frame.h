// Generic length-prefixed message framing for the coordinator wire.
//
// Same shape as the sandbox supervisor pipe (src/sandbox/wire.h): a 4-byte
// little-endian payload length, a 1-byte type tag, then the payload — but
// with the valid type set supplied by the caller instead of hard-coded, so
// the coordinator protocol can define its own tags without dragging the
// sandbox's RunResult codecs below compi_core.  The reader consumes a raw
// TCP byte stream incrementally and stops at a malformed header (wrong
// tag, insane length): everything after the first corruption is ignored,
// which is exactly the right behavior for a peer that died mid-write.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace compi::serve {

struct WireFrame {
  char type = '\0';
  std::string payload;
};

/// Bytes of framing overhead per frame (length prefix + type tag).
inline constexpr std::size_t kWireFrameHeaderBytes = 5;

/// Frames larger than this are treated as corruption, not messages: the
/// coordinator wire carries campaign deltas (covered-branch ids, bug
/// records, ledger blobs), which stay far below this even on huge targets.
inline constexpr std::size_t kMaxWireFramePayload = 64u * 1024u * 1024u;

/// Appends one frame (header + payload) to `out`.
void append_wire_frame(std::string& out, char type, std::string_view payload);

/// Incremental frame parser over a raw byte stream.  `valid_types` is the
/// set of acceptable tag characters; any other tag marks the stream
/// corrupt and next() stops returning frames.
class WireFrameReader {
 public:
  explicit WireFrameReader(std::string valid_types)
      : valid_types_(std::move(valid_types)) {}

  void feed(const char* data, std::size_t n);

  /// The next complete frame, or nullopt (partial tail, corrupt stream, or
  /// nothing buffered).
  [[nodiscard]] std::optional<WireFrame> next();

  /// True once a malformed header was seen.
  [[nodiscard]] bool corrupt() const { return corrupt_; }

 private:
  std::string valid_types_;
  std::string buf_;
  std::size_t pos_ = 0;
  bool corrupt_ = false;
};

}  // namespace compi::serve
