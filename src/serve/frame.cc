#include "serve/frame.h"

namespace compi::serve {

namespace {

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32_le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

}  // namespace

void append_wire_frame(std::string& out, char type,
                       std::string_view payload) {
  put_u32_le(out, static_cast<std::uint32_t>(payload.size()));
  out.push_back(type);
  out.append(payload);
}

void WireFrameReader::feed(const char* data, std::size_t n) {
  if (corrupt_) return;
  buf_.append(data, n);
}

std::optional<WireFrame> WireFrameReader::next() {
  if (corrupt_) return std::nullopt;
  if (buf_.size() - pos_ < kWireFrameHeaderBytes) return std::nullopt;
  const std::uint32_t len = get_u32_le(buf_.data() + pos_);
  const char type = buf_[pos_ + 4];
  if (len > kMaxWireFramePayload ||
      valid_types_.find(type) == std::string::npos) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (buf_.size() - pos_ - kWireFrameHeaderBytes < len) return std::nullopt;
  WireFrame frame;
  frame.type = type;
  frame.payload.assign(buf_, pos_ + kWireFrameHeaderBytes, len);
  pos_ += kWireFrameHeaderBytes + len;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // doesn't grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return frame;
}

}  // namespace compi::serve
