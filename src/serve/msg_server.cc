#include "serve/msg_server.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "serve/net_util.h"

namespace compi::serve {

#ifdef COMPI_SERVE_POSIX

struct MsgServer::Impl {
  Callbacks cb;

  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
  int port = -1;
  int tick_ms = 50;
  std::string valid_types;
  std::atomic<bool> running{false};
  std::atomic<bool> stop_requested{false};
  std::thread thread;

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::unique_ptr<WireFrameReader> reader;
    std::string out;
  };
  std::vector<Conn> conns;
  std::uint64_t next_conn_id = 1;

  ~Impl() { close_fds(); }

  void close_fds() {
    for (Conn& c : conns) {
      if (c.fd >= 0) ::close(c.fd);
    }
    conns.clear();
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
    listen_fd = wake_read = wake_write = -1;
  }

  bool bind_and_listen(int want_port) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) return false;
    const int one = 1;
    (void)::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(want_port));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd, 32) != 0 || !net::set_nonblocking(listen_fd)) {
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return false;
    }
    port = static_cast<int>(ntohs(bound.sin_port));
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) return false;
    wake_read = pipe_fds[0];
    wake_write = pipe_fds[1];
    (void)net::set_nonblocking(wake_read);
    return true;
  }

  void drop(Conn& c) {
    ::close(c.fd);
    c.fd = -1;
    if (cb.on_disconnect) cb.on_disconnect(c.id);
  }

  void loop() {
    std::vector<pollfd> pfds;
    while (!stop_requested.load(std::memory_order_relaxed)) {
      pfds.clear();
      pfds.push_back({wake_read, POLLIN, 0});
      pfds.push_back({listen_fd, POLLIN, 0});
      for (const Conn& c : conns) {
        short events = POLLIN;
        if (!c.out.empty()) events |= POLLOUT;
        pfds.push_back({c.fd, events, 0});
      }
      (void)net::xpoll(pfds.data(), pfds.size(), tick_ms);
      if ((pfds[0].revents & POLLIN) != 0) {
        char buf[64];
        while (net::xread(wake_read, buf, sizeof(buf)) > 0) {
        }
      }
      if ((pfds[1].revents & POLLIN) != 0) {
        for (;;) {
          const int fd = net::xaccept(listen_fd);
          if (fd < 0) break;
          if (!net::set_nonblocking(fd)) {
            ::close(fd);
            continue;
          }
          const int one = 1;
          (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof(one));
          Conn c;
          c.fd = fd;
          c.id = next_conn_id++;
          c.reader = std::make_unique<WireFrameReader>(valid_types);
          conns.push_back(std::move(c));
        }
      }
      // pfds[i + 2] pairs with the conns entry i from before the accept
      // loop; fresh conns get polled next tick.
      const std::size_t polled = pfds.size() - 2;
      for (std::size_t i = 0; i < polled && i < conns.size(); ++i) {
        Conn& c = conns[i];
        const short re = pfds[i + 2].revents;
        if ((re & (POLLERR | POLLHUP | POLLNVAL)) != 0 && c.out.empty()) {
          drop(c);
          continue;
        }
        if ((re & POLLIN) != 0) {
          char buf[4096];
          bool eof = false;
          for (;;) {
            const ssize_t n = net::xrecv(c.fd, buf, sizeof(buf));
            if (n > 0) {
              c.reader->feed(buf, static_cast<std::size_t>(n));
              continue;
            }
            if (n == 0) eof = true;
            break;
          }
          while (auto frame = c.reader->next()) {
            if (cb.on_frame) {
              const WireFrame reply = cb.on_frame(c.id, *frame);
              append_wire_frame(c.out, reply.type, reply.payload);
            }
          }
          if (c.reader->corrupt() || (eof && c.out.empty())) {
            drop(c);
            continue;
          }
        }
        if (!c.out.empty()) {
          const ssize_t n =
              net::xsend(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
          if (n > 0) {
            c.out.erase(0, static_cast<std::size_t>(n));
          } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
            drop(c);
            continue;
          }
        }
      }
      conns.erase(std::remove_if(conns.begin(), conns.end(),
                                 [](const Conn& c) { return c.fd < 0; }),
                  conns.end());
      if (cb.on_tick) cb.on_tick();
    }
    // Server stop: every still-open connection gets its on_disconnect so
    // the coordinator can reclaim leases before the campaign finalizes.
    for (Conn& c : conns) {
      if (c.fd >= 0) drop(c);
    }
    conns.clear();
  }
};

MsgServer::MsgServer() : impl_(std::make_unique<Impl>()) {}

MsgServer::~MsgServer() { stop(); }

void MsgServer::set_callbacks(Callbacks cb) { impl_->cb = std::move(cb); }

bool MsgServer::start(int port, const std::string& valid_types,
                      int tick_ms) {
  if (impl_->running.load()) return false;
  if (port < 0 || port > 65535) return false;
  if (!impl_->bind_and_listen(port)) {
    impl_->close_fds();
    return false;
  }
  impl_->valid_types = valid_types;
  impl_->tick_ms = tick_ms > 0 ? tick_ms : 50;
  impl_->stop_requested.store(false);
  impl_->running.store(true);
  impl_->thread = std::thread([impl = impl_.get()] { impl->loop(); });
  return true;
}

void MsgServer::stop() {
  if (!impl_->running.load()) return;
  impl_->stop_requested.store(true);
  if (impl_->wake_write >= 0) {
    const char byte = 'x';
    (void)!::write(impl_->wake_write, &byte, 1);
  }
  if (impl_->thread.joinable()) impl_->thread.join();
  impl_->close_fds();
  impl_->running.store(false);
}

int MsgServer::port() const { return impl_->port; }

bool MsgServer::running() const { return impl_->running.load(); }

#else  // !COMPI_SERVE_POSIX — inert stubs (obs-off preset / non-POSIX)

struct MsgServer::Impl {};

MsgServer::MsgServer() : impl_(std::make_unique<Impl>()) {}
MsgServer::~MsgServer() = default;
void MsgServer::set_callbacks(Callbacks) {}
bool MsgServer::start(int, const std::string&, int) { return false; }
void MsgServer::stop() {}
int MsgServer::port() const { return -1; }
bool MsgServer::running() const { return false; }

#endif  // COMPI_SERVE_POSIX

}  // namespace compi::serve
