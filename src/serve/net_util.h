// EINTR-safe socket helpers shared by the control-plane HTTP server, the
// campaign coordinator, and the shard link.
//
// Every blocking syscall the serve layer issues goes through one of these
// wrappers: a stray signal (SIGCHLD from the sandbox supervisor, a
// profiler's SIGPROF, an operator's SIGWINCH) interrupts the call with
// EINTR, and without the retry a serve thread would drop a connection or a
// shard would misread a frame boundary.  The wrappers retry EINTR
// transparently and leave every other error to the caller.
//
// Compiled out (like the rest of the serve layer) on non-POSIX builds and
// under COMPI_OBS_DISABLED.
#pragma once

#if (defined(__unix__) || defined(__APPLE__)) && !defined(COMPI_OBS_DISABLED)
#define COMPI_SERVE_POSIX 1
#endif

#ifdef COMPI_SERVE_POSIX

#include <arpa/inet.h>
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdint>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <unistd.h>

namespace compi::serve::net {

/// poll() retrying EINTR with the same timeout.  For tick-driven loops the
/// slightly stretched tick is harmless; callers needing a hard deadline
/// should re-derive the remaining time themselves.
inline int xpoll(pollfd* fds, nfds_t nfds, int timeout_ms) {
  for (;;) {
    const int n = ::poll(fds, nfds, timeout_ms);
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// poll() against an absolute deadline: each EINTR retry re-derives the
/// remaining wait, so a signal storm cannot stretch the timeout forever
/// (SO_RCVTIMEO restarts per syscall, which a naive retry loop turns into
/// an unbounded wait).  Returns 0 once the deadline has passed.
inline int xpoll_deadline(pollfd* fds, nfds_t nfds,
                          std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return 0;
    const long long ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count() +
        1;
    const int n = ::poll(fds, nfds,
                         static_cast<int>(std::min<long long>(ms, INT_MAX)));
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// accept() retrying EINTR.  Other errors (EAGAIN on a drained
/// non-blocking listener included) surface as -1.
inline int xaccept(int fd) {
  for (;;) {
    const int c = ::accept(fd, nullptr, nullptr);
    if (c >= 0 || errno != EINTR) return c;
  }
}

inline ssize_t xrecv(int fd, void* buf, std::size_t len, int flags = 0) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, flags);
    if (n >= 0 || errno != EINTR) return n;
  }
}

inline ssize_t xsend(int fd, const void* buf, std::size_t len,
                     int flags = 0) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, flags);
    if (n >= 0 || errno != EINTR) return n;
  }
}

inline ssize_t xread(int fd, void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// Sends the whole buffer, retrying EINTR and short writes.  False on any
/// hard error (including a peer that hung up — MSG_NOSIGNAL keeps SIGPIPE
/// from killing the process).
inline bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = xsend(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

inline bool send_all(int fd, const std::string& data) {
  return send_all(fd, data.data(), data.size());
}

/// Reads exactly `len` bytes from a blocking socket, retrying EINTR and
/// short reads.  False on EOF, timeout (SO_RCVTIMEO surfaces as
/// EAGAIN/EWOULDBLOCK), or any hard error.
inline bool recv_all(int fd, char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = xrecv(fd, data + off, len - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

inline bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Parses "host:port" / ":port" / "port" into an IPv4 sockaddr
/// (host defaults to 127.0.0.1; "localhost" is rewritten to it).
inline bool parse_host_port(const std::string& host_port,
                            sockaddr_in& addr) {
  std::string host = "127.0.0.1";
  std::string port = host_port;
  const std::size_t colon = host_port.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host = host_port.substr(0, colon);
    port = host_port.substr(colon + 1);
  }
  if (port.empty()) return false;
  char* end = nullptr;
  const long p = std::strtol(port.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || p <= 0 || p > 65535) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(p));
  if (host == "localhost") host = "127.0.0.1";
  return ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

/// Blocking connect with send/receive deadlines; -1 on failure.  A signal
/// interrupting connect() leaves the handshake in flight, so EINTR is
/// completed by polling for writability until the deadline and checking
/// SO_ERROR — failing instead would make every client flaky under a
/// signal-heavy process (sandbox SIGCHLD, profiler SIGPROF).
inline int connect_client(const std::string& host_port, int timeout_ms) {
  sockaddr_in addr{};
  if (!parse_host_port(host_port, addr)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINTR) {
      ::close(fd);
      return -1;
    }
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    int err = 0;
    socklen_t len = sizeof(err);
    if (xpoll_deadline(&p, 1, deadline) <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace compi::serve::net

#endif  // COMPI_SERVE_POSIX
