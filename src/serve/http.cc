#include "serve/http.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

// Defines COMPI_SERVE_POSIX and pulls in the EINTR-safe syscall wrappers
// (net::xpoll/xaccept/xrecv/xsend/...) every loop below goes through: a
// stray signal must never drop a connection or wedge the serve thread.
#include "serve/net_util.h"

namespace compi::serve {

#ifdef COMPI_SERVE_POSIX

namespace {

constexpr std::size_t kMaxRequestBytes = 8 * 1024;
/// A stream whose client stops reading is dropped once this much output
/// is buffered — the server thread must never wait on a slow consumer.
constexpr std::size_t kMaxStreamBacklog = 256 * 1024;
constexpr int kPollTickMs = 50;

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string frame_response(const HttpResponse& r) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    reason_phrase(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

}  // namespace

struct HttpServer::Impl {
  std::map<std::string, HttpHandler> handlers;
  std::map<std::string, StreamSource> streams;
  int stream_keepalive_ms = 0;

  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
  int port = -1;
  std::atomic<bool> running{false};
  std::atomic<bool> stop_requested{false};
  std::atomic<std::uint64_t> requests{0};
  std::thread thread;

  struct Conn {
    int fd = -1;
    std::string in;
    std::string out;
    bool close_after_flush = false;
    bool is_stream = false;
    const StreamSource* source = nullptr;
    std::uint64_t cursor = 0;
    /// Last time this stream appended output (frames or keepalives); the
    /// idle clock the keepalive comment is measured against.
    std::chrono::steady_clock::time_point last_activity =
        std::chrono::steady_clock::now();
  };
  std::vector<Conn> conns;

  ~Impl() { close_fds(); }

  void close_fds() {
    for (Conn& c : conns) {
      if (c.fd >= 0) ::close(c.fd);
    }
    conns.clear();
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
    listen_fd = wake_read = wake_write = -1;
  }

  bool bind_and_listen(int want_port) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) return false;
    const int one = 1;
    (void)::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(want_port));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd, 16) != 0 || !net::set_nonblocking(listen_fd)) {
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return false;
    }
    port = static_cast<int>(ntohs(bound.sin_port));
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) return false;
    wake_read = pipe_fds[0];
    wake_write = pipe_fds[1];
    (void)net::set_nonblocking(wake_read);
    return true;
  }

  void dispatch(Conn& c) {
    // Request line: METHOD SP PATH SP VERSION.  Headers are ignored — the
    // control plane has no use for them.
    HttpRequest req;
    const std::size_t line_end = c.in.find("\r\n");
    const std::string line =
        c.in.substr(0, line_end == std::string::npos ? c.in.find('\n')
                                                     : line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      c.out = frame_response({400, "text/plain", "bad request\n"});
      c.close_after_flush = true;
      return;
    }
    req.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t qmark = target.find('?');
    if (qmark != std::string::npos) {
      req.query = target.substr(qmark + 1);
      target.resize(qmark);
    }
    req.path = std::move(target);
    requests.fetch_add(1, std::memory_order_relaxed);
    if (req.method != "GET") {
      c.out = frame_response({405, "text/plain", "GET only\n"});
      c.close_after_flush = true;
      return;
    }
    if (const auto s = streams.find(req.path); s != streams.end()) {
      c.is_stream = true;
      c.source = &s->second;
      c.out =
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: text/event-stream\r\n"
          "Cache-Control: no-cache\r\n"
          "Connection: close\r\n\r\n"
          ": stream open\n\n";
      c.source->operator()(c.cursor, c.out);
      return;
    }
    if (const auto h = handlers.find(req.path); h != handlers.end()) {
      c.out = frame_response(h->second(req));
    } else {
      c.out = frame_response({404, "text/plain", "not found\n"});
    }
    c.close_after_flush = true;
  }

  void loop() {
    std::vector<pollfd> pfds;
    while (!stop_requested.load(std::memory_order_relaxed)) {
      pfds.clear();
      pfds.push_back({wake_read, POLLIN, 0});
      pfds.push_back({listen_fd, POLLIN, 0});
      for (const Conn& c : conns) {
        short events = POLLIN;
        if (!c.out.empty()) events |= POLLOUT;
        pfds.push_back({c.fd, events, 0});
      }
      (void)net::xpoll(pfds.data(), pfds.size(), kPollTickMs);
      if ((pfds[0].revents & POLLIN) != 0) {
        char buf[64];
        while (net::xread(wake_read, buf, sizeof(buf)) > 0) {
        }
      }
      if ((pfds[1].revents & POLLIN) != 0) {
        for (;;) {
          const int fd = net::xaccept(listen_fd);
          if (fd < 0) break;
          if (!net::set_nonblocking(fd)) {
            ::close(fd);
            continue;
          }
          const int one = 1;
          (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof(one));
          Conn c;
          c.fd = fd;
          conns.push_back(std::move(c));
        }
      }
      // Service existing connections.  pfds[i + 2] pairs with the conns
      // entry i from before the accept loop; fresh conns get polled next
      // tick.
      const std::size_t polled = pfds.size() - 2;
      for (std::size_t i = 0; i < polled && i < conns.size(); ++i) {
        Conn& c = conns[i];
        const short re = pfds[i + 2].revents;
        if ((re & (POLLERR | POLLHUP | POLLNVAL)) != 0 && c.out.empty()) {
          ::close(c.fd);
          c.fd = -1;
          continue;
        }
        if ((re & POLLIN) != 0) {
          char buf[2048];
          for (;;) {
            const ssize_t n = net::xrecv(c.fd, buf, sizeof(buf));
            if (n > 0) {
              c.in.append(buf, static_cast<std::size_t>(n));
              continue;
            }
            if (n == 0 && c.out.empty() && !c.is_stream) {
              ::close(c.fd);
              c.fd = -1;
            }
            break;
          }
          if (c.fd < 0) continue;
          if (!c.is_stream && c.out.empty() &&
              (c.in.find("\r\n\r\n") != std::string::npos ||
               c.in.find("\n\n") != std::string::npos)) {
            dispatch(c);
          } else if (c.in.size() > kMaxRequestBytes) {
            c.out = frame_response({400, "text/plain", "request too large\n"});
            c.close_after_flush = true;
          }
        }
        if (c.is_stream && c.source != nullptr &&
            c.out.size() < kMaxStreamBacklog) {
          const std::size_t before = c.out.size();
          c.source->operator()(c.cursor, c.out);
          const auto now = std::chrono::steady_clock::now();
          if (c.out.size() != before) {
            c.last_activity = now;
          } else if (stream_keepalive_ms > 0 && c.out.empty() &&
                     now - c.last_activity >=
                         std::chrono::milliseconds(stream_keepalive_ms)) {
            c.out += ": keepalive\n\n";
            c.last_activity = now;
          }
        }
        if (!c.out.empty()) {
          const ssize_t n =
              net::xsend(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
          if (n > 0) {
            c.out.erase(0, static_cast<std::size_t>(n));
          } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
            ::close(c.fd);
            c.fd = -1;
            continue;
          }
        }
        if (c.is_stream && c.out.size() >= kMaxStreamBacklog) {
          ::close(c.fd);  // consumer stopped reading
          c.fd = -1;
          continue;
        }
        if (c.out.empty() && c.close_after_flush) {
          ::close(c.fd);
          c.fd = -1;
        }
      }
      conns.erase(std::remove_if(conns.begin(), conns.end(),
                                 [](const Conn& c) { return c.fd < 0; }),
                  conns.end());
    }
  }
};

HttpServer::HttpServer() : impl_(std::make_unique<Impl>()) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string& path, HttpHandler h) {
  impl_->handlers[path] = std::move(h);
}

void HttpServer::handle_stream(const std::string& path, StreamSource s) {
  impl_->streams[path] = std::move(s);
}

void HttpServer::set_stream_keepalive(int ms) {
  impl_->stream_keepalive_ms = ms;
}

bool HttpServer::start(int port) {
  if (impl_->running.load()) return false;
  if (port < 0 || port > 65535) return false;
  if (!impl_->bind_and_listen(port)) {
    impl_->close_fds();
    return false;
  }
  impl_->stop_requested.store(false);
  impl_->running.store(true);
  impl_->thread = std::thread([impl = impl_.get()] { impl->loop(); });
  return true;
}

void HttpServer::stop() {
  if (!impl_->running.load()) return;
  impl_->stop_requested.store(true);
  if (impl_->wake_write >= 0) {
    const char byte = 'x';
    (void)!::write(impl_->wake_write, &byte, 1);
  }
  if (impl_->thread.joinable()) impl_->thread.join();
  impl_->close_fds();
  impl_->running.store(false);
}

int HttpServer::port() const { return impl_->port; }

bool HttpServer::running() const { return impl_->running.load(); }

std::uint64_t HttpServer::requests_served() const {
  return impl_->requests.load(std::memory_order_relaxed);
}

std::optional<HttpClientResponse> http_get(const std::string& host_port,
                                           const std::string& path,
                                           int timeout_ms) {
  const int fd = net::connect_client(host_port, timeout_ms);
  if (fd < 0) return std::nullopt;
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: " + host_port +
                          "\r\nConnection: close\r\n\r\n";
  if (!net::send_all(fd, req)) {
    ::close(fd);
    return std::nullopt;
  }
  // Read to EOF under a hard deadline: poll re-derives the remaining wait
  // across EINTR retries, so SO_RCVTIMEO restarting per recv() cannot turn
  // the timeout into an unbounded wait under a signal storm.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string raw;
  char buf[4096];
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    if (net::xpoll_deadline(&p, 1, deadline) <= 0) break;  // timeout/error
    const ssize_t n = net::xrecv(fd, buf, sizeof(buf));
    if (n <= 0) break;  // EOF or error — parse what arrived
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (raw.rfind("HTTP/1.", 0) != 0) return std::nullopt;
  HttpClientResponse r;
  r.status = std::atoi(raw.c_str() + 9);
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return std::nullopt;
  r.body = raw.substr(header_end + 4);
  return r;
}

std::optional<std::string> http_get_stream(const std::string& host_port,
                                           const std::string& path,
                                           std::size_t max_bytes,
                                           int timeout_ms) {
  const int fd = net::connect_client(host_port, timeout_ms);
  if (fd < 0) return std::nullopt;
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: " + host_port +
                          "\r\nConnection: close\r\n\r\n";
  if (!net::send_all(fd, req)) {
    ::close(fd);
    return std::nullopt;
  }
  // The stream never closes on its own, so the deadline is the only exit:
  // it must hold even when signals interrupt every recv (see http_get).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string raw;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  while (raw.size() < max_bytes + 512) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    if (net::xpoll_deadline(&p, 1, deadline) <= 0) break;  // done streaming
    const ssize_t n = net::xrecv(fd, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
    }
    if (header_end != std::string::npos &&
        raw.size() - header_end - 4 >= max_bytes) {
      break;
    }
  }
  ::close(fd);
  if (header_end == std::string::npos) header_end = raw.find("\r\n\r\n");
  if (raw.rfind("HTTP/1.", 0) != 0 || header_end == std::string::npos) {
    return std::nullopt;
  }
  return raw.substr(header_end + 4);
}

#else  // !COMPI_SERVE_POSIX — inert stubs (obs-off preset / non-POSIX)

struct HttpServer::Impl {};

HttpServer::HttpServer() : impl_(std::make_unique<Impl>()) {}
HttpServer::~HttpServer() = default;
void HttpServer::handle(const std::string&, HttpHandler) {}
void HttpServer::handle_stream(const std::string&, StreamSource) {}
void HttpServer::set_stream_keepalive(int) {}
bool HttpServer::start(int) { return false; }
void HttpServer::stop() {}
int HttpServer::port() const { return -1; }
bool HttpServer::running() const { return false; }
std::uint64_t HttpServer::requests_served() const { return 0; }

std::optional<HttpClientResponse> http_get(const std::string&,
                                           const std::string&, int) {
  return std::nullopt;
}

std::optional<std::string> http_get_stream(const std::string&,
                                           const std::string&, std::size_t,
                                           int) {
  return std::nullopt;
}

#endif  // COMPI_SERVE_POSIX

}  // namespace compi::serve
