// Process-isolated run sandbox: contain real crashes and hangs.
//
// The paper's artifact launches targets as separate OS processes under
// `mpiexec`, so a segfaulting or wedged target can never take the tester
// down with it.  MiniMPI runs every rank as a thread in the tester's own
// address space; a *genuine* SIGSEGV, heap smash, or uninstrumented
// infinite loop (one that executes no branch events, evading both the step
// budget and the cooperative world deadline) would kill or hang the whole
// campaign.  run_sandboxed() restores the paper's process boundary per
// iteration: fork() the whole MiniMPI world into a child, run the launcher
// there, and stream the results back over a pipe (wire.h).  The parent
//  * enforces a wall-clock hang timeout (SIGKILL on expiry) and optional
//    CPU / address-space rlimits on the child,
//  * maps real termination signals onto the existing rt::Outcome taxonomy
//    (SIGSEGV/SIGBUS -> kSegfault, SIGFPE -> kFpe, SIGABRT -> kAssert,
//    SIGKILL/SIGXCPU -> kTimeout),
//  * harvests whatever coverage the child flushed before dying, via a
//    MAP_SHARED byte-per-branch mirror installed as the child's coverage
//    sink (runtime/coverage_sink.h).  Sink bytes carry the marking rank
//    (rank + 1, first-write-wins), so harvested coverage is attributed to
//    the rank that executed each branch, not lumped onto the focus.
//
// On platforms without fork() the sandbox degrades to the in-process
// launcher (SandboxStats::forked stays false), so in-process mode remains
// the default for tests and non-POSIX builds.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "minimpi/launcher.h"

namespace compi::sandbox {

struct SandboxOptions {
  /// Wall-clock budget for the whole child process; past it the child is
  /// SIGKILLed and the run reports kTimeout.  0 derives 2x the launch
  /// spec's cooperative timeout plus 2 s headroom, so the in-child
  /// watchdog always gets the first chance to report a simulated hang.
  std::chrono::milliseconds hang_timeout{0};
  /// RLIMIT_AS for the child in MiB; 0 = inherit.  Ignored under ASan
  /// (the shadow mapping needs terabytes of address space).
  int child_mem_mb = 0;
  /// RLIMIT_CPU for the child in whole seconds; 0 derives it from the
  /// hang timeout (2x + 2 s) as a backstop against scheduler starvation
  /// of the parent's wall-clock watchdog.
  int child_cpu_s = 0;
};

/// How one sandboxed run terminated and what was salvaged from it.
struct SandboxStats {
  bool forked = false;       // false: fell back to the in-process launcher
  bool signal_kill = false;  // the child died to a real signal
  bool hang_kill = false;    // the supervisor SIGKILLed a wedged child
  int term_signal = 0;       // terminating signal when signal_kill
  /// Bytes recovered from the dead child: pipe stream plus harvested
  /// shared-map coverage bytes.
  std::size_t harvest_bytes = 0;
  /// Branch ids whose coverage was recovered from the shared map instead
  /// of a delivered rank log (sorted ascending; empty when the child
  /// delivered a full result).  The attribution ledger uses this to flag
  /// first hits that survived a child death.
  std::vector<sym::BranchId> harvested;
};

/// True when this build can actually fork a child (POSIX).
[[nodiscard]] bool sandbox_supported();

/// Maps a real termination signal onto the simulated-fault taxonomy, so
/// sandboxed outcomes round-trip through to_string/outcome_from_string and
/// replay exactly like in-process ones.
[[nodiscard]] rt::Outcome outcome_for_signal(int sig);

/// Runs one test in a forked child.  Never throws target faults and never
/// lets the child's death propagate: a crashed or hung child yields a
/// synthesized RunResult carrying the mapped outcome and the harvested
/// coverage, distributed to the per-rank logs named by the sink's rank
/// stamps (unattributable stamps fall back to the reporting rank).
[[nodiscard]] minimpi::RunResult run_sandboxed(
    const minimpi::LaunchSpec& spec, const rt::BranchTable& table,
    const SandboxOptions& options, SandboxStats* stats = nullptr);

}  // namespace compi::sandbox
