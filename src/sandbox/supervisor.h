// Process-isolated run sandbox: contain real crashes and hangs.
//
// The paper's artifact launches targets as separate OS processes under
// `mpiexec`, so a segfaulting or wedged target can never take the tester
// down with it.  MiniMPI runs every rank as a thread in the tester's own
// address space; a *genuine* SIGSEGV, heap smash, or uninstrumented
// infinite loop (one that executes no branch events, evading both the step
// budget and the cooperative world deadline) would kill or hang the whole
// campaign.  run_sandboxed() restores the paper's process boundary per
// iteration: fork() the whole MiniMPI world into a child, run the launcher
// there, and stream the results back over a pipe (wire.h).  The parent
//  * enforces a wall-clock hang timeout (SIGKILL on expiry) and optional
//    CPU / address-space rlimits on the child,
//  * maps real termination signals onto the existing rt::Outcome taxonomy
//    (SIGSEGV/SIGBUS -> kSegfault, SIGFPE -> kFpe, SIGABRT -> kAssert,
//    SIGKILL/SIGXCPU -> kTimeout),
//  * harvests whatever coverage the child flushed before dying, via a
//    MAP_SHARED byte-per-branch mirror installed as the child's coverage
//    sink (runtime/coverage_sink.h).  Sink bytes carry the marking rank
//    (rank + 1, first-write-wins), so harvested coverage is attributed to
//    the rank that executed each branch, not lumped onto the focus.
//
// On platforms without fork() the sandbox degrades to the in-process
// launcher (SandboxStats::forked stays false), so in-process mode remains
// the default for tests and non-POSIX builds.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "minimpi/launcher.h"

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define COMPI_SANDBOX_POSIX 1
#endif

namespace compi::sandbox {

class FrameReader;

struct SandboxOptions {
  /// Wall-clock budget for the whole child process; past it the child is
  /// SIGKILLed and the run reports kTimeout.  0 derives 2x the launch
  /// spec's cooperative timeout plus 2 s headroom, so the in-child
  /// watchdog always gets the first chance to report a simulated hang.
  std::chrono::milliseconds hang_timeout{0};
  /// RLIMIT_AS for the child in MiB; 0 = inherit.  Ignored under ASan
  /// (the shadow mapping needs terabytes of address space).
  int child_mem_mb = 0;
  /// RLIMIT_CPU for the child in whole seconds; 0 derives it from the
  /// hang timeout (2x + 2 s) as a backstop against scheduler starvation
  /// of the parent's wall-clock watchdog.
  int child_cpu_s = 0;
};

/// How one sandboxed run terminated and what was salvaged from it.
struct SandboxStats {
  bool forked = false;       // false: fell back to the in-process launcher
  bool signal_kill = false;  // the child died to a real signal
  bool hang_kill = false;    // the supervisor SIGKILLed a wedged child
  int term_signal = 0;       // terminating signal when signal_kill
  /// Bytes recovered from the dead child: pipe stream plus harvested
  /// shared-map coverage bytes.
  std::size_t harvest_bytes = 0;
  /// Branch ids whose coverage was recovered from the shared map instead
  /// of a delivered rank log (sorted ascending; empty when the child
  /// delivered a full result).  The attribution ledger uses this to flag
  /// first hits that survived a child death.
  std::vector<sym::BranchId> harvested;
};

/// True when this build can actually fork a child (POSIX).
[[nodiscard]] bool sandbox_supported();

/// Maps a real termination signal onto the simulated-fault taxonomy, so
/// sandboxed outcomes round-trip through to_string/outcome_from_string and
/// replay exactly like in-process ones.
[[nodiscard]] rt::Outcome outcome_for_signal(int sig);

/// Runs one test in a forked child.  Never throws target faults and never
/// lets the child's death propagate: a crashed or hung child yields a
/// synthesized RunResult carrying the mapped outcome and the harvested
/// coverage, distributed to the per-rank logs named by the sink's rank
/// stamps (unattributable stamps fall back to the reporting rank).
[[nodiscard]] minimpi::RunResult run_sandboxed(
    const minimpi::LaunchSpec& spec, const rt::BranchTable& table,
    const SandboxOptions& options, SandboxStats* stats = nullptr);

// Shared machinery between the per-iteration supervisor (run_sandboxed) and
// the fork server (fork_server.h).  Both spawn a child that runs
// child_main, watch it against the same hang deadline, and interpret the
// frame stream plus wait status through interpret_child_exit so a
// grandchild crash is reported identically either way.
namespace detail {

/// Human-readable name for the signals the sandbox maps (SIGSEGV, ...).
[[nodiscard]] const char* signal_name(int sig);

/// The wall-clock kill deadline for one child: the explicit option, or 2x
/// the spec's cooperative timeout plus 2 s headroom.
[[nodiscard]] std::chrono::milliseconds derive_hang(
    const SandboxOptions& options, const minimpi::LaunchSpec& spec);

/// Builds the job the campaign records when the child died without
/// delivering a result frame (mapped outcome on the reporting rank,
/// kAborted peers, shared-map harvest distributed by rank stamp).
[[nodiscard]] minimpi::RunResult synthesize_dead_child(
    const minimpi::LaunchSpec& spec, const rt::BranchTable& table,
    const unsigned char* map, std::size_t map_size, rt::Outcome outcome,
    std::string message);

#ifdef COMPI_SANDBOX_POSIX

/// Full write() loop; gives up silently once the reader is gone.
void write_all(int fd, const std::string& bytes);

/// Body of a sandboxed child: installs the fatal-signal reporter, rlimit
/// fences, and shared coverage sink, runs the launcher, streams the
/// R/E + V frames to write_fd, and _exit()s.  Never returns.
[[noreturn]] void child_main(const minimpi::LaunchSpec& spec,
                             const rt::BranchTable& table,
                             const SandboxOptions& options,
                             std::chrono::milliseconds hang, int read_fd,
                             int write_fd, unsigned char* map,
                             std::size_t map_size);

/// Turns a finished child's frame stream + wait status into the campaign's
/// RunResult, updating `st` (signal/hang kills, harvest accounting).
/// Precedence: hang kill > real signal > decoded result > error frame >
/// exit-without-result.  `status` is the raw waitpid status.
[[nodiscard]] minimpi::RunResult interpret_child_exit(
    const minimpi::LaunchSpec& spec, const rt::BranchTable& table,
    FrameReader& reader, const unsigned char* map, std::size_t map_size,
    bool timed_out, int status, double wall, std::chrono::milliseconds hang,
    SandboxStats& st);

#endif  // COMPI_SANDBOX_POSIX

}  // namespace detail

}  // namespace compi::sandbox
