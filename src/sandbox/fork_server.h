// AFL-style fork server: amortize sandbox setup across a whole campaign.
//
// run_sandboxed() pays a full fork() of the tester — registry, branch
// table, planner heaps and all — per iteration (~0.33 ms in bench_micro,
// ROADMAP item 1's "single biggest raw-speed lever").  The fork server
// restores AFL's snapshot-at-entry pattern: one long-lived *server* child
// is forked once, parks in a tight loop just before iteration dispatch,
// and forks each iteration's *grandchild* from that warm snapshot.  The
// grandchild runs the exact same detail::child_main as a cold sandbox
// child, so crash containment, signal→Outcome mapping, rlimit fences, and
// shared-map coverage harvest are byte-for-byte the cold path's.
//
// Three pipes (wire.h framing everywhere):
//   ctl  parent → server   kRegistry sync suffixes, then one kSpawn per
//                          iteration (the per-iteration launch params).
//   st   server → parent   one kHello at startup, then kStatus lifecycle
//                          frames: "spawned <pid>", "reaped <status>",
//                          "reject <reason>".
//   res  grandchild → parent   the classic kResult/kError/kSignal/
//                          kRegistry stream.  The server holds the write
//                          end open for its whole life, so the parent
//                          reads it non-blocking and treats the server's
//                          "reaped" frame — not EOF — as end-of-stream.
//
// Registry discipline: the server builds its OWN VarRegistry purely from
// the parent's kRegistry suffix frames (never touching the parent's
// mutex-guarded registry across fork).  Interning is append-only and
// first-marking-wins, so replaying suffixes in order reproduces identical
// dense variable ids; new variables a grandchild interns travel back on
// the res pipe exactly as in the cold path and get re-shipped as the next
// suffix.
//
// Fallback ladder: `--fork-server=off` never starts a server; a server
// death (EPIPE on ctl, waitpid, or an unresponsive spawn) cold-forks the
// in-flight iteration via run_sandboxed — the iteration is never lost —
// and the server is restarted up to ForkServerOptions::max_restarts times
// before the engine degrades permanently to per-iteration fork.
#pragma once

#include <cstdint>

#include "sandbox/supervisor.h"
#include "sandbox/wire.h"

namespace compi::sandbox {

struct ForkServerOptions {
  SandboxOptions sandbox;
  /// Server deaths tolerated before degrading to cold per-iteration fork.
  int max_restarts = 3;
};

struct ForkServerStats {
  std::uint64_t warm_spawns = 0;  // iterations forked from the snapshot
  std::uint64_t cold_forks = 0;   // iterations that fell back to run_sandboxed
  std::uint64_t restarts = 0;     // server deaths observed
  bool degraded = false;          // restart budget exhausted; cold forever
  /// Wall seconds of the most recent warm spawn (spawn → reaped),
  /// exported to the driver's spawn-latency histogram.
  double last_spawn_seconds = 0.0;
};

/// One warm-snapshot execution engine.  NOT thread-safe: the parallel
/// driver gives each worker its own instance (each server child is forked
/// from — and serves — exactly one worker thread).
class ForkServer {
 public:
  ForkServer(const rt::BranchTable& table, ForkServerOptions options);
  ~ForkServer();

  ForkServer(const ForkServer&) = delete;
  ForkServer& operator=(const ForkServer&) = delete;

  /// Runs one iteration, warm when possible.  The first call captures
  /// `spec` as the snapshot prototype (program + table are fixed for a
  /// campaign); later calls may vary everything a SpawnRequest carries.
  /// Behaves exactly like run_sandboxed: never throws target faults, maps
  /// child deaths onto synthesized results, updates `stats` per run.
  /// `warm` (when non-null) reports whether this run used the snapshot.
  [[nodiscard]] minimpi::RunResult run(const minimpi::LaunchSpec& spec,
                                       SandboxStats* stats = nullptr,
                                       bool* warm = nullptr);

  [[nodiscard]] const ForkServerStats& stats() const { return stats_; }

  /// True once the restart budget is exhausted (every run cold-forks).
  [[nodiscard]] bool degraded() const { return stats_.degraded; }

  /// Pid of the live server child, or -1 when none is running.  Exposed
  /// for diagnostics and for the crash-path tests, which SIGKILL the
  /// server mid-campaign to exercise the fallback ladder.
  [[nodiscard]] long server_pid() const { return started_ ? server_pid_ : -1; }

 private:
  bool start(const minimpi::LaunchSpec& prototype);
  void note_server_death();
  void shutdown();

  const rt::BranchTable& table_;
  ForkServerOptions options_;
  ForkServerStats stats_;

  bool started_ = false;
  long server_pid_ = -1;
  int ctl_fd_ = -1;  // write end
  int st_fd_ = -1;   // read end
  int res_fd_ = -1;  // read end, O_NONBLOCK
  unsigned char* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t map_size_ = 0;
  /// Variables already shipped to the server; the next sync sends the
  /// suffix [synced_vars_, registry.size()).
  std::size_t synced_vars_ = 0;
  FrameReader st_reader_;
};

/// Gate for the `--batch-reset` non-isolated fast path: after `warmup`
/// consecutive clean runs (no real signal, no hang kill, job outcome kOk)
/// the target has earned in-process execution; any fault demotes it back
/// to the sandbox until it re-earns the streak.
class BatchGate {
 public:
  explicit BatchGate(int warmup) : warmup_(warmup) {}

  [[nodiscard]] bool ready() const { return streak_ >= warmup_; }
  void record_clean() {
    if (streak_ < warmup_) ++streak_;
  }
  void record_fault() { streak_ = 0; }

 private:
  int warmup_;
  int streak_ = 0;
};

/// The batched fast path itself: clears any leftover coverage sink and
/// runs the launcher in-process — bit-identical to a non-isolated serial
/// iteration, with zero process creation.
[[nodiscard]] minimpi::RunResult run_batch_reset(
    const minimpi::LaunchSpec& spec, const rt::BranchTable& table);

}  // namespace compi::sandbox
