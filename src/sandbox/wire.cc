#include "sandbox/wire.h"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "symbolic/serialize.h"

namespace compi::sandbox {

namespace {

/// Ceiling on a single frame payload; anything larger is a corrupt header
/// (a torn write interleaved into the stream), not a real frame.
constexpr std::uint32_t kMaxFramePayload = 256u * 1024 * 1024;

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32_le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

bool known_type(char t) {
  return t == static_cast<char>(FrameType::kResult) ||
         t == static_cast<char>(FrameType::kError) ||
         t == static_cast<char>(FrameType::kSignal) ||
         t == static_cast<char>(FrameType::kRegistry) ||
         t == static_cast<char>(FrameType::kSpawn) ||
         t == static_cast<char>(FrameType::kHello) ||
         t == static_cast<char>(FrameType::kStatus);
}

/// Expects the next token to equal `tag`; poisons the stream otherwise.
bool expect(std::istream& is, std::string_view tag) {
  std::string tok;
  if (!(is >> tok) || tok != tag) {
    is.setstate(std::ios::failbit);
    return false;
  }
  return true;
}

/// Reads the rest of the line (after one separating space) as a string.
std::string read_tail(std::istream& is) {
  std::string line;
  if (is.peek() == ' ') is.get();
  std::getline(is, line);
  return line;
}

std::optional<rt::Outcome> read_outcome(std::istream& is) {
  std::string tok;
  if (!(is >> tok)) return std::nullopt;
  return rt::outcome_from_string(tok);
}

void write_assignment(std::ostream& os, const solver::Assignment& a) {
  os << a.size();
  std::vector<std::pair<solver::Var, std::int64_t>> entries(a.begin(),
                                                            a.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [v, value] : entries) os << ' ' << v << ' ' << value;
}

bool read_assignment(std::istream& is, solver::Assignment& a) {
  std::size_t n = 0;
  if (!(is >> n)) return false;
  a.clear();
  a.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    solver::Var v = 0;
    std::int64_t value = 0;
    if (!(is >> v >> value)) return false;
    a[v] = value;
  }
  return true;
}

}  // namespace

void append_frame(std::string& out, FrameType type,
                  std::string_view payload) {
  put_u32_le(out, static_cast<std::uint32_t>(payload.size()));
  out.push_back(static_cast<char>(type));
  out.append(payload);
}

void FrameReader::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
  fed_ += n;
}

std::optional<Frame> FrameReader::next() {
  if (corrupt_) return std::nullopt;
  if (buf_.size() - pos_ < kFrameHeaderBytes) return std::nullopt;
  const std::uint32_t len = get_u32_le(buf_.data() + pos_);
  const char type = buf_[pos_ + 4];
  if (len > kMaxFramePayload || !known_type(type)) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (buf_.size() - pos_ - kFrameHeaderBytes < len) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload = buf_.substr(pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  return frame;
}

void write_test_log(std::ostream& os, const rt::TestLog& log) {
  os << "log " << (log.heavy ? 1 : 0) << ' ' << log.rank << ' '
     << log.nprocs << ' ' << rt::to_string(log.outcome) << '\n';
  os << "msg " << serial::escape(log.outcome_message) << '\n';
  const std::vector<sym::BranchId> ids = log.covered.covered_ids();
  os << "covered " << log.covered.size() << ' ' << ids.size();
  for (sym::BranchId b : ids) os << ' ' << b;
  os << '\n';
  os << "path ";
  serial::write_path(os, log.path);
  os << "btrace " << log.branch_trace.size();
  for (sym::BranchId b : log.branch_trace) os << ' ' << b;
  os << '\n';
  os << "ops " << log.op_count << '\n';
  os << "inputs ";
  write_assignment(os, log.inputs_used);
  os << '\n';
  os << "comm_sizes " << log.comm_sizes.size();
  for (std::int64_t s : log.comm_sizes) os << ' ' << s;
  os << '\n';
  os << "mappings " << log.rank_mapping.size() << '\n';
  for (const std::vector<int>& row : log.rank_mapping) {
    os << "mapping " << row.size();
    for (int g : row) os << ' ' << g;
    os << '\n';
  }
  os << "end_log\n";
}

bool read_test_log(std::istream& is, rt::TestLog& log) {
  int heavy = 0;
  if (!expect(is, "log") || !(is >> heavy >> log.rank >> log.nprocs)) {
    return false;
  }
  log.heavy = heavy != 0;
  const auto outcome = read_outcome(is);
  if (!outcome) return false;
  log.outcome = *outcome;
  if (!expect(is, "msg")) return false;
  log.outcome_message = serial::unescape(read_tail(is));

  std::size_t bitmap_size = 0;
  std::size_t n = 0;
  if (!expect(is, "covered") || !(is >> bitmap_size >> n)) return false;
  log.covered = rt::CoverageBitmap(bitmap_size);
  for (std::size_t i = 0; i < n; ++i) {
    sym::BranchId b = 0;
    if (!(is >> b)) return false;
    log.covered.mark(b);
  }

  if (!expect(is, "path") || !serial::read_path(is, log.path)) return false;

  if (!expect(is, "btrace") || !(is >> n)) return false;
  log.branch_trace.clear();
  log.branch_trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sym::BranchId b = 0;
    if (!(is >> b)) return false;
    log.branch_trace.push_back(b);
  }

  if (!expect(is, "ops") || !(is >> log.op_count)) return false;
  if (!expect(is, "inputs") || !read_assignment(is, log.inputs_used)) {
    return false;
  }

  if (!expect(is, "comm_sizes") || !(is >> n)) return false;
  log.comm_sizes.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> log.comm_sizes[i])) return false;
  }

  if (!expect(is, "mappings") || !(is >> n)) return false;
  log.rank_mapping.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t row = 0;
    if (!expect(is, "mapping") || !(is >> row)) return false;
    log.rank_mapping[i].assign(row, 0);
    for (std::size_t j = 0; j < row; ++j) {
      if (!(is >> log.rank_mapping[i][j])) return false;
    }
  }
  return expect(is, "end_log");
}

std::string encode_run_result(const minimpi::RunResult& run) {
  std::ostringstream os;
  os << "run " << run.focus << ' ' << serial::format_double(run.wall_seconds)
     << ' ' << run.ranks.size() << '\n';
  for (std::size_t r = 0; r < run.ranks.size(); ++r) {
    const minimpi::RankResult& rank = run.ranks[r];
    os << "rank " << r << ' ' << rt::to_string(rank.outcome) << '\n';
    os << "rmsg " << serial::escape(rank.message) << '\n';
    write_test_log(os, rank.log);
  }
  // Wildcard decision trace (match-scheduled runs; empty otherwise).  Both
  // sides of the pipe are the same binary, so growing the format needs no
  // compatibility shim.
  os << "matches " << run.match_trace.size() << ' '
     << (run.match_diverged ? 1 : 0) << '\n';
  for (const minimpi::MatchRecord& m : run.match_trace) {
    os << "match " << m.rank << ' ' << m.seq << ' ' << m.chosen_src << ' '
       << m.comm_uid << ' ' << m.tag << ' ' << m.feasible.size();
    for (int f : m.feasible) os << ' ' << f;
    os << '\n';
  }
  os << "end_run\n";
  return os.str();
}

bool decode_run_result(std::string_view payload, minimpi::RunResult& out) {
  std::istringstream is{std::string(payload)};
  std::size_t nranks = 0;
  std::string wall;
  if (!expect(is, "run") || !(is >> out.focus >> wall >> nranks)) {
    return false;
  }
  try {
    out.wall_seconds = std::stod(wall);
  } catch (...) {
    return false;
  }
  out.ranks.assign(nranks, {});
  for (std::size_t r = 0; r < nranks; ++r) {
    std::size_t idx = 0;
    if (!expect(is, "rank") || !(is >> idx) || idx != r) return false;
    const auto outcome = read_outcome(is);
    if (!outcome) return false;
    out.ranks[r].outcome = *outcome;
    if (!expect(is, "rmsg")) return false;
    out.ranks[r].message = serial::unescape(read_tail(is));
    if (!read_test_log(is, out.ranks[r].log)) return false;
  }
  std::size_t nmatches = 0;
  int diverged = 0;
  if (!expect(is, "matches") || !(is >> nmatches >> diverged)) return false;
  out.match_diverged = diverged != 0;
  out.match_trace.clear();
  out.match_trace.reserve(std::min<std::size_t>(nmatches, 1u << 20));
  for (std::size_t i = 0; i < nmatches; ++i) {
    minimpi::MatchRecord m;
    std::size_t nfeasible = 0;
    if (!expect(is, "match") ||
        !(is >> m.rank >> m.seq >> m.chosen_src >> m.comm_uid >> m.tag >>
          nfeasible)) {
      return false;
    }
    m.feasible.assign(nfeasible, 0);
    for (std::size_t j = 0; j < nfeasible; ++j) {
      if (!(is >> m.feasible[j])) return false;
    }
    out.match_trace.push_back(std::move(m));
  }
  return expect(is, "end_run");
}

namespace {

std::string encode_registry_from(const rt::VarRegistry& registry,
                                 std::size_t start) {
  std::ostringstream os;
  const std::vector<rt::VarMeta> metas = registry.all();
  const std::size_t first = std::min(start, metas.size());
  os << "registry " << (metas.size() - first) << '\n';
  for (std::size_t i = first; i < metas.size(); ++i) {
    const rt::VarMeta& m = metas[i];
    os << "var " << static_cast<int>(m.kind) << ' ' << m.domain.lo << ' '
       << m.domain.hi << ' ';
    if (m.cap) {
      os << *m.cap;
    } else {
      os << "none";
    }
    os << ' ' << m.comm_index << ' ' << serial::escape(m.key) << '\n';
  }
  os << "end_registry\n";
  return os.str();
}

}  // namespace

std::string encode_registry(const rt::VarRegistry& registry) {
  return encode_registry_from(registry, 0);
}

std::string encode_registry_suffix(const rt::VarRegistry& registry,
                                   std::size_t start) {
  return encode_registry_from(registry, start);
}

bool apply_registry(std::string_view payload, rt::VarRegistry& registry) {
  std::istringstream is{std::string(payload)};
  std::size_t n = 0;
  if (!expect(is, "registry") || !(is >> n)) return false;
  for (std::size_t i = 0; i < n; ++i) {
    rt::VarMeta m;
    int kind = 0;
    std::string cap;
    if (!expect(is, "var") ||
        !(is >> kind >> m.domain.lo >> m.domain.hi >> cap >> m.comm_index)) {
      return false;
    }
    m.kind = static_cast<rt::VarKind>(kind);
    std::optional<std::int64_t> cap_value;
    if (cap != "none") {
      try {
        cap_value = std::stoll(cap);
      } catch (...) {
        return false;
      }
    }
    m.key = serial::unescape(read_tail(is));
    registry.intern(m.key, m.kind, m.domain, cap_value, m.comm_index);
  }
  return expect(is, "end_registry");
}

std::string encode_spawn_request(const SpawnRequest& req) {
  std::ostringstream os;
  os << "spawn " << req.nprocs << ' ' << req.focus << ' '
     << (req.one_way ? 1 : 0) << ' ' << req.rng_seed << ' '
     << req.step_budget << ' ' << (req.reduction ? 1 : 0) << ' '
     << (req.mark_mpi_vars ? 1 : 0) << ' ' << req.timeout_ms << ' '
     << req.hang_ms << ' ' << req.track_base << ' '
     << (req.match_schedule ? 1 : 0) << '\n';
  os << "inputs ";
  write_assignment(os, req.inputs);
  os << '\n';
  os << "chaos " << req.chaos.seed << ' '
     << serial::format_double(req.chaos.drop_rate) << ' '
     << serial::format_double(req.chaos.delay_rate) << ' '
     << req.chaos.delay.count() << ' ' << req.chaos.crash_rank << ' '
     << req.chaos.crash_at_call << ' '
     << rt::to_string(req.chaos.crash_outcome) << ' ' << req.chaos.stall_rank
     << ' ' << req.chaos.stall_at_collective << '\n';
  os << "plan " << req.match_plan.size() << '\n';
  for (const minimpi::MatchDecision& d : req.match_plan) {
    os << "d " << d.rank << ' ' << d.seq << ' ' << d.src << '\n';
  }
  os << "end_spawn\n";
  return os.str();
}

bool decode_spawn_request(std::string_view payload, SpawnRequest& out) {
  std::istringstream is{std::string(payload)};
  int one_way = 0, reduction = 0, mark = 0, match_schedule = 0;
  if (!expect(is, "spawn") ||
      !(is >> out.nprocs >> out.focus >> one_way >> out.rng_seed >>
        out.step_budget >> reduction >> mark >> out.timeout_ms >>
        out.hang_ms >> out.track_base >> match_schedule)) {
    return false;
  }
  out.one_way = one_way != 0;
  out.reduction = reduction != 0;
  out.mark_mpi_vars = mark != 0;
  out.match_schedule = match_schedule != 0;
  if (!expect(is, "inputs") || !read_assignment(is, out.inputs)) return false;

  std::string drop, delay_rate;
  std::int64_t delay_ms = 0;
  if (!expect(is, "chaos") ||
      !(is >> out.chaos.seed >> drop >> delay_rate >> delay_ms >>
        out.chaos.crash_rank >> out.chaos.crash_at_call)) {
    return false;
  }
  const auto crash_outcome = read_outcome(is);
  if (!crash_outcome ||
      !(is >> out.chaos.stall_rank >> out.chaos.stall_at_collective)) {
    return false;
  }
  out.chaos.crash_outcome = *crash_outcome;
  try {
    out.chaos.drop_rate = std::stod(drop);
    out.chaos.delay_rate = std::stod(delay_rate);
  } catch (...) {
    return false;
  }
  out.chaos.delay = std::chrono::milliseconds(delay_ms);

  std::size_t n = 0;
  if (!expect(is, "plan") || !(is >> n)) return false;
  out.match_plan.clear();
  out.match_plan.reserve(std::min<std::size_t>(n, 1u << 20));
  for (std::size_t i = 0; i < n; ++i) {
    minimpi::MatchDecision d;
    if (!expect(is, "d") || !(is >> d.rank >> d.seq >> d.src)) return false;
    out.match_plan.push_back(d);
  }
  return expect(is, "end_spawn");
}

}  // namespace compi::sandbox
