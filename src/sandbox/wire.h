// Supervisor <-> child wire format: length-prefixed frames over a pipe.
//
// A sandboxed child streams its results back to the supervisor as frames:
// a 4-byte little-endian payload length, a 1-byte type tag, then the
// payload.  A cleanly finishing child writes one kResult frame holding the
// full RunResult (every rank's TestLog, serialized with the same text
// helpers the checkpoint format uses); a child whose launcher threw writes
// a kError frame; a fatal-signal handler squeezes out a kSignal frame
// (just the signal number) before re-raising.  The reader consumes the raw
// byte stream incrementally and simply stops at a trailing partial or
// malformed frame — exactly the residue a dying child leaves behind.
//
// The fork server (fork_server.h) speaks the same framing on two more
// pipes: the supervisor sends kRegistry sync frames plus one kSpawn frame
// per iteration down the control pipe, and the server answers with one
// kHello at startup and kStatus lifecycle frames ("spawned <pid>",
// "reaped <wait-status>") per spawn.  Grandchild results still travel as
// the classic kResult/kError/kSignal/kRegistry stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "minimpi/launcher.h"
#include "runtime/var_registry.h"

namespace compi::sandbox {

enum class FrameType : char {
  kResult = 'R',    // payload: encode_run_result() text
  kError = 'E',     // payload: launcher error message
  kSignal = 'S',    // payload: decimal signal number (fatal-signal handler)
  kRegistry = 'V',  // payload: encode_registry() text (child's var interns)
  kSpawn = 'W',     // payload: encode_spawn_request() text (ctl pipe)
  kHello = 'H',     // payload: "compi-fork-server <version> <pid>"
  kStatus = 'T',    // payload: "spawned <pid>" | "reaped <status>" |
                    //          "reject <reason>"
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Bytes of framing overhead per frame (length prefix + type tag).
inline constexpr std::size_t kFrameHeaderBytes = 5;

/// Appends one frame (header + payload) to `out`.
void append_frame(std::string& out, FrameType type, std::string_view payload);

/// Incremental frame parser over the raw pipe byte stream.  Tolerates (and
/// stops at) truncated or corrupt tails: next() returns nullopt once the
/// buffered bytes no longer start with a complete well-formed frame.
class FrameReader {
 public:
  void feed(const char* data, std::size_t n);

  /// The next complete frame, or nullopt (partial tail, corrupt tail, or
  /// nothing buffered).
  [[nodiscard]] std::optional<Frame> next();

  /// True once a malformed header was seen; everything after it is ignored.
  [[nodiscard]] bool corrupt() const { return corrupt_; }
  /// Total bytes fed so far (the supervisor's harvest accounting).
  [[nodiscard]] std::size_t bytes_fed() const { return fed_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  std::size_t fed_ = 0;
  bool corrupt_ = false;
};

/// Serializes a full RunResult — outcome, message, and complete TestLog
/// (coverage, path, trace, inputs) for every rank.
[[nodiscard]] std::string encode_run_result(const minimpi::RunResult& run);

/// Inverse of encode_run_result.  False on any parse error.
[[nodiscard]] bool decode_run_result(std::string_view payload,
                                     minimpi::RunResult& out);

/// One rank's TestLog round-trip (exposed for tests).
void write_test_log(std::ostream& os, const rt::TestLog& log);
[[nodiscard]] bool read_test_log(std::istream& is, rt::TestLog& log);

/// Serializes the registry's full contents in intern (= variable id)
/// order.  The child mutates only its fork-copied registry, so new input
/// variables it interned must be shipped back for the parent's planner —
/// replaying the interns in order reproduces identical dense ids
/// (first-marking-wins makes the shared prefix a no-op).
[[nodiscard]] std::string encode_registry(const rt::VarRegistry& registry);

/// Replays an encode_registry() payload into `registry`.  False on any
/// parse error (the registry keeps whatever prefix was applied).
[[nodiscard]] bool apply_registry(std::string_view payload,
                                  rt::VarRegistry& registry);

/// Like encode_registry but only variables with id >= `start`: the
/// append-only suffix the fork server hasn't seen yet.  Interning is
/// first-marking-wins and never removes, so replaying suffixes in order
/// reconstructs identical dense ids on the server side.
[[nodiscard]] std::string encode_registry_suffix(
    const rt::VarRegistry& registry, std::size_t start);

/// Everything about one warm spawn that varies between iterations.  The
/// server captured the target program, branch table, and sandbox options
/// when it forked; a kSpawn frame carries only the per-iteration launch
/// parameters (including the chaos plan and any prescribed wildcard
/// decisions) plus the supervisor-derived hang deadline the grandchild's
/// rlimit fence is sized from.
struct SpawnRequest {
  int nprocs = 1;
  int focus = 0;
  bool one_way = false;
  solver::Assignment inputs;
  std::uint64_t rng_seed = 1;
  std::int64_t step_budget = 2'000'000;
  bool reduction = true;
  bool mark_mpi_vars = true;
  std::int64_t timeout_ms = 30'000;
  std::int64_t hang_ms = 62'000;
  int track_base = 0;
  bool match_schedule = false;
  minimpi::MatchPlan match_plan;
  minimpi::FaultPlan chaos;
};

[[nodiscard]] std::string encode_spawn_request(const SpawnRequest& req);

/// Inverse of encode_spawn_request.  False on any parse error (the server
/// rejects the spawn and the supervisor cold-forks that iteration).
[[nodiscard]] bool decode_spawn_request(std::string_view payload,
                                        SpawnRequest& out);

}  // namespace compi::sandbox
