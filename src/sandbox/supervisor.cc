#include "sandbox/supervisor.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <optional>
#include <string>

#include "runtime/coverage_sink.h"
#include "sandbox/wire.h"

#ifdef COMPI_SANDBOX_POSIX
#include <poll.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

// ASan reserves terabytes of address space for its shadow; RLIMIT_AS would
// kill every child instantly, so the limit is skipped in sanitized builds.
#if defined(__SANITIZE_ADDRESS__)
#define COMPI_SANDBOX_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define COMPI_SANDBOX_ASAN 1
#endif
#endif

namespace compi::sandbox {

rt::Outcome outcome_for_signal(int sig) {
  switch (sig) {
    case SIGSEGV: return rt::Outcome::kSegfault;
#ifdef SIGBUS
    case SIGBUS: return rt::Outcome::kSegfault;
#endif
    case SIGILL: return rt::Outcome::kSegfault;
    case SIGFPE: return rt::Outcome::kFpe;
    case SIGABRT: return rt::Outcome::kAssert;
#ifdef SIGKILL
    case SIGKILL: return rt::Outcome::kTimeout;
#endif
#ifdef SIGXCPU
    case SIGXCPU: return rt::Outcome::kTimeout;
#endif
    default: return rt::Outcome::kMpiError;
  }
}

namespace detail {

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGABRT: return "SIGABRT";
#ifdef SIGBUS
    case SIGBUS: return "SIGBUS";
#endif
#ifdef SIGKILL
    case SIGKILL: return "SIGKILL";
#endif
#ifdef SIGXCPU
    case SIGXCPU: return "SIGXCPU";
#endif
    default: return "signal";
  }
}

std::chrono::milliseconds derive_hang(const SandboxOptions& options,
                                      const minimpi::LaunchSpec& spec) {
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;
  return options.hang_timeout.count() > 0
             ? options.hang_timeout
             : duration_cast<milliseconds>(spec.timeout) * 2 +
                   milliseconds(2000);
}

/// The mapped outcome lands on the reporting rank, peers get kAborted
/// (mpiexec tears the rest of the job down the same way), and the
/// shared-map coverage harvest is distributed to the per-rank logs named
/// by the sink's rank stamps.  Stamps outside the world (saturated, or
/// from a mis-sized map) fall back to the reporting rank.
minimpi::RunResult synthesize_dead_child(const minimpi::LaunchSpec& spec,
                                         const rt::BranchTable& table,
                                         const unsigned char* map,
                                         std::size_t map_size,
                                         rt::Outcome outcome,
                                         std::string message) {
  minimpi::RunResult run;
  const int nprocs = std::max(spec.nprocs, 1);
  run.focus = spec.focus;
  run.ranks.resize(static_cast<std::size_t>(nprocs));
  const int report =
      spec.focus >= 0 && spec.focus < nprocs ? spec.focus : 0;
  for (int r = 0; r < nprocs; ++r) {
    minimpi::RankResult& rank = run.ranks[static_cast<std::size_t>(r)];
    rank.log.rank = r;
    rank.log.nprocs = nprocs;
    rank.log.heavy = spec.one_way || r == spec.focus;
    if (r == report) {
      rank.outcome = outcome;
      rank.message = message;
    } else {
      rank.outcome = rt::Outcome::kAborted;
      rank.message = "job torn down with its killed sibling";
    }
    rank.log.outcome = rank.outcome;
    rank.log.outcome_message = rank.message;
    rank.log.covered = rt::CoverageBitmap(table.num_branches());
  }
  for (std::size_t i = 0; map != nullptr && i < map_size; ++i) {
    if (map[i] == 0) continue;
    int rank = rt::coverage_sink_rank(map[i]);
    if (rank < 0 || rank >= nprocs) rank = report;
    run.ranks[static_cast<std::size_t>(rank)].log.covered.mark(
        static_cast<sym::BranchId>(i));
  }
  return run;
}

#ifdef COMPI_SANDBOX_POSIX

namespace {

/// Pipe fd the fatal-signal handler writes its kSignal frame to.
volatile int g_signal_fd = -1;

/// Async-signal-safe: one write() of a tiny prebuilt frame, then re-raise
/// with the default disposition so the parent's waitpid sees the real
/// signal.  Races with the final result write are tolerated — the frame is
/// far below PIPE_BUF, and the parent's FrameReader stops at a torn tail.
void fatal_signal_handler(int sig) {
  const int fd = g_signal_fd;
  if (fd >= 0) {
    char frame[16];
    char digits[8];
    int n = 0;
    int v = sig;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v > 0 && n < 8);
    frame[0] = static_cast<char>(n);
    frame[1] = frame[2] = frame[3] = 0;
    frame[4] = static_cast<char>(FrameType::kSignal);
    for (int i = 0; i < n; ++i) frame[5 + i] = digits[n - 1 - i];
    ssize_t ignored = write(fd, frame, static_cast<std::size_t>(5 + n));
    (void)ignored;
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

void install_fatal_handlers() {
  struct sigaction sa {};
  sa.sa_handler = fatal_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    (void)sigaction(sig, &sa, nullptr);
  }
}

void apply_rlimits(const SandboxOptions& options, int nprocs,
                   std::chrono::milliseconds hang) {
#ifndef COMPI_SANDBOX_ASAN
  if (options.child_mem_mb > 0) {
    struct rlimit mem {};
    mem.rlim_cur = mem.rlim_max =
        static_cast<rlim_t>(options.child_mem_mb) * 1024 * 1024;
    (void)setrlimit(RLIMIT_AS, &mem);
  }
#endif
  // CPU backstop: generous enough that a legitimate job (nprocs busy
  // threads up to the hang deadline) never trips it, but a runaway child
  // dies even if the parent's wall-clock watchdog is starved.
  long long cpu_s = options.child_cpu_s;
  if (cpu_s <= 0) {
    cpu_s = (hang.count() * std::max(nprocs, 2)) / 1000 + 2;
  }
  struct rlimit cpu {};
  cpu.rlim_cur = static_cast<rlim_t>(cpu_s);
  cpu.rlim_max = static_cast<rlim_t>(cpu_s) + 2;
  (void)setrlimit(RLIMIT_CPU, &cpu);
}

}  // namespace

void write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // parent is gone; nothing left to report to
    }
    off += static_cast<std::size_t>(n);
  }
}

[[noreturn]] void child_main(const minimpi::LaunchSpec& spec,
                             const rt::BranchTable& table,
                             const SandboxOptions& options,
                             std::chrono::milliseconds hang, int read_fd,
                             int write_fd, unsigned char* map,
                             std::size_t map_size) {
  close(read_fd);
  g_signal_fd = write_fd;
  install_fatal_handlers();
  apply_rlimits(options, spec.nprocs, hang);
  rt::install_coverage_sink(map, map_size);
  std::string out;
  try {
    const minimpi::RunResult run = minimpi::launch(spec, table);
    append_frame(out, FrameType::kResult, encode_run_result(run));
  } catch (const std::exception& e) {
    out.clear();
    append_frame(out, FrameType::kError, e.what());
  } catch (...) {
    out.clear();
    append_frame(out, FrameType::kError, "unknown launcher failure");
  }
  // New input variables were interned into THIS process's fork-copied
  // registry; ship them back or the parent's planner dereferences unknown
  // variable ids on the next iteration.
  if (spec.registry != nullptr) {
    append_frame(out, FrameType::kRegistry, encode_registry(*spec.registry));
  }
  write_all(write_fd, out);
  _exit(0);
}

minimpi::RunResult interpret_child_exit(
    const minimpi::LaunchSpec& spec, const rt::BranchTable& table,
    FrameReader& reader, const unsigned char* map, std::size_t map_size,
    bool timed_out, int status, double wall, std::chrono::milliseconds hang,
    SandboxStats& st) {
  std::optional<minimpi::RunResult> decoded;
  std::optional<int> signal_frame;
  std::optional<std::string> error_frame;
  while (std::optional<Frame> f = reader.next()) {
    switch (f->type) {
      case FrameType::kResult: {
        minimpi::RunResult run;
        if (decode_run_result(f->payload, run)) decoded = std::move(run);
        break;
      }
      case FrameType::kError:
        error_frame = std::move(f->payload);
        break;
      case FrameType::kSignal: {
        int sig = 0;
        for (char c : f->payload) {
          if (c < '0' || c > '9') break;
          sig = sig * 10 + (c - '0');
        }
        if (sig > 0) signal_frame = sig;
        break;
      }
      case FrameType::kRegistry:
        if (spec.registry != nullptr) {
          (void)apply_registry(f->payload, *spec.registry);
        }
        break;
      default:
        break;  // server-side frames never appear on a result pipe
    }
  }
  st.harvest_bytes = reader.bytes_fed();
  std::vector<sym::BranchId> harvested_ids;
  for (std::size_t i = 0; map != nullptr && i < map_size; ++i) {
    if (map[i] != 0) harvested_ids.push_back(static_cast<sym::BranchId>(i));
  }
  const std::size_t harvested_branches = harvested_ids.size();

  minimpi::RunResult result;
  if (timed_out) {
    st.hang_kill = true;
    st.harvest_bytes += harvested_branches;
    st.harvested = std::move(harvested_ids);
    result = synthesize_dead_child(
        spec, table, map, map_size, rt::Outcome::kTimeout,
        "sandboxed child exceeded the hang timeout; killed by the "
        "supervisor after " +
            std::to_string(hang.count()) + " ms");
    result.wall_seconds = wall;
  } else if (WIFSIGNALED(status) || signal_frame.has_value()) {
    const int sig = signal_frame.value_or(WIFSIGNALED(status)
                                              ? WTERMSIG(status)
                                              : 0);
    st.signal_kill = true;
    st.term_signal = sig;
    st.harvest_bytes += harvested_branches;
    const std::string message = std::string("child killed by ") +
                                signal_name(sig) + " (real signal " +
                                std::to_string(sig) + ")";
    const rt::Outcome outcome = outcome_for_signal(sig);
    if (decoded.has_value()) {
      // The launcher finished (full result on the wire) but the child then
      // died tearing down — keep the complete logs, flag the outcome.
      result = std::move(*decoded);
      const std::size_t report = static_cast<std::size_t>(
          result.focus >= 0 &&
                  static_cast<std::size_t>(result.focus) < result.ranks.size()
              ? result.focus
              : 0);
      result.ranks[report].outcome = outcome;
      result.ranks[report].message = message;
      result.ranks[report].log.outcome = outcome;
      result.ranks[report].log.outcome_message = message;
    } else {
      st.harvested = std::move(harvested_ids);
      result = synthesize_dead_child(spec, table, map, map_size, outcome,
                                     message);
      result.wall_seconds = wall;
    }
  } else if (decoded.has_value()) {
    result = std::move(*decoded);
  } else if (error_frame.has_value()) {
    st.harvest_bytes += harvested_branches;
    st.harvested = std::move(harvested_ids);
    result = synthesize_dead_child(
        spec, table, map, map_size, rt::Outcome::kMpiError,
        "sandboxed launcher failed: " + *error_frame);
    result.wall_seconds = wall;
  } else {
    st.harvest_bytes += harvested_branches;
    st.harvested = std::move(harvested_ids);
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    result = synthesize_dead_child(
        spec, table, map, map_size, rt::Outcome::kMpiError,
        "sandboxed child exited with status " + std::to_string(code) +
            " without a result");
    result.wall_seconds = wall;
  }
  return result;
}

#endif  // COMPI_SANDBOX_POSIX

}  // namespace detail

bool sandbox_supported() {
#ifdef COMPI_SANDBOX_POSIX
  return true;
#else
  return false;
#endif
}

minimpi::RunResult run_sandboxed(const minimpi::LaunchSpec& spec,
                                 const rt::BranchTable& table,
                                 const SandboxOptions& options,
                                 SandboxStats* stats) {
  SandboxStats local;
  SandboxStats& st = stats != nullptr ? *stats : local;
  st = SandboxStats{};
#ifndef COMPI_SANDBOX_POSIX
  (void)options;
  return minimpi::launch(spec, table);
#else
  using std::chrono::duration;
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;
  using std::chrono::steady_clock;

  const milliseconds hang = detail::derive_hang(options, spec);

  const std::size_t map_size = table.num_branches();
  const std::size_t map_bytes = std::max<std::size_t>(map_size, 1);
  void* map = mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (map == MAP_FAILED) return minimpi::launch(spec, table);
  int fds[2];
  if (pipe(fds) != 0) {
    munmap(map, map_bytes);
    return minimpi::launch(spec, table);
  }

  // Don't let buffered stdio reach the pipe era twice: the child inherits
  // the buffers and _exit()s without flushing, but targets may print.
  std::fflush(stdout);
  std::fflush(stderr);

  const auto t0 = steady_clock::now();
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    munmap(map, map_bytes);
    return minimpi::launch(spec, table);
  }
  if (pid == 0) {
    detail::child_main(spec, table, options, hang, fds[0], fds[1],
                       static_cast<unsigned char*>(map), map_size);
  }

  // ---- parent: stream frames until EOF, enforcing the hang deadline ----
  close(fds[1]);
  st.forked = true;
  FrameReader reader;
  bool timed_out = false;
  const auto deadline = t0 + hang;
  char buf[65536];
  for (;;) {
    int wait_ms = 100;  // post-kill: just drain the pipe to EOF
    if (!timed_out) {
      const auto remaining =
          duration_cast<milliseconds>(deadline - steady_clock::now()).count();
      if (remaining <= 0) {
        (void)kill(pid, SIGKILL);
        timed_out = true;
        continue;
      }
      wait_ms = static_cast<int>(std::min<long long>(remaining, 1000));
    }
    struct pollfd pfd {};
    pfd.fd = fds[0];
    pfd.events = POLLIN;
    const int rv = poll(&pfd, 1, wait_ms);
    if (rv < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rv == 0) {
      if (timed_out) break;  // already killed; nothing more is coming
      continue;              // quiet pipe: loop re-checks the deadline
    }
    const ssize_t n = read(fds[0], buf, sizeof(buf));
    if (n <= 0) break;  // EOF: the child is gone
    reader.feed(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);

  int status = 0;
  while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  const double wall = duration<double>(steady_clock::now() - t0).count();

  minimpi::RunResult result = detail::interpret_child_exit(
      spec, table, reader, static_cast<const unsigned char*>(map), map_size,
      timed_out, status, wall, hang, st);
  munmap(map, map_bytes);
  return result;
#endif  // COMPI_SANDBOX_POSIX
}

}  // namespace compi::sandbox
