#include "sandbox/fork_server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "runtime/coverage_sink.h"

#ifdef COMPI_SANDBOX_POSIX
#include <fcntl.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace compi::sandbox {

minimpi::RunResult run_batch_reset(const minimpi::LaunchSpec& spec,
                                   const rt::BranchTable& table) {
  // A previous sandboxed iteration never installs a sink in THIS process,
  // but clearing is cheap and makes the fast path self-contained.
  rt::clear_coverage_sink();
  return minimpi::launch(spec, table);
}

#ifndef COMPI_SANDBOX_POSIX

ForkServer::ForkServer(const rt::BranchTable& table, ForkServerOptions options)
    : table_(table), options_(options) {
  stats_.degraded = true;
}
ForkServer::~ForkServer() = default;
minimpi::RunResult ForkServer::run(const minimpi::LaunchSpec& spec,
                                   SandboxStats* stats, bool* warm) {
  if (warm != nullptr) *warm = false;
  ++stats_.cold_forks;
  return run_sandboxed(spec, table_, options_.sandbox, stats);
}
bool ForkServer::start(const minimpi::LaunchSpec&) { return false; }
void ForkServer::note_server_death() {}
void ForkServer::shutdown() {}

#else  // COMPI_SANDBOX_POSIX

namespace {

using std::chrono::duration;
using std::chrono::duration_cast;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Extra wall-clock the parent grants the server to report "reaped" after
/// the grandchild's own hang deadline passed (the server's waitpid returns
/// promptly once the parent SIGKILLs the grandchild).
constexpr milliseconds kReapGrace{5000};

/// The server writes to st/res pipes whose read ends live in the parent;
/// if the parent dies first those writes must error, not kill the server
/// with SIGPIPE.  Installed once, only if the process still has the
/// default disposition (never clobber a user handler).
void ignore_sigpipe_once() {
  static const bool done = [] {
    struct sigaction cur {};
    if (sigaction(SIGPIPE, nullptr, &cur) == 0 && cur.sa_handler == SIG_DFL) {
      struct sigaction ign {};
      ign.sa_handler = SIG_IGN;
      sigemptyset(&ign.sa_mask);
      (void)sigaction(SIGPIPE, &ign, nullptr);
    }
    return true;
  }();
  (void)done;
}

void send_status(int fd, const std::string& text) {
  std::string out;
  append_frame(out, FrameType::kStatus, text);
  detail::write_all(fd, out);
}

/// The long-lived server child: applies registry suffixes, forks one
/// grandchild per kSpawn, and reports lifecycle over st.  Exits when the
/// parent closes the ctl pipe (or the stream goes corrupt).
[[noreturn]] void server_main(const minimpi::LaunchSpec& prototype,
                              const rt::BranchTable& table,
                              const SandboxOptions& sandbox, int ctl_rd,
                              int st_wr, int res_wr, unsigned char* map,
                              std::size_t map_size) {
  // The server's own registry, reconstructed purely from suffix frames:
  // forking the parent's mutex-guarded registry from a worker thread could
  // snapshot a locked mutex.  Replaying interns in order reproduces the
  // parent's dense ids exactly.
  rt::VarRegistry registry;
  minimpi::LaunchSpec base = prototype;
  base.registry = &registry;
  base.inputs = nullptr;

  std::string hello;
  append_frame(hello, FrameType::kHello,
               "compi-fork-server 1 " + std::to_string(getpid()));
  detail::write_all(st_wr, hello);

  FrameReader ctl;
  char buf[65536];
  for (;;) {
    const ssize_t n = read(ctl_rd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // parent closed the ctl pipe: campaign over
    ctl.feed(buf, static_cast<std::size_t>(n));
    while (std::optional<Frame> f = ctl.next()) {
      if (f->type == FrameType::kRegistry) {
        if (!apply_registry(f->payload, registry)) {
          send_status(st_wr, "reject registry");
        }
        continue;
      }
      if (f->type != FrameType::kSpawn) continue;
      SpawnRequest req;
      if (!decode_spawn_request(f->payload, req)) {
        send_status(st_wr, "reject decode");
        continue;
      }
      minimpi::LaunchSpec spec = base;
      spec.nprocs = req.nprocs;
      spec.focus = req.focus;
      spec.one_way = req.one_way;
      spec.inputs = &req.inputs;
      spec.rng_seed = req.rng_seed;
      spec.step_budget = req.step_budget;
      spec.reduction = req.reduction;
      spec.mark_mpi_vars = req.mark_mpi_vars;
      spec.timeout = milliseconds(req.timeout_ms);
      spec.chaos = req.chaos;
      spec.track_base = req.track_base;
      spec.match_schedule = req.match_schedule;
      spec.match_plan = req.match_plan;

      std::fflush(stdout);
      std::fflush(stderr);
      const pid_t pid = fork();
      if (pid < 0) {
        send_status(st_wr, "reject fork");
        continue;
      }
      if (pid == 0) {
        close(ctl_rd);
        close(st_wr);
        // read_fd -1: the grandchild has no supervisor-side pipe end to
        // shed — the res write end IS its result channel.
        detail::child_main(spec, table, sandbox, milliseconds(req.hang_ms),
                           -1, res_wr, map, map_size);
      }
      send_status(st_wr, "spawned " + std::to_string(pid));
      int status = 0;
      while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      send_status(st_wr, "reaped " + std::to_string(status));
    }
    if (ctl.corrupt()) break;  // poisoned control stream: let parent restart
  }
  _exit(0);
}

/// Parses the integer payload tail of "spawned <pid>" / "reaped <status>".
std::optional<long> status_arg(std::string_view payload,
                               std::string_view verb) {
  if (payload.size() <= verb.size() + 1 ||
      payload.substr(0, verb.size()) != verb ||
      payload[verb.size()] != ' ') {
    return std::nullopt;
  }
  long value = 0;
  bool neg = false;
  std::size_t i = verb.size() + 1;
  if (i < payload.size() && payload[i] == '-') {
    neg = true;
    ++i;
  }
  if (i >= payload.size()) return std::nullopt;
  for (; i < payload.size(); ++i) {
    const char c = payload[i];
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return neg ? -value : value;
}

}  // namespace

ForkServer::ForkServer(const rt::BranchTable& table, ForkServerOptions options)
    : table_(table), options_(options) {}

ForkServer::~ForkServer() { shutdown(); }

bool ForkServer::start(const minimpi::LaunchSpec& prototype) {
  ignore_sigpipe_once();
  map_size_ = table_.num_branches();
  map_bytes_ = std::max<std::size_t>(map_size_, 1);
  void* map = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (map == MAP_FAILED) return false;
  int ctl[2], st[2], res[2];
  if (pipe(ctl) != 0) {
    munmap(map, map_bytes_);
    return false;
  }
  if (pipe(st) != 0) {
    close(ctl[0]);
    close(ctl[1]);
    munmap(map, map_bytes_);
    return false;
  }
  if (pipe(res) != 0) {
    close(ctl[0]);
    close(ctl[1]);
    close(st[0]);
    close(st[1]);
    munmap(map, map_bytes_);
    return false;
  }

  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = fork();
  if (pid < 0) {
    for (int fd : {ctl[0], ctl[1], st[0], st[1], res[0], res[1]}) close(fd);
    munmap(map, map_bytes_);
    return false;
  }
  if (pid == 0) {
    close(ctl[1]);
    close(st[0]);
    close(res[0]);
    server_main(prototype, table_, options_.sandbox, ctl[0], st[1], res[1],
                static_cast<unsigned char*>(map), map_size_);
  }
  close(ctl[0]);
  close(st[1]);
  close(res[1]);
  (void)fcntl(res[0], F_SETFL, O_NONBLOCK);

  server_pid_ = pid;
  ctl_fd_ = ctl[1];
  st_fd_ = st[0];
  res_fd_ = res[0];
  map_ = static_cast<unsigned char*>(map);
  synced_vars_ = 0;
  st_reader_ = FrameReader{};
  started_ = true;
  return true;
}

void ForkServer::shutdown() {
  if (!started_) {
    if (map_ != nullptr) {
      munmap(map_, map_bytes_);
      map_ = nullptr;
    }
    return;
  }
  // Closing ctl is the shutdown signal; reap so no zombie outlives us.
  close(ctl_fd_);
  close(st_fd_);
  close(res_fd_);
  ctl_fd_ = st_fd_ = res_fd_ = -1;
  if (server_pid_ > 0) {
    (void)kill(static_cast<pid_t>(server_pid_), SIGKILL);
    int status = 0;
    while (waitpid(static_cast<pid_t>(server_pid_), &status, 0) < 0 &&
           errno == EINTR) {
    }
    server_pid_ = -1;
  }
  if (map_ != nullptr) {
    munmap(map_, map_bytes_);
    map_ = nullptr;
  }
  started_ = false;
}

void ForkServer::note_server_death() {
  shutdown();
  ++stats_.restarts;
  if (stats_.restarts > static_cast<std::uint64_t>(
                            std::max(options_.max_restarts, 0))) {
    stats_.degraded = true;
  }
}

minimpi::RunResult ForkServer::run(const minimpi::LaunchSpec& spec,
                                   SandboxStats* stats, bool* warm) {
  if (warm != nullptr) *warm = false;
  if (stats_.degraded || (!started_ && !start(spec))) {
    if (!stats_.degraded) note_server_death();
    ++stats_.cold_forks;
    return run_sandboxed(spec, table_, options_.sandbox, stats);
  }

  SandboxStats local;
  SandboxStats& st = stats != nullptr ? *stats : local;
  st = SandboxStats{};

  const milliseconds hang = detail::derive_hang(options_.sandbox, spec);
  std::memset(map_, 0, map_bytes_);

  // Ship the registry suffix the server hasn't seen, then the spawn.
  std::string out;
  std::size_t new_synced = synced_vars_;
  if (spec.registry != nullptr) {
    const std::size_t total = spec.registry->size();
    if (total > synced_vars_) {
      append_frame(out, FrameType::kRegistry,
                   encode_registry_suffix(*spec.registry, synced_vars_));
    }
    new_synced = total;
  }
  SpawnRequest req;
  req.nprocs = spec.nprocs;
  req.focus = spec.focus;
  req.one_way = spec.one_way;
  if (spec.inputs != nullptr) req.inputs = *spec.inputs;
  req.rng_seed = spec.rng_seed;
  req.step_budget = spec.step_budget;
  req.reduction = spec.reduction;
  req.mark_mpi_vars = spec.mark_mpi_vars;
  req.timeout_ms = spec.timeout.count();
  req.hang_ms = hang.count();
  req.track_base = spec.track_base;
  req.match_schedule = spec.match_schedule;
  req.match_plan = spec.match_plan;
  req.chaos = spec.chaos;
  append_frame(out, FrameType::kSpawn, encode_spawn_request(req));

  const auto t0 = steady_clock::now();
  bool write_failed = false;
  {
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = write(ctl_fd_, out.data() + off, out.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        write_failed = true;  // EPIPE: the server is gone
        break;
      }
      off += static_cast<std::size_t>(n);
    }
  }
  if (write_failed) {
    note_server_death();
    ++stats_.cold_forks;
    return run_sandboxed(spec, table_, options_.sandbox, stats);
  }
  synced_vars_ = new_synced;

  // ---- wait for spawned / reaped, enforcing the hang deadline ----
  FrameReader res_reader;
  char buf[65536];
  const auto drain_res = [&] {
    for (;;) {
      const ssize_t n = read(res_fd_, buf, sizeof(buf));
      if (n > 0) {
        res_reader.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // EAGAIN (drained) or EOF/error (nothing more to read)
    }
  };

  long grandchild = -1;
  std::optional<long> reaped;
  bool timed_out = false;
  bool rejected = false;
  bool server_dead = false;
  const auto deadline = t0 + hang;
  const auto grace_end = deadline + kReapGrace;
  while (!reaped.has_value() && !rejected && !server_dead) {
    if (waitpid(static_cast<pid_t>(server_pid_), nullptr, WNOHANG) != 0) {
      server_dead = true;
      break;
    }
    const auto now = steady_clock::now();
    if (!timed_out && now >= deadline) {
      if (grandchild > 0) {
        (void)kill(static_cast<pid_t>(grandchild), SIGKILL);
      }
      timed_out = true;
    }
    if (now >= grace_end) {
      // The server never reported the reap (wedged or silently dead).
      server_dead = true;
      break;
    }
    struct pollfd pfds[2] = {};
    pfds[0].fd = st_fd_;
    pfds[0].events = POLLIN;
    pfds[1].fd = res_fd_;
    pfds[1].events = POLLIN;
    const int rv = poll(pfds, 2, 100);
    if (rv < 0) {
      if (errno == EINTR) continue;
      server_dead = true;
      break;
    }
    if ((pfds[1].revents & (POLLIN | POLLHUP)) != 0) drain_res();
    if ((pfds[0].revents & (POLLIN | POLLHUP)) != 0) {
      const ssize_t n = read(st_fd_, buf, sizeof(buf));
      if (n <= 0 && !(n < 0 && errno == EINTR)) {
        server_dead = true;
        break;
      }
      if (n > 0) st_reader_.feed(buf, static_cast<std::size_t>(n));
    }
    if (st_reader_.corrupt()) {
      server_dead = true;
      break;
    }
    while (std::optional<Frame> f = st_reader_.next()) {
      if (f->type != FrameType::kStatus) continue;  // tolerate late kHello
      if (const auto pid = status_arg(f->payload, "spawned")) {
        grandchild = *pid;
      } else if (const auto status = status_arg(f->payload, "reaped")) {
        reaped = *status;
      } else {
        rejected = true;  // "reject <reason>": this spawn never happened
      }
    }
  }

  if (reaped.has_value()) {
    drain_res();  // the grandchild finished writing before it was reaped
    st.forked = true;
    const double wall = duration<double>(steady_clock::now() - t0).count();
    minimpi::RunResult result = detail::interpret_child_exit(
        spec, table_, res_reader, map_, map_size_, timed_out,
        static_cast<int>(*reaped), wall, hang, st);
    ++stats_.warm_spawns;
    stats_.last_spawn_seconds = wall;
    if (warm != nullptr) *warm = true;
    return result;
  }

  if (server_dead) {
    if (grandchild > 0) (void)kill(static_cast<pid_t>(grandchild), SIGKILL);
    note_server_death();
  }
  // Rejected or dead either way: the iteration is NEVER lost — re-run it
  // cold.  Discarding the partial frames is safe because the cold re-run
  // re-interns any new variables identically.
  ++stats_.cold_forks;
  return run_sandboxed(spec, table_, options_.sandbox, stats);
}

#endif  // COMPI_SANDBOX_POSIX

}  // namespace compi::sandbox
