#include "obs/status.h"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>

#include "obs/artifacts.h"
#include "obs/journal.h"

namespace compi::obs {

const char* to_string(WorkerPhase p) {
  switch (p) {
    case WorkerPhase::kIdle: return "idle";
    case WorkerPhase::kExecute: return "execute";
    case WorkerPhase::kSolve: return "solve";
    case WorkerPhase::kDone: return "done";
  }
  return "idle";
}

std::optional<WorkerPhase> parse_worker_phase(std::string_view s) {
  if (s == "idle") return WorkerPhase::kIdle;
  if (s == "execute") return WorkerPhase::kExecute;
  if (s == "solve") return WorkerPhase::kSolve;
  if (s == "done") return WorkerPhase::kDone;
  return std::nullopt;
}

std::string render_status_json(const StatusSnapshot& s) {
  std::string line;
  JsonWriter w(line);
  w.field("iteration", static_cast<std::int64_t>(s.iteration));
  w.field("covered_branches", static_cast<std::int64_t>(s.covered_branches));
  w.field("bugs", static_cast<std::int64_t>(s.bugs));
  w.field("elapsed_seconds", s.elapsed_seconds);
  w.field("nprocs", static_cast<std::int64_t>(s.nprocs));
  w.field("focus", static_cast<std::int64_t>(s.focus));
  w.field("outcome", s.outcome);
  w.field("serve_port", static_cast<std::int64_t>(s.serve_port));
  w.field("workers", static_cast<std::int64_t>(s.workers));
  w.field("iterations_total", static_cast<std::int64_t>(s.iterations_total));
  w.field("frontier_depth", static_cast<std::int64_t>(s.frontier_depth));
  w.field("interleavings_pending",
          static_cast<std::int64_t>(s.interleavings_pending));
  w.field("solver_cache_hits", s.solver_cache_hits);
  w.field("solver_cache_misses", s.solver_cache_misses);
  // Encoded as one "iter:covered iter:covered ..." string: the journal
  // JSON dialect (which parse_status_json reuses) has no arrays.
  std::string timeline;
  for (const auto& [iter, covered] : s.coverage_timeline) {
    if (!timeline.empty()) timeline.push_back(' ');
    timeline += std::to_string(iter);
    timeline.push_back(':');
    timeline += std::to_string(covered);
  }
  w.field("coverage_timeline", timeline);
  if (!s.diagnosis_kind.empty()) {
    w.begin_object("diagnosis");
    w.field("kind", s.diagnosis_kind);
    w.field("detail", s.diagnosis_detail);
    w.field("stalled_seconds", s.diagnosis_stalled_seconds);
    w.end_object();
  }
  for (std::size_t i = 0; i < s.worker_status.size(); ++i) {
    const WorkerStatus& ws = s.worker_status[i];
    w.begin_object("worker_" + std::to_string(i));
    w.field("iteration", static_cast<std::int64_t>(ws.iteration));
    w.field("phase", to_string(ws.phase));
    w.field("last_progress_seconds", ws.last_progress_seconds);
    w.field("iterations_done", ws.iterations_done);
    w.end_object();
  }
  w.finish();
  return line;
}

std::optional<StatusSnapshot> parse_status_json(std::string_view json) {
  // Strip the trailing newline finish() appends; the object parser wants
  // the object to be the whole input.
  while (!json.empty() && (json.back() == '\n' || json.back() == '\r')) {
    json.remove_suffix(1);
  }
  const std::optional<ParsedEvent> obj = parse_json_object(json);
  if (!obj) return std::nullopt;
  StatusSnapshot s;
  const auto num = [&](const char* key, std::int64_t fallback) {
    return obj->num(key).value_or(fallback);
  };
  if (!obj->num("iteration") || !obj->num("covered_branches")) {
    return std::nullopt;
  }
  s.iteration = static_cast<int>(num("iteration", -1));
  s.covered_branches = static_cast<std::size_t>(num("covered_branches", 0));
  s.bugs = static_cast<std::size_t>(num("bugs", 0));
  s.elapsed_seconds = obj->real("elapsed_seconds").value_or(0.0);
  s.nprocs = static_cast<int>(num("nprocs", 0));
  s.focus = static_cast<int>(num("focus", 0));
  s.outcome = obj->str("outcome").value_or("");
  s.serve_port = static_cast<int>(num("serve_port", -1));
  s.workers = static_cast<int>(num("workers", 1));
  s.iterations_total = static_cast<int>(num("iterations_total", 0));
  s.frontier_depth = static_cast<std::size_t>(num("frontier_depth", 0));
  s.interleavings_pending =
      static_cast<std::size_t>(num("interleavings_pending", 0));
  s.solver_cache_hits = num("solver_cache_hits", 0);
  s.solver_cache_misses = num("solver_cache_misses", 0);
  if (const auto timeline = obj->str("coverage_timeline")) {
    std::string_view rest = *timeline;
    while (!rest.empty()) {
      const std::size_t space = rest.find(' ');
      const std::string_view point = rest.substr(0, space);
      rest = space == std::string_view::npos ? std::string_view{}
                                             : rest.substr(space + 1);
      const std::size_t colon = point.find(':');
      if (colon == std::string_view::npos) continue;
      int iter = 0;
      std::uint64_t covered = 0;
      const auto [ip, iec] =
          std::from_chars(point.data(), point.data() + colon, iter);
      const auto [cp, cec] = std::from_chars(
          point.data() + colon + 1, point.data() + point.size(), covered);
      if (iec != std::errc{} || cec != std::errc{}) continue;
      s.coverage_timeline.emplace_back(iter,
                                       static_cast<std::size_t>(covered));
    }
  }
  s.diagnosis_kind = obj->str("diagnosis.kind").value_or("");
  s.diagnosis_detail = obj->str("diagnosis.detail").value_or("");
  s.diagnosis_stalled_seconds =
      obj->real("diagnosis.stalled_seconds").value_or(0.0);
  for (int w = 0;; ++w) {
    const std::string prefix = "worker_" + std::to_string(w) + ".";
    const auto iter = obj->num(prefix + "iteration");
    if (!iter) break;
    WorkerStatus ws;
    ws.iteration = static_cast<int>(*iter);
    ws.phase = parse_worker_phase(obj->str(prefix + "phase").value_or("idle"))
                   .value_or(WorkerPhase::kIdle);
    ws.last_progress_seconds =
        obj->real(prefix + "last_progress_seconds").value_or(0.0);
    ws.iterations_done = obj->num(prefix + "iterations_done").value_or(0);
    s.worker_status.push_back(ws);
  }
  return s;
}

bool write_status_file(const std::string& path, const std::string& contents) {
  namespace fs = std::filesystem;
  const fs::path tmp(path + ".tmp");
  {
    std::ofstream out(tmp);
    if (!out.is_open()) {
      note_artifact_write_error("status", path);
      return false;
    }
    out << contents;
    out.flush();
    // A short write (disk full) leaves a torn tmp: don't rename it over
    // the last complete heartbeat a monitor may be reading.
    if (!out.good()) {
      note_artifact_write_error("status", path);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, fs::path(path), ec);
  if (ec) note_artifact_write_error("status", path);
  return !ec;
}

// ---- StatusBoard ----

StatusBoard::StatusBoard(int workers, int iterations_total) {
  s_.workers = workers;
  s_.iterations_total = iterations_total;
  s_.worker_status.resize(
      static_cast<std::size_t>(workers > 0 ? workers : 1));
}

void StatusBoard::set_serve_port(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  s_.serve_port = port;
}

void StatusBoard::set_campaign(int nprocs, int focus) {
  std::lock_guard<std::mutex> lock(mu_);
  s_.nprocs = nprocs;
  s_.focus = focus;
}

void StatusBoard::record_iteration(int iteration, std::size_t covered,
                                   std::size_t bugs, double elapsed,
                                   int nprocs, int focus,
                                   std::string_view outcome, int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  s_.iteration = std::max(s_.iteration, iteration);
  s_.covered_branches = std::max(s_.covered_branches, covered);
  s_.bugs = bugs;
  s_.elapsed_seconds = elapsed;
  s_.nprocs = nprocs;
  s_.focus = focus;
  s_.outcome = std::string(outcome);
  if (s_.coverage_timeline.empty() ||
      covered > s_.coverage_timeline.back().second) {
    s_.coverage_timeline.emplace_back(iteration, covered);
    if (s_.coverage_timeline.size() >= 2 * kTimelineCap) {
      // Keep every other point plus the newest; the sparkline only needs
      // the shape, not every discovery.
      std::vector<std::pair<int, std::size_t>> thinned;
      thinned.reserve(kTimelineCap);
      for (std::size_t i = 0; i < s_.coverage_timeline.size(); i += 2) {
        thinned.push_back(s_.coverage_timeline[i]);
      }
      if (thinned.back() != s_.coverage_timeline.back()) {
        thinned.push_back(s_.coverage_timeline.back());
      }
      s_.coverage_timeline = std::move(thinned);
    }
  }
  if (worker >= 0 &&
      static_cast<std::size_t>(worker) < s_.worker_status.size()) {
    WorkerStatus& ws = s_.worker_status[static_cast<std::size_t>(worker)];
    ws.iteration = iteration;
    ws.last_progress_seconds = elapsed;
    ++ws.iterations_done;
  }
}

void StatusBoard::set_depths(std::size_t frontier,
                             std::size_t interleavings_pending) {
  std::lock_guard<std::mutex> lock(mu_);
  s_.frontier_depth = frontier;
  s_.interleavings_pending = interleavings_pending;
}

void StatusBoard::set_solver_cache(std::int64_t hits, std::int64_t misses) {
  std::lock_guard<std::mutex> lock(mu_);
  s_.solver_cache_hits = hits;
  s_.solver_cache_misses = misses;
}

void StatusBoard::set_diagnosis(std::string_view kind, std::string_view detail,
                                double stalled_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  s_.diagnosis_kind = std::string(kind);
  s_.diagnosis_detail = std::string(detail);
  s_.diagnosis_stalled_seconds = stalled_seconds;
}

void StatusBoard::worker_phase(int worker, int iteration, WorkerPhase phase) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0 ||
      static_cast<std::size_t>(worker) >= s_.worker_status.size()) {
    return;
  }
  WorkerStatus& ws = s_.worker_status[static_cast<std::size_t>(worker)];
  ws.iteration = iteration;
  ws.phase = phase;
}

StatusSnapshot StatusBoard::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return s_;
}

}  // namespace compi::obs
