// Campaign metrics: a lock-cheap registry of named counters, gauges and
// log-bucketed histograms, dumped in Prometheus exposition format.
//
// The paper's evaluation is an accounting exercise — where does campaign
// time go, solver vs. execution vs. framework overhead (Tables 4-6) — so
// the engine needs counters it can afford to bump on hot paths.  Handles
// are registered once (find-or-create under a mutex) and held by the
// instrumented code; after that every update is a single relaxed atomic
// op, safe from any rank thread.  Values are process-global and cumulative,
// exactly like Prometheus counters: the dump written at checkpoint time and
// campaign end (`metrics.prom`) is a scrape, not a per-campaign report.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace compi::obs {

/// Monotonic counter.  `inc` is one relaxed atomic add.
class Counter {
 public:
  void inc(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Histogram over fixed log-scale buckets: upper bounds 1, 2, 4, ...,
/// 2^(kBuckets-1), plus +Inf.  In microseconds that spans 1 us to ~134 s —
/// everything from a branch event to a full stalled-collective timeout.
/// Fixed bounds mean `observe` is two relaxed atomic adds and no locking,
/// and dumps from different processes are mergeable.
class Histogram {
 public:
  static constexpr int kBuckets = 28;

  /// Upper bound of bucket `i` (inclusive, `le` in Prometheus terms).
  [[nodiscard]] static std::int64_t bound(int i) {
    return std::int64_t{1} << i;
  }

  /// Index of the first bucket whose bound is >= v (kBuckets = +Inf).
  [[nodiscard]] static int bucket_of(std::int64_t v);

  void observe(std::int64_t v);

  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t bucket_count(int i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max_observed() const {
    return max_.load(std::memory_order_relaxed);
  }

  /// Estimated p-quantile (p in [0, 1]): linear interpolation inside the
  /// winning bucket, capped by the exact observed maximum.  0 when empty.
  [[nodiscard]] double percentile(double p) const;

 private:
  std::atomic<std::int64_t> counts_[kBuckets + 1]{};  // last = +Inf
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Exact nearest-rank-with-interpolation percentile over raw samples
/// (`p` in [0, 1]); the helper the bench tables use for p50/p95 columns.
/// Returns 0 for an empty sample set.
[[nodiscard]] double percentile(std::vector<double> samples, double p);

/// Escapes a string for use as a Prometheus label value: `\` -> `\\`,
/// `"` -> `\"`, newline -> `\n` (per the text exposition format).  Shard
/// names are user-chosen and checkpoint v7 allows spaces and newlines in
/// them, so every labeled metric built from one must pass through here.
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Builds `base{label="<escaped value>"}` — the full metric name under
/// which a labeled series registers.
[[nodiscard]] std::string labeled_name(std::string_view base,
                                       std::string_view label,
                                       std::string_view value);

/// Named-handle registry.  `counter`/`gauge`/`histogram` find-or-create
/// under a mutex (startup cost only); returned references stay valid for
/// the process lifetime.  Re-registering a name returns the same handle;
/// registering it as a different kind is a programming error (asserts).
class Registry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name,
                                 const std::string& help);
  [[nodiscard]] Gauge& gauge(const std::string& name, const std::string& help);
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     const std::string& help);

  /// Prometheus text exposition format (# HELP / # TYPE / samples), metrics
  /// in registration order.
  void write_prometheus(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_create(const std::string& name, const std::string& help,
                        Kind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// The process-global registry every subsystem registers into.
[[nodiscard]] Registry& registry();

}  // namespace compi::obs
