#include "obs/artifacts.h"

#include <cstdio>
#include <mutex>
#include <set>
#include <string>

#include "obs/metrics.h"

namespace compi::obs {

namespace {

constexpr const char* kCounterName = "compi_artifact_write_errors_total";
constexpr const char* kCounterHelp =
    "Artifact writes that failed (unwritable path, short write, ENOSPC)";

}  // namespace

void note_artifact_write_error(std::string_view artifact,
                               std::string_view path) {
  registry().counter(kCounterName, kCounterHelp).inc();
  // Leaked on purpose: emit sites may run during static destruction (the
  // export guard fires from destructors on fatal paths).
  static std::mutex* mu = new std::mutex();
  static std::set<std::string>* logged = new std::set<std::string>();
  const std::lock_guard<std::mutex> lock(*mu);
  if (!logged->insert(std::string(artifact)).second) return;
  std::fprintf(stderr,
               "compi: failed to write %.*s artifact%s%.*s%s (disk full or "
               "unwritable?); further %.*s write errors are counted in "
               "%s but not logged\n",
               static_cast<int>(artifact.size()), artifact.data(),
               path.empty() ? "" : " (", static_cast<int>(path.size()),
               path.data(), path.empty() ? "" : ")",
               static_cast<int>(artifact.size()), artifact.data(),
               kCounterName);
}

std::int64_t artifact_write_errors() {
  return registry().counter(kCounterName, kCounterHelp).value();
}

}  // namespace compi::obs
