#include "obs/diagnosis.h"

#include <algorithm>
#include <sstream>

#include "obs/journal.h"

namespace compi::obs {

namespace {

/// Campaign-relative time of the last coverage increase; the first sample's
/// time when coverage never grew (a campaign that found nothing has been
/// stalled since it started).
double last_progress_seconds(const std::vector<CoveragePoint>& timeline) {
  double last = timeline.empty() ? 0.0 : timeline.front().seconds;
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    if (timeline[i].covered > timeline[i - 1].covered) {
      last = timeline[i].seconds;
    }
  }
  return last;
}

std::string format_seconds(double s) {
  std::ostringstream os;
  os << static_cast<long long>(s) << 's';
  return os.str();
}

}  // namespace

const char* to_string(StallKind kind) {
  switch (kind) {
    case StallKind::kProgressing: return "progressing";
    case StallKind::kCoveragePlateau: return "coverage-plateau";
    case StallKind::kFrontierStarved: return "frontier-starved";
    case StallKind::kSolverThrash: return "solver-thrash";
    case StallKind::kStragglerShard: return "straggler-shard";
    case StallKind::kLeaseChurn: return "lease-churn";
  }
  return "progressing";
}

Diagnosis diagnose(const DiagnosisInput& in) {
  Diagnosis d;
  if (in.coverage_timeline.empty()) {
    d.detail = "no samples yet";
    return d;
  }
  d.stalled_seconds =
      in.elapsed_seconds - last_progress_seconds(in.coverage_timeline);
  const std::int64_t covered = in.coverage_timeline.back().covered;
  if (d.stalled_seconds < in.plateau_window_seconds) {
    std::ostringstream os;
    os << "progressing: " << covered << " branches, last gain "
       << format_seconds(d.stalled_seconds) << " ago";
    d.detail = os.str();
    return d;
  }

  // ---- the curve is flat: rank the explanations ----
  // Lease churn: work keeps being reclaimed and re-granted, so iterations
  // are re-run instead of finishing.  Only meaningful with join history.
  if (in.shards_joined > 0 && in.leases_reclaimed >= 3 &&
      in.leases_reclaimed >= 2 * in.shards_joined) {
    d.kind = StallKind::kLeaseChurn;
    std::ostringstream os;
    os << "lease-churn: " << in.leases_reclaimed
       << " leases reclaimed across " << in.shards_joined
       << " shard joins; work is bouncing, not finishing";
    d.detail = os.str();
    return d;
  }

  // Straggler: one shard far behind a fleet that is otherwise moving.  A
  // connected-but-silent shard counts the same as a slow one.
  if (in.shards.size() >= 2) {
    const ShardProgress* slowest = nullptr;
    double fastest = 0.0;
    for (const ShardProgress& s : in.shards) {
      fastest = std::max(fastest, s.rate);
      if (slowest == nullptr || s.rate < slowest->rate ||
          (!s.connected && slowest->connected)) {
        slowest = &s;
      }
    }
    if (slowest != nullptr && fastest > 0.0 &&
        (!slowest->connected || slowest->rate < 0.25 * fastest)) {
      d.kind = StallKind::kStragglerShard;
      std::ostringstream os;
      os << "straggler-shard: \"" << slowest->name << "\" at "
         << slowest->rate << " iters/s vs fleet peak " << fastest
         << (slowest->connected ? "" : " (disconnected)");
      d.detail = os.str();
      return d;
    }
  }

  // Frontier starvation: nothing left to negate and no queued
  // interleavings — the search has genuinely run out of work.
  if (in.frontier_depth == 0 && in.interleavings_pending == 0) {
    d.kind = StallKind::kFrontierStarved;
    std::ostringstream os;
    os << "frontier-starved: no negation candidates or pending "
          "interleavings after "
       << format_seconds(d.stalled_seconds) << " without new coverage";
    d.detail = os.str();
    return d;
  }

  // Solver thrash: budget-exhausted outcomes dominate the mix — queries
  // are burning their node budget without reaching a verdict.
  if (in.solver_budget > 0 &&
      in.solver_budget >= in.solver_sat + in.solver_unsat) {
    d.kind = StallKind::kSolverThrash;
    std::ostringstream os;
    os << "solver-thrash: " << in.solver_budget
       << " budget-exhausted solves vs " << in.solver_sat << " SAT / "
       << in.solver_unsat << " UNSAT";
    d.detail = os.str();
    return d;
  }

  d.kind = StallKind::kCoveragePlateau;
  std::ostringstream os;
  os << "coverage-plateau: flat at " << covered << " branches for "
     << format_seconds(d.stalled_seconds) << " with "
     << (in.frontier_depth < 0 ? 0 : in.frontier_depth)
     << " candidates still queued";
  d.detail = os.str();
  return d;
}

Diagnosis DiagnosisEngine::update(DiagnosisInput in, std::int64_t covered,
                                  int iteration) {
  if (!has_samples_) {
    has_samples_ = true;
    first_ = {in.elapsed_seconds, covered};
    last_gain_ = first_;
    work_seen_at_ = in.elapsed_seconds;
  } else if (covered > last_gain_.covered) {
    last_gain_ = {in.elapsed_seconds, covered};
  }
  // Debounce the work inputs.  The driver's frontier empties and refills
  // every few iterations (exhaust → restart → replan), so a raw sample
  // flaps the verdict between frontier-starved and coverage-plateau; a
  // zero only counts once nothing has been queued for the whole window.
  // Unknown (-1) counts as "seen" — no starvation claim without data.
  if (in.frontier_depth != 0 || in.interleavings_pending != 0) {
    work_seen_at_ = in.elapsed_seconds;
    if (in.frontier_depth != 0) last_frontier_ = in.frontier_depth;
    if (in.interleavings_pending != 0) last_pending_ = in.interleavings_pending;
  }
  if (in.elapsed_seconds - work_seen_at_ < in.plateau_window_seconds) {
    if (in.frontier_depth == 0) in.frontier_depth = last_frontier_;
    if (in.interleavings_pending == 0) in.interleavings_pending = last_pending_;
  }
  // The classifier only needs the last-increase time and the current
  // maximum, so hand it the three points that encode exactly those.  An
  // earlier version kept a thinned sample ring instead; thinning a long
  // flat tail kept moving the first retained post-gain sample forward, so
  // stalled_seconds chased elapsed_seconds and a real plateau never
  // crossed the window.
  in.coverage_timeline = {first_, last_gain_,
                          {in.elapsed_seconds, last_gain_.covered}};
  Diagnosis next = diagnose(in);
  const bool transition = !reported_once_ || next.kind != current_.kind;
  current_ = next;
  reported_once_ = true;
  if (transition && journal_ != nullptr) {
    JournalEvent(*journal_, "diagnosis", iteration)
        .str("kind", to_string(current_.kind))
        .str("detail", current_.detail)
        .real("stalled_seconds", current_.stalled_seconds)
        .real("elapsed_seconds", in.elapsed_seconds)
        .num("covered", covered);
  }
  return current_;
}

}  // namespace compi::obs
