// Artifact write-failure surfacing.
//
// Campaign artifacts (the journal, the --status-file heartbeat, session
// checkpoints) are written on best-effort paths that historically
// swallowed ENOSPC and short writes silently: the campaign kept running
// while its session directory quietly stopped reflecting reality.  Every
// writer now reports through note_artifact_write_error(), which
//   * increments compi_artifact_write_errors_total — monitors scraping
//     /metrics see the failure even when the status file itself is the
//     artifact that cannot be written, and
//   * logs ONE stderr line per artifact kind, so a full disk does not
//     turn the terminal into a scrolling error firehose.
// Writers keep going after reporting (the campaign's results matter more
// than its paper trail); checkpoint writers additionally refuse to
// replace a complete snapshot with a torn one.
#pragma once

#include <cstdint>
#include <string_view>

namespace compi::obs {

/// Reports one failed artifact write.  `artifact` is the kind ("journal",
/// "status", "checkpoint", ...); `path` names the target for the log line
/// (may be empty).  Thread-safe.
void note_artifact_write_error(std::string_view artifact,
                               std::string_view path);

/// Total failures reported so far (the counter's live value; tests).
[[nodiscard]] std::int64_t artifact_write_errors();

}  // namespace compi::obs
