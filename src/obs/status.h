// Campaign status snapshot: the one heartbeat schema shared by the
// --status-file writer, the /status endpoint, and `compi top`.
//
// Both campaign loops (driver.cc and parallel.cc) used to carry their own
// near-identical tmp+rename JSON emitters; this module is the single
// writer.  A StatusBoard is the live, mutex-guarded copy of the snapshot:
// the loops update it at iteration boundaries (serial: no contention;
// parallel: callers already hold the campaign mutex, the board's own leaf
// mutex only orders those writes against the control-plane server thread
// reading a snapshot).  Lock discipline: the board mutex is a LEAF — it is
// taken with the campaign mutex held but never the other way around, and
// the server thread takes it alone.
//
// The JSON schema is a strict superset of the original seven-field
// heartbeat: the legacy fields come first in the same order, so existing
// monitors keep working, and the whole object stays within the journal
// LineParser's dialect (flat + one nesting level, no arrays) so
// parse_status_json can reuse it.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace compi::obs {

/// What a worker is doing right now, as coarse phases.
enum class WorkerPhase : std::uint8_t { kIdle, kExecute, kSolve, kDone };

[[nodiscard]] const char* to_string(WorkerPhase p);
[[nodiscard]] std::optional<WorkerPhase> parse_worker_phase(
    std::string_view s);

struct WorkerStatus {
  int iteration = -1;  // ordinal currently (or last) executed by this worker
  WorkerPhase phase = WorkerPhase::kIdle;
  /// Campaign-relative timestamp (seconds) of this worker's last completed
  /// iteration — the liveness signal `compi top` highlights stalls with.
  double last_progress_seconds = 0.0;
  std::int64_t iterations_done = 0;
};

/// One coherent reading of the campaign, cheap to copy.
struct StatusSnapshot {
  // ---- legacy heartbeat fields (kept first, same order) ----
  int iteration = -1;
  std::size_t covered_branches = 0;
  std::size_t bugs = 0;
  double elapsed_seconds = 0.0;
  int nprocs = 0;
  int focus = 0;
  std::string outcome;
  // ---- control-plane extensions ----
  int serve_port = -1;  // bound HTTP port; -1 when not serving
  int workers = 1;
  int iterations_total = 0;
  std::size_t frontier_depth = 0;         // in-flight claimed negation arms
  std::size_t interleavings_pending = 0;  // queued wildcard reorderings
  std::int64_t solver_cache_hits = 0;
  std::int64_t solver_cache_misses = 0;
  /// Coverage growth points (iteration, covered), thinned to a bounded
  /// count — the sparkline data.
  std::vector<std::pair<int, std::size_t>> coverage_timeline;
  std::vector<WorkerStatus> worker_status;
  /// Search-stall diagnosis (obs/diagnosis.h): the current verdict kind
  /// ("progressing", "frontier-starved", ...), its human detail sentence,
  /// and seconds since the last coverage gain.  Rendered as a nested
  /// `diagnosis` object (one level — within the JSON dialect).  Empty kind
  /// = no engine feeding this board.
  std::string diagnosis_kind;
  std::string diagnosis_detail;
  double diagnosis_stalled_seconds = 0.0;
};

/// Renders the snapshot as a single JSON object (newline-terminated), the
/// exact bytes --status-file and /status serve.
[[nodiscard]] std::string render_status_json(const StatusSnapshot& s);

/// Parses render_status_json output (tolerates the legacy 7-field form).
/// nullopt on malformed input.
[[nodiscard]] std::optional<StatusSnapshot> parse_status_json(
    std::string_view json);

/// Atomically rewrites `path` with `contents` via tmp + rename, so a
/// monitoring reader never observes a torn file.  Returns false when the
/// tmp file cannot be written or the rename fails.
bool write_status_file(const std::string& path, const std::string& contents);

/// The live snapshot both campaign loops maintain when a status file or
/// the control plane wants one.  All methods are thread-safe (leaf mutex).
class StatusBoard {
 public:
  StatusBoard(int workers, int iterations_total);

  void set_serve_port(int port);
  void set_campaign(int nprocs, int focus);
  /// Called once per completed iteration (the note_iteration sites).
  void record_iteration(int iteration, std::size_t covered, std::size_t bugs,
                        double elapsed, int nprocs, int focus,
                        std::string_view outcome, int worker);
  void set_depths(std::size_t frontier, std::size_t interleavings_pending);
  void set_solver_cache(std::int64_t hits, std::int64_t misses);
  void set_diagnosis(std::string_view kind, std::string_view detail,
                     double stalled_seconds);
  void worker_phase(int worker, int iteration, WorkerPhase phase);

  [[nodiscard]] StatusSnapshot snapshot() const;

 private:
  /// Timeline points retained; at 2x this the vector is thinned (keep
  /// every other point plus the last) so long campaigns stay bounded.
  static constexpr std::size_t kTimelineCap = 64;

  mutable std::mutex mu_;
  StatusSnapshot s_;
};

}  // namespace compi::obs
