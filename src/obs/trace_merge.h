// `compi trace-merge` — stitches the Chrome traces of a distributed
// campaign into ONE timeline: the coordinator's trace.json (lease grants,
// delta merges, broadcast syncs) becomes process lane 1, and each shard's
// trace.json becomes its own process lane, so Perfetto shows "coordinator
// granted lease L, shard A solved under it, shard B was idle" as adjacent
// rows on a shared clock.
//
// Clock alignment: every trace carries `epoch_wall_us` in otherData — the
// system clock at Tracer::configure(), the zero point of its relative
// timestamps.  Merged timestamps are re-based onto the coordinator's
// epoch:
//
//   merged_ts = shard_ts + (shard_epoch_wall + drift) - coord_epoch_wall
//
// where drift corrects for disagreeing wall clocks, recovered from the
// coordinator journal's `shard_joined` events (both sides stamp their wall
// clock into the Hello/Welcome handshake).  Same-host fleets have drift
// ~0; the correction matters across machines.
//
// Shard identity comes from <shard-dir>/shard.json ({"key","name"},
// written by the campaign process when it runs with --connect and a log
// dir), falling back to the directory's basename.  Traces missing
// epoch_wall_us (pre-fleet sessions) merge with shift 0 and a warning
// span is not invented — the lanes still render, just unaligned.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace compi::obs {

struct TraceMergeOptions {
  /// Coordinator session dir: trace.json required, journal.jsonl optional
  /// (no journal = drift 0 for every shard).  Empty = no coordinator lane;
  /// the earliest shard epoch becomes the time base instead.
  std::string coordinator_dir;
  /// Shard session dirs, each holding a trace.json (+ optional shard.json
  /// identity sidecar).  Lane order follows this list.
  std::vector<std::string> shard_dirs;
};

/// Writes the merged Chrome trace to `out`.  False (with `error` set, when
/// given) if no input trace could be read; individual unreadable shard
/// dirs are skipped and named in `error`-less warnings on the merged
/// trace's metadata only when everything else succeeded.
bool merge_traces(const TraceMergeOptions& options, std::ostream& out,
                  std::string* error);

}  // namespace compi::obs
