#include "obs/trace_merge.h"

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

#include "obs/journal.h"

namespace compi::obs {

namespace {

/// One input trace, reduced to what the merge needs: raw event objects
/// (verbatim JSON, one string per event) and the wall-clock zero point.
struct TraceSource {
  std::string label;         ///< process lane name in the merged trace
  std::vector<std::string> events;
  std::int64_t epoch_wall_us = 0;  ///< 0 = unknown (pre-fleet trace)
  std::int64_t drift_us = 0;       ///< coordinator wall - shard wall
};

bool read_file(const std::filesystem::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// Extracts the top-level objects of the `traceEvents` array by brace-depth
/// scanning (string- and escape-aware), plus `epoch_wall_us` from
/// otherData.  Tolerant of whitespace/newline placement; false when the
/// text has no traceEvents array at all.
bool parse_trace(std::string_view text, std::vector<std::string>& events,
                 std::int64_t* epoch_wall_us) {
  const std::size_t tag = text.find("\"traceEvents\"");
  if (tag == std::string_view::npos) return false;
  std::size_t pos = text.find('[', tag);
  if (pos == std::string_view::npos) return false;
  ++pos;
  int depth = 0;
  bool in_string = false;
  std::size_t start = 0;
  for (; pos < text.size(); ++pos) {
    const char c = text[pos];
    if (in_string) {
      if (c == '\\') {
        ++pos;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) start = pos;
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) {
        events.emplace_back(text.substr(start, pos - start + 1));
      }
    } else if (c == ']' && depth == 0) {
      break;  // end of traceEvents
    }
  }
  if (epoch_wall_us != nullptr) {
    static constexpr std::string_view kKey = "\"epoch_wall_us\":";
    const std::size_t at = text.find(kKey, pos);
    if (at != std::string_view::npos) {
      *epoch_wall_us = std::strtoll(
          std::string(text.substr(at + kKey.size(), 24)).c_str(), nullptr, 10);
    }
  }
  return true;
}

/// Rewrites one event object for its merged lane: retargets `"pid":N` to
/// `pid` and shifts `"ts":N` by `shift_us`.  Events without a ts field
/// (metadata) pass through with only the pid rewrite.
std::string rewrite_event(const std::string& event, int pid,
                          std::int64_t shift_us) {
  std::string out = event;
  const auto rewrite_int = [&out](std::string_view key,
                                  auto&& transform) {
    const std::size_t at = out.find(key);
    if (at == std::string::npos) return;
    const std::size_t begin = at + key.size();
    std::size_t end = begin;
    if (end < out.size() && out[end] == '-') ++end;
    while (end < out.size() && out[end] >= '0' && out[end] <= '9') ++end;
    if (end == begin) return;
    const std::int64_t value =
        std::strtoll(out.substr(begin, end - begin).c_str(), nullptr, 10);
    out.replace(begin, end - begin, std::to_string(transform(value)));
  };
  rewrite_int("\"pid\":", [pid](std::int64_t) -> std::int64_t { return pid; });
  rewrite_int("\"ts\":", [shift_us](std::int64_t ts) { return ts + shift_us; });
  return out;
}

/// A single-process trace names its lane "compi"; the merged file renames
/// every lane, so drop the per-file process metadata.
bool is_process_metadata(const std::string& event) {
  return event.find("\"name\":\"process_name\"") != std::string::npos ||
         event.find("\"name\":\"process_sort_index\"") != std::string::npos;
}

/// Shard lane label: <dir>/shard.json ({"key","name"}) when present, else
/// the directory basename.  Returns the key (for drift lookup) through
/// `key`.
std::string shard_label(const std::filesystem::path& dir, std::string* key) {
  std::string text;
  if (read_file(dir / "shard.json", text)) {
    if (const auto parsed = parse_json_object(text)) {
      if (const auto k = parsed->str("key"); k && key != nullptr) *key = *k;
      if (const auto name = parsed->str("name"); name && !name->empty()) {
        return "shard " + *name;
      }
      if (const auto k = parsed->str("key")) return "shard " + *k;
    }
  }
  std::filesystem::path base = dir.filename();
  if (base.empty()) base = dir.parent_path().filename();
  return "shard " + base.string();
}

void write_json_string(std::ostream& os, std::string_view s) {
  std::string escaped;
  JsonWriter::append_escaped(escaped, s);
  os << escaped;
}

}  // namespace

bool merge_traces(const TraceMergeOptions& options, std::ostream& out,
                  std::string* error) {
  std::vector<TraceSource> sources;
  std::vector<std::string> skipped;

  // Per-shard wall-clock drift, recovered from the coordinator journal's
  // handshake stamps.  Latest join wins (a rejoining shard restamped).
  std::map<std::string, std::int64_t> drift_by_key;
  if (!options.coordinator_dir.empty()) {
    const std::filesystem::path dir(options.coordinator_dir);
    for (const ParsedEvent& ev : read_journal(dir / "journal.jsonl")) {
      if (ev.type != "shard_joined") continue;
      const auto shard = ev.str("shard");
      const auto shard_wall = ev.num("shard_wall_us");
      const auto coord_wall = ev.num("coord_wall_us");
      if (shard && shard_wall && coord_wall) {
        drift_by_key[*shard] = *coord_wall - *shard_wall;
      }
    }
    TraceSource coord;
    coord.label = "coordinator";
    std::string text;
    if (read_file(dir / "trace.json", text) &&
        parse_trace(text, coord.events, &coord.epoch_wall_us)) {
      sources.push_back(std::move(coord));
    } else {
      skipped.push_back(options.coordinator_dir);
    }
  }

  for (const std::string& shard_dir : options.shard_dirs) {
    const std::filesystem::path dir(shard_dir);
    TraceSource src;
    std::string key;
    src.label = shard_label(dir, &key);
    std::string text;
    if (!read_file(dir / "trace.json", text) ||
        !parse_trace(text, src.events, &src.epoch_wall_us)) {
      skipped.push_back(shard_dir);
      continue;
    }
    if (const auto it = drift_by_key.find(key); it != drift_by_key.end()) {
      src.drift_us = it->second;
    }
    sources.push_back(std::move(src));
  }

  if (sources.empty()) {
    if (error != nullptr) {
      *error = "no readable trace.json under any input directory";
    }
    return false;
  }

  // The time base: the coordinator's epoch when its trace is present, else
  // the earliest known shard epoch.  Sources without an epoch stamp merge
  // unshifted (their own relative clock).
  std::int64_t base_wall = 0;
  for (const TraceSource& src : sources) {
    if (src.epoch_wall_us == 0) continue;
    const std::int64_t aligned = src.epoch_wall_us + src.drift_us;
    if (base_wall == 0 || aligned < base_wall) base_wall = aligned;
  }
  if (!sources.empty() && sources.front().label == "coordinator" &&
      sources.front().epoch_wall_us != 0) {
    base_wall = sources.front().epoch_wall_us;
  }

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const TraceSource& src = sources[i];
    const int pid = static_cast<int>(i) + 1;
    const std::int64_t shift =
        (src.epoch_wall_us == 0 || base_wall == 0)
            ? 0
            : src.epoch_wall_us + src.drift_us - base_wall;
    for (const std::string& event : src.events) {
      if (is_process_metadata(event)) continue;
      sep();
      out << rewrite_event(event, pid, shift);
    }
    sep();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"args\":{\"name\":";
    write_json_string(out, src.label);
    out << "}}";
    sep();
    out << "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"args\":{\"sort_index\":" << pid << "}}";
  }
  out << "],\"otherData\":{\"sources\":" << sources.size()
      << ",\"skipped\":" << skipped.size() << "}}\n";
  return true;
}

}  // namespace compi::obs
