#include "obs/trace.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <string>

namespace compi::obs {

const char* to_string(Cat cat) {
  switch (cat) {
    case Cat::kDriver: return "driver";
    case Cat::kSolver: return "solver";
    case Cat::kExecute: return "execute";
    case Cat::kLaunch: return "launch";
    case Cat::kStrategy: return "strategy";
    case Cat::kCheckpoint: return "checkpoint";
    case Cat::kChaosRetry: return "chaos-retry";
    case Cat::kMpi: return "mpi";
    case Cat::kCollective: return "collective";
    case Cat::kChaos: return "chaos";
    case Cat::kSandbox: return "sandbox";
    case Cat::kMatch: return "match";
    case Cat::kCoord: return "coord";
  }
  return "unknown";
}

Tracer& tracer() {
  static Tracer* g = new Tracer();  // leaked: hooks may fire at exit
  return *g;
}

void Tracer::configure(std::size_t buffer_kb) {
  const std::size_t events =
      std::max<std::size_t>(1, buffer_kb * 1024 / sizeof(TraceEvent));
  ring_.assign(events, TraceEvent{});
  next_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  epoch_wall_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
}

void Tracer::set_enabled(bool on) {
#ifdef COMPI_OBS_DISABLED
  (void)on;
#else
  if (on && ring_.empty()) configure(256);
  enabled_.store(on, std::memory_order_relaxed);
#endif
}

void Tracer::record(const TraceEvent& event) {
#ifdef COMPI_OBS_DISABLED
  (void)event;
#else
  if (ring_.empty()) return;
  const std::uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
  ring_[i % ring_.size()] = event;
#endif
}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::size_t Tracer::size() const {
  return std::min<std::uint64_t>(next_.load(std::memory_order_relaxed),
                                 ring_.size());
}

std::size_t Tracer::dropped() const {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  return n > ring_.size() ? n - ring_.size() : 0;
}

namespace {

/// Minimal JSON string escaping; event names are literals we control, but
/// the exporter must never emit an invalid file.
void write_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      static const char* hex = "0123456789abcdef";
      os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
    } else {
      os << c;
    }
  }
  os << '"';
}

void write_event(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":";
  write_escaped(os, e.name != nullptr ? e.name : "");
  os << ",\"cat\":";
  write_escaped(os, to_string(e.cat));
  os << ",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts_us
     << ",\"pid\":1,\"tid\":" << e.tid;
  if (e.ph == 'X') os << ",\"dur\":" << e.dur_us;
  if (e.ph == 'i') os << ",\"s\":\"t\"";
  if (e.arg_name != nullptr) {
    os << ",\"args\":{";
    write_escaped(os, e.arg_name);
    os << ':' << e.arg << '}';
  }
  os << '}';
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const auto& writer) {
    if (!first) os << ",\n";
    first = false;
    writer();
  };

  // Events in record order: the window [n - size, n) of the ring.
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  const std::size_t held = size();
  std::set<std::int32_t> tracks;
  for (std::size_t k = 0; k < held; ++k) {
    const TraceEvent& e = ring_[(n - held + k) % ring_.size()];
    if (e.name == nullptr) continue;  // torn slot mid-write: skip
    tracks.insert(e.tid);
    emit([&] { write_event(os, e); });
  }

  // Track naming metadata: tid 0 is the driver, tid r+1 is rank r.  Sort
  // keys make Perfetto keep the driver on top and ranks in order.
  emit([&] {
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"args\":{\"name\":\"compi\"}}";
  });
  for (const std::int32_t tid : tracks) {
    emit([&] {
      const std::string label =
          tid == 0 ? "driver" : "rank " + std::to_string(tid - 1);
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"args\":{\"name\":";
      write_escaped(os, label.c_str());
      os << "}}";
    });
    emit([&] {
      os << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":"
         << tid << ",\"args\":{\"sort_index\":" << tid << "}}";
    });
  }
  os << "],\"otherData\":{\"dropped_events\":" << dropped()
     << ",\"epoch_wall_us\":" << epoch_wall_us_ << "}}\n";
}

#ifndef COMPI_OBS_DISABLED

namespace {
thread_local int g_thread_track = 0;
}  // namespace

void set_thread_track(int tid) { g_thread_track = tid; }
int thread_track() { return g_thread_track; }

void ObsSpan::begin(Cat cat, const char* name) {
  Tracer& t = tracer();
  event_.name = name;
  event_.ts_us = t.now_us();
  event_.tid = thread_track();
  event_.cat = cat;
  event_.ph = 'X';
  armed_ = true;
}

void ObsSpan::end() {
  Tracer& t = tracer();
  event_.dur_us = t.now_us() - event_.ts_us;
  // A span that straddled a set_enabled(false) still records: the ring is
  // already sized and one late event beats a dangling half-span.
  t.record(event_);
}

#endif  // COMPI_OBS_DISABLED

}  // namespace compi::obs
