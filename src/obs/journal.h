// Campaign event journal: an append-only JSONL record of every decision.
//
// The metrics registry answers "how much" and the trace ring answers
// "when", but neither can answer "which branch was earned by which input
// assignment" once a campaign plateaus.  The journal is the third leg of
// the obs substrate: one JSON object per line (journal.jsonl), written
// incrementally by the driver — an `iteration` event per test execution
// (planned assignment, focus, world size, outcome, solver stats,
// new-branch delta), a `solve` event per constraint negation attempt
// (negation index, target branch, SAT/UNSAT/budget, dependency-slice
// size), plus chaos-arming, retry, and sandbox-kill events.  `--explain`
// and external tooling replay the file to reconstruct the campaign's
// search behaviour event by event.
//
// Cost discipline mirrors the trace ring: events are serialized into an
// in-memory ring-style buffer and flushed to disk in batches (and at every
// checkpoint), so a journaling campaign pays one buffered append per
// event, not one syscall.  When the journal is not open, every emit site
// is a single `enabled()` branch — the same envelope as disabled tracing —
// and the obs-off build keeps the journal available (it is explicit opt-in
// I/O, not ambient instrumentation).
//
// Crash contract: the buffer is flushed at iteration granularity, so a
// killed campaign loses at most the in-flight tail; a resumed campaign
// calls open_resume(), which drops events at or past the checkpoint
// boundary (plus any torn trailing line) before appending, keeping the
// journal's iteration events exactly aligned with iterations.csv.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace compi::obs {

/// Serializes one flat JSON object into `out` (no nesting except via
/// explicit `begin_object`/`end_object` for the inputs map).  Keys are
/// emitted verbatim (callers pass literals); string values are escaped.
class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(&out) { out_->push_back('{'); }

  void field(std::string_view key, std::int64_t v);
  void field(std::string_view key, double v);
  void field(std::string_view key, std::string_view v);
  void field_bool(std::string_view key, bool v);
  /// Opens a nested object value: `"key":{`.  Close with end_object().
  void begin_object(std::string_view key);
  void end_object();
  /// Closes the top-level object and appends the newline.
  void finish();

  /// Escapes `v` into a JSON string literal (quotes included).
  static void append_escaped(std::string& out, std::string_view v);

 private:
  void key_prefix(std::string_view key);

  std::string* out_;
  bool first_ = true;
};

class Journal;

/// RAII builder for one journal event: constructs the line in the
/// journal's buffer, commits it on destruction.  Every event carries a
/// "type" and an "iter" field — the iteration ordinal is what open_resume
/// keys its truncation on.  Constructing an event on a disabled journal is
/// a no-op (all field calls become cheap branches).
class JournalEvent {
 public:
  JournalEvent(Journal& journal, std::string_view type, int iteration);
  ~JournalEvent();
  JournalEvent(const JournalEvent&) = delete;
  JournalEvent& operator=(const JournalEvent&) = delete;

  JournalEvent& num(std::string_view key, std::int64_t v);
  JournalEvent& real(std::string_view key, double v);
  JournalEvent& str(std::string_view key, std::string_view v);
  JournalEvent& boolean(std::string_view key, bool v);
  /// Nested `"inputs":{"name":value,...}` object from a named assignment.
  JournalEvent& inputs(const std::map<std::string, std::int64_t>& assignment);

 private:
  Journal* journal_ = nullptr;  // null when the journal is disabled
  std::string line_;
  std::optional<JsonWriter> writer_;  // points into line_
};

class Journal {
 public:
  Journal() = default;

  /// Starts a fresh journal at `file` (truncates).  Returns false when the
  /// file cannot be opened; the journal then stays disabled.
  bool open(const std::filesystem::path& file);

  /// Resume-aware open: keeps existing events whose "iter" field is below
  /// `first_iteration` (the checkpoint boundary), drops everything at or
  /// past it — the killed process's un-checkpointed tail — plus any torn
  /// trailing line, then appends.  Falls back to open() when the file does
  /// not exist yet.
  bool open_resume(const std::filesystem::path& file, int first_iteration);

  [[nodiscard]] bool enabled() const {
    return out_.is_open() || tap_on_.load(std::memory_order_relaxed);
  }

  /// Enables the in-memory tap: the last `capacity` committed lines are
  /// retained in a ring with monotonically increasing sequence numbers,
  /// independent of whether a file is open.  This is what /events streams
  /// from — enabling the tap turns the emit sites on even when --journal
  /// is not writing to disk.  Idempotent; survives close().
  void enable_tap(std::size_t capacity);
  [[nodiscard]] bool tap_enabled() const {
    return tap_on_.load(std::memory_order_relaxed);
  }

  /// Appends every retained line committed at or after sequence `cursor`
  /// to `out` (oldest first, no trailing newlines) and returns the new
  /// cursor (one past the last line ever committed).  A cursor older than
  /// the retained window skips ahead — the subscriber missed events.
  std::uint64_t tap_since(std::uint64_t cursor,
                          std::vector<std::string>& out) const;

  /// Flushes buffered events through to the OS.  Called by the driver at
  /// iteration boundaries and checkpoints; cheap when the buffer is empty.
  void flush();

  /// Closes the file (flushing first).  Idempotent.
  void close();

  /// Events committed since open (resume-retained lines not included).
  [[nodiscard]] std::size_t events_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  friend class JournalEvent;

  /// Buffer watermark above which commit() drains to the stream.  Batches
  /// small events into one write without letting a crash lose more than
  /// ~one iteration's worth of lines (the driver flushes each iteration).
  static constexpr std::size_t kFlushBytes = 16 * 1024;

  void commit(std::string&& line);

  /// Guards buffer_/out_/events_: parallel campaign workers commit events
  /// concurrently, each event landing as one whole line.  open/close are
  /// driver-side (quiesced) but lock anyway — they are not hot.
  mutable std::mutex mu_;
  std::ofstream out_;
  std::filesystem::path path_;  ///< names the target in write-error logs
  std::string buffer_;
  std::size_t events_ = 0;
  /// Tap state (guarded by mu_ except the enable flag, which emit sites
  /// read lock-free like out_.is_open()).  tap_head_ is the sequence
  /// number one past the newest retained line.
  std::atomic<bool> tap_on_{false};
  std::size_t tap_capacity_ = 0;
  std::deque<std::string> tap_;
  std::uint64_t tap_head_ = 0;
};

// ---- read-back (the --explain side) ----

/// One parsed journal line: the event type plus every scalar field as raw
/// JSON text, with typed accessors.  Nested objects (the planned-input
/// assignment) are flattened as "inputs.<name>".
struct ParsedEvent {
  std::string type;
  std::map<std::string, std::string> fields;  // raw JSON values

  [[nodiscard]] std::optional<std::int64_t> num(const std::string& key) const;
  [[nodiscard]] std::optional<double> real(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> str(const std::string& key) const;
  [[nodiscard]] std::optional<bool> boolean(const std::string& key) const;
  /// The mandatory iteration ordinal; -1 when missing (malformed event).
  [[nodiscard]] int iter() const;
};

/// Parses one flat JSON object in the journal's dialect (scalars plus one
/// nesting level, flattened into dotted keys) without requiring the
/// "type"/"iter" journal envelope — the status heartbeat reuses this.
/// `type` is left empty.  nullopt on malformed input.
[[nodiscard]] std::optional<ParsedEvent> parse_json_object(
    std::string_view text);

/// Parses one JSONL line.  nullopt on malformed input (torn tail lines) —
/// callers skip those, mirroring the FrameReader's tolerance of a dying
/// writer's residue.
[[nodiscard]] std::optional<ParsedEvent> parse_journal_line(
    std::string_view line);

/// Reads a whole journal file; malformed lines are dropped (counted in
/// `malformed` when given).
[[nodiscard]] std::vector<ParsedEvent> read_journal(
    const std::filesystem::path& file, std::size_t* malformed = nullptr);

}  // namespace compi::obs
