#include "obs/journal.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "obs/artifacts.h"

namespace compi::obs {

namespace {

/// Shortest-round-trip double formatting (the same contract the checkpoint
/// format uses), with the JSON constraint that the text must be a valid
/// JSON number (no "nan"/"inf" — those become 0).
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out.push_back('0');
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) {
    out.push_back('0');
    return;
  }
  out.append(buf, ptr);
}

}  // namespace

void JsonWriter::append_escaped(std::string& out, std::string_view v) {
  out.push_back('"');
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void JsonWriter::key_prefix(std::string_view key) {
  if (!first_) out_->push_back(',');
  first_ = false;
  append_escaped(*out_, key);
  out_->push_back(':');
}

void JsonWriter::field(std::string_view key, std::int64_t v) {
  key_prefix(key);
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out_->append(buf, ec == std::errc{} ? ptr : buf);
}

void JsonWriter::field(std::string_view key, double v) {
  key_prefix(key);
  append_double(*out_, v);
}

void JsonWriter::field(std::string_view key, std::string_view v) {
  key_prefix(key);
  append_escaped(*out_, v);
}

void JsonWriter::field_bool(std::string_view key, bool v) {
  key_prefix(key);
  *out_ += v ? "true" : "false";
}

void JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_->push_back('{');
  first_ = true;
}

void JsonWriter::end_object() {
  out_->push_back('}');
  first_ = false;
}

void JsonWriter::finish() {
  out_->push_back('}');
  out_->push_back('\n');
}

// ---- JournalEvent ----

JournalEvent::JournalEvent(Journal& journal, std::string_view type,
                           int iteration) {
  if (!journal.enabled()) return;
  journal_ = &journal;
  line_.reserve(160);
  writer_.emplace(line_);
  writer_->field("type", type);
  writer_->field("iter", static_cast<std::int64_t>(iteration));
}

JournalEvent::~JournalEvent() {
  if (journal_ == nullptr) return;
  writer_->finish();
  journal_->commit(std::move(line_));
}

JournalEvent& JournalEvent::num(std::string_view key, std::int64_t v) {
  if (journal_ != nullptr) writer_->field(key, v);
  return *this;
}

JournalEvent& JournalEvent::real(std::string_view key, double v) {
  if (journal_ != nullptr) writer_->field(key, v);
  return *this;
}

JournalEvent& JournalEvent::str(std::string_view key, std::string_view v) {
  if (journal_ != nullptr) writer_->field(key, v);
  return *this;
}

JournalEvent& JournalEvent::boolean(std::string_view key, bool v) {
  if (journal_ != nullptr) writer_->field_bool(key, v);
  return *this;
}

JournalEvent& JournalEvent::inputs(
    const std::map<std::string, std::int64_t>& assignment) {
  if (journal_ == nullptr) return *this;
  writer_->begin_object("inputs");
  for (const auto& [name, value] : assignment) {
    writer_->field(name, value);
  }
  writer_->end_object();
  return *this;
}

// ---- Journal ----

bool Journal::open(const std::filesystem::path& file) {
  close();
  out_.open(file, std::ios::trunc);
  path_ = file;
  events_ = 0;
  if (!out_.is_open()) {
    note_artifact_write_error("journal", file.string());
    return false;
  }
  return true;
}

bool Journal::open_resume(const std::filesystem::path& file,
                          int first_iteration) {
  close();
  std::vector<std::string> kept;
  {
    std::ifstream in(file);
    std::string line;
    while (std::getline(in, line)) {
      const std::optional<ParsedEvent> event = parse_journal_line(line);
      // Torn tail or an event from the un-checkpointed iterations the
      // resumed campaign is about to re-run: drop it, the replacement is
      // coming.  Events are appended in iteration order, so everything
      // after the first dropped event would be dropped too.
      if (!event || event->iter() >= first_iteration) break;
      kept.push_back(line);
    }
  }
  out_.open(file, std::ios::trunc);
  path_ = file;
  events_ = 0;
  if (!out_.is_open()) {
    note_artifact_write_error("journal", file.string());
    return false;
  }
  for (const std::string& line : kept) out_ << line << '\n';
  out_.flush();
  return true;
}

void Journal::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  if (!buffer_.empty()) {
    out_ << buffer_;
    buffer_.clear();
  }
  out_.flush();
  // A short write (disk full) latches the stream's failbit; report it and
  // clear the state so later events still get their chance — the journal
  // is a paper trail, not the campaign's source of truth.
  if (!out_.good()) {
    note_artifact_write_error("journal", path_.string());
    out_.clear();
  }
}

void Journal::close() {
  flush();
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  out_.close();
  buffer_.clear();
}

void Journal::commit(std::string&& line) {
  std::lock_guard<std::mutex> lock(mu_);
  ++events_;
  if (tap_capacity_ > 0) {
    // Retain the line without its trailing newline: tap consumers (the
    // SSE stream) frame lines themselves.
    std::string_view body(line);
    while (!body.empty() && body.back() == '\n') body.remove_suffix(1);
    tap_.emplace_back(body);
    ++tap_head_;
    while (tap_.size() > tap_capacity_) tap_.pop_front();
  }
  // Only accumulate the disk buffer when a file is draining it: a
  // tap-only journal (--serve without --journal) must not grow without
  // bound.
  if (!out_.is_open()) return;
  buffer_ += line;
  if (buffer_.size() >= kFlushBytes) {
    out_ << buffer_;
    buffer_.clear();
  }
}

void Journal::enable_tap(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity == 0) capacity = 1;
  tap_capacity_ = capacity;
  while (tap_.size() > tap_capacity_) tap_.pop_front();
  tap_on_.store(true, std::memory_order_relaxed);
}

std::uint64_t Journal::tap_since(std::uint64_t cursor,
                                 std::vector<std::string>& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t oldest = tap_head_ - tap_.size();
  if (cursor < oldest) cursor = oldest;
  for (std::uint64_t seq = cursor; seq < tap_head_; ++seq) {
    out.push_back(tap_[static_cast<std::size_t>(seq - oldest)]);
  }
  return tap_head_;
}

// ---- read-back ----

namespace {

/// Minimal parser for the journal's own output dialect: one flat object
/// per line, string/number/bool values, at most one level of nesting (the
/// "inputs" object, flattened into dotted keys).  Not a general JSON
/// parser — but strict enough that foreign garbage fails cleanly.
class LineParser {
 public:
  explicit LineParser(std::string_view s) : s_(s) {}

  bool parse(ParsedEvent& out) {
    skip_ws();
    if (!consume('{')) return false;
    if (!members(out, "")) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool members(ParsedEvent& out, const std::string& prefix) {
    skip_ws();
    if (consume('}')) return true;  // empty object
    for (;;) {
      skip_ws();
      std::string key;
      if (!string_literal(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (peek() == '{') {
        if (!prefix.empty()) return false;  // one nesting level only
        ++pos_;
        if (!members(out, key + ".")) return false;
      } else {
        std::string value;
        if (!scalar(value)) return false;
        out.fields[prefix + key] = std::move(value);
      }
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  /// Reads a JSON string literal, unescaping into `out`.
  bool string_literal(std::string& out) {
    if (!consume('"')) return false;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      c = s_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The writer only emits \u00xx for control bytes; decode those
          // and reject anything needing real UTF-16 handling.
          if (v > 0xff) return false;
          out.push_back(static_cast<char>(v));
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  /// Reads a scalar value (string, number, true/false/null) as raw text.
  /// Strings are stored unescaped WITHOUT the quotes, with a '"' sentinel
  /// prefix so typed accessors can tell "123" (string) from 123 (number).
  bool scalar(std::string& out) {
    if (peek() == '"') {
      std::string s;
      if (!string_literal(s)) return false;
      out = '"' + s;
      return true;
    }
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}' &&
           s_[pos_] != ' ') {
      ++pos_;
    }
    out = std::string(s_.substr(start, pos_ - start));
    return !out.empty();
  }

  void skip_ws() {
    // '\n' included so whole documents (JsonWriter::finish ends with a
    // newline — /fleet, shard.json) parse as well as journal lines.
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r' ||
            s_[pos_] == '\n')) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : 0; }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<std::int64_t> ParsedEvent::num(const std::string& key) const {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.empty() || it->second[0] == '"') {
    return std::nullopt;
  }
  std::int64_t v = 0;
  const std::string& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> ParsedEvent::real(const std::string& key) const {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.empty() || it->second[0] == '"') {
    return std::nullopt;
  }
  double v = 0.0;
  const std::string& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::string> ParsedEvent::str(const std::string& key) const {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.empty() || it->second[0] != '"') {
    return std::nullopt;
  }
  return it->second.substr(1);
}

std::optional<bool> ParsedEvent::boolean(const std::string& key) const {
  const auto it = fields.find(key);
  if (it == fields.end()) return std::nullopt;
  if (it->second == "true") return true;
  if (it->second == "false") return false;
  return std::nullopt;
}

int ParsedEvent::iter() const {
  return static_cast<int>(num("iter").value_or(-1));
}

std::optional<ParsedEvent> parse_json_object(std::string_view text) {
  ParsedEvent event;
  LineParser parser(text);
  if (!parser.parse(event)) return std::nullopt;
  return event;
}

std::optional<ParsedEvent> parse_journal_line(std::string_view line) {
  ParsedEvent event;
  LineParser parser(line);
  if (!parser.parse(event)) return std::nullopt;
  const std::optional<std::string> type = event.str("type");
  if (!type || event.fields.find("iter") == event.fields.end()) {
    return std::nullopt;
  }
  event.type = *type;
  return event;
}

std::vector<ParsedEvent> read_journal(const std::filesystem::path& file,
                                      std::size_t* malformed) {
  std::vector<ParsedEvent> events;
  std::size_t bad = 0;
  std::ifstream in(file);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (std::optional<ParsedEvent> event = parse_journal_line(line)) {
      events.push_back(std::move(*event));
    } else {
      ++bad;
    }
  }
  if (malformed != nullptr) *malformed = bad;
  return events;
}

}  // namespace compi::obs
