#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <ostream>

namespace compi::obs {

int Histogram::bucket_of(std::int64_t v) {
  if (v <= 1) return 0;
  if (v > bound(kBuckets - 1)) return kBuckets;  // +Inf
  // First i with 2^i >= v, i.e. bit width of v-1.
  return std::bit_width(static_cast<std::uint64_t>(v - 1));
}

void Histogram::observe(std::int64_t v) {
  counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

double Histogram::percentile(double p) const {
  const std::int64_t total = count();
  if (total <= 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(total);
  std::int64_t cumulative = 0;
  for (int i = 0; i <= kBuckets; ++i) {
    const std::int64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Interpolate within [lo, hi); the +Inf bucket has no upper bound, so
      // fall back to the exact observed maximum there (also the global cap:
      // a one-element bucket must not report above what was ever seen).
      const double lo = i == 0 ? 0.0 : static_cast<double>(bound(i - 1));
      const double hi = i == kBuckets ? static_cast<double>(max_observed())
                                      : static_cast<double>(bound(i));
      const double frac =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return std::min(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0),
                      static_cast<double>(max_observed()));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max_observed());
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string labeled_name(std::string_view base, std::string_view label,
                         std::string_view value) {
  std::string out(base);
  out.push_back('{');
  out.append(label);
  out += "=\"";
  out += escape_label_value(value);
  out += "\"}";
  return out;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

Registry::Entry& Registry::find_or_create(const std::string& name,
                                          const std::string& help, Kind kind) {
  std::scoped_lock lock(mu_);
  for (auto& e : entries_) {
    if (e->name == name) {
      assert(e->kind == kind && "metric re-registered as a different kind");
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->kind = kind;
  switch (kind) {
    case Kind::kCounter: e->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: e->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: e->histogram = std::make_unique<Histogram>(); break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  return *find_or_create(name, help, Kind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  return *find_or_create(name, help, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help) {
  return *find_or_create(name, help, Kind::kHistogram).histogram;
}

void Registry::write_prometheus(std::ostream& os) const {
  std::scoped_lock lock(mu_);
  // Labeled metrics (name{label="..."}) share one metric family: the
  // exposition format requires all of a family's samples under a single
  // HELP/TYPE pair, so entries are emitted grouped by family in
  // first-registration order — shard-labeled gauges register interleaved
  // across families as shards report, not adjacently.
  const auto base_of = [](const Entry& e) {
    return std::string_view(e.name).substr(0, e.name.find('{'));
  };
  std::vector<const Entry*> grouped;
  grouped.reserve(entries_.size());
  for (const auto& e : entries_) {
    if (std::find_if(grouped.begin(), grouped.end(),
                     [&](const Entry* g) {
                       return base_of(*g) == base_of(*e);
                     }) != grouped.end()) {
      continue;  // family already swept below
    }
    for (const auto& member : entries_) {
      if (base_of(*member) == base_of(*e)) grouped.push_back(member.get());
    }
  }
  std::string_view last_base;
  for (const Entry* entry : grouped) {
    const Entry& e = *entry;
    const std::string_view base = base_of(e);
    const bool new_family = base != last_base;
    last_base = base;
    if (new_family) os << "# HELP " << base << ' ' << e.help << '\n';
    switch (e.kind) {
      case Kind::kCounter:
        if (new_family) os << "# TYPE " << base << " counter\n";
        os << e.name << ' ' << e.counter->value() << '\n';
        break;
      case Kind::kGauge:
        if (new_family) os << "# TYPE " << base << " gauge\n";
        os << e.name << ' ' << e.gauge->value() << '\n';
        break;
      case Kind::kHistogram: {
        if (new_family) os << "# TYPE " << base << " histogram\n";
        std::int64_t cumulative = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          cumulative += e.histogram->bucket_count(i);
          os << e.name << "_bucket{le=\"" << Histogram::bound(i) << "\"} "
             << cumulative << '\n';
        }
        os << e.name << "_bucket{le=\"+Inf\"} " << e.histogram->count()
           << '\n'
           << e.name << "_sum " << e.histogram->sum() << '\n'
           << e.name << "_count " << e.histogram->count() << '\n';
        break;
      }
    }
  }
}

Registry& registry() {
  static Registry* g = new Registry();  // leaked: handles outlive everything
  return *g;
}

}  // namespace compi::obs
