// Search-stall diagnosis: why has the campaign stopped earning coverage?
//
// The COMPI paper's whole evaluation is iterations-to-coverage curves; the
// operational question a flat curve raises is *which* resource ran dry.
// This engine consumes the coverage timeline, the negation-frontier depth,
// the solver outcome mix, and (on a coordinator) per-shard progress, and
// classifies the current state into one of a small closed set of verdicts:
//
//   progressing       coverage grew within the plateau window
//   coverage-plateau  the search still has candidates but none of them
//                     earn new branches (the paper's saturation regime)
//   frontier-starved  nothing left to negate: the negation frontier and
//                     the interleaving queue are both empty
//   solver-thrash     budget-exhausted solver outcomes dominate — time is
//                     burning in searches that reach no verdict
//   straggler-shard   one shard's rate has fallen far behind the fleet
//   lease-churn       leases keep being reclaimed and re-granted; work is
//                     bouncing between shards instead of finishing
//
// `diagnose()` is a pure function over an explicit input snapshot, so
// tests feed it synthetic timelines; `DiagnosisEngine` is the stateful
// wrapper the campaign loops use — it accumulates the timeline, re-runs
// the classifier, and emits a journal `diagnosis` event on every verdict
// TRANSITION (not every sample).  Everything here is plain computation on
// caller-provided state: the obs-off build compiles it unchanged, and a
// session that never constructs an engine is byte-identical to before.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace compi::obs {

class Journal;

enum class StallKind {
  kProgressing,
  kCoveragePlateau,
  kFrontierStarved,
  kSolverThrash,
  kStragglerShard,
  kLeaseChurn,
};

[[nodiscard]] const char* to_string(StallKind kind);

/// One point on the coverage timeline (campaign-relative seconds).
struct CoveragePoint {
  double seconds = 0.0;
  std::int64_t covered = 0;
};

/// One shard's progress summary as the coordinator sees it.
struct ShardProgress {
  std::string name;
  double rate = 0.0;  ///< iterations per second over the recent window
  bool connected = true;
  double since_last_seen = 0.0;  ///< seconds since the last frame
};

struct DiagnosisInput {
  /// Campaign-relative wall clock of the sample being classified.
  double elapsed_seconds = 0.0;
  /// Coverage samples, oldest first.  The classifier only needs enough
  /// history to find the last increase; callers may thin freely.
  std::vector<CoveragePoint> coverage_timeline;
  /// Negation-frontier depth; -1 when unknown (a coordinator that has not
  /// received telemetry yet must not conclude "frontier-starved").
  std::int64_t frontier_depth = -1;
  std::int64_t interleavings_pending = 0;
  /// Cumulative solver outcome mix.
  std::int64_t solver_sat = 0;
  std::int64_t solver_unsat = 0;
  std::int64_t solver_budget = 0;
  /// Fleet view; empty for standalone campaigns.
  std::vector<ShardProgress> shards;
  std::int64_t shards_joined = 0;
  std::int64_t leases_reclaimed = 0;
  /// Seconds without new coverage before a stall verdict is considered.
  double plateau_window_seconds = 20.0;
};

struct Diagnosis {
  StallKind kind = StallKind::kProgressing;
  /// One human sentence: the verdict plus the numbers that drove it.
  std::string detail;
  /// Seconds since the timeline last recorded new coverage.
  double stalled_seconds = 0.0;
};

/// Pure classifier.  Precedence once the plateau window is exceeded:
/// lease-churn > straggler-shard > frontier-starved > solver-thrash >
/// coverage-plateau — infrastructure explanations are checked before
/// search-intrinsic ones because fixing them can revive the curve.
[[nodiscard]] Diagnosis diagnose(const DiagnosisInput& in);

/// Stateful wrapper for the campaign loops: tracks where the coverage
/// maximum last rose, classifies each sample, and journals verdict
/// transitions as `diagnosis` events.  Null journal = classify only.
class DiagnosisEngine {
 public:
  explicit DiagnosisEngine(Journal* journal = nullptr) : journal_(journal) {}

  /// Feeds one sample.  `in.coverage_timeline` is ignored; the engine
  /// derives it from (elapsed_seconds, covered).  Only a new coverage
  /// maximum counts as progress, so parallel workers reporting stale
  /// lower counts out of order cannot fake a fresh gain.  The frontier
  /// and interleaving inputs are debounced: a momentary zero (the
  /// exhaust → restart → replan cycle empties them every few
  /// iterations) only reads as starvation once it has persisted for the
  /// whole plateau window.  Returns the current diagnosis.
  Diagnosis update(DiagnosisInput in, std::int64_t covered, int iteration);

  [[nodiscard]] const Diagnosis& current() const { return current_; }

 private:
  Journal* journal_;
  bool has_samples_ = false;
  CoveragePoint first_;      ///< the campaign's first sample
  CoveragePoint last_gain_;  ///< when the coverage maximum last rose
  double work_seen_at_ = 0.0;        ///< last sample with a non-empty (or
                                     ///< unknown) frontier or queue
  std::int64_t last_frontier_ = -1;  ///< most recent non-zero depth
  std::int64_t last_pending_ = 0;    ///< most recent non-zero queue size
  Diagnosis current_;
  bool reported_once_ = false;
};

}  // namespace compi::obs
