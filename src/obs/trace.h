// Structured tracing: ring-buffered scoped spans exported as Chrome
// trace_event JSON (chrome://tracing / Perfetto).
//
// One process-global Tracer holds a fixed ring of POD TraceEvents; a span
// (ObsSpan) or instant is recorded by bumping an atomic index and writing
// one slot, so the oldest events are overwritten when a campaign outlives
// the buffer (`--trace-buffer-kb`).  Every event carries a track id: track
// 0 is the campaign driver, track r+1 is MiniMPI rank r (published
// thread-locally by the launcher), which is what turns the dump into the
// paper-style timeline — a solver span on the driver track sitting next to
// the stalled collective on the victim rank's track.
//
// Cost discipline: when tracing is off (the default), every hook is a
// single relaxed load + branch.  Compiling with COMPI_OBS_DISABLED removes
// even that: the span/instant API collapses to empty inlines and the
// exporter writes a valid empty trace.
//
// Event names and arg names must be string literals (or otherwise outlive
// the tracer): only the pointer is stored in the ring.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace compi::obs {

/// Span categories: the subsystems the per-phase accounting attributes
/// time to.  Serialized into the trace's "cat" field.
enum class Cat : std::uint8_t {
  kDriver,      // per-iteration envelope
  kSolver,      // constraint solving
  kExecute,     // target execution (rank bodies)
  kLaunch,      // fork/launch of a MiniMPI job
  kStrategy,    // search-strategy bookkeeping
  kCheckpoint,  // session snapshotting
  kChaosRetry,  // retry/backoff absorbing a transient failure
  kMpi,         // point-to-point message events
  kCollective,  // collective enter-exit
  kChaos,       // fault-plan injections (drop/delay/crash/stall)
  kSandbox,     // process-isolation supervisor (fork / kill / harvest)
  kMatch,       // wildcard-receive match decisions / deadlock verdicts
  kCoord,       // coordinator lease/merge/broadcast bookkeeping
};

[[nodiscard]] const char* to_string(Cat cat);

/// One ring slot.  POD so slots can be overwritten racily by design (the
/// ring is a lossy flight recorder, not a reliable log).
struct TraceEvent {
  const char* name = nullptr;      // static-storage string
  const char* arg_name = nullptr;  // optional, static-storage
  std::int64_t ts_us = 0;          // microseconds since Tracer epoch
  std::int64_t dur_us = 0;         // complete spans only
  std::int64_t arg = 0;
  std::int32_t tid = 0;            // 0 = driver, r+1 = rank r
  Cat cat = Cat::kDriver;
  char ph = 'X';                   // 'X' complete span, 'i' instant
};

class Tracer {
 public:
  /// Sizes (or resizes) the ring to hold `buffer_kb` KiB of events, clears
  /// it, and restarts the timestamp epoch.  Not thread-safe against
  /// concurrent record() — call before enabling.
  void configure(std::size_t buffer_kb);

  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const {
#ifdef COMPI_OBS_DISABLED
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }

  void record(const TraceEvent& event);

  /// Microseconds since the last configure().
  [[nodiscard]] std::int64_t now_us() const;

  /// Wall-clock time (microseconds since the Unix epoch) captured at the
  /// last configure() — the same instant the monotonic epoch restarted.
  /// Exported in the Chrome JSON's otherData so `compi trace-merge` can
  /// align traces from different processes on one absolute timeline.
  [[nodiscard]] std::int64_t epoch_wall_us() const { return epoch_wall_us_; }

  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events overwritten because the ring wrapped.
  [[nodiscard]] std::size_t dropped() const;

  /// Chrome trace_event JSON: {"traceEvents": [...]} with one thread_name
  /// metadata record per track seen ("driver", "rank 0", ...).  Loadable in
  /// chrome://tracing and Perfetto.
  void write_chrome_json(std::ostream& os) const;

 private:
  std::atomic<bool> enabled_{false};
  std::vector<TraceEvent> ring_;
  std::atomic<std::uint64_t> next_{0};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::int64_t epoch_wall_us_ = 0;
};

/// The process-global tracer all hooks record into.
[[nodiscard]] Tracer& tracer();

#ifdef COMPI_OBS_DISABLED

inline void set_thread_track(int) {}
[[nodiscard]] inline int thread_track() { return 0; }

class ScopedTrack {
 public:
  explicit ScopedTrack(int) {}
};

class ObsSpan {
 public:
  ObsSpan(Cat, const char*) {}
  ObsSpan(Cat, const char*, const char*, std::int64_t) {}
  void set_arg(const char*, std::int64_t) {}
  void finish() {}
};

inline void instant(Cat, const char*, const char* = nullptr,
                    std::int64_t = 0) {}

#else  // tracing compiled in

/// Publishes the current thread's track id (0 = driver; the launcher sets
/// rank r's thread to r+1).
void set_thread_track(int tid);
[[nodiscard]] int thread_track();

/// RAII track override, restoring the previous track on scope exit (the
/// launcher's rank threads; nested for MPMD relaunches on a pool thread).
class ScopedTrack {
 public:
  explicit ScopedTrack(int tid) : prev_(thread_track()) {
    set_thread_track(tid);
  }
  ~ScopedTrack() { set_thread_track(prev_); }
  ScopedTrack(const ScopedTrack&) = delete;
  ScopedTrack& operator=(const ScopedTrack&) = delete;

 private:
  int prev_;
};

/// RAII scoped span.  When tracing is off, construction and destruction
/// are each one relaxed load + branch; nothing else runs.
class ObsSpan {
 public:
  ObsSpan(Cat cat, const char* name) {
    if (tracer().enabled()) begin(cat, name);
  }
  ObsSpan(Cat cat, const char* name, const char* arg_name, std::int64_t arg)
      : ObsSpan(cat, name) {
    if (armed_) {
      event_.arg_name = arg_name;
      event_.arg = arg;
    }
  }
  ~ObsSpan() {
    if (armed_) end();
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Attaches/overwrites the span's argument (e.g. a node count known only
  /// at the end of the scope).  No-op when tracing was off at construction.
  void set_arg(const char* name, std::int64_t value) {
    if (armed_) {
      event_.arg_name = name;
      event_.arg = value;
    }
  }

  /// Closes the span early (idempotent) — for callers that must export the
  /// trace before the enclosing scope ends (e.g. the campaign span, which
  /// would otherwise miss its own final dump).
  void finish() {
    if (armed_) {
      end();
      armed_ = false;
    }
  }

 private:
  void begin(Cat cat, const char* name);
  void end();

  TraceEvent event_{};
  bool armed_ = false;
};

/// Zero-duration event on the current thread's track.
inline void instant(Cat cat, const char* name, const char* arg_name = nullptr,
                    std::int64_t arg = 0) {
  Tracer& t = tracer();
  if (!t.enabled()) return;
  TraceEvent e;
  e.name = name;
  e.arg_name = arg_name;
  e.ts_us = t.now_us();
  e.arg = arg;
  e.tid = thread_track();
  e.cat = cat;
  e.ph = 'i';
  t.record(e);
}

#endif  // COMPI_OBS_DISABLED

}  // namespace compi::obs
