// Per-thread CPU-phase clock.
//
// Under --workers > 1, several driver loops run wall-clock-concurrently:
// summing per-iteration *wall* durations across workers double-counts the
// campaign's elapsed time (two workers solving for 1 s each during the
// same wall second would report 2 s).  Thread CPU time does not have that
// failure mode — it meters the cycles THIS thread actually burned, so
// per-worker phase costs sum to aggregate CPU spent, regardless of how
// the scheduler interleaved the workers (and it excludes retry-backoff
// sleeps, which wall clocks silently inflate).  The driver uses it for
// the solve phase, which runs entirely on the worker's own thread; the
// execute phase fans out to rank threads (or a forked child), so its
// per-worker cost stays a wall-clock reading — see DESIGN.md "Timing
// semantics" for the full contract.
#pragma once

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

namespace compi::obs {

/// Seconds of CPU time consumed by the CALLING thread since some fixed
/// point; differences of two readings meter a phase.  Falls back to a
/// steady wall clock on platforms without a per-thread CPU clock.
[[nodiscard]] inline double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace compi::obs
