#include "runtime/faults.h"

namespace compi::rt {

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kSegfault: return "segfault";
    case Outcome::kFpe: return "fpe";
    case Outcome::kAssert: return "assert";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kMpiError: return "mpi-error";
    case Outcome::kAborted: return "aborted";
    case Outcome::kDeadlock: return "deadlock";
    case Outcome::kOrphanMessage: return "orphan-message";
  }
  return "?";
}

std::optional<Outcome> outcome_from_string(std::string_view s) {
  // Round-trips every enumerator through to_string (keep the two in sync).
  for (const Outcome o :
       {Outcome::kOk, Outcome::kSegfault, Outcome::kFpe, Outcome::kAssert,
        Outcome::kTimeout, Outcome::kMpiError, Outcome::kAborted,
        Outcome::kDeadlock, Outcome::kOrphanMessage}) {
    if (s == to_string(o)) return o;
  }
  return std::nullopt;
}

}  // namespace compi::rt
