#include "runtime/faults.h"

namespace compi::rt {

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kSegfault: return "segfault";
    case Outcome::kFpe: return "fpe";
    case Outcome::kAssert: return "assert";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kMpiError: return "mpi-error";
    case Outcome::kAborted: return "aborted";
  }
  return "?";
}

}  // namespace compi::rt
