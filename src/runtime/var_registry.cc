#include "runtime/var_registry.h"

namespace compi::rt {

const char* to_string(VarKind k) {
  switch (k) {
    case VarKind::kRegular: return "regular";
    case VarKind::kRankWorld: return "rw";
    case VarKind::kRankLocal: return "rc";
    case VarKind::kSizeWorld: return "sw";
  }
  return "?";
}

Var VarRegistry::intern(std::string_view key, VarKind kind,
                        solver::Interval domain,
                        std::optional<std::int64_t> cap, int comm_index) {
  std::scoped_lock lock(mu_);
  auto it = by_key_.find(std::string(key));
  if (it != by_key_.end()) return it->second;
  const Var v = static_cast<Var>(metas_.size());
  by_key_.emplace(std::string(key), v);
  metas_.push_back({std::string(key), kind, domain, cap, comm_index});
  return v;
}

std::size_t VarRegistry::size() const {
  std::scoped_lock lock(mu_);
  return metas_.size();
}

VarMeta VarRegistry::meta(Var v) const {
  std::scoped_lock lock(mu_);
  return metas_[v];
}

std::vector<VarMeta> VarRegistry::all() const {
  std::scoped_lock lock(mu_);
  return metas_;
}

solver::Interval VarRegistry::effective_domain(Var v) const {
  std::scoped_lock lock(mu_);
  const VarMeta& m = metas_[v];
  solver::Interval dom = m.domain;
  if (m.cap) dom.hi = std::min(dom.hi, *m.cap);
  return dom;
}

std::vector<Var> VarRegistry::of_kind(VarKind k) const {
  std::scoped_lock lock(mu_);
  std::vector<Var> out;
  for (std::size_t i = 0; i < metas_.size(); ++i) {
    if (metas_[i].kind == k) out.push_back(static_cast<Var>(i));
  }
  return out;
}

}  // namespace compi::rt
