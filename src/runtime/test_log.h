// Per-rank output of one test execution.
//
// In the paper each process writes its symbolic-execution history to a file
// COMPI reads between iterations; with two-way instrumentation (§IV-B) the
// focus process writes the full history while non-focus processes write
// only covered branch ids.  TestLog is that "file": the serialize() form is
// what a process would write, and its size is the I/O cost Table IV reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/faults.h"
#include "runtime/var_registry.h"
#include "solver/solver.h"
#include "symbolic/path.h"

namespace compi::rt {

/// Coverage bitmap over branch ids (2 per site).
class CoverageBitmap {
 public:
  CoverageBitmap() = default;
  explicit CoverageBitmap(std::size_t num_branches)
      : bits_(num_branches, 0) {}

  void mark(sym::BranchId b) {
    if (static_cast<std::size_t>(b) < bits_.size()) bits_[b] = 1;
  }
  [[nodiscard]] bool covered(sym::BranchId b) const {
    return static_cast<std::size_t>(b) < bits_.size() && bits_[b] != 0;
  }
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::size_t size() const { return bits_.size(); }

  /// Unions `other` into this bitmap (resizing as needed).
  void merge(const CoverageBitmap& other);

  [[nodiscard]] std::vector<sym::BranchId> covered_ids() const;

 private:
  std::vector<std::uint8_t> bits_;
};

/// The result one rank reports back after executing the target once.
struct TestLog {
  bool heavy = false;  // produced by the heavy-instrumented binary (ex1)?
  int rank = 0;
  int nprocs = 0;
  Outcome outcome = Outcome::kOk;
  std::string outcome_message;

  CoverageBitmap covered;  // both modes

  // ---- heavy (focus) mode only ----
  sym::Path path;                       // symbolic branch history
  /// Full branch-event trace (every branch executed, in order) — what the
  /// heavily instrumented binary writes for replay (CREST's szd_execution).
  /// This, not the reduced constraint set, is what makes one-way
  /// instrumentation's log I/O expensive (paper Table IV).
  std::vector<sym::BranchId> branch_trace;
  /// Operation events executed under heavy instrumentation (§IV-B).
  std::int64_t op_count = 0;
  solver::Assignment inputs_used;       // value of every registered var
  std::vector<std::int64_t> comm_sizes; // concrete size per local comm index
  /// mapping[comm][local_rank] == global rank (paper Table II).
  std::vector<std::vector<int>> rank_mapping;

  /// The bytes this rank would write to its log file.  Non-focus logs are a
  /// few KB (branch ids only); a heavy log grows with the constraint set.
  [[nodiscard]] std::string serialize() const;
};

}  // namespace compi::rt
