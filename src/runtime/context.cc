#include "runtime/context.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "runtime/coverage_sink.h"

namespace compi::rt {

RuntimeContext::RuntimeContext(const ContextParams& params)
    : params_(params) {
  assert(params_.table != nullptr && "a branch table is required");
  log_.heavy = heavy();
  log_.covered = CoverageBitmap(params_.table->num_branches());
  steps_left_ = params_.step_budget;
  site_seen_.assign(params_.table->num_sites(), 0);
  site_last_outcome_.assign(params_.table->num_sites(), 0);
}

namespace {
// SplitMix64 — deterministic per-key value derivation so every SPMD rank
// draws the *same* "random" initial value for the same input, exactly as
// every MPI process would read the same value from the input file.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

std::int64_t RuntimeContext::initial_value_for(Var v,
                                               std::string_view key) const {
  // First-iteration behaviour: random value within the effective domain,
  // kept small so the initial run is cheap (mirrors CREST's random init).
  const solver::Interval dom = params_.registry->effective_domain(v);
  const std::int64_t lo = std::max<std::int64_t>(dom.lo, -1000);
  const std::int64_t hi = std::min<std::int64_t>(dom.hi, 1000);
  if (lo > hi) return dom.lo;  // degenerate tight domain
  const std::uint64_t h =
      splitmix64(params_.rng_seed ^ std::hash<std::string_view>{}(key));
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(h % span);
}

sym::SymInt RuntimeContext::mark_input(std::string_view key, VarKind kind,
                                       solver::Interval domain,
                                       std::optional<std::int64_t> cap,
                                       int comm_index,
                                       std::optional<std::int64_t> runtime_value) {
  if (params_.registry == nullptr) {
    throw MpiUsageError("context has no variable registry");
  }
  const Var v = params_.registry->intern(key, kind, domain, cap, comm_index);
  std::int64_t value;
  if (runtime_value) {
    // MPI-semantics variables take their value from the environment, not
    // from the solver (the solver's value was already consumed at launch
    // time to pick nprocs and the focus, §III-D).
    value = *runtime_value;
  } else if (auto it = params_.inputs->find(v); it != params_.inputs->end()) {
    value = it->second;
  } else {
    value = initial_value_for(v, key);
  }
  if (!heavy()) {
    // Light mode: concrete value only; non-focus processes perform no
    // symbolic bookkeeping (two-way instrumentation, §IV-B).
    return sym::SymInt(value);
  }
  log_.inputs_used[v] = value;
  return sym::SymInt(value, v);
}

sym::SymInt RuntimeContext::input_int(std::string_view key) {
  return mark_input(key, VarKind::kRegular, solver::int32_domain(),
                    std::nullopt, -1, std::nullopt);
}

sym::SymInt RuntimeContext::input_int_capped(std::string_view key,
                                             std::int64_t cap) {
  return mark_input(key, VarKind::kRegular, solver::int32_domain(), cap, -1,
                    std::nullopt);
}

sym::SymInt RuntimeContext::input_int_range(std::string_view key,
                                            std::int64_t lo, std::int64_t hi) {
  return mark_input(key, VarKind::kRegular, {lo, hi}, std::nullopt, -1,
                    std::nullopt);
}

bool RuntimeContext::branch(SiteId site, const sym::SymBool& cond) {
  if (params_.step_budget > 0 && --steps_left_ <= 0) {
    throw StepBudgetExceeded("step budget exhausted at site " +
                             std::to_string(site));
  }
  const bool taken = cond.value();
  log_.covered.mark(sym::branch_id(site, taken));
  coverage_sink_mark(sym::branch_id(site, taken), log_.rank);
  if (heavy()) {
    log_.branch_trace.push_back(sym::branch_id(site, taken));
  }

  if (heavy() && cond.is_symbolic()) {
    // Constraint-set reduction (§IV-C): record only on first encounter of
    // the site or when the outcome flips relative to the last encounter.
    bool record = true;
    if (params_.reduction) {
      const bool first = site_seen_[site] == 0;
      record = first || (site_last_outcome_[site] != (taken ? 1 : 0));
    }
    site_seen_[site] = 1;
    site_last_outcome_[site] = taken ? 1 : 0;
    if (record) {
      log_.path.append(site, taken, cond.taken_predicate());
    }
  }
  return taken;
}

void RuntimeContext::ops(std::int64_t n) {
  if (!heavy()) return;  // the light binary has no per-operation stubs
  std::uint64_t d = op_digest_;
  for (std::int64_t i = 0; i < n; ++i) {
    d = d * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  op_digest_ = d;
  log_.op_count += n;
}

sym::SymInt RuntimeContext::div(const sym::SymInt& a, const sym::SymInt& b) {
  if (b.value() == 0) {
    throw SimulatedFpe("integer division by zero");
  }
  return a / b;
}

sym::SymInt RuntimeContext::mod(const sym::SymInt& a, const sym::SymInt& b) {
  if (b.value() == 0) {
    throw SimulatedFpe("integer modulo by zero");
  }
  return a % b;
}

void RuntimeContext::check(bool cond, const char* what) {
  if (!cond) throw AssertionViolation(what);
}

sym::SymInt RuntimeContext::mark_world_rank(int rank) {
  if (!heavy() || !params_.mark_mpi_vars) return sym::SymInt(rank);
  const std::string key = "rw#" + std::to_string(rw_marks_++);
  return mark_input(key, VarKind::kRankWorld, {0, 1 << 20}, std::nullopt, -1,
                    rank);
}

sym::SymInt RuntimeContext::mark_world_size(int size) {
  if (!heavy() || !params_.mark_mpi_vars) return sym::SymInt(size);
  const std::string key = "sw#" + std::to_string(sw_marks_++);
  return mark_input(key, VarKind::kSizeWorld, {1, 1 << 20}, std::nullopt, -1,
                    size);
}

sym::SymInt RuntimeContext::mark_local_rank(int comm_index, int local_rank,
                                            int comm_size) {
  if (!heavy() || !params_.mark_mpi_vars) return sym::SymInt(local_rank);
  if (static_cast<std::size_t>(comm_index) >= log_.comm_sizes.size()) {
    log_.comm_sizes.resize(comm_index + 1, 0);
  }
  log_.comm_sizes[comm_index] = comm_size;
  const std::string key = "rc#" + std::to_string(comm_index);
  return mark_input(key, VarKind::kRankLocal, {0, 1 << 20}, std::nullopt,
                    comm_index, local_rank);
}

int RuntimeContext::register_comm(std::vector<int> global_ranks_by_local) {
  const int index = comm_count_++;
  if (heavy()) {
    if (static_cast<std::size_t>(index) >= log_.rank_mapping.size()) {
      log_.rank_mapping.resize(index + 1);
    }
    log_.rank_mapping[index] = std::move(global_ranks_by_local);
  }
  return index;
}

void RuntimeContext::set_identity(int rank, int nprocs) {
  log_.rank = rank;
  log_.nprocs = nprocs;
}

void RuntimeContext::finish(Outcome outcome, std::string message) {
  log_.outcome = outcome;
  log_.outcome_message = std::move(message);
}

TestLog RuntimeContext::take_log() { return std::move(log_); }

}  // namespace compi::rt
