// Fault model of the simulated execution environment.
//
// The paper's COMPI observes target failures as process-level events:
// segmentation faults, floating-point exceptions (division by zero),
// assertion violations, and hangs killed by a per-test timeout (§V).  In
// this in-process reproduction those events are C++ exceptions thrown by
// the runtime and converted by the MiniMPI launcher into per-rank exit
// statuses, which the driver logs together with the error-inducing inputs.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace compi::rt {

/// How one rank's execution of the target finished.
enum class Outcome : std::uint8_t {
  kOk,
  kSegfault,    // checked-allocator out-of-bounds access
  kFpe,         // integer division by zero
  kAssert,      // target assertion violated
  kTimeout,     // step-budget watchdog / wall-clock deadline (simulated hang)
  kMpiError,    // MPI substrate usage error
  kAborted,     // unwound because a *peer* faulted (mpiexec kills the job)
  kDeadlock,    // match scheduler proved a wait-for cycle (exact, no timeout)
  kOrphanMessage,  // sent messages never received by finalize
};

/// True for outcomes that indicate a bug in the target on *this* rank
/// (kAborted is collateral, not a fault of its own).
[[nodiscard]] constexpr bool is_fault(Outcome o) {
  return o != Outcome::kOk && o != Outcome::kAborted;
}

[[nodiscard]] const char* to_string(Outcome o);

/// Inverse of to_string: parses the serialized outcome name (as written to
/// bugs.txt / iterations.csv).  nullopt for unknown strings.
[[nodiscard]] std::optional<Outcome> outcome_from_string(std::string_view s);

/// Base class for simulated target faults.
class SimulatedFault : public std::runtime_error {
 public:
  SimulatedFault(Outcome outcome, const std::string& what)
      : std::runtime_error(what), outcome_(outcome) {}
  [[nodiscard]] Outcome outcome() const { return outcome_; }

 private:
  Outcome outcome_;
};

class SimulatedSegfault : public SimulatedFault {
 public:
  explicit SimulatedSegfault(const std::string& what)
      : SimulatedFault(Outcome::kSegfault, what) {}
};

class SimulatedFpe : public SimulatedFault {
 public:
  explicit SimulatedFpe(const std::string& what)
      : SimulatedFault(Outcome::kFpe, what) {}
};

class AssertionViolation : public SimulatedFault {
 public:
  explicit AssertionViolation(const std::string& what)
      : SimulatedFault(Outcome::kAssert, what) {}
};

class StepBudgetExceeded : public SimulatedFault {
 public:
  explicit StepBudgetExceeded(const std::string& what)
      : SimulatedFault(Outcome::kTimeout, what) {}
};

class MpiUsageError : public SimulatedFault {
 public:
  explicit MpiUsageError(const std::string& what)
      : SimulatedFault(Outcome::kMpiError, what) {}
};

/// Thrown on the rank whose blocking call completed a wait-for cycle: the
/// match scheduler proved every live rank blocked with no feasible message,
/// so the job can never progress.  Exact and instant, unlike the wall-clock
/// watchdog that kTimeout rides on.
class DeadlockDetected : public SimulatedFault {
 public:
  explicit DeadlockDetected(const std::string& what)
      : SimulatedFault(Outcome::kDeadlock, what) {}
};

}  // namespace compi::rt
