// A bounds-checked allocation arena used to make memory bugs observable.
//
// The SUSY-HMC bugs COMPI found (paper §VI-A) are wrong-size malloc() calls
// — `malloc(Nroot * sizeof(**src))` where `sizeof(Twist_Fermion*)` was
// intended — that crash with SIGSEGV when the code indexes past the
// allocation.  Running in-process we cannot (and must not) take a real
// SIGSEGV, so targets allocate through this arena; any access beyond an
// allocation's byte size raises SimulatedSegfault, which the launcher turns
// into a crashed-rank exit status exactly like a real segfault would be
// observed by mpiexec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/faults.h"

namespace compi::rt {

class CheckedArena {
 public:
  using Handle = std::size_t;

  /// Allocates a block of `bytes` bytes ("malloc").  The arena does not
  /// hand out real memory — targets keep their data in ordinary containers
  /// — it tracks sizes so that access patterns can be bounds-checked.
  Handle alloc(std::size_t bytes, std::string label = {});

  /// Checks the access `block[index]` where each element is `elem_size`
  /// bytes.  Throws SimulatedSegfault when the access falls outside the
  /// allocation (the wrong-sizeof bug signature).
  void check_access(Handle h, std::size_t index, std::size_t elem_size) const;

  /// Frees a block; double free raises SimulatedSegfault.
  void free(Handle h);

  [[nodiscard]] std::size_t bytes_of(Handle h) const;
  [[nodiscard]] std::size_t live_blocks() const;

 private:
  struct Block {
    std::size_t bytes = 0;
    bool freed = false;
    std::string label;
  };
  std::vector<Block> blocks_;
};

}  // namespace compi::rt
