// RuntimeContext — the concolic execution library (instrumentation surface).
//
// Target programs are written against this interface, which mirrors the
// call surface CIL-instrumented code has in the paper's artifact:
//  * input marking (`input_int`, `input_int_capped` = COMPI_int_with_limit),
//  * branch events carrying static site ids and concolic conditions,
//  * checked division (SIGFPE model) and a bounds-checked arena (SIGSEGV
//    model),
//  * the MPI-semantics hooks MiniMPI invokes on MPI_Comm_rank/size so the
//    rw/rc/sw variables of paper Table I are marked automatically (§III-A).
//
// Two-way instrumentation (§IV-B) is realized as the context *mode*:
//  * kHeavy — full symbolic execution: builds expressions, records the
//    path, applies constraint-set reduction; used by the focus process;
//  * kLight — records covered branch ids only; used by everyone else.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "runtime/branch_table.h"
#include "runtime/checked_alloc.h"
#include "runtime/faults.h"
#include "runtime/test_log.h"
#include "runtime/var_registry.h"
#include "symbolic/sym_value.h"

namespace compi::rt {

enum class Mode : std::uint8_t { kHeavy, kLight };

/// Everything a context needs for one execution of the target.
struct ContextParams {
  Mode mode = Mode::kLight;
  const BranchTable* table = nullptr;
  /// Shared across iterations; only the heavy context marks variables.
  VarRegistry* registry = nullptr;
  /// Input values for this run; vars absent from the map get random values
  /// drawn within their effective domains (the first iteration's behaviour,
  /// paper §II-A).
  const solver::Assignment* inputs = nullptr;
  std::uint64_t rng_seed = 1;
  /// Branch-event budget; 0 disables the watchdog.  Exceeding it raises
  /// StepBudgetExceeded — the in-process analog of the per-test timeout
  /// that exposes infinite-loop bugs (§V).
  std::int64_t step_budget = 0;
  /// Constraint-set reduction (§IV-C) on/off; only meaningful in heavy mode.
  bool reduction = true;
  /// When false, the MPI hooks do not mark rw/rc/sw symbolically — this is
  /// the No_Fwk ablation (§VI-E) where MPI semantics are invisible.
  bool mark_mpi_vars = true;
};

class RuntimeContext {
 public:
  explicit RuntimeContext(const ContextParams& params);

  [[nodiscard]] Mode mode() const { return params_.mode; }
  [[nodiscard]] bool heavy() const { return params_.mode == Mode::kHeavy; }

  // ---- input marking (developer-facing, paper §II-A / §IV-A) ----

  /// Marks a symbolic int input with the default int32 domain.
  sym::SymInt input_int(std::string_view key);
  /// COMPI_int_with_limit: marks an input whose value is capped at `cap`.
  sym::SymInt input_int_capped(std::string_view key, std::int64_t cap);
  /// Marks an input with an explicit domain [lo, hi].
  sym::SymInt input_int_range(std::string_view key, std::int64_t lo,
                              std::int64_t hi);
  /// Typed marking shorthands (CREST marks unsigned/char/short the same
  /// way, with the type's value range as the domain).
  sym::SymInt input_uint(std::string_view key) {
    return input_int_range(key, 0, 4294967295LL);
  }
  sym::SymInt input_short(std::string_view key) {
    return input_int_range(key, -32768, 32767);
  }
  sym::SymInt input_char(std::string_view key) {
    return input_int_range(key, -128, 127);
  }
  sym::SymInt input_bool(std::string_view key) {
    return input_int_range(key, 0, 1);
  }

  // ---- instrumentation events ----

  /// Branch event for static site `site`.  Records coverage in both modes;
  /// in heavy mode also records the path constraint (subject to reduction).
  /// Returns the concrete outcome so call sites read as `if (ctx.branch(...))`.
  bool branch(SiteId site, const sym::SymBool& cond);

  /// Per-operation instrumentation events.  CIL instruments *every* load,
  /// store and arithmetic operation of the heavy binary with a runtime
  /// stub — including purely concrete floating-point kernels.  Targets
  /// call ops(n) from their numeric inner loops with the operation count;
  /// in heavy mode each operation pays a small bookkeeping cost (folded
  /// into a digest so it cannot be optimized away), in light mode it is
  /// free — this is the cost asymmetry two-way instrumentation exploits
  /// (paper §IV-B, Table IV).
  void ops(std::int64_t n);

  /// Checked integer division: raises SimulatedFpe when b == 0, exactly the
  /// division-by-zero bug class found in SUSY-HMC.
  sym::SymInt div(const sym::SymInt& a, const sym::SymInt& b);
  sym::SymInt mod(const sym::SymInt& a, const sym::SymInt& b);

  /// Target assertion; raises AssertionViolation on failure.
  void check(bool cond, const char* what);

  /// Bounds-checked allocation arena (SIGSEGV model).
  CheckedArena& arena() { return arena_; }

  // ---- MPI-semantics hooks (called by MiniMPI, §III-A) ----

  /// MPI_Comm_rank on MPI_COMM_WORLD: marks an rw variable (heavy mode).
  sym::SymInt mark_world_rank(int rank);
  /// MPI_Comm_size on MPI_COMM_WORLD: marks an sw variable (heavy mode).
  sym::SymInt mark_world_size(int size);
  /// MPI_Comm_rank on another communicator: marks an rc variable; the
  /// communicator's concrete size feeds the `rc < s_i` constraint (§III-B).
  sym::SymInt mark_local_rank(int comm_index, int local_rank, int comm_size);
  /// Registers a communicator created by MPI_Comm_split: its creation-order
  /// index and the local-rank -> global-rank row of the mapping table
  /// (paper Table II).
  int register_comm(std::vector<int> global_ranks_by_local);

  // ---- results ----

  void set_identity(int rank, int nprocs);
  void finish(Outcome outcome, std::string message = {});
  [[nodiscard]] TestLog take_log();

  /// Current number of constraints recorded (drives the two-phase
  /// DFS-bound estimation and Fig. 9).
  [[nodiscard]] std::size_t constraint_count() const { return log_.path.size(); }

 private:
  sym::SymInt mark_input(std::string_view key, VarKind kind,
                         solver::Interval domain,
                         std::optional<std::int64_t> cap, int comm_index,
                         std::optional<std::int64_t> runtime_value);
  std::int64_t initial_value_for(Var v, std::string_view key) const;

  ContextParams params_;
  TestLog log_;
  CheckedArena arena_;
  std::int64_t steps_left_ = 0;

  // Constraint-set reduction state (per run, per site).
  std::vector<std::uint8_t> site_seen_;
  std::vector<std::uint8_t> site_last_outcome_;

  // Per-run occurrence counters for automatic MPI marking keys.
  int rw_marks_ = 0;
  int sw_marks_ = 0;
  int comm_count_ = 0;

  // Per-operation instrumentation state (heavy mode).
  std::uint64_t op_digest_ = 0x243f6a8885a308d3ULL;
};

}  // namespace compi::rt
