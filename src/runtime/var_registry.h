// Registry of symbolic variables, persistent across testing iterations.
//
// Marked inputs (paper: developer-marked variables plus the automatically
// marked MPI-semantics variables of Table I) are identified by a stable
// string key; the registry interns keys to dense solver variable ids and
// remembers each variable's kind, declared domain, and input cap (§IV-A).
// The driver owns one registry for a whole testing campaign so that
// variable ids stay stable from one iteration to the next.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "solver/interval.h"
#include "solver/linear_expr.h"

namespace compi::rt {

using solver::Var;

/// What a symbolic variable denotes (paper Table I).
enum class VarKind : std::uint8_t {
  kRegular,    // developer-marked program input
  kRankWorld,  // rw: global rank in MPI_COMM_WORLD
  kRankLocal,  // rc: local rank in some other communicator
  kSizeWorld,  // sw: size of MPI_COMM_WORLD
};

[[nodiscard]] const char* to_string(VarKind k);

struct VarMeta {
  std::string key;
  VarKind kind = VarKind::kRegular;
  solver::Interval domain = solver::int32_domain();
  std::optional<std::int64_t> cap;  // input capping upper bound, if any
  int comm_index = -1;              // for kRankLocal: creation order index
};

/// Thread-safe: during one execution every rank (thread) interns the same
/// SPMD marking sequence concurrently.
class VarRegistry {
 public:
  /// Interns `key`, creating the variable on first use.  Later calls ignore
  /// the metadata arguments (first marking wins), matching the one-time
  /// nature of instrumentation-site attributes.
  Var intern(std::string_view key, VarKind kind,
             solver::Interval domain = solver::int32_domain(),
             std::optional<std::int64_t> cap = std::nullopt,
             int comm_index = -1);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] VarMeta meta(Var v) const;
  [[nodiscard]] std::vector<VarMeta> all() const;

  /// Effective solver domain of `v`: declared domain intersected with the
  /// cap constraint `v <= cap` when present.
  [[nodiscard]] solver::Interval effective_domain(Var v) const;

  /// All variables of a given kind.
  [[nodiscard]] std::vector<Var> of_kind(VarKind k) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Var> by_key_;
  std::vector<VarMeta> metas_;
};

}  // namespace compi::rt
