#include "runtime/checked_alloc.h"

#include <sstream>

namespace compi::rt {

CheckedArena::Handle CheckedArena::alloc(std::size_t bytes, std::string label) {
  blocks_.push_back({bytes, false, std::move(label)});
  return blocks_.size() - 1;
}

void CheckedArena::check_access(Handle h, std::size_t index,
                                std::size_t elem_size) const {
  if (h >= blocks_.size()) {
    throw SimulatedSegfault("access to unknown allocation");
  }
  const Block& b = blocks_[h];
  if (b.freed) {
    throw SimulatedSegfault("use-after-free of block '" + b.label + "'");
  }
  if ((index + 1) * elem_size > b.bytes) {
    std::ostringstream os;
    os << "out-of-bounds access to block '" << b.label << "': element "
       << index << " of size " << elem_size << " exceeds allocation of "
       << b.bytes << " bytes";
    throw SimulatedSegfault(os.str());
  }
}

void CheckedArena::free(Handle h) {
  if (h >= blocks_.size() || blocks_[h].freed) {
    throw SimulatedSegfault("invalid or double free");
  }
  blocks_[h].freed = true;
}

std::size_t CheckedArena::bytes_of(Handle h) const {
  return h < blocks_.size() ? blocks_[h].bytes : 0;
}

std::size_t CheckedArena::live_blocks() const {
  std::size_t n = 0;
  for (const Block& b : blocks_) n += b.freed ? 0 : 1;
  return n;
}

}  // namespace compi::rt
