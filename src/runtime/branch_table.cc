#include "runtime/branch_table.h"

#include <algorithm>
#include <cassert>

namespace compi::rt {

SiteId BranchTable::add_site(std::string_view function, std::string_view name) {
  assert(!finalized_ && "add_site after finalize()");
  const SiteId id = static_cast<SiteId>(sites_.size());
  sites_.push_back({std::string(name), std::string(function)});
  edges_.emplace_back();

  auto it = std::find(functions_.begin(), functions_.end(), function);
  if (it == functions_.end()) {
    site_function_.push_back(functions_.size());
    functions_.emplace_back(function);
  } else {
    site_function_.push_back(
        static_cast<std::size_t>(it - functions_.begin()));
  }
  return id;
}

void BranchTable::add_edge(SiteId from, SiteId to) {
  auto& succ = edges_[from];
  if (std::find(succ.begin(), succ.end(), to) == succ.end()) {
    succ.push_back(to);
  }
}

void BranchTable::finalize() {
  if (finalized_) return;
  // Fallthrough edges: consecutive sites of the same function.
  for (std::size_t i = 0; i + 1 < sites_.size(); ++i) {
    if (site_function_[i] == site_function_[i + 1]) {
      add_edge(static_cast<SiteId>(i), static_cast<SiteId>(i + 1));
    }
  }
  finalized_ = true;
}

std::size_t BranchTable::sites_in_function(std::string_view function) const {
  return static_cast<std::size_t>(
      std::count_if(sites_.begin(), sites_.end(), [&](const BranchSite& s) {
        return s.function == function;
      }));
}

}  // namespace compi::rt
