#include "runtime/test_log.h"

#include <numeric>
#include <sstream>

namespace compi::rt {

std::size_t CoverageBitmap::count() const {
  return static_cast<std::size_t>(
      std::accumulate(bits_.begin(), bits_.end(), std::size_t{0}));
}

void CoverageBitmap::merge(const CoverageBitmap& other) {
  if (other.bits_.size() > bits_.size()) bits_.resize(other.bits_.size(), 0);
  for (std::size_t i = 0; i < other.bits_.size(); ++i) {
    bits_[i] |= other.bits_[i];
  }
}

std::vector<sym::BranchId> CoverageBitmap::covered_ids() const {
  std::vector<sym::BranchId> out;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i]) out.push_back(static_cast<sym::BranchId>(i));
  }
  return out;
}

std::string TestLog::serialize() const {
  std::ostringstream os;
  os << "rank " << rank << " nprocs " << nprocs << " mode "
     << (heavy ? "heavy" : "light") << " outcome "
     << rt::to_string(outcome) << '\n';
  os << "covered";
  for (sym::BranchId b : covered.covered_ids()) os << ' ' << b;
  os << '\n';
  if (!heavy) return os.str();

  os << "op_count " << op_count << '\n';
  os << "inputs";
  for (const auto& [v, value] : inputs_used) os << ' ' << v << '=' << value;
  os << '\n';
  os << "comm_sizes";
  for (std::int64_t s : comm_sizes) os << ' ' << s;
  os << '\n';
  for (std::size_t c = 0; c < rank_mapping.size(); ++c) {
    os << "mapping " << c << ':';
    for (int g : rank_mapping[c]) os << ' ' << g;
    os << '\n';
  }
  os << "path " << path.size() << '\n';
  for (const sym::PathEntry& e : path.entries()) {
    os << e.site << (e.taken ? 'T' : 'F') << ' ' << e.constraint.to_string()
       << '\n';
  }
  os << "trace " << branch_trace.size() << '\n';
  for (std::size_t i = 0; i < branch_trace.size(); ++i) {
    os << branch_trace[i] << ((i + 1) % 16 == 0 ? '\n' : ' ');
  }
  os << '\n';
  return os.str();
}

}  // namespace compi::rt
