// Process-global coverage sink: the crash-surviving half of coverage.
//
// The paper's tool reads per-process log files that survive the process —
// a segfaulting target still leaves the coverage it reached on disk.  In
// this reproduction coverage normally lives inside each rank's
// RuntimeContext, which dies with the process; the sandbox supervisor
// therefore maps a byte-per-branch region MAP_SHARED before fork() and
// installs it here in the child, so every covered branch is mirrored into
// memory the parent can still read after the child is killed by a real
// signal or the hang watchdog.
//
// Cost discipline: without an installed sink (the default, and always in
// the parent) the hot-path hook is one relaxed load and a branch.  Marks
// are racy single-byte stores of 1 from any rank thread — benign, and made
// formally so with std::atomic_ref.
#pragma once

#include <atomic>
#include <cstddef>

namespace compi::rt {

namespace sink_detail {
inline std::atomic<unsigned char*> g_bytes{nullptr};
inline std::atomic<std::size_t> g_size{0};
}  // namespace sink_detail

/// Installs `bytes` (already zeroed, `size` = number of branch ids) as the
/// process-wide coverage mirror.  Not thread-safe against running targets:
/// install before launching, clear after.
inline void install_coverage_sink(unsigned char* bytes, std::size_t size) {
  sink_detail::g_size.store(size, std::memory_order_relaxed);
  sink_detail::g_bytes.store(bytes, std::memory_order_release);
}

inline void clear_coverage_sink() {
  sink_detail::g_bytes.store(nullptr, std::memory_order_release);
  sink_detail::g_size.store(0, std::memory_order_relaxed);
}

[[nodiscard]] inline bool coverage_sink_installed() {
  return sink_detail::g_bytes.load(std::memory_order_acquire) != nullptr;
}

/// Mirrors branch id `id` into the installed sink; no-op without one.
inline void coverage_sink_mark(std::size_t id) {
  unsigned char* bytes =
      sink_detail::g_bytes.load(std::memory_order_acquire);
  if (bytes == nullptr) return;
  if (id < sink_detail::g_size.load(std::memory_order_relaxed)) {
    std::atomic_ref<unsigned char>(bytes[id]).store(
        1, std::memory_order_relaxed);
  }
}

}  // namespace compi::rt
