// Process-global coverage sink: the crash-surviving half of coverage.
//
// The paper's tool reads per-process log files that survive the process —
// a segfaulting target still leaves the coverage it reached on disk.  In
// this reproduction coverage normally lives inside each rank's
// RuntimeContext, which dies with the process; the sandbox supervisor
// therefore maps a byte-per-branch region MAP_SHARED before fork() and
// installs it here in the child, so every covered branch is mirrored into
// memory the parent can still read after the child is killed by a real
// signal or the hang watchdog.
//
// Cost discipline: without an installed sink (the default, and always in
// the parent) the hot-path hook is one relaxed load and a branch.  Marks
// are racy single-byte stores from any rank thread — benign, and made
// formally so with std::atomic_ref.
//
// Each mark stamps the marking rank (rank + 1, saturated at
// kSinkRankSaturated) instead of a bare 1, first-write-wins, so the
// supervisor can attribute harvested coverage to the rank that actually
// executed the branch even when the child died before delivering its
// per-rank logs.  Concurrent first marks race; either rank's stamp is a
// true "this rank covered it" statement, so the race is harmless.
#pragma once

#include <atomic>
#include <cstddef>

namespace compi::rt {

namespace sink_detail {
inline std::atomic<unsigned char*> g_bytes{nullptr};
inline std::atomic<std::size_t> g_size{0};
}  // namespace sink_detail

/// Installs `bytes` (already zeroed, `size` = number of branch ids) as the
/// process-wide coverage mirror.  Not thread-safe against running targets:
/// install before launching, clear after.
inline void install_coverage_sink(unsigned char* bytes, std::size_t size) {
  sink_detail::g_size.store(size, std::memory_order_relaxed);
  sink_detail::g_bytes.store(bytes, std::memory_order_release);
}

inline void clear_coverage_sink() {
  sink_detail::g_bytes.store(nullptr, std::memory_order_release);
  sink_detail::g_size.store(0, std::memory_order_relaxed);
}

[[nodiscard]] inline bool coverage_sink_installed() {
  return sink_detail::g_bytes.load(std::memory_order_acquire) != nullptr;
}

/// Rank stamps above this value are clamped: a harvested byte of
/// kSinkRankSaturated means "covered by some rank >= 253".
inline constexpr unsigned char kSinkRankSaturated = 254;

/// Decodes a harvested sink byte back to the stamping rank (-1 when the
/// byte is clear).  A saturated stamp decodes to kSinkRankSaturated - 1;
/// callers treat out-of-world ranks as unattributable.
[[nodiscard]] inline int coverage_sink_rank(unsigned char byte) {
  return static_cast<int>(byte) - 1;
}

/// Mirrors branch id `id` into the installed sink, stamped with the
/// marking rank; no-op without one.  First write wins, so the stamp names
/// the first rank that covered the branch in this run.
inline void coverage_sink_mark(std::size_t id, int rank) {
  unsigned char* bytes =
      sink_detail::g_bytes.load(std::memory_order_acquire);
  if (bytes == nullptr) return;
  if (id < sink_detail::g_size.load(std::memory_order_relaxed)) {
    const unsigned char stamp =
        rank >= 0 && rank < kSinkRankSaturated - 1
            ? static_cast<unsigned char>(rank + 1)
            : kSinkRankSaturated;
    std::atomic_ref<unsigned char> cell(bytes[id]);
    if (cell.load(std::memory_order_relaxed) == 0) {
      cell.store(stamp, std::memory_order_relaxed);
    }
  }
}

}  // namespace compi::rt
