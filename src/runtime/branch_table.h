// Static branch-site tables: the analog of the instrumenter's output.
//
// CIL-based instrumentation (paper §V) assigns every conditional statement a
// unique static id and emits a `branches` file listing them, grouped by
// function, plus enough control-flow information for the CFG search
// strategy.  Here each target ships a BranchTable built once at static-init
// time from an X-macro site list; target code refers to sites by enum id.
//
// Site s contributes two branches: sF (id 2s) and sT (id 2s+1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "symbolic/path.h"

namespace compi::rt {

using sym::BranchId;
using sym::SiteId;

/// One conditional site of the target program.
struct BranchSite {
  std::string name;      // stable human-readable label
  std::string function;  // enclosing function (for reachable-branch counts)
};

/// The static description of a target program's branch space.
class BranchTable {
 public:
  /// Appends a site; returns its id.  Sites of the same function should be
  /// appended consecutively in program order (the builder adds fallthrough
  /// CFG edges between consecutive sites of a function).
  SiteId add_site(std::string_view function, std::string_view name);

  /// Adds an extra CFG edge (e.g. call or backward jump) from one site to
  /// another, used by the CFG-directed search strategy.
  void add_edge(SiteId from, SiteId to);

  /// Call after all sites are added: materializes fallthrough edges.
  void finalize();

  [[nodiscard]] std::size_t num_sites() const { return sites_.size(); }
  [[nodiscard]] std::size_t num_branches() const { return sites_.size() * 2; }
  [[nodiscard]] const BranchSite& site(SiteId id) const { return sites_[id]; }
  [[nodiscard]] const std::vector<SiteId>& successors(SiteId id) const {
    return edges_[id];
  }

  /// Distinct function names in first-appearance order.
  [[nodiscard]] const std::vector<std::string>& functions() const {
    return functions_;
  }
  /// Number of sites belonging to `function`.
  [[nodiscard]] std::size_t sites_in_function(std::string_view function) const;
  /// Index into functions() for a site.
  [[nodiscard]] std::size_t function_index(SiteId id) const {
    return site_function_[id];
  }

 private:
  std::vector<BranchSite> sites_;
  std::vector<std::vector<SiteId>> edges_;
  std::vector<std::string> functions_;
  std::vector<std::size_t> site_function_;
  bool finalized_ = false;
};

}  // namespace compi::rt
