#include "compi/random_tester.h"

#include <algorithm>
#include <chrono>
#include <random>

#include "minimpi/launcher.h"

namespace compi {

RandomTester::RandomTester(const TargetInfo& target, CampaignOptions options)
    : target_(target), options_(std::move(options)) {}

CampaignResult RandomTester::run() {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  CampaignResult result;
  rt::VarRegistry registry;
  CoverageTracker coverage(*target_.table);
  std::mt19937_64 rng(options_.seed);

  for (int iter = 0; iter < options_.iterations; ++iter) {
    if (options_.time_budget_seconds > 0 &&
        elapsed() >= options_.time_budget_seconds) {
      break;
    }

    // Random values for every known marked variable, drawn within the
    // input-capping limits (paper §VI-E: "under the limits set by the
    // input capping").  The first iteration has an empty registry; the
    // runtime then draws per-key deterministic random values itself.
    solver::Assignment inputs;
    const auto metas = registry.all();
    for (std::size_t i = 0; i < metas.size(); ++i) {
      if (metas[i].kind != rt::VarKind::kRegular) continue;
      const auto v = static_cast<solver::Var>(i);
      const solver::Interval dom = registry.effective_domain(v);
      const std::int64_t lo = std::max<std::int64_t>(dom.lo, -10'000);
      const std::int64_t hi = std::min<std::int64_t>(dom.hi, 10'000);
      if (lo > hi) continue;
      std::uniform_int_distribution<std::int64_t> dist(lo, hi);
      inputs[v] = dist(rng);
    }

    std::uniform_int_distribution<int> nprocs_dist(1, options_.max_procs);
    const int nprocs = nprocs_dist(rng);

    minimpi::LaunchSpec spec;
    spec.program = target_.program;
    spec.nprocs = nprocs;
    spec.focus = -1;  // all-light: random testing does no symbolic work
    spec.registry = &registry;
    spec.inputs = &inputs;
    spec.rng_seed = rng();
    spec.step_budget = options_.step_budget;
    spec.timeout = options_.test_timeout;

    const minimpi::RunResult run = minimpi::launch(spec, *target_.table);
    coverage.merge(run.merged_coverage());

    IterationRecord rec;
    rec.iteration = iter;
    rec.nprocs = nprocs;
    rec.focus = -1;
    rec.outcome = run.job_outcome();
    rec.covered_branches = coverage.covered_branches();
    rec.exec_seconds = run.wall_seconds;
    rec.restart = true;
    result.iterations.push_back(rec);

    if (rt::is_fault(rec.outcome)) {
      const std::string msg = run.job_message();
      auto known = std::find_if(
          result.bugs.begin(), result.bugs.end(),
          [&](const BugRecord& b) { return b.message == msg; });
      if (known == result.bugs.end()) {
        BugRecord bug;
        bug.first_iteration = iter;
        bug.occurrences = 1;
        bug.outcome = rec.outcome;
        bug.message = msg;
        bug.inputs = inputs;
        bug.nprocs = nprocs;
        result.bugs.push_back(std::move(bug));
      } else {
        ++known->occurrences;
      }
    }
  }

  result.covered_branches = coverage.covered_branches();
  result.reachable_branches = coverage.reachable_branches();
  result.total_branches = coverage.total_branches();
  result.coverage_rate = coverage.rate();
  result.function_coverage = coverage.per_function();
  result.total_seconds = elapsed();
  return result;
}

}  // namespace compi
