// The wildcard-matching interleaving frontier (--explore-matchings).
//
// A match-scheduled run returns its wildcard decision trace: for every
// ANY_SOURCE receive, which sender was matched and which senders were
// feasible at that moment.  Each decision with >1 feasible senders forks
// alternatives — replayable tests whose match plan pins the decisions
// BEFORE the fork point to their observed choices and forces the forked
// decision to the alternative sender, leaving the suffix free for the
// scheduler's deterministic default.  That is the persistent-set shape of
// dynamic partial-order reduction: one representative per matching prefix.
//
// The frontier deduplicates by decision-vector hash (the sleep set): a
// prefix reachable from two different parent runs is enqueued once.  The
// cap (--max-interleavings) bounds the combinatorial blow-up; capped
// alternatives are counted, never silently dropped.
//
// An interleaving replays its parent run's inputs and test shape.  It is a
// frontier item like a negated constraint — it consumes a campaign
// iteration, lands in iterations.csv/journal/ledger with its id — but it
// does not drive the symbolic search: the strategy neither observes its
// path nor solves from it.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "minimpi/types.h"
#include "solver/solver.h"

namespace compi {

/// One not-yet-run reordered matching: a pinned decision prefix plus the
/// inputs and test shape of the run it forked from.
struct PendingInterleaving {
  std::int64_t id = 0;
  minimpi::MatchPlan plan;
  solver::Assignment inputs;
  int nprocs = 1;
  int focus = 0;
};

/// Pending interleavings plus the sleep set of decision-prefix hashes
/// already enqueued (shared across workers under the campaign mutex).
struct InterleavingFrontier {
  std::deque<PendingInterleaving> queue;
  std::unordered_set<std::uint64_t> seen;
  std::int64_t next_id = 1;
  std::size_t enqueued = 0;
  std::size_t run_count = 0;
  std::size_t pruned = 0;  // dropped by the sleep-set dedup
  std::size_t capped = 0;  // dropped by --max-interleavings
};

/// FNV-1a over the (rank, seq, src) triples: the identity of a prescribed
/// decision vector, independent of the run that proposed it.
[[nodiscard]] inline std::uint64_t plan_hash(const minimpi::MatchPlan& plan) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::int64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (static_cast<std::uint64_t>(v) >> (i * 8)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  for (const minimpi::MatchDecision& d : plan) {
    mix(d.rank);
    mix(d.seq);
    mix(d.src);
  }
  return h;
}

/// Forks every alternative sender of every multi-feasible decision in
/// `trace` into the frontier.  Returns the number actually enqueued (after
/// sleep-set pruning and the cap).
inline std::size_t enqueue_alternatives(
    InterleavingFrontier& frontier,
    const std::vector<minimpi::MatchRecord>& trace,
    const solver::Assignment& inputs, int nprocs, int focus,
    int max_interleavings) {
  std::size_t added = 0;
  minimpi::MatchPlan prefix;
  prefix.reserve(trace.size());
  for (const minimpi::MatchRecord& rec : trace) {
    for (const int alt : rec.feasible) {
      if (alt == rec.chosen_src) continue;
      if (max_interleavings > 0 &&
          frontier.enqueued >=
              static_cast<std::size_t>(max_interleavings)) {
        ++frontier.capped;
        continue;
      }
      minimpi::MatchPlan plan = prefix;
      plan.push_back({rec.rank, rec.seq, alt});
      if (!frontier.seen.insert(plan_hash(plan)).second) {
        ++frontier.pruned;
        continue;
      }
      PendingInterleaving p;
      p.id = frontier.next_id++;
      p.plan = std::move(plan);
      p.inputs = inputs;
      p.nprocs = nprocs;
      p.focus = focus;
      frontier.queue.push_back(std::move(p));
      ++frontier.enqueued;
      ++added;
    }
    prefix.push_back({rec.rank, rec.seq, rec.chosen_src});
  }
  return added;
}

}  // namespace compi
