// Campaign checkpoints: crash-resilient testing sessions.
//
// A long campaign must survive being killed: SessionWriter periodically
// snapshots the full driver state — registry, RNG-bearing search-strategy
// state, coverage bitmap, accumulated iteration/bug records, and the
// already-planned next test — into <dir>/checkpoint.txt, and Campaign::run
// can resume from it, continuing deterministically where the killed
// process stopped (same coverage, bug list, and iteration tail as an
// uninterrupted run).
//
// The format is line-oriented text.  Strings are escaped (\n, \r, \\) so
// multi-line fault messages round-trip; doubles use shortest-round-trip
// formatting so restored timings are bit-exact.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "compi/driver.h"
#include "compi/interleaving.h"
#include "runtime/var_registry.h"
#include "solver/predicate.h"
#include "symbolic/path.h"
#include "symbolic/serialize.h"

namespace compi::ckpt {

// ---- low-level serialization helpers (shared with session files) ----
// The implementations live in symbolic/serialize.h so lower layers (the
// sandbox wire format) can share the exact same dialect; these aliases
// keep the historical ckpt:: spellings working.
using serial::escape;
using serial::format_double;
using serial::read_path;
using serial::read_predicate;
using serial::unescape;
using serial::write_path;
using serial::write_predicate;

// ---- shared line-oriented parsing helpers ----
// Used by the checkpoint itself and by the coordinator wire protocol
// (coord_protocol.cc), which speaks the same dialect so bug records and
// opaque blobs round-trip identically over TCP and through snapshots.

/// Expects the next whitespace-delimited token to equal `tag`; poisons the
/// stream otherwise.
bool expect(std::istream& is, std::string_view tag);
/// Reads the rest of the line (after one separating space) as a string.
std::string read_tail(std::istream& is);
/// Embeds an opaque multi-line blob, prefixed with its line count.
void write_blob(std::ostream& os, std::string_view tag,
                const std::string& blob);
bool read_blob(std::istream& is, std::string_view tag, std::string& blob);
/// One bug record in the checkpoint dialect (bug/msg/inputs/named/decisions
/// lines).  The checkpoint's bug list and the coordinator's delta frames
/// are both sequences of these.
void write_bug(std::ostream& os, const BugRecord& b);
[[nodiscard]] bool read_bug(std::istream& is, BugRecord& b);

// ---- the campaign snapshot ----

/// One parallel worker's private loop state: everything a worker needs to
/// continue its in-flight search line after a kill — the already-planned
/// next test, backtracking flags, and the worker's own strategy snapshot
/// (each worker runs an independent strategy instance over the shared
/// coverage).  The serial driver has exactly this state too, stored in the
/// top-level CampaignCheckpoint fields; cursors exist only for workers > 1.
struct WorkerCursor {
  solver::Assignment plan_inputs;
  int plan_nprocs = 1;
  int plan_focus = 0;
  bool next_is_restart = false;
  std::optional<std::size_t> pending_depth;
  int failures = 0;
  int consecutive_replans = 0;
  bool bounded_phase = false;
  std::string strategy_name;
  std::string strategy_state;
};

/// One outstanding coordinator lease: quota not yet reported back by the
/// holding shard.  Deadlines are NOT persisted — a coordinator restart
/// reclaims every restored lease immediately (journal `lease_reclaimed`),
/// which is safe because re-execution is idempotent.
struct CoordLease {
  std::uint64_t id = 0;
  /// Shard key ("name@token", see coord_protocol.h).
  std::string shard;
  /// Iterations granted but not yet reported.
  int remaining = 0;
};

/// Per-shard merge cursor: the cumulative iteration count already folded
/// into the coordinator's completed total (deltas carry cumulative counts,
/// so replays merge to the same state), and how far down the coordinator's
/// covered log the shard has been synced.
struct CoordShardCursor {
  std::string shard;
  std::int64_t iterations_completed = 0;
  std::size_t covered_cursor = 0;
};

struct CampaignCheckpoint {
  // v8: a `sandbox2` line follows the v3 `sandbox` line with the
  // fork-server engine counters — warm spawns, cold-fork fallbacks, server
  // restarts, and batched in-process runs — so the overhead accounting
  // survives a kill + resume.  (v7 added the optional coordinator section
  // (`coord 1`) — global budget/completed counters, outstanding leases,
  // and per-shard merge cursors; v6 added interleaving ids/decision
  // vectors and the interleaving frontier; v5 added worker ordinals and
  // per-worker cursors; v4 embedded the coverage-attribution ledger
  // snapshot; v3 added the sandbox accounting line; v2 added solver_nodes
  // and retries to iter lines.)  Older snapshots are rejected and the
  // campaign falls back to a fresh start, by design.
  static constexpr int kVersion = 8;

  /// Campaign seed the snapshot was taken under (resume sanity check).
  std::uint64_t seed = 0;
  /// First iteration the resumed campaign should execute.
  int next_iteration = 0;

  // Driver loop state.
  solver::Assignment plan_inputs;
  int plan_nprocs = 1;
  int plan_focus = 0;
  bool next_is_restart = false;
  std::optional<std::size_t> pending_depth;
  int failures = 0;
  int consecutive_replans = 0;
  /// Two-phase search already switched to BoundedDFS.
  bool bounded_phase = false;

  // Accumulated results.
  std::size_t restarts = 0;
  std::size_t max_constraint_set = 0;
  std::size_t depth_bound_used = 0;
  std::size_t transient_retries = 0;
  std::size_t focus_replans = 0;
  // Sandbox (--isolate) accounting, preserved so hang/crash totals survive
  // a kill + resume.
  std::size_t sandbox_runs = 0;
  std::size_t sandbox_signal_kills = 0;
  std::size_t sandbox_hang_kills = 0;
  std::size_t sandbox_harvest_bytes = 0;
  // Fork-server engine accounting (the v8 `sandbox2` line).
  std::size_t warm_spawns = 0;
  std::size_t cold_forks = 0;
  std::size_t fork_server_restarts = 0;
  std::size_t batch_runs = 0;
  std::vector<IterationRecord> iterations;
  std::vector<BugRecord> bugs;
  std::vector<sym::BranchId> covered;
  /// Variable metadata in id order (re-interned verbatim on resume so
  /// solver variable ids stay stable across the kill).
  std::vector<rt::VarMeta> registry;
  /// Fault signatures already classified as genuine hangs (not retried).
  std::vector<std::string> known_hang_signatures;

  // Interleaving frontier (--explore-matchings): not-yet-replayed
  // reordered matchings plus the sleep set, so exploration continues
  // exactly where the killed campaign stopped.
  std::vector<PendingInterleaving> pending_interleavings;
  std::vector<std::uint64_t> interleaving_seen;  // sorted on write
  std::int64_t next_interleaving_id = 1;
  std::size_t interleavings_enqueued = 0;
  std::size_t interleavings_run = 0;
  std::size_t interleavings_pruned = 0;
  std::size_t interleavings_capped = 0;

  /// Search-strategy snapshot: strategy name + its opaque state blob
  /// (written by SearchStrategy::save_state).
  std::string strategy_name;
  std::string strategy_state;

  /// Coverage-attribution ledger snapshot (CoverageLedger::write), embedded
  /// as an opaque blob so attribution survives kill + --resume.  Empty when
  /// the producing campaign predates the ledger (never the case for v4+
  /// writers, but read() tolerates an empty blob).
  std::string ledger_state;

  /// Worker count the snapshot was taken under.  Serial campaigns write 1
  /// and no cursors; parallel campaigns write one cursor per worker.  A
  /// resume whose --workers disagrees with the snapshot (or whose cursor
  /// count is inconsistent) starts fresh rather than guessing how to remap
  /// in-flight search lines.
  int workers = 1;
  std::vector<WorkerCursor> worker_cursors;

  /// Coordinator section (v7): present only for `compi coordinate`
  /// snapshots.  Campaign-engine snapshots write `coord 0` and none of the
  /// fields, keeping standalone checkpoints byte-compatible in shape.
  bool is_coordinator = false;
  std::int64_t coord_budget = 0;
  std::int64_t coord_completed = 0;
  std::uint64_t coord_next_lease_id = 1;
  std::vector<CoordLease> coord_leases;
  std::vector<CoordShardCursor> coord_shards;

  void write(std::ostream& os) const;
  /// nullopt on version mismatch or any parse error (the caller then
  /// starts a fresh campaign instead of resuming garbage).
  [[nodiscard]] static std::optional<CampaignCheckpoint> read(
      std::istream& is);
};

}  // namespace compi::ckpt
