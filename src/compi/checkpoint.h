// Campaign checkpoints: crash-resilient testing sessions.
//
// A long campaign must survive being killed: SessionWriter periodically
// snapshots the full driver state — registry, RNG-bearing search-strategy
// state, coverage bitmap, accumulated iteration/bug records, and the
// already-planned next test — into <dir>/checkpoint.txt, and Campaign::run
// can resume from it, continuing deterministically where the killed
// process stopped (same coverage, bug list, and iteration tail as an
// uninterrupted run).
//
// The format is line-oriented text.  Strings are escaped (\n, \r, \\) so
// multi-line fault messages round-trip; doubles use shortest-round-trip
// formatting so restored timings are bit-exact.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "compi/driver.h"
#include "runtime/var_registry.h"
#include "solver/predicate.h"
#include "symbolic/path.h"

namespace compi::ckpt {

// ---- low-level serialization helpers (shared with session files) ----

/// Escapes backslashes and line breaks so any string fits on one line.
[[nodiscard]] std::string escape(std::string_view s);
[[nodiscard]] std::string unescape(std::string_view s);

/// Shortest string that parses back to exactly `v`.
[[nodiscard]] std::string format_double(double v);

/// One-line predicate / multi-line path round-trips (used both by the
/// checkpoint file and by search-strategy state serialization).
void write_predicate(std::ostream& os, const solver::Predicate& p);
[[nodiscard]] bool read_predicate(std::istream& is, solver::Predicate& p);
void write_path(std::ostream& os, const sym::Path& path);
[[nodiscard]] bool read_path(std::istream& is, sym::Path& path);

// ---- the campaign snapshot ----

struct CampaignCheckpoint {
  // v2: iter lines carry solver_nodes and retries.  Older snapshots are
  // rejected (the campaign falls back to a fresh start, by design).
  static constexpr int kVersion = 2;

  /// Campaign seed the snapshot was taken under (resume sanity check).
  std::uint64_t seed = 0;
  /// First iteration the resumed campaign should execute.
  int next_iteration = 0;

  // Driver loop state.
  solver::Assignment plan_inputs;
  int plan_nprocs = 1;
  int plan_focus = 0;
  bool next_is_restart = false;
  std::optional<std::size_t> pending_depth;
  int failures = 0;
  int consecutive_replans = 0;
  /// Two-phase search already switched to BoundedDFS.
  bool bounded_phase = false;

  // Accumulated results.
  std::size_t restarts = 0;
  std::size_t max_constraint_set = 0;
  std::size_t depth_bound_used = 0;
  std::size_t transient_retries = 0;
  std::size_t focus_replans = 0;
  std::vector<IterationRecord> iterations;
  std::vector<BugRecord> bugs;
  std::vector<sym::BranchId> covered;
  /// Variable metadata in id order (re-interned verbatim on resume so
  /// solver variable ids stay stable across the kill).
  std::vector<rt::VarMeta> registry;
  /// Fault signatures already classified as genuine hangs (not retried).
  std::vector<std::string> known_hang_signatures;

  /// Search-strategy snapshot: strategy name + its opaque state blob
  /// (written by SearchStrategy::save_state).
  std::string strategy_name;
  std::string strategy_state;

  void write(std::ostream& os) const;
  /// nullopt on version mismatch or any parse error (the caller then
  /// starts a fresh campaign instead of resuming garbage).
  [[nodiscard]] static std::optional<CampaignCheckpoint> read(
      std::istream& is);
};

}  // namespace compi::ckpt
