// Helpers shared by the serial driver loop (driver.cc) and the parallel
// campaign engine (parallel.cc).  Internal to the driver — not part of the
// compi:: public surface.
#pragma once

#include <cstdint>
#include <string>

namespace compi::detail {

/// splitmix64-style seed derivation: decorrelates per-iteration RNG streams
/// (and per-worker strategy seeds) from the single campaign seed.
[[nodiscard]] inline std::uint64_t mix_seed(std::uint64_t seed,
                                            std::uint64_t salt) {
  std::uint64_t x = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Two failures are the same bug when their messages differ only in
/// concrete quantities (indices, sizes vary with the triggering inputs).
[[nodiscard]] inline std::string bug_signature(const std::string& message) {
  std::string out;
  out.reserve(message.size());
  for (char c : message) {
    if (c < '0' || c > '9') out.push_back(c);
  }
  return out;
}

}  // namespace compi::detail
