#include "compi/session.h"

#include <charconv>
#include <functional>
#include <fstream>
#include <sstream>

#include "obs/artifacts.h"

namespace compi {

namespace fs = std::filesystem;

namespace {

std::int64_t to_int(const std::string& s) {
  std::int64_t v = 0;
  (void)std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

/// Extracts `key=value` tokens from a whitespace-separated tail.
void parse_kv(const std::string& text,
              const std::function<void(const std::string&,
                                       const std::string&)>& sink) {
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) continue;
    sink(token.substr(0, eq), token.substr(eq + 1));
  }
}

}  // namespace

std::vector<LoggedBug> read_bugs(const fs::path& bugs_file) {
  std::vector<LoggedBug> out;
  std::ifstream in(bugs_file);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '[') {
      // "[kind] message" (message \-escaped so multi-line faults fit)
      LoggedBug bug;
      const auto close = line.find(']');
      if (close == std::string::npos) continue;
      const auto outcome =
          rt::outcome_from_string(line.substr(1, close - 1));
      if (!outcome) continue;
      bug.outcome = *outcome;
      bug.message =
          ckpt::unescape(line.substr(std::min(close + 2, line.size())));
      out.push_back(std::move(bug));
    } else if (!out.empty() && line.find("first_iteration=") !=
                                   std::string::npos) {
      parse_kv(line, [&](const std::string& k, const std::string& v) {
        if (k == "first_iteration") out.back().first_iteration =
            static_cast<int>(to_int(v));
        else if (k == "occurrences") out.back().occurrences =
            static_cast<int>(to_int(v));
        else if (k == "nprocs") out.back().nprocs =
            static_cast<int>(to_int(v));
        else if (k == "focus") out.back().focus = static_cast<int>(to_int(v));
        else if (k == "flaky") out.back().flaky = to_int(v) != 0;
      });
    } else if (!out.empty() && line.find("inputs:") != std::string::npos) {
      parse_kv(line.substr(line.find("inputs:") + 7),
               [&](const std::string& k, const std::string& v) {
                 out.back().inputs[k] = to_int(v);
               });
    } else if (!out.empty() &&
               line.find("decisions:") != std::string::npos) {
      // "decisions: rank/seq->src ..." — the replayable decision vector.
      std::istringstream in(line.substr(line.find("decisions:") + 10));
      std::string token;
      while (in >> token) {
        const auto slash = token.find('/');
        const auto arrow = token.find("->");
        if (slash == std::string::npos || arrow == std::string::npos ||
            arrow < slash) {
          continue;
        }
        minimpi::MatchDecision d;
        d.rank = static_cast<int>(to_int(token.substr(0, slash)));
        d.seq = static_cast<int>(
            to_int(token.substr(slash + 1, arrow - slash - 1)));
        d.src = static_cast<int>(to_int(token.substr(arrow + 2)));
        out.back().decisions.push_back(d);
      }
    }
  }
  return out;
}

std::map<std::string, std::string> read_summary(const fs::path& summary_file) {
  std::map<std::string, std::string> out;
  std::ifstream in(summary_file);
  std::string key, value;
  while (in >> key >> value) out[key] = value;
  return out;
}

std::optional<ckpt::CampaignCheckpoint> read_checkpoint(const fs::path& dir) {
  const auto try_read =
      [](const fs::path& file) -> std::optional<ckpt::CampaignCheckpoint> {
    std::ifstream in(file);
    if (!in) return std::nullopt;
    return ckpt::CampaignCheckpoint::read(in);
  };
  if (auto c = try_read(dir / "checkpoint.txt")) return c;
  // Torn or truncated snapshot (the writer died mid-file, or the disk
  // filled): fall back to the previous complete snapshot kept as .bak, so
  // the session resumes from the last good checkpoint instead of starting
  // over.
  return try_read(dir / "checkpoint.txt.bak");
}

SessionWriter::SessionWriter(fs::path dir, int keep_rank_logs)
    : dir_(std::move(dir)), keep_rank_logs_(keep_rank_logs) {
  fs::create_directories(dir_);
}

void SessionWriter::write_iteration(int iteration,
                                    const minimpi::RunResult& run) {
  // Nothing to retain (keep_rank_logs = 0, past the retention window, or a
  // run with no rank logs): don't litter the session with empty iter dirs.
  if (keep_rank_logs_ >= 0 && iteration >= keep_rank_logs_) return;
  if (run.ranks.empty()) return;
  const fs::path iter_dir =
      dir_ / ("iter_" + std::to_string(iteration));
  fs::create_directories(iter_dir);
  for (std::size_t rank = 0; rank < run.ranks.size(); ++rank) {
    std::ofstream out(iter_dir / ("rank_" + std::to_string(rank) + ".log"));
    out << run.ranks[rank].log.serialize();
  }
}

namespace {

// `worker` and `interleaving` ride at the END of the row so positional
// readers of the older layouts (explain, external tooling) keep working.
constexpr const char* kCsvHeader =
    "iteration,nprocs,focus,outcome,constraint_set_size,"
    "covered_branches,exec_seconds,solve_seconds,restart,"
    "solver_nodes,retries,worker,interleaving\n";

void write_csv_row(std::ostream& csv, const IterationRecord& r) {
  csv << r.iteration << ',' << r.nprocs << ',' << r.focus << ','
      << rt::to_string(r.outcome) << ',' << r.constraint_set_size << ','
      << r.covered_branches << ',' << r.exec_seconds << ','
      << r.solve_seconds << ',' << (r.restart ? 1 : 0) << ','
      << r.solver_nodes << ',' << r.retries << ',' << r.worker << ','
      << r.interleaving << '\n';
}

}  // namespace

void SessionWriter::begin_iterations(
    const std::vector<IterationRecord>& restored) {
  csv_.open(dir_ / "iterations.csv", std::ios::trunc);
  csv_ << kCsvHeader;
  for (const IterationRecord& r : restored) write_csv_row(csv_, r);
  csv_.flush();
}

void SessionWriter::append_iteration(const IterationRecord& rec) {
  if (!csv_.is_open()) return;
  write_csv_row(csv_, rec);
  csv_.flush();
}

void SessionWriter::write_summary(const CampaignResult& result) {
  if (csv_.is_open()) csv_.close();
  {
    std::ofstream csv(dir_ / "iterations.csv");
    csv << kCsvHeader;
    for (const IterationRecord& r : result.iterations) {
      write_csv_row(csv, r);
    }
  }
  {
    std::ofstream bugs(dir_ / "bugs.txt");
    for (const BugRecord& bug : result.bugs) {
      bugs << '[' << rt::to_string(bug.outcome) << "] "
           << ckpt::escape(bug.message)
           << "\n  first_iteration=" << bug.first_iteration
           << " occurrences=" << bug.occurrences << " nprocs=" << bug.nprocs
           << " focus=" << bug.focus << " flaky=" << (bug.flaky ? 1 : 0)
           << "\n  inputs:";
      for (const auto& [name, value] : bug.named_inputs) {
        bugs << ' ' << name << '=' << value;
      }
      bugs << "\n";
      if (!bug.decisions.empty()) {
        bugs << "  decisions:";
        for (const minimpi::MatchDecision& d : bug.decisions) {
          bugs << ' ' << d.rank << '/' << d.seq << "->" << d.src;
        }
        bugs << "\n";
      }
    }
  }
  {
    std::ofstream summary(dir_ / "summary.txt");
    summary << "iterations " << result.iterations.size() << '\n'
            << "covered_branches " << result.covered_branches << '\n'
            << "reachable_branches " << result.reachable_branches << '\n'
            << "coverage_rate " << result.coverage_rate << '\n'
            << "max_constraint_set " << result.max_constraint_set << '\n'
            << "depth_bound_used " << result.depth_bound_used << '\n'
            << "restarts " << result.restarts << '\n'
            << "transient_retries " << result.transient_retries << '\n'
            << "focus_replans " << result.focus_replans << '\n'
            << "sandbox_runs " << result.sandbox_runs << '\n'
            << "sandbox_signal_kills " << result.sandbox_signal_kills << '\n'
            << "sandbox_hang_kills " << result.sandbox_hang_kills << '\n'
            << "sandbox_harvest_bytes " << result.sandbox_harvest_bytes
            << '\n'
            << "resumed " << (result.resumed ? 1 : 0) << '\n'
            << "bugs " << result.bugs.size() << '\n'
            << "interleavings_enqueued " << result.interleavings_enqueued
            << '\n'
            << "interleavings_run " << result.interleavings_run << '\n'
            << "interleavings_pruned " << result.interleavings_pruned << '\n'
            << "interleavings_capped " << result.interleavings_capped << '\n'
            << "deadlocks_found " << result.deadlocks_found << '\n'
            << "orphan_messages_found " << result.orphan_messages_found
            << '\n'
            << "total_seconds " << result.total_seconds << '\n';
  }
}

void SessionWriter::write_ledger(const CoverageLedger& ledger,
                                 const rt::BranchTable& table) {
  std::ofstream out(dir_ / "ledger.csv");
  ledger.write_csv(out, table);
}

void SessionWriter::write_coverage_timeline(
    const std::vector<IterationRecord>& iterations) {
  std::ofstream out(dir_ / "coverage_timeline.csv");
  out << "iteration,covered_branches,new_branches\n";
  std::size_t prev = 0;
  for (const IterationRecord& r : iterations) {
    if (r.covered_branches <= prev) continue;
    out << r.iteration << ',' << r.covered_branches << ','
        << (r.covered_branches - prev) << '\n';
    prev = r.covered_branches;
  }
}

void SessionWriter::write_checkpoint(
    const ckpt::CampaignCheckpoint& checkpoint) {
  const fs::path final_path = dir_ / "checkpoint.txt";
  const fs::path tmp = dir_ / "checkpoint.txt.tmp";
  bool written = false;
  {
    std::ofstream out(tmp);
    if (out.is_open()) {
      checkpoint.write(out);
      out.flush();
      written = out.good();
    }
  }
  // A failed or short tmp write (unwritable dir, disk full) must never
  // replace a complete snapshot with a torn one: report, drop the tmp,
  // keep the previous checkpoint (and its .bak) untouched.
  if (!written) {
    obs::note_artifact_write_error("checkpoint", final_path.string());
    std::error_code rm;
    fs::remove(tmp, rm);
    return;
  }
  // Demote the previous complete snapshot to .bak before the new one lands:
  // even if THIS write turns out torn (kill between the flush above and a
  // durable rename), read_checkpoint still finds a complete snapshot.
  std::error_code ec;
  fs::rename(final_path, dir_ / "checkpoint.txt.bak", ec);  // first write: ok
  fs::rename(tmp, final_path, ec);
  if (ec) obs::note_artifact_write_error("checkpoint", final_path.string());
}

}  // namespace compi
