// Distributed work intake for campaign engines (the shard side of the
// coordinator protocol, abstracted).
//
// A WorkSource decides whether the next iteration may run and absorbs the
// results of completed ones.  The campaign loops (driver.cc serial and
// parallel.cc workers) consult it when CampaignOptions::work_source is
// set; a null pointer (the default) leaves both engines byte-identical to
// their standalone behaviour — the same gating pattern as `serving` /
// `live_lock()`.
//
// The contract is built for idempotent re-execution: report() always
// carries the shard's FULL covered set, FULL bug list, and CUMULATIVE
// iteration count, so a delta replayed after a reconnect (or a lease
// reclaimed from a dead shard and re-granted elsewhere) merges to the same
// global state.  Coverage learned from other shards flows back through
// take_remote_coverage()/take_remote_interleavings(); merging it into the
// local CoverageTracker lets the existing strategy dedup and stale-drop
// machinery prune candidates the fleet already covered — that is how the
// frontier is partitioned without any per-candidate ownership protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "symbolic/path.h"

namespace compi {

struct BugRecord;

/// One end-of-iteration report.  Vectors are FULL local state, not
/// increments (see file comment); `ledger_blob` is evaluated lazily so the
/// transport only pays for a CoverageLedger::write when it actually
/// transmits.
struct WorkDelta {
  /// Cumulative local iterations completed (not an increment).
  std::int64_t iterations_completed = 0;
  /// Full local covered branch set.
  std::vector<sym::BranchId> covered;
  /// Full local interleaving sleep-set hashes (--explore-matchings).
  std::vector<std::uint64_t> interleaving_seen;
  /// Full local bug list.
  std::vector<BugRecord> bugs;
  /// Renders the full CoverageLedger snapshot; may be empty (no ledger
  /// upload).  Called at most once per transmission, on the caller's
  /// thread.
  std::function<std::string()> ledger_blob;
  /// The campaign is finalizing: flush everything now.
  bool final_report = false;

  // ---- telemetry piggyback (all cumulative since campaign start) ----
  /// Shard wall time so the coordinator can compute iters/sec without
  /// trusting cross-host clocks.
  std::int64_t elapsed_us = 0;
  std::int64_t frontier_depth = 0;         ///< pending negation candidates
  std::int64_t interleavings_pending = 0;  ///< unexplored match frontier
  std::int64_t solver_sat = 0;
  std::int64_t solver_unsat = 0;
  std::int64_t solver_budget = 0;          ///< budget-exhausted solves
  std::int64_t exec_us = 0;                ///< cumulative execution time
  std::int64_t solve_us = 0;               ///< cumulative solver time
};

class WorkSource {
 public:
  virtual ~WorkSource() = default;

  /// Permission to run one more iteration.  May block (waiting for a lease
  /// or backing off a reconnect); returns false when the global budget is
  /// exhausted — the engine then winds down exactly as if its local
  /// iteration budget ran out.  Thread-safe (parallel workers call
  /// concurrently).
  [[nodiscard]] virtual bool acquire() = 0;

  /// Absorbs one completed iteration's results (see WorkDelta).  The
  /// implementation decides when to actually transmit.  Thread-safe.
  virtual void report(const WorkDelta& delta) = 0;

  /// Drains branch ids covered remotely since the last call.  The engine
  /// merges them into its CoverageTracker before planning.  Thread-safe.
  [[nodiscard]] virtual std::vector<sym::BranchId> take_remote_coverage() = 0;

  /// Drains interleaving hashes seen remotely since the last call (merged
  /// into the local sleep set so shards do not replay each other's
  /// matchings).  Thread-safe.
  [[nodiscard]] virtual std::vector<std::uint64_t>
  take_remote_interleavings() = 0;
};

}  // namespace compi
