// The MPI-awareness of COMPI: semantics constraints, conflict resolution,
// and test setup (paper §III).
//
// Before each solve the framework appends the inherent MPI constraints of
// §III-B (all rw equal, all sw equal, rw < sw, rc_i < s_i, non-negativity,
// sw >= 1) plus the process-count cap.  After a SAT result it derives the
// next test's (nprocs, focus) and rewrites rank-denoting inputs to refer to
// one consistent process, using the solver's "most up-to-date value"
// property and the local->global rank mapping recorded at runtime (§III-C/D).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/test_log.h"
#include "runtime/var_registry.h"
#include "solver/solver.h"

namespace compi {

/// The launch-time parameters plus input values for the next test.
struct TestPlan {
  solver::Assignment inputs;
  int nprocs = 1;
  int focus = 0;
};

class Framework {
 public:
  /// `max_procs` is the input cap on the world size (paper §VI uses 16).
  /// `enabled=false` is the No_Fwk ablation: no MPI constraints are added
  /// and (nprocs, focus) never change.  `use_mapping=false` is the
  /// conflict-resolution ablation: a changed rc value is treated as a
  /// global rank directly instead of being translated through the
  /// Table II mapping — the naive interpretation §III-C corrects.
  Framework(const rt::VarRegistry& registry, int max_procs,
            bool enabled = true, bool use_mapping = true)
      : registry_(&registry),
        max_procs_(max_procs),
        enabled_(enabled),
        use_mapping_(use_mapping) {}

  /// The inherent MPI-semantics constraints (§III-B), generated from the
  /// focus's perspective.  `latest_log` supplies the concrete sizes s_i of
  /// non-default communicators observed at runtime.
  [[nodiscard]] std::vector<solver::Predicate> mpi_constraints(
      const rt::TestLog& latest_log) const;

  /// Solver domains for every registered variable (declared domain
  /// intersected with input caps, §IV-A).
  [[nodiscard]] solver::DomainMap domains() const;

  /// Turns a SAT solve result into the next test's plan: derives nprocs
  /// from sw, resolves the focus from the most up-to-date rank value
  /// (translating rc values through the Table II mapping), and rewrites all
  /// rank-denoting inputs consistently (§III-C/D).
  [[nodiscard]] TestPlan plan_next_test(const solver::SolveResult& solved,
                                        const rt::TestLog& latest_log,
                                        const TestPlan& previous) const;

  [[nodiscard]] bool enabled() const { return enabled_; }

 private:
  const rt::VarRegistry* registry_;
  int max_procs_;
  bool enabled_;
  bool use_mapping_;
};

}  // namespace compi
